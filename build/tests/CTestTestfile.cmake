# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_condition[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_activation[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_tgff[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_paths[1]_include.cmake")
include("/root/repo/build/tests/test_stretch[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_profiling[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_discrete_dvfs[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_gantt[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
