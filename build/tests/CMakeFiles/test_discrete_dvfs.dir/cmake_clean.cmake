file(REMOVE_RECURSE
  "CMakeFiles/test_discrete_dvfs.dir/test_discrete_dvfs.cpp.o"
  "CMakeFiles/test_discrete_dvfs.dir/test_discrete_dvfs.cpp.o.d"
  "test_discrete_dvfs"
  "test_discrete_dvfs.pdb"
  "test_discrete_dvfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_discrete_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
