# Empty compiler generated dependencies file for test_discrete_dvfs.
# This may be replaced when dependencies are built.
