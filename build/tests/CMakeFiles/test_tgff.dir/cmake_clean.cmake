file(REMOVE_RECURSE
  "CMakeFiles/test_tgff.dir/test_tgff.cpp.o"
  "CMakeFiles/test_tgff.dir/test_tgff.cpp.o.d"
  "test_tgff"
  "test_tgff.pdb"
  "test_tgff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tgff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
