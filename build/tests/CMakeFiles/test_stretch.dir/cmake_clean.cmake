file(REMOVE_RECURSE
  "CMakeFiles/test_stretch.dir/test_stretch.cpp.o"
  "CMakeFiles/test_stretch.dir/test_stretch.cpp.o.d"
  "test_stretch"
  "test_stretch.pdb"
  "test_stretch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
