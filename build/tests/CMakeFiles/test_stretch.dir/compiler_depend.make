# Empty compiler generated dependencies file for test_stretch.
# This may be replaced when dependencies are built.
