# Empty dependencies file for bench_fig5_table2.
# This may be replaced when dependencies are built.
