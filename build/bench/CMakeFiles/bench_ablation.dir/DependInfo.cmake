
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/actg_bench_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/tgff/CMakeFiles/actg_tgff.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/actg_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/actg_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/actg_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/actg_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/actg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/actg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/actg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/actg_io.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/actg_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ctg/CMakeFiles/actg_ctg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/actg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
