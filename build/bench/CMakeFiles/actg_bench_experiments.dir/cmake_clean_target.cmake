file(REMOVE_RECURSE
  "libactg_bench_experiments.a"
)
