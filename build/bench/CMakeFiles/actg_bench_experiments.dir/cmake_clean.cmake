file(REMOVE_RECURSE
  "CMakeFiles/actg_bench_experiments.dir/experiments.cpp.o"
  "CMakeFiles/actg_bench_experiments.dir/experiments.cpp.o.d"
  "libactg_bench_experiments.a"
  "libactg_bench_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_bench_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
