# Empty compiler generated dependencies file for actg_bench_experiments.
# This may be replaced when dependencies are built.
