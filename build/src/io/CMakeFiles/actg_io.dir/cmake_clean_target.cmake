file(REMOVE_RECURSE
  "libactg_io.a"
)
