file(REMOVE_RECURSE
  "CMakeFiles/actg_io.dir/text_format.cpp.o"
  "CMakeFiles/actg_io.dir/text_format.cpp.o.d"
  "libactg_io.a"
  "libactg_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
