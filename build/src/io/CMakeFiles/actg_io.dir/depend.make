# Empty dependencies file for actg_io.
# This may be replaced when dependencies are built.
