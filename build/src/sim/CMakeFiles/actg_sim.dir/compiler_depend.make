# Empty compiler generated dependencies file for actg_sim.
# This may be replaced when dependencies are built.
