file(REMOVE_RECURSE
  "CMakeFiles/actg_sim.dir/energy.cpp.o"
  "CMakeFiles/actg_sim.dir/energy.cpp.o.d"
  "CMakeFiles/actg_sim.dir/executor.cpp.o"
  "CMakeFiles/actg_sim.dir/executor.cpp.o.d"
  "CMakeFiles/actg_sim.dir/report.cpp.o"
  "CMakeFiles/actg_sim.dir/report.cpp.o.d"
  "libactg_sim.a"
  "libactg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
