file(REMOVE_RECURSE
  "libactg_sim.a"
)
