file(REMOVE_RECURSE
  "CMakeFiles/actg_sched.dir/dls.cpp.o"
  "CMakeFiles/actg_sched.dir/dls.cpp.o.d"
  "CMakeFiles/actg_sched.dir/gantt.cpp.o"
  "CMakeFiles/actg_sched.dir/gantt.cpp.o.d"
  "CMakeFiles/actg_sched.dir/schedule.cpp.o"
  "CMakeFiles/actg_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/actg_sched.dir/static_level.cpp.o"
  "CMakeFiles/actg_sched.dir/static_level.cpp.o.d"
  "libactg_sched.a"
  "libactg_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
