file(REMOVE_RECURSE
  "libactg_sched.a"
)
