# Empty dependencies file for actg_sched.
# This may be replaced when dependencies are built.
