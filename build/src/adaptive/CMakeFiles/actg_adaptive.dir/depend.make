# Empty dependencies file for actg_adaptive.
# This may be replaced when dependencies are built.
