file(REMOVE_RECURSE
  "libactg_adaptive.a"
)
