file(REMOVE_RECURSE
  "CMakeFiles/actg_adaptive.dir/controller.cpp.o"
  "CMakeFiles/actg_adaptive.dir/controller.cpp.o.d"
  "libactg_adaptive.a"
  "libactg_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
