file(REMOVE_RECURSE
  "CMakeFiles/actg_tgff.dir/random_ctg.cpp.o"
  "CMakeFiles/actg_tgff.dir/random_ctg.cpp.o.d"
  "libactg_tgff.a"
  "libactg_tgff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_tgff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
