# Empty compiler generated dependencies file for actg_tgff.
# This may be replaced when dependencies are built.
