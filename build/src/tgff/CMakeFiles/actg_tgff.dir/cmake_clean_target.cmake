file(REMOVE_RECURSE
  "libactg_tgff.a"
)
