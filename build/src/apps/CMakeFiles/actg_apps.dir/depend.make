# Empty dependencies file for actg_apps.
# This may be replaced when dependencies are built.
