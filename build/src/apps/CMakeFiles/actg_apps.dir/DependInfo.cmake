
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/common.cpp" "src/apps/CMakeFiles/actg_apps.dir/common.cpp.o" "gcc" "src/apps/CMakeFiles/actg_apps.dir/common.cpp.o.d"
  "/root/repo/src/apps/cruise.cpp" "src/apps/CMakeFiles/actg_apps.dir/cruise.cpp.o" "gcc" "src/apps/CMakeFiles/actg_apps.dir/cruise.cpp.o.d"
  "/root/repo/src/apps/fig1_example.cpp" "src/apps/CMakeFiles/actg_apps.dir/fig1_example.cpp.o" "gcc" "src/apps/CMakeFiles/actg_apps.dir/fig1_example.cpp.o.d"
  "/root/repo/src/apps/mpeg.cpp" "src/apps/CMakeFiles/actg_apps.dir/mpeg.cpp.o" "gcc" "src/apps/CMakeFiles/actg_apps.dir/mpeg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/actg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ctg/CMakeFiles/actg_ctg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/actg_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/actg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/actg_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
