file(REMOVE_RECURSE
  "CMakeFiles/actg_apps.dir/common.cpp.o"
  "CMakeFiles/actg_apps.dir/common.cpp.o.d"
  "CMakeFiles/actg_apps.dir/cruise.cpp.o"
  "CMakeFiles/actg_apps.dir/cruise.cpp.o.d"
  "CMakeFiles/actg_apps.dir/fig1_example.cpp.o"
  "CMakeFiles/actg_apps.dir/fig1_example.cpp.o.d"
  "CMakeFiles/actg_apps.dir/mpeg.cpp.o"
  "CMakeFiles/actg_apps.dir/mpeg.cpp.o.d"
  "libactg_apps.a"
  "libactg_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
