file(REMOVE_RECURSE
  "libactg_apps.a"
)
