file(REMOVE_RECURSE
  "libactg_util.a"
)
