file(REMOVE_RECURSE
  "CMakeFiles/actg_util.dir/csv.cpp.o"
  "CMakeFiles/actg_util.dir/csv.cpp.o.d"
  "CMakeFiles/actg_util.dir/error.cpp.o"
  "CMakeFiles/actg_util.dir/error.cpp.o.d"
  "CMakeFiles/actg_util.dir/rng.cpp.o"
  "CMakeFiles/actg_util.dir/rng.cpp.o.d"
  "CMakeFiles/actg_util.dir/stats.cpp.o"
  "CMakeFiles/actg_util.dir/stats.cpp.o.d"
  "CMakeFiles/actg_util.dir/table.cpp.o"
  "CMakeFiles/actg_util.dir/table.cpp.o.d"
  "libactg_util.a"
  "libactg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
