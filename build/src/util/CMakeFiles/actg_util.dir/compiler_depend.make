# Empty compiler generated dependencies file for actg_util.
# This may be replaced when dependencies are built.
