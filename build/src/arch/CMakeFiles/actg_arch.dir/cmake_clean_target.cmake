file(REMOVE_RECURSE
  "libactg_arch.a"
)
