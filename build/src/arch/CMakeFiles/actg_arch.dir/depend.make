# Empty dependencies file for actg_arch.
# This may be replaced when dependencies are built.
