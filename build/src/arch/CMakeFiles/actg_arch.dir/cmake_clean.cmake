file(REMOVE_RECURSE
  "CMakeFiles/actg_arch.dir/platform.cpp.o"
  "CMakeFiles/actg_arch.dir/platform.cpp.o.d"
  "libactg_arch.a"
  "libactg_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
