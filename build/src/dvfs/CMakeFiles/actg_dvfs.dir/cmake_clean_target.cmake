file(REMOVE_RECURSE
  "libactg_dvfs.a"
)
