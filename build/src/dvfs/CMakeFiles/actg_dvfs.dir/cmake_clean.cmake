file(REMOVE_RECURSE
  "CMakeFiles/actg_dvfs.dir/algorithms.cpp.o"
  "CMakeFiles/actg_dvfs.dir/algorithms.cpp.o.d"
  "CMakeFiles/actg_dvfs.dir/paths.cpp.o"
  "CMakeFiles/actg_dvfs.dir/paths.cpp.o.d"
  "CMakeFiles/actg_dvfs.dir/stretch.cpp.o"
  "CMakeFiles/actg_dvfs.dir/stretch.cpp.o.d"
  "libactg_dvfs.a"
  "libactg_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
