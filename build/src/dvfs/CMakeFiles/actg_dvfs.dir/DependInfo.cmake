
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvfs/algorithms.cpp" "src/dvfs/CMakeFiles/actg_dvfs.dir/algorithms.cpp.o" "gcc" "src/dvfs/CMakeFiles/actg_dvfs.dir/algorithms.cpp.o.d"
  "/root/repo/src/dvfs/paths.cpp" "src/dvfs/CMakeFiles/actg_dvfs.dir/paths.cpp.o" "gcc" "src/dvfs/CMakeFiles/actg_dvfs.dir/paths.cpp.o.d"
  "/root/repo/src/dvfs/stretch.cpp" "src/dvfs/CMakeFiles/actg_dvfs.dir/stretch.cpp.o" "gcc" "src/dvfs/CMakeFiles/actg_dvfs.dir/stretch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/actg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ctg/CMakeFiles/actg_ctg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/actg_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/actg_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
