# Empty compiler generated dependencies file for actg_dvfs.
# This may be replaced when dependencies are built.
