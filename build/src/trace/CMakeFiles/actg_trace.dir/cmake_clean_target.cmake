file(REMOVE_RECURSE
  "libactg_trace.a"
)
