file(REMOVE_RECURSE
  "CMakeFiles/actg_trace.dir/generators.cpp.o"
  "CMakeFiles/actg_trace.dir/generators.cpp.o.d"
  "CMakeFiles/actg_trace.dir/trace.cpp.o"
  "CMakeFiles/actg_trace.dir/trace.cpp.o.d"
  "libactg_trace.a"
  "libactg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
