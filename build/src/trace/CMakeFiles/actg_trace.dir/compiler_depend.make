# Empty compiler generated dependencies file for actg_trace.
# This may be replaced when dependencies are built.
