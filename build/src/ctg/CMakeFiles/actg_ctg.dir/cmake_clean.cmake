file(REMOVE_RECURSE
  "CMakeFiles/actg_ctg.dir/activation.cpp.o"
  "CMakeFiles/actg_ctg.dir/activation.cpp.o.d"
  "CMakeFiles/actg_ctg.dir/condition.cpp.o"
  "CMakeFiles/actg_ctg.dir/condition.cpp.o.d"
  "CMakeFiles/actg_ctg.dir/dot.cpp.o"
  "CMakeFiles/actg_ctg.dir/dot.cpp.o.d"
  "CMakeFiles/actg_ctg.dir/graph.cpp.o"
  "CMakeFiles/actg_ctg.dir/graph.cpp.o.d"
  "libactg_ctg.a"
  "libactg_ctg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_ctg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
