file(REMOVE_RECURSE
  "libactg_ctg.a"
)
