# Empty compiler generated dependencies file for actg_ctg.
# This may be replaced when dependencies are built.
