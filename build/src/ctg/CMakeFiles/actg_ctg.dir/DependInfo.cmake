
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctg/activation.cpp" "src/ctg/CMakeFiles/actg_ctg.dir/activation.cpp.o" "gcc" "src/ctg/CMakeFiles/actg_ctg.dir/activation.cpp.o.d"
  "/root/repo/src/ctg/condition.cpp" "src/ctg/CMakeFiles/actg_ctg.dir/condition.cpp.o" "gcc" "src/ctg/CMakeFiles/actg_ctg.dir/condition.cpp.o.d"
  "/root/repo/src/ctg/dot.cpp" "src/ctg/CMakeFiles/actg_ctg.dir/dot.cpp.o" "gcc" "src/ctg/CMakeFiles/actg_ctg.dir/dot.cpp.o.d"
  "/root/repo/src/ctg/graph.cpp" "src/ctg/CMakeFiles/actg_ctg.dir/graph.cpp.o" "gcc" "src/ctg/CMakeFiles/actg_ctg.dir/graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/actg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
