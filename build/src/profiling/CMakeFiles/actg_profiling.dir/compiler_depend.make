# Empty compiler generated dependencies file for actg_profiling.
# This may be replaced when dependencies are built.
