
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/window.cpp" "src/profiling/CMakeFiles/actg_profiling.dir/window.cpp.o" "gcc" "src/profiling/CMakeFiles/actg_profiling.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/actg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ctg/CMakeFiles/actg_ctg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
