file(REMOVE_RECURSE
  "CMakeFiles/actg_profiling.dir/window.cpp.o"
  "CMakeFiles/actg_profiling.dir/window.cpp.o.d"
  "libactg_profiling.a"
  "libactg_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
