file(REMOVE_RECURSE
  "libactg_profiling.a"
)
