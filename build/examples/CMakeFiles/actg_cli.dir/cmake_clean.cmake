file(REMOVE_RECURSE
  "CMakeFiles/actg_cli.dir/actg_cli.cpp.o"
  "CMakeFiles/actg_cli.dir/actg_cli.cpp.o.d"
  "actg_cli"
  "actg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
