# Empty dependencies file for actg_cli.
# This may be replaced when dependencies are built.
