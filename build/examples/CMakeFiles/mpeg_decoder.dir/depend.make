# Empty dependencies file for mpeg_decoder.
# This may be replaced when dependencies are built.
