file(REMOVE_RECURSE
  "CMakeFiles/mpeg_decoder.dir/mpeg_decoder.cpp.o"
  "CMakeFiles/mpeg_decoder.dir/mpeg_decoder.cpp.o.d"
  "mpeg_decoder"
  "mpeg_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
