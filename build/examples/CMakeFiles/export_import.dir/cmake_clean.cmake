file(REMOVE_RECURSE
  "CMakeFiles/export_import.dir/export_import.cpp.o"
  "CMakeFiles/export_import.dir/export_import.cpp.o.d"
  "export_import"
  "export_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
