# Empty dependencies file for random_ctg_explorer.
# This may be replaced when dependencies are built.
