file(REMOVE_RECURSE
  "CMakeFiles/random_ctg_explorer.dir/random_ctg_explorer.cpp.o"
  "CMakeFiles/random_ctg_explorer.dir/random_ctg_explorer.cpp.o.d"
  "random_ctg_explorer"
  "random_ctg_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_ctg_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
