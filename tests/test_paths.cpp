#include <gtest/gtest.h>

#include <algorithm>

#include "apps/common.h"
#include "apps/fig1_example.h"
#include "dvfs/paths.h"
#include "sched/dls.h"
#include "tgff/random_ctg.h"
#include "util/error.h"

namespace actg::dvfs {
namespace {

class Fig1Paths : public ::testing::Test {
 protected:
  Fig1Paths()
      : ex_(apps::MakeFig1Example()),
        analysis_(ex_.graph),
        schedule_(sched::RunDls(ex_.graph, analysis_, ex_.platform,
                                ex_.probs)),
        paths_(schedule_) {}

  /// Finds the path visiting exactly the given task sequence as a
  /// subsequence of CTG tasks (pseudo edges may interleave nothing).
  int FindPath(const std::vector<int>& taus) const {
    for (std::size_t i = 0; i < paths_.size(); ++i) {
      const Path& p = paths_.path(i);
      std::vector<TaskId> want;
      for (int t : taus) want.push_back(ex_.tau(t));
      // The path may contain more tasks (via pseudo edges); check that
      // `want` is a subsequence.
      std::size_t k = 0;
      for (TaskId t : p.tasks) {
        if (k < want.size() && t == want[k]) ++k;
      }
      if (k == want.size()) return static_cast<int>(i);
    }
    return -1;
  }

  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
  sched::Schedule schedule_;
  PathSet paths_;
};

TEST_F(Fig1Paths, NoUnrealizablePaths) {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    EXPECT_FALSE(paths_.path(i).guard.IsFalse());
  }
}

TEST_F(Fig1Paths, EveryTaskIsSpannedBySomePath) {
  for (TaskId t : ex_.graph.TaskIds()) {
    EXPECT_FALSE(paths_.Spanning(t).empty())
        << ex_.graph.task(t).name;
  }
}

TEST_F(Fig1Paths, MutexTasksNeverShareAPath) {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const Path& p = paths_.path(i);
    for (std::size_t a = 0; a < p.tasks.size(); ++a) {
      for (std::size_t b = a + 1; b < p.tasks.size(); ++b) {
        EXPECT_FALSE(analysis_.MutuallyExclusive(p.tasks[a], p.tasks[b]));
      }
    }
  }
}

TEST_F(Fig1Paths, PaperProbAfterExampleTau5) {
  // prob(τ1-τ3-τ5-τ6, τ5) = prob(b1) = 0.5.
  const int idx = FindPath({1, 3, 5, 6});
  ASSERT_GE(idx, 0);
  EXPECT_NEAR(paths_.ProbAfter(static_cast<std::size_t>(idx), ex_.tau(5),
                               ex_.probs),
              0.5, 1e-12);
}

TEST_F(Fig1Paths, PaperProbAfterExampleTau8) {
  // prob(τ1-τ3-τ4-τ8, τ8) = 1: no conditional branch after τ8.
  const int idx = FindPath({1, 3, 4, 8});
  ASSERT_GE(idx, 0);
  EXPECT_NEAR(paths_.ProbAfter(static_cast<std::size_t>(idx), ex_.tau(8),
                               ex_.probs),
              1.0, 1e-12);
}

TEST_F(Fig1Paths, ProbAfterAtPathHeadIsJointOfAllConditions) {
  const int idx = FindPath({1, 3, 5, 6});
  ASSERT_GE(idx, 0);
  // From τ1 both a2 (0.6) and b1 (0.5) lie ahead.
  EXPECT_NEAR(paths_.ProbAfter(static_cast<std::size_t>(idx), ex_.tau(1),
                               ex_.probs),
              0.3, 1e-12);
}

TEST_F(Fig1Paths, DelayIsCommPlusExecution) {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const Path& p = paths_.path(i);
    double expected = p.comm_ms;
    for (TaskId t : p.tasks) expected += schedule_.ScaledWcet(t);
    EXPECT_NEAR(p.delay_ms, expected, 1e-9);
    EXPECT_DOUBLE_EQ(p.unlocked_ms, p.delay_ms - p.comm_ms);
  }
}

TEST_F(Fig1Paths, MaxDelayBoundsEveryScenarioMakespan) {
  // The path model's worst delay upper-bounds the schedule makespan
  // because path delays ignore no constraint the DAG has.
  EXPECT_GE(paths_.MaxDelay(), schedule_.Makespan() - 1e-6);
}

TEST_F(Fig1Paths, CommitTaskUpdatesSpanningPathsOnly) {
  PathSet paths(schedule_);
  const TaskId t6 = ex_.tau(6);
  std::vector<double> before;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    before.push_back(paths.path(i).delay_ms);
  }
  paths.CommitTask(t6, 5.0, schedule_.NominalWcet(t6));
  const auto& spanning = paths.Spanning(t6);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const bool spans =
        std::find(spanning.begin(), spanning.end(), i) != spanning.end();
    EXPECT_NEAR(paths.path(i).delay_ms, before[i] + (spans ? 5.0 : 0.0),
                1e-9);
  }
}

TEST_F(Fig1Paths, UnlockedNeverNegative) {
  PathSet paths(schedule_);
  const TaskId t2 = ex_.tau(2);
  const double w = schedule_.NominalWcet(t2);
  paths.CommitTask(t2, 0.0, w);
  paths.CommitTask(t2, 0.0, w);  // double commit must clamp at zero
  for (std::size_t i : paths.Spanning(t2)) {
    EXPECT_GE(paths.path(i).unlocked_ms, 0.0);
  }
}

TEST_F(Fig1Paths, SlackRatioDefinition) {
  const double deadline = ex_.graph.deadline_ms();
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const Path& p = paths_.path(i);
    EXPECT_NEAR(p.Slack(deadline), deadline - p.delay_ms, 1e-12);
    EXPECT_NEAR(p.SlackRatio(deadline),
                std::max(deadline - p.delay_ms, 0.0) / p.unlocked_ms,
                1e-12);
  }
}

TEST_F(Fig1Paths, PositionOfThrowsForAbsentTask) {
  // Find a path that does not span τ4 (e.g. one through τ5).
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const Path& p = paths_.path(i);
    if (std::find(p.tasks.begin(), p.tasks.end(), ex_.tau(4)) ==
        p.tasks.end()) {
      EXPECT_THROW(paths_.PositionOf(i, ex_.tau(4)), InvalidArgument);
      return;
    }
  }
  FAIL() << "every path spans tau4?";
}

TEST(PathSetLimits, MaxPathsEnforced) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  const sched::Schedule s =
      sched::RunDls(ex.graph, analysis, ex.platform, ex.probs);
  EXPECT_THROW(PathSet(s, 1), InvalidArgument);
}

TEST(PathSetBlind, KeepsUnrealizableChainsWhenAsked) {
  // On a mutex-blind schedule, enumerating with drop_unrealizable=false
  // must produce at least as many paths, including false-guard ones.
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  sched::DlsOptions blind;
  blind.mutex_aware = false;
  const sched::Schedule s =
      sched::RunDls(ex.graph, analysis, ex.platform, ex.probs, blind);
  const PathSet realizable(s, 1 << 20, true);
  const PathSet all(s, 1 << 20, false);
  EXPECT_GE(all.size(), realizable.size());
}

TEST(PathSetSweep, RandomGraphsPathInvariants) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (auto category :
         {tgff::Category::kForkJoin, tgff::Category::kFlat}) {
      tgff::RandomCtgParams params;
      params.task_count = 20;
      params.fork_count = 2;
      params.category = category;
      params.seed = seed;
      tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
      apps::AssignDeadline(rc.graph, rc.platform, 1.5);
      const ctg::ActivationAnalysis analysis(rc.graph);
      const auto probs = apps::UniformProbabilities(rc.graph);
      const sched::Schedule s =
          sched::RunDls(rc.graph, analysis, rc.platform, probs);
      const PathSet paths(s);
      ASSERT_GT(paths.size(), 0u);
      for (std::size_t i = 0; i < paths.size(); ++i) {
        const Path& p = paths.path(i);
        ASSERT_EQ(p.edges.size() + 1, p.tasks.size());
        EXPECT_FALSE(p.guard.IsFalse());
        EXPECT_GE(p.comm_ms, 0.0);
        EXPECT_GT(p.delay_ms, 0.0);
        // prob(p, last task) == 1 always: nothing lies after it.
        EXPECT_NEAR(paths.ProbAfter(i, p.tasks.back(), probs), 1.0,
                    1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace actg::dvfs
