/// \file test_path_engine.cpp
/// Equivalence tests of the reusable dvfs::PathEngine against the
/// from-scratch PathSet enumeration, over generated Category-1 and
/// Category-2 CTGs: same paths in the same order, same delays and
/// probabilities, same guard predicates — in bitset mode and in the
/// force_dnf fallback mode — and identical results whether an engine is
/// fresh or reused across enumerations and stretch calls.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "apps/common.h"
#include "ctg/activation.h"
#include "dvfs/path_engine.h"
#include "dvfs/paths.h"
#include "dvfs/stretch.h"
#include "sched/dls.h"
#include "tgff/random_ctg.h"

namespace actg {
namespace {

struct Case {
  tgff::RandomCase rc;
  ctg::ActivationAnalysis analysis;
  ctg::BranchProbabilities probs;

  Case(tgff::Category category, std::uint64_t seed)
      : rc([&] {
          tgff::RandomCtgParams params;
          params.task_count = 18;
          params.pe_count = 3;
          params.fork_count = 2;
          params.category = category;
          params.seed = seed;
          auto generated = tgff::MakeRandomCtg(params).value();
          apps::AssignDeadline(generated.graph, generated.platform, 1.3);
          return generated;
        }()),
        analysis(rc.graph),
        probs(apps::UniformProbabilities(rc.graph)) {}
};

/// Runs \p fn on each generated case. Cases are constructed in place
/// (never moved): the analysis and schedules reference the graph by
/// address.
template <typename Fn>
void ForEachCase(Fn&& fn) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    for (tgff::Category category :
         {tgff::Category::kForkJoin, tgff::Category::kFlat}) {
      const Case c(category, seed);
      fn(c);
    }
  }
}

/// Asserts that an engine's enumeration matches a PathSet of the same
/// schedule element for element.
void ExpectMatchesPathSet(const dvfs::PathEngine& engine,
                          const dvfs::PathSet& expected,
                          const Case& c) {
  ASSERT_EQ(engine.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const dvfs::Path& path = expected.path(i);
    const auto tasks = engine.TasksOf(i);
    ASSERT_EQ(tasks.size(), path.tasks.size()) << "path " << i;
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      EXPECT_EQ(tasks[k], path.tasks[k]) << "path " << i;
    }
    const auto edges = engine.EdgesOf(i);
    ASSERT_EQ(edges.size(), path.edges.size());
    for (std::size_t k = 0; k < edges.size(); ++k) {
      EXPECT_EQ(edges[k], path.edges[k]);
    }
    EXPECT_EQ(engine.comm_ms(i), path.comm_ms);
    EXPECT_EQ(engine.delay_ms(i), path.delay_ms);
    EXPECT_EQ(engine.unlocked_ms(i), path.unlocked_ms);

    // Guard predicates agree for every scenario minterm and for every
    // Γ(τ) minterm of the tasks on the path.
    for (const ctg::Minterm& scenario :
         c.analysis.EnumerateScenarioAssignments()) {
      EXPECT_EQ(engine.GuardCompatibleWith(i, scenario),
                path.guard.CompatibleWith(scenario));
    }
    for (TaskId task : path.tasks) {
      for (const ctg::Minterm& m : c.analysis.Gamma(task)) {
        EXPECT_EQ(engine.GuardCompatibleWith(i, m),
                  path.guard.CompatibleWith(m));
      }
      EXPECT_EQ(engine.ProbAfter(i, task, c.probs),
                expected.ProbAfter(i, task, c.probs));
    }
  }
  EXPECT_EQ(engine.MaxDelay(), expected.MaxDelay());
  for (TaskId task : c.rc.graph.TaskIds()) {
    EXPECT_EQ(engine.Spanning(task), expected.Spanning(task));
  }
}

TEST(PathEngine, MatchesPathSetOnGeneratedCtgs) {
  ForEachCase([&](const Case& c) {
    const sched::Schedule schedule =
        sched::RunDls(c.rc.graph, c.analysis, c.rc.platform, c.probs);
    for (bool drop_unrealizable : {true, false}) {
      const dvfs::PathSet expected(schedule, 1 << 20, drop_unrealizable);
      for (bool force_dnf : {false, true}) {
        dvfs::PathEngine engine(
            c.rc.graph, c.analysis, c.rc.platform,
            dvfs::PathEngineOptions{.force_dnf = force_dnf});
        EXPECT_EQ(engine.using_bitset(), !force_dnf);
        engine.Enumerate(schedule, drop_unrealizable);
        ExpectMatchesPathSet(engine, expected, c);
      }
    }
  });
}

TEST(PathEngine, ReuseAcrossEnumerationsMatchesFreshEngine) {
  ForEachCase([&](const Case& c) {
    sched::Schedule stretched =
        sched::RunDls(c.rc.graph, c.analysis, c.rc.platform, c.probs);
    dvfs::StretchOnline(stretched, c.probs);
    const sched::Schedule nominal =
        sched::RunDls(c.rc.graph, c.analysis, c.rc.platform, c.probs);

    // One engine enumerates nominal, then stretched, then nominal
    // again; each enumeration must equal a fresh PathSet of the same
    // schedule (reuse leaves no residue in the pooled storage).
    dvfs::PathEngine engine(c.rc.graph, c.analysis, c.rc.platform);
    engine.Enumerate(nominal);
    ExpectMatchesPathSet(engine, dvfs::PathSet(nominal), c);
    engine.Enumerate(stretched);
    ExpectMatchesPathSet(engine, dvfs::PathSet(stretched), c);
    engine.Enumerate(nominal);
    ExpectMatchesPathSet(engine, dvfs::PathSet(nominal), c);
  });
}

TEST(PathEngine, CommitTaskMatchesPathSet) {
  ForEachCase([&](const Case& c) {
    const sched::Schedule schedule =
        sched::RunDls(c.rc.graph, c.analysis, c.rc.platform, c.probs);
    dvfs::PathSet expected(schedule);
    dvfs::PathEngine engine(c.rc.graph, c.analysis, c.rc.platform);
    engine.Enumerate(schedule);

    // Commit every task once, in schedule order, with a synthetic
    // extension; the running delays must track exactly.
    for (TaskId task : c.rc.graph.TaskIds()) {
      const double nominal = schedule.placement(task).finish_ms -
                             schedule.placement(task).start_ms;
      expected.CommitTask(task, 0.25, nominal);
      engine.CommitTask(task, 0.25, nominal);
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(engine.delay_ms(i), expected.path(i).delay_ms);
      EXPECT_EQ(engine.unlocked_ms(i), expected.path(i).unlocked_ms);
    }
    EXPECT_EQ(engine.MaxDelay(), expected.MaxDelay());
  });
}

TEST(PathEngine, StretchResultsBitIdenticalAcrossModes) {
  // The three configurations the stretchers support — transient
  // engine (no engine argument), persistent bitset engine, persistent
  // force_dnf engine — must produce bit-identical schedules.
  ForEachCase([&](const Case& c) {
    auto stretch = [&](dvfs::PathEngine* engine) {
      sched::Schedule s =
          sched::RunDls(c.rc.graph, c.analysis, c.rc.platform, c.probs);
      const dvfs::StretchStats stats =
          dvfs::StretchOnline(s, c.probs, {}, engine);
      EXPECT_GT(stats.path_count, 0u);
      return s;
    };

    const sched::Schedule baseline = stretch(nullptr);
    dvfs::PathEngine bit_engine(c.rc.graph, c.analysis, c.rc.platform);
    dvfs::PathEngine dnf_engine(
        c.rc.graph, c.analysis, c.rc.platform,
        dvfs::PathEngineOptions{.force_dnf = true});
    // Two rounds through each persistent engine: the second round runs
    // on warmed pools and must not drift.
    for (int round = 0; round < 2; ++round) {
      for (dvfs::PathEngine* engine : {&bit_engine, &dnf_engine}) {
        const sched::Schedule candidate = stretch(engine);
        for (TaskId task : c.rc.graph.TaskIds()) {
          const auto& a = baseline.placement(task);
          const auto& b = candidate.placement(task);
          EXPECT_EQ(a.speed_ratio, b.speed_ratio);
          EXPECT_EQ(a.start_ms, b.start_ms);
          EXPECT_EQ(a.finish_ms, b.finish_ms);
          EXPECT_EQ(a.pe, b.pe);
        }
      }
    }
  });
}

}  // namespace
}  // namespace actg
