#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "check/validator.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/sla.h"
#include "sim/executor.h"
#include "util/error.h"
#include "util/rng.h"

namespace actg::serve {
namespace {

// ------------------------------------------------------------- Format

TEST(Sla, TokensRoundTrip) {
  for (std::size_t i = 0; i < kSlaClassCount; ++i) {
    const SlaClass sla = *SlaFromIndex(i);
    EXPECT_EQ(ParseSlaClass(SlaName(sla)), sla);
    EXPECT_EQ(ParseSlaClass(SlaLabel(sla)), sla);
  }
  EXPECT_FALSE(ParseSlaClass("SLA3").has_value());
  EXPECT_FALSE(SlaFromIndex(3).has_value());
}

TEST(ServeFormat, WriteParseRoundTrips) {
  FleetRequest fleet = SyntheticFleet(12, 5, 9);
  fleet.config.share_cache = true;
  fleet.config.validate = true;
  fleet.config.budget_ms[0] = 125.0;
  std::ostringstream first;
  WriteServeFile(first, fleet);

  std::istringstream is(first.str());
  util::Expected<FleetRequest> parsed = ParseServeFile(is);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();

  // Round-trip fixpoint: serializing the parse reproduces the bytes.
  std::ostringstream second;
  WriteServeFile(second, parsed.value());
  EXPECT_EQ(first.str(), second.str());
}

TEST(ServeFormat, ParsesDirectivesAndTenantOptions) {
  std::istringstream is(
      "serve v1\n"
      "seed 77            # root of every substream\n"
      "shards 3\n"
      "shard_capacity 9\n"
      "share_cache 1\n"
      "batch 2\n"
      "defer_depth 5\n"
      "shed_depth 11\n"
      "recover_rounds 4\n"
      "budget latency_critical 12.5\n"
      "validate 1\n"
      "tenant cam SLA0 mpeg 30 seed=4 arrival=2 threshold=0.5"
      " window=10 policy=proportional\n"
      "end\n");
  util::Expected<FleetRequest> parsed = ParseServeFile(is);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  const FleetRequest& fleet = parsed.value();
  EXPECT_EQ(fleet.config.seed, 77u);
  EXPECT_EQ(fleet.config.cache_shards, 3u);
  EXPECT_EQ(fleet.config.shard_capacity, 9u);
  EXPECT_TRUE(fleet.config.share_cache);
  EXPECT_EQ(fleet.config.batch, 2u);
  EXPECT_EQ(fleet.config.defer_depth, 5u);
  EXPECT_EQ(fleet.config.shed_depth, 11u);
  EXPECT_EQ(fleet.config.recover_rounds, 4u);
  EXPECT_DOUBLE_EQ(fleet.config.budget_ms[0], 12.5);
  EXPECT_TRUE(fleet.config.validate);
  ASSERT_EQ(fleet.tenants.size(), 1u);
  const TenantRequest& tenant = fleet.tenants[0];
  EXPECT_EQ(tenant.name, "cam");
  EXPECT_EQ(tenant.sla, SlaClass::kLatencyCritical);
  EXPECT_EQ(tenant.workload, apps::TenantWorkload::kMpeg);
  EXPECT_EQ(tenant.instances, 30u);
  EXPECT_EQ(tenant.seed, 4u);
  EXPECT_EQ(tenant.arrival, 2u);
  EXPECT_DOUBLE_EQ(tenant.threshold, 0.5);
  EXPECT_EQ(tenant.window, 10u);
  EXPECT_EQ(tenant.policy, "proportional");
}

TEST(ServeFormat, DiagnosticsCarryLineNumbers) {
  std::istringstream is(
      "serve v1\n"
      "# a comment line\n"
      "batch nope\n"
      "end\n");
  util::Expected<FleetRequest> parsed = ParseServeFile(is);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message().find("serve line 3:"),
            std::string::npos)
      << parsed.error().message();
}

// Malformed corpus: every tests/corpus/serve file must be rejected with
// the diagnostic pinned in its '# expect: <substring>' first line.
// Adding a regression is dropping a file in the directory.

struct CorpusCase {
  std::filesystem::path path;
  std::string expect;
  std::string contents;
};

std::vector<CorpusCase> LoadCorpus() {
  const std::filesystem::path dir =
      std::filesystem::path(ACTG_TEST_CORPUS_DIR) / "serve";
  std::vector<CorpusCase> cases;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    CorpusCase c;
    c.path = entry.path();
    std::ifstream in(c.path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    c.contents = buffer.str();
    const std::string marker = "# expect: ";
    const std::size_t line_end = c.contents.find('\n');
    std::string first = c.contents.substr(
        0, line_end == std::string::npos ? c.contents.size() : line_end);
    if (first.rfind(marker, 0) == 0) c.expect = first.substr(marker.size());
    cases.push_back(std::move(c));
  }
  std::sort(cases.begin(), cases.end(),
            [](const CorpusCase& a, const CorpusCase& b) {
              return a.path.filename() < b.path.filename();
            });
  return cases;
}

TEST(ServeMalformedCorpus, EveryFileIsRejectedWithItsPinnedDiagnostic) {
  const std::vector<CorpusCase> cases = LoadCorpus();
  ASSERT_GE(cases.size(), 8u) << "corpus went missing";
  for (const CorpusCase& c : cases) {
    SCOPED_TRACE(c.path.filename().string());
    ASSERT_FALSE(c.expect.empty())
        << "corpus file lacks a '# expect: <substring>' first line";
    std::istringstream in(c.contents);
    const util::Error error = ParseServeFile(in).error();
    EXPECT_FALSE(error.ok()) << "malformed input parsed successfully";
    EXPECT_NE(error.message().find(c.expect), std::string::npos)
        << "diagnostic was: " << error.message();
  }
}

// ------------------------------------------------------------ Session

TenantRequest SmallTenant(std::size_t instances = 4) {
  TenantRequest request;
  request.name = "t";
  request.workload = apps::TenantWorkload::kRandomFlat;
  request.instances = instances;
  request.seed = 3;
  request.window = 5;
  return request;
}

Session MakeSession(std::size_t instances = 4) {
  return Session(SmallTenant(instances), SessionOptions{},
                 util::Random(11).Fork(0));
}

TEST(Session, EventApiRejectsOutOfOrderEvents) {
  Session session = MakeSession();
  // Before NewApp only NewApp is legal.
  EXPECT_THROW(session.NewInstance(), InvalidArgument);
  EXPECT_THROW(session.InstanceComplete(), InvalidArgument);
  EXPECT_THROW(session.PeriodicCheck(), InvalidArgument);
  EXPECT_THROW(session.model(), InvalidArgument);

  session.NewApp();
  EXPECT_THROW(session.NewApp(), InvalidArgument);  // double NewApp
  EXPECT_THROW(session.InstanceComplete(), InvalidArgument);

  session.NewInstance();
  // A pending result blocks another NewInstance and Shutdown.
  EXPECT_THROW(session.NewInstance(), InvalidArgument);
  EXPECT_THROW(session.Shutdown(), InvalidArgument);
  session.InstanceComplete();

  session.Shutdown();
  EXPECT_THROW(session.NewInstance(), InvalidArgument);
  EXPECT_THROW(session.PeriodicCheck(), InvalidArgument);
  EXPECT_THROW(session.Shutdown(), InvalidArgument);
}

TEST(Session, RunsToCompletionAndAggregates) {
  Session session = MakeSession(4);
  session.NewApp();
  EXPECT_EQ(session.state(), SessionState::kActive);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(session.remaining(), 4 - i);
    const sim::InstanceResult& produced = session.NewInstance();
    const sim::InstanceResult consumed = session.InstanceComplete();
    EXPECT_DOUBLE_EQ(produced.energy_mj, consumed.energy_mj);
  }
  EXPECT_EQ(session.state(), SessionState::kDone);
  EXPECT_EQ(session.summary().instances, 4u);
  EXPECT_EQ(session.remaining(), 0u);
  // Exhausted: the next NewInstance is an ordering violation.
  EXPECT_THROW(session.NewInstance(), InvalidArgument);

  const SessionStatus status = session.PeriodicCheck();
  EXPECT_EQ(status.completed, 4u);
  EXPECT_EQ(status.remaining, 0u);
  session.Shutdown();
}

TEST(Session, IdenticalInputsReproduceIdenticalSummaries) {
  Session a = MakeSession(6);
  Session b = MakeSession(6);
  a.NewApp();
  b.NewApp();
  for (std::size_t i = 0; i < 6; ++i) {
    a.NewInstance();
    a.InstanceComplete();
    b.NewInstance();
    b.InstanceComplete();
  }
  EXPECT_DOUBLE_EQ(a.summary().total_energy_mj,
                   b.summary().total_energy_mj);
  EXPECT_EQ(a.summary().deadline_misses, b.summary().deadline_misses);
  EXPECT_DOUBLE_EQ(a.summary().max_makespan_ms,
                   b.summary().max_makespan_ms);
}

// ---------------------------------------------------------- Admission

ServeConfig TightConfig() {
  ServeConfig config;
  config.defer_depth = 4;
  config.shed_depth = 8;
  config.recover_rounds = 2;
  return config;
}

TEST(Admission, LadderEscalatesAndRecoversWithHysteresis) {
  AdmissionController admission(TightConfig());
  EXPECT_EQ(admission.level(), AdmissionLevel::kOpen);

  admission.Update(0, 5);  // > defer_depth
  EXPECT_EQ(admission.level(), AdmissionLevel::kDefer);
  admission.Update(1, 9);  // > shed_depth
  EXPECT_EQ(admission.level(), AdmissionLevel::kShed);

  // One calm round is not enough (recover_rounds = 2) ...
  admission.Update(2, 3);
  EXPECT_EQ(admission.level(), AdmissionLevel::kShed);
  // ... two are, and recovery steps one rung at a time.
  admission.Update(3, 3);
  EXPECT_EQ(admission.level(), AdmissionLevel::kDefer);
  admission.Update(4, 3);
  admission.Update(5, 3);
  EXPECT_EQ(admission.level(), AdmissionLevel::kOpen);

  // The transition log captured every change in order.
  ASSERT_EQ(admission.log().size(), 4u);
  EXPECT_EQ(admission.log()[0].level, AdmissionLevel::kDefer);
  EXPECT_EQ(admission.log()[1].level, AdmissionLevel::kShed);
  EXPECT_EQ(admission.log()[2].level, AdmissionLevel::kDefer);
  EXPECT_EQ(admission.log()[3].level, AdmissionLevel::kOpen);
  EXPECT_GT(admission.deferred_rounds(), 0u);
}

TEST(Admission, OnlyBackgroundIsEverSacrificed) {
  AdmissionController admission(TightConfig());
  admission.Update(0, 100);  // straight to shed
  ASSERT_EQ(admission.level(), AdmissionLevel::kShed);

  EXPECT_TRUE(admission.Admit(SlaClass::kLatencyCritical));
  EXPECT_TRUE(admission.Admit(SlaClass::kThroughput));
  EXPECT_FALSE(admission.Admit(SlaClass::kBackground));
  EXPECT_EQ(admission.shed_count(), 1u);

  EXPECT_TRUE(admission.DispatchAllowed(SlaClass::kLatencyCritical));
  EXPECT_TRUE(admission.DispatchAllowed(SlaClass::kThroughput));
  EXPECT_FALSE(admission.DispatchAllowed(SlaClass::kBackground));
}

// ------------------------------------------------------------- Server

std::string ReportText(const FleetReport& report) {
  std::ostringstream os;
  report.Write(os);
  return os.str();
}

TEST(Server, FleetReportByteIdenticalAcrossJobCounts) {
  std::string golden;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    ServerOptions options;
    options.jobs = jobs;
    Server server(SyntheticFleet(16, 6, 5), options);
    const std::string text = ReportText(server.Run());
    if (golden.empty()) {
      golden = text;
    } else {
      EXPECT_EQ(golden, text) << "fleet report depends on --jobs";
    }
  }
  EXPECT_NE(golden.find("== serve fleet report =="), std::string::npos);
}

TEST(Server, CommittedSmokeFleetReplaysDeterministically) {
  const std::filesystem::path path =
      std::filesystem::path(ACTG_TEST_DATA_DIR) / "serve_smoke3.serve";
  std::string golden;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::ifstream is(path);
    ASSERT_TRUE(is) << path;
    std::ostringstream report;
    auto server = RunServeFile(is, jobs, report);
    ASSERT_TRUE(server.ok()) << server.error().message();
    if (golden.empty()) {
      golden = report.str();
    } else {
      EXPECT_EQ(golden, report.str());
    }
    // The smoke fleet is tuned to walk the whole admission ladder.
    EXPECT_GT(server.value()->report().deferred_rounds, 0u);
    for (const TenantReport& row : server.value()->report().tenants) {
      EXPECT_EQ(row.completed, row.requested);
    }
  }
}

TEST(Server, ShedsBackgroundWhileLatencyCriticalStaysAtBaseline) {
  // Baseline: the latency-critical tenant alone.
  TenantRequest lc;
  lc.name = "lc";
  lc.sla = SlaClass::kLatencyCritical;
  lc.workload = apps::TenantWorkload::kMpeg;
  lc.instances = 40;
  lc.seed = 2;
  lc.window = 10;

  FleetRequest baseline;
  baseline.config.seed = 5;
  baseline.tenants.push_back(lc);
  Server baseline_server(baseline, ServerOptions{});
  const TenantReport baseline_row = baseline_server.Run().tenants[0];

  // Overload: same tenant at the same index plus background tenants
  // arriving after the backlog has already blown past shed_depth.
  FleetRequest overload;
  overload.config.seed = 5;
  overload.config.defer_depth = 4;
  overload.config.shed_depth = 8;
  overload.tenants.push_back(lc);
  for (int i = 0; i < 4; ++i) {
    TenantRequest bg;
    bg.name = "bg" + std::to_string(i);
    bg.sla = SlaClass::kBackground;
    bg.workload = apps::TenantWorkload::kRandomFlat;
    bg.instances = 6;
    bg.seed = 100 + static_cast<std::uint64_t>(i);
    bg.arrival = 1;
    overload.tenants.push_back(bg);
  }
  ServerOptions options;
  options.jobs = 4;
  Server overloaded(overload, options);
  const FleetReport& report = overloaded.Run();

  // Background load was demonstrably shed ...
  EXPECT_GT(report.shed_tenants, 0u);
  EXPECT_EQ(report.shed_tenants,
            report.sla[static_cast<std::size_t>(SlaClass::kBackground)]
                .shed_tenants);
  bool any_shed_row = false;
  for (const TenantReport& row : report.tenants) {
    if (row.shed) {
      any_shed_row = true;
      EXPECT_EQ(row.sla, SlaClass::kBackground);
      EXPECT_EQ(row.completed, 0u);
    }
  }
  EXPECT_TRUE(any_shed_row);

  // ... while the latency-critical tenant reproduced its single-tenant
  // baseline bit for bit (same substream, isolated session state).
  const TenantReport& lc_row = report.tenants[0];
  EXPECT_EQ(lc_row.deadline_misses, baseline_row.deadline_misses);
  EXPECT_DOUBLE_EQ(lc_row.energy_mj, baseline_row.energy_mj);
  EXPECT_DOUBLE_EQ(lc_row.max_makespan_ms, baseline_row.max_makespan_ms);
  EXPECT_EQ(lc_row.reschedules, baseline_row.reschedules);
  EXPECT_EQ(lc_row.completed, baseline_row.completed);
}

TEST(Server, ShareCacheModeHitsAcrossIdenticalTenants) {
  auto make_fleet = [](bool share) {
    FleetRequest fleet;
    fleet.config.seed = 3;
    fleet.config.share_cache = share;
    for (int i = 0; i < 2; ++i) {
      TenantRequest tenant;
      tenant.name = "m" + std::to_string(i);
      tenant.workload = apps::TenantWorkload::kMpeg;
      tenant.instances = 3;
      tenant.seed = 1;  // identical models -> identical cache keys
      fleet.tenants.push_back(tenant);
    }
    return fleet;
  };

  Server shared(make_fleet(true), ServerOptions{});
  shared.Run();
  EXPECT_GT(shared.cache().hits(), 0u)
      << "share_cache tenants with identical models should hit";

  Server partitioned(make_fleet(false), ServerOptions{});
  partitioned.Run();
  EXPECT_EQ(partitioned.cache().hits(), 0u)
      << "tenant-partitioned keys must never alias";
}

TEST(Server, MetricsCountersMatchDeterministicReport) {
  ServerOptions options;
  options.jobs = 2;
  Server server(SyntheticFleet(8, 4, 7), options);
  const FleetReport& report = server.Run();
  for (std::size_t cls = 0; cls < kSlaClassCount; ++cls) {
    const std::string label(SlaLabel(static_cast<SlaClass>(cls)));
    EXPECT_EQ(server.metrics().counter("serve." + label + ".instances"),
              report.sla[cls].instances);
    EXPECT_EQ(
        server.metrics().counter("serve." + label + ".deadline_misses"),
        report.sla[cls].deadline_misses);
  }
  // Every dispatched slice produced one latency sample per class.
  std::size_t slices = 0;
  for (std::size_t cls = 0; cls < kSlaClassCount; ++cls) {
    const auto sla = static_cast<SlaClass>(cls);
    slices += server.Latency(sla).samples;
    EXPECT_EQ(server.metrics().samples(
                  "serve." + std::string(SlaLabel(sla)) +
                  ".slice_latency_ms"),
              server.Latency(sla).samples);
  }
  EXPECT_GT(slices, 0u);
}

TEST(Server, RunIsValidOnce) {
  Server server(SyntheticFleet(4, 2, 1), ServerOptions{});
  server.Run();
  EXPECT_THROW(server.Run(), InvalidArgument);
}

// ----------------------------------------------------------- Watchdog

// The watchdog is wall-clock, so WHERE it fires is not deterministic in
// general; the two end states below are. A denormal-small deadline has
// already passed at the first cooperative check (NewApp), so every
// dispatched session quarantines before completing any work.
TEST(Server, TightWatchdogQuarantinesEveryTenantAndStillTerminates) {
  ServerOptions options;
  options.session_deadline_ms = std::numeric_limits<double>::min();
  Server server(SyntheticFleet(8, 4, 3), options);
  const FleetReport& report = server.Run();

  EXPECT_EQ(report.quarantined_tenants, report.tenants.size());
  for (const TenantReport& row : report.tenants) {
    EXPECT_TRUE(row.quarantined);
    EXPECT_EQ(row.completed, 0u);
    EXPECT_EQ(row.reschedules, 0u);  // deadlined before the app built
  }
  const std::string text = ReportText(report);
  EXPECT_NE(text.find(" quarantined 8"), std::string::npos);
  EXPECT_NE(text.find(" quarantined\n"), std::string::npos);
}

// A generous deadline never fires, so the armed run's report must be
// byte-identical to the unarmed golden — arming the watchdog costs
// nothing when sessions behave.
TEST(Server, GenerousWatchdogLeavesTheReportByteIdentical) {
  Server unarmed(SyntheticFleet(8, 4, 3), ServerOptions{});
  const std::string golden = ReportText(unarmed.Run());
  EXPECT_EQ(golden.find("quarantined"), std::string::npos);

  ServerOptions options;
  options.session_deadline_ms = 1e12;
  Server armed(SyntheticFleet(8, 4, 3), options);
  EXPECT_EQ(golden, ReportText(armed.Run()));
}

// Quarantine is terminal on the session itself: no further events, no
// shutdown, no resurrection.
TEST(Session, QuarantineIsTerminal) {
  Session session = MakeSession();
  session.Quarantine();
  EXPECT_EQ(session.state(), SessionState::kQuarantined);
  EXPECT_THROW(session.NewApp(), InvalidArgument);
  EXPECT_THROW(session.Shutdown(), InvalidArgument);
  EXPECT_THROW(session.Quarantine(), InvalidArgument);
}

}  // namespace
}  // namespace actg::serve
