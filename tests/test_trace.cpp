#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "apps/fig1_example.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "util/error.h"
#include "util/stats.h"

namespace actg::trace {
namespace {

class TraceFixture : public ::testing::Test {
 protected:
  TraceFixture() : ex_(apps::MakeFig1Example()) {}
  TaskId ForkA() const { return ex_.tau(3); }
  TaskId ForkB() const { return ex_.tau(5); }

  ctg::BranchAssignment Assign(int a, int b) const {
    ctg::BranchAssignment asg(ex_.graph.task_count());
    if (a >= 0) asg.Set(ForkA(), a);
    if (b >= 0) asg.Set(ForkB(), b);
    return asg;
  }

  apps::Fig1Example ex_;
};

TEST_F(TraceFixture, AppendAndAccess) {
  BranchTrace t(ex_.graph.task_count());
  EXPECT_TRUE(t.empty());
  t.Append(Assign(0, -1));
  t.Append(Assign(1, 0));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.At(1).Get(ForkA()), 1);
  EXPECT_THROW(t.At(2), InvalidArgument);
}

TEST_F(TraceFixture, SizeMismatchRejected) {
  BranchTrace t(4);
  EXPECT_THROW(t.Append(Assign(0, 0)), InvalidArgument);
}

TEST_F(TraceFixture, EmpiricalProbabilityCountsResolvedOnly) {
  BranchTrace t(ex_.graph.task_count());
  t.Append(Assign(0, -1));
  t.Append(Assign(0, -1));
  t.Append(Assign(1, 0));
  t.Append(Assign(1, 1));
  EXPECT_DOUBLE_EQ(t.EmpiricalProbability(ForkA(), 0), 0.5);
  // Fork B resolved in only 2 of 4 instances.
  EXPECT_DOUBLE_EQ(t.EmpiricalProbability(ForkB(), 0), 0.5);
  EXPECT_DOUBLE_EQ(t.EmpiricalProbability(ForkA(), 1, 0, 2), 0.0);
}

TEST_F(TraceFixture, SliceIsHalfOpen) {
  BranchTrace t(ex_.graph.task_count());
  for (int i = 0; i < 6; ++i) t.Append(Assign(i % 2, -1));
  const BranchTrace mid = t.Slice(2, 5);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.At(0).Get(ForkA()), 0);
  EXPECT_THROW(t.Slice(4, 2), InvalidArgument);
  EXPECT_THROW(t.Slice(0, 9), InvalidArgument);
}

TEST_F(TraceFixture, ProfiledProbabilitiesMatchCounts) {
  BranchTrace t(ex_.graph.task_count());
  for (int i = 0; i < 10; ++i) t.Append(Assign(i < 7 ? 0 : 1, -1));
  const auto probs = t.ProfiledProbabilities(ex_.graph);
  EXPECT_NEAR(probs.Outcome(ForkA(), 0), 0.7, 1e-12);
  // Fork B never resolved -> uniform prior.
  EXPECT_NEAR(probs.Outcome(ForkB(), 0), 0.5, 1e-12);
}

// ---------------------------------------------------------------------------
// Probability processes

TEST(ConstantProcess, AlwaysSameDistribution) {
  util::Random rng(1);
  ConstantProcess p({0.3, 0.7});
  for (int i = 0; i < 5; ++i) {
    const auto d = p.Step(rng);
    EXPECT_DOUBLE_EQ(d[0], 0.3);
    EXPECT_DOUBLE_EQ(d[1], 0.7);
  }
  EXPECT_EQ(p.outcome_count(), 2);
}

TEST(ConstantProcess, ValidatesDistribution) {
  EXPECT_THROW(ConstantProcess({1.0}), InvalidArgument);
  EXPECT_THROW(ConstantProcess({0.6, 0.6}), InvalidArgument);
}

TEST(RandomWalkProcess, StaysNormalizedAndBounded) {
  util::Random rng(2);
  RandomWalkProcess::Params params;
  params.initial_weights = {0.5, 0.5};
  params.step_sigma = 0.1;
  params.jump_probability = 0.05;
  RandomWalkProcess p(params);
  for (int i = 0; i < 2000; ++i) {
    const auto d = p.Step(rng);
    ASSERT_EQ(d.size(), 2u);
    EXPECT_NEAR(d[0] + d[1], 1.0, 1e-12);
    EXPECT_GT(d[0], 0.0);
    EXPECT_LT(d[0], 1.0);
  }
}

TEST(RandomWalkProcess, ZeroSigmaNoJumpIsConstant) {
  util::Random rng(3);
  RandomWalkProcess::Params params;
  params.initial_weights = {0.4, 0.8};
  params.step_sigma = 0.0;
  RandomWalkProcess p(params);
  const auto first = p.Step(rng);
  const auto later = p.Step(rng);
  EXPECT_DOUBLE_EQ(first[0], later[0]);
  EXPECT_NEAR(first[0], 0.4 / 1.2, 1e-12);
}

TEST(RandomWalkProcess, ValidatesParams) {
  RandomWalkProcess::Params params;
  params.initial_weights = {0.5, 0.5};
  params.floor = 0.0;
  EXPECT_THROW((RandomWalkProcess{params}), InvalidArgument);
  params.floor = 0.05;
  params.initial_weights = {0.01, 0.5};  // below floor
  EXPECT_THROW((RandomWalkProcess{params}), InvalidArgument);
}

TEST(PiecewiseProcess, CyclesThroughRegimes) {
  util::Random rng(4);
  PiecewiseProcess p({{{0.9, 0.1}, 2}, {{0.2, 0.8}, 1}});
  EXPECT_DOUBLE_EQ(p.Step(rng)[0], 0.9);
  EXPECT_DOUBLE_EQ(p.Step(rng)[0], 0.9);
  EXPECT_DOUBLE_EQ(p.Step(rng)[0], 0.2);
  EXPECT_DOUBLE_EQ(p.Step(rng)[0], 0.9);  // wraps around
}

TEST(PiecewiseProcess, ValidatesRegimes) {
  EXPECT_THROW(PiecewiseProcess({}), InvalidArgument);
  EXPECT_THROW(PiecewiseProcess({{{0.9, 0.1}, 0}}), InvalidArgument);
  EXPECT_THROW(PiecewiseProcess({{{0.9, 0.1}, 1}, {{0.2, 0.3, 0.5}, 1}}),
               InvalidArgument);
}

TEST(SinusoidProcess, OscillatesAroundCenterWithAmplitude) {
  util::Random rng(5);
  SinusoidProcess::Params params;
  params.center = 0.5;
  params.amplitude = 0.3;
  params.period = 40.0;
  SinusoidProcess p(params);
  util::RunningStats stats;
  for (int i = 0; i < 400; ++i) stats.Add(p.Step(rng)[0]);
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.max(), 0.8, 0.01);
  EXPECT_NEAR(stats.min(), 0.2, 0.01);
}

TEST(SinusoidProcess, ResidualSplitsAcrossOutcomes) {
  util::Random rng(6);
  SinusoidProcess::Params params;
  params.outcomes = 3;
  params.amplitude = 0.0;
  SinusoidProcess p(params);
  const auto d = p.Step(rng);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_NEAR(d[0], 0.5, 1e-12);
  EXPECT_NEAR(d[1], 0.25, 1e-12);
  EXPECT_NEAR(d[2], 0.25, 1e-12);
}

TEST(SinusoidProcess, ValidatesRange) {
  SinusoidProcess::Params params;
  params.center = 0.5;
  params.amplitude = 0.6;  // would leave [0, 1]
  EXPECT_THROW((SinusoidProcess{params}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// TraceGenerator

TEST_F(TraceFixture, GeneratorRequiresAllForks) {
  TraceGenerator gen(ex_.graph);
  EXPECT_FALSE(gen.Complete());
  gen.SetProcess(ForkA(),
                 std::make_unique<ConstantProcess>(
                     std::vector<double>{0.5, 0.5}));
  EXPECT_FALSE(gen.Complete());
  util::Random rng(7);
  EXPECT_THROW(gen.Generate(10, rng), InvalidArgument);
  gen.SetProcess(ForkB(),
                 std::make_unique<ConstantProcess>(
                     std::vector<double>{0.5, 0.5}));
  EXPECT_TRUE(gen.Complete());
  EXPECT_EQ(gen.Generate(10, rng).size(), 10u);
}

TEST_F(TraceFixture, GeneratorRejectsArityMismatch) {
  TraceGenerator gen(ex_.graph);
  EXPECT_THROW(
      gen.SetProcess(ForkA(), std::make_unique<ConstantProcess>(
                                  std::vector<double>{0.2, 0.3, 0.5})),
      InvalidArgument);
  EXPECT_THROW(
      gen.SetProcess(ex_.tau(1), std::make_unique<ConstantProcess>(
                                     std::vector<double>{0.5, 0.5})),
      InvalidArgument);
}

TEST_F(TraceFixture, GeneratedFrequenciesMatchProcess) {
  TraceGenerator gen(ex_.graph);
  gen.SetProcess(ForkA(), std::make_unique<ConstantProcess>(
                              std::vector<double>{0.8, 0.2}));
  gen.SetProcess(ForkB(), std::make_unique<ConstantProcess>(
                              std::vector<double>{0.3, 0.7}));
  util::Random rng(8);
  const BranchTrace t = gen.Generate(20000, rng);
  EXPECT_NEAR(t.EmpiricalProbability(ForkA(), 0), 0.8, 0.01);
  EXPECT_NEAR(t.EmpiricalProbability(ForkB(), 0), 0.3, 0.01);
}

TEST_F(TraceFixture, TrueProbabilityHistoryRecorded) {
  TraceGenerator gen(ex_.graph);
  gen.SetProcess(ForkA(), std::make_unique<ConstantProcess>(
                              std::vector<double>{0.8, 0.2}));
  gen.SetProcess(ForkB(), std::make_unique<ConstantProcess>(
                              std::vector<double>{0.3, 0.7}));
  util::Random rng(9);
  gen.Generate(50, rng);
  const auto& history = gen.TrueProbabilityHistory(ForkA());
  ASSERT_EQ(history.size(), 50u);
  EXPECT_DOUBLE_EQ(history[0], 0.8);
  EXPECT_DOUBLE_EQ(history[49], 0.8);
}

TEST_F(TraceFixture, GenerationIsDeterministicInSeed) {
  auto make = [&](std::uint64_t seed) {
    TraceGenerator gen(ex_.graph);
    RandomWalkProcess::Params params;
    params.initial_weights = {0.5, 0.5};
    params.step_sigma = 0.05;
    gen.SetProcess(ForkA(),
                   std::make_unique<RandomWalkProcess>(params));
    gen.SetProcess(ForkB(),
                   std::make_unique<RandomWalkProcess>(params));
    util::Random rng(seed);
    return gen.Generate(200, rng);
  };
  const BranchTrace a = make(42), b = make(42), c = make(43);
  int diff_ab = 0, diff_ac = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.At(i).Get(ForkA()) != b.At(i).Get(ForkA())) ++diff_ab;
    if (a.At(i).Get(ForkA()) != c.At(i).Get(ForkA())) ++diff_ac;
  }
  EXPECT_EQ(diff_ab, 0);
  EXPECT_GT(diff_ac, 0);
}


TEST(MarkovProcess, ValidatesInputs) {
  MarkovProcess::Params params;
  params.state_dists = {{0.9, 0.1}, {0.2, 0.8}};
  params.transitions = {{0.95, 0.05}, {0.1, 0.9}};
  EXPECT_NO_THROW((MarkovProcess{params}));
  params.transitions = {{0.95, 0.05}};
  EXPECT_THROW((MarkovProcess{params}), InvalidArgument);
  params.transitions = {{0.95, 0.15}, {0.1, 0.9}};  // row sums to 1.1
  EXPECT_THROW((MarkovProcess{params}), InvalidArgument);
  params.transitions = {{0.95, 0.05}, {0.1, 0.9}};
  params.initial_state = 5;
  EXPECT_THROW((MarkovProcess{params}), InvalidArgument);
  params.initial_state = 0;
  params.state_dists = {{0.9, 0.1}, {0.2, 0.3, 0.5}};  // arity mismatch
  EXPECT_THROW((MarkovProcess{params}), InvalidArgument);
}

TEST(MarkovProcess, StationaryMixMatchesChain) {
  // Two-state chain with stationary distribution (2/3, 1/3):
  // transitions 0->1 at 0.1, 1->0 at 0.2.
  MarkovProcess::Params params;
  params.state_dists = {{0.9, 0.1}, {0.2, 0.8}};
  params.transitions = {{0.9, 0.1}, {0.2, 0.8}};
  MarkovProcess p(params);
  util::Random rng(17);
  double mean_p0 = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) mean_p0 += p.Step(rng)[0];
  mean_p0 /= n;
  // E[p0] = (2/3)*0.9 + (1/3)*0.2 = 0.6667.
  EXPECT_NEAR(mean_p0, 2.0 / 3.0 * 0.9 + 1.0 / 3.0 * 0.2, 0.02);
}

TEST(MarkovProcess, DwellTimesAreGeometric) {
  MarkovProcess::Params params;
  params.state_dists = {{0.9, 0.1}, {0.2, 0.8}};
  params.transitions = {{0.95, 0.05}, {0.05, 0.95}};
  MarkovProcess p(params);
  util::Random rng(18);
  // Measure average run length of the hidden state; for stay-prob 0.95
  // the mean dwell is 1/0.05 = 20.
  int runs = 0, steps = 20000;
  std::size_t last = p.state();
  for (int i = 0; i < steps; ++i) {
    p.Step(rng);
    if (p.state() != last) {
      ++runs;
      last = p.state();
    }
  }
  const double mean_dwell = static_cast<double>(steps) / (runs + 1);
  EXPECT_NEAR(mean_dwell, 20.0, 4.0);
}

TEST_F(TraceFixture, MarkovProcessDrivesGenerator) {
  TraceGenerator gen(ex_.graph);
  MarkovProcess::Params params;
  params.state_dists = {{0.9, 0.1}, {0.1, 0.9}};
  params.transitions = {{0.98, 0.02}, {0.02, 0.98}};
  gen.SetProcess(ForkA(), std::make_unique<MarkovProcess>(params));
  gen.SetProcess(ForkB(), std::make_unique<MarkovProcess>(params));
  util::Random rng(19);
  const BranchTrace t = gen.Generate(2000, rng);
  // Long-run average near 0.5 (symmetric chain), but windows cluster at
  // the two modes.
  EXPECT_NEAR(t.EmpiricalProbability(ForkA(), 0), 0.5, 0.15);
  int extreme_windows = 0;
  for (std::size_t begin = 0; begin + 100 <= t.size(); begin += 100) {
    const double p = t.EmpiricalProbability(ForkA(), 0, begin, begin + 100);
    if (p < 0.25 || p > 0.75) ++extreme_windows;
  }
  EXPECT_GT(extreme_windows, 5);
}

}  // namespace
}  // namespace actg::trace


// ---------------------------------------------------------------------------
// Structured tracing (src/obs): span lifecycle, export determinism and
// the disabled fast path.
// ---------------------------------------------------------------------------

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "dvfs/algorithms.h"
#include "dvfs/policy.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "runtime/pool.h"
#include "sched/dls.h"

namespace actg::obs {
namespace {

TraceOptions Deterministic() {
  TraceOptions options;
  options.deterministic_clock = true;
  return options;
}

/// Event key ignoring timestamps and thread ids: the part of the trace
/// the determinism contract covers.
std::vector<std::string> ContentKeys(const std::vector<TraceEvent>& events) {
  std::vector<std::string> keys;
  keys.reserve(events.size());
  for (const TraceEvent& e : events) {
    std::string key;
    key += static_cast<char>(e.phase);
    key += '|';
    key += e.name;
    key += '|';
    key += e.category;
    for (const TraceArg& arg : e.args) {
      key += '|';
      key += arg.key;
      key += '=';
      key += arg.value;
    }
    keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

#ifndef ACTG_OBS_DISABLED

TEST(ObsTrace, SpanNestingAndLifecycle) {
  TraceSession session(Deterministic());
  {
    SessionGuard guard(&session);
    ASSERT_EQ(TraceSession::Current(), &session);
    ScopedSpan outer(TraceSession::Current(), "outer", "test");
    ASSERT_TRUE(outer.enabled());
    outer.AddArg(IntArg("tasks", 7));
    {
      ScopedSpan inner(TraceSession::Current(), "inner", "test");
      inner.AddArg(StrArg("policy", "online"));
      inner.AddArg(NumArg("ratio", 0.5));
    }
    session.Counter("calls", "test", 3.0);
    session.Instant("tick", "test", {IntArg("i", 1)});
  }
  EXPECT_EQ(TraceSession::Current(), nullptr);

  const std::vector<TraceEvent> events = session.Events();
  ASSERT_EQ(events.size(), 6u);
  // outer B, inner B, inner E, counter, instant, outer E — strictly
  // nested, sequence-numbered timestamps.
  EXPECT_EQ(events[0].phase, EventPhase::kBegin);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].phase, EventPhase::kBegin);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].phase, EventPhase::kEnd);
  EXPECT_EQ(events[2].name, "inner");
  ASSERT_EQ(events[2].args.size(), 2u);
  EXPECT_EQ(events[2].args[0].key, "policy");
  EXPECT_EQ(events[2].args[0].value, "online");
  EXPECT_TRUE(events[2].args[0].quoted);
  EXPECT_EQ(events[2].args[1].value, "0.5");
  EXPECT_EQ(events[3].phase, EventPhase::kCounter);
  EXPECT_EQ(events[4].phase, EventPhase::kInstant);
  EXPECT_EQ(events[5].phase, EventPhase::kEnd);
  EXPECT_EQ(events[5].name, "outer");
  ASSERT_EQ(events[5].args.size(), 1u);
  EXPECT_EQ(events[5].args[0].value, "7");
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, i) << "deterministic clock = sequence";
    EXPECT_EQ(events[i].tid, 0);
  }
}

TEST(ObsTrace, NullSessionRecordsNothing) {
  // No guard installed: instrumentation sees nullptr and must not touch
  // any session.
  ASSERT_EQ(TraceSession::Current(), nullptr);
  ScopedSpan span(TraceSession::Current(), "orphan", "test");
  EXPECT_FALSE(span.enabled());

  TraceSession bystander(Deterministic());
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  const auto probs = apps::UniformProbabilities(ex.graph);
  dvfs::RunWithPolicy("online", ex.graph, analysis, ex.platform, probs);
  EXPECT_TRUE(bystander.Events().empty());
  EXPECT_TRUE(bystander.Timeline().empty());
}

TEST(ObsTrace, PipelineSpansBalanceAndNest) {
  TraceSession session(Deterministic());
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  const auto probs = apps::UniformProbabilities(ex.graph);
  {
    SessionGuard guard(&session);
    dvfs::RunWithPolicy("online", ex.graph, analysis, ex.platform, probs);
  }
  const std::vector<TraceEvent> events = session.Events();
  ASSERT_FALSE(events.empty());
  // The pipeline records the scheduler, the path enumeration and the
  // stretch policy.
  auto has = [&](const std::string& name) {
    return std::any_of(events.begin(), events.end(),
                       [&](const TraceEvent& e) { return e.name == name; });
  };
  EXPECT_TRUE(has("sched.dls"));
  EXPECT_TRUE(has("dvfs.enumerate"));
  EXPECT_TRUE(has("dvfs.stretch"));
  // Begin/End balance per thread, never closing an unopened span.
  std::map<int, int> depth;
  for (const TraceEvent& e : events) {
    if (e.phase == EventPhase::kBegin) ++depth[e.tid];
    if (e.phase == EventPhase::kEnd) {
      --depth[e.tid];
      EXPECT_GE(depth[e.tid], 0);
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST(ObsTrace, GoldenChromeTraceFig1) {
  // Byte-exact export of the online pipeline on the paper's Fig. 1
  // example under the deterministic clock. Regenerate with
  //   ACTG_REGOLDEN=1 ./test_trace --gtest_filter='*GoldenChromeTrace*'
  TraceSession session(Deterministic());
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  const auto probs = apps::UniformProbabilities(ex.graph);
  {
    SessionGuard guard(&session);
    dvfs::RunWithPolicy("online", ex.graph, analysis, ex.platform, probs);
  }
  std::ostringstream out;
  WriteChromeTrace(out, session);

  const std::string golden_path =
      std::string(ACTG_TEST_GOLDEN_DIR) + "/fig1_trace.json";
  if (std::getenv("ACTG_REGOLDEN") != nullptr) {
    std::ofstream file(golden_path);
    ASSERT_TRUE(file.good()) << "cannot write " << golden_path;
    file << out.str();
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream file(golden_path);
  ASSERT_TRUE(file.good()) << "missing golden file " << golden_path
                           << " (run with ACTG_REGOLDEN=1)";
  std::ostringstream expected;
  expected << file.rdbuf();
  EXPECT_EQ(out.str(), expected.str());
}

TEST(ObsTrace, ChromeExportEscapesJson) {
  TraceSession session(Deterministic());
  session.Instant("quote\"back\\slash", "test",
                  {StrArg("k", "line\nbreak\ttab")});
  std::ostringstream out;
  WriteChromeTrace(out, session);
  const std::string json = out.str();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak\\ttab"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(ObsTrace, JobsOneVersusFourSameContent) {
  // The determinism contract: worker count changes timestamps and
  // thread ids, never the multiset of recorded span contents.
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  const auto probs = apps::UniformProbabilities(ex.graph);
  auto run = [&](std::size_t jobs) {
    TraceSession session;
    SessionGuard guard(&session);
    runtime::Pool pool(jobs);
    runtime::ParallelMap(pool, 6, [&](std::size_t) {
      sched::Schedule s =
          sched::RunDls(ex.graph, analysis, ex.platform, probs);
      dvfs::ApplyPolicy("online", s, probs);
      return 0;
    });
    return ContentKeys(session.Events());
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ObsTrace, AdaptiveControllerEmitsTimeline) {
  TraceSession session(Deterministic());
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  const auto probs = apps::UniformProbabilities(ex.graph);
  adaptive::AdaptiveOptions options;
  options.trace = &session;
  adaptive::AdaptiveController controller(ex.graph, analysis, ex.platform,
                                          probs, options);
  ctg::BranchAssignment assignment(ex.graph.task_count());
  for (TaskId fork : ex.graph.ForkIds()) assignment.Set(fork, 0);
  const std::size_t instances = 3;
  for (std::size_t i = 0; i < instances; ++i) {
    controller.ProcessInstance(assignment);
  }

  const std::vector<TimelineRow> rows = session.Timeline();
  const std::size_t pes = ex.platform.pe_count();
  ASSERT_EQ(rows.size(), instances * pes);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].unit, rows[0].unit);
    EXPECT_EQ(rows[i].iteration, i / pes);
    EXPECT_EQ(rows[i].pe, static_cast<int>(i % pes));
    EXPECT_GE(rows[i].mean_speed_ratio, 0.0);
    EXPECT_LE(rows[i].mean_speed_ratio, 1.0 + 1e-9);
  }

  std::ostringstream csv;
  WriteTimelineCsv(csv, session);
  std::istringstream lines(csv.str());
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "unit,iteration,pe,active_tasks,busy_ms,mean_speed_ratio,"
            "reschedules");
  std::size_t body = 0;
  for (std::string line; std::getline(lines, line);) ++body;
  EXPECT_EQ(body, rows.size());

  // The controller also spans every instance and counts reschedules.
  const auto events = session.Events();
  EXPECT_TRUE(std::any_of(events.begin(), events.end(),
                          [](const TraceEvent& e) {
                            return e.name == "adaptive.instance";
                          }));
  EXPECT_TRUE(std::any_of(events.begin(), events.end(),
                          [](const TraceEvent& e) {
                            return e.phase == EventPhase::kCounter &&
                                   e.name == "adaptive.reschedule_calls";
                          }));
}

#else  // ACTG_OBS_DISABLED

TEST(ObsTrace, DisabledBuildNeverInstallsASession) {
  TraceSession session;
  SessionGuard guard(&session);
  EXPECT_EQ(TraceSession::Current(), nullptr);
  ScopedSpan span(TraceSession::Current(), "any", "test");
  EXPECT_FALSE(span.enabled());
  EXPECT_TRUE(session.Events().empty());
}

#endif  // ACTG_OBS_DISABLED

}  // namespace
}  // namespace actg::obs
