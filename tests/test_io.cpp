#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/cruise.h"
#include "apps/fig1_example.h"
#include "apps/mpeg.h"
#include "ctg/activation.h"
#include "io/text_format.h"
#include "tgff/random_ctg.h"
#include "util/error.h"

namespace actg::io {
namespace {

void ExpectGraphsEqual(const ctg::Ctg& a, const ctg::Ctg& b) {
  ASSERT_EQ(a.task_count(), b.task_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_DOUBLE_EQ(a.deadline_ms(), b.deadline_ms());
  for (TaskId t : a.TaskIds()) {
    EXPECT_EQ(a.task(t).name, b.task(t).name);
    EXPECT_EQ(a.task(t).join, b.task(t).join);
  }
  for (EdgeId e : a.EdgeIds()) {
    EXPECT_EQ(a.edge(e).src, b.edge(e).src);
    EXPECT_EQ(a.edge(e).dst, b.edge(e).dst);
    EXPECT_DOUBLE_EQ(a.edge(e).comm_kbytes, b.edge(e).comm_kbytes);
    EXPECT_EQ(a.edge(e).condition.has_value(),
              b.edge(e).condition.has_value());
    if (a.edge(e).condition.has_value()) {
      EXPECT_EQ(a.edge(e).condition->outcome,
                b.edge(e).condition->outcome);
    }
  }
  ASSERT_EQ(a.ForkIds(), b.ForkIds());
  for (TaskId fork : a.ForkIds()) {
    EXPECT_EQ(a.OutcomeCount(fork), b.OutcomeCount(fork));
    for (int o = 0; o < a.OutcomeCount(fork); ++o) {
      EXPECT_EQ(a.OutcomeLabel(fork, o), b.OutcomeLabel(fork, o));
    }
  }
}

void ExpectPlatformsEqual(const arch::Platform& a,
                          const arch::Platform& b) {
  ASSERT_EQ(a.task_count(), b.task_count());
  ASSERT_EQ(a.pe_count(), b.pe_count());
  for (PeId pe : a.PeIds()) {
    EXPECT_EQ(a.pe(pe).name, b.pe(pe).name);
    EXPECT_DOUBLE_EQ(a.pe(pe).min_speed_ratio, b.pe(pe).min_speed_ratio);
    EXPECT_EQ(a.pe(pe).speed_levels, b.pe(pe).speed_levels);
    for (PeId other : a.PeIds()) {
      if (pe == other) continue;
      EXPECT_DOUBLE_EQ(a.Bandwidth(pe, other), b.Bandwidth(pe, other));
      EXPECT_DOUBLE_EQ(a.TxEnergyPerKb(pe, other),
                       b.TxEnergyPerKb(pe, other));
    }
  }
  for (std::size_t t = 0; t < a.task_count(); ++t) {
    for (PeId pe : a.PeIds()) {
      const TaskId task{static_cast<int>(t)};
      EXPECT_DOUBLE_EQ(a.Wcet(task, pe), b.Wcet(task, pe));
      EXPECT_DOUBLE_EQ(a.Energy(task, pe), b.Energy(task, pe));
    }
  }
}

TEST(CtgRoundTrip, Fig1Example) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  std::stringstream buffer;
  WriteCtg(buffer, ex.graph);
  const ctg::Ctg parsed = ParseCtg(buffer).value();
  ExpectGraphsEqual(ex.graph, parsed);
  // The round-tripped graph supports the same analysis.
  const ctg::ActivationAnalysis analysis(parsed);
  EXPECT_TRUE(analysis.MutuallyExclusive(TaskId{3}, TaskId{4}));
}

TEST(CtgRoundTrip, MpegAndCruise) {
  for (int which = 0; which < 2; ++which) {
    ctg::Ctg original = which == 0 ? apps::MakeMpegModel().graph
                                   : apps::MakeCruiseModel().graph;
    std::stringstream buffer;
    WriteCtg(buffer, original);
    ExpectGraphsEqual(original, ParseCtg(buffer).value());
  }
}

TEST(CtgRoundTrip, RandomGraphSweep) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    tgff::RandomCtgParams params;
    params.task_count = 20;
    params.fork_count = 2;
    params.seed = seed;
    const tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
    std::stringstream buffer;
    WriteCtg(buffer, rc.graph);
    ExpectGraphsEqual(rc.graph, ParseCtg(buffer).value());
  }
}

TEST(PlatformRoundTrip, MpegPlatformWithLevels) {
  const apps::MpegModel model = apps::MakeMpegModel();
  std::stringstream buffer;
  WritePlatform(buffer, model.platform);
  ExpectPlatformsEqual(model.platform,
                       ParsePlatform(buffer).value());
}

TEST(PlatformRoundTrip, DiscreteLevelsSurvive) {
  arch::PlatformBuilder builder(2, 2);
  builder.SetTaskCost(TaskId{0}, PeId{0}, 1.5, 2.0);
  builder.SetTaskCost(TaskId{0}, PeId{1}, 2.5, 1.0);
  builder.SetTaskCost(TaskId{1}, PeId{0}, 3.0, 4.0);
  builder.SetTaskCost(TaskId{1}, PeId{1}, 1.0, 0.5);
  builder.SetSpeedLevels(PeId{0}, {0.25, 0.5, 1.0});
  builder.SetLink(PeId{0}, PeId{1}, 12.5, 0.125);
  const arch::Platform original = std::move(builder).Build();
  std::stringstream buffer;
  WritePlatform(buffer, original);
  ExpectPlatformsEqual(original, ParsePlatform(buffer).value());
}

TEST(Parsing, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer(R"(# a comment
ctg v1

task a and   # trailing comment
task b or
edge 0 1 4.5 -
end
)");
  const ctg::Ctg graph = ParseCtg(buffer).value();
  EXPECT_EQ(graph.task_count(), 2u);
  EXPECT_EQ(graph.task(TaskId{1}).join, ctg::JoinType::kOr);
  EXPECT_DOUBLE_EQ(graph.edge(EdgeId{0}).comm_kbytes, 4.5);
}

TEST(Parsing, ErrorsCarryLineNumbers) {
  std::stringstream buffer("ctg v1\ntask a and\nedge 0 9 1.0 -\nend\n");
  try {
    ParseCtg(buffer).value();
    FAIL() << "expected a throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parsing, RejectsMalformedInput) {
  const char* cases[] = {
      "nonsense\n",
      "ctg v2\nend\n",
      "ctg v1\ntask a maybe\nend\n",
      "ctg v1\ntask a and\nedge 0 0 1.0 -\nend\n",   // self loop
      "ctg v1\ntask a and\nedge zero 0 1.0 -\nend\n",
      "ctg v1\ntask a and\n",                        // missing end
      "ctg v1\ndeadline -5\ntask a and\nend\n",
  };
  for (const char* text : cases) {
    std::stringstream buffer(text);
    EXPECT_THROW(ParseCtg(buffer).value(), InvalidArgument) << text;
  }
}

TEST(Parsing, RejectsMalformedPlatform) {
  const char* cases[] = {
      "platform v1\nend\n",                      // missing dims
      "platform v1\ndims 0 1\nend\n",
      "platform v1\ndims 1 1\ncost 0 0 1.0 1.0\n",  // missing end
      "platform v1\ndims 1 1\ncost 0 5 1.0 1.0\nend\n",
      "platform v1\ndims 1 1\nend\n",            // missing cost
  };
  for (const char* text : cases) {
    std::stringstream buffer(text);
    EXPECT_THROW(ParsePlatform(buffer).value(), InvalidArgument) << text;
  }
}

TEST(ExpectedParsing, ParseCtgReportsErrorsAsValues) {
  std::istringstream bad("ctg 2 1\nthis is not a line\n");
  const util::Expected<ctg::Ctg> result = ParseCtg(bad);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error().message().empty());
  EXPECT_THROW(result.value(), InvalidArgument);
}

TEST(ExpectedParsing, ParsePlatformReportsErrorsAsValues) {
  std::istringstream bad("platform -3\n");
  const util::Expected<arch::Platform> result = ParsePlatform(bad);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error().message().empty());
}

TEST(ExpectedParsing, ParseIsDeterministic) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  std::ostringstream out;
  WriteCtg(out, ex.graph);
  std::istringstream first_in(out.str());
  std::istringstream second_in(out.str());
  const util::Expected<ctg::Ctg> parsed = ParseCtg(first_in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.error().ok());
  ExpectGraphsEqual(parsed.value(), ParseCtg(second_in).value());
}

// ---------------------------------------------------------------------
// Malformed-input corpus. Every file under tests/corpus/io must fail to
// parse, and its first line pins the diagnostic:
//
//   # expect: <substring of the error message>
//
// Files named ctg_* go through ParseCtg, platform_* through
// ParsePlatform. Adding a regression is dropping a file in the
// directory - no code change needed.

struct CorpusCase {
  std::filesystem::path path;
  std::string expect;
  std::string contents;
};

std::vector<CorpusCase> LoadCorpus() {
  const std::filesystem::path dir =
      std::filesystem::path(ACTG_TEST_CORPUS_DIR) / "io";
  std::vector<CorpusCase> cases;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    CorpusCase c;
    c.path = entry.path();
    std::ifstream in(c.path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    c.contents = buffer.str();
    const std::string marker = "# expect: ";
    const std::size_t line_end = c.contents.find('\n');
    std::string first = c.contents.substr(
        0, line_end == std::string::npos ? c.contents.size() : line_end);
    if (first.rfind(marker, 0) == 0) c.expect = first.substr(marker.size());
    cases.push_back(std::move(c));
  }
  std::sort(cases.begin(), cases.end(),
            [](const CorpusCase& a, const CorpusCase& b) {
              return a.path.filename() < b.path.filename();
            });
  return cases;
}

TEST(MalformedCorpus, EveryFileIsRejectedWithItsPinnedDiagnostic) {
  const std::vector<CorpusCase> cases = LoadCorpus();
  ASSERT_GE(cases.size(), 10u) << "corpus went missing";
  for (const CorpusCase& c : cases) {
    SCOPED_TRACE(c.path.filename().string());
    ASSERT_FALSE(c.expect.empty())
        << "corpus file lacks a '# expect: <substring>' first line";
    const std::string name = c.path.filename().string();
    std::istringstream in(c.contents);
    util::Error error;
    if (name.rfind("ctg_", 0) == 0) {
      error = ParseCtg(in).error();
    } else if (name.rfind("platform_", 0) == 0) {
      error = ParsePlatform(in).error();
    } else {
      FAIL() << "corpus files must be named ctg_* or platform_*";
    }
    EXPECT_FALSE(error.ok()) << "malformed input parsed successfully";
    EXPECT_NE(error.message().find(c.expect), std::string::npos)
        << "diagnostic was: " << error.message();
  }
}

TEST(MalformedCorpus, DuplicateTaskNamesAreRejected) {
  std::istringstream in(
      "ctg v1\ntask a and\ntask b and\ntask a or\nend\n");
  const util::Error error = ParseCtg(in).error();
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.message().find("duplicate task name 'a'"),
            std::string::npos)
      << error.message();
  EXPECT_NE(error.message().find("line 4"), std::string::npos)
      << error.message();
}

}  // namespace
}  // namespace actg::io
