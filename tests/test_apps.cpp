#include <gtest/gtest.h>

#include <set>

#include "apps/common.h"
#include "apps/cruise.h"
#include "apps/fig1_example.h"
#include "apps/mpeg.h"
#include "ctg/activation.h"
#include "sim/energy.h"
#include "sched/dls.h"
#include "util/error.h"

namespace actg::apps {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers

TEST(Common, UniformProbabilitiesCoversEveryFork) {
  const MpegModel m = MakeMpegModel();
  const auto probs = UniformProbabilities(m.graph);
  for (TaskId fork : m.graph.ForkIds()) {
    ASSERT_TRUE(probs.Has(fork));
    EXPECT_NEAR(probs.Outcome(fork, 0), 0.5, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// MPEG model (paper Fig. 3 / Section III.B)

TEST(Mpeg, PaperStructureCounts) {
  const MpegModel m = MakeMpegModel();
  EXPECT_EQ(m.graph.task_count(), 40u);   // "consists of 40 tasks"
  EXPECT_EQ(m.graph.ForkIds().size(), 9u);  // "including 9 branching nodes"
  EXPECT_EQ(m.platform.pe_count(), 3u);   // "consists of 3 PEs"
  EXPECT_EQ(m.fork_blocks.size(), 6u);    // branches c..h
  EXPECT_GT(m.graph.deadline_ms(), 0.0);
}

TEST(Mpeg, ForkHandlesAreForks) {
  const MpegModel m = MakeMpegModel();
  EXPECT_TRUE(m.graph.IsFork(m.fork_skipped));
  EXPECT_TRUE(m.graph.IsFork(m.fork_type));
  EXPECT_TRUE(m.graph.IsFork(m.fork_mv));
  for (TaskId f : m.fork_blocks) EXPECT_TRUE(m.graph.IsFork(f));
}

TEST(Mpeg, OutcomeLabelsFollowThePaper) {
  const MpegModel m = MakeMpegModel();
  EXPECT_EQ(m.graph.OutcomeLabel(m.fork_skipped, 0), "a1");
  EXPECT_EQ(m.graph.OutcomeLabel(m.fork_skipped, 1), "a2");
  EXPECT_EQ(m.graph.OutcomeLabel(m.fork_type, 0), "b1");
  EXPECT_EQ(m.graph.OutcomeLabel(m.fork_blocks[0], 0), "c1");
  EXPECT_EQ(m.graph.OutcomeLabel(m.fork_blocks[5], 1), "h2");
}

TEST(Mpeg, TypeForkNestedUnderSkipFork) {
  const MpegModel m = MakeMpegModel();
  const ctg::ActivationAnalysis analysis(m.graph);
  // mb_type runs only when the macroblock is not skipped (a1).
  const auto& gamma = analysis.Gamma(m.fork_type);
  ASSERT_EQ(gamma.size(), 1u);
  EXPECT_EQ(gamma[0].OutcomeOf(m.fork_skipped), 0);
}

TEST(Mpeg, BlockForksNestedUnderInter) {
  const MpegModel m = MakeMpegModel();
  const ctg::ActivationAnalysis analysis(m.graph);
  for (TaskId f : m.fork_blocks) {
    const auto& gamma = analysis.Gamma(f);
    ASSERT_EQ(gamma.size(), 1u);
    EXPECT_EQ(gamma[0].OutcomeOf(m.fork_skipped), 0);
    EXPECT_EQ(gamma[0].OutcomeOf(m.fork_type), 1);  // inter only
  }
}

TEST(Mpeg, IntraMacroblockEnergyExceedsSkipped) {
  const MpegModel m = MakeMpegModel();
  const ctg::ActivationAnalysis analysis(m.graph);
  const auto probs = UniformProbabilities(m.graph);
  const sched::Schedule s =
      sched::RunDls(m.graph, analysis, m.platform, probs);
  ctg::Minterm skipped(ctg::Condition{m.fork_skipped, 1});
  auto intra = *ctg::Minterm(ctg::Condition{m.fork_skipped, 0})
                    .Conjoin(ctg::Minterm(ctg::Condition{m.fork_type, 0}));
  EXPECT_GT(sim::ScenarioEnergy(s, intra),
            3.0 * sim::ScenarioEnergy(s, skipped));
}

TEST(Mpeg, DeterministicConstruction) {
  const MpegModel a = MakeMpegModel();
  const MpegModel b = MakeMpegModel();
  EXPECT_EQ(a.graph.task_count(), b.graph.task_count());
  EXPECT_DOUBLE_EQ(a.graph.deadline_ms(), b.graph.deadline_ms());
  for (TaskId t : a.graph.TaskIds()) {
    EXPECT_EQ(a.graph.task(t).name, b.graph.task(t).name);
  }
}

TEST(Mpeg, MovieProfilesMatchPaperClips) {
  const auto movies = MpegMovieProfiles();
  ASSERT_EQ(movies.size(), 8u);
  std::set<std::string> names;
  for (const auto& movie : movies) names.insert(movie.name);
  for (const char* expected :
       {"Airwolf", "Bike", "Bus", "Coaster", "Flower", "Shuttle",
        "Tennis", "Train"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  // Shuttle is the most volatile clip (largest call counts in Table 2).
  double shuttle_jump = 0.0, max_other = 0.0;
  for (const auto& movie : movies) {
    if (movie.name == "Shuttle") {
      shuttle_jump = movie.jump_probability;
    } else {
      max_other = std::max(max_other, movie.jump_probability);
    }
  }
  EXPECT_GT(shuttle_jump, max_other);
}

TEST(Mpeg, MovieTraceResolvesTopForkAlways) {
  const MpegModel m = MakeMpegModel();
  const auto movies = MpegMovieProfiles();
  const auto trace = GenerateMovieTrace(m, movies[0], 200);
  ASSERT_EQ(trace.size(), 200u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(trace.At(i).Get(m.fork_skipped), 0);
  }
}

TEST(Mpeg, DifferentMoviesDifferentTraces) {
  const MpegModel m = MakeMpegModel();
  const auto movies = MpegMovieProfiles();
  const auto a = GenerateMovieTrace(m, movies[0], 500);
  const auto b = GenerateMovieTrace(m, movies[1], 500);
  EXPECT_NE(a.EmpiricalProbability(m.fork_skipped, 0),
            b.EmpiricalProbability(m.fork_skipped, 0));
}

// ---------------------------------------------------------------------------
// Cruise controller (paper Section IV / Table 3)

TEST(Cruise, PaperStructureCounts) {
  const CruiseModel m = MakeCruiseModel();
  EXPECT_EQ(m.graph.task_count(), 32u);    // "consists of 32 tasks"
  EXPECT_EQ(m.graph.ForkIds().size(), 2u);  // "two branching nodes"
  EXPECT_EQ(m.platform.pe_count(), 5u);    // "a system with 5 PEs"
}

TEST(Cruise, DeadlineIsDoubleTheOptimumScheduleLength) {
  const CruiseModel m = MakeCruiseModel();
  const ctg::ActivationAnalysis analysis(m.graph);
  const sched::Schedule s = sched::RunDls(
      m.graph, analysis, m.platform, UniformProbabilities(m.graph));
  EXPECT_NEAR(m.graph.deadline_ms(), 2.0 * s.Makespan(), 1e-6);
}

TEST(Cruise, SameForkMintermsAlmostEqualInEnergy) {
  // "The CTG typically has two minterms resulting from a same branching
  // node that are almost equal in energy."
  const CruiseModel m = MakeCruiseModel();
  const ctg::ActivationAnalysis analysis(m.graph);
  const sched::Schedule s = sched::RunDls(
      m.graph, analysis, m.platform, UniformProbabilities(m.graph));
  const auto cruise = ctg::Minterm(ctg::Condition{m.fork_mode, 0});
  const auto accel =
      *cruise.Conjoin(ctg::Minterm(ctg::Condition{m.fork_law, 0}));
  const auto decel =
      *cruise.Conjoin(ctg::Minterm(ctg::Condition{m.fork_law, 1}));
  const double e_accel = sim::ScenarioEnergy(s, accel);
  const double e_decel = sim::ScenarioEnergy(s, decel);
  EXPECT_NEAR(e_accel / e_decel, 1.0, 0.05);
}

TEST(Cruise, RoadTracesRespectSequenceIdentity) {
  const CruiseModel m = MakeCruiseModel();
  const auto a = GenerateRoadTrace(m, 1, 300, 9);
  const auto b = GenerateRoadTrace(m, 1, 300, 9);
  const auto c = GenerateRoadTrace(m, 2, 300, 9);
  ASSERT_EQ(a.size(), 300u);
  int diff_ab = 0, diff_ac = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.At(i).Get(m.fork_mode) != b.At(i).Get(m.fork_mode)) ++diff_ab;
    if (a.At(i).Get(m.fork_mode) != c.At(i).Get(m.fork_mode)) ++diff_ac;
  }
  EXPECT_EQ(diff_ab, 0);
  EXPECT_GT(diff_ac, 0);
  EXPECT_THROW(GenerateRoadTrace(m, 0, 10, 1), actg::InvalidArgument);
  EXPECT_THROW(GenerateRoadTrace(m, 4, 10, 1), actg::InvalidArgument);
}

TEST(Cruise, CruiseModeDominatesRoadTraces) {
  const CruiseModel m = MakeCruiseModel();
  const auto trace = GenerateRoadTrace(m, 1, 1000, 3);
  EXPECT_GT(trace.EmpiricalProbability(m.fork_mode, 0), 0.7);
}

// ---------------------------------------------------------------------------
// Fig. 1 example

TEST(Fig1Model, ProbabilitiesMatchPaperDiscussion) {
  const Fig1Example ex = MakeFig1Example();
  EXPECT_NEAR(ex.probs.Outcome(ex.tau(5), 0), 0.5, 1e-12);  // prob(b1)
  EXPECT_EQ(ex.platform.pe_count(), 2u);
  EXPECT_GT(ex.graph.deadline_ms(), 0.0);
}

TEST(Fig1Model, DeadlineFactorScales) {
  const Fig1Example tight = MakeFig1Example(1.2);
  const Fig1Example loose = MakeFig1Example(2.4);
  EXPECT_NEAR(loose.graph.deadline_ms(),
              2.0 * tight.graph.deadline_ms(), 1e-6);
}

}  // namespace
}  // namespace actg::apps
