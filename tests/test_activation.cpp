#include <gtest/gtest.h>

#include <algorithm>

#include "apps/cruise.h"
#include "apps/fig1_example.h"
#include "apps/mpeg.h"
#include "ctg/activation.h"

namespace actg::ctg {
namespace {

// Paper Example 1 is the ground truth for this whole module:
// Γ(τ1)=Γ(τ2)=Γ(τ3)={1}, Γ(τ4)={a1}, Γ(τ5)={a2}, Γ(τ6)={a2b1},
// Γ(τ7)={a2b2}, Γ(τ8)={1,a1} (simplifying to 1), and τ8 implicitly
// depends on the fork τ3.
class Fig1Activation : public ::testing::Test {
 protected:
  Fig1Activation() : ex_(apps::MakeFig1Example()), analysis_(ex_.graph) {}

  TaskId tau(int i) const { return ex_.tau(i); }
  Minterm A(int o) const { return Minterm(Condition{tau(3), o}); }
  Minterm B(int o) const { return Minterm(Condition{tau(5), o}); }

  apps::Fig1Example ex_;
  ActivationAnalysis analysis_;
};

TEST_F(Fig1Activation, UnconditionalTasksHaveTrueGuard) {
  for (int i : {1, 2, 3}) {
    EXPECT_TRUE(analysis_.ActivationGuard(tau(i)).IsTrue())
        << "tau" << i;
  }
}

TEST_F(Fig1Activation, ConditionalGammaMatchesPaper) {
  ASSERT_EQ(analysis_.Gamma(tau(4)).size(), 1u);
  EXPECT_EQ(analysis_.Gamma(tau(4))[0], A(0));
  ASSERT_EQ(analysis_.Gamma(tau(5)).size(), 1u);
  EXPECT_EQ(analysis_.Gamma(tau(5))[0], A(1));
  ASSERT_EQ(analysis_.Gamma(tau(6)).size(), 1u);
  EXPECT_EQ(analysis_.Gamma(tau(6))[0], *A(1).Conjoin(B(0)));
  ASSERT_EQ(analysis_.Gamma(tau(7)).size(), 1u);
  EXPECT_EQ(analysis_.Gamma(tau(7))[0], *A(1).Conjoin(B(1)));
}

TEST_F(Fig1Activation, OrNodeGuardIsAlwaysTrue) {
  // Γ(τ8) = {1, a1} in the paper; with absorption X(τ8) = 1.
  EXPECT_TRUE(analysis_.ActivationGuard(tau(8)).IsTrue());
}

TEST_F(Fig1Activation, MutualExclusionPairs) {
  EXPECT_TRUE(analysis_.MutuallyExclusive(tau(4), tau(5)));
  EXPECT_TRUE(analysis_.MutuallyExclusive(tau(4), tau(6)));
  EXPECT_TRUE(analysis_.MutuallyExclusive(tau(4), tau(7)));
  EXPECT_TRUE(analysis_.MutuallyExclusive(tau(6), tau(7)));
  EXPECT_FALSE(analysis_.MutuallyExclusive(tau(5), tau(6)));
  EXPECT_FALSE(analysis_.MutuallyExclusive(tau(1), tau(4)));
  EXPECT_FALSE(analysis_.MutuallyExclusive(tau(2), tau(3)));
  EXPECT_FALSE(analysis_.MutuallyExclusive(tau(8), tau(6)));
}

TEST_F(Fig1Activation, MutexIsSymmetricAndIrreflexive) {
  for (TaskId a : ex_.graph.TaskIds()) {
    EXPECT_FALSE(analysis_.MutuallyExclusive(a, a));
    for (TaskId b : ex_.graph.TaskIds()) {
      EXPECT_EQ(analysis_.MutuallyExclusive(a, b),
                analysis_.MutuallyExclusive(b, a));
    }
  }
}

TEST_F(Fig1Activation, ImpliedDependencyOr8OnFork3) {
  // "in any case, τ8 must wait until both τ2 and τ3 finish."
  const auto& deps = analysis_.ImpliedForkDependencies();
  EXPECT_NE(std::find(deps.begin(), deps.end(),
                      std::make_pair(tau(3), tau(8))),
            deps.end());
}

TEST_F(Fig1Activation, ActivationProbabilities) {
  // prob(a1)=0.4, prob(b1)=0.5 from the example builder.
  EXPECT_NEAR(analysis_.ActivationProbability(tau(1), ex_.probs), 1.0,
              1e-12);
  EXPECT_NEAR(analysis_.ActivationProbability(tau(4), ex_.probs), 0.4,
              1e-12);
  EXPECT_NEAR(analysis_.ActivationProbability(tau(5), ex_.probs), 0.6,
              1e-12);
  EXPECT_NEAR(analysis_.ActivationProbability(tau(6), ex_.probs),
              0.6 * 0.5, 1e-12);
  EXPECT_NEAR(analysis_.ActivationProbability(tau(8), ex_.probs), 1.0,
              1e-12);
}

TEST_F(Fig1Activation, IsActiveUnderFullAssignment) {
  BranchAssignment asg(ex_.graph.task_count());
  asg.Set(tau(3), 1);  // a2
  asg.Set(tau(5), 0);  // b1
  EXPECT_TRUE(analysis_.IsActive(tau(6), asg));
  EXPECT_FALSE(analysis_.IsActive(tau(7), asg));
  EXPECT_FALSE(analysis_.IsActive(tau(4), asg));
  EXPECT_TRUE(analysis_.IsActive(tau(8), asg));
}

TEST_F(Fig1Activation, ScenariosMatchPaperMinterms) {
  // Scenarios: a1 (fork b never resolves), a2b1, a2b2.
  const auto scenarios = analysis_.EnumerateScenarioAssignments();
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_NE(std::find(scenarios.begin(), scenarios.end(), A(0)),
            scenarios.end());
  EXPECT_NE(std::find(scenarios.begin(), scenarios.end(),
                      *A(1).Conjoin(B(0))),
            scenarios.end());
  EXPECT_NE(std::find(scenarios.begin(), scenarios.end(),
                      *A(1).Conjoin(B(1))),
            scenarios.end());
}

TEST_F(Fig1Activation, ScenarioProbabilitiesSumToOne) {
  const auto scenarios = analysis_.EnumerateScenarios(ex_.probs);
  double total = 0.0;
  for (const Scenario& s : scenarios) total += s.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (const Scenario& s : scenarios) {
    EXPECT_GT(s.probability, 0.0);
  }
}

TEST_F(Fig1Activation, ScenarioProbabilityValues) {
  const auto scenarios = analysis_.EnumerateScenarios(ex_.probs);
  for (const Scenario& s : scenarios) {
    if (s.assignment == A(0)) {
      EXPECT_NEAR(s.probability, 0.4, 1e-12);
    } else {
      EXPECT_NEAR(s.probability, 0.3, 1e-12);  // 0.6 * 0.5 each
    }
  }
}

TEST_F(Fig1Activation, AllMintermsIncludePaperSet) {
  // M = {1, a1, a2, a2b1, a2b2} as guards of the eight tasks.
  const auto all = analysis_.AllMinterms();
  EXPECT_GE(all.size(), 5u);
  EXPECT_NE(std::find(all.begin(), all.end(), Minterm()), all.end());
  EXPECT_NE(std::find(all.begin(), all.end(), A(0)), all.end());
  EXPECT_NE(std::find(all.begin(), all.end(), *A(1).Conjoin(B(1))),
            all.end());
}

// --------------------------------------------------------------------------
// Application models

TEST(MpegActivation, BlockForksAreMutuallyIndependent) {
  const apps::MpegModel m = apps::MakeMpegModel();
  const ActivationAnalysis analysis(m.graph);
  // Two different block IDCTs are NOT mutually exclusive (both blocks of
  // one inter macroblock may be coded), but intra and inter IDCTs are.
  const TaskId idct_b0 = [&] {
    for (TaskId t : m.graph.TaskIds()) {
      if (m.graph.task(t).name == "idct_b0") return t;
    }
    return TaskId{};
  }();
  const TaskId idct_b1 = [&] {
    for (TaskId t : m.graph.TaskIds()) {
      if (m.graph.task(t).name == "idct_b1") return t;
    }
    return TaskId{};
  }();
  const TaskId idct_i0 = [&] {
    for (TaskId t : m.graph.TaskIds()) {
      if (m.graph.task(t).name == "idct_i0") return t;
    }
    return TaskId{};
  }();
  ASSERT_TRUE(idct_b0.valid() && idct_b1.valid() && idct_i0.valid());
  EXPECT_FALSE(analysis.MutuallyExclusive(idct_b0, idct_b1));
  EXPECT_TRUE(analysis.MutuallyExclusive(idct_b0, idct_i0));
}

TEST(MpegActivation, SkippedPathExcludesDecoding) {
  const apps::MpegModel m = apps::MakeMpegModel();
  const ActivationAnalysis analysis(m.graph);
  BranchAssignment asg(m.graph.task_count());
  asg.Set(m.fork_skipped, 1);  // a2: skipped macroblock
  std::size_t active = 0;
  for (TaskId t : m.graph.TaskIds()) {
    if (analysis.IsActive(t, asg)) ++active;
  }
  // mb_header, skipped, mc_skip, recon, clip, store, display.
  EXPECT_EQ(active, 7u);
}

TEST(MpegActivation, IntraPathRunsAllSixIdcts) {
  const apps::MpegModel m = apps::MakeMpegModel();
  const ActivationAnalysis analysis(m.graph);
  BranchAssignment asg(m.graph.task_count());
  asg.Set(m.fork_skipped, 0);  // decode
  asg.Set(m.fork_type, 0);     // intra
  std::size_t idcts = 0;
  for (TaskId t : m.graph.TaskIds()) {
    if (m.graph.task(t).name.rfind("idct_i", 0) == 0 &&
        analysis.IsActive(t, asg)) {
      ++idcts;
    }
  }
  EXPECT_EQ(idcts, 6u);
}

TEST(MpegActivation, ScenarioCountMatchesStructure) {
  const apps::MpegModel m = apps::MakeMpegModel();
  const ActivationAnalysis analysis(m.graph);
  // skipped (1) + intra (1) + inter: 2 mv modes x 2^6 block patterns.
  const auto scenarios = analysis.EnumerateScenarioAssignments();
  EXPECT_EQ(scenarios.size(), 1u + 1u + 2u * 64u);
}

TEST(CruiseActivation, ExactlyThreeScenarios) {
  const apps::CruiseModel m = apps::MakeCruiseModel();
  const ActivationAnalysis analysis(m.graph);
  // The paper: "there are only three minterms in the CTG model of the
  // cruise control system."
  EXPECT_EQ(analysis.EnumerateScenarioAssignments().size(), 3u);
}

TEST(CruiseActivation, LawBranchesAreMutex) {
  const apps::CruiseModel m = apps::MakeCruiseModel();
  const ActivationAnalysis analysis(m.graph);
  TaskId accel, decel, manual;
  for (TaskId t : m.graph.TaskIds()) {
    const auto& name = m.graph.task(t).name;
    if (name == "accel_gain") accel = t;
    if (name == "decel_gain") decel = t;
    if (name == "manual_map") manual = t;
  }
  ASSERT_TRUE(accel.valid() && decel.valid() && manual.valid());
  EXPECT_TRUE(analysis.MutuallyExclusive(accel, decel));
  EXPECT_TRUE(analysis.MutuallyExclusive(accel, manual));
  EXPECT_TRUE(analysis.MutuallyExclusive(decel, manual));
}

}  // namespace
}  // namespace actg::ctg
