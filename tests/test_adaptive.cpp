#include <gtest/gtest.h>

#include <memory>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "dvfs/stretch.h"
#include "apps/fig1_example.h"
#include "sim/energy.h"
#include "tgff/random_ctg.h"
#include "trace/generators.h"
#include "util/error.h"

namespace actg::adaptive {
namespace {

class AdaptiveFixture : public ::testing::Test {
 protected:
  AdaptiveFixture() : ex_(apps::MakeFig1Example()), analysis_(ex_.graph) {}

  AdaptiveController MakeController(double threshold,
                                    std::size_t window = 8) {
    AdaptiveOptions options;
    options.window_length = window;
    options.threshold = threshold;
    return AdaptiveController(ex_.graph, analysis_, ex_.platform,
                              ex_.probs, options);
  }

  ctg::BranchAssignment Assign(int a, int b) const {
    ctg::BranchAssignment asg(ex_.graph.task_count());
    if (a >= 0) asg.Set(ex_.tau(3), a);
    if (b >= 0) asg.Set(ex_.tau(5), b);
    return asg;
  }

  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
};

TEST_F(AdaptiveFixture, StartsWithInitialProbabilitiesAndZeroCalls) {
  AdaptiveController ctrl = MakeController(0.1);
  EXPECT_EQ(ctrl.reschedule_count(), 0u);
  EXPECT_NEAR(ctrl.in_use_probabilities().Outcome(ex_.tau(3), 0), 0.4,
              1e-12);
}

TEST_F(AdaptiveFixture, NoAdaptationBeforeWindowFills) {
  AdaptiveController ctrl = MakeController(0.05, /*window=*/16);
  for (int i = 0; i < 15; ++i) ctrl.ProcessInstance(Assign(1, 1));
  EXPECT_EQ(ctrl.reschedule_count(), 0u);
}

TEST_F(AdaptiveFixture, AdaptsWhenDistributionShifts) {
  // Initial prob(a1)=0.4; feed pure a2 -> windowed prob(a1)=0, drift 0.4.
  AdaptiveController ctrl = MakeController(0.2, /*window=*/8);
  for (int i = 0; i < 10; ++i) ctrl.ProcessInstance(Assign(1, 0));
  EXPECT_GE(ctrl.reschedule_count(), 1u);
  EXPECT_NEAR(ctrl.in_use_probabilities().Outcome(ex_.tau(3), 0), 0.0,
              1e-12);
}

TEST_F(AdaptiveFixture, NoAdaptationWhenTraceMatchesProfile) {
  // Deterministic alternation approximating prob(a1)=0.4 within the
  // threshold: pattern of 2 a1 in every 5.
  AdaptiveController ctrl = MakeController(0.25, /*window=*/10);
  for (int i = 0; i < 60; ++i) {
    ctrl.ProcessInstance(Assign(i % 5 < 2 ? 0 : 1, i % 2));
  }
  EXPECT_EQ(ctrl.reschedule_count(), 0u);
}

TEST_F(AdaptiveFixture, LowerThresholdNeverFewerCalls) {
  util::Random rng(31);
  std::vector<ctg::BranchAssignment> instances;
  for (int i = 0; i < 150; ++i) {
    // Slow drift from mostly-a1 to mostly-a2.
    const double p_a1 = 0.9 - 0.8 * i / 150.0;
    instances.push_back(
        Assign(rng.Bernoulli(p_a1) ? 0 : 1, rng.Bernoulli(0.5) ? 0 : 1));
  }
  AdaptiveController loose = MakeController(0.4);
  AdaptiveController tight = MakeController(0.05);
  for (const auto& asg : instances) {
    loose.ProcessInstance(asg);
    tight.ProcessInstance(asg);
  }
  EXPECT_GE(tight.reschedule_count(), loose.reschedule_count());
  EXPECT_GE(tight.reschedule_count(), 1u);
}

TEST_F(AdaptiveFixture, RescheduleKeepsDeadline) {
  AdaptiveController ctrl = MakeController(0.1, /*window=*/6);
  for (int i = 0; i < 40; ++i) {
    const auto result = ctrl.ProcessInstance(Assign(i % 2, (i / 2) % 2));
    EXPECT_TRUE(result.deadline_met) << "instance " << i;
  }
  ctrl.current_schedule().Validate();
}

TEST_F(AdaptiveFixture, InvalidThresholdRejected) {
  AdaptiveOptions options;
  options.threshold = 0.0;
  EXPECT_THROW(AdaptiveController(ex_.graph, analysis_, ex_.platform,
                                  ex_.probs, options),
               InvalidArgument);
  options.threshold = 1.5;
  EXPECT_THROW(AdaptiveController(ex_.graph, analysis_, ex_.platform,
                                  ex_.probs, options),
               InvalidArgument);
}

TEST_F(AdaptiveFixture, RunAdaptiveMatchesManualLoop) {
  trace::BranchTrace trace(ex_.graph.task_count());
  util::Random rng(5);
  for (int i = 0; i < 50; ++i) {
    trace.Append(
        Assign(rng.Bernoulli(0.5) ? 0 : 1, rng.Bernoulli(0.5) ? 0 : 1));
  }
  AdaptiveController a = MakeController(0.1);
  AdaptiveController b = MakeController(0.1);
  const sim::RunSummary via_helper = RunAdaptive(a, trace);
  sim::RunSummary manual;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    manual.Add(b.ProcessInstance(trace.At(i)));
  }
  EXPECT_EQ(via_helper.instances, manual.instances);
  EXPECT_NEAR(via_helper.total_energy_mj, manual.total_energy_mj, 1e-9);
  EXPECT_EQ(a.reschedule_count(), b.reschedule_count());
}

TEST_F(AdaptiveFixture, NestedForkOnlyObservedWhenActive) {
  // Feed only a1 instances: fork B never executes, so its window stays
  // empty and its in-use probability must remain the initial one.
  AdaptiveController ctrl = MakeController(0.1, /*window=*/4);
  for (int i = 0; i < 20; ++i) ctrl.ProcessInstance(Assign(0, 1));
  EXPECT_EQ(ctrl.profiler().Count(ex_.tau(5)), 0u);
  EXPECT_NEAR(ctrl.in_use_probabilities().Outcome(ex_.tau(5), 0), 0.5,
              1e-12);
}


TEST_F(AdaptiveFixture, MaxThresholdDegeneratesToOnlineAlgorithm) {
  // With the threshold at its maximum the detector can never fire, so
  // the adaptive controller must behave exactly like the static online
  // algorithm built from the same profile.
  sched::Schedule online =
      sched::RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs);
  dvfs::StretchOnline(online, ex_.probs);

  AdaptiveController ctrl = MakeController(1.0, /*window=*/4);
  util::Random rng(23);
  double adaptive_energy = 0.0, online_energy = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto asg =
        Assign(rng.Bernoulli(0.9) ? 1 : 0, rng.Bernoulli(0.9) ? 1 : 0);
    adaptive_energy += ctrl.ProcessInstance(asg).energy_mj;
    online_energy += sim::ExecuteInstance(online, asg).energy_mj;
  }
  EXPECT_EQ(ctrl.reschedule_count(), 0u);
  EXPECT_NEAR(adaptive_energy, online_energy, 1e-9);
}

TEST_F(AdaptiveFixture, UnitThresholdIsANeverAdaptSentinel) {
  // Regression for the threshold == 1.0 boundary. The drift detector's
  // distance is a maximum of absolute probability differences, so it
  // never exceeds 1.0 and the strict comparison `distance > threshold`
  // makes 1.0 a documented never-adapt sentinel. Pin that with the
  // largest distance the detector can produce: an in-use profile
  // certain of outcome 0 driven by a window of pure outcome 1, giving
  // distance exactly 1.0.
  ctg::BranchProbabilities certain(ex_.graph.task_count());
  certain.Set(ex_.tau(3), {1.0, 0.0});
  certain.Set(ex_.tau(5), {1.0, 0.0});
  AdaptiveOptions options;
  options.window_length = 4;

  options.threshold = 1.0;
  AdaptiveController sentinel(ex_.graph, analysis_, ex_.platform,
                              certain, options);
  for (int i = 0; i < 20; ++i) sentinel.ProcessInstance(Assign(1, 1));
  EXPECT_EQ(sentinel.reschedule_count(), 0u);

  // Any threshold strictly below 1.0 fires on the same drive.
  options.threshold = 0.99;
  AdaptiveController firing(ex_.graph, analysis_, ex_.platform, certain,
                            options);
  for (int i = 0; i < 20; ++i) firing.ProcessInstance(Assign(1, 1));
  EXPECT_GE(firing.reschedule_count(), 1u);
}

TEST_F(AdaptiveFixture, CandidateAdoptionNeverRaisesExpectedEnergy) {
  // After any re-schedule, the controller's current schedule must be at
  // least as good as a freshly built one under its own in-use estimate
  // (the adopt-if-better guard).
  AdaptiveController ctrl = MakeController(0.1, /*window=*/6);
  util::Random rng(29);
  for (int i = 0; i < 120; ++i) {
    const double p = i < 60 ? 0.9 : 0.1;  // regime flip mid-run
    ctrl.ProcessInstance(
        Assign(rng.Bernoulli(p) ? 0 : 1, rng.Bernoulli(p) ? 0 : 1));
  }
  EXPECT_GE(ctrl.reschedule_count(), 1u);
  sched::Schedule fresh = sched::RunDls(
      ex_.graph, analysis_, ex_.platform, ctrl.in_use_probabilities());
  dvfs::StretchOnline(fresh, ctrl.in_use_probabilities());
  EXPECT_LE(sim::ExpectedEnergy(ctrl.current_schedule(),
                                ctrl.in_use_probabilities()),
            sim::ExpectedEnergy(fresh, ctrl.in_use_probabilities()) +
                1e-9);
}

// ---------------------------------------------------------------------------
// End-to-end behaviour on random CTGs: adaptation beats a misprofiled
// static schedule on drifting workloads.

TEST(AdaptiveRandom, BeatsMisprofiledOnlineOnDriftingTraces) {
  double online_total = 0.0, adaptive_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    tgff::RandomCtgParams params;
    params.task_count = 20;
    params.fork_count = 2;
    params.category = tgff::Category::kForkJoin;
    params.seed = seed;
    tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
    apps::AssignDeadline(rc.graph, rc.platform, 1.3);
    const ctg::ActivationAnalysis analysis(rc.graph);

    // Drifting trace with equal long-run averages.
    trace::TraceGenerator gen(rc.graph);
    int k = 0;
    for (TaskId f : rc.graph.ForkIds()) {
      trace::SinusoidProcess::Params sp;
      sp.amplitude = 0.45;
      sp.period = 180.0 + 60.0 * k++;
      gen.SetProcess(f, std::make_unique<trace::SinusoidProcess>(sp));
    }
    util::Random rng(seed * 13);
    const trace::BranchTrace trace = gen.Generate(600, rng);

    // Misprofiled probabilities (heavily skewed).
    ctg::BranchProbabilities biased(rc.graph.task_count());
    for (TaskId f : rc.graph.ForkIds()) biased.Set(f, {0.95, 0.05});

    sched::Schedule online = sched::RunDls(rc.graph, analysis,
                                           rc.platform, biased);
    dvfs::StretchOnline(online, biased);
    online_total += sim::RunTrace(online, trace).total_energy_mj;

    AdaptiveOptions options;
    options.window_length = 20;
    options.threshold = 0.1;
    AdaptiveController ctrl(rc.graph, analysis, rc.platform, biased,
                            options);
    const sim::RunSummary summary = RunAdaptive(ctrl, trace);
    EXPECT_EQ(summary.deadline_misses, 0u);
    EXPECT_GE(ctrl.reschedule_count(), 5u);
    adaptive_total += summary.total_energy_mj;
  }
  EXPECT_LT(adaptive_total, online_total);
}

}  // namespace
}  // namespace actg::adaptive
