#include <gtest/gtest.h>

#include <sstream>

#include "apps/common.h"
#include "apps/fig1_example.h"
#include "ctg/activation.h"
#include "dvfs/stretch.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/report.h"
#include "tgff/random_ctg.h"

namespace actg::sim {
namespace {

class ReportFixture : public ::testing::Test {
 protected:
  ReportFixture()
      : ex_(apps::MakeFig1Example()),
        analysis_(ex_.graph),
        schedule_(sched::RunDls(ex_.graph, analysis_, ex_.platform,
                                ex_.probs)) {}

  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
  sched::Schedule schedule_;
};

TEST_F(ReportFixture, TaskCountsPartitionTheGraph) {
  const ScheduleReport report = BuildReport(schedule_, ex_.probs);
  ASSERT_EQ(report.pes.size(), ex_.platform.pe_count());
  std::size_t total = 0;
  for (const PeReport& pe : report.pes) total += pe.task_count;
  EXPECT_EQ(total, ex_.graph.task_count());
}

TEST_F(ReportFixture, EnergyBreakdownIsConsistent) {
  const ScheduleReport report = BuildReport(schedule_, ex_.probs);
  EXPECT_NEAR(report.expected_energy_mj,
              ExpectedEnergy(schedule_, ex_.probs), 1e-9);
  double compute = 0.0;
  for (const PeReport& pe : report.pes) compute += pe.expected_energy_mj;
  EXPECT_NEAR(compute + report.expected_comm_energy_mj,
              report.expected_energy_mj, 1e-9);
}

TEST_F(ReportFixture, NominalScheduleHasUnitMeanSpeed) {
  const ScheduleReport report = BuildReport(schedule_, ex_.probs);
  EXPECT_NEAR(report.mean_speed_ratio, 1.0, 1e-12);
}

TEST_F(ReportFixture, StretchingLowersMeanSpeedAndEnergy) {
  const ScheduleReport before = BuildReport(schedule_, ex_.probs);
  dvfs::StretchOnline(schedule_, ex_.probs);
  const ScheduleReport after = BuildReport(schedule_, ex_.probs);
  EXPECT_LT(after.mean_speed_ratio, before.mean_speed_ratio);
  EXPECT_LT(after.expected_energy_mj, before.expected_energy_mj);
  // Communication energy is never voltage-scaled (paper Section II).
  EXPECT_NEAR(after.expected_comm_energy_mj,
              before.expected_comm_energy_mj, 1e-9);
}

TEST_F(ReportFixture, UtilizationBounded) {
  dvfs::StretchOnline(schedule_, ex_.probs);
  const ScheduleReport report = BuildReport(schedule_, ex_.probs);
  for (const PeReport& pe : report.pes) {
    EXPECT_GE(pe.expected_utilization, 0.0);
    // Expected utilization can exceed 1 only if mutually exclusive tasks
    // overlapped more than their probabilities admit — impossible, since
    // co-PE mutex overlap carries disjoint activation probability mass.
    EXPECT_LE(pe.expected_utilization, 1.0 + 1e-9);
  }
}

TEST_F(ReportFixture, WriteReportRendersEveryPe) {
  const ScheduleReport report = BuildReport(schedule_, ex_.probs);
  std::ostringstream os;
  WriteReport(os, report);
  const std::string out = os.str();
  EXPECT_NE(out.find("makespan"), std::string::npos);
  for (const PeReport& pe : report.pes) {
    EXPECT_NE(out.find("PE" + std::to_string(pe.pe.value)),
              std::string::npos);
  }
}

TEST(ReportSweep, UtilizationInvariantOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    tgff::RandomCtgParams params;
    params.task_count = 20;
    params.fork_count = 2;
    params.seed = seed;
    tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
    apps::AssignDeadline(rc.graph, rc.platform, 1.4);
    const ctg::ActivationAnalysis analysis(rc.graph);
    const auto probs = apps::UniformProbabilities(rc.graph);
    sched::Schedule s =
        sched::RunDls(rc.graph, analysis, rc.platform, probs);
    dvfs::StretchOnline(s, probs);
    const ScheduleReport report = BuildReport(s, probs);
    double busy = 0.0;
    for (const PeReport& pe : report.pes) {
      EXPECT_LE(pe.expected_utilization, 1.0 + 1e-9);
      busy += pe.expected_busy_ms;
    }
    EXPECT_GT(busy, 0.0);
  }
}

}  // namespace
}  // namespace actg::sim
