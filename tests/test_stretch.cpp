#include <gtest/gtest.h>

#include <tuple>

#include "apps/common.h"
#include "apps/fig1_example.h"
#include "check/validator.h"
#include "dvfs/algorithms.h"
#include "dvfs/stretch.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "tgff/random_ctg.h"
#include "util/error.h"

namespace actg::dvfs {
namespace {

struct Pipeline {
  tgff::RandomCase rc;
  ctg::ActivationAnalysis analysis;
  ctg::BranchProbabilities probs;

  Pipeline(std::uint64_t seed, tgff::Category category,
           double deadline_factor, double p0 = 0.5)
      : rc([&] {
          tgff::RandomCtgParams params;
          params.task_count = 20;
          params.fork_count = 2;
          params.pe_count = 3;
          params.category = category;
          params.seed = seed;
          auto generated = tgff::MakeRandomCtg(params).value();
          apps::AssignDeadline(generated.graph, generated.platform,
                               deadline_factor);
          return generated;
        }()),
        analysis(rc.graph),
        probs(rc.graph.task_count()) {
    for (TaskId f : rc.graph.ForkIds()) probs.Set(f, {p0, 1.0 - p0});
  }

  sched::Schedule Dls() const {
    return sched::RunDls(rc.graph, analysis, rc.platform, probs);
  }
};

// ---------------------------------------------------------------------------
// Core invariants, swept over seeds / categories / stretchers.

using StretchParam = std::tuple<int, tgff::Category, int>;

class StretchSweep : public ::testing::TestWithParam<StretchParam> {
 protected:
  StretchStats RunStretcher(sched::Schedule& s,
                            const ctg::BranchProbabilities& probs,
                            int which) {
    switch (which) {
      case 0:
        return StretchOnline(s, probs);
      case 1:
        return StretchProportional(s);
      default: {
        NlpOptions options;
        options.iterations = 400;  // keep the sweep fast
        return StretchNlp(s, probs, options);
      }
    }
  }
};

TEST_P(StretchSweep, DeadlineHoldsInEveryScenario) {
  const auto [seed, category, which] = GetParam();
  Pipeline pipe(static_cast<std::uint64_t>(seed), category, 1.4);
  sched::Schedule s = pipe.Dls();
  RunStretcher(s, pipe.probs, which);
  s.Validate();
  check::Expectations expect;
  expect.deadline_feasible = true;  // deadline_factor 1.4 > 1
  check::Validate(s, expect);
  EXPECT_LE(sim::MaxScenarioMakespan(s),
            pipe.rc.graph.deadline_ms() + 1e-6);
}

TEST_P(StretchSweep, NeverIncreasesExpectedEnergy) {
  const auto [seed, category, which] = GetParam();
  Pipeline pipe(static_cast<std::uint64_t>(seed), category, 1.4);
  sched::Schedule s = pipe.Dls();
  const double before = sim::ExpectedEnergy(s, pipe.probs);
  RunStretcher(s, pipe.probs, which);
  EXPECT_LE(sim::ExpectedEnergy(s, pipe.probs), before + 1e-9);
}

TEST_P(StretchSweep, SpeedRatiosRespectPeFloor) {
  const auto [seed, category, which] = GetParam();
  Pipeline pipe(static_cast<std::uint64_t>(seed), category, 2.5);
  sched::Schedule s = pipe.Dls();
  RunStretcher(s, pipe.probs, which);
  check::Validate(s);
  for (TaskId t : pipe.rc.graph.TaskIds()) {
    const auto& placement = s.placement(t);
    EXPECT_GE(placement.speed_ratio,
              pipe.rc.platform.pe(placement.pe).min_speed_ratio - 1e-9);
    EXPECT_LE(placement.speed_ratio, 1.0 + 1e-9);
  }
}

TEST_P(StretchSweep, TightDeadlineMeansNoStretch) {
  const auto [seed, category, which] = GetParam();
  Pipeline pipe(static_cast<std::uint64_t>(seed), category, 1.4);
  // Rebuild with deadline equal to the nominal makespan: zero slack.
  sched::Schedule nominal = pipe.Dls();
  pipe.rc.graph.SetDeadline(nominal.Makespan());
  sched::Schedule s = pipe.Dls();
  const StretchStats stats = RunStretcher(s, pipe.probs, which);
  // The critical path cannot stretch; energy change must be small (only
  // off-critical tasks may still find slack).
  EXPECT_LE(stats.max_path_delay_ms, nominal.Makespan() + 1e-6);
  EXPECT_LE(sim::MaxScenarioMakespan(s), nominal.Makespan() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StretchSweep,
    ::testing::Combine(::testing::Range(1, 7),
                       ::testing::Values(tgff::Category::kForkJoin,
                                         tgff::Category::kFlat),
                       ::testing::Values(0, 1, 2)));

// ---------------------------------------------------------------------------
// Ordering properties between the algorithms (the paper's Table 1 shape).

TEST(AlgorithmOrdering, NlpBeatsOnlineHeuristicOnAverage) {
  double online_total = 0.0, nlp_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Pipeline pipe(seed, tgff::Category::kForkJoin, 1.3, 0.3);
    sched::Schedule online = pipe.Dls();
    StretchOnline(online, pipe.probs);
    sched::Schedule nlp = pipe.Dls();
    StretchNlp(nlp, pipe.probs);
    online_total += sim::ExpectedEnergy(online, pipe.probs);
    nlp_total += sim::ExpectedEnergy(nlp, pipe.probs);
  }
  EXPECT_LT(nlp_total, online_total);
  // Paper Table 1: reference algorithm 2 saves roughly 3-13%.
  EXPECT_GT(nlp_total, 0.6 * online_total);
}

TEST(AlgorithmOrdering, OnlineBeatsReference1Clearly) {
  double online_total = 0.0, ref1_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Pipeline pipe(seed, tgff::Category::kForkJoin, 1.3, 0.3);
    const sched::Schedule online = RunOnlineAlgorithm(
        pipe.rc.graph, pipe.analysis, pipe.rc.platform, pipe.probs);
    const sched::Schedule ref1 = RunReference1(
        pipe.rc.graph, pipe.analysis, pipe.rc.platform, pipe.probs);
    online_total += sim::ExpectedEnergy(online, pipe.probs);
    ref1_total += sim::ExpectedEnergy(ref1, pipe.probs);
  }
  // Paper Table 1: reference algorithm 1 costs ~1.3-2.9x the online
  // algorithm's energy.
  EXPECT_GT(ref1_total, 1.2 * online_total);
}

TEST(AlgorithmOrdering, Reference1StillMeetsItsDeadlines) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Pipeline pipe(seed, tgff::Category::kForkJoin, 1.3, 0.3);
    const sched::Schedule ref1 = RunReference1(
        pipe.rc.graph, pipe.analysis, pipe.rc.platform, pipe.probs);
    ref1.Validate();
    EXPECT_LE(sim::MaxScenarioMakespan(ref1),
              pipe.rc.graph.deadline_ms() + 1e-6);
  }
}

TEST(AlgorithmOrdering, LooserDeadlineNeverHurtsOnline) {
  Pipeline tight(3, tgff::Category::kForkJoin, 1.2, 0.4);
  const double deadline = tight.rc.graph.deadline_ms();
  sched::Schedule s1 = tight.Dls();
  StretchOnline(s1, tight.probs);
  const double e_tight = sim::ExpectedEnergy(s1, tight.probs);
  tight.rc.graph.SetDeadline(deadline * 2.0);
  sched::Schedule s2 = tight.Dls();
  StretchOnline(s2, tight.probs);
  EXPECT_LE(sim::ExpectedEnergy(s2, tight.probs), e_tight + 1e-9);
}

// ---------------------------------------------------------------------------
// Fig. 1-scale hand-checkable behaviour.

TEST(StretchFig1, AllStretchersKeepDeadlineAndReduceEnergy) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  for (int which = 0; which < 3; ++which) {
    sched::Schedule s =
        sched::RunDls(ex.graph, analysis, ex.platform, ex.probs);
    const double before = sim::ExpectedEnergy(s, ex.probs);
    switch (which) {
      case 0:
        StretchOnline(s, ex.probs);
        break;
      case 1:
        StretchProportional(s);
        break;
      default:
        StretchNlp(s, ex.probs);
    }
    s.Validate();
    EXPECT_LT(sim::ExpectedEnergy(s, ex.probs), before);
    EXPECT_LE(sim::MaxScenarioMakespan(s),
              ex.graph.deadline_ms() + 1e-6);
  }
}

TEST(StretchFig1, StatsAreCoherent) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  sched::Schedule s =
      sched::RunDls(ex.graph, analysis, ex.platform, ex.probs);
  const StretchStats stats = StretchOnline(s, ex.probs);
  EXPECT_GT(stats.path_count, 0u);
  EXPECT_GT(stats.total_extension_ms, 0.0);
  EXPECT_LE(stats.max_path_delay_ms, ex.graph.deadline_ms() + 1e-6);
}

TEST(StretchFig1, RequiresPositiveDeadline) {
  apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  // Rebuild the graph without a deadline by zeroing via a fresh builder
  // is impossible (deadline is validated); instead check the stretcher
  // guard using a graph that never had one.
  ctg::CtgBuilder b;
  const TaskId x = b.AddTask("x");
  const TaskId y = b.AddTask("y");
  b.AddEdge(x, y);
  const ctg::Ctg g = std::move(b).Build();
  arch::PlatformBuilder pb(2, 1);
  pb.SetTaskCost(TaskId{0}, PeId{0}, 1.0, 1.0);
  pb.SetTaskCost(TaskId{1}, PeId{0}, 1.0, 1.0);
  const arch::Platform platform = std::move(pb).Build();
  const ctg::ActivationAnalysis analysis2(g);
  ctg::BranchProbabilities probs(2);
  sched::Schedule s = sched::RunDls(g, analysis2, platform, probs);
  EXPECT_THROW(StretchOnline(s, probs), InvalidArgument);
  EXPECT_THROW(StretchProportional(s), InvalidArgument);
  EXPECT_THROW(StretchNlp(s, probs), InvalidArgument);
}

TEST(StretchNlpConfig, MoreIterationsNeverWorse) {
  Pipeline pipe(5, tgff::Category::kForkJoin, 1.5, 0.3);
  NlpOptions few;
  few.iterations = 10;
  NlpOptions many;
  many.iterations = 3000;
  sched::Schedule s_few = pipe.Dls();
  StretchNlp(s_few, pipe.probs, few);
  sched::Schedule s_many = pipe.Dls();
  StretchNlp(s_many, pipe.probs, many);
  EXPECT_LE(sim::ExpectedEnergy(s_many, pipe.probs),
            sim::ExpectedEnergy(s_few, pipe.probs) + 1e-6);
}

}  // namespace
}  // namespace actg::dvfs
