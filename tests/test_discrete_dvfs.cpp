#include <gtest/gtest.h>

#include "apps/common.h"
#include "ctg/activation.h"
#include "dvfs/stretch.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "tgff/random_ctg.h"
#include "util/error.h"

// Extension beyond the paper's continuous-DVFS model: PEs with discrete
// voltage/frequency levels. Stretchers round each selected speed UP to
// the nearest level, trading some energy for hardware realism while
// preserving every deadline guarantee.

namespace actg {
namespace {

arch::Platform WithLevels(const arch::Platform& base,
                          const ctg::Ctg& graph,
                          std::vector<double> levels) {
  arch::PlatformBuilder builder(graph.task_count(), base.pe_count());
  for (TaskId task : graph.TaskIds()) {
    for (PeId pe : base.PeIds()) {
      builder.SetTaskCost(task, pe, base.Wcet(task, pe),
                          base.Energy(task, pe));
    }
  }
  for (PeId pe : base.PeIds()) {
    builder.SetSpeedLevels(pe, levels);
  }
  return std::move(builder).Build();
}

struct Rig {
  tgff::RandomCase rc;
  ctg::ActivationAnalysis analysis;
  ctg::BranchProbabilities probs;

  explicit Rig(std::uint64_t seed)
      : rc([&] {
          tgff::RandomCtgParams params;
          params.task_count = 18;
          params.fork_count = 2;
          params.pe_count = 3;
          params.seed = seed;
          auto generated = tgff::MakeRandomCtg(params).value();
          apps::AssignDeadline(generated.graph, generated.platform, 1.6);
          return generated;
        }()),
        analysis(rc.graph),
        probs(apps::UniformProbabilities(rc.graph)) {}
};

TEST(QuantizeSpeed, ContinuousPlatformOnlyClamps) {
  const Rig rig(1);
  const PeId pe{0};
  const double floor = rig.rc.platform.pe(pe).min_speed_ratio;
  EXPECT_DOUBLE_EQ(rig.rc.platform.QuantizeSpeed(pe, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(rig.rc.platform.QuantizeSpeed(pe, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(rig.rc.platform.QuantizeSpeed(pe, 0.0), floor);
}

TEST(QuantizeSpeed, DiscreteRoundsUp) {
  const Rig rig(2);
  const arch::Platform discrete =
      WithLevels(rig.rc.platform, rig.rc.graph, {0.4, 0.6, 0.8, 1.0});
  const PeId pe{0};
  EXPECT_DOUBLE_EQ(discrete.QuantizeSpeed(pe, 0.55), 0.6);
  EXPECT_DOUBLE_EQ(discrete.QuantizeSpeed(pe, 0.6), 0.6);
  EXPECT_DOUBLE_EQ(discrete.QuantizeSpeed(pe, 0.61), 0.8);
  EXPECT_DOUBLE_EQ(discrete.QuantizeSpeed(pe, 0.05), 0.4);
  EXPECT_DOUBLE_EQ(discrete.QuantizeSpeed(pe, 0.95), 1.0);
}

TEST(QuantizeSpeed, LevelValidation) {
  arch::PlatformBuilder builder(1, 1);
  builder.SetTaskCost(TaskId{0}, PeId{0}, 1.0, 1.0);
  EXPECT_THROW(builder.SetSpeedLevels(PeId{0}, {}), InvalidArgument);
  EXPECT_THROW(builder.SetSpeedLevels(PeId{0}, {0.5, 0.8}),
               InvalidArgument);  // missing nominal
  EXPECT_THROW(builder.SetSpeedLevels(PeId{0}, {0.0, 1.0}),
               InvalidArgument);
  EXPECT_THROW(builder.SetSpeedLevels(PeId{0}, {0.5, 1.2}),
               InvalidArgument);
  builder.SetSpeedLevels(PeId{0}, {1.0, 0.25, 0.5});  // unsorted ok
  const arch::Platform p = std::move(builder).Build();
  EXPECT_DOUBLE_EQ(p.pe(PeId{0}).min_speed_ratio, 0.25);
  EXPECT_EQ(p.pe(PeId{0}).speed_levels.size(), 3u);
}

class DiscreteStretchSweep : public ::testing::TestWithParam<int> {};

TEST_P(DiscreteStretchSweep, AllStretchersSnapToLevelsAndKeepDeadline) {
  const Rig rig(static_cast<std::uint64_t>(GetParam()));
  const std::vector<double> levels{0.25, 0.5, 0.75, 1.0};
  const arch::Platform discrete =
      WithLevels(rig.rc.platform, rig.rc.graph, levels);
  for (int which = 0; which < 3; ++which) {
    sched::Schedule s = sched::RunDls(rig.rc.graph, rig.analysis,
                                      discrete, rig.probs);
    switch (which) {
      case 0:
        dvfs::StretchOnline(s, rig.probs);
        break;
      case 1:
        dvfs::StretchProportional(s);
        break;
      default: {
        dvfs::NlpOptions options;
        options.iterations = 300;
        dvfs::StretchNlp(s, rig.probs, options);
      }
    }
    s.Validate();  // checks every ratio is one of the levels
    EXPECT_LE(sim::MaxScenarioMakespan(s),
              rig.rc.graph.deadline_ms() + 1e-6)
        << "stretcher " << which;
  }
}

TEST_P(DiscreteStretchSweep, QuantizationCostsBoundedEnergy) {
  // Discrete DVFS can only do worse than continuous, but rounding up to
  // the next of 4 levels must not explode the energy: it is bounded by
  // running every task at the next level up, i.e. a factor of
  // (next/previous)^2 <= (0.5/0.25)^2 = 4 in the worst case here.
  const Rig rig(static_cast<std::uint64_t>(GetParam()));
  const arch::Platform discrete = WithLevels(
      rig.rc.platform, rig.rc.graph, {0.25, 0.5, 0.75, 1.0});

  sched::Schedule continuous = sched::RunDls(
      rig.rc.graph, rig.analysis, rig.rc.platform, rig.probs);
  dvfs::StretchOnline(continuous, rig.probs);
  sched::Schedule quantized =
      sched::RunDls(rig.rc.graph, rig.analysis, discrete, rig.probs);
  dvfs::StretchOnline(quantized, rig.probs);

  const double e_cont = sim::ExpectedEnergy(continuous, rig.probs);
  const double e_disc = sim::ExpectedEnergy(quantized, rig.probs);
  EXPECT_GE(e_disc, e_cont - 1e-9);
  EXPECT_LE(e_disc, 4.0 * e_cont);
}

TEST_P(DiscreteStretchSweep, FinerLevelsNeverWorse) {
  const Rig rig(static_cast<std::uint64_t>(GetParam()));
  const arch::Platform coarse =
      WithLevels(rig.rc.platform, rig.rc.graph, {0.5, 1.0});
  // The fine set refines the coarse one (superset), so the rounded-up
  // speed can only drop or stay equal per task.
  const arch::Platform fine = WithLevels(
      rig.rc.platform, rig.rc.graph,
      {0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0});

  sched::Schedule s_coarse =
      sched::RunDls(rig.rc.graph, rig.analysis, coarse, rig.probs);
  dvfs::StretchOnline(s_coarse, rig.probs);
  sched::Schedule s_fine =
      sched::RunDls(rig.rc.graph, rig.analysis, fine, rig.probs);
  dvfs::StretchOnline(s_fine, rig.probs);
  EXPECT_LE(sim::ExpectedEnergy(s_fine, rig.probs),
            sim::ExpectedEnergy(s_coarse, rig.probs) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscreteStretchSweep,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace actg
