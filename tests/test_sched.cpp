#include <gtest/gtest.h>

#include <tuple>

#include "apps/common.h"
#include "apps/fig1_example.h"
#include "check/validator.h"
#include "ctg/activation.h"
#include "sched/dls.h"
#include "sched/static_level.h"
#include "tgff/random_ctg.h"
#include "util/error.h"

namespace actg::sched {
namespace {

// ---------------------------------------------------------------------------
// Static levels

TEST(StaticLevel, ChainIsSuffixSumOfAverageWcet) {
  ctg::CtgBuilder b;
  const TaskId x = b.AddTask("x");
  const TaskId y = b.AddTask("y");
  const TaskId z = b.AddTask("z");
  b.AddEdge(x, y);
  b.AddEdge(y, z);
  const ctg::Ctg g = std::move(b).Build();
  arch::PlatformBuilder pb(3, 2);
  const double wcet[3][2] = {{10, 14}, {6, 10}, {4, 4}};
  for (int t = 0; t < 3; ++t) {
    for (int p = 0; p < 2; ++p) {
      pb.SetTaskCost(TaskId{t}, PeId{p}, wcet[t][p], 1.0);
    }
  }
  const arch::Platform platform = std::move(pb).Build();
  ctg::BranchProbabilities probs(3);
  const auto levels = ComputeStaticLevels(
      g, platform, probs, LevelPolicy::kProbabilityWeighted);
  EXPECT_DOUBLE_EQ(levels[z.index()], 4.0);
  EXPECT_DOUBLE_EQ(levels[y.index()], 8.0 + 4.0);
  EXPECT_DOUBLE_EQ(levels[x.index()], 12.0 + 12.0);
}

TEST(StaticLevel, BranchingNodeWeightsByProbability) {
  ctg::CtgBuilder b;
  const TaskId f = b.AddTask("fork");
  const TaskId heavy = b.AddTask("heavy");
  const TaskId light = b.AddTask("light");
  b.AddConditionalEdge(f, heavy, 0);
  b.AddConditionalEdge(f, light, 1);
  const ctg::Ctg g = std::move(b).Build();
  arch::PlatformBuilder pb(3, 1);
  pb.SetTaskCost(TaskId{0}, PeId{0}, 2.0, 1.0);
  pb.SetTaskCost(TaskId{1}, PeId{0}, 30.0, 1.0);
  pb.SetTaskCost(TaskId{2}, PeId{0}, 10.0, 1.0);
  const arch::Platform platform = std::move(pb).Build();
  ctg::BranchProbabilities probs(3);
  probs.Set(f, {0.25, 0.75});

  const auto weighted = ComputeStaticLevels(
      g, platform, probs, LevelPolicy::kProbabilityWeighted);
  EXPECT_DOUBLE_EQ(weighted[f.index()],
                   2.0 + 0.25 * 30.0 + 0.75 * 10.0);

  const auto worst = ComputeStaticLevels(g, platform, probs,
                                         LevelPolicy::kWorstCase);
  EXPECT_DOUBLE_EQ(worst[f.index()], 2.0 + 30.0);
}

TEST(StaticLevel, UnconditionalSuccessorFloorsTheWeightedSum) {
  ctg::CtgBuilder b;
  const TaskId f = b.AddTask("fork");
  const TaskId arm0 = b.AddTask("arm0");
  const TaskId arm1 = b.AddTask("arm1");
  const TaskId always = b.AddTask("always");
  b.AddConditionalEdge(f, arm0, 0);
  b.AddConditionalEdge(f, arm1, 1);
  b.AddEdge(f, always);
  const ctg::Ctg g = std::move(b).Build();
  arch::PlatformBuilder pb(4, 1);
  pb.SetTaskCost(TaskId{0}, PeId{0}, 1.0, 1.0);
  pb.SetTaskCost(TaskId{1}, PeId{0}, 4.0, 1.0);
  pb.SetTaskCost(TaskId{2}, PeId{0}, 2.0, 1.0);
  pb.SetTaskCost(TaskId{3}, PeId{0}, 50.0, 1.0);
  const arch::Platform platform = std::move(pb).Build();
  ctg::BranchProbabilities probs(4);
  probs.Set(f, {0.5, 0.5});
  const auto levels = ComputeStaticLevels(
      g, platform, probs, LevelPolicy::kProbabilityWeighted);
  // The unconditional successor (level 50) dominates the weighted arms.
  EXPECT_DOUBLE_EQ(levels[f.index()], 1.0 + 50.0);
}

// ---------------------------------------------------------------------------
// DLS on the Fig. 1 example

class Fig1Dls : public ::testing::Test {
 protected:
  Fig1Dls() : ex_(apps::MakeFig1Example()), analysis_(ex_.graph) {}
  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
};

TEST_F(Fig1Dls, ScheduleValidatesAndCoversAllTasks) {
  const Schedule s =
      RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs);
  s.Validate();
  check::Validate(s);
  for (TaskId t : ex_.graph.TaskIds()) {
    EXPECT_TRUE(s.placement(t).pe.valid());
    EXPECT_GE(s.placement(t).order_index, 0);
    EXPECT_DOUBLE_EQ(s.placement(t).speed_ratio, 1.0);
  }
}

TEST_F(Fig1Dls, CommitOrderIsAPermutation) {
  const Schedule s =
      RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs);
  std::vector<bool> seen(ex_.graph.task_count(), false);
  for (TaskId t : ex_.graph.TaskIds()) {
    const int order = s.placement(t).order_index;
    ASSERT_GE(order, 0);
    ASSERT_LT(order, static_cast<int>(ex_.graph.task_count()));
    EXPECT_FALSE(seen[static_cast<std::size_t>(order)]);
    seen[static_cast<std::size_t>(order)] = true;
  }
}

TEST_F(Fig1Dls, SourceStartsAtZero) {
  const Schedule s =
      RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs);
  EXPECT_DOUBLE_EQ(s.placement(ex_.tau(1)).start_ms, 0.0);
}

TEST_F(Fig1Dls, OrNodeWaitsForFork) {
  // Paper Example 1: τ8 must wait until τ3 finishes in every case.
  const Schedule s =
      RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs);
  EXPECT_GE(s.placement(ex_.tau(8)).start_ms,
            s.placement(ex_.tau(3)).finish_ms - 1e-9);
}

TEST_F(Fig1Dls, ControlEdgeMaterializedFromAnalysis) {
  const Schedule s =
      RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs);
  bool found = false;
  for (const ExtraEdge& e : s.control_edges()) {
    if (e.src == ex_.tau(3) && e.dst == ex_.tau(8)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(Fig1Dls, MutexTasksMayOverlapOnOnePe) {
  // Force a single-PE platform: τ4 and τ5..τ7 are mutually exclusive and
  // must be able to share the PE window.
  arch::PlatformBuilder pb(8, 1);
  for (int t = 0; t < 8; ++t) {
    pb.SetTaskCost(TaskId{t}, PeId{0},
                   ex_.platform.Wcet(TaskId{t}, PeId{0}),
                   ex_.platform.Energy(TaskId{t}, PeId{0}));
  }
  const arch::Platform single = std::move(pb).Build();
  const Schedule aware =
      RunDls(ex_.graph, analysis_, single, ex_.probs);
  DlsOptions blind;
  blind.mutex_aware = false;
  const Schedule serial =
      RunDls(ex_.graph, analysis_, single, ex_.probs, blind);
  aware.Validate();
  serial.Validate();
  check::Validate(aware);
  check::Validate(serial);
  // Serializing mutually exclusive tasks can only lengthen the schedule.
  EXPECT_LE(aware.Makespan(), serial.Makespan() + 1e-9);
  EXPECT_LT(aware.Makespan(), serial.Makespan() - 1e-9);
}

TEST_F(Fig1Dls, FixedMappingIsRespected) {
  std::vector<PeId> mapping(ex_.graph.task_count(), PeId{1});
  DlsOptions options;
  options.fixed_mapping = &mapping;
  const Schedule s =
      RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs, options);
  check::Validate(s);
  for (TaskId t : ex_.graph.TaskIds()) {
    EXPECT_EQ(s.placement(t).pe, PeId{1});
  }
}

TEST_F(Fig1Dls, RoundRobinMappingCyclesPes) {
  const auto mapping = RoundRobinMapping(ex_.graph, ex_.platform);
  ASSERT_EQ(mapping.size(), ex_.graph.task_count());
  int count0 = 0;
  for (PeId pe : mapping) {
    if (pe == PeId{0}) ++count0;
  }
  EXPECT_EQ(count0, 4);  // 8 tasks over 2 PEs
}

TEST_F(Fig1Dls, RecomputeTimesIsIdempotent) {
  Schedule s = RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs);
  const double makespan = s.Makespan();
  s.RecomputeTimes();
  EXPECT_NEAR(s.Makespan(), makespan, 1e-9);
  s.Validate();
  check::Validate(s);
}

TEST_F(Fig1Dls, ScaledWcetAndEnergyFollowSpeedRatio) {
  Schedule s = RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs);
  const TaskId t = ex_.tau(2);
  const double nominal_wcet = s.NominalWcet(t);
  const double nominal_energy = s.ScaledEnergy(t);
  s.placement(t).speed_ratio = 0.5;
  EXPECT_DOUBLE_EQ(s.ScaledWcet(t), 2.0 * nominal_wcet);
  EXPECT_DOUBLE_EQ(s.ScaledEnergy(t), 0.25 * nominal_energy);
}

// ---------------------------------------------------------------------------
// Property sweep: every DLS configuration on every random CTG yields a
// valid schedule.

using SweepParam = std::tuple<int, tgff::Category, bool>;

class DlsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DlsSweep, ScheduleIsAlwaysValid) {
  const auto [seed, category, mutex_aware] = GetParam();
  tgff::RandomCtgParams params;
  params.task_count = 22;
  params.fork_count = 3;
  params.pe_count = 3;
  params.category = category;
  params.seed = static_cast<std::uint64_t>(seed);
  const tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
  const ctg::ActivationAnalysis analysis(rc.graph);
  const auto probs = apps::UniformProbabilities(rc.graph);
  DlsOptions options;
  options.mutex_aware = mutex_aware;
  const Schedule s =
      RunDls(rc.graph, analysis, rc.platform, probs, options);
  s.Validate();
  check::Validate(s);

  // Every data dependency is respected with communication delay.
  for (EdgeId eid : rc.graph.EdgeIds()) {
    const ctg::Edge& e = rc.graph.edge(eid);
    EXPECT_GE(s.placement(e.dst).start_ms,
              s.placement(e.src).finish_ms + s.EdgeCommTime(eid) - 1e-6);
  }
  // Pseudo edges only between same-PE pairs.
  for (const ExtraEdge& e : s.pseudo_edges()) {
    EXPECT_EQ(s.placement(e.src).pe, s.placement(e.dst).pe);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DlsSweep,
    ::testing::Combine(::testing::Range(1, 9),
                       ::testing::Values(tgff::Category::kForkJoin,
                                         tgff::Category::kFlat),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// PE-availability mask edge cases

class PeMaskEdge : public ::testing::Test {
 protected:
  PeMaskEdge() : ex_(apps::MakeFig1Example()), analysis_(ex_.graph) {}
  apps::Fig1Example ex_;  // 2-PE platform
  ctg::ActivationAnalysis analysis_;
};

TEST_F(PeMaskEdge, MaskingEveryPlatformPeIsACleanError) {
  // Both PEs of the 2-PE platform removed: the options themselves are
  // structurally fine (bits beyond the platform exist), so RunDls must
  // reject the combination with a diagnosable error, not crash or
  // produce an unplaceable schedule.
  DlsOptions options;
  options.available_pes = arch::PeMask().Without(PeId{0}).Without(PeId{1});
  EXPECT_TRUE(options.Validate().ok());
  EXPECT_THROW(
      RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs, options),
      InvalidArgument);
}

TEST_F(PeMaskEdge, MaskOfAllSixtyFourBitsFailsOptionValidation) {
  DlsOptions options;
  options.available_pes = arch::PeMask::WithoutBits(~0ULL);
  const util::Error err = options.Validate();
  EXPECT_FALSE(err.ok());
  EXPECT_NE(err.message().find("PE"), std::string::npos) << err.message();
}

TEST_F(PeMaskEdge, SinglePeSurvivorHostsEveryTask) {
  for (int masked = 0; masked < 2; ++masked) {
    const PeId survivor{1 - masked};
    DlsOptions options;
    options.available_pes = arch::PeMask().Without(PeId{masked});
    const Schedule s =
        RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs, options);
    for (TaskId t : ex_.graph.TaskIds()) {
      EXPECT_EQ(s.placement(t).pe, survivor) << "task " << t.index();
    }
    check::Expectations expect;
    expect.available_pes = options.available_pes;
    check::Validate(s, expect);
    // Single-PE schedules carry no cross-PE transfers.
    for (EdgeId eid : ex_.graph.EdgeIds()) {
      EXPECT_NEAR(s.comm(eid).finish_ms - s.comm(eid).start_ms, 0.0, 1e-9);
    }
  }
}

TEST_F(PeMaskEdge, MaskedScheduleNoWorseDetectorFiresOnWrongMask) {
  // The oracle must catch a schedule that ignored its mask: validate an
  // unmasked schedule against a mask excluding a PE it used.
  const Schedule s =
      RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs);
  bool uses_pe0 = false;
  for (TaskId t : ex_.graph.TaskIds()) {
    uses_pe0 |= s.placement(t).pe == PeId{0};
  }
  ASSERT_TRUE(uses_pe0);
  check::Expectations expect;
  expect.available_pes = arch::PeMask().Without(PeId{0});
  EXPECT_TRUE(check::CheckSchedule(s, expect).Has("pe-mask"));
}

TEST(Deadline, AssignDeadlineScalesNominalMakespan) {
  tgff::RandomCtgParams params;
  params.task_count = 15;
  params.fork_count = 2;
  params.seed = 5;
  tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
  const double deadline = apps::AssignDeadline(rc.graph, rc.platform, 1.5);
  EXPECT_DOUBLE_EQ(rc.graph.deadline_ms(), deadline);
  const ctg::ActivationAnalysis analysis(rc.graph);
  const Schedule s = RunDls(rc.graph, analysis, rc.platform,
                            apps::UniformProbabilities(rc.graph));
  EXPECT_NEAR(deadline, 1.5 * s.Makespan(), 1e-6);
  EXPECT_THROW(apps::AssignDeadline(rc.graph, rc.platform, 0.5),
               InvalidArgument);
}

}  // namespace
}  // namespace actg::sched
