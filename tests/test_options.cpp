/// \file test_options.cpp
/// Validate() contracts of the options structs (DlsOptions,
/// StretchOptions, NlpOptions, AdaptiveOptions) and the adaptive
/// controller's up-front rejection of invalid options: construction
/// must throw before any scheduling work happens.

#include <vector>

#include <gtest/gtest.h>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "ctg/activation.h"
#include "dvfs/stretch.h"
#include "sched/dls.h"
#include "tgff/random_ctg.h"
#include "util/error.h"

namespace actg {
namespace {

TEST(DlsOptionsValidate, DefaultsOkFixedMappingChecked) {
  sched::DlsOptions options;
  EXPECT_FALSE(options.Validate());  // false == ok

  std::vector<PeId> empty;
  options.fixed_mapping = &empty;
  EXPECT_TRUE(options.Validate());

  std::vector<PeId> mapping{PeId{0}, PeId{1}};
  options.fixed_mapping = &mapping;
  EXPECT_FALSE(options.Validate());
}

TEST(StretchOptionsValidate, MaxPathsMustBePositive) {
  dvfs::StretchOptions options;
  EXPECT_FALSE(options.Validate());
  options.max_paths = 0;
  const util::Error err = options.Validate();
  EXPECT_TRUE(err);
  EXPECT_FALSE(err.message().empty());
}

TEST(NlpOptionsValidate, ChecksNestedAndOwnKnobs) {
  dvfs::NlpOptions options;
  EXPECT_FALSE(options.Validate());

  options.stretch.max_paths = 0;  // nested failure propagates
  EXPECT_TRUE(options.Validate());
  options.stretch.max_paths = 1 << 20;

  options.iterations = 0;
  EXPECT_TRUE(options.Validate());
  options.iterations = 4000;

  options.initial_step = 0.0;
  EXPECT_TRUE(options.Validate());
  options.initial_step = 1.5;
  EXPECT_TRUE(options.Validate());
  options.initial_step = 1.0;
  EXPECT_FALSE(options.Validate());

  options.projection_sweeps = -1;
  EXPECT_TRUE(options.Validate());
}

TEST(AdaptiveOptionsValidate, ChecksWindowThresholdAndNested) {
  adaptive::AdaptiveOptions options;
  EXPECT_FALSE(options.Validate());

  options.window_length = 0;
  EXPECT_TRUE(options.Validate());
  options.window_length = 20;

  for (double bad : {0.0, -0.5, 1.5}) {
    options.threshold = bad;
    EXPECT_TRUE(options.Validate()) << "threshold " << bad;
  }
  options.threshold = 1.0;  // closed upper bound is allowed
  EXPECT_FALSE(options.Validate());

  options.stretch.max_paths = 0;  // nested stretch failure propagates
  EXPECT_TRUE(options.Validate());
}

TEST(AdaptiveController, RejectsInvalidOptionsUpFront) {
  tgff::RandomCtgParams params;
  params.task_count = 12;
  params.pe_count = 2;
  params.fork_count = 1;
  params.seed = 5;
  tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
  apps::AssignDeadline(rc.graph, rc.platform, 1.3);
  const ctg::ActivationAnalysis analysis(rc.graph);
  const auto probs = apps::UniformProbabilities(rc.graph);

  adaptive::AdaptiveOptions bad;
  bad.window_length = 0;
  EXPECT_THROW(adaptive::AdaptiveController(rc.graph, analysis,
                                            rc.platform, probs, bad),
               actg::InvalidArgument);

  bad = {};
  bad.threshold = 2.0;
  EXPECT_THROW(adaptive::AdaptiveController(rc.graph, analysis,
                                            rc.platform, probs, bad),
               actg::InvalidArgument);

  // ThrowIfError surfaces the message of the failed validation.
  bad = {};
  bad.stretch.max_paths = 0;
  try {
    adaptive::AdaptiveController controller(rc.graph, analysis,
                                            rc.platform, probs, bad);
    FAIL() << "construction should have thrown";
  } catch (const actg::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("max_paths"), std::string::npos);
  }
}

}  // namespace
}  // namespace actg
