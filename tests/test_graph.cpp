#include <gtest/gtest.h>

#include <sstream>

#include "apps/fig1_example.h"
#include "ctg/dot.h"
#include "ctg/graph.h"
#include "util/error.h"

namespace actg::ctg {
namespace {

Ctg MakeDiamond() {
  CtgBuilder b;
  const TaskId s = b.AddTask("s");
  const TaskId l = b.AddTask("l");
  const TaskId r = b.AddTask("r");
  const TaskId t = b.AddTask("t");
  b.AddEdge(s, l, 1.0);
  b.AddEdge(s, r, 2.0);
  b.AddEdge(l, t, 3.0);
  b.AddEdge(r, t, 4.0);
  return std::move(b).Build();
}

TEST(CtgBuilder, BuildsDiamond) {
  const Ctg g = MakeDiamond();
  EXPECT_EQ(g.task_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.Sources().size(), 1u);
  EXPECT_EQ(g.Sinks().size(), 1u);
  EXPECT_EQ(g.TopologicalOrder().size(), 4u);
  EXPECT_TRUE(g.ForkIds().empty());
}

TEST(CtgBuilder, AdjacencyIsConsistent) {
  const Ctg g = MakeDiamond();
  const TaskId s{0};
  EXPECT_EQ(g.OutEdges(s).size(), 2u);
  EXPECT_EQ(g.InEdges(s).size(), 0u);
  const TaskId t{3};
  EXPECT_EQ(g.InEdges(t).size(), 2u);
  for (EdgeId eid : g.InEdges(t)) {
    EXPECT_EQ(g.edge(eid).dst, t);
  }
}

TEST(CtgBuilder, TopologicalOrderRespectsEdges) {
  const Ctg g = MakeDiamond();
  std::vector<std::size_t> pos(g.task_count());
  const auto& topo = g.TopologicalOrder();
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i].index()] = i;
  for (EdgeId eid : g.EdgeIds()) {
    EXPECT_LT(pos[g.edge(eid).src.index()], pos[g.edge(eid).dst.index()]);
  }
}

TEST(CtgBuilder, DetectsCycle) {
  CtgBuilder b;
  const TaskId x = b.AddTask("x");
  const TaskId y = b.AddTask("y");
  b.AddEdge(x, y);
  b.AddEdge(y, x);
  EXPECT_THROW(std::move(b).Build(), InvalidArgument);
}

TEST(CtgBuilder, RejectsSelfLoop) {
  CtgBuilder b;
  const TaskId x = b.AddTask("x");
  EXPECT_THROW(b.AddEdge(x, x), InvalidArgument);
}

TEST(CtgBuilder, RejectsUnknownEndpoints) {
  CtgBuilder b;
  const TaskId x = b.AddTask("x");
  EXPECT_THROW(b.AddEdge(x, TaskId{5}), InvalidArgument);
  EXPECT_THROW(b.AddEdge(TaskId{}, x), InvalidArgument);
}

TEST(CtgBuilder, RejectsNegativeComm) {
  CtgBuilder b;
  const TaskId x = b.AddTask("x");
  const TaskId y = b.AddTask("y");
  EXPECT_THROW(b.AddEdge(x, y, -1.0), InvalidArgument);
}

TEST(CtgBuilder, EmptyGraphRejected) {
  CtgBuilder b;
  EXPECT_THROW(std::move(b).Build(), InvalidArgument);
}

TEST(CtgBuilder, ForkDetectionAndOutcomeCount) {
  CtgBuilder b;
  const TaskId f = b.AddTask("fork");
  const TaskId x = b.AddTask("x");
  const TaskId y = b.AddTask("y");
  b.AddConditionalEdge(f, x, 0);
  b.AddConditionalEdge(f, y, 1);
  const Ctg g = std::move(b).Build();
  EXPECT_TRUE(g.IsFork(f));
  EXPECT_FALSE(g.IsFork(x));
  EXPECT_EQ(g.OutcomeCount(f), 2);
  ASSERT_EQ(g.ForkIds().size(), 1u);
  EXPECT_EQ(g.ForkIds()[0], f);
}

TEST(CtgBuilder, UnusedForkOutcomeRejected) {
  CtgBuilder b;
  const TaskId f = b.AddTask("fork");
  const TaskId x = b.AddTask("x");
  const TaskId y = b.AddTask("y");
  b.AddConditionalEdge(f, x, 0);
  b.AddConditionalEdge(f, y, 2);  // outcome 1 never used
  EXPECT_THROW(std::move(b).Build(), InvalidArgument);
}

TEST(CtgBuilder, SingleOutcomeForkRejected) {
  CtgBuilder b;
  const TaskId f = b.AddTask("fork");
  const TaskId x = b.AddTask("x");
  b.AddConditionalEdge(f, x, 0);
  EXPECT_THROW(std::move(b).Build(), InvalidArgument);
}

TEST(CtgBuilder, OutcomeLabelsExtendArity) {
  CtgBuilder b;
  const TaskId f = b.AddTask("fork");
  const TaskId x = b.AddTask("x");
  const TaskId y = b.AddTask("y");
  b.AddConditionalEdge(f, x, 0);
  b.AddConditionalEdge(f, y, 1);
  b.SetOutcomeLabels(f, {"yes", "no"});
  const Ctg g = std::move(b).Build();
  EXPECT_EQ(g.OutcomeLabel(f, 0), "yes");
  EXPECT_EQ(g.OutcomeLabel(f, 1), "no");
  EXPECT_THROW(g.OutcomeLabel(f, 2), InvalidArgument);
}

TEST(CtgBuilder, LabelsOnNonForkRejected) {
  CtgBuilder b;
  const TaskId x = b.AddTask("x");
  const TaskId y = b.AddTask("y");
  b.AddEdge(x, y);
  b.SetOutcomeLabels(x, {"a", "b"});
  EXPECT_THROW(std::move(b).Build(), InvalidArgument);
}

TEST(CtgBuilder, OrNodeWithoutPredecessorsRejected) {
  CtgBuilder b;
  b.AddOrTask("lonely_or");
  b.AddTask("other");
  EXPECT_THROW(std::move(b).Build(), InvalidArgument);
}

TEST(CtgBuilder, DeadlineValidation) {
  CtgBuilder b;
  b.AddTask("x");
  EXPECT_THROW(b.SetDeadline(-1.0), InvalidArgument);
  b.SetDeadline(25.0);
  Ctg g = std::move(b).Build();
  EXPECT_DOUBLE_EQ(g.deadline_ms(), 25.0);
  g.SetDeadline(40.0);
  EXPECT_DOUBLE_EQ(g.deadline_ms(), 40.0);
  EXPECT_THROW(g.SetDeadline(0.0), InvalidArgument);
}

TEST(CtgBuilder, ArityFnCoversForksOnly) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const auto arity = ex.graph.ArityFn();
  EXPECT_EQ(arity(ex.tau(3)), 2);
  EXPECT_EQ(arity(ex.tau(5)), 2);
  EXPECT_EQ(arity(ex.tau(1)), 0);
}

TEST(Fig1, StructureMatchesPaper) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const Ctg& g = ex.graph;
  EXPECT_EQ(g.task_count(), 8u);
  EXPECT_EQ(g.ForkIds().size(), 2u);
  EXPECT_TRUE(g.IsFork(ex.tau(3)));
  EXPECT_TRUE(g.IsFork(ex.tau(5)));
  EXPECT_EQ(g.task(ex.tau(8)).join, JoinType::kOr);
  EXPECT_EQ(g.task(ex.tau(1)).join, JoinType::kAnd);
  EXPECT_EQ(g.OutcomeLabel(ex.tau(3), 0), "a1");
  EXPECT_EQ(g.OutcomeLabel(ex.tau(5), 1), "b2");
}

TEST(Dot, ExportsAllNodesAndStyles) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  std::ostringstream os;
  WriteDot(os, ex.graph);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("tau1"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);       // forks
  EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos);  // or-node
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);        // cond edge
  EXPECT_NE(dot.find("a1"), std::string::npos);
}

}  // namespace
}  // namespace actg::ctg
