#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/common.h"
#include "check/fuzz.h"
#include "check/validator.h"
#include "ctg/activation.h"
#include "sched/dls.h"
#include "sim/executor.h"
#include "tgff/random_ctg.h"
#include "util/rng.h"

namespace actg::check {
namespace {

// ---------------------------------------------------------------------------
// Differential test: the modified DLS against brute-force enumeration of
// every task->PE mapping (DLS still does the ordering on each fixed
// mapping). On <= 7-task, 2-PE graphs the 2^n mapping space is
// exhaustive, so the minimum over it bounds what any mapping heuristic
// can reach with this ordering rule.

struct DiffCase {
  tgff::RandomCase rc;
  ctg::ActivationAnalysis analysis;
  ctg::BranchProbabilities probs;

  explicit DiffCase(tgff::RandomCase c)
      : rc(std::move(c)),
        analysis(rc.graph),
        probs(apps::UniformProbabilities(rc.graph)) {}
};

DiffCase MakeDiffCase(std::uint64_t seed) {
  tgff::RandomCtgParams params;
  params.pe_count = 2;
  params.task_count = 4 + static_cast<int>(seed % 4);  // 4..7
  params.fork_count = params.task_count >= 5 ? static_cast<int>(seed % 2)
                                             : 0;
  params.category = tgff::Category::kFlat;
  params.seed = seed;
  tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
  apps::AssignDeadline(rc.graph, rc.platform, 2.0);
  return DiffCase(std::move(rc));
}

TEST(Differential, DlsWithinExhaustiveMappingEnvelope) {
  // The pinned heuristic gap: across the 100 seeds below the worst
  // DLS-over-best-mapping ratio observed is ~1.22 (greedy mapping pays
  // for communication it cannot foresee). 1.5 leaves headroom for
  // platform-dependent FP rounding while still catching a real mapping
  // regression, which lands far above it.
  constexpr double kMaxGap = 1.5;
  double worst_gap = 0.0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const DiffCase d = MakeDiffCase(seed);
    const std::size_t n = d.rc.graph.task_count();
    ASSERT_LE(n, 7u);

    sched::Schedule dls = sched::RunDls(d.rc.graph, d.analysis,
                                        d.rc.platform, d.probs);
    Expectations expect;
    expect.deadline_feasible = true;  // deadline = 2x this very makespan
    const Report report = CheckSchedule(dls, expect);
    ASSERT_TRUE(report.ok())
        << "seed " << seed << ": " << report.ToString();

    double best = dls.Makespan();
    for (std::uint64_t bits = 0; bits < (1ULL << n); ++bits) {
      std::vector<PeId> mapping(n);
      for (std::size_t t = 0; t < n; ++t) {
        mapping[t] = PeId{static_cast<int>((bits >> t) & 1)};
      }
      sched::DlsOptions fixed;
      fixed.fixed_mapping = &mapping;
      sched::Schedule candidate = sched::RunDls(
          d.rc.graph, d.analysis, d.rc.platform, d.probs, fixed);
      const Report fixed_report = CheckSchedule(candidate);
      ASSERT_TRUE(fixed_report.ok()) << "seed " << seed << " mapping "
                                     << bits << ": "
                                     << fixed_report.ToString();
      best = std::min(best, candidate.Makespan());
    }
    ASSERT_GT(best, 0.0);
    const double gap = dls.Makespan() / best;
    worst_gap = std::max(worst_gap, gap);
    // DLS's own mapping is inside the enumerated space, so it can never
    // beat the envelope.
    EXPECT_GE(gap, 1.0 - 1e-9) << "seed " << seed;
    EXPECT_LE(gap, kMaxGap) << "seed " << seed << ": DLS makespan "
                            << dls.Makespan() << " vs best mapping "
                            << best;
  }
  std::cout << "worst DLS/best-mapping gap over 100 seeds: " << worst_gap
            << "\n";
}

// ---------------------------------------------------------------------------
// Generator + repro format

TEST(FuzzGenerator, SpecsAreDeterministicAndDiverse) {
  const util::Random root(7);
  bool saw_faults = false, saw_adaptive = false, saw_mask = false;
  bool saw_flat = false, saw_forkjoin = false;
  for (std::uint64_t i = 0; i < 40; ++i) {
    const FuzzCaseSpec a = RandomSpec(root, i);
    const FuzzCaseSpec b = RandomSpec(root, i);
    EXPECT_EQ(a.params.seed, b.params.seed);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.trace_instances, b.trace_instances);
    EXPECT_TRUE(a.params.Validate().ok()) << a.params.Validate().message();
    saw_faults |= a.with_faults;
    saw_adaptive |= a.adaptive;
    saw_mask |= a.masked_pes != 0;
    saw_flat |= a.params.category == tgff::Category::kFlat;
    saw_forkjoin |= a.params.category == tgff::Category::kForkJoin;
  }
  EXPECT_TRUE(saw_faults);
  EXPECT_TRUE(saw_adaptive);
  EXPECT_TRUE(saw_mask);
  EXPECT_TRUE(saw_flat);
  EXPECT_TRUE(saw_forkjoin);
}

TEST(FuzzRepro, RoundTripPreservesTheCase) {
  const util::Random root(11);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const FuzzCase original = Materialize(RandomSpec(root, i));
    std::stringstream ss;
    WriteRepro(ss, original);
    util::Expected<FuzzCase> parsed = ParseRepro(ss);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message();
    const FuzzCase& back = parsed.value();
    EXPECT_EQ(back.graph.task_count(), original.graph.task_count());
    EXPECT_EQ(back.graph.edge_count(), original.graph.edge_count());
    EXPECT_NEAR(back.graph.deadline_ms(), original.graph.deadline_ms(),
                1e-6);
    EXPECT_EQ(back.platform.pe_count(), original.platform.pe_count());
    EXPECT_EQ(back.policy, original.policy);
    EXPECT_EQ(back.mutex_aware, original.mutex_aware);
    EXPECT_EQ(back.prob_weighted, original.prob_weighted);
    EXPECT_EQ(back.masked_pes, original.masked_pes);
    EXPECT_EQ(back.prob_seed, original.prob_seed);
    EXPECT_EQ(back.trace_instances, original.trace_instances);
    EXPECT_EQ(back.adaptive, original.adaptive);
    EXPECT_EQ(back.with_faults, original.with_faults);
    // The replayed case must reproduce the original's verdict.
    EXPECT_EQ(RunCase(back).ok(), RunCase(original).ok());
  }
}

TEST(FuzzRepro, MalformedInputIsAnErrorNotACrash) {
  const auto expect_fail = [](const std::string& text) {
    std::istringstream is(text);
    util::Expected<FuzzCase> parsed = ParseRepro(is);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
  };
  expect_fail("");
  expect_fail("not a fuzzcase\n");
  expect_fail("fuzzcase v1\nend\n");                    // no graph
  expect_fail("fuzzcase v1\nbogus directive\nend\n");
  expect_fail("fuzzcase v1\npolicy\nend\n");            // missing operand
}

// ---------------------------------------------------------------------------
// Shrinker

TEST(FuzzShrink, ReachesTheMinimalCaseForASyntheticPredicate) {
  FuzzCaseSpec spec = RandomSpec(util::Random(5), 0);
  // Fork-free flat graph so every task is individually droppable and
  // the shrinker cannot stall on fork-outcome structure.
  spec.params.task_count = 14;
  spec.params.fork_count = 0;
  spec.params.pe_count = 3;
  spec.params.category = tgff::Category::kFlat;
  spec.params.seed = 5;
  spec.with_faults = true;
  spec.adaptive = true;
  FuzzCase c = Materialize(spec);
  ASSERT_GE(c.graph.task_count(), 3u);

  // "Fails" whenever at least 3 tasks remain: the shrinker must strip
  // the case to exactly 3 tasks and strip every optional knob.
  const FuzzCase shrunk = Shrink(c, [](const FuzzCase& cand) {
    return cand.graph.task_count() >= 3;
  });
  EXPECT_EQ(shrunk.graph.task_count(), 3u);
  EXPECT_FALSE(shrunk.adaptive);
  EXPECT_FALSE(shrunk.with_faults);
  EXPECT_EQ(shrunk.masked_pes, 0u);
  EXPECT_EQ(shrunk.trace_instances, 1u);
  EXPECT_EQ(shrunk.platform.pe_count(), 1u);
  EXPECT_EQ(shrunk.platform.task_count(), shrunk.graph.task_count());
}

TEST(FuzzShrink, KeepsTheCaseRunnable) {
  const FuzzCase c = Materialize(RandomSpec(util::Random(13), 3));
  const FuzzCase shrunk = Shrink(c, [](const FuzzCase& cand) {
    return cand.graph.edge_count() >= 1;
  });
  EXPECT_GE(shrunk.graph.edge_count(), 1u);
  // Whatever the shrinker produced still goes through the pipeline.
  const Report report = RunCase(shrunk);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---------------------------------------------------------------------------
// End-to-end smoke + committed corpus replay

TEST(FuzzSmoke, SixtyRandomCasesProduceNoViolation) {
  const util::Random root(42);
  for (std::uint64_t i = 0; i < 60; ++i) {
    const FuzzCase c = Materialize(RandomSpec(root, i));
    const Report report = RunCase(c);
    EXPECT_TRUE(report.ok())
        << "seed 42 index " << i << ": " << report.ToString();
  }
}

TEST(FuzzCorpus, CommittedReprosReplayClean) {
  const std::filesystem::path dir =
      std::filesystem::path(ACTG_TEST_CORPUS_DIR) / "check";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".fuzzcase") continue;
    std::ifstream is(entry.path());
    ASSERT_TRUE(is.good()) << entry.path();
    while (is.peek() == '#') {
      std::string skipped;
      std::getline(is, skipped);
    }
    util::Expected<FuzzCase> c = ParseRepro(is);
    ASSERT_TRUE(c.ok()) << entry.path() << ": " << c.error().message();
    const Report report = RunCase(c.value());
    EXPECT_TRUE(report.ok())
        << entry.path() << ": " << report.ToString();
    ++replayed;
  }
  EXPECT_GE(replayed, 3u) << "corpus unexpectedly empty: " << dir;
}

}  // namespace
}  // namespace actg::check
