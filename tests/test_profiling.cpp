#include <gtest/gtest.h>

#include "apps/fig1_example.h"
#include "ctg/activation.h"
#include "profiling/window.h"
#include "util/error.h"

namespace actg::profiling {
namespace {

class WindowFixture : public ::testing::Test {
 protected:
  WindowFixture() : ex_(apps::MakeFig1Example()), analysis_(ex_.graph) {}
  TaskId ForkA() const { return ex_.tau(3); }
  TaskId ForkB() const { return ex_.tau(5); }

  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
};

TEST_F(WindowFixture, EmptyBuffersInitially) {
  SlidingWindowProfiler profiler(ex_.graph, 4);
  EXPECT_EQ(profiler.Count(ForkA()), 0u);
  EXPECT_FALSE(profiler.Full(ForkA()));
  EXPECT_THROW(profiler.WindowedDistribution(ForkA()), InvalidArgument);
}

TEST_F(WindowFixture, ObserveFillsAndEvictsFifo) {
  SlidingWindowProfiler profiler(ex_.graph, 3);
  profiler.Observe(ForkA(), 0);
  profiler.Observe(ForkA(), 0);
  profiler.Observe(ForkA(), 1);
  EXPECT_TRUE(profiler.Full(ForkA()));
  EXPECT_NEAR(profiler.WindowedProbability(ForkA(), 0), 2.0 / 3.0, 1e-12);
  // Shifting in another '1' evicts the oldest '0'.
  profiler.Observe(ForkA(), 1);
  EXPECT_EQ(profiler.Count(ForkA()), 3u);
  EXPECT_NEAR(profiler.WindowedProbability(ForkA(), 0), 1.0 / 3.0, 1e-12);
}

TEST_F(WindowFixture, WindowedDistributionSumsToOne) {
  SlidingWindowProfiler profiler(ex_.graph, 8);
  for (int i = 0; i < 8; ++i) profiler.Observe(ForkA(), i % 2);
  const auto dist = profiler.WindowedDistribution(ForkA());
  EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-12);
  EXPECT_NEAR(dist[0], 0.5, 1e-12);
}

TEST_F(WindowFixture, ObserveValidatesInput) {
  SlidingWindowProfiler profiler(ex_.graph, 4);
  EXPECT_THROW(profiler.Observe(ex_.tau(1), 0), InvalidArgument);
  EXPECT_THROW(profiler.Observe(ForkA(), 5), InvalidArgument);
  EXPECT_THROW(profiler.Observe(ForkA(), -1), InvalidArgument);
  EXPECT_THROW(SlidingWindowProfiler(ex_.graph, 0), InvalidArgument);
}

TEST_F(WindowFixture, ObserveInstanceSkipsInactiveForks) {
  SlidingWindowProfiler profiler(ex_.graph, 4);
  ctg::BranchAssignment asg(ex_.graph.task_count());
  asg.Set(ForkA(), 0);  // a1 -> fork B never executes
  asg.Set(ForkB(), 1);  // decision recorded in the vector but unused
  profiler.ObserveInstance(analysis_, asg);
  EXPECT_EQ(profiler.Count(ForkA()), 1u);
  EXPECT_EQ(profiler.Count(ForkB()), 0u);

  asg.Set(ForkA(), 1);  // a2 -> fork B executes
  profiler.ObserveInstance(analysis_, asg);
  EXPECT_EQ(profiler.Count(ForkA()), 2u);
  EXPECT_EQ(profiler.Count(ForkB()), 1u);
}

TEST_F(WindowFixture, ResetClearsEverything) {
  SlidingWindowProfiler profiler(ex_.graph, 4);
  profiler.Observe(ForkA(), 0);
  profiler.Observe(ForkB(), 1);
  profiler.Reset();
  EXPECT_EQ(profiler.Count(ForkA()), 0u);
  EXPECT_EQ(profiler.Count(ForkB()), 0u);
}

TEST_F(WindowFixture, WindowTracksDriftWithBoundedLag) {
  // Feed 0s then 1s; after a full window of 1s the estimate must be 1.
  SlidingWindowProfiler profiler(ex_.graph, 10);
  for (int i = 0; i < 50; ++i) profiler.Observe(ForkA(), 0);
  EXPECT_NEAR(profiler.WindowedProbability(ForkA(), 1), 0.0, 1e-12);
  for (int i = 0; i < 10; ++i) profiler.Observe(ForkA(), 1);
  EXPECT_NEAR(profiler.WindowedProbability(ForkA(), 1), 1.0, 1e-12);
}

TEST(DistributionDistance, MaxAbsDifference) {
  EXPECT_DOUBLE_EQ(DistributionDistance({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(DistributionDistance({0.9, 0.1}, {0.5, 0.5}), 0.4);
  EXPECT_DOUBLE_EQ(DistributionDistance({0.2, 0.3, 0.5}, {0.2, 0.5, 0.3}),
                   0.2);
  EXPECT_THROW(DistributionDistance({0.5, 0.5}, {1.0}), InvalidArgument);
}

TEST(DistributionDistance, ThresholdSemanticsOfThePaper) {
  // Fig. 4: the filtered probability updates when the windowed value
  // moves by more than 0.1 from the value in use.
  EXPECT_GT(DistributionDistance({0.62, 0.38}, {0.50, 0.50}), 0.1);
  EXPECT_LT(DistributionDistance({0.58, 0.42}, {0.50, 0.50}), 0.1);
}

}  // namespace
}  // namespace actg::profiling
