#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "util/atomic_file.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace actg::util {
namespace {

// ---------------------------------------------------------------------------
// Error handling

TEST(Error, CheckMacroThrowsInvalidArgument) {
  EXPECT_THROW(ACTG_CHECK(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(ACTG_CHECK(true, "fine"));
}

TEST(Error, AssertMacroThrowsInternalError) {
  EXPECT_THROW(ACTG_ASSERT(false, "bug"), InternalError);
  EXPECT_NO_THROW(ACTG_ASSERT(true, "fine"));
}

TEST(Error, MessagesCarryLocationAndExpression) {
  try {
    ACTG_CHECK(1 == 2, "numbers disagree");
    FAIL() << "expected a throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyRootsAtActgError) {
  // actg:: qualification: inside namespace actg::util the unqualified
  // name resolves to the value-semantic util::Error status type.
  EXPECT_THROW(
      { throw InvalidArgument("x"); }, actg::Error);
  EXPECT_THROW(
      { throw InternalError("x"); }, actg::Error);
}

TEST(ErrorStatus, DefaultIsOk) {
  const Error ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_FALSE(static_cast<bool>(ok));
  EXPECT_TRUE(ok.message().empty());
  EXPECT_NO_THROW(ok.ThrowIfError());
}

TEST(ErrorStatus, InvalidCarriesMessageAndThrows) {
  const Error err = Error::Invalid("bad knob");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(static_cast<bool>(err));
  EXPECT_EQ(err.message(), "bad knob");
  EXPECT_THROW(err.ThrowIfError(), InvalidArgument);
}

// ---------------------------------------------------------------------------
// RNG

TEST(Rng, DeterministicForEqualSeeds) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, KnownReferenceFirstOutputsAreStable) {
  // Golden values pin the generator across refactorings; any change here
  // silently invalidates every recorded experiment.
  Xoshiro256 g(12345);
  const std::uint64_t first = g.Next();
  Xoshiro256 h(12345);
  EXPECT_EQ(first, h.Next());
  EXPECT_NE(first, h.Next());
}

TEST(Rng, JumpDecorrelatesStreams) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Random, UniformUnitStaysInHalfOpenInterval) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, UniformRespectsBoundsAndMean) {
  Random rng(4);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform(-2.0, 6.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 6.0);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Random, UniformRejectsInvertedBounds) {
  Random rng(5);
  EXPECT_THROW(rng.Uniform(1.0, 0.0), InvalidArgument);
}

TEST(Random, UniformIntCoversAllValuesInclusive) {
  Random rng(6);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Random, UniformIntDegenerateRange) {
  Random rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Random, BernoulliMatchesProbability) {
  Random rng(8);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Random, BernoulliEdgeCases) {
  Random rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Random, NormalMatchesMoments) {
  Random rng(10);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Random, CategoricalMatchesWeights) {
  Random rng(11);
  std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Random, CategoricalRejectsBadWeights) {
  Random rng(12);
  EXPECT_THROW(rng.Categorical({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(rng.Categorical({1.0, -0.5}), InvalidArgument);
}

TEST(Random, PermutationIsAPermutation) {
  Random rng(13);
  const auto perm = rng.Permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Random, PermutationOfZeroAndOne) {
  Random rng(14);
  EXPECT_TRUE(rng.Permutation(0).empty());
  EXPECT_EQ(rng.Permutation(1), std::vector<std::size_t>{0});
}

// ---------------------------------------------------------------------------
// Stats

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSingleStream) {
  RunningStats all, left, right;
  Random rng(15);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(1.0, 3.0);
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // empty right
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // empty left
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(Quantile({}, 0.5), InvalidArgument);
  EXPECT_THROW(Quantile({1.0}, 1.5), InvalidArgument);
}

TEST(Mean, SimpleAndThrowsOnEmpty) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(Mean({}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// TablePrinter

TEST(TablePrinter, AlignsColumnsAndPrintsAllRows) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.BeginRow().Cell("b").Cell(2.5, 1);
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, RejectsMismatchedRowWidth) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only one"}), InvalidArgument);
}

TEST(TablePrinter, CellBeforeBeginRowThrows) {
  TablePrinter t({"a"});
  EXPECT_THROW(t.Cell("x"), InvalidArgument);
}

TEST(TablePrinter, FormatFixedDecimals) {
  EXPECT_EQ(TablePrinter::Format(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Format(2.0, 0), "2");
}

// ---------------------------------------------------------------------------
// CSV

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.WriteRow(std::vector<std::string>{"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.WriteRow(std::vector<std::string>{"x,y", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(os.str(), "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Csv, NumericRowPrecision) {
  std::ostringstream os;
  CsvWriter w(os);
  w.WriteRow(std::vector<double>{1.5, 2.25}, 2);
  EXPECT_EQ(os.str(), "1.50,2.25\n");
}

// ---------------------------------------------------------------------------
// AtomicFile

namespace fs = std::filesystem;

std::string ScratchFile(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "actg_atomic_file";
  fs::create_directories(dir);
  const fs::path path = dir / name;
  fs::remove(path);
  return path.string();
}

std::string Slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// No `<name>.tmp.<pid>` sibling may survive an AtomicFile's lifetime.
bool HasTempSibling(const std::string& path) {
  const fs::path target(path);
  const std::string prefix = target.filename().string() + ".tmp.";
  for (const auto& entry : fs::directory_iterator(target.parent_path())) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) return true;
  }
  return false;
}

TEST(AtomicFile, CommitLandsTheBytesAndRemovesTheTemp) {
  const std::string path = ScratchFile("commit.txt");
  {
    AtomicFile file(path);
    ASSERT_TRUE(file.ok());
    EXPECT_EQ(file.path(), path);
    file.os() << "hello\nworld\n";
    EXPECT_FALSE(fs::exists(path));  // nothing visible before Commit
    EXPECT_TRUE(file.Commit().ok());
  }
  EXPECT_EQ(Slurp(path), "hello\nworld\n");
  EXPECT_FALSE(HasTempSibling(path));
}

TEST(AtomicFile, AbandonedWriteLeavesTheTargetUntouched) {
  const std::string path = ScratchFile("abandon.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "original\n").ok());
  {
    AtomicFile file(path);
    ASSERT_TRUE(file.ok());
    file.os() << "half-written garbage";
    // destructor runs with no Commit(): simulated crash before rename
  }
  EXPECT_EQ(Slurp(path), "original\n");
  EXPECT_FALSE(HasTempSibling(path));
}

TEST(AtomicFile, CommitReplacesAnExistingFileWholesale) {
  const std::string path = ScratchFile("replace.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "old contents that are longer\n").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new\n").ok());
  EXPECT_EQ(Slurp(path), "new\n");
  EXPECT_FALSE(HasTempSibling(path));
}

TEST(AtomicFile, MissingDirectoryReportsInsteadOfThrowing) {
  const std::string path =
      (fs::temp_directory_path() / "actg_atomic_file_no_such_dir" /
       "deep" / "file.txt")
          .string();
  AtomicFile file(path);
  EXPECT_FALSE(file.ok());
  const Error err = file.Commit();
  EXPECT_FALSE(err.ok());
  EXPECT_FALSE(fs::exists(path));
}

TEST(AtomicFile, WriteFileAtomicRoundTripsBinaryBytes) {
  const std::string path = ScratchFile("binary.bin");
  const std::string contents("a\0b\r\nc", 6);
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
  EXPECT_EQ(Slurp(path), contents);
}

}  // namespace
}  // namespace actg::util
