#include <gtest/gtest.h>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "apps/cruise.h"
#include "apps/fig1_example.h"
#include "apps/mpeg.h"
#include "dvfs/paths.h"
#include "dvfs/stretch.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "tgff/random_ctg.h"

using namespace actg;

TEST(Smoke, Fig1Pipeline) {
  apps::Fig1Example ex = apps::MakeFig1Example();
  ctg::ActivationAnalysis analysis(ex.graph);
  sched::Schedule s = sched::RunDls(ex.graph, analysis, ex.platform, ex.probs);
  s.Validate();
  const double before = sim::ExpectedEnergy(s, ex.probs);
  dvfs::StretchStats stats = dvfs::StretchOnline(s, ex.probs);
  s.Validate();
  const double after = sim::ExpectedEnergy(s, ex.probs);
  EXPECT_LT(after, before);
  EXPECT_LE(stats.max_path_delay_ms, ex.graph.deadline_ms() + 1e-6);
  EXPECT_LE(sim::MaxScenarioMakespan(s), ex.graph.deadline_ms() + 1e-6);
}

TEST(Smoke, MpegModel) {
  apps::MpegModel m = apps::MakeMpegModel();
  EXPECT_EQ(m.graph.task_count(), 40u);
  EXPECT_EQ(m.graph.ForkIds().size(), 9u);
  ctg::ActivationAnalysis analysis(m.graph);
  auto probs = apps::UniformProbabilities(m.graph);
  sched::Schedule s = sched::RunDls(m.graph, analysis, m.platform, probs);
  s.Validate();
  dvfs::StretchOnline(s, probs);
  s.Validate();
  EXPECT_LE(sim::MaxScenarioMakespan(s), m.graph.deadline_ms() + 1e-6);
  dvfs::PathSet paths(s);
  fprintf(stderr, "MPEG paths: %zu makespan %.2f deadline %.2f\n",
          paths.size(), s.Makespan(), m.graph.deadline_ms());
}

TEST(Smoke, CruiseAdaptive) {
  apps::CruiseModel m = apps::MakeCruiseModel();
  EXPECT_EQ(m.graph.task_count(), 32u);
  ctg::ActivationAnalysis analysis(m.graph);
  auto trace = apps::GenerateRoadTrace(m, 1, 500, 42);
  auto probs = trace.ProfiledProbabilities(m.graph);
  adaptive::AdaptiveController ctrl(m.graph, analysis, m.platform, probs,
                                    [] {
                                      adaptive::AdaptiveOptions o;
                                      o.window_length = 20;
                                      o.threshold = 0.1;
                                      return o;
                                    }());
  sim::RunSummary summary = adaptive::RunAdaptive(ctrl, trace);
  EXPECT_EQ(summary.deadline_misses, 0u);
  fprintf(stderr, "cruise adaptive calls=%zu energy=%.1f\n",
          ctrl.reschedule_count(), summary.total_energy_mj);
}

TEST(Smoke, RandomCtgAllStretchers) {
  for (auto category : {tgff::Category::kForkJoin, tgff::Category::kFlat}) {
    tgff::RandomCtgParams params;
    params.task_count = 25;
    params.fork_count = 3;
    params.pe_count = 3;
    params.category = category;
    params.seed = 7;
    tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
    apps::AssignDeadline(rc.graph, rc.platform, 1.8);
    ctg::ActivationAnalysis analysis(rc.graph);
    auto probs = apps::UniformProbabilities(rc.graph);
    for (int mode = 0; mode < 3; ++mode) {
      sched::Schedule s = sched::RunDls(rc.graph, analysis, rc.platform, probs);
      s.Validate();
      if (mode == 0) dvfs::StretchOnline(s, probs);
      if (mode == 1) dvfs::StretchProportional(s);
      if (mode == 2) dvfs::StretchNlp(s, probs);
      s.Validate();
      EXPECT_LE(sim::MaxScenarioMakespan(s), rc.graph.deadline_ms() + 1e-6)
          << "category " << static_cast<int>(category) << " mode " << mode;
      fprintf(stderr, "cat%d mode%d E=%.1f\n", static_cast<int>(category),
              mode, sim::ExpectedEnergy(s, probs));
    }
  }
}
