/// \file test_campaign.cpp
/// The campaign runner's contract tests: the accumulator merge laws
/// (bit-exact associativity/commutativity under fuzzed groupings), the
/// population report's shard-split invariance, the full report's
/// byte-identity across --jobs on the committed 1k-instance fleet, the
/// campaign-v1 parser (round-trip + the malformed corpus with pinned
/// diagnostics) and the per-shard oracle guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/accumulator.h"
#include "campaign/checkpoint.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "check/fuzz.h"
#include "check/validator.h"
#include "runtime/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace actg::campaign {
namespace {

// ------------------------------------------------- Accumulator laws

std::vector<double> FuzzObservations(util::Random& rng, std::size_t n) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix magnitudes, signs and exact-binary values so quantization
    // sees every interesting shape.
    switch (rng.UniformInt(0, 3)) {
      case 0:
        xs.push_back(rng.Uniform(-1e6, 1e6));
        break;
      case 1:
        xs.push_back(rng.Uniform(-1.0, 1.0));
        break;
      case 2:
        xs.push_back(static_cast<double>(rng.UniformInt(-1000, 1000)));
        break;
      default:
        xs.push_back(rng.Uniform(0.0, 1e-3));
        break;
    }
  }
  return xs;
}

TEST(Moments, MergeIsBitExactlyAssociativeAndCommutative) {
  util::Random rng(2024);
  for (int round = 0; round < 50; ++round) {
    const std::vector<double> xs =
        FuzzObservations(rng, 1 + static_cast<std::size_t>(
                                      rng.UniformInt(0, 200)));

    // Reference: one accumulator folds everything in order.
    Moments all;
    for (double x : xs) all.Observe(x);

    // Random split into up to 8 parts, merged in a random order.
    const int parts = rng.UniformInt(1, 8);
    std::vector<Moments> shards(static_cast<std::size_t>(parts));
    for (double x : xs) {
      shards[static_cast<std::size_t>(rng.UniformInt(0, parts - 1))]
          .Observe(x);
    }
    const std::vector<std::size_t> order =
        rng.Permutation(shards.size());
    Moments merged;
    for (std::size_t idx : order) merged.Merge(shards[idx]);

    ASSERT_TRUE(merged == all) << "round " << round;
    EXPECT_EQ(merged.count(), xs.size());
    EXPECT_EQ(merged.mean(), all.mean());
    EXPECT_EQ(merged.variance(), all.variance());
    EXPECT_EQ(merged.sum(), all.sum());
  }
}

TEST(Moments, MergeGroupingDoesNotMatter) {
  util::Random rng(7);
  const std::vector<double> xs = FuzzObservations(rng, 100);
  Moments a, b, c;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Observe(xs[i]);
  }
  // (a + b) + c vs a + (b + c).
  Moments left = a;
  left.Merge(b);
  left.Merge(c);
  Moments bc = b;
  bc.Merge(c);
  Moments right = a;
  right.Merge(bc);
  EXPECT_TRUE(left == right);
}

TEST(Histogram, MergeIsBitExactlyAssociativeAndCommutative) {
  util::Random rng(99);
  for (int round = 0; round < 50; ++round) {
    const double hi = rng.Uniform(1.0, 1000.0);
    const std::size_t bins =
        static_cast<std::size_t>(rng.UniformInt(1, 64));
    std::vector<double> xs;
    const int n = rng.UniformInt(1, 300);
    for (int i = 0; i < n; ++i) {
      // Include under/overflow on purpose.
      xs.push_back(rng.Uniform(-0.5 * hi, 1.5 * hi));
    }

    Histogram all(0.0, hi, bins);
    for (double x : xs) all.Observe(x);

    const int parts = rng.UniformInt(1, 6);
    std::vector<Histogram> shards(static_cast<std::size_t>(parts),
                                  Histogram(0.0, hi, bins));
    for (double x : xs) {
      shards[static_cast<std::size_t>(rng.UniformInt(0, parts - 1))]
          .Observe(x);
    }
    Histogram merged(0.0, hi, bins);
    for (std::size_t idx : rng.Permutation(shards.size())) {
      merged.Merge(shards[idx]);
    }

    ASSERT_TRUE(merged == all) << "round " << round;
    EXPECT_EQ(merged.Quantile(0.5), all.Quantile(0.5));
    EXPECT_EQ(merged.Quantile(0.99), all.Quantile(0.99));
  }
}

TEST(Histogram, MergeRejectsMismatchedLayouts) {
  Histogram a(0.0, 10.0, 4);
  Histogram b(0.0, 10.0, 8);
  Histogram c(0.0, 20.0, 4);
  EXPECT_THROW(a.Merge(b), InvalidArgument);
  EXPECT_THROW(a.Merge(c), InvalidArgument);
}

// ------------------------------------------------------ Spec parsing

TEST(CampaignSpecFile, SyntheticRoundTripsByteIdentically) {
  const CampaignSpec spec = SyntheticCampaign(1000, 7);
  std::ostringstream first;
  WriteCampaignFile(first, spec);
  std::istringstream in(first.str());
  const util::Expected<CampaignSpec> parsed = ParseCampaignFile(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  std::ostringstream second;
  WriteCampaignFile(second, parsed.value());
  EXPECT_EQ(first.str(), second.str());
}

TEST(CampaignSpecFile, MinimalFileGetsDefaults) {
  std::istringstream in("campaign v1\ninstances 8\nend\n");
  const util::Expected<CampaignSpec> parsed = ParseCampaignFile(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  const CampaignSpec& spec = parsed.value();
  EXPECT_EQ(spec.instances, 8u);
  EXPECT_EQ(spec.workloads.size(), 4u);
  EXPECT_EQ(spec.policies.size(), 1u);
  EXPECT_EQ(spec.modes.size(), 1u);
  EXPECT_EQ(spec.storms.size(), 1u);
  EXPECT_EQ(spec.CellCount(), 4u);
}

TEST(CampaignSpecFile, CommentsAndBlankLinesAreIgnored)
{
  std::istringstream in(
      "# leading comment\n"
      "campaign v1\n"
      "\n"
      "instances 5   # trailing comment\n"
      "end\n");
  const util::Expected<CampaignSpec> parsed = ParseCampaignFile(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_EQ(parsed.value().instances, 5u);
}

TEST(CampaignSpec, TableModeIsRejected) {
  CampaignSpec spec = SyntheticCampaign(10, 1);
  spec.modes = {adaptive::RescheduleMode::kTable};
  const util::Error error = spec.Validate();
  EXPECT_FALSE(error.ok());
  EXPECT_NE(error.message().find("full and incremental"),
            std::string::npos);
}

TEST(CampaignSpec, ValidationCatchesBrokenKnobs) {
  {
    CampaignSpec spec = SyntheticCampaign(10, 1);
    spec.oracle_rate = 2.0;
    EXPECT_FALSE(spec.Validate().ok());
  }
  {
    CampaignSpec spec = SyntheticCampaign(10, 1);
    spec.shards = 0;
    EXPECT_FALSE(spec.Validate().ok());
  }
  {
    CampaignSpec spec = SyntheticCampaign(10, 1);
    spec.bins = 0;
    EXPECT_FALSE(spec.Validate().ok());
  }
}

// Malformed corpus: every tests/corpus/campaign file must be rejected
// with the diagnostic pinned in its '# expect: <substring>' first line.
// Adding a regression is dropping a file in the directory.

struct CorpusCase {
  std::filesystem::path path;
  std::string expect;
  std::string contents;
};

std::vector<CorpusCase> LoadCorpus() {
  const std::filesystem::path dir =
      std::filesystem::path(ACTG_TEST_CORPUS_DIR) / "campaign";
  std::vector<CorpusCase> cases;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    CorpusCase c;
    c.path = entry.path();
    std::ifstream in(c.path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    c.contents = buffer.str();
    const std::string marker = "# expect: ";
    const std::size_t line_end = c.contents.find('\n');
    std::string first = c.contents.substr(
        0, line_end == std::string::npos ? c.contents.size() : line_end);
    if (first.rfind(marker, 0) == 0) c.expect = first.substr(marker.size());
    cases.push_back(std::move(c));
  }
  std::sort(cases.begin(), cases.end(),
            [](const CorpusCase& a, const CorpusCase& b) {
              return a.path.filename() < b.path.filename();
            });
  return cases;
}

TEST(CampaignMalformedCorpus, EveryFileIsRejectedWithItsPinnedDiagnostic) {
  const std::vector<CorpusCase> cases = LoadCorpus();
  ASSERT_GE(cases.size(), 10u) << "corpus went missing";
  for (const CorpusCase& c : cases) {
    SCOPED_TRACE(c.path.filename().string());
    ASSERT_FALSE(c.expect.empty())
        << "corpus file lacks a '# expect: <substring>' first line";
    std::istringstream in(c.contents);
    const util::Expected<CampaignSpec> parsed = ParseCampaignFile(in);
    ASSERT_FALSE(parsed.ok()) << "malformed input parsed successfully";
    EXPECT_NE(parsed.error().message().find(c.expect), std::string::npos)
        << "diagnostic was: " << parsed.error().message();
  }
}

// ----------------------------------------------------------- Runner

/// A population small enough to simulate several times per test but
/// spanning every axis kind: two workloads, both reschedule modes, a
/// calm and a faulted storm.
CampaignSpec SmallSpec(std::size_t instances = 24) {
  CampaignSpec spec;
  spec.seed = 11;
  // Per-instance cache keys: the shard-split invariance tests below
  // need every observation to be a pure function of (spec, i), which
  // cross-instance schedule sharing deliberately trades away.
  spec.share_cache = false;
  spec.instances = instances;
  spec.trace_instances = 2;
  spec.model_seeds = 2;
  spec.window = 2;
  spec.oracle_rate = 0.25;
  spec.degrade = true;
  spec.workloads = {apps::TenantWorkload::kMpeg,
                    apps::TenantWorkload::kCruise};
  spec.modes = {adaptive::RescheduleMode::kFull,
                adaptive::RescheduleMode::kIncremental};
  spec.storms = {StormSpec{"calm", "none", 1.0},
                 StormSpec{"squall", "mixed", 0.5}};
  spec.ApplyDefaults();
  return spec;
}

TEST(CampaignShardRange, PartitionsAreContiguousAndBalanced) {
  for (std::size_t instances : {0u, 1u, 7u, 24u, 1000u}) {
    for (std::size_t shards : {1u, 3u, 8u, 32u}) {
      std::size_t covered = 0;
      std::size_t previous_end = 0;
      std::size_t min_size = instances + 1, max_size = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [begin, end] =
            Campaign::ShardRange(instances, shards, s);
        EXPECT_EQ(begin, previous_end);
        EXPECT_LE(begin, end);
        previous_end = end;
        covered += end - begin;
        min_size = std::min(min_size, end - begin);
        max_size = std::max(max_size, end - begin);
      }
      EXPECT_EQ(previous_end, instances);
      EXPECT_EQ(covered, instances);
      EXPECT_LE(max_size - min_size, 1u)
          << instances << " over " << shards;
    }
  }
}

TEST(CampaignRunner, PopulationReportIsShardSplitInvariant) {
  std::vector<std::string> reports;
  for (std::size_t shards : {1u, 3u, 8u}) {
    CampaignSpec spec = SmallSpec();
    spec.shards = shards;
    Campaign run(spec);
    std::ostringstream os;
    run.Run().WritePopulation(os);
    reports.push_back(os.str());
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

TEST(CampaignRunner, FullReportIsJobsInvariant) {
  CampaignSpec spec = SmallSpec();
  spec.share_cache = true;  // jobs-invariance holds with sharing on
  spec.shards = 5;
  std::vector<std::string> reports;
  for (std::size_t jobs : {1u, 4u}) {
    CampaignOptions options;
    options.jobs = jobs;
    Campaign run(spec, options);
    std::ostringstream os;
    run.Run().Write(os);
    reports.push_back(os.str());
  }
  EXPECT_EQ(reports[0], reports[1]);
}

TEST(CampaignRunner, EveryNonEmptyShardRunsAnOracleValidation) {
  CampaignSpec spec = SmallSpec();
  spec.shards = 7;
  spec.oracle_rate = 0.0;  // only the forced first-instance checks
  Campaign run(spec);
  const CampaignResult& result = run.Run();
  ASSERT_EQ(result.shards.size(), 7u);
  for (const ShardExecution& shard : result.shards) {
    if (shard.end == shard.begin) continue;
    EXPECT_GE(shard.oracle_validations, 1u);
  }
}

TEST(CampaignRunner, FleetIsTheSumOfTheCells) {
  Campaign run(SmallSpec());
  const CampaignResult& result = run.Run();
  report::FleetStats expected;
  for (const CellStats& cell : result.cells) {
    expected.Merge(cell.ToFleetStats());
  }
  EXPECT_EQ(result.fleet.instances, expected.instances);
  EXPECT_EQ(result.fleet.deadline_misses, expected.deadline_misses);
  EXPECT_EQ(result.fleet.reschedules, expected.reschedules);
  EXPECT_DOUBLE_EQ(result.fleet.total_energy_mj,
                   expected.total_energy_mj);
  EXPECT_DOUBLE_EQ(result.fleet.max_makespan_ms,
                   expected.max_makespan_ms);
  // Population covers every instance exactly once.
  std::size_t apps = 0;
  for (const CellStats& cell : result.cells) apps += cell.app_instances;
  EXPECT_EQ(apps, result.spec.instances);
}

TEST(CampaignRunner, CellStatsMergeMatchesUnifiedAccumulation) {
  // Running the same population as one shard or as five must produce
  // bit-identical per-cell state (the runner merges shard-local
  // CellStats; this pins the merge law end to end, not just for the
  // raw accumulators).
  CampaignSpec one = SmallSpec();
  one.shards = 1;
  CampaignSpec five = SmallSpec();
  five.shards = 5;
  Campaign a(one), b(five);
  const CampaignResult& ra = a.Run();
  const CampaignResult& rb = b.Run();
  ASSERT_EQ(ra.cells.size(), rb.cells.size());
  for (std::size_t i = 0; i < ra.cells.size(); ++i) {
    EXPECT_TRUE(ra.cells[i] == rb.cells[i]) << ra.keys[i].Label();
  }
}

TEST(CampaignRunner, RunIsValidOnce) {
  Campaign run(SmallSpec(8));
  run.Run();
  EXPECT_THROW(run.Run(), Error);
}

TEST(CampaignRunner, RejectsBrokenSpecUpFront) {
  CampaignSpec spec = SmallSpec();
  spec.instances = 0;
  EXPECT_THROW(Campaign{spec}, InvalidArgument);
}

TEST(CampaignRunner, RunCampaignFileParsesAndRuns) {
  std::ostringstream text;
  WriteCampaignFile(text, SmallSpec(8));
  std::istringstream in(text.str());
  std::ostringstream report;
  const auto run = RunCampaignFile(in, 2, report);
  ASSERT_TRUE(run.ok()) << run.error().message();
  EXPECT_NE(report.str().find("campaign report v1"), std::string::npos);
  EXPECT_NE(report.str().find("fleet instances 16"), std::string::npos);
}

TEST(CampaignRunner, RunCampaignFileReportsParseErrors) {
  std::istringstream in("campaign v1\ninstances nope\nend\n");
  std::ostringstream report;
  const auto run = RunCampaignFile(in, 1, report);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.error().message().find("expected a number"),
            std::string::npos);
  EXPECT_TRUE(report.str().empty());
}

// The committed 1k-instance fleet: the golden --jobs byte-equality the
// CI smoke job also replays through the actg_campaign binary.
TEST(CampaignGolden, CommittedFleetReportIsJobsInvariant) {
  const std::filesystem::path path =
      std::filesystem::path(ACTG_TEST_DATA_DIR) /
      "campaign_fleet1k.campaign";
  std::vector<std::string> reports;
  for (std::size_t jobs : {1u, 8u}) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::ostringstream report;
    const auto run = RunCampaignFile(in, jobs, report);
    ASSERT_TRUE(run.ok()) << run.error().message();
    reports.push_back(report.str());
  }
  EXPECT_EQ(reports[0], reports[1]);
  // The fleet really is the committed one.
  EXPECT_NE(reports[0].find("instances 1000 shards 8"),
            std::string::npos);
}

// ---------------------------------- Checkpoint / resume / quarantine

/// Fresh scratch directory for checkpoint/quarantine artifacts.
std::filesystem::path FreshDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("actg_campaign_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string RunToReport(const CampaignSpec& spec,
                        CampaignOptions options = {}) {
  Campaign run(spec, options);
  std::ostringstream os;
  run.Run().Write(os);
  return os.str();
}

TEST(CampaignCheckpoint, FingerprintTracksEveryKnob) {
  EXPECT_EQ(FingerprintSpec(SmallSpec()), FingerprintSpec(SmallSpec()));
  CampaignSpec reseeded = SmallSpec();
  reseeded.seed += 1;
  EXPECT_NE(FingerprintSpec(SmallSpec()), FingerprintSpec(reseeded));
  // The new robustness knobs are part of the identity too.
  CampaignSpec quarantining = SmallSpec();
  quarantining.quarantine_cap = 4;
  EXPECT_NE(FingerprintSpec(SmallSpec()), FingerprintSpec(quarantining));
}

TEST(CampaignCheckpoint, StoreLoadStoreIsByteIdentical) {
  CampaignSpec spec = SmallSpec();
  spec.shards = 4;
  const std::filesystem::path dir = FreshDir("roundtrip");
  CampaignOptions options;
  options.checkpoint_dir = dir.string();
  Campaign run(spec, options);
  run.Run();
  std::ifstream in(dir / "campaign.ckpt", std::ios::binary);
  ASSERT_TRUE(in);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string stored = buffer.str();
  std::istringstream reload(stored);
  const util::Expected<CheckpointState> state =
      LoadCheckpoint(reload, spec);
  ASSERT_TRUE(state.ok()) << state.error().message();
  std::ostringstream restored;
  WriteCheckpoint(restored, spec, state.value().done,
                  state.value().outputs);
  EXPECT_EQ(stored, restored.str());
}

TEST(CampaignCheckpoint, ResumeWithoutAFileIsAFreshStart) {
  const std::filesystem::path dir = FreshDir("fresh");
  CampaignOptions options;
  options.checkpoint_dir = dir.string();
  Campaign run(SmallSpec(8), options);
  EXPECT_EQ(run.Resume(), 0u);
  EXPECT_NO_THROW(run.Run());
}

// The tentpole contract: kill the campaign at a shard boundary (the
// deterministic SIGKILL stand-in), resume it in a fresh process-alike
// Campaign, and the final report is byte-identical to an uninterrupted
// run — at any kill point and any --jobs on either side.
TEST(CampaignCheckpoint, KillAndResumeIsByteIdenticalAtAnyKillPoint) {
  CampaignSpec spec = SmallSpec();
  spec.shards = 5;
  const std::string uninterrupted = RunToReport(spec);
  for (const std::size_t jobs : {1u, 4u}) {
    for (const std::size_t kill_after : {1u, 2u, 4u}) {
      const std::filesystem::path dir =
          FreshDir("kill_" + std::to_string(jobs) + "_" +
                   std::to_string(kill_after));
      CampaignOptions options;
      options.jobs = jobs;
      options.checkpoint_dir = dir.string();
      options.stop_after_shards = kill_after;
      Campaign interrupted(spec, options);
      EXPECT_THROW(interrupted.Run(), Error);

      CampaignOptions resume_options;
      resume_options.jobs = jobs;
      resume_options.checkpoint_dir = dir.string();
      Campaign resumed(spec, resume_options);
      // Concurrent shards may land after the stop threshold, so the
      // checkpoint holds at least kill_after completed shards.
      EXPECT_GE(resumed.Resume(), kill_after);
      std::ostringstream os;
      resumed.Run().Write(os);
      EXPECT_EQ(os.str(), uninterrupted)
          << "jobs " << jobs << " kill_after " << kill_after;
    }
  }
}

TEST(CampaignCheckpoint, ResumingAFinishedCampaignRecomputesNothing) {
  CampaignSpec spec = SmallSpec();
  spec.shards = 3;
  const std::filesystem::path dir = FreshDir("finished");
  CampaignOptions options;
  options.checkpoint_dir = dir.string();
  const std::string first = RunToReport(spec, options);
  Campaign resumed(spec, options);
  EXPECT_EQ(resumed.Resume(), spec.shards);
  std::ostringstream os;
  resumed.Run().Write(os);
  EXPECT_EQ(os.str(), first);
}

TEST(CampaignCheckpoint, MismatchedSpecIsRejectedByFingerprint) {
  CampaignSpec spec = SmallSpec(8);
  const std::filesystem::path dir = FreshDir("mismatch");
  CampaignOptions options;
  options.checkpoint_dir = dir.string();
  Campaign run(spec, options);
  run.Run();
  CampaignSpec other = SmallSpec(8);
  other.seed += 1;
  Campaign resumed(other, options);
  try {
    resumed.Resume();
    FAIL() << "expected the fingerprint gate to fire";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos)
        << e.what();
  }
}

// Malformed-checkpoint corpus: every tests/corpus/checkpoint file is
// rejected with the diagnostic pinned in its '# expect:' first line.
// '@FP@' / '@SHAPE@' placeholders are substituted with the corpus
// spec's real fingerprint and shape line, so files can pin errors that
// sit behind those gates.
TEST(CheckpointMalformedCorpus, EveryFileIsRejectedWithItsDiagnostic) {
  const CampaignSpec spec = SmallSpec();
  std::ostringstream fp;
  fp << std::hex << FingerprintSpec(spec);
  std::ostringstream shape;
  shape << "shards " << spec.shards << " instances " << spec.instances
        << " cells " << spec.CellCount() << " bins " << spec.bins;
  const std::filesystem::path dir =
      std::filesystem::path(ACTG_TEST_CORPUS_DIR) / "checkpoint";
  std::size_t cases = 0;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string contents = buffer.str();
    const std::string marker = "# expect: ";
    ASSERT_EQ(contents.rfind(marker, 0), 0u)
        << "corpus file lacks a '# expect: <substring>' first line";
    const std::string expect =
        contents.substr(marker.size(),
                        contents.find('\n') - marker.size());
    for (const auto& [from, to] :
         {std::pair<std::string, std::string>{"@FP@", fp.str()},
          {"@SHAPE@", shape.str()}}) {
      for (std::size_t at = contents.find(from);
           at != std::string::npos; at = contents.find(from)) {
        contents.replace(at, from.size(), to);
      }
    }
    std::istringstream is(contents);
    const util::Expected<CheckpointState> state =
        LoadCheckpoint(is, spec);
    ASSERT_FALSE(state.ok()) << "malformed checkpoint parsed";
    EXPECT_NE(state.error().message().find(expect), std::string::npos)
        << "diagnostic was: " << state.error().message();
    EXPECT_NE(state.error().message().find("checkpoint line"),
              std::string::npos);
    ++cases;
  }
  EXPECT_GE(cases, 8u) << "corpus went missing";
}

CampaignSpec PoisonSpec(std::size_t instances = 24) {
  CampaignSpec spec = SmallSpec(instances);
  spec.poison_every = 5;  // instances 4, 9, 14, ... are poison
  spec.quarantine_cap = instances;
  spec.quarantine_retries = 1;
  return spec;
}

TEST(CampaignQuarantine, PoisonInstancesAreQuarantinedNotFatal) {
  CampaignSpec spec = PoisonSpec();
  spec.shards = 4;
  Campaign run(spec);
  const CampaignResult& result = run.Run();
  EXPECT_EQ(result.quarantined, 24u / 5u);
  // Healthy instances still landed in the population.
  EXPECT_EQ(result.fleet.instances,
            (24u - 24u / 5u) * spec.trace_instances);
  std::ostringstream os;
  result.Write(os);
  EXPECT_NE(os.str().find("quarantine cap 24 records 4"),
            std::string::npos);
  EXPECT_NE(os.str().find("reason poison"), std::string::npos);
  // Transient classes retried: 1 initial + quarantine_retries attempts.
  EXPECT_NE(os.str().find("attempts 2"), std::string::npos);
}

TEST(CampaignQuarantine, ReportIsJobsInvariantWithQuarantine) {
  CampaignSpec spec = PoisonSpec();
  spec.shards = 5;
  std::vector<std::string> reports;
  for (const std::size_t jobs : {1u, 8u}) {
    CampaignOptions options;
    options.jobs = jobs;
    reports.push_back(RunToReport(spec, options));
  }
  EXPECT_EQ(reports[0], reports[1]);
}

TEST(CampaignQuarantine, SectionIsAbsentWithoutOptIn) {
  EXPECT_EQ(RunToReport(SmallSpec(8)).find("quarantine"),
            std::string::npos);
}

TEST(CampaignQuarantine, CapZeroKeepsTheLegacyAbort) {
  CampaignSpec spec = SmallSpec(8);
  spec.poison_every = 3;  // quarantine_cap stays 0: abort semantics
  Campaign run(spec);
  try {
    run.Run();
    FAIL() << "expected the poison to abort the campaign";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected campaign poison"),
              std::string::npos)
        << e.what();
  }
}

TEST(CampaignQuarantine, ExceedingTheCapFailsLoudly) {
  CampaignSpec spec = SmallSpec(8);
  spec.shards = 1;
  spec.poison_every = 1;  // every instance is poison
  spec.quarantine_cap = 2;
  spec.quarantine_retries = 0;
  Campaign run(spec);
  try {
    run.Run();
    FAIL() << "expected the cap to fire";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(
        std::string(e.what()).find("quarantine cap exceeded (cap 2)"),
        std::string::npos)
        << e.what();
  }
}

TEST(CampaignQuarantine, RescheduleBudgetQuarantinesWedgedInstances) {
  // Baseline: establish that some controller reschedules more than
  // once (pigeonhole: total > app instances), so a budget of 1 must
  // quarantine at least one instance as overbudget.
  CampaignSpec spec = SmallSpec();
  spec.trace_instances = 8;
  spec.threshold = 0.01;
  Campaign baseline(spec);
  ASSERT_GT(baseline.Run().fleet.reschedules, spec.instances)
      << "baseline spec no longer reschedule-heavy; retune the test";

  CampaignSpec budgeted = spec;
  budgeted.reschedule_budget = 1;
  budgeted.quarantine_cap = budgeted.instances;
  Campaign run(budgeted);
  const CampaignResult& result = run.Run();
  EXPECT_GT(result.quarantined, 0u);
  std::ostringstream os;
  result.Write(os);
  EXPECT_NE(os.str().find("reason overbudget"), std::string::npos);
  EXPECT_NE(os.str().find("reschedule budget exceeded"),
            std::string::npos);
}

TEST(CampaignQuarantine, EmittedReproReplaysThroughTheFuzzHarness) {
  CampaignSpec spec = PoisonSpec(10);  // poison: instances 4 and 9
  spec.shards = 2;
  const std::filesystem::path dir = FreshDir("repro");
  CampaignOptions options;
  options.quarantine_dir = dir.string();
  Campaign run(spec, options);
  EXPECT_EQ(run.Run().quarantined, 2u);

  const std::filesystem::path repro =
      dir / ("quarantine-" + std::to_string(spec.seed) + "-4.fuzzcase");
  ASSERT_TRUE(std::filesystem::exists(repro)) << repro;
  std::ifstream in(repro);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("seed 11 index 4"), std::string::npos)
      << header;
  while (in.peek() == '#') std::getline(in, header);
  const util::Expected<check::FuzzCase> replayed = check::ParseRepro(in);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message();
  // The instance was poisoned, not genuinely broken: the replay runs
  // the full validator pipeline clean (actg_fuzz --replay exits 0).
  EXPECT_TRUE(check::RunCase(replayed.value()).ok());
}

// --------------------------------------------- Metrics::MergeFrom

TEST(MetricsMerge, CountersTimersAndObservationsFold) {
  runtime::Metrics a, b;
  a.Increment("x", 2);
  b.Increment("x", 3);
  b.Increment("y", 1);
  a.RecordTime("t", 1000000);
  b.RecordTime("t", 2000000);
  a.Observe("lat", 1.0);
  b.Observe("lat", 3.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.counter("x"), 5u);
  EXPECT_EQ(a.counter("y"), 1u);
  EXPECT_DOUBLE_EQ(a.timer_ms("t"), 3.0);
  EXPECT_DOUBLE_EQ(a.quantile("lat", 1.0), 3.0);
}

TEST(MetricsMerge, SelfMergeIsRejected) {
  runtime::Metrics a;
  EXPECT_THROW(a.MergeFrom(a), Error);
}

}  // namespace
}  // namespace actg::campaign
