#include <gtest/gtest.h>

#include "ctg/condition.h"
#include "util/error.h"

namespace actg::ctg {
namespace {

const TaskId kForkA{3};  // two outcomes a1/a2 (paper Fig. 1: τ3)
const TaskId kForkB{5};  // two outcomes b1/b2 (paper Fig. 1: τ5)
const TaskId kForkC{9};  // three outcomes

Guard::ForkArity Arity() {
  return [](TaskId fork) {
    if (fork == kForkA || fork == kForkB) return 2;
    if (fork == kForkC) return 3;
    return 0;
  };
}

Condition A(int o) { return Condition{kForkA, o}; }
Condition B(int o) { return Condition{kForkB, o}; }
Condition C(int o) { return Condition{kForkC, o}; }

BranchProbabilities MakeProbs(double pa1, double pb1) {
  BranchProbabilities probs(16);
  probs.Set(kForkA, {pa1, 1.0 - pa1});
  probs.Set(kForkB, {pb1, 1.0 - pb1});
  probs.Set(kForkC, {0.2, 0.3, 0.5});
  return probs;
}

// ---------------------------------------------------------------------------
// BranchAssignment / BranchProbabilities

TEST(BranchAssignment, SetAndGet) {
  BranchAssignment a(16);
  EXPECT_EQ(a.Get(kForkA), -1);
  a.Set(kForkA, 1);
  EXPECT_EQ(a.Get(kForkA), 1);
}

TEST(BranchAssignment, RangeChecks) {
  BranchAssignment a(4);
  EXPECT_THROW(a.Set(TaskId{9}, 0), InvalidArgument);
  EXPECT_THROW(a.Set(TaskId{1}, -1), InvalidArgument);
  EXPECT_THROW(a.Get(TaskId{-1}), InvalidArgument);
}

TEST(BranchProbabilities, ValidatesDistribution) {
  BranchProbabilities p(8);
  EXPECT_THROW(p.Set(kForkA, {0.5}), InvalidArgument);          // arity 1
  EXPECT_THROW(p.Set(kForkA, {0.5, 0.6}), InvalidArgument);     // sum != 1
  EXPECT_THROW(p.Set(kForkA, {-0.2, 1.2}), InvalidArgument);    // negative
  EXPECT_NO_THROW(p.Set(kForkA, {0.25, 0.75}));
  EXPECT_TRUE(p.Has(kForkA));
  EXPECT_FALSE(p.Has(kForkB));
  EXPECT_DOUBLE_EQ(p.Outcome(kForkA, 1), 0.75);
  EXPECT_EQ(p.OutcomeCount(kForkA), 2);
}

TEST(BranchProbabilities, QueryingUnsetForkThrows) {
  BranchProbabilities p(8);
  EXPECT_THROW(p.Outcome(kForkA, 0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Minterm

TEST(Minterm, TrueMintermProperties) {
  Minterm m;
  EXPECT_TRUE(m.IsTrue());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_DOUBLE_EQ(m.Probability(MakeProbs(0.3, 0.5)), 1.0);
}

TEST(Minterm, FromConditionsSortsAndDeduplicates) {
  const auto m = Minterm::FromConditions({B(0), A(1), A(1)});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->size(), 2u);
  EXPECT_EQ(m->conditions()[0].fork, kForkA);
  EXPECT_EQ(m->conditions()[1].fork, kForkB);
}

TEST(Minterm, FromConditionsRejectsContradiction) {
  EXPECT_FALSE(Minterm::FromConditions({A(0), A(1)}).has_value());
}

TEST(Minterm, CompatibilityRules) {
  const Minterm a1(A(0)), a2(A(1)), b1(B(0));
  EXPECT_FALSE(a1.CompatibleWith(a2));
  EXPECT_TRUE(a1.CompatibleWith(b1));
  EXPECT_TRUE(a1.CompatibleWith(Minterm()));
  EXPECT_TRUE(Minterm().CompatibleWith(a2));
}

TEST(Minterm, ConjoinMergesSortedConditions) {
  const auto ab = Minterm(A(1)).Conjoin(Minterm(B(0)));
  ASSERT_TRUE(ab.has_value());
  EXPECT_EQ(ab->size(), 2u);
  EXPECT_EQ(ab->OutcomeOf(kForkA), 1);
  EXPECT_EQ(ab->OutcomeOf(kForkB), 0);
  EXPECT_FALSE(ab->OutcomeOf(kForkC).has_value());
}

TEST(Minterm, ConjoinContradictionIsNull) {
  EXPECT_FALSE(Minterm(A(0)).Conjoin(Minterm(A(1))).has_value());
}

TEST(Minterm, ImpliesIsSupersetOfConditions) {
  const auto ab = *Minterm(A(1)).Conjoin(Minterm(B(0)));
  EXPECT_TRUE(ab.Implies(Minterm(A(1))));
  EXPECT_TRUE(ab.Implies(Minterm()));
  EXPECT_FALSE(Minterm(A(1)).Implies(ab));
  EXPECT_FALSE(ab.Implies(Minterm(B(1))));
}

TEST(Minterm, EvaluateAgainstAssignment) {
  BranchAssignment asg(16);
  asg.Set(kForkA, 1);
  asg.Set(kForkB, 0);
  const auto ab = *Minterm(A(1)).Conjoin(Minterm(B(0)));
  EXPECT_TRUE(ab.Evaluate(asg));
  EXPECT_FALSE(Minterm(A(0)).Evaluate(asg));
  EXPECT_TRUE(Minterm().Evaluate(asg));
}

TEST(Minterm, UnresolvedForkEvaluatesFalse) {
  BranchAssignment asg(16);  // nothing resolved
  EXPECT_FALSE(Minterm(A(0)).Evaluate(asg));
}

TEST(Minterm, ProbabilityIsProductOfConditions) {
  const auto probs = MakeProbs(0.4, 0.5);
  const auto ab = *Minterm(A(1)).Conjoin(Minterm(B(0)));
  EXPECT_NEAR(ab.Probability(probs), 0.6 * 0.5, 1e-12);
}

TEST(Minterm, WithoutRemovesOneFork) {
  const auto ab = *Minterm(A(1)).Conjoin(Minterm(B(0)));
  const Minterm only_b = ab.Without(kForkA);
  EXPECT_EQ(only_b, Minterm(B(0)));
  EXPECT_EQ(ab.Without(kForkC), ab);
}

TEST(Minterm, ToStringForms) {
  const auto name = [](TaskId t) { return "f" + std::to_string(t.value); };
  EXPECT_EQ(Minterm().ToString(name), "1");
  const auto ab = *Minterm(A(1)).Conjoin(Minterm(B(0)));
  EXPECT_EQ(ab.ToString(name), "f3=1&f5=0");
}

// ---------------------------------------------------------------------------
// Guard

TEST(Guard, ConstantsBehave) {
  EXPECT_TRUE(Guard::False().IsFalse());
  EXPECT_TRUE(Guard::True().IsTrue());
  EXPECT_FALSE(Guard::True().IsFalse());
  EXPECT_DOUBLE_EQ(Guard::False().Probability(MakeProbs(0.3, 0.6)), 0.0);
  EXPECT_DOUBLE_EQ(Guard::True().Probability(MakeProbs(0.3, 0.6)), 1.0);
}

TEST(Guard, AbsorptionDropsMoreSpecificMinterm) {
  // a1 | a1&b0  ==  a1
  const Guard g = Guard::Of(Minterm(A(1)))
                      .Or(Guard::Of(*Minterm(A(1)).Conjoin(Minterm(B(0)))),
                          Arity());
  EXPECT_EQ(g.minterms().size(), 1u);
  EXPECT_EQ(g.minterms()[0], Minterm(A(1)));
}

TEST(Guard, ComplementaryMergeTwoWay) {
  // a0 | a1 == true
  const Guard g =
      Guard::Of(Minterm(A(0))).Or(Guard::Of(Minterm(A(1))), Arity());
  EXPECT_TRUE(g.IsTrue());
}

TEST(Guard, ComplementaryMergeThreeWay) {
  // c0 | c1 | c2 == true (fork C has three outcomes)
  Guard g = Guard::Of(Minterm(C(0)))
                .Or(Guard::Of(Minterm(C(1))), Arity())
                .Or(Guard::Of(Minterm(C(2))), Arity());
  EXPECT_TRUE(g.IsTrue());
}

TEST(Guard, PartialThreeWayDoesNotMerge) {
  Guard g = Guard::Of(Minterm(C(0))).Or(Guard::Of(Minterm(C(1))), Arity());
  EXPECT_FALSE(g.IsTrue());
  EXPECT_EQ(g.minterms().size(), 2u);
}

TEST(Guard, NestedComplementaryMerge) {
  // a1&b0 | a1&b1 == a1
  const Guard g =
      Guard::Of(*Minterm(A(1)).Conjoin(Minterm(B(0))))
          .Or(Guard::Of(*Minterm(A(1)).Conjoin(Minterm(B(1)))), Arity());
  ASSERT_EQ(g.minterms().size(), 1u);
  EXPECT_EQ(g.minterms()[0], Minterm(A(1)));
}

TEST(Guard, PaperFig1Or8Guard) {
  // X(τ8) = 1 | a1 (or-node with an unconditional and an a1 alternative)
  // which simplifies to true by absorption.
  const Guard g =
      Guard::True().Or(Guard::Of(Minterm(A(0))), Arity());
  EXPECT_TRUE(g.IsTrue());
}

TEST(Guard, AndDistributesAndDropsContradictions) {
  // (a0 | a1&b0) & a1  ==  a1&b0
  const Guard left = Guard::Of(Minterm(A(0)))
                         .Or(Guard::Of(*Minterm(A(1)).Conjoin(Minterm(B(0)))),
                             Arity());
  const Guard result = left.And(Guard::Of(Minterm(A(1))), Arity());
  ASSERT_EQ(result.minterms().size(), 1u);
  EXPECT_EQ(result.minterms()[0],
            *Minterm(A(1)).Conjoin(Minterm(B(0))));
}

TEST(Guard, AndWithFalseIsFalse) {
  EXPECT_TRUE(
      Guard::True().And(Guard::False(), Arity()).IsFalse());
}

TEST(Guard, CompatibleWithDetectsMutualExclusion) {
  const Guard a0 = Guard::Of(Minterm(A(0)));
  const Guard a1b = Guard::Of(*Minterm(A(1)).Conjoin(Minterm(B(0))));
  EXPECT_FALSE(a0.CompatibleWith(a1b));
  EXPECT_TRUE(a0.CompatibleWith(Guard::True()));
  EXPECT_TRUE(Guard::Of(Minterm(B(0))).CompatibleWith(a0));
}

TEST(Guard, ImpliesRules) {
  const Guard a1 = Guard::Of(Minterm(A(1)));
  const Guard a1b0 = Guard::Of(*Minterm(A(1)).Conjoin(Minterm(B(0))));
  EXPECT_TRUE(a1b0.Implies(a1));
  EXPECT_FALSE(a1.Implies(a1b0));
  EXPECT_TRUE(a1.Implies(Guard::True()));
  EXPECT_TRUE(Guard::False().Implies(a1));
}

TEST(Guard, ProbabilityOfDisjointUnionAdds) {
  const auto probs = MakeProbs(0.4, 0.5);
  // a0 | a1&b0: disjoint -> 0.4 + 0.6*0.5 = 0.7
  const Guard g = Guard::Of(Minterm(A(0)))
                      .Or(Guard::Of(*Minterm(A(1)).Conjoin(Minterm(B(0)))),
                          Arity());
  EXPECT_NEAR(g.Probability(probs), 0.7, 1e-12);
}

TEST(Guard, ProbabilityOfOverlappingUnionIsExact) {
  const auto probs = MakeProbs(0.4, 0.5);
  // a0 | b0 overlap: P = 0.4 + 0.5 - 0.2 = 0.7 (inclusion-exclusion)
  const Guard g =
      Guard::Of(Minterm(A(0))).Or(Guard::Of(Minterm(B(0))), Arity());
  EXPECT_NEAR(g.Probability(probs), 0.7, 1e-12);
}

TEST(Guard, ProbabilityThreeWayFork) {
  const auto probs = MakeProbs(0.4, 0.5);
  const Guard g =
      Guard::Of(Minterm(C(0))).Or(Guard::Of(Minterm(C(2))), Arity());
  EXPECT_NEAR(g.Probability(probs), 0.2 + 0.5, 1e-12);
}

TEST(Guard, EvaluateMatchesAnyMinterm) {
  BranchAssignment asg(16);
  asg.Set(kForkA, 0);
  const Guard g = Guard::Of(Minterm(A(1))).Or(Guard::Of(Minterm(A(0))),
                                              Arity());
  EXPECT_TRUE(g.Evaluate(asg));
  EXPECT_FALSE(Guard::Of(Minterm(A(1))).Evaluate(asg));
  EXPECT_FALSE(Guard::False().Evaluate(asg));
}

TEST(Guard, SupportListsDistinctForks) {
  const Guard g = Guard::Of(*Minterm(A(1)).Conjoin(Minterm(B(0))))
                      .Or(Guard::Of(Minterm(B(1))), Arity());
  const auto support = g.Support();
  ASSERT_EQ(support.size(), 2u);
  EXPECT_EQ(support[0], kForkA);
  EXPECT_EQ(support[1], kForkB);
}

TEST(Guard, ToStringForms) {
  const auto name = [](TaskId t) { return "f" + std::to_string(t.value); };
  EXPECT_EQ(Guard::False().ToString(name), "0");
  EXPECT_EQ(Guard::True().ToString(name), "1");
  const Guard g = Guard::Of(Minterm(A(0)));
  EXPECT_EQ(g.ToString(name), "f3=0");
}

// Idempotence / commutativity sweeps over small random guards.
class GuardAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(GuardAlgebra, OrAndAreCommutativeAndProbabilityConsistent) {
  const int seed = GetParam();
  // Build two pseudo-random guards from the seed.
  auto pick = [&](int salt) {
    Guard g = Guard::False();
    int state = seed * 37 + salt;
    for (int i = 0; i < 3; ++i) {
      state = state * 1103515245 + 12345;
      const int which = (state >> 8) & 3;
      Minterm m = which == 0   ? Minterm(A((state >> 4) & 1))
                  : which == 1 ? Minterm(B((state >> 5) & 1))
                  : which == 2 ? Minterm(C((state >> 6) % 3))
                               : *Minterm(A((state >> 4) & 1))
                                      .Conjoin(Minterm(B((state >> 5) & 1)));
      g = g.Or(Guard::Of(m), Arity());
    }
    return g;
  };
  const Guard x = pick(1), y = pick(2);
  const auto probs = MakeProbs(0.35, 0.6);
  EXPECT_NEAR(x.Or(y, Arity()).Probability(probs),
              y.Or(x, Arity()).Probability(probs), 1e-12);
  EXPECT_NEAR(x.And(y, Arity()).Probability(probs),
              y.And(x, Arity()).Probability(probs), 1e-12);
  // P(x) + P(y) = P(x|y) + P(x&y)
  EXPECT_NEAR(x.Probability(probs) + y.Probability(probs),
              x.Or(y, Arity()).Probability(probs) +
                  x.And(y, Arity()).Probability(probs),
              1e-12);
  // Idempotence.
  EXPECT_NEAR(x.Or(x, Arity()).Probability(probs), x.Probability(probs),
              1e-12);
  EXPECT_NEAR(x.And(x, Arity()).Probability(probs), x.Probability(probs),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuardAlgebra, ::testing::Range(0, 25));

}  // namespace
}  // namespace actg::ctg
