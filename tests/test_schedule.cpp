#include <gtest/gtest.h>

#include "apps/common.h"
#include "apps/fig1_example.h"
#include "ctg/activation.h"
#include "dvfs/algorithms.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "tgff/random_ctg.h"
#include "util/error.h"

// Unit tests of the Schedule container itself, including failure
// injection: Validate() must reject every class of corruption the
// stretchers could conceivably introduce.

namespace actg::sched {
namespace {

class ScheduleFixture : public ::testing::Test {
 protected:
  ScheduleFixture()
      : ex_(apps::MakeFig1Example()),
        analysis_(ex_.graph),
        schedule_(RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs)) {}

  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
  Schedule schedule_;
};

TEST_F(ScheduleFixture, FreshScheduleValidates) {
  EXPECT_NO_THROW(schedule_.Validate());
}

TEST_F(ScheduleFixture, InjectNegativeStartRejected) {
  schedule_.placement(ex_.tau(1)).start_ms = -5.0;
  schedule_.placement(ex_.tau(1)).finish_ms =
      -5.0 + schedule_.ScaledWcet(ex_.tau(1));
  EXPECT_THROW(schedule_.Validate(), InternalError);
}

TEST_F(ScheduleFixture, InjectInconsistentFinishRejected) {
  schedule_.placement(ex_.tau(2)).finish_ms += 3.0;
  EXPECT_THROW(schedule_.Validate(), InternalError);
}

TEST_F(ScheduleFixture, InjectPrecedenceViolationRejected) {
  // Pull τ3 forward past its predecessor τ1.
  auto& p = schedule_.placement(ex_.tau(3));
  p.start_ms = 0.0;
  p.finish_ms = schedule_.ScaledWcet(ex_.tau(3));
  EXPECT_THROW(schedule_.Validate(), InternalError);
}

TEST_F(ScheduleFixture, InjectBadSpeedRatioRejected) {
  {
    Schedule copy = schedule_;
    copy.placement(ex_.tau(4)).speed_ratio = 1.5;
    // Surfaces as InvalidArgument from the DVFS model (ratio > 1) or as
    // InternalError from the validator; both derive from actg::Error.
    EXPECT_THROW(copy.Validate(), Error);
  }
  {
    Schedule copy = schedule_;
    // Below the PE floor (0.2 in the example platform).
    copy.placement(ex_.tau(4)).speed_ratio = 0.05;
    EXPECT_THROW(copy.Validate(), InternalError);
  }
}

TEST_F(ScheduleFixture, InjectNonMutexOverlapRejected) {
  // Find two non-mutex tasks on one PE and force them to overlap.
  for (TaskId a : ex_.graph.TaskIds()) {
    for (TaskId b : ex_.graph.TaskIds()) {
      if (!(a < b)) continue;
      if (schedule_.placement(a).pe != schedule_.placement(b).pe) continue;
      if (analysis_.MutuallyExclusive(a, b)) continue;
      Schedule copy = schedule_;
      auto& pb = copy.placement(b);
      pb.start_ms = copy.placement(a).start_ms;
      pb.finish_ms = pb.start_ms + copy.ScaledWcet(b);
      // Overlap alone may also violate precedence; either way Validate
      // must throw.
      EXPECT_THROW(copy.Validate(), InternalError);
      return;
    }
  }
  GTEST_SKIP() << "no same-PE non-mutex pair in this schedule";
}

TEST_F(ScheduleFixture, RecomputeTimesRepairsShiftedSpeeds) {
  // Slow one task down and recompute: downstream tasks shift, the result
  // validates, and the makespan grows by at least the extension on the
  // critical path.
  const TaskId t1 = ex_.tau(1);
  schedule_.placement(t1).speed_ratio = 0.5;
  schedule_.RecomputeTimes();
  EXPECT_NO_THROW(schedule_.Validate());
  EXPECT_DOUBLE_EQ(schedule_.placement(t1).finish_ms,
                   2.0 * ex_.platform.Wcet(t1, schedule_.placement(t1).pe));
}

TEST_F(ScheduleFixture, PseudoEdgeEndpointsValidated) {
  EXPECT_THROW(schedule_.AddPseudoEdge(ex_.tau(1), ex_.tau(1)),
               InvalidArgument);
  EXPECT_THROW(schedule_.AddPseudoEdge(TaskId{}, ex_.tau(1)),
               InvalidArgument);
}

TEST_F(ScheduleFixture, DagAdjacencyCoversAllEdgeKinds) {
  const auto adj = schedule_.BuildDagAdjacency();
  std::size_t with_edge_id = 0, without = 0;
  for (const auto& out : adj) {
    for (const auto& [dst, eid] : out) {
      if (eid.has_value()) {
        ++with_edge_id;
      } else {
        ++without;
      }
    }
  }
  EXPECT_EQ(with_edge_id, ex_.graph.edge_count());
  EXPECT_EQ(without, schedule_.pseudo_edges().size() +
                         schedule_.control_edges().size());
}

TEST_F(ScheduleFixture, MismatchedPlatformRejected) {
  arch::PlatformBuilder pb(3, 1);  // wrong task count
  for (int t = 0; t < 3; ++t) {
    pb.SetTaskCost(TaskId{t}, PeId{0}, 1.0, 1.0);
  }
  const arch::Platform wrong = std::move(pb).Build();
  EXPECT_THROW(Schedule(ex_.graph, analysis_, wrong), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Packaged pipelines (dvfs/algorithms.h)

class AlgorithmsFixture : public ::testing::TestWithParam<int> {};

TEST_P(AlgorithmsFixture, AllThreePipelinesAreValidAndDeterministic) {
  tgff::RandomCtgParams params;
  params.task_count = 18;
  params.fork_count = 2;
  params.pe_count = 3;
  params.seed = static_cast<std::uint64_t>(GetParam());
  tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
  apps::AssignDeadline(rc.graph, rc.platform, 1.3);
  const ctg::ActivationAnalysis analysis(rc.graph);
  const auto probs = apps::UniformProbabilities(rc.graph);

  const auto online1 =
      dvfs::RunOnlineAlgorithm(rc.graph, analysis, rc.platform, probs);
  const auto online2 =
      dvfs::RunOnlineAlgorithm(rc.graph, analysis, rc.platform, probs);
  const auto ref1 =
      dvfs::RunReference1(rc.graph, analysis, rc.platform, probs);
  const auto ref2 =
      dvfs::RunReference2(rc.graph, analysis, rc.platform, probs);

  for (const Schedule* s : {&online1, &ref1, &ref2}) {
    s->Validate();
    EXPECT_LE(sim::MaxScenarioMakespan(*s),
              rc.graph.deadline_ms() + 1e-6);
  }
  EXPECT_DOUBLE_EQ(sim::ExpectedEnergy(online1, probs),
                   sim::ExpectedEnergy(online2, probs));
  // Reference 1 runs on the fixed round-robin mapping.
  const auto mapping = RoundRobinMapping(rc.graph, rc.platform);
  for (TaskId t : rc.graph.TaskIds()) {
    EXPECT_EQ(ref1.placement(t).pe, mapping[t.index()]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmsFixture, ::testing::Range(1, 6));

}  // namespace
}  // namespace actg::sched
