#include <gtest/gtest.h>

#include <cmath>

#include "arch/platform.h"
#include "util/error.h"

namespace actg::arch {
namespace {

Platform MakeTwoPe() {
  PlatformBuilder b(3, 2, /*bandwidth=*/10.0, /*tx_energy=*/0.5);
  b.SetTaskCost(TaskId{0}, PeId{0}, 10.0, 20.0);
  b.SetTaskCost(TaskId{0}, PeId{1}, 14.0, 18.0);
  b.SetTaskCost(TaskId{1}, PeId{0}, 6.0, 9.0);
  b.SetTaskCost(TaskId{1}, PeId{1}, 6.0, 7.0);
  b.SetTaskCost(TaskId{2}, PeId{0}, 8.0, 8.0);
  b.SetTaskCost(TaskId{2}, PeId{1}, 4.0, 6.0);
  b.SetMinSpeedRatio(PeId{0}, 0.25);
  return std::move(b).Build();
}

TEST(Platform, BasicAccessors) {
  const Platform p = MakeTwoPe();
  EXPECT_EQ(p.pe_count(), 2u);
  EXPECT_EQ(p.task_count(), 3u);
  EXPECT_DOUBLE_EQ(p.Wcet(TaskId{0}, PeId{1}), 14.0);
  EXPECT_DOUBLE_EQ(p.Energy(TaskId{2}, PeId{0}), 8.0);
  EXPECT_DOUBLE_EQ(p.pe(PeId{0}).min_speed_ratio, 0.25);
  EXPECT_DOUBLE_EQ(p.pe(PeId{1}).min_speed_ratio, 0.1);  // default
  EXPECT_EQ(p.pe(PeId{0}).name, "PE0");
}

TEST(Platform, AverageWcetIsPeMean) {
  const Platform p = MakeTwoPe();
  EXPECT_DOUBLE_EQ(p.AverageWcet(TaskId{0}), 12.0);
  EXPECT_DOUBLE_EQ(p.AverageWcet(TaskId{2}), 6.0);
}

TEST(Platform, IntraPeCommunicationIsFree) {
  const Platform p = MakeTwoPe();
  EXPECT_DOUBLE_EQ(p.CommTime(100.0, PeId{0}, PeId{0}), 0.0);
  EXPECT_DOUBLE_EQ(p.CommEnergy(100.0, PeId{1}, PeId{1}), 0.0);
}

TEST(Platform, InterPeCommunicationScalesWithVolume) {
  const Platform p = MakeTwoPe();
  EXPECT_DOUBLE_EQ(p.CommTime(50.0, PeId{0}, PeId{1}), 5.0);
  EXPECT_DOUBLE_EQ(p.CommEnergy(50.0, PeId{0}, PeId{1}), 25.0);
  EXPECT_DOUBLE_EQ(p.CommTime(0.0, PeId{0}, PeId{1}), 0.0);
}

TEST(Platform, SetLinkIsSymmetric) {
  PlatformBuilder b(1, 3);
  b.SetTaskCost(TaskId{0}, PeId{0}, 1.0, 1.0);
  b.SetTaskCost(TaskId{0}, PeId{1}, 1.0, 1.0);
  b.SetTaskCost(TaskId{0}, PeId{2}, 1.0, 1.0);
  b.SetLink(PeId{0}, PeId{2}, 25.0, 0.2);
  const Platform p = std::move(b).Build();
  EXPECT_DOUBLE_EQ(p.Bandwidth(PeId{0}, PeId{2}), 25.0);
  EXPECT_DOUBLE_EQ(p.Bandwidth(PeId{2}, PeId{0}), 25.0);
  EXPECT_DOUBLE_EQ(p.TxEnergyPerKb(PeId{2}, PeId{0}), 0.2);
  EXPECT_DOUBLE_EQ(p.Bandwidth(PeId{0}, PeId{1}), 100.0);  // default
}

TEST(PlatformBuilder, MissingCostRejectedAtBuild) {
  PlatformBuilder b(2, 1);
  b.SetTaskCost(TaskId{0}, PeId{0}, 1.0, 1.0);
  EXPECT_THROW(std::move(b).Build(), InvalidArgument);
}

TEST(PlatformBuilder, InvalidInputsRejected) {
  EXPECT_THROW(PlatformBuilder(0, 1), InvalidArgument);
  EXPECT_THROW(PlatformBuilder(1, 0), InvalidArgument);
  PlatformBuilder b(1, 2);
  EXPECT_THROW(b.SetTaskCost(TaskId{0}, PeId{0}, 0.0, 1.0),
               InvalidArgument);
  EXPECT_THROW(b.SetTaskCost(TaskId{0}, PeId{0}, 1.0, -1.0),
               InvalidArgument);
  EXPECT_THROW(b.SetTaskCost(TaskId{5}, PeId{0}, 1.0, 1.0),
               InvalidArgument);
  EXPECT_THROW(b.SetMinSpeedRatio(PeId{0}, 0.0), InvalidArgument);
  EXPECT_THROW(b.SetMinSpeedRatio(PeId{0}, 1.5), InvalidArgument);
  EXPECT_THROW(b.SetLink(PeId{0}, PeId{0}, 1.0, 0.1), InvalidArgument);
}

// ---------------------------------------------------------------------------
// DVFS model: E ∝ σ², t ∝ 1/σ (paper Section IV energy model).

TEST(DvfsModel, ScalingLaws) {
  EXPECT_DOUBLE_EQ(dvfs_model::ScaledTime(10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(dvfs_model::ScaledTime(10.0, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(dvfs_model::ScaledEnergy(40.0, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(dvfs_model::ScaledEnergy(40.0, 0.5), 10.0);
}

TEST(DvfsModel, EnergyTimesTimeInvariant) {
  // E(σ)·t(σ) = E0·t0·σ: halving speed quarters energy, doubles time.
  const double e0 = 30.0, t0 = 12.0;
  for (double sigma : {1.0, 0.8, 0.5, 0.2}) {
    const double e = dvfs_model::ScaledEnergy(e0, sigma);
    const double t = dvfs_model::ScaledTime(t0, sigma);
    EXPECT_NEAR(e * t, e0 * t0 * sigma, 1e-9);
  }
}

TEST(DvfsModel, SpeedForAllottedClampsCorrectly) {
  EXPECT_DOUBLE_EQ(dvfs_model::SpeedForAllotted(10.0, 5.0, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(dvfs_model::SpeedForAllotted(10.0, 10.0, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(dvfs_model::SpeedForAllotted(10.0, 20.0, 0.1), 0.5);
  EXPECT_DOUBLE_EQ(dvfs_model::SpeedForAllotted(10.0, 1000.0, 0.2), 0.2);
}

TEST(DvfsModel, RejectsBadArguments) {
  EXPECT_THROW(dvfs_model::ScaledTime(1.0, 0.0), InvalidArgument);
  EXPECT_THROW(dvfs_model::ScaledTime(1.0, 1.5), InvalidArgument);
  EXPECT_THROW(dvfs_model::ScaledEnergy(1.0, -0.1), InvalidArgument);
  EXPECT_THROW(dvfs_model::SpeedForAllotted(0.0, 1.0, 0.1),
               InvalidArgument);
}

}  // namespace
}  // namespace actg::arch
