/// \file test_condition_bitset.cpp
/// Differential tests of the bitset condition algebra against the DNF
/// algebra and against brute-force ground truth (full enumeration of
/// the assignment space). The bitset layer only ever answers
/// form-independent predicates — evaluation, satisfiability,
/// compatibility — so those must agree with the DNF algebra on every
/// input; the randomized sweep below checks ~10k seeded cases.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "ctg/activation.h"
#include "ctg/condition.h"
#include "ctg/condition_bitset.h"
#include "ctg/graph.h"
#include "runtime/metrics.h"

namespace actg::ctg {
namespace {

/// Small random universe: forks TaskId{0..n-1} with arities 2..4, so
/// the full assignment space stays enumerable (<= 256 assignments).
struct Universe {
  std::vector<TaskId> forks;
  std::vector<int> arities;
  ConditionSpace space;

  Universe(std::mt19937_64& rng) {
    std::uniform_int_distribution<int> fork_count(1, 4);
    std::uniform_int_distribution<int> arity(2, 4);
    const int n = fork_count(rng);
    for (int i = 0; i < n; ++i) {
      forks.push_back(TaskId{static_cast<std::size_t>(i)});
      arities.push_back(arity(rng));
    }
    space = ConditionSpace(forks, arities);
  }

  Guard::ForkArity ArityFn() const {
    return [this](TaskId fork) {
      return fork.index() < arities.size()
                 ? arities[fork.index()]
                 : 0;
    };
  }

  /// All full branch assignments of the universe.
  std::vector<BranchAssignment> AllAssignments() const {
    std::vector<BranchAssignment> all;
    std::vector<int> pick(forks.size(), 0);
    for (;;) {
      BranchAssignment a(forks.size());
      for (std::size_t f = 0; f < forks.size(); ++f) {
        a.Set(forks[f], pick[f]);
      }
      all.push_back(std::move(a));
      std::size_t f = 0;
      for (; f < forks.size(); ++f) {
        if (++pick[f] < arities[f]) break;
        pick[f] = 0;
      }
      if (f == forks.size()) break;
    }
    return all;
  }

  Minterm RandomMinterm(std::mt19937_64& rng) const {
    std::vector<Condition> conditions;
    for (std::size_t f = 0; f < forks.size(); ++f) {
      if (std::uniform_int_distribution<int>(0, 2)(rng) == 0) continue;
      const int outcome =
          std::uniform_int_distribution<int>(0, arities[f] - 1)(rng);
      conditions.push_back(Condition{forks[f], outcome});
    }
    return *Minterm::FromConditions(std::move(conditions));
  }

  Guard RandomGuard(std::mt19937_64& rng) const {
    Guard g;
    const int terms = std::uniform_int_distribution<int>(0, 3)(rng);
    for (int t = 0; t < terms; ++t) {
      g = g.Or(Guard::Of(RandomMinterm(rng)), ArityFn());
    }
    return g;
  }
};

BitMinterm EncodeM(const ConditionSpace& space, const Minterm& m) {
  BitMinterm out;
  EXPECT_TRUE(space.Encode(m, out));
  return out;
}

BitGuard EncodeG(const ConditionSpace& space, const Guard& g) {
  BitGuard out;
  EXPECT_TRUE(space.Encode(g, out));
  return out;
}

/// Evaluates a bit guard under a full assignment: with every fork
/// constrained, "compatible" collapses to "holds".
bool EvalBit(const ConditionSpace& space, const BitGuard& g,
             const BranchAssignment& a) {
  BitMinterm full;
  EXPECT_TRUE(space.EncodeAssignment(a, full));
  return g.CompatibleWith(full);
}

TEST(BitsetDifferential, MintermOpsMatchDnfAcross10kCases) {
  std::mt19937_64 rng(20240807);
  for (int iter = 0; iter < 10000; ++iter) {
    const Universe u(rng);
    ASSERT_TRUE(u.space.valid());
    const Minterm m1 = u.RandomMinterm(rng);
    const Minterm m2 = u.RandomMinterm(rng);
    const BitMinterm b1 = EncodeM(u.space, m1);
    const BitMinterm b2 = EncodeM(u.space, m2);

    EXPECT_EQ(b1.CompatibleWith(b2), m1.CompatibleWith(m2));
    EXPECT_EQ(b1.Implies(b2), m1.Implies(m2));
    EXPECT_EQ(b2.Implies(b1), m2.Implies(m1));
    EXPECT_EQ(b1.IsTrue(), m1.IsTrue());

    if (m1.CompatibleWith(m2)) {
      BitMinterm conjoined = b1;
      conjoined.ConjoinWith(b2);
      EXPECT_EQ(conjoined, EncodeM(u.space, *m1.Conjoin(m2)));
    }
  }
}

TEST(BitsetDifferential, GuardPredicatesMatchDnfAndGroundTruth) {
  std::mt19937_64 rng(424242);
  for (int iter = 0; iter < 2000; ++iter) {
    const Universe u(rng);
    const auto arity = u.ArityFn();
    const auto assignments = u.AllAssignments();
    const Guard g1 = u.RandomGuard(rng);
    const Guard g2 = u.RandomGuard(rng);
    const Minterm m = u.RandomMinterm(rng);
    const BitGuard bg1 = EncodeG(u.space, g1);
    const BitGuard bg2 = EncodeG(u.space, g2);
    const BitMinterm bm = EncodeM(u.space, m);

    // Point-wise evaluation must agree everywhere.
    bool any1 = false, any2 = false, both = false, with_m = false;
    bool implies_semantically = true;
    for (const BranchAssignment& a : assignments) {
      const bool e1 = g1.Evaluate(a);
      const bool e2 = g2.Evaluate(a);
      EXPECT_EQ(EvalBit(u.space, bg1, a), e1);
      EXPECT_EQ(EvalBit(u.space, bg2, a), e2);
      any1 |= e1;
      any2 |= e2;
      both |= e1 && e2;
      with_m |= e1 && m.Evaluate(a);
      implies_semantically &= !e1 || e2;
    }

    // Emptiness == unsatisfiability (both representations drop
    // contradictory minterms).
    EXPECT_EQ(bg1.IsFalse(), !any1);
    EXPECT_EQ(g1.IsFalse(), !any1);

    // Compatibility == joint satisfiability.
    EXPECT_EQ(bg1.CompatibleWith(bg2), both);
    EXPECT_EQ(g1.CompatibleWith(g2), both);
    EXPECT_EQ(bg1.CompatibleWith(bm), with_m);
    EXPECT_EQ(g1.CompatibleWith(m), with_m);

    // Syntactic implication is sound in both representations.
    if (bg1.Implies(bg2)) EXPECT_TRUE(implies_semantically);
    if (g1.Implies(g2)) EXPECT_TRUE(implies_semantically);

    // Conjunction and disjunction, rebuilt both ways, must evaluate
    // identically to the DNF results.
    BitGuard band = bg1;
    BitGuard scratch;
    band.AndWith(bg2, scratch);
    BitGuard bor = bg1;
    bor.OrWith(bg2);
    BitGuard bandm = bg1;
    bandm.AndWithMinterm(bm);
    const Guard gand = g1.And(g2, arity);
    const Guard gor = g1.Or(g2, arity);
    for (const BranchAssignment& a : assignments) {
      const bool e1 = g1.Evaluate(a);
      EXPECT_EQ(EvalBit(u.space, band, a), gand.Evaluate(a));
      EXPECT_EQ(EvalBit(u.space, band, a), e1 && g2.Evaluate(a));
      EXPECT_EQ(EvalBit(u.space, bor, a), gor.Evaluate(a));
      EXPECT_EQ(EvalBit(u.space, bandm, a), e1 && m.Evaluate(a));
    }
  }
}

TEST(ConditionSpace, SingleOverwideForkFallsBackToDnf) {
  // One fork with more outcomes than the packed width can hold: the
  // space must report invalid (a defined fallback, never UB) and every
  // encode must fail.
  const std::vector<TaskId> forks{TaskId{0}};
  const std::vector<int> arities{
      static_cast<int>(ConditionSpace::kMaxBits) + 44};
  const ConditionSpace space(forks, arities);
  EXPECT_FALSE(space.valid());
  EXPECT_EQ(space.bit_count(), 0u);
  BitMinterm out;
  EXPECT_FALSE(space.Encode(Condition{TaskId{0}, 0}, out));
}

TEST(ConditionSpace, PackedWidthOverflowFallsBackToDnf) {
  // Five 64-outcome forks need 320 bits > kMaxBits == 256.
  std::vector<TaskId> forks;
  std::vector<int> arities;
  for (std::size_t f = 0; f < 5; ++f) {
    forks.push_back(TaskId{f});
    arities.push_back(64);
  }
  EXPECT_FALSE(ConditionSpace(forks, arities).valid());

  // Four of them exactly fill the words: still representable.
  forks.pop_back();
  arities.pop_back();
  const ConditionSpace fits(forks, arities);
  EXPECT_TRUE(fits.valid());
  EXPECT_EQ(fits.bit_count(), ConditionSpace::kMaxBits);
  BitMinterm out;
  EXPECT_TRUE(fits.Encode(Condition{TaskId{3}, 63}, out));
  EXPECT_EQ(out.bits[3], 1ull << 63);
}

TEST(ConditionSpace, ActivationAnalysisFallbackCountsMetric) {
  // End-to-end: a graph whose forks exceed the packed width must make
  // ActivationAnalysis retire its bitset layer, bump the
  // "guard.dnf_fallbacks" counter and still answer every query through
  // the DNF algebra.
  CtgBuilder builder;
  const TaskId source = builder.AddTask("src");
  TaskId prev = source;
  constexpr int kForks = 3;
  constexpr int kOutcomes = 100;  // 3 * 100 = 300 bits > 256
  std::vector<TaskId> first_branches;  // branch 0 and 1 of each fork
  std::vector<TaskId> second_branches;
  for (int f = 0; f < kForks; ++f) {
    const TaskId fork = builder.AddOrTask("fork" + std::to_string(f));
    builder.AddEdge(prev, fork);
    const TaskId join = builder.AddOrTask("join" + std::to_string(f));
    for (int o = 0; o < kOutcomes; ++o) {
      const TaskId branch = builder.AddTask(
          "b" + std::to_string(f) + "_" + std::to_string(o));
      builder.AddConditionalEdge(fork, branch, o);
      builder.AddEdge(branch, join);
      if (o == 0) first_branches.push_back(branch);
      if (o == 1) second_branches.push_back(branch);
    }
    prev = join;
  }
  builder.SetDeadline(1000.0);
  const Ctg graph = std::move(builder).Build();

  const std::uint64_t before =
      runtime::Metrics::Global().counter("guard.dnf_fallbacks");
  const ActivationAnalysis analysis(graph);
  EXPECT_GT(runtime::Metrics::Global().counter("guard.dnf_fallbacks"),
            before);
  EXPECT_FALSE(analysis.space().valid());

  // The DNF algebra still answers every query: two branches of one
  // fork are mutually exclusive, branches of different forks are not.
  EXPECT_TRUE(
      analysis.MutuallyExclusive(first_branches[0], second_branches[0]));
  EXPECT_FALSE(
      analysis.MutuallyExclusive(first_branches[0], first_branches[1]));
}

}  // namespace
}  // namespace actg::ctg
