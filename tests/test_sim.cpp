#include <gtest/gtest.h>

#include <memory>

#include "apps/common.h"
#include "apps/fig1_example.h"
#include "check/validator.h"
#include "dvfs/stretch.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "tgff/random_ctg.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace actg::sim {
namespace {

class Fig1Sim : public ::testing::Test {
 protected:
  Fig1Sim()
      : ex_(apps::MakeFig1Example()),
        analysis_(ex_.graph),
        schedule_(sched::RunDls(ex_.graph, analysis_, ex_.platform,
                                ex_.probs)) {}

  ctg::BranchAssignment Assign(int a, int b) const {
    ctg::BranchAssignment asg(ex_.graph.task_count());
    if (a >= 0) asg.Set(ex_.tau(3), a);
    if (b >= 0) asg.Set(ex_.tau(5), b);
    return asg;
  }

  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
  sched::Schedule schedule_;
};

TEST_F(Fig1Sim, ActiveSetsPerScenario) {
  // a1: τ1,τ2,τ3,τ4,τ8 active (5 tasks).
  EXPECT_EQ(ExecuteInstance(schedule_, Assign(0, -1)).active_tasks, 5u);
  // a2b1: τ1,τ2,τ3,τ5,τ6,τ8 (6 tasks).
  EXPECT_EQ(ExecuteInstance(schedule_, Assign(1, 0)).active_tasks, 6u);
  // a2b2: τ1,τ2,τ3,τ5,τ7,τ8 (6 tasks).
  EXPECT_EQ(ExecuteInstance(schedule_, Assign(1, 1)).active_tasks, 6u);
}

TEST_F(Fig1Sim, EnergySumsActiveTasksOnly) {
  const InstanceResult a1 = ExecuteInstance(schedule_, Assign(0, -1));
  // Recompute by hand: active tasks 1,2,3,4,8 plus taken edges.
  double expected = 0.0;
  for (int i : {1, 2, 3, 4, 8}) {
    expected += schedule_.ScaledEnergy(ex_.tau(i));
  }
  for (EdgeId eid : ex_.graph.EdgeIds()) {
    const ctg::Edge& e = ex_.graph.edge(eid);
    const bool src_active =
        e.src == ex_.tau(5) || e.src == ex_.tau(6) || e.src == ex_.tau(7)
            ? false
            : true;
    const bool taken =
        !e.condition.has_value() || e.condition->outcome == 0;
    const bool dst_active = e.dst != ex_.tau(5) && e.dst != ex_.tau(6) &&
                            e.dst != ex_.tau(7);
    if (src_active && dst_active && taken) {
      expected += schedule_.EdgeCommEnergy(eid);
    }
  }
  EXPECT_NEAR(a1.energy_mj, expected, 1e-9);
}

TEST_F(Fig1Sim, MakespanNeverExceedsStaticWorstCase) {
  check::Validate(schedule_);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const InstanceResult r = ExecuteInstance(schedule_, Assign(a, b));
      check::ValidateInstance(schedule_, Assign(a, b), r);
      EXPECT_LE(r.makespan_ms, schedule_.Makespan() + 1e-6);
      EXPECT_GT(r.makespan_ms, 0.0);
    }
  }
}

TEST_F(Fig1Sim, OrNodeWaitsForForkAtRuntime) {
  // Under a1-false, τ8 still cannot start before τ3 resolves: its start
  // is >= τ3's finish, so the makespan reflects the control edge.
  const InstanceResult r = ExecuteInstance(schedule_, Assign(1, 0));
  EXPECT_GE(r.makespan_ms,
            schedule_.placement(ex_.tau(3)).finish_ms - 1e-9);
}

TEST_F(Fig1Sim, DeadlineFlagHonorsGraphDeadline) {
  const InstanceResult r = ExecuteInstance(schedule_, Assign(0, -1));
  EXPECT_TRUE(r.deadline_met);
}

TEST_F(Fig1Sim, ExpectedEnergyMatchesScenarioMixture) {
  // E[energy] must equal Σ_scenario P(scenario)·energy(scenario).
  const double expected = ExpectedEnergy(schedule_, ex_.probs);
  double mixture = 0.0;
  for (const ctg::Scenario& s : analysis_.EnumerateScenarios(ex_.probs)) {
    const auto assignment =
        AssignmentFromScenario(ex_.graph, s.assignment);
    mixture +=
        s.probability * ExecuteInstance(schedule_, assignment).energy_mj;
  }
  EXPECT_NEAR(expected, mixture, 1e-9);
}

TEST_F(Fig1Sim, ExpectedEnergyMatchesMonteCarlo) {
  util::Random rng(77);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int a = rng.Bernoulli(0.6) ? 1 : 0;   // prob(a1)=0.4
    const int b = rng.Bernoulli(0.5) ? 1 : 0;
    total += ExecuteInstance(schedule_, Assign(a, b)).energy_mj;
  }
  const double mc = total / n;
  const double analytic = ExpectedEnergy(schedule_, ex_.probs);
  EXPECT_NEAR(mc, analytic, analytic * 0.02);
}

TEST_F(Fig1Sim, ComputeEnergyExcludesCommunication) {
  EXPECT_LT(ExpectedComputeEnergy(schedule_, ex_.probs),
            ExpectedEnergy(schedule_, ex_.probs));
}

TEST_F(Fig1Sim, ScenarioEnergyOrderingMatchesGuards) {
  // The a1 scenario runs fewer/cheaper tasks than a2b2 in this example.
  const ctg::Minterm a1(ctg::Condition{ex_.tau(3), 0});
  const auto a2b2 = *ctg::Minterm(ctg::Condition{ex_.tau(3), 1})
                         .Conjoin(ctg::Minterm(ctg::Condition{ex_.tau(5), 1}));
  const double e_a1 = ScenarioEnergy(schedule_, a1);
  const double e_a2b2 = ScenarioEnergy(schedule_, a2b2);
  EXPECT_GT(e_a1, 0.0);
  EXPECT_GT(e_a2b2, 0.0);
  EXPECT_NE(e_a1, e_a2b2);
}

TEST_F(Fig1Sim, ScenarioEnergyMatchesInstanceExecution) {
  for (const ctg::Minterm& scenario :
       analysis_.EnumerateScenarioAssignments()) {
    const auto assignment = AssignmentFromScenario(ex_.graph, scenario);
    EXPECT_NEAR(ScenarioEnergy(schedule_, scenario),
                ExecuteInstance(schedule_, assignment).energy_mj, 1e-9);
  }
}

TEST_F(Fig1Sim, StretchingLowersInstanceEnergyEverywhere) {
  sched::Schedule stretched =
      sched::RunDls(ex_.graph, analysis_, ex_.platform, ex_.probs);
  dvfs::StretchOnline(stretched, ex_.probs);
  for (const ctg::Minterm& scenario :
       analysis_.EnumerateScenarioAssignments()) {
    const auto assignment = AssignmentFromScenario(ex_.graph, scenario);
    EXPECT_LE(ExecuteInstance(stretched, assignment).energy_mj,
              ExecuteInstance(schedule_, assignment).energy_mj + 1e-9);
  }
}

TEST_F(Fig1Sim, RunTraceAggregates) {
  trace::BranchTrace trace(ex_.graph.task_count());
  trace.Append(Assign(0, -1));
  trace.Append(Assign(1, 0));
  trace.Append(Assign(1, 1));
  const RunSummary summary = RunTrace(schedule_, trace);
  EXPECT_EQ(summary.instances, 3u);
  EXPECT_EQ(summary.deadline_misses, 0u);
  const double expected =
      ExecuteInstance(schedule_, Assign(0, -1)).energy_mj +
      ExecuteInstance(schedule_, Assign(1, 0)).energy_mj +
      ExecuteInstance(schedule_, Assign(1, 1)).energy_mj;
  EXPECT_NEAR(summary.total_energy_mj, expected, 1e-9);
  EXPECT_NEAR(summary.AverageEnergy(), expected / 3.0, 1e-9);
}

TEST_F(Fig1Sim, MaxScenarioMakespanBoundsEveryInstance) {
  const double worst = MaxScenarioMakespan(schedule_);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      EXPECT_LE(ExecuteInstance(schedule_, Assign(a, b)).makespan_ms,
                worst + 1e-9);
    }
  }
  EXPECT_LE(worst, schedule_.Makespan() + 1e-6);
}

TEST(SimSweep, ExpectedEnergyMatchesScenarioMixtureOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (auto category :
         {tgff::Category::kForkJoin, tgff::Category::kFlat}) {
      tgff::RandomCtgParams params;
      params.task_count = 18;
      params.fork_count = 2;
      params.category = category;
      params.seed = seed;
      tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
      apps::AssignDeadline(rc.graph, rc.platform, 1.4);
      const ctg::ActivationAnalysis analysis(rc.graph);
      ctg::BranchProbabilities probs(rc.graph.task_count());
      util::Random rng(seed);
      for (TaskId f : rc.graph.ForkIds()) {
        const double p = rng.Uniform(0.1, 0.9);
        probs.Set(f, {p, 1.0 - p});
      }
      sched::Schedule s =
          sched::RunDls(rc.graph, analysis, rc.platform, probs);
      dvfs::StretchOnline(s, probs);
      check::Validate(s);
      double mixture = 0.0;
      for (const ctg::Scenario& sc : analysis.EnumerateScenarios(probs)) {
        const auto assignment =
            AssignmentFromScenario(rc.graph, sc.assignment);
        const InstanceResult r = ExecuteInstance(s, assignment);
        check::ValidateInstance(s, assignment, r);
        mixture += sc.probability * r.energy_mj;
      }
      EXPECT_NEAR(ExpectedEnergy(s, probs), mixture, 1e-6);
    }
  }
}

}  // namespace
}  // namespace actg::sim
