#include <gtest/gtest.h>

#include <sstream>

#include "apps/common.h"
#include "apps/fig1_example.h"
#include "ctg/activation.h"
#include "sched/dls.h"
#include "sched/gantt.h"
#include "util/error.h"

namespace actg::sched {
namespace {

TEST(Gantt, RendersEveryPeAndTask) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  const Schedule s = RunDls(ex.graph, analysis, ex.platform, ex.probs);
  std::ostringstream os;
  WriteGantt(os, s);
  const std::string out = os.str();
  EXPECT_NE(out.find("PE0"), std::string::npos);
  EXPECT_NE(out.find("PE1"), std::string::npos);
  // Task names appear (possibly truncated to their bar width, so check
  // the short common prefix).
  EXPECT_NE(out.find("tau"), std::string::npos);
  EXPECT_NE(out.find('='), std::string::npos);
}

TEST(Gantt, DeterministicOutput) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  const Schedule s = RunDls(ex.graph, analysis, ex.platform, ex.probs);
  std::ostringstream a, b;
  WriteGantt(a, s);
  WriteGantt(b, s);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Gantt, OverlapRowsOnlyWithMutexTasks) {
  // On a single-PE platform, mutually exclusive branch tasks overlap and
  // must spill into an extra sub-row.
  const apps::Fig1Example ex = apps::MakeFig1Example();
  arch::PlatformBuilder pb(ex.graph.task_count(), 1);
  for (TaskId t : ex.graph.TaskIds()) {
    pb.SetTaskCost(t, PeId{0}, ex.platform.Wcet(t, PeId{0}),
                   ex.platform.Energy(t, PeId{0}));
  }
  const arch::Platform single = std::move(pb).Build();
  const ctg::ActivationAnalysis analysis(ex.graph);
  const Schedule s = RunDls(ex.graph, analysis, single, ex.probs);
  std::ostringstream expanded;
  WriteGantt(expanded, s, GanttOptions{72, true});
  // At least one continuation row (starts with spaces then '|').
  EXPECT_NE(expanded.str().find("       |"), std::string::npos);
}

TEST(Gantt, WidthValidation) {
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  const Schedule s = RunDls(ex.graph, analysis, ex.platform, ex.probs);
  std::ostringstream os;
  EXPECT_THROW(WriteGantt(os, s, GanttOptions{4, true}), InvalidArgument);
}

}  // namespace
}  // namespace actg::sched
