#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "adaptive/controller.h"
#include "apps/fig1_example.h"
#include "ctg/activation.h"
#include "dvfs/stretch.h"
#include "experiments.h"
#include "runtime/fingerprint.h"
#include "runtime/metrics.h"
#include "runtime/pool.h"
#include "runtime/schedule_cache.h"
#include "runtime/watchdog.h"
#include "sched/dls.h"
#include "util/rng.h"

namespace actg::runtime {
namespace {

// ---------------------------------------------------------------- Pool

TEST(Pool, RunsEachIndexExactlyOnce) {
  Pool pool(8);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(Pool, ZeroJobsAndZeroItemsComplete) {
  Pool serial(0);  // clamped to 1: the calling thread participates
  int ran = 0;
  serial.ParallelFor(3, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 3);
  serial.ParallelFor(0, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 3);
}

TEST(Pool, ParallelMapReturnsResultsInIndexOrder) {
  Pool pool(8);
  const std::vector<std::size_t> squares =
      ParallelMap(pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(Pool, NestedParallelForRunsInline) {
  // A body that issues ParallelFor on the same pool must not deadlock
  // (nested batches drain on the issuing thread).
  Pool pool(4);
  std::vector<std::atomic<int>> counts(64);
  pool.ParallelFor(8, [&](std::size_t outer) {
    pool.ParallelFor(8, [&](std::size_t inner) {
      ++counts[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "slot " << i;
  }
}

TEST(Pool, ExceptionPropagatesAndPoolSurvives) {
  Pool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](std::size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must remain usable after a failed batch.
  std::atomic<int> ran = 0;
  pool.ParallelFor(10, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 10);
}

TEST(Pool, ParseJobsFlag) {
  const char* argv1[] = {"bench", "--jobs", "5"};
  EXPECT_EQ(ParseJobs(3, const_cast<char**>(argv1)), 5u);
  const char* argv2[] = {"bench", "--jobs=3"};
  EXPECT_EQ(ParseJobs(2, const_cast<char**>(argv2)), 3u);
  const char* argv3[] = {"bench", "--jobs", "0"};
  EXPECT_EQ(ParseJobs(3, const_cast<char**>(argv3)), HardwareJobs());
  // Garbage values fall back to the default instead of wrapping into a
  // gigantic unsigned thread count.
  const char* argv4[] = {"bench", "--jobs", "-4"};
  EXPECT_EQ(ParseJobs(3, const_cast<char**>(argv4)), DefaultJobs());
  const char* argv5[] = {"bench", "--jobs", "abc"};
  EXPECT_EQ(ParseJobs(3, const_cast<char**>(argv5)), DefaultJobs());
}

// ---------------------------------------------- Deterministic sweeps

/// One seeded Monte-Carlo job: a few hundred draws from a forked
/// substream reduced to a vector of doubles. Depends only on the index.
std::vector<double> SweepJob(const util::Random& base, std::size_t i) {
  util::Random rng = base.Fork(i);
  std::vector<double> out;
  out.reserve(64);
  for (int k = 0; k < 64; ++k) out.push_back(rng.Uniform(-1.0, 1.0));
  return out;
}

TEST(Determinism, ParallelMapIdenticalForAnyWorkerCount) {
  const util::Random base(2024);
  Pool serial(1);
  Pool wide(8);
  const auto a = ParallelMap(
      serial, 128, [&](std::size_t i) { return SweepJob(base, i); });
  const auto b = ParallelMap(
      wide, 128, [&](std::size_t i) { return SweepJob(base, i); });
  // Bitwise equality, not approximate: the contract is bit-identical
  // results regardless of worker count.
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t k = 0; k < a[i].size(); ++k) {
      EXPECT_EQ(a[i][k], b[i][k]) << "job " << i << " draw " << k;
    }
  }
}

TEST(Determinism, Table4StyleSweepIdenticalAcrossWorkerCounts) {
  // A miniature Table-4 sweep (two CTGs, short traces) computed through
  // a 1-worker and an 8-worker pool must agree bit-for-bit, including
  // the nested ParallelMap inside CompareAdaptive.
  std::vector<bench::TestCase> cases = bench::MakeTable45Cases();
  cases.erase(cases.begin() + 2, cases.end());

  auto sweep = [&](Pool& pool) {
    return ParallelMap(pool, cases.size(), [&](std::size_t i) {
      const bench::TestCase& test = cases[i];
      const ctg::ActivationAnalysis analysis(test.rc.graph);
      const trace::BranchTrace vectors = bench::MakeFluctuatingVectors(
          test.rc.graph, 60, 777 + static_cast<std::uint64_t>(i) + 1);
      const ctg::BranchProbabilities profile = bench::BiasedProfile(
          test.rc.graph, analysis, test.rc.platform, /*lowest=*/true);
      bench::ExperimentSpec spec(test.rc.graph, analysis,
                                 test.rc.platform);
      spec.WithProfile(profile).WithWindow(20).WithScheduleCache()
          .WithPool(&pool);
      return bench::CompareAdaptive(spec, vectors);
    });
  };

  Pool serial(1);
  Pool wide(8);
  const auto rows_serial = sweep(serial);
  const auto rows_wide = sweep(wide);
  ASSERT_EQ(rows_serial.size(), rows_wide.size());
  for (std::size_t i = 0; i < rows_serial.size(); ++i) {
    EXPECT_EQ(rows_serial[i].online_energy, rows_wide[i].online_energy);
    EXPECT_EQ(rows_serial[i].adaptive_energy_t05,
              rows_wide[i].adaptive_energy_t05);
    EXPECT_EQ(rows_serial[i].adaptive_energy_t01,
              rows_wide[i].adaptive_energy_t01);
    EXPECT_EQ(rows_serial[i].calls_t05, rows_wide[i].calls_t05);
    EXPECT_EQ(rows_serial[i].calls_t01, rows_wide[i].calls_t01);
  }
}

// ----------------------------------------------------------------- Rng

TEST(RngFork, SameStreamYieldsSameChild) {
  const util::Random base(7);
  util::Random a = base.Fork(11);
  util::Random b = base.Fork(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.engine().Next(), b.engine().Next());
  }
}

TEST(RngFork, DoesNotAdvanceParent) {
  util::Random a(7);
  util::Random b(7);
  (void)a.Fork(1);
  (void)a.Fork(2);
  EXPECT_EQ(a.engine().Next(), b.engine().Next());
}

TEST(RngFork, SubstreamsAreNonOverlapping) {
  // 4096 draws from the parent and from each of 8 children must be
  // pairwise disjoint 64-bit sets (a collision among ~37k draws from a
  // 2^64 output space would be astronomically unlikely unless two
  // streams actually coincide or are shifted copies).
  constexpr int kDraws = 4096;
  util::Xoshiro256 parent(123);
  std::vector<std::vector<std::uint64_t>> streams;
  for (std::uint64_t s = 0; s < 8; ++s) {
    util::Xoshiro256 child = parent.Fork(s);
    std::vector<std::uint64_t> draws(kDraws);
    for (auto& d : draws) d = child.Next();
    streams.push_back(std::move(draws));
  }
  std::vector<std::uint64_t> parent_draws(kDraws);
  for (auto& d : parent_draws) d = parent.Next();
  streams.push_back(std::move(parent_draws));

  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  for (const auto& stream : streams) {
    seen.insert(stream.begin(), stream.end());
    total += stream.size();
  }
  EXPECT_EQ(seen.size(), total);
}

// --------------------------------------------------------------- Cache

/// Fixture building real (schedule, stretch) entries from the paper's
/// Fig. 1 example so cached payloads are genuine Schedule objects.
class ScheduleCacheFixture : public ::testing::Test {
 protected:
  ScheduleCacheFixture()
      : ex_(apps::MakeFig1Example()), analysis_(ex_.graph) {}

  ScheduleCacheEntry MakeEntry(const ctg::BranchProbabilities& probs) {
    sched::Schedule schedule =
        sched::RunDls(ex_.graph, analysis_, ex_.platform, probs);
    const dvfs::StretchStats stats = dvfs::StretchOnline(schedule, probs);
    return ScheduleCacheEntry{std::move(schedule), stats};
  }

  ScheduleCacheKey MakeKey(std::vector<double> probs) const {
    ScheduleCacheKey key;
    key.graph_fingerprint = FingerprintCtg(ex_.graph);
    key.platform_fingerprint = FingerprintPlatform(ex_.platform);
    key.config_fingerprint = 1;
    key.probs = std::move(probs);
    return key;
  }

  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
};

TEST_F(ScheduleCacheFixture, HitReturnsExactCachedPair) {
  ScheduleCache cache;
  const ScheduleCacheKey key = MakeKey({0.4, 0.6, 0.3, 0.7});
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  const ScheduleCacheEntry inserted = MakeEntry(ex_.probs);
  cache.Insert(key, inserted);

  const auto hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.hits(), 1u);
  // The cached pair is exactly what was inserted.
  EXPECT_EQ(hit->schedule.Makespan(), inserted.schedule.Makespan());
  for (TaskId task : ex_.graph.TaskIds()) {
    EXPECT_EQ(hit->schedule.placement(task).pe.value,
              inserted.schedule.placement(task).pe.value);
    EXPECT_EQ(hit->schedule.placement(task).speed_ratio,
              inserted.schedule.placement(task).speed_ratio);
  }
  EXPECT_EQ(hit->stretch.path_count, inserted.stretch.path_count);
  EXPECT_EQ(hit->stretch.total_extension_ms,
            inserted.stretch.total_extension_ms);
  EXPECT_EQ(hit->stretch.max_path_delay_ms,
            inserted.stretch.max_path_delay_ms);
}

TEST_F(ScheduleCacheFixture, NearIdenticalProbabilitiesDoNotHit) {
  // Quantization only buckets the hash; equality is exact, so a
  // probability vector differing in the last bit must miss even though
  // it lands in the same hash bucket.
  ScheduleCache cache;
  const ScheduleCacheKey key = MakeKey({0.4, 0.6});
  cache.Insert(key, MakeEntry(ex_.probs));

  ScheduleCacheKey near = key;
  near.probs[0] = std::nextafter(near.probs[0], 1.0);
  EXPECT_FALSE(cache.Lookup(near).has_value());
  EXPECT_TRUE(cache.Lookup(key).has_value());
}

TEST_F(ScheduleCacheFixture, RespectsLruCapacity) {
  ScheduleCacheOptions options;
  options.capacity = 2;
  ScheduleCache cache(options);
  const ScheduleCacheEntry entry = MakeEntry(ex_.probs);

  const ScheduleCacheKey k1 = MakeKey({0.1});
  const ScheduleCacheKey k2 = MakeKey({0.2});
  const ScheduleCacheKey k3 = MakeKey({0.3});
  cache.Insert(k1, entry);
  cache.Insert(k2, entry);
  EXPECT_EQ(cache.size(), 2u);

  // Touch k1 so k2 becomes least recently used, then overflow.
  EXPECT_TRUE(cache.Lookup(k1).has_value());
  cache.Insert(k3, entry);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup(k1).has_value());
  EXPECT_FALSE(cache.Lookup(k2).has_value());
  EXPECT_TRUE(cache.Lookup(k3).has_value());
}

TEST_F(ScheduleCacheFixture, ConcurrentLookupsAndInsertsAreSafe) {
  // Exercised under TSan in CI: threads sharing one cache.
  ScheduleCacheOptions options;
  options.capacity = 8;
  ScheduleCache cache(options);
  const ScheduleCacheEntry entry = MakeEntry(ex_.probs);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const ScheduleCacheKey key =
            MakeKey({static_cast<double>((t + i) % 12) / 12.0});
        if (!cache.Lookup(key).has_value()) cache.Insert(key, entry);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.hits() + cache.misses(), 800u);
}

TEST_F(ScheduleCacheFixture, NearTierReturnsMostRecentSeedOfBucket) {
  // Default near_quantization = 16: probabilities agreeing after
  // round(p * 16) share a tier-2 bucket. 0.50, 0.505 and 0.51 all
  // round to 8; 0.60 rounds to 10.
  ScheduleCache cache;
  const ScheduleCacheKey k1 = MakeKey({0.50});
  const ScheduleCacheKey k2 = MakeKey({0.505});
  cache.Insert(k1, MakeEntry(ex_.probs));
  cache.Insert(k2, MakeEntry(ex_.probs));

  const ScheduleCacheKey query = MakeKey({0.51});
  EXPECT_FALSE(cache.Lookup(query).has_value()) << "tier 1 stays exact";
  const auto near = cache.LookupNear(query);
  ASSERT_TRUE(near.has_value());
  // The seed is the bucket's most recently *inserted* entry, and it
  // carries the operating point it was computed for.
  EXPECT_EQ(near->probs, k2.probs);
  EXPECT_EQ(cache.near_hits(), 1u);

  EXPECT_FALSE(cache.LookupNear(MakeKey({0.60})).has_value());
  EXPECT_EQ(cache.near_misses(), 1u);
}

TEST_F(ScheduleCacheFixture, NearLookupDoesNotDisturbLru) {
  // A tier-2 probe is advisory: it must not refresh the seed's LRU
  // position, or warm-start scans would pin stale entries alive.
  ScheduleCacheOptions options;
  options.capacity = 2;
  ScheduleCache cache(options);
  const ScheduleCacheEntry entry = MakeEntry(ex_.probs);
  const ScheduleCacheKey k1 = MakeKey({0.50});
  const ScheduleCacheKey k2 = MakeKey({0.80});
  cache.Insert(k1, entry);
  cache.Insert(k2, entry);

  ASSERT_TRUE(cache.LookupNear(MakeKey({0.51})).has_value());
  cache.Insert(MakeKey({0.20}), entry);  // overflow: k1 is still LRU
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Lookup(k1).has_value());
  EXPECT_TRUE(cache.Lookup(k2).has_value());
}

TEST_F(ScheduleCacheFixture, NearTierNeverCrossesTenantOrFingerprint) {
  ScheduleCache cache;
  ScheduleCacheKey key = MakeKey({0.50});
  key.tenant = 1;
  cache.Insert(key, MakeEntry(ex_.probs));

  ScheduleCacheKey other_tenant = MakeKey({0.51});
  other_tenant.tenant = 2;
  EXPECT_FALSE(cache.LookupNear(other_tenant).has_value());

  ScheduleCacheKey other_config = MakeKey({0.51});
  other_config.tenant = 1;
  other_config.config_fingerprint = 99;
  EXPECT_FALSE(cache.LookupNear(other_config).has_value());

  ScheduleCacheKey same = MakeKey({0.51});
  same.tenant = 1;
  EXPECT_TRUE(cache.LookupNear(same).has_value());
}

TEST(CacheKeyOptionsTest, ValidateRejectsInvertedOrZeroResolutions) {
  CacheKeyOptions keys;
  EXPECT_TRUE(keys.Validate().ok());

  keys.near_quantization = keys.quantization * 2;  // near finer than exact
  EXPECT_FALSE(keys.Validate().ok());

  keys = CacheKeyOptions{};
  keys.quantization = 0;
  EXPECT_FALSE(keys.Validate().ok());
  keys = CacheKeyOptions{};
  keys.near_quantization = 0;
  EXPECT_FALSE(keys.Validate().ok());

  // Equal resolutions are the degenerate-but-legal corner.
  keys = CacheKeyOptions{};
  keys.near_quantization = keys.quantization;
  EXPECT_TRUE(keys.Validate().ok());
}

TEST_F(ScheduleCacheFixture, ConcurrentNearTierTrafficIsSafe) {
  // Exercised under TSan in CI: both lookup tiers plus inserts and
  // purges hammering one cache from four threads.
  ScheduleCacheOptions options;
  options.capacity = 8;
  ScheduleCache cache(options);
  const ScheduleCacheEntry entry = MakeEntry(ex_.probs);

  std::atomic<std::uint64_t> near_probes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        ScheduleCacheKey key =
            MakeKey({static_cast<double>((t + i) % 12) / 12.0});
        key.tenant = static_cast<std::uint64_t>(t % 2);
        if (cache.LookupNear(key).has_value()) {
          near_probes.fetch_add(1, std::memory_order_relaxed);
        }
        if (!cache.Lookup(key).has_value()) cache.Insert(key, entry);
        if (i % 64 == 63) cache.Purge(static_cast<std::uint64_t>(t % 2));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.near_hits(), near_probes.load());
  EXPECT_EQ(cache.near_hits() + cache.near_misses(), 800u);
}

TEST_F(ScheduleCacheFixture, AdaptiveRunUnchangedByCacheWithHits) {
  // The paper's adaptive loop with and without memoization must agree
  // exactly — same energies, same re-schedule count — while a cyclic
  // workload (operating points revisited after the window refills)
  // produces real cache hits.
  auto run = [&](ScheduleCache* cache) {
    adaptive::AdaptiveOptions options;
    options.window_length = 4;
    options.threshold = 0.1;
    options.cache = CacheBinding{cache, 0};
    adaptive::AdaptiveController controller(ex_.graph, analysis_,
                                            ex_.platform, ex_.probs,
                                            options);
    ctg::BranchAssignment a(ex_.graph.task_count());
    a.Set(ex_.tau(3), 0);
    a.Set(ex_.tau(5), 0);
    ctg::BranchAssignment b(ex_.graph.task_count());
    b.Set(ex_.tau(3), 1);
    b.Set(ex_.tau(5), 1);

    double total = 0.0;
    for (int cycle = 0; cycle < 6; ++cycle) {
      for (int i = 0; i < 8; ++i) {
        total += controller.ProcessInstance(cycle % 2 == 0 ? a : b)
                     .energy_mj;
      }
    }
    return std::pair<double, std::size_t>(total,
                                          controller.reschedule_count());
  };

  const auto baseline = run(nullptr);
  ScheduleCache cache;
  const auto cached = run(&cache);

  EXPECT_EQ(baseline.first, cached.first);
  EXPECT_EQ(baseline.second, cached.second);
  EXPECT_GT(baseline.second, 0u);
  EXPECT_GT(cache.hits(), 0u);
}

TEST_F(ScheduleCacheFixture, TenantAndPolicyFieldsPreventKeyAliasing) {
  // Two tenants (or two policies) scheduling the same graph at the same
  // operating point must never serve each other's entries.
  ScheduleCache cache;
  ScheduleCacheKey key = MakeKey({0.4, 0.6});
  key.tenant = 1;
  key.policy = "online";
  cache.Insert(key, MakeEntry(ex_.probs));

  ScheduleCacheKey other_tenant = key;
  other_tenant.tenant = 2;
  EXPECT_FALSE(cache.Lookup(other_tenant).has_value());

  ScheduleCacheKey other_policy = key;
  other_policy.policy = "proportional";
  EXPECT_FALSE(cache.Lookup(other_policy).has_value());

  EXPECT_TRUE(cache.Lookup(key).has_value());
}

TEST_F(ScheduleCacheFixture, PurgeRemovesOnlyOneTenantWithoutEvictions) {
  ScheduleCache cache;
  const ScheduleCacheEntry entry = MakeEntry(ex_.probs);
  for (std::uint64_t tenant : {1u, 1u, 2u}) {
    ScheduleCacheKey key =
        MakeKey({static_cast<double>(cache.size()) / 8.0});
    key.tenant = tenant;
    cache.Insert(key, entry);
  }
  ASSERT_EQ(cache.size(), 3u);

  EXPECT_EQ(cache.Purge(1), 2u);
  EXPECT_EQ(cache.size(), 1u);
  // Purged entries are not evictions (the LRU never overflowed).
  EXPECT_EQ(cache.evictions(), 0u);

  ScheduleCacheKey survivor = MakeKey({2.0 / 8.0});
  survivor.tenant = 2;
  EXPECT_TRUE(cache.Lookup(survivor).has_value());
  EXPECT_EQ(cache.Purge(7), 0u);  // unknown tenant: no-op
}

TEST_F(ScheduleCacheFixture, ShardedCacheRoutesStatsAndPurgesPerShard) {
  ShardedScheduleCacheOptions options;
  options.shards = 4;
  options.shard_capacity = 8;
  ShardedScheduleCache cache(options);
  ASSERT_EQ(cache.shard_count(), 4u);

  // Routing is stable and the returned shard is the indexed one.
  for (std::uint64_t tenant = 1; tenant <= 12; ++tenant) {
    EXPECT_EQ(cache.ShardIndex(tenant), cache.ShardIndex(tenant));
    EXPECT_LT(cache.ShardIndex(tenant), cache.shard_count());
  }

  const ScheduleCacheEntry entry = MakeEntry(ex_.probs);
  auto keyed = [&](std::uint64_t tenant) {
    ScheduleCacheKey key = MakeKey({0.4, 0.6});
    key.tenant = tenant;
    return key;
  };
  // Find two tenants on distinct shards (mixing spreads consecutive
  // ids, so a small scan always finds a pair).
  std::uint64_t a = 1, b = 2;
  while (cache.ShardIndex(b) == cache.ShardIndex(a)) ++b;

  cache.ShardFor(a).Insert(keyed(a), entry);
  cache.ShardFor(b).Insert(keyed(b), entry);
  EXPECT_EQ(cache.size(), 2u);

  EXPECT_TRUE(cache.ShardFor(a).Lookup(keyed(a)).has_value());
  EXPECT_FALSE(cache.ShardFor(a).Lookup(keyed(b)).has_value())
      << "tenant b's entry must live on its own shard";

  // Shard-aware stats: hits/misses land on the queried shard only.
  const std::vector<ShardStats> stats = cache.Stats();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats[cache.ShardIndex(a)].hits, 1u);
  EXPECT_EQ(stats[cache.ShardIndex(a)].misses, 1u);
  EXPECT_EQ(stats[cache.ShardIndex(b)].hits, 0u);
  EXPECT_EQ(stats[cache.ShardIndex(b)].entries, 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Purging tenant a leaves tenant b's shard untouched.
  EXPECT_EQ(cache.Purge(a), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.ShardFor(b).Lookup(keyed(b)).has_value());
  EXPECT_EQ(cache.evictions(), 0u);
}

// -------------------------------------------------------------- Metrics

TEST(MetricsTest, CountersAndTimers) {
  Metrics metrics;
  metrics.Increment("a");
  metrics.Increment("a", 4);
  EXPECT_EQ(metrics.counter("a"), 5u);
  EXPECT_EQ(metrics.counter("never"), 0u);

  { const ScopedTimer timer(metrics, "stage.x"); }
  EXPECT_EQ(metrics.counter("stage.x.calls"), 1u);
  EXPECT_GE(metrics.timer_ms("stage.x"), 0.0);

  metrics.Reset();
  EXPECT_EQ(metrics.counter("a"), 0u);
  EXPECT_TRUE(metrics.Counters().empty());
}

TEST(MetricsTest, ConcurrentIncrementsSumExactly) {
  Metrics metrics;
  Pool pool(8);
  pool.ParallelFor(1000, [&](std::size_t) {
    metrics.Increment("hits");
  });
  EXPECT_EQ(metrics.counter("hits"), 1000u);
}

TEST(MetricsTest, CsvDumpHasHeaderAndRows) {
  Metrics metrics;
  metrics.Increment("cache.hits", 3);
  metrics.RecordTime("stage.dls", 2'000'000);
  std::ostringstream os;
  metrics.WriteCsv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("metric,kind,value"), std::string::npos);
  EXPECT_NE(csv.find("cache.hits,counter,3"), std::string::npos);
  EXPECT_NE(csv.find("stage.dls"), std::string::npos);
}

TEST(MetricsTest, DistributionsReportNearestRankQuantiles) {
  Metrics metrics;
  EXPECT_EQ(metrics.samples("lat"), 0u);
  EXPECT_EQ(metrics.quantile("lat", 0.5), 0.0);

  for (int i = 1; i <= 100; ++i) {
    metrics.Observe("lat", static_cast<double>(i));
  }
  EXPECT_EQ(metrics.samples("lat"), 100u);
  EXPECT_DOUBLE_EQ(metrics.quantile("lat", 0.5), 50.0);
  EXPECT_DOUBLE_EQ(metrics.quantile("lat", 0.99), 99.0);
  EXPECT_DOUBLE_EQ(metrics.quantile("lat", 1.0), 100.0);

  std::ostringstream os;
  metrics.WriteText(os);
  EXPECT_NE(os.str().find("lat_count 100"), std::string::npos);
  EXPECT_NE(os.str().find("lat_p99"), std::string::npos);

  metrics.Reset();
  EXPECT_EQ(metrics.samples("lat"), 0u);
}

// ------------------------------------------------------------ Watchdog

// A denormal-small positive deadline arms "now" (NowMs() + denormal
// rounds back to NowMs(), and expiry is a >= comparison), so it fires
// at the first check even if the clock never advances. This is the
// deterministic "always fires" end state; the generous deadline below
// is the deterministic "never fires" one.
constexpr double kInstantly = std::numeric_limits<double>::min();
constexpr double kNever = 1e12;

TEST(Watchdog, UnarmedThreadNeverExpires) {
  EXPECT_FALSE(DeadlineExpired());
  EXPECT_NO_THROW(CheckDeadline("idle"));
}

TEST(Watchdog, InertScopeArmsNothing) {
  DeadlineScope inert(0.0);
  EXPECT_FALSE(DeadlineExpired());
  DeadlineScope negative(-5.0);
  EXPECT_FALSE(DeadlineExpired());
}

TEST(Watchdog, TightDeadlineFiresWithTheNamedCulprit) {
  DeadlineScope scope(kInstantly);
  EXPECT_TRUE(DeadlineExpired());
  try {
    CheckDeadline("unit test body");
    FAIL() << "CheckDeadline did not throw";
  } catch (const DeadlineExceeded& e) {
    EXPECT_STREQ(e.what(),
                 "watchdog: unit test body exceeded its deadline");
  }
}

TEST(Watchdog, GenerousDeadlineNeverFires) {
  DeadlineScope scope(kNever);
  EXPECT_FALSE(DeadlineExpired());
  EXPECT_NO_THROW(CheckDeadline("unit test body"));
}

TEST(Watchdog, ScopesNestAndRestoreTheOuterDeadline) {
  DeadlineScope outer(kNever);
  EXPECT_FALSE(DeadlineExpired());
  {
    DeadlineScope inner(kInstantly);
    EXPECT_TRUE(DeadlineExpired());  // innermost armed deadline wins
  }
  EXPECT_FALSE(DeadlineExpired());  // outer deadline restored
  {
    DeadlineScope inert(0.0);
    EXPECT_FALSE(DeadlineExpired());  // inert scope leaves outer armed
  }
  EXPECT_FALSE(DeadlineExpired());
}

TEST(Watchdog, PoolArmsADeadlinePerJob) {
  Pool pool(4);
  std::atomic<std::size_t> expired{0};
  pool.ParallelFor(
      16, [&](std::size_t) { expired += DeadlineExpired() ? 1 : 0; },
      kInstantly);
  EXPECT_EQ(expired.load(), 16u);

  expired = 0;
  pool.ParallelFor(
      16, [&](std::size_t) { expired += DeadlineExpired() ? 1 : 0; },
      kNever);
  EXPECT_EQ(expired.load(), 0u);

  // Default: no deadline parameter arms nothing.
  expired = 0;
  pool.ParallelFor(16,
                   [&](std::size_t) { expired += DeadlineExpired() ? 1 : 0; });
  EXPECT_EQ(expired.load(), 0u);
}

TEST(Watchdog, DeadlineExceededEscapingAJobPropagatesToTheCaller) {
  Pool pool(2);
  EXPECT_THROW(pool.ParallelFor(
                   8, [&](std::size_t) { CheckDeadline("pool job"); },
                   kInstantly),
               DeadlineExceeded);
}

}  // namespace
}  // namespace actg::runtime
