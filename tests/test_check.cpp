#include <gtest/gtest.h>

#include <utility>

#include "apps/common.h"
#include "apps/fig1_example.h"
#include "check/validator.h"
#include "ctg/activation.h"
#include "dvfs/policy.h"
#include "sched/dls.h"
#include "sim/executor.h"
#include "tgff/random_ctg.h"
#include "util/error.h"

namespace actg::check {
namespace {

// Known-good pipeline output the mutation tests corrupt: the paper's
// Figure 1 example scheduled by the modified DLS and stretched by the
// online algorithm.
class CheckTest : public ::testing::Test {
 protected:
  CheckTest()
      : ex_(apps::MakeFig1Example()),
        analysis_(ex_.graph),
        schedule_(sched::RunDls(ex_.graph, analysis_, ex_.platform,
                                ex_.probs)) {}

  void Stretch() { dvfs::ApplyPolicy("online", schedule_, ex_.probs); }

  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
  sched::Schedule schedule_;
};

TEST_F(CheckTest, GoodScheduleIsClean) {
  const Report nominal = CheckSchedule(schedule_);
  EXPECT_TRUE(nominal.ok()) << nominal.ToString();
  EXPECT_EQ(nominal.ToString(), "ok");

  Expectations expect;
  expect.deadline_feasible =
      sim::MaxScenarioMakespan(schedule_) <= ex_.graph.deadline_ms();
  Stretch();
  const Report stretched = CheckSchedule(schedule_, expect);
  EXPECT_TRUE(stretched.ok()) << stretched.ToString();
}

TEST_F(CheckTest, GoodInstancesAreClean) {
  Stretch();
  for (const ctg::Minterm& scenario :
       analysis_.EnumerateScenarioAssignments()) {
    const ctg::BranchAssignment assignment =
        sim::AssignmentFromScenario(ex_.graph, scenario);
    const Report report = CheckInstance(
        schedule_, assignment, sim::ExecuteInstance(schedule_, assignment));
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

TEST_F(CheckTest, ValidateThrowsWithReportText) {
  schedule_.placement(TaskId{0}).speed_ratio = 1.5;
  try {
    Validate(schedule_);
    FAIL() << "Validate accepted a corrupt schedule";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("speed.range"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Mutation self-test: ten distinct corruptions of the known-good
// schedule, each of which the oracle must flag with its specific rule.
// Proves the validator is not vacuously accepting.

TEST_F(CheckTest, Mutation01InvalidPe) {
  schedule_.placement(TaskId{2}).pe = PeId{9};
  EXPECT_TRUE(CheckSchedule(schedule_).Has("placement.pe"));
}

TEST_F(CheckTest, Mutation02MaskedPe) {
  Expectations expect;
  expect.available_pes =
      arch::PeMask().Without(schedule_.placement(TaskId{0}).pe);
  EXPECT_TRUE(CheckSchedule(schedule_, expect).Has("pe-mask"));
}

TEST_F(CheckTest, Mutation03NegativeStart) {
  sched::TaskPlacement& p = schedule_.placement(TaskId{0});
  const double wcet = schedule_.ScaledWcet(TaskId{0});
  p.start_ms = -3.0;
  p.finish_ms = p.start_ms + wcet;
  EXPECT_TRUE(CheckSchedule(schedule_).Has("placement.start"));
}

TEST_F(CheckTest, Mutation04FinishMismatch) {
  schedule_.placement(TaskId{1}).finish_ms += 2.5;
  EXPECT_TRUE(CheckSchedule(schedule_).Has("placement.finish"));
}

TEST_F(CheckTest, Mutation05SpeedAboveNominal) {
  schedule_.placement(TaskId{3}).speed_ratio = 1.5;
  EXPECT_TRUE(CheckSchedule(schedule_).Has("speed.range"));
}

TEST_F(CheckTest, Mutation06SpeedBelowPeMinimum) {
  const TaskId t{4};
  const PeId pe = schedule_.placement(t).pe;
  const double min = schedule_.platform().pe(pe).min_speed_ratio;
  ASSERT_GT(min, 0.0);
  sched::TaskPlacement& p = schedule_.placement(t);
  p.speed_ratio = min * 0.5;
  p.finish_ms = p.start_ms + schedule_.NominalWcet(t) / p.speed_ratio;
  EXPECT_TRUE(CheckSchedule(schedule_).Has("speed.pe-min"));
}

TEST_F(CheckTest, Mutation07SpeedBelowImposedFloor) {
  // A degraded reschedule must respect the ladder's floor; a ratio
  // under it is a broken promise even though the PE allows it.
  const TaskId t{5};
  sched::TaskPlacement& p = schedule_.placement(t);
  p.speed_ratio = 0.5;
  p.finish_ms = p.start_ms + schedule_.NominalWcet(t) / p.speed_ratio;
  Expectations expect;
  expect.speed_floor = 0.9;
  const Report report = CheckSchedule(schedule_, expect);
  EXPECT_TRUE(report.Has("speed.floor")) << report.ToString();
}

TEST_F(CheckTest, Mutation08DuplicateOrderIndex) {
  schedule_.placement(TaskId{1}).order_index =
      schedule_.placement(TaskId{0}).order_index;
  EXPECT_TRUE(CheckSchedule(schedule_).Has("order.permutation"));
}

TEST_F(CheckTest, Mutation09PrecedenceViolated) {
  // Pull a same-PE consumer in front of its producer (times stay
  // internally consistent, so only the precedence rule can catch it).
  bool found = false;
  for (EdgeId eid : ex_.graph.EdgeIds()) {
    const ctg::Edge& e = ex_.graph.edge(eid);
    const sched::TaskPlacement& src = schedule_.placement(e.src);
    if (schedule_.placement(e.dst).pe != src.pe || src.finish_ms <= 0.5) {
      continue;
    }
    sched::TaskPlacement& dst = schedule_.placement(e.dst);
    dst.start_ms = src.finish_ms - 0.5;
    dst.finish_ms = dst.start_ms + schedule_.ScaledWcet(e.dst);
    found = true;
    break;
  }
  ASSERT_TRUE(found) << "Fig. 1 schedule has no same-PE edge to corrupt";
  EXPECT_TRUE(CheckSchedule(schedule_).Has("precedence.edge"));
}

TEST_F(CheckTest, Mutation10CommWindowBelowBandwidth) {
  bool found = false;
  for (EdgeId eid : ex_.graph.EdgeIds()) {
    const ctg::Edge& e = ex_.graph.edge(eid);
    if (schedule_.placement(e.src).pe == schedule_.placement(e.dst).pe ||
        e.comm_kbytes <= 0.0) {
      continue;
    }
    sched::CommPlacement& comm = schedule_.comm(eid);
    comm.finish_ms = comm.start_ms;  // zero-length window, bytes > 0
    found = true;
    break;
  }
  ASSERT_TRUE(found) << "Fig. 1 schedule has no cross-PE edge to corrupt";
  EXPECT_TRUE(CheckSchedule(schedule_).Has("comm.bandwidth"));
}

TEST_F(CheckTest, Mutation11OverlapOfCompatibleTasks) {
  // Find two guard-compatible tasks on one PE and slide the later one
  // into the earlier one's execution window.
  bool found = false;
  for (TaskId a : ex_.graph.TaskIds()) {
    for (TaskId b : ex_.graph.TaskIds()) {
      if (a.index() >= b.index()) continue;
      if (schedule_.placement(a).pe != schedule_.placement(b).pe) continue;
      if (analysis_.MutuallyExclusive(a, b)) continue;
      const sched::TaskPlacement& pa = schedule_.placement(a);
      sched::TaskPlacement& pb = schedule_.placement(b);
      const double mid = pa.start_ms + 0.5 * schedule_.ScaledWcet(a);
      pb.start_ms = mid;
      pb.finish_ms = mid + schedule_.ScaledWcet(b);
      found = true;
      break;
    }
    if (found) break;
  }
  ASSERT_TRUE(found) << "no guard-compatible same-PE pair to overlap";
  EXPECT_TRUE(CheckSchedule(schedule_).Has("exclusion.overlap"));
}

TEST_F(CheckTest, Mutation12InfeasibleFeasibilityClaim) {
  Expectations expect;
  expect.deadline_feasible = true;
  expect.deadline_ms = 1.0;  // far below any scenario's completion time
  EXPECT_TRUE(CheckSchedule(schedule_, expect).Has("deadline.feasible"));
}

TEST_F(CheckTest, Mutation13InflatedEnergy) {
  const ctg::BranchAssignment assignment = sim::AssignmentFromScenario(
      ex_.graph, analysis_.EnumerateScenarioAssignments().front());
  sim::InstanceResult result =
      sim::ExecuteInstance(schedule_, assignment);
  result.energy_mj *= 1.1;
  EXPECT_TRUE(
      CheckInstance(schedule_, assignment, result).Has("instance.energy"));
}

TEST_F(CheckTest, Mutation14ShiftedMakespan) {
  const ctg::BranchAssignment assignment = sim::AssignmentFromScenario(
      ex_.graph, analysis_.EnumerateScenarioAssignments().front());
  sim::InstanceResult result =
      sim::ExecuteInstance(schedule_, assignment);
  result.makespan_ms += 4.0;
  result.deadline_met =
      result.makespan_ms <= ex_.graph.deadline_ms() + 1e-6;
  EXPECT_TRUE(CheckInstance(schedule_, assignment, result)
                  .Has("instance.makespan"));
}

TEST_F(CheckTest, Mutation15WrongActiveCount) {
  const ctg::BranchAssignment assignment = sim::AssignmentFromScenario(
      ex_.graph, analysis_.EnumerateScenarioAssignments().front());
  sim::InstanceResult result =
      sim::ExecuteInstance(schedule_, assignment);
  result.active_tasks += 1;
  EXPECT_TRUE(
      CheckInstance(schedule_, assignment, result).Has("instance.active"));
}

TEST_F(CheckTest, Mutation16FlippedDeadlineFlag) {
  const ctg::BranchAssignment assignment = sim::AssignmentFromScenario(
      ex_.graph, analysis_.EnumerateScenarioAssignments().front());
  sim::InstanceResult result =
      sim::ExecuteInstance(schedule_, assignment);
  ASSERT_GT(std::abs(result.makespan_ms - ex_.graph.deadline_ms()), 1e-3)
      << "boundary instance, flag flip would be suppressed";
  result.deadline_met = !result.deadline_met;
  EXPECT_TRUE(CheckInstance(schedule_, assignment, result)
                  .Has("instance.deadline-flag"));
}

// ---------------------------------------------------------------------------
// Report mechanics

TEST(CheckReport, MergeAndHas) {
  Report a;
  a.Add("rule.one", "first");
  Report b;
  b.Add("rule.two", "second");
  a.Merge(b);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.violations().size(), 2u);
  EXPECT_TRUE(a.Has("rule.one"));
  EXPECT_TRUE(a.Has("rule.two"));
  EXPECT_FALSE(a.Has("rule.three"));
  EXPECT_NE(a.ToString().find("rule.two"), std::string::npos);
}

// The oracle accepts mutex-aware schedules that overlap guard-exclusive
// tasks (the legal slot sharing the modified DLS exploits), across
// random conditional graphs.
TEST(CheckRandom, MutexAwareSchedulesStayClean) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    tgff::RandomCtgParams params;
    params.task_count = 14;
    params.fork_count = 2;
    params.pe_count = 2;
    params.seed = seed;
    tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
    apps::AssignDeadline(rc.graph, rc.platform, 2.0);
    const ctg::ActivationAnalysis analysis(rc.graph);
    const ctg::BranchProbabilities probs =
        apps::UniformProbabilities(rc.graph);
    sched::Schedule schedule =
        sched::RunDls(rc.graph, analysis, rc.platform, probs);
    const Report report = CheckSchedule(schedule);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.ToString();
  }
}

}  // namespace
}  // namespace actg::check
