#include <gtest/gtest.h>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "apps/cruise.h"
#include "check/validator.h"
#include "apps/mpeg.h"
#include "ctg/activation.h"
#include "dvfs/algorithms.h"
#include "experiments.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/session.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "util/rng.h"

// End-to-end checks that the full pipelines reproduce the *shape* of the
// paper's evaluation (Section IV). These are scaled-down versions of the
// bench harnesses so regressions in any stage (condition algebra, DLS,
// stretching, profiling, adaptation) surface as failed orderings here.

namespace actg {
namespace {

TEST(Table1Shape, OnlineBeatsRef1AndRef2BeatsOnline) {
  int ref1_wins = 0;
  int ref2_wins = 0;
  int cases = 0;
  for (bench::TestCase& test : bench::MakeTable1Cases()) {
    ++cases;
    const ctg::ActivationAnalysis analysis(test.rc.graph);
    util::Random rng(99 + static_cast<std::uint64_t>(cases));
    ctg::BranchProbabilities probs(test.rc.graph.task_count());
    for (TaskId fork : test.rc.graph.ForkIds()) {
      const double p = rng.Uniform(0.1, 0.9);
      probs.Set(fork, {p, 1.0 - p});
    }
    const double online = sim::ExpectedEnergy(
        dvfs::RunOnlineAlgorithm(test.rc.graph, analysis, test.rc.platform,
                                 probs),
        probs);
    const double ref1 = sim::ExpectedEnergy(
        dvfs::RunReference1(test.rc.graph, analysis, test.rc.platform,
                            probs),
        probs);
    const double ref2 = sim::ExpectedEnergy(
        dvfs::RunReference2(test.rc.graph, analysis, test.rc.platform,
                            probs),
        probs);
    if (ref1 > online) ++ref1_wins;
    if (ref2 < online) ++ref2_wins;
    // Paper band: Ref1 in [130, 290] normalized; we accept > 120.
    EXPECT_GT(ref1 / online, 1.2) << "case " << cases;
    // Ref2 in [87, 97]; we accept [0.6, 1.0].
    EXPECT_LT(ref2 / online, 1.0) << "case " << cases;
    EXPECT_GT(ref2 / online, 0.6) << "case " << cases;
  }
  EXPECT_EQ(ref1_wins, cases);
  EXPECT_EQ(ref2_wins, cases);
}

TEST(Table4Shape, AdaptiveBeatsMisprofiledOnlineOverall) {
  double online_total = 0.0, t05_total = 0.0, t01_total = 0.0;
  int index = 0;
  for (bench::TestCase& test : bench::MakeTable45Cases()) {
    ++index;
    if (index > 4) break;  // subset keeps the test fast
    const ctg::ActivationAnalysis analysis(test.rc.graph);
    const trace::BranchTrace vectors = bench::MakeFluctuatingVectors(
        test.rc.graph, 400, 777 + static_cast<std::uint64_t>(index));
    const auto profile = bench::BiasedProfile(
        test.rc.graph, analysis, test.rc.platform, /*lowest=*/true);
    bench::ExperimentSpec spec(test.rc.graph, analysis, test.rc.platform);
    spec.WithProfile(profile).WithWindow(20).WithScheduleCache();
    const auto cmp = bench::CompareAdaptive(spec, vectors);
    online_total += cmp.online_energy;
    t05_total += cmp.adaptive_energy_t05;
    t01_total += cmp.adaptive_energy_t01;
    // Lower threshold => at least as many calls.
    EXPECT_GE(cmp.calls_t01, cmp.calls_t05);
  }
  EXPECT_LT(t05_total, online_total);
  EXPECT_LT(t01_total, online_total);
}

TEST(Table5Shape, HighBiasSavingsSmallerThanLowBias) {
  double low_online = 0.0, low_adaptive = 0.0;
  double high_online = 0.0, high_adaptive = 0.0;
  int index = 0;
  for (bench::TestCase& test : bench::MakeTable45Cases()) {
    ++index;
    if (index > 3) break;
    const ctg::ActivationAnalysis analysis(test.rc.graph);
    const trace::BranchTrace vectors = bench::MakeFluctuatingVectors(
        test.rc.graph, 400, 777 + static_cast<std::uint64_t>(index));
    for (bool lowest : {true, false}) {
      const auto profile = bench::BiasedProfile(
          test.rc.graph, analysis, test.rc.platform, lowest);
      bench::ExperimentSpec spec(test.rc.graph, analysis,
                                 test.rc.platform);
      spec.WithProfile(profile).WithWindow(20).WithScheduleCache();
      const auto cmp = bench::CompareAdaptive(spec, vectors);
      if (lowest) {
        low_online += cmp.online_energy;
        low_adaptive += cmp.adaptive_energy_t01;
      } else {
        high_online += cmp.online_energy;
        high_adaptive += cmp.adaptive_energy_t01;
      }
    }
  }
  const double low_saving = 1.0 - low_adaptive / low_online;
  const double high_saving = 1.0 - high_adaptive / high_online;
  // Paper: ~23% (low bias) vs ~5% (high bias): misprofiling toward the
  // cheap scenario is much worse than toward the expensive one.
  EXPECT_GT(low_saving, high_saving);
  EXPECT_GT(low_saving, 0.0);
}

TEST(BiasedProfiles, ExtremeScenariosDiffer) {
  for (bench::TestCase& test : bench::MakeTable1Cases()) {
    const ctg::ActivationAnalysis analysis(test.rc.graph);
    const auto low = bench::BiasedProfile(test.rc.graph, analysis,
                                          test.rc.platform, true);
    const auto high = bench::BiasedProfile(test.rc.graph, analysis,
                                           test.rc.platform, false);
    bool differs = false;
    for (TaskId fork : test.rc.graph.ForkIds()) {
      if (std::abs(low.Outcome(fork, 0) - high.Outcome(fork, 0)) >
          1e-9) {
        differs = true;
      }
      // Biased entries are 0.95/0.05 or uniform.
      const double p = low.Outcome(fork, 0);
      EXPECT_TRUE(std::abs(p - 0.95) < 1e-9 ||
                  std::abs(p - 0.05) < 1e-9 || std::abs(p - 0.5) < 1e-9);
    }
    EXPECT_TRUE(differs);
    break;  // one case suffices
  }
}

TEST(FluctuatingVectors, EqualAveragesWithLargeSwings) {
  bench::TestCase test = std::move(bench::MakeTable45Cases()[0]);
  const trace::BranchTrace vectors =
      bench::MakeFluctuatingVectors(test.rc.graph, 2000, 5);
  for (TaskId fork : test.rc.graph.ForkIds()) {
    // Long-run average near 0.5 ("average probabilities ... equal").
    EXPECT_NEAR(vectors.EmpiricalProbability(fork, 0), 0.5, 0.08);
    // Local windows swing far from it (fluctuation 0.4-0.5).
    double lo = 1.0, hi = 0.0;
    for (std::size_t begin = 0; begin + 50 <= vectors.size();
         begin += 50) {
      const double p =
          vectors.EmpiricalProbability(fork, 0, begin, begin + 50);
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
    EXPECT_GT(hi - lo, 0.4);
  }
}

TEST(MpegPipeline, FullProtocolRunsCleanly) {
  const apps::MpegModel model = apps::MakeMpegModel();
  const ctg::ActivationAnalysis analysis(model.graph);
  const auto movie = apps::MpegMovieProfiles()[0];
  const trace::BranchTrace full =
      apps::GenerateMovieTrace(model, movie, 600);
  const auto profile =
      full.Slice(0, 300).ProfiledProbabilities(model.graph);

  adaptive::AdaptiveOptions options;
  options.window_length = 20;
  options.threshold = 0.1;
  // Oracle-check every reschedule the controller performs on the fly.
  options.validate_schedules = true;
  adaptive::AdaptiveController controller(model.graph, analysis,
                                          model.platform, profile,
                                          options);
  const sim::RunSummary run =
      adaptive::RunAdaptive(controller, full.Slice(300, 600));
  EXPECT_EQ(run.instances, 300u);
  EXPECT_EQ(run.deadline_misses, 0u);
  EXPECT_GT(run.total_energy_mj, 0.0);
  controller.current_schedule().Validate();
  check::Validate(controller.current_schedule());
}

TEST(CruisePipeline, AdaptiveNeverMissesDeadlines) {
  const apps::CruiseModel model = apps::MakeCruiseModel();
  const ctg::ActivationAnalysis analysis(model.graph);
  const auto training = apps::GenerateRoadTrace(model, 1, 300, 11);
  const auto profile = training.ProfiledProbabilities(model.graph);
  for (int sequence = 1; sequence <= 3; ++sequence) {
    const auto vectors =
        apps::GenerateRoadTrace(model, sequence, 300, 100 + sequence);
    adaptive::AdaptiveOptions options;
    options.window_length = 20;
    options.threshold = 0.1;
    options.validate_schedules = true;
    adaptive::AdaptiveController controller(model.graph, analysis,
                                            model.platform, profile,
                                            options);
    const sim::RunSummary run = adaptive::RunAdaptive(controller, vectors);
    EXPECT_EQ(run.deadline_misses, 0u) << "sequence " << sequence;
    check::Validate(controller.current_schedule());
  }
}

TEST(Determinism, WholeExperimentReproducesExactly) {
  // The entire Table 4 column for one CTG must be bit-identical across
  // runs — the recorded experiment outputs depend on it.
  auto run_once = [] {
    bench::TestCase test = std::move(bench::MakeTable45Cases()[2]);
    const ctg::ActivationAnalysis analysis(test.rc.graph);
    const auto vectors =
        bench::MakeFluctuatingVectors(test.rc.graph, 300, 780);
    const auto profile = bench::BiasedProfile(test.rc.graph, analysis,
                                              test.rc.platform, true);
    bench::ExperimentSpec spec(test.rc.graph, analysis, test.rc.platform);
    spec.WithProfile(profile).WithWindow(20).WithScheduleCache();
    return bench::CompareAdaptive(spec, vectors);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.online_energy, b.online_energy);
  EXPECT_DOUBLE_EQ(a.adaptive_energy_t05, b.adaptive_energy_t05);
  EXPECT_DOUBLE_EQ(a.adaptive_energy_t01, b.adaptive_energy_t01);
  EXPECT_EQ(a.calls_t05, b.calls_t05);
  EXPECT_EQ(a.calls_t01, b.calls_t01);
}

TEST(ServeFleet, OracleValidatesSampledInstancesOfEveryTenant) {
  // Replay a mixed-SLA fleet with the oracle enabled (validate=true
  // checks every freshly computed schedule inside the controllers),
  // then independently re-validate at least one instance per tenant:
  // re-execute it against the tenant's final schedule and hand the
  // result to check::ValidateInstance (fresh ASAP pass + energy
  // re-integration).
  serve::FleetRequest fleet = serve::SyntheticFleet(9, 5, 13);
  fleet.config.validate = true;
  serve::ServerOptions options;
  options.jobs = 4;
  serve::Server server(std::move(fleet), options);
  const serve::FleetReport& report = server.Run();
  EXPECT_EQ(report.shed_tenants, 0u) << "fleet sized to admit everyone";

  std::size_t sampled = 0;
  for (const auto& session : server.sessions()) {
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session->state(), serve::SessionState::kShutdown);
    const sched::Schedule& schedule =
        session->controller().current_schedule();
    check::Validate(schedule);
    // Sample the first and last instance of the tenant's trace.
    for (const std::size_t index :
         {std::size_t{0}, session->request().instances - 1}) {
      const sim::InstanceResult replay =
          sim::ExecuteInstance(schedule, session->assignment(index));
      check::ValidateInstance(schedule, session->assignment(index),
                              replay);
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 2 * report.tenants.size());
}

}  // namespace
}  // namespace actg
