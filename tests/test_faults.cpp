#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "apps/fig1_example.h"
#include "check/validator.h"
#include "ctg/activation.h"
#include "experiments.h"
#include "faults/injector.h"
#include "faults/plan.h"
#include "obs/trace.h"
#include "runtime/pool.h"
#include "sched/dls.h"
#include "sim/executor.h"
#include "util/error.h"

namespace actg::faults {
namespace {

/// A plan where every fault class is active, scaled by one intensity.
FaultPlan FullPlan(double intensity = 1.0) {
  FaultPlan plan;
  plan.intensity = intensity;
  plan.overrun.probability = 0.2;
  plan.overrun.min_factor = 1.2;
  plan.overrun.max_factor = 1.8;
  plan.dropout.probability = 0.05;
  plan.dropout.duration = 3;
  plan.dropout.rerun_penalty = 2.0;
  plan.link.probability = 0.1;
  plan.link.bandwidth_factor = 0.5;
  plan.link.duration = 2;
  plan.drift.max_flip_probability = 0.3;
  plan.drift.ramp_instances = 50;
  return plan;
}

TEST(FaultPlanValidate, DefaultPlanIsValidAndEmpty) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.Validate());
  EXPECT_TRUE(plan.Empty());
  EXPECT_FALSE(FullPlan().Empty());
  EXPECT_TRUE(FullPlan(0.0).Empty());
}

TEST(FaultPlanValidate, RejectsEachBadKnob) {
  const auto broken = [](auto mutate) {
    FaultPlan plan = FullPlan();
    mutate(plan);
    return bool(plan.Validate());
  };
  EXPECT_TRUE(broken([](FaultPlan& p) { p.intensity = -0.1; }));
  EXPECT_TRUE(broken([](FaultPlan& p) { p.overrun.probability = 1.5; }));
  EXPECT_TRUE(broken([](FaultPlan& p) { p.overrun.min_factor = 0.9; }));
  EXPECT_TRUE(broken([](FaultPlan& p) {
    p.overrun.min_factor = 2.0;
    p.overrun.max_factor = 1.5;
  }));
  EXPECT_TRUE(broken([](FaultPlan& p) { p.dropout.probability = -1.0; }));
  EXPECT_TRUE(broken([](FaultPlan& p) { p.dropout.duration = 0; }));
  EXPECT_TRUE(broken([](FaultPlan& p) { p.dropout.rerun_penalty = 0.5; }));
  EXPECT_TRUE(broken([](FaultPlan& p) { p.link.bandwidth_factor = 0.0; }));
  EXPECT_TRUE(broken([](FaultPlan& p) { p.link.bandwidth_factor = 1.5; }));
  EXPECT_TRUE(broken([](FaultPlan& p) { p.link.duration = 0; }));
  EXPECT_TRUE(
      broken([](FaultPlan& p) { p.drift.max_flip_probability = 2.0; }));
  EXPECT_TRUE(broken([](FaultPlan& p) { p.drift.ramp_instances = 0; }));
}

TEST(FaultPlanText, RoundTripsEveryField) {
  FaultPlan plan = FullPlan(0.75);
  plan.seed = 424242;
  std::ostringstream out;
  WriteFaultPlan(out, plan);
  std::istringstream in(out.str());
  const util::Expected<FaultPlan> parsed = ParseFaultPlan(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  const FaultPlan& back = parsed.value();
  EXPECT_DOUBLE_EQ(back.intensity, plan.intensity);
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_DOUBLE_EQ(back.overrun.probability, plan.overrun.probability);
  EXPECT_DOUBLE_EQ(back.overrun.min_factor, plan.overrun.min_factor);
  EXPECT_DOUBLE_EQ(back.overrun.max_factor, plan.overrun.max_factor);
  EXPECT_DOUBLE_EQ(back.dropout.probability, plan.dropout.probability);
  EXPECT_EQ(back.dropout.duration, plan.dropout.duration);
  EXPECT_DOUBLE_EQ(back.dropout.rerun_penalty,
                   plan.dropout.rerun_penalty);
  EXPECT_DOUBLE_EQ(back.link.probability, plan.link.probability);
  EXPECT_DOUBLE_EQ(back.link.bandwidth_factor,
                   plan.link.bandwidth_factor);
  EXPECT_EQ(back.link.duration, plan.link.duration);
  EXPECT_DOUBLE_EQ(back.drift.max_flip_probability,
                   plan.drift.max_flip_probability);
  EXPECT_EQ(back.drift.ramp_instances, plan.drift.ramp_instances);
}

TEST(FaultPlanText, MalformedInputIsAnErrorValue) {
  for (const char* text : {
           "faults v2\nend\n",                    // wrong header
           "faults v1\noverrun 0.5\nend\n",       // missing operands
           "faults v1\nwhatever 1 2 3\nend\n",    // unknown directive
           "faults v1\noverrun 0.5 1.1 2.0\n",    // missing end
           "faults v1\nintensity -3\nend\n",      // fails Validate
       }) {
    std::istringstream in(text);
    const util::Expected<FaultPlan> parsed = ParseFaultPlan(in);
    EXPECT_FALSE(parsed.ok()) << text;
    EXPECT_FALSE(parsed.error().message().empty()) << text;
  }
  std::istringstream in("faults v1\nbogus\nend\n");
  EXPECT_NE(ParseFaultPlan(in).error().message().find("line 2"),
            std::string::npos);
}

class InjectorFixture : public ::testing::Test {
 protected:
  InjectorFixture() : ex_(apps::MakeFig1Example()), analysis_(ex_.graph) {}

  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
};

TEST_F(InjectorFixture, PureFunctionOfPlanSeedAndInstance) {
  const Injector a(FullPlan(), ex_.graph, ex_.platform, 7);
  const Injector b(FullPlan(), ex_.graph, ex_.platform, 7);
  bool any_fired = false;
  for (std::size_t i = 0; i < 200; ++i) {
    const InstanceFaults fa = a.ForInstance(i);
    // Query b out of order and repeatedly: no hidden state allowed.
    const InstanceFaults fb = b.ForInstance(i);
    const InstanceFaults fb2 = b.ForInstance(i);
    EXPECT_EQ(fa.task_time_factor, fb.task_time_factor);
    EXPECT_EQ(fa.failed_pes, fb.failed_pes);
    EXPECT_DOUBLE_EQ(fa.rerun_penalty, fb.rerun_penalty);
    EXPECT_DOUBLE_EQ(fa.comm_time_factor, fb.comm_time_factor);
    EXPECT_EQ(fa.any, fb.any);
    EXPECT_EQ(fb.failed_pes, fb2.failed_pes);
    any_fired = any_fired || fa.any;
  }
  EXPECT_TRUE(any_fired) << "plan never fired in 200 instances";
  // A different seed realizes a different fault sequence.
  const Injector c(FullPlan(), ex_.graph, ex_.platform, 8);
  bool differs = false;
  for (std::size_t i = 0; i < 200 && !differs; ++i) {
    const InstanceFaults fa = a.ForInstance(i);
    const InstanceFaults fc = c.ForInstance(i);
    differs = fa.any != fc.any || fa.failed_pes != fc.failed_pes ||
              fa.task_time_factor != fc.task_time_factor;
  }
  EXPECT_TRUE(differs);
}

TEST_F(InjectorFixture, PlanSeedOverridesCallerSeed) {
  FaultPlan pinned = FullPlan();
  pinned.seed = 99;
  const Injector with_plan_seed(pinned, ex_.graph, ex_.platform, 7);
  const Injector reference(pinned, ex_.graph, ex_.platform, 12345);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(with_plan_seed.ForInstance(i).failed_pes,
              reference.ForInstance(i).failed_pes);
    EXPECT_EQ(with_plan_seed.ForInstance(i).task_time_factor,
              reference.ForInstance(i).task_time_factor);
  }
}

TEST_F(InjectorFixture, EmptyPlanNeverPerturbs) {
  const Injector off(FullPlan(0.0), ex_.graph, ex_.platform, 7);
  ctg::BranchAssignment assignment(ex_.graph.task_count());
  for (TaskId fork : ex_.graph.ForkIds()) assignment.Set(fork, 0);
  for (std::size_t i = 0; i < 100; ++i) {
    const InstanceFaults f = off.ForInstance(i);
    EXPECT_FALSE(f.any);
    EXPECT_TRUE(f.task_time_factor.empty());
    EXPECT_EQ(f.failed_pes, 0u);
    ctg::BranchAssignment drifted = assignment;
    off.ApplyDrift(i, drifted);
    for (TaskId fork : ex_.graph.ForkIds()) {
      EXPECT_EQ(drifted.Get(fork), assignment.Get(fork));
    }
  }
}

TEST_F(InjectorFixture, DropoutWindowsCoverConsecutiveInstances) {
  FaultPlan plan;
  plan.dropout.probability = 0.2;
  plan.dropout.duration = 3;
  const Injector injector(plan, ex_.graph, ex_.platform, 11);
  // A duration-1 injector with the same seed and probability draws the
  // identical start events, so it recovers the per-instance raw starts;
  // the windowed mask must equal the union of the starts covering each
  // instance, run through the outage clamp (never the whole platform —
  // the highest-index PE survives).
  FaultPlan single = plan;
  single.dropout.duration = 1;
  const Injector probe(single, ex_.graph, ex_.platform, 11);
  const std::uint64_t all = (1ULL << ex_.platform.pe_count()) - 1;
  constexpr std::size_t kSpan = 300;
  std::vector<std::uint64_t> starts(kSpan);
  for (std::size_t i = 0; i < kSpan; ++i) {
    starts[i] = probe.ForInstance(i).failed_pes;
  }
  bool any_window = false;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < kSpan; ++i) {
    std::uint64_t expected = 0;
    bool ambiguous = false;
    for (std::size_t back = 0;
         back < plan.dropout.duration && back <= i; ++back) {
      // A probe value of all-but-highest is ambiguous: it is either the
      // raw draw or the probe's own clamp of an every-PE draw. Skip
      // instances covered by one; the rest reconstruct exactly.
      ambiguous = ambiguous || starts[i - back] == (all >> 1);
      expected |= starts[i - back];
    }
    if (ambiguous) continue;
    ++checked;
    if (expected == all) expected = all >> 1;
    EXPECT_EQ(injector.ForInstance(i).failed_pes, expected)
        << "instance " << i;
    any_window = any_window || expected != 0;
  }
  EXPECT_GT(checked, kSpan / 2);
  EXPECT_TRUE(any_window) << "plan never dropped a PE in " << kSpan
                          << " instances";
}

TEST_F(InjectorFixture, ExecutorReportsOverrunsAndFailedPeHits) {
  const auto probs = apps::UniformProbabilities(ex_.graph);
  const sched::Schedule schedule =
      sched::RunDls(ex_.graph, analysis_, ex_.platform, probs);
  ctg::BranchAssignment assignment(ex_.graph.task_count());
  for (TaskId fork : ex_.graph.ForkIds()) assignment.Set(fork, 0);

  check::Validate(schedule);
  const sim::InstanceResult clean =
      sim::ExecuteInstance(schedule, assignment);
  check::ValidateInstance(schedule, assignment, clean);
  EXPECT_EQ(clean.overrun_ms, 0.0);
  EXPECT_EQ(clean.failed_pe_hits, 0u);
  EXPECT_FALSE(clean.faults_injected);

  InstanceFaults faults;
  faults.any = true;
  faults.task_time_factor.assign(ex_.graph.task_count(), 1.5);
  faults.failed_pes = 1ULL;  // PE 0 down
  faults.rerun_penalty = 2.0;
  faults.comm_time_factor = 2.0;
  const sim::InstanceResult hit =
      sim::ExecuteInstance(schedule, assignment, &faults);
  check::ValidateInstance(schedule, assignment, hit, &faults);
  EXPECT_TRUE(hit.faults_injected);
  EXPECT_GT(hit.overrun_ms, 0.0);
  EXPECT_GT(hit.failed_pe_hits, 0u);
  EXPECT_GT(hit.makespan_ms, clean.makespan_ms);
  EXPECT_GT(hit.energy_mj, clean.energy_mj);

  // The identity perturbation is bit-identical to no faults at all.
  InstanceFaults identity;
  const sim::InstanceResult same =
      sim::ExecuteInstance(schedule, assignment, &identity);
  EXPECT_EQ(std::memcmp(&same.energy_mj, &clean.energy_mj,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&same.makespan_ms, &clean.makespan_ms,
                        sizeof(double)),
            0);
}

TEST(DegradeOptionsValidate, RejectsBadKnobsOnlyWhenEnabled) {
  adaptive::DegradeOptions degrade;
  degrade.miss_burst = 0;  // ignored while disabled
  EXPECT_FALSE(degrade.Validate());
  degrade.enabled = true;
  EXPECT_TRUE(degrade.Validate());
  degrade.miss_burst = 2;
  EXPECT_FALSE(degrade.Validate());
  degrade.burst_window = 0;
  EXPECT_TRUE(degrade.Validate());
  degrade.burst_window = 8;
  degrade.panic_instances = 0;
  EXPECT_TRUE(degrade.Validate());
  degrade.panic_instances = 16;
  degrade.backoff_initial = 0;
  EXPECT_TRUE(degrade.Validate());
}

/// Everything one fault-injected adaptive run produced that the
/// determinism contract covers: summary aggregates (energy compared by
/// bits), the full escalation sequence, and the controller counters.
struct UnitOutcome {
  std::uint64_t energy_bits = 0;
  std::size_t misses = 0;
  std::size_t overruns = 0;
  std::size_t faulted = 0;
  std::size_t reschedules = 0;
  std::vector<std::string> escalations;

  bool operator==(const UnitOutcome& other) const {
    return energy_bits == other.energy_bits && misses == other.misses &&
           overruns == other.overruns && faulted == other.faulted &&
           reschedules == other.reschedules &&
           escalations == other.escalations;
  }
};

std::string TimelineKey(const obs::TimelineRow& row) {
  std::ostringstream key;
  key << row.unit << '|' << row.iteration << '|' << row.pe << '|'
      << row.active_tasks << '|' << row.busy_ms << '|'
      << row.mean_speed_ratio << '|' << row.reschedules;
  return key.str();
}

TEST(DegradeDeterminism, JobsOneVersusFourSameLadderAndTimeline) {
  // Mirror of the obs jobs-determinism test for the degradation ladder:
  // identical plan + seeds at --jobs 1 and --jobs 4 must produce
  // identical miss counts, escalation sequences and timeline rows.
  // Parallelism only ever runs *independent units* concurrently, so the
  // per-unit controller state machine must not notice the pool size.
  const apps::Fig1Example ex = apps::MakeFig1Example();
  const ctg::ActivationAnalysis analysis(ex.graph);
  constexpr std::size_t kUnits = 4;
  constexpr std::size_t kInstances = 300;

  const auto run = [&](std::size_t jobs) {
    obs::TraceSession session;
    runtime::Pool pool(jobs);
    const std::vector<UnitOutcome> outcomes = runtime::ParallelMap(
        pool, kUnits, [&](std::size_t unit) {
          const trace::BranchTrace vectors = bench::MakeFluctuatingVectors(
              ex.graph, kInstances, 100 + unit);
          const auto profile = vectors.ProfiledProbabilities(ex.graph);

          adaptive::AdaptiveOptions options;
          options.window_length = 20;
          options.threshold = 0.1;
          options.degrade.enabled = true;
          options.trace = &session;
          adaptive::AdaptiveController controller(
              ex.graph, analysis, ex.platform, profile, options);

          const Injector injector(FullPlan(), ex.graph, ex.platform,
                                  9000 + unit);
          const sim::RunSummary summary =
              adaptive::RunAdaptiveWithFaults(controller, vectors,
                                              injector);
          UnitOutcome outcome;
          std::memcpy(&outcome.energy_bits, &summary.total_energy_mj,
                      sizeof(double));
          outcome.misses = summary.deadline_misses;
          outcome.overruns = summary.overrun_instances;
          outcome.faulted = summary.faulted_instances;
          outcome.reschedules = controller.reschedule_count();
          for (const adaptive::DegradeEvent& event :
               controller.degrade_log()) {
            outcome.escalations.push_back(
                std::to_string(event.instance) + "|" +
                std::to_string(static_cast<int>(event.level)) + "|" +
                event.reason);
          }
          return outcome;
        });

    std::vector<std::string> timeline;
    for (const obs::TimelineRow& row : session.Timeline()) {
      timeline.push_back(TimelineKey(row));
    }
    std::sort(timeline.begin(), timeline.end());
    return std::make_pair(outcomes, timeline);
  };

  const auto sequential = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(sequential.first.size(), parallel.first.size());
  for (std::size_t u = 0; u < kUnits; ++u) {
    EXPECT_TRUE(sequential.first[u] == parallel.first[u]) << "unit " << u;
  }
  EXPECT_EQ(sequential.second, parallel.second);

  // The drive must actually exercise the ladder, or the test proves
  // nothing: some unit has to escalate.
  std::size_t total_escalations = 0;
  for (const UnitOutcome& outcome : sequential.first) {
    total_escalations += outcome.escalations.size();
  }
  EXPECT_GT(total_escalations, 0u);
}

}  // namespace
}  // namespace actg::faults
