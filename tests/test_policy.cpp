#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "apps/fig1_example.h"
#include "ctg/activation.h"
#include "dvfs/algorithms.h"
#include "dvfs/policy.h"
#include "dvfs/stretch.h"
#include "sched/dls.h"
#include "util/error.h"

namespace actg::dvfs {
namespace {

class PolicyFixture : public ::testing::Test {
 protected:
  PolicyFixture()
      : ex_(apps::MakeFig1Example()),
        analysis_(ex_.graph),
        probs_(apps::UniformProbabilities(ex_.graph)) {}

  sched::Schedule Scheduled() const {
    return sched::RunDls(ex_.graph, analysis_, ex_.platform, probs_);
  }

  apps::Fig1Example ex_;
  ctg::ActivationAnalysis analysis_;
  ctg::BranchProbabilities probs_;
};

void ExpectSameStretch(const sched::Schedule& a, const sched::Schedule& b) {
  ASSERT_EQ(a.graph().task_count(), b.graph().task_count());
  for (TaskId task : a.graph().TaskIds()) {
    EXPECT_EQ(a.placement(task).pe, b.placement(task).pe);
    EXPECT_DOUBLE_EQ(a.placement(task).speed_ratio,
                     b.placement(task).speed_ratio);
  }
  EXPECT_DOUBLE_EQ(a.Makespan(), b.Makespan());
}

TEST_F(PolicyFixture, RegistryListsBuiltins) {
  const std::vector<std::string> names = PolicyNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* name : {"nlp", "online", "proportional"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
    const Policy* policy = FindPolicy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->Name(), name);
    EXPECT_EQ(&GetPolicy(name), policy);
  }
}

TEST_F(PolicyFixture, UnknownPolicyIsReported) {
  EXPECT_EQ(FindPolicy("simulated-annealing"), nullptr);
  try {
    GetPolicy("simulated-annealing");
    FAIL() << "GetPolicy should throw on an unknown name";
  } catch (const InvalidArgument& e) {
    // The error lists the registered names so CLI users can recover.
    EXPECT_NE(std::string(e.what()).find("online"), std::string::npos);
  }
  sched::Schedule s = Scheduled();
  EXPECT_THROW(ApplyPolicy("simulated-annealing", s, probs_),
               InvalidArgument);
}

TEST_F(PolicyFixture, PoliciesMatchLegacyFreeFunctions) {
  // The registry is a re-packaging, not a re-implementation: each policy
  // must stretch bit-identically to the free function it wraps.
  struct Pair {
    const char* name;
    StretchStats (*legacy)(sched::Schedule&,
                           const ctg::BranchProbabilities&);
  };
  const Pair pairs[] = {
      {"online",
       [](sched::Schedule& s, const ctg::BranchProbabilities& p) {
         return StretchOnline(s, p);
       }},
      {"proportional",
       [](sched::Schedule& s, const ctg::BranchProbabilities&) {
         return StretchProportional(s);
       }},
      {"nlp",
       [](sched::Schedule& s, const ctg::BranchProbabilities& p) {
         return StretchNlp(s, p);
       }},
  };
  for (const Pair& pair : pairs) {
    SCOPED_TRACE(pair.name);
    sched::Schedule via_policy = Scheduled();
    sched::Schedule via_legacy = Scheduled();
    const StretchStats policy_stats =
        ApplyPolicy(pair.name, via_policy, probs_);
    const StretchStats legacy_stats = pair.legacy(via_legacy, probs_);
    ExpectSameStretch(via_policy, via_legacy);
    EXPECT_EQ(policy_stats.path_count, legacy_stats.path_count);
    EXPECT_DOUBLE_EQ(policy_stats.total_extension_ms,
                     legacy_stats.total_extension_ms);
    EXPECT_DOUBLE_EQ(policy_stats.max_path_delay_ms,
                     legacy_stats.max_path_delay_ms);
  }
}

TEST_F(PolicyFixture, ApplyPolicyWithExplicitEngineMatchesTransient) {
  PathEngine engine(ex_.graph, analysis_, ex_.platform);
  sched::Schedule pooled = Scheduled();
  sched::Schedule transient = Scheduled();
  ApplyPolicy("online", pooled, probs_, {}, &engine);
  ApplyPolicy("online", transient, probs_);
  ExpectSameStretch(pooled, transient);
}

TEST_F(PolicyFixture, RunWithPolicyMatchesNamedWrappers) {
  const sched::Schedule generic = RunWithPolicy(
      "online", ex_.graph, analysis_, ex_.platform, probs_);
  const sched::Schedule wrapper =
      RunOnlineAlgorithm(ex_.graph, analysis_, ex_.platform, probs_);
  ExpectSameStretch(generic, wrapper);
  EXPECT_THROW(RunWithPolicy("nope", ex_.graph, analysis_, ex_.platform,
                             probs_),
               InvalidArgument);
}

TEST_F(PolicyFixture, AdaptiveControllerRejectsUnknownPolicy) {
  adaptive::AdaptiveOptions options;
  options.policy = "nope";
  EXPECT_TRUE(static_cast<bool>(options.Validate()));
  EXPECT_THROW(adaptive::AdaptiveController(ex_.graph, analysis_,
                                            ex_.platform, probs_, options),
               InvalidArgument);
}

TEST_F(PolicyFixture, AdaptiveControllerHonorsSelectedPolicy) {
  // A proportional-policy controller must produce the proportional
  // stretch on its initial schedule.
  adaptive::AdaptiveOptions options;
  options.policy = "proportional";
  adaptive::AdaptiveController controller(ex_.graph, analysis_,
                                          ex_.platform, probs_, options);
  sched::Schedule expected = Scheduled();
  StretchProportional(expected);
  ExpectSameStretch(controller.current_schedule(), expected);
}

/// Custom policy used by the registration test: runs "proportional"
/// under a different name.
class EchoPolicy : public Policy {
 public:
  std::string_view Name() const override { return "test-echo"; }

 protected:
  StretchStats DoApply(PathEngine& engine,
                       PolicyContext& ctx) const override {
    return GetPolicy("proportional").Apply(engine, ctx);
  }
};

TEST_F(PolicyFixture, RegisterCustomPolicy) {
  if (FindPolicy("test-echo") == nullptr) {
    RegisterPolicy(std::make_unique<EchoPolicy>());
  }
  // Duplicate registration is rejected; the first stays installed.
  EXPECT_THROW(RegisterPolicy(std::make_unique<EchoPolicy>()),
               InvalidArgument);
  sched::Schedule via_custom = Scheduled();
  sched::Schedule via_builtin = Scheduled();
  ApplyPolicy("test-echo", via_custom, probs_);
  ApplyPolicy("proportional", via_builtin, probs_);
  ExpectSameStretch(via_custom, via_builtin);
}

/// Uniquely named no-op policies for the concurrency test below.
class NumberedPolicy : public Policy {
 public:
  explicit NumberedPolicy(std::string name) : name_(std::move(name)) {}
  std::string_view Name() const override { return name_; }

 protected:
  StretchStats DoApply(PathEngine& engine,
                       PolicyContext& ctx) const override {
    return GetPolicy("proportional").Apply(engine, ctx);
  }

 private:
  std::string name_;
};

TEST_F(PolicyFixture, RegistryIsThreadSafe) {
  // TSan regression (the tsan CI job runs this binary): writers
  // registering fresh policies race readers resolving/listing them.
  // Before the registry grew its mutex this was a data race on the map.
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kPerWriter = 16;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([w] {
      for (int i = 0; i < kPerWriter; ++i) {
        std::string name = "test-racer-" + std::to_string(w) + "-" +
                           std::to_string(i);
        if (FindPolicy(name) != nullptr) continue;  // re-run of the test
        RegisterPolicy(std::make_unique<NumberedPolicy>(std::move(name)));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([r] {
      for (int i = 0; i < kPerWriter * kWriters; ++i) {
        const std::string name = "test-racer-" + std::to_string(r) + "-" +
                                 std::to_string(i % kPerWriter);
        const Policy* policy = FindPolicy(name);
        if (policy != nullptr) EXPECT_EQ(policy->Name(), name);
        EXPECT_NE(&GetPolicy("online"), nullptr);
        EXPECT_GE(PolicyNames().size(), 3u);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every registration won (or was already present from a prior run).
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      const std::string name = "test-racer-" + std::to_string(w) + "-" +
                               std::to_string(i);
      EXPECT_NE(FindPolicy(name), nullptr) << name;
    }
  }
}

}  // namespace
}  // namespace actg::dvfs
