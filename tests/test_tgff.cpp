#include <gtest/gtest.h>

#include <tuple>

#include "ctg/activation.h"
#include "tgff/random_ctg.h"
#include "util/error.h"

namespace actg::tgff {
namespace {

// Parameter space sweep: (tasks, forks, pes, category, seed).
using CaseParam = std::tuple<int, int, int, Category, std::uint64_t>;

class RandomCtgSweep : public ::testing::TestWithParam<CaseParam> {};

TEST_P(RandomCtgSweep, ProducesExactCountsAndValidStructure) {
  const auto [tasks, forks, pes, category, seed] = GetParam();
  RandomCtgParams params;
  params.task_count = tasks;
  params.fork_count = forks;
  params.pe_count = pes;
  params.category = category;
  params.seed = seed;
  const RandomCase rc = MakeRandomCtg(params).value();

  // Exact (a/b/c) triplet, as the paper's tables require.
  EXPECT_EQ(rc.graph.task_count(), static_cast<std::size_t>(tasks));
  EXPECT_EQ(rc.graph.ForkIds().size(), static_cast<std::size_t>(forks));
  EXPECT_EQ(rc.platform.pe_count(), static_cast<std::size_t>(pes));
  EXPECT_EQ(rc.platform.task_count(), rc.graph.task_count());

  // Structure is a valid CTG (Build() already validated acyclicity etc.)
  // with every fork two-way.
  for (TaskId fork : rc.graph.ForkIds()) {
    EXPECT_EQ(rc.graph.OutcomeCount(fork), 2);
  }

  // Costs respect the configured ranges.
  for (TaskId task : rc.graph.TaskIds()) {
    for (PeId pe : rc.platform.PeIds()) {
      const double wcet = rc.platform.Wcet(task, pe);
      EXPECT_GE(wcet, params.wcet_min_ms * params.hetero_min - 1e-9);
      EXPECT_LE(wcet, params.wcet_max_ms * params.hetero_max + 1e-9);
      EXPECT_GT(rc.platform.Energy(task, pe), 0.0);
    }
  }
  for (EdgeId eid : rc.graph.EdgeIds()) {
    const double kb = rc.graph.edge(eid).comm_kbytes;
    EXPECT_GE(kb, params.comm_min_kb - 1e-9);
    EXPECT_LE(kb, params.comm_max_kb + 1e-9);
  }

  // Activation analysis succeeds and scenario probabilities total 1.
  const ctg::ActivationAnalysis analysis(rc.graph);
  ctg::BranchProbabilities probs(rc.graph.task_count());
  for (TaskId fork : rc.graph.ForkIds()) probs.Set(fork, {0.5, 0.5});
  const auto scenarios = analysis.EnumerateScenarios(probs);
  double total = 0.0;
  for (const auto& s : scenarios) total += s.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(RandomCtgSweep, CategoryStructureHolds) {
  const auto [tasks, forks, pes, category, seed] = GetParam();
  RandomCtgParams params;
  params.task_count = tasks;
  params.fork_count = forks;
  params.pe_count = pes;
  params.category = category;
  params.seed = seed;
  const RandomCase rc = MakeRandomCtg(params).value();

  std::size_t or_nodes = 0;
  for (TaskId t : rc.graph.TaskIds()) {
    if (rc.graph.task(t).join == ctg::JoinType::kOr) ++or_nodes;
  }
  if (category == Category::kForkJoin) {
    // Every conditional block rejoins through an or-node.
    EXPECT_EQ(or_nodes, static_cast<std::size_t>(forks));
    EXPECT_EQ(rc.graph.Sinks().size(), 1u);
  } else {
    // Category 2: no joins; each fork's arms run to their own sinks,
    // and no fork is nested under another (all fork guards are true).
    EXPECT_EQ(or_nodes, 0u);
    EXPECT_GE(rc.graph.Sinks().size(),
              static_cast<std::size_t>(forks + (forks > 0 ? 1 : 0)));
    const ctg::ActivationAnalysis analysis(rc.graph);
    for (TaskId fork : rc.graph.ForkIds()) {
      EXPECT_TRUE(analysis.ActivationGuard(fork).IsTrue());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperTriplets, RandomCtgSweep,
    ::testing::Combine(::testing::Values(15, 16, 25),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(3, 4),
                       ::testing::Values(Category::kForkJoin,
                                         Category::kFlat),
                       ::testing::Values(1u, 7u, 42u)));

TEST(RandomCtg, DeterministicInSeed) {
  RandomCtgParams params;
  params.task_count = 20;
  params.fork_count = 2;
  params.seed = 99;
  const RandomCase a = MakeRandomCtg(params).value();
  const RandomCase b = MakeRandomCtg(params).value();
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (EdgeId eid : a.graph.EdgeIds()) {
    EXPECT_EQ(a.graph.edge(eid).src, b.graph.edge(eid).src);
    EXPECT_EQ(a.graph.edge(eid).dst, b.graph.edge(eid).dst);
    EXPECT_DOUBLE_EQ(a.graph.edge(eid).comm_kbytes,
                     b.graph.edge(eid).comm_kbytes);
  }
  for (TaskId t : a.graph.TaskIds()) {
    for (PeId pe : a.platform.PeIds()) {
      EXPECT_DOUBLE_EQ(a.platform.Wcet(t, pe), b.platform.Wcet(t, pe));
    }
  }
}

TEST(RandomCtg, DifferentSeedsDiffer) {
  RandomCtgParams params;
  params.task_count = 20;
  params.fork_count = 2;
  params.seed = 1;
  const RandomCase a = MakeRandomCtg(params).value();
  params.seed = 2;
  const RandomCase b = MakeRandomCtg(params).value();
  bool differs = a.graph.edge_count() != b.graph.edge_count();
  if (!differs) {
    for (EdgeId eid : a.graph.EdgeIds()) {
      if (a.graph.edge(eid).src != b.graph.edge(eid).src ||
          std::abs(a.graph.edge(eid).comm_kbytes -
                   b.graph.edge(eid).comm_kbytes) > 1e-9) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RandomCtg, TooSmallBudgetRejected) {
  RandomCtgParams params;
  params.task_count = 5;
  params.fork_count = 3;  // needs >= 4*3+2 tasks in category 1
  const util::Expected<RandomCase> result = MakeRandomCtg(params);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("task"), std::string::npos);
}

TEST(RandomCtg, ZeroForksIsAPlainDag) {
  RandomCtgParams params;
  params.task_count = 12;
  params.fork_count = 0;
  const RandomCase rc = MakeRandomCtg(params).value();
  EXPECT_TRUE(rc.graph.ForkIds().empty());
  const ctg::ActivationAnalysis analysis(rc.graph);
  for (TaskId t : rc.graph.TaskIds()) {
    EXPECT_TRUE(analysis.ActivationGuard(t).IsTrue());
  }
}

TEST(RandomCtg, MinimalForkJoinCase) {
  RandomCtgParams params;
  params.task_count = 6;  // exactly MinBlockTasks(1) + entry + exit
  params.fork_count = 1;
  params.category = Category::kForkJoin;
  const RandomCase rc = MakeRandomCtg(params).value();
  EXPECT_EQ(rc.graph.task_count(), 6u);
  EXPECT_EQ(rc.graph.ForkIds().size(), 1u);
}

TEST(RandomCtg, NestedForksInCategory1) {
  // With many forks and a moderate budget at least one nesting occurs in
  // most seeds; assert that *some* seed produces a conditionally guarded
  // fork (i.e. true nesting).
  bool found_nested = false;
  for (std::uint64_t seed = 1; seed <= 20 && !found_nested; ++seed) {
    RandomCtgParams params;
    params.task_count = 25;
    params.fork_count = 3;
    params.category = Category::kForkJoin;
    params.seed = seed;
    const RandomCase rc = MakeRandomCtg(params).value();
    const ctg::ActivationAnalysis analysis(rc.graph);
    for (TaskId fork : rc.graph.ForkIds()) {
      if (!analysis.ActivationGuard(fork).IsTrue()) {
        found_nested = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_nested);
}

TEST(RandomCtgValidate, AcceptsDefaultsRejectsBadRanges) {
  EXPECT_TRUE(RandomCtgParams{}.Validate().ok());

  RandomCtgParams bad_counts;
  bad_counts.task_count = 0;
  EXPECT_FALSE(bad_counts.Validate().ok());

  RandomCtgParams bad_wcet;
  bad_wcet.wcet_min_ms = 10.0;
  bad_wcet.wcet_max_ms = 5.0;  // inverted range
  const util::Error err = bad_wcet.Validate();
  EXPECT_TRUE(static_cast<bool>(err));
  EXPECT_FALSE(err.message().empty());

  RandomCtgParams bad_speed;
  bad_speed.min_speed_ratio = 0.0;
  EXPECT_FALSE(bad_speed.Validate().ok());
}

TEST(RandomCtgValidate, MakeRandomCtgPropagatesTheError) {
  RandomCtgParams params;
  params.task_count = 5;
  params.fork_count = 3;
  const util::Expected<RandomCase> result = MakeRandomCtg(params);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error().message(), params.Validate().message());

  params.task_count = 20;
  EXPECT_TRUE(MakeRandomCtg(params).ok());
}

}  // namespace
}  // namespace actg::tgff
