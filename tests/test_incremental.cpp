#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "adaptive/rescheduler.h"
#include "apps/common.h"
#include "check/fuzz.h"
#include "check/validator.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "dvfs/schedule_table.h"
#include "runtime/metrics.h"
#include "runtime/pool.h"
#include "runtime/schedule_cache.h"
#include "sched/dls.h"
#include "sched/incremental.h"
#include "tgff/random_ctg.h"
#include "util/error.h"
#include "util/rng.h"

namespace actg {
namespace {

// ---------------------------------------------------------------------------
// Helpers

bool SamePlacements(const ctg::Ctg& graph, const sched::Schedule& a,
                    const sched::Schedule& b) {
  for (TaskId task : graph.TaskIds()) {
    const sched::TaskPlacement& pa = a.placement(task);
    const sched::TaskPlacement& pb = b.placement(task);
    if (pa.pe != pb.pe || pa.order_index != pb.order_index ||
        pa.speed_ratio != pb.speed_ratio || pa.start_ms != pb.start_ms ||
        pa.finish_ms != pb.finish_ms) {
      return false;
    }
  }
  return true;
}

/// \p base with \p fork's leading outcome probability replaced by \p p
/// (remaining mass spread uniformly).
ctg::BranchProbabilities WithForkAt(const ctg::Ctg& graph,
                                    const ctg::BranchProbabilities& base,
                                    TaskId fork, double p) {
  ctg::BranchProbabilities probs = base;
  const auto outcomes = static_cast<std::size_t>(graph.OutcomeCount(fork));
  std::vector<double> dist(outcomes, (1.0 - p) / (outcomes - 1));
  dist[0] = p;
  probs.Set(fork, std::move(dist));
  return probs;
}

sched::DlsOptions CaseDlsOptions(const check::FuzzCase& c) {
  sched::DlsOptions options;
  options.mutex_aware = c.mutex_aware;
  options.level_policy = c.prob_weighted
                             ? sched::LevelPolicy::kProbabilityWeighted
                             : sched::LevelPolicy::kWorstCase;
  options.available_pes = arch::PeMask::WithoutBits(c.masked_pes);
  return options;
}

/// A mid-size fork-join case shared by the facade tests.
struct FacadeCase {
  tgff::RandomCase rc;
  ctg::Ctg& graph;
  const arch::Platform& platform;
  std::optional<ctg::ActivationAnalysis> analysis;
  ctg::BranchProbabilities base;
  TaskId fork;

  static tgff::RandomCase MakeCase(std::uint64_t seed) {
    tgff::RandomCtgParams params;
    params.task_count = 24;
    params.pe_count = 3;
    params.fork_count = 3;
    params.category = tgff::Category::kForkJoin;
    params.seed = seed;
    return tgff::MakeRandomCtg(params).value();
  }

  explicit FacadeCase(std::uint64_t seed = 7)
      : rc(MakeCase(seed)), graph(rc.graph), platform(rc.platform) {
    apps::AssignDeadline(graph, platform, 1.5);
    analysis.emplace(graph);
    base = apps::UniformProbabilities(graph);
    // Oscillate the fork with the smallest dirty region, so the warm
    // tiers genuinely engage instead of falling back on ratio.
    fork = graph.ForkIds().front();
    std::size_t best = graph.task_count() + 1;
    for (TaskId candidate : graph.ForkIds()) {
      const sched::IncrementalDelta delta = sched::ComputeDirtyRegion(
          graph, *analysis, base, WithForkAt(graph, base, candidate, 0.9));
      if (delta.dirty_count < best) {
        best = delta.dirty_count;
        fork = candidate;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Differential suite: incremental DLS vs full DLS over fuzzed cases

// The ISSUE-level contract of RunIncrementalDls, checked across >= 1k
// fuzzed (graph, prob-delta) cases drawn from the actg_fuzz spec
// stream: every result passes the oracle, clean tasks keep their basis
// PE (the documented feasible-equivalence), and a fallback is
// bit-identical to calling RunDls directly.
TEST(IncrementalDifferential, MatchesFullDlsAcrossFuzzedProbDeltas) {
  const util::Random root(2026);
  constexpr std::uint64_t kCases = 1024;
  std::size_t warm_runs = 0;
  std::size_t fallbacks = 0;

  for (std::uint64_t i = 0; i < kCases; ++i) {
    const check::FuzzCaseSpec spec = check::RandomSpec(root, i);
    const check::FuzzCase c = check::Materialize(spec);
    const ctg::ActivationAnalysis analysis(c.graph);
    const sched::DlsOptions options = CaseDlsOptions(c);
    const ctg::BranchProbabilities before =
        check::CaseProbabilities(c.graph, spec.prob_seed);

    // Prob-delta: nudge one fork's distribution (or none, when the
    // graph is fork-free — the empty-delta degenerate case).
    util::Random rng = root.Fork(kCases + i);
    ctg::BranchProbabilities after = before;
    if (!c.graph.ForkIds().empty()) {
      const auto& forks = c.graph.ForkIds();
      const TaskId fork = forks[i % forks.size()];
      after = WithForkAt(c.graph, before, fork, rng.Uniform(0.05, 0.95));
    }

    const sched::Schedule basis =
        sched::RunDls(c.graph, analysis, c.platform, before, options);
    const sched::IncrementalDelta delta =
        sched::ComputeDirtyRegion(c.graph, analysis, before, after);
    const sched::IncrementalResult inc = sched::RunIncrementalDls(
        c.graph, analysis, c.platform, after, sched::MappingOf(basis),
        delta, options, 0.5);

    // Always oracle-valid, whatever tier produced it.
    check::Expectations expect;
    expect.available_pes = options.available_pes;
    ASSERT_NO_THROW(check::Validate(inc.schedule, expect))
        << "case " << i << " fell_back=" << inc.fell_back;
    ASSERT_EQ(inc.dirty_count, delta.dirty_count) << "case " << i;

    const sched::Schedule full =
        sched::RunDls(c.graph, analysis, c.platform, after, options);
    if (inc.fell_back) {
      // Fallback contract: bit-identical to the direct full run.
      ASSERT_TRUE(SamePlacements(c.graph, inc.schedule, full))
          << "case " << i;
      ++fallbacks;
    } else {
      // Feasible-equivalence contract: clean tasks keep the basis PE.
      for (TaskId task : c.graph.TaskIds()) {
        if (delta.dirty[task.index()] == 0) {
          ASSERT_EQ(inc.schedule.placement(task).pe,
                    basis.placement(task).pe)
              << "case " << i << " task " << task.index();
        }
      }
      ++warm_runs;
    }

    // An empty delta degenerates to a fully pinned run that reproduces
    // the basis schedule exactly.
    const sched::IncrementalDelta none =
        sched::ComputeDirtyRegion(c.graph, analysis, before, before);
    ASSERT_EQ(none.dirty_count, 0u);
    const sched::IncrementalResult pinned = sched::RunIncrementalDls(
        c.graph, analysis, c.platform, before, sched::MappingOf(basis),
        none, options, 0.5);
    ASSERT_FALSE(pinned.fell_back);
    ASSERT_TRUE(SamePlacements(c.graph, pinned.schedule, basis))
        << "case " << i;
  }

  // The stream must genuinely exercise both paths, not trivially fall
  // back (or trivially pin) everywhere.
  EXPECT_GE(warm_runs, 200u);
  EXPECT_GE(fallbacks, 50u);
}

TEST(IncrementalDifferential, TinyDirtyRatioForcesBitIdenticalFallback) {
  const FacadeCase fc;
  const sched::DlsOptions options;
  const sched::Schedule basis = sched::RunDls(
      fc.graph, *fc.analysis, fc.platform, fc.base, options);
  const ctg::BranchProbabilities after =
      WithForkAt(fc.graph, fc.base, fc.fork, 0.9);
  const sched::IncrementalDelta delta =
      sched::ComputeDirtyRegion(fc.graph, *fc.analysis, fc.base, after);
  ASSERT_GT(delta.dirty_count, 0u);

  const sched::IncrementalResult inc = sched::RunIncrementalDls(
      fc.graph, *fc.analysis, fc.platform, after, sched::MappingOf(basis),
      delta, options, 1e-9);
  EXPECT_TRUE(inc.fell_back);
  const sched::Schedule full = sched::RunDls(
      fc.graph, *fc.analysis, fc.platform, after, options);
  EXPECT_TRUE(SamePlacements(fc.graph, inc.schedule, full));
}

// ---------------------------------------------------------------------------
// Facade: warm tiers through adaptive::Rescheduler

// Repeating the same operating point without a cache routes through the
// warm-prior rung with an *empty* dirty region — which must reproduce
// the prior result bit-for-bit (the replayed stretch re-quantizes to
// the identical speed trajectory).
TEST(Rescheduler, EmptyDeltaWarmStartIsBitIdentical) {
  const FacadeCase fc;
  adaptive::ReschedulerConfig config;
  config.reschedule.mode = adaptive::RescheduleMode::kIncremental;
  runtime::Metrics metrics;
  config.metrics = &metrics;
  adaptive::Rescheduler rescheduler(fc.graph, *fc.analysis, fc.platform,
                                    config);

  const adaptive::RescheduleRequest req{config.dls.available_pes, 0.0,
                                        "test"};
  const adaptive::RescheduleResult first =
      rescheduler.Reschedule(fc.base, req);
  EXPECT_EQ(first.tier, adaptive::RescheduleTier::kFull);
  const adaptive::RescheduleResult again =
      rescheduler.Reschedule(fc.base, req);
  EXPECT_EQ(again.tier, adaptive::RescheduleTier::kWarmPrior);
  EXPECT_TRUE(SamePlacements(fc.graph, again.schedule, first.schedule));
  EXPECT_DOUBLE_EQ(again.stretch.max_path_delay_ms,
                   first.stretch.max_path_delay_ms);
}

// Oscillating operating points: every warm-started result must stay
// oracle-valid and deadline-feasible, with the differential verifier
// armed so each one is also diffed against a from-scratch recompute.
TEST(Rescheduler, WarmResultsStayFeasibleUnderDrift) {
  const FacadeCase fc;
  adaptive::ReschedulerConfig config;
  config.reschedule.mode = adaptive::RescheduleMode::kIncremental;
  config.reschedule.max_dirty_ratio = 0.9;
  config.reschedule.verify_incremental = true;
  config.validate_schedules = true;
  runtime::Metrics metrics;
  runtime::ScheduleCache cache(runtime::ScheduleCacheOptions{}, &metrics);
  config.cache = runtime::CacheBinding{&cache, 0};
  config.metrics = &metrics;
  adaptive::Rescheduler rescheduler(fc.graph, *fc.analysis, fc.platform,
                                    config);

  const adaptive::RescheduleRequest req{config.dls.available_pes, 0.0,
                                        "test"};
  for (int i = 0; i < 24; ++i) {
    const double p = 0.5 + 0.4 * std::sin(0.7 * i);
    const adaptive::RescheduleResult r =
        rescheduler.Reschedule(WithForkAt(fc.graph, fc.base, fc.fork, p),
                               req);
    EXPECT_LE(r.stretch.max_path_delay_ms,
              fc.graph.deadline_ms() * (1.0 + 1e-9));
  }
  const adaptive::TierCounts& tiers = rescheduler.tier_counts();
  EXPECT_GT(tiers.warm_cache + tiers.warm_prior, 0u);
  EXPECT_EQ(tiers.total(), 24u);
  // The verifier ran on every warm-started result and recorded the
  // energy drift of the feasible-equivalent schedule.
  EXPECT_EQ(metrics.samples("resched.verify.energy_ratio"),
            tiers.warm_cache + tiers.warm_prior);
}

// The debug oracle must be a pure observer: running the same drift
// sequence with validate_schedules + verify_incremental on and off has
// to produce bit-identical schedules, stretches and tier decisions.
// (Regression: the differential verifier once recomputed through the
// rescheduler's own PathEngine, perturbing its incremental state.)
TEST(Rescheduler, DebugOracleIsSideEffectFree) {
  std::vector<adaptive::RescheduleResult> runs[2];
  adaptive::TierCounts tiers[2];
  for (int armed = 0; armed < 2; ++armed) {
    const FacadeCase fc;
    adaptive::ReschedulerConfig config;
    config.reschedule.mode = adaptive::RescheduleMode::kIncremental;
    config.reschedule.max_dirty_ratio = 0.9;
    config.reschedule.verify_incremental = armed == 1;
    config.validate_schedules = armed == 1;
    runtime::Metrics metrics;
    runtime::ScheduleCache cache(runtime::ScheduleCacheOptions{},
                                 &metrics);
    config.cache = runtime::CacheBinding{&cache, 0};
    config.metrics = &metrics;
    adaptive::Rescheduler rescheduler(fc.graph, *fc.analysis,
                                      fc.platform, config);
    const adaptive::RescheduleRequest req{config.dls.available_pes, 0.0,
                                          "test"};
    for (int i = 0; i < 24; ++i) {
      const double p = 0.5 + 0.4 * std::sin(0.7 * i);
      runs[armed].push_back(rescheduler.Reschedule(
          WithForkAt(fc.graph, fc.base, fc.fork, p), req));
    }
    tiers[armed] = rescheduler.tier_counts();
  }

  const FacadeCase fc;
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].tier, runs[1][i].tier) << "step " << i;
    EXPECT_TRUE(SamePlacements(fc.graph, runs[0][i].schedule,
                               runs[1][i].schedule))
        << "step " << i;
    EXPECT_EQ(runs[0][i].stretch.max_path_delay_ms,
              runs[1][i].stretch.max_path_delay_ms)
        << "step " << i;
    EXPECT_EQ(runs[0][i].stretch.total_extension_ms,
              runs[1][i].stretch.total_extension_ms)
        << "step " << i;
  }
  EXPECT_EQ(tiers[0].warm_cache, tiers[1].warm_cache);
  EXPECT_EQ(tiers[0].warm_prior, tiers[1].warm_prior);
  EXPECT_EQ(tiers[0].full, tiers[1].full);
  // The armed run actually exercised the oracle on warm results.
  EXPECT_GT(tiers[1].warm_cache + tiers[1].warm_prior, 0u);
}

// A degraded request (restricted mask) must bypass the cache and the
// warm tiers entirely: the key encodes neither constraint.
TEST(Rescheduler, DegradedRequestBypassesCacheAndWarmTiers) {
  const FacadeCase fc;
  adaptive::ReschedulerConfig config;
  config.reschedule.mode = adaptive::RescheduleMode::kIncremental;
  runtime::Metrics metrics;
  runtime::ScheduleCache cache(runtime::ScheduleCacheOptions{}, &metrics);
  config.cache = runtime::CacheBinding{&cache, 0};
  config.metrics = &metrics;
  adaptive::Rescheduler rescheduler(fc.graph, *fc.analysis, fc.platform,
                                    config);

  adaptive::RescheduleRequest degraded{
      config.dls.available_pes.Without(PeId{0}), 0.0, "degraded"};
  for (int i = 0; i < 3; ++i) {
    const adaptive::RescheduleResult r =
        rescheduler.Reschedule(fc.base, degraded);
    EXPECT_EQ(r.tier, adaptive::RescheduleTier::kFull);
    for (TaskId task : fc.graph.TaskIds()) {
      EXPECT_NE(r.schedule.placement(task).pe, PeId{0});
    }
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(rescheduler.tier_counts().full, 3u);
}

// ---------------------------------------------------------------------------
// Tier-2 warm-start determinism: --jobs 1 vs --jobs 8

// Eight independent reschedulers (each with its own cache, so the
// tier-2 near-hit path engages) driven over per-instance oscillating
// traces must produce byte-identical schedules whether they run
// serially or across an 8-worker pool — the pool contract (results by
// index, not completion order) applied to the warm-start path.
TEST(Rescheduler, WarmStartDeterministicAcrossJobCounts) {
  const FacadeCase fc;
  constexpr std::size_t kInstances = 8;
  constexpr int kSteps = 12;

  struct InstanceResult {
    std::vector<sched::Schedule> schedules;
    adaptive::TierCounts tiers;
  };
  const auto run_instance = [&](std::size_t k) {
    adaptive::ReschedulerConfig config;
    config.reschedule.mode = adaptive::RescheduleMode::kIncremental;
    config.reschedule.max_dirty_ratio = 0.9;
    runtime::Metrics metrics;
    runtime::ScheduleCache cache(runtime::ScheduleCacheOptions{},
                                 &metrics);
    config.cache = runtime::CacheBinding{&cache, k};
    config.metrics = &metrics;
    adaptive::Rescheduler rescheduler(fc.graph, *fc.analysis, fc.platform,
                                      config);
    const adaptive::RescheduleRequest req{config.dls.available_pes, 0.0,
                                          "test"};
    InstanceResult out;
    for (int i = 0; i < kSteps; ++i) {
      const double p =
          0.5 + 0.4 * std::sin(0.7 * i + 0.3 * static_cast<double>(k));
      out.schedules.push_back(
          rescheduler
              .Reschedule(WithForkAt(fc.graph, fc.base, fc.fork, p), req)
              .schedule);
    }
    out.tiers = rescheduler.tier_counts();
    return out;
  };

  // --jobs 1 reference: strictly serial.
  std::vector<InstanceResult> serial;
  serial.reserve(kInstances);
  for (std::size_t k = 0; k < kInstances; ++k) {
    serial.push_back(run_instance(k));
  }
  // The trace must exercise the warm tiers, or this test proves nothing.
  ASSERT_GT(serial[0].tiers.warm_cache + serial[0].tiers.warm_prior, 0u);

  // --jobs 8: same instances across a worker pool.
  std::vector<InstanceResult> parallel(kInstances);
  runtime::Pool pool(8);
  pool.ParallelFor(kInstances,
                   [&](std::size_t k) { parallel[k] = run_instance(k); });

  for (std::size_t k = 0; k < kInstances; ++k) {
    ASSERT_EQ(serial[k].schedules.size(), parallel[k].schedules.size());
    EXPECT_EQ(serial[k].tiers.total(), parallel[k].tiers.total());
    EXPECT_EQ(serial[k].tiers.warm_cache, parallel[k].tiers.warm_cache);
    EXPECT_EQ(serial[k].tiers.warm_prior, parallel[k].tiers.warm_prior);
    for (int i = 0; i < kSteps; ++i) {
      EXPECT_TRUE(SamePlacements(fc.graph, serial[k].schedules[i],
                                 parallel[k].schedules[i]))
          << "instance " << k << " step " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Table mode

// Select must agree with a brute-force nearest-lattice scan under the
// documented metric (max-abs over the flattened vector, lowest index on
// ties), and a query *at* a lattice point must materialize that entry's
// schedule bit-identically (no interpolation at distance zero).
TEST(ScheduleTableMode, SelectMatchesBruteForceNearestLattice) {
  const FacadeCase fc;
  dvfs::ScheduleTableOptions options;
  options.points_per_fork = 3;
  const dvfs::ScheduleTable table(fc.graph, *fc.analysis, fc.platform,
                                  options);
  ASSERT_GT(table.size(), 0u);

  const auto distance = [&](const ctg::BranchProbabilities& probs,
                            const dvfs::ScheduleTableEntry& entry) {
    double dist = 0.0;
    std::size_t i = 0;
    for (TaskId fork : fc.graph.ForkIds()) {
      for (int o = 0; o < fc.graph.OutcomeCount(fork); ++o) {
        dist = std::max(dist,
                        std::abs(probs.Outcome(fork, o) - entry.flat[i]));
        ++i;
      }
    }
    return dist;
  };

  util::Random rng(11);
  for (int q = 0; q < 64; ++q) {
    ctg::BranchProbabilities probs = fc.base;
    for (TaskId fork : fc.graph.ForkIds()) {
      probs = WithForkAt(fc.graph, probs, fork, rng.Uniform(0.05, 0.95));
    }
    std::size_t best = 0;
    double best_dist = distance(probs, table.entry(0));
    for (std::size_t i = 1; i < table.size(); ++i) {
      const double dist = distance(probs, table.entry(i));
      if (dist < best_dist) {  // strict: ties keep the lowest index
        best_dist = dist;
        best = i;
      }
    }
    EXPECT_EQ(table.Select(probs), best) << "query " << q;
  }

  // At a lattice point the materialized schedule is the entry itself.
  for (std::size_t i = 0; i < table.size(); i += 3) {
    const dvfs::MaterializedSchedule m =
        table.Materialize(table.entry(i).probs);
    EXPECT_EQ(m.entry_index, i);
    EXPECT_FALSE(m.interpolated);
    EXPECT_TRUE(
        SamePlacements(fc.graph, m.schedule, table.entry(i).schedule));
  }
}

// Off-lattice queries may interpolate; the blend must stay
// deadline-feasible and oracle-valid (the convexity argument of
// schedule_table.h).
TEST(ScheduleTableMode, MaterializedSchedulesStayFeasible) {
  const FacadeCase fc;
  dvfs::ScheduleTableOptions options;
  options.points_per_fork = 3;
  const dvfs::ScheduleTable table(fc.graph, *fc.analysis, fc.platform,
                                  options);

  util::Random rng(12);
  for (int q = 0; q < 16; ++q) {
    ctg::BranchProbabilities probs = fc.base;
    for (TaskId fork : fc.graph.ForkIds()) {
      probs = WithForkAt(fc.graph, probs, fork, rng.Uniform(0.05, 0.95));
    }
    const dvfs::MaterializedSchedule m = table.Materialize(probs);
    check::Expectations expect;
    expect.deadline_feasible = true;
    ASSERT_NO_THROW(check::Validate(m.schedule, expect)) << "query " << q;
  }
}

// The facade's table tier agrees with querying the table directly.
TEST(ScheduleTableMode, FacadeTableTierMatchesDirectMaterialize) {
  const FacadeCase fc;
  dvfs::ScheduleTableOptions toptions;
  toptions.points_per_fork = 3;
  const dvfs::ScheduleTable table(fc.graph, *fc.analysis, fc.platform,
                                  toptions);

  adaptive::ReschedulerConfig config;
  config.reschedule.mode = adaptive::RescheduleMode::kTable;
  config.reschedule.table = &table;
  runtime::Metrics metrics;
  config.metrics = &metrics;
  adaptive::Rescheduler rescheduler(fc.graph, *fc.analysis, fc.platform,
                                    config);
  const adaptive::RescheduleRequest req{config.dls.available_pes, 0.0,
                                        "test"};

  const ctg::BranchProbabilities probs =
      WithForkAt(fc.graph, fc.base, fc.fork, 0.7);
  const adaptive::RescheduleResult r = rescheduler.Reschedule(probs, req);
  EXPECT_EQ(r.tier, adaptive::RescheduleTier::kTable);
  const dvfs::MaterializedSchedule m = table.Materialize(probs);
  EXPECT_TRUE(SamePlacements(fc.graph, r.schedule, m.schedule));
}

// ---------------------------------------------------------------------------
// Options validation

TEST(RescheduleOptionsValidate, RejectsBadKnobs) {
  adaptive::RescheduleOptions options;
  EXPECT_TRUE(options.Validate().ok());

  options.max_dirty_ratio = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options.max_dirty_ratio = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.max_dirty_ratio = 0.5;

  options.mode = adaptive::RescheduleMode::kTable;
  EXPECT_FALSE(options.Validate().ok()) << "table mode needs a table";
}

TEST(RescheduleOptionsValidate, ModeNamesRoundTrip) {
  using adaptive::RescheduleMode;
  for (const RescheduleMode mode :
       {RescheduleMode::kFull, RescheduleMode::kIncremental,
        RescheduleMode::kTable}) {
    EXPECT_EQ(adaptive::ParseRescheduleMode(
                  adaptive::RescheduleModeName(mode)),
              mode);
  }
  EXPECT_FALSE(adaptive::ParseRescheduleMode("warp").has_value());
}

TEST(ReschedulerConfigValidate, RejectsUnknownPolicy) {
  const FacadeCase fc;
  adaptive::ReschedulerConfig config;
  config.policy = "no-such-policy";
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_THROW(adaptive::Rescheduler(fc.graph, *fc.analysis, fc.platform,
                                     config),
               actg::Error);
}

TEST(ScheduleTableOptionsValidate, RejectsDegenerateLattice) {
  dvfs::ScheduleTableOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.points_per_fork = 1;
  EXPECT_FALSE(options.Validate().ok());
  options.points_per_fork = 5;
  options.max_entries = 0;
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace actg
