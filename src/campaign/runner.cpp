#include "campaign/runner.h"

#include <chrono>
#include <fstream>
#include <iomanip>
#include <map>
#include <mutex>
#include <new>
#include <optional>
#include <thread>
#include <utility>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "campaign/checkpoint.h"
#include "check/fuzz.h"
#include "check/validator.h"
#include "faults/injector.h"
#include "runtime/pool.h"
#include "runtime/schedule_cache.h"
#include "sim/executor.h"
#include "trace/trace.h"
#include "util/atomic_file.h"
#include "util/rng.h"

namespace actg::campaign {

namespace {

void MergeTiers(adaptive::TierCounts& into,
                const adaptive::TierCounts& from) {
  into.exact += from.exact;
  into.warm_cache += from.warm_cache;
  into.warm_prior += from.warm_prior;
  into.table += from.table;
  into.full += from.full;
  into.incremental_fallbacks += from.incremental_fallbacks;
}

/// Fault-injector seed of instance i: a pure function of (spec, i),
/// drawn from the instance's Fork(2) substream so no other consumer of
/// the substream tree can collide with it.
std::uint64_t FaultSeed(const util::Random& instance_rng) {
  return instance_rng.Fork(2).engine().Next();
}

/// The axes of population cell \p c, workload-fastest.
CellKey KeyOf(const CampaignSpec& spec, std::size_t c) {
  CellKey key;
  key.workload = spec.workloads[c % spec.workloads.size()];
  c /= spec.workloads.size();
  key.policy = spec.policies[c % spec.policies.size()];
  c /= spec.policies.size();
  key.mode = spec.modes[c % spec.modes.size()];
  c /= spec.modes.size();
  key.storm = spec.storms[c].name;
  return key;
}

runtime::ScheduleCacheOptions ScheduleCacheOptionsFor(
    const CampaignSpec& spec) {
  runtime::ScheduleCacheOptions options;
  options.capacity = spec.cache_capacity;
  return options;
}

/// Distinguished failure classes of one instance attempt, mapped to
/// QuarantineRecord::reason. Local types (not check::/actg:: ones) so
/// the classification can never be confused with an exception escaping
/// the pipeline itself.
class PoisonError : public Error {
 public:
  using Error::Error;
};
class OracleError : public Error {
 public:
  using Error::Error;
};
class BudgetError : public Error {
 public:
  using Error::Error;
};

/// Quarantine records and checkpoint lines are single-line formats.
std::string SingleLine(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return text;
}

/// Emits a replayable fuzzcase for quarantined instance \p i: the
/// instance's graph/platform/policy/mode/fault plan with its substream
/// seeds, plus a comment header carrying the campaign repro coordinates
/// (actg_fuzz --replay skips '#' lines). A failed write only loses the
/// artifact — it never fails the campaign.
void EmitRepro(const CampaignSpec& spec, const CampaignOptions& options,
               std::size_t i, const CellKey& key,
               const apps::TenantModel& model,
               const faults::FaultPlan& plan, const util::Random& rng,
               const QuarantineRecord& rec) {
  if (options.quarantine_dir.empty()) return;
  check::FuzzCase c{model.graph(), model.platform()};
  c.policy = key.policy;
  c.reschedule_mode = key.mode;
  c.adaptive = true;
  c.trace_instances = spec.trace_instances;
  c.prob_seed = rng.Fork(3).engine().Next();
  c.faults = plan;
  c.faults.seed = FaultSeed(rng);
  c.with_faults = !plan.Empty();
  util::AtomicFile file(options.quarantine_dir + "/quarantine-" +
                        std::to_string(spec.seed) + "-" +
                        std::to_string(i) + ".fuzzcase");
  if (!file.ok()) return;
  file.os() << "# campaign quarantine repro: seed " << spec.seed
            << " index " << i << " cell " << key.Label() << "\n";
  file.os() << "# reason " << rec.reason << " attempts " << rec.attempts
            << " detail " << rec.detail << "\n";
  check::WriteRepro(file.os(), c);
  (void)file.Commit();
}

void RunShard(const CampaignSpec& spec, const CampaignOptions& options,
              std::size_t shard, ShardOutput& out) {
  const auto [begin, end] =
      Campaign::ShardRange(spec.instances, spec.shards, shard);
  out.exec.begin = begin;
  out.exec.end = end;
  out.metrics = std::make_unique<runtime::Metrics>();
  const std::size_t cells = spec.CellCount();
  out.cells.assign(cells, CellStats(spec));

  runtime::ScheduleCache shared_cache(
      ScheduleCacheOptionsFor(spec), out.metrics.get());
  // Model construction is the expensive part of an instance; instances
  // cycle through workloads x model_seeds structures, so the shard
  // memoizes them — (workload, model seed) pairs build equal models, so
  // memoization never changes a result.
  std::map<std::pair<int, std::uint64_t>,
           std::unique_ptr<apps::TenantModel>>
      models;
  const util::Random root(spec.seed);

  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t c = i % cells;
    const CellKey key = KeyOf(spec, c);
    const std::size_t group = (i / cells) % spec.model_seeds;
    const std::uint64_t model_seed =
        spec.seed + static_cast<std::uint64_t>(group);
    auto& model = models[{static_cast<int>(key.workload), model_seed}];
    if (model == nullptr) {
      model = std::make_unique<apps::TenantModel>(key.workload, model_seed);
    }

    // The instance's substream tree: everything stochastic about
    // instance i forks from Random(seed).Fork(i), never from shared
    // state, so the result is a pure function of (spec, i).
    const util::Random rng = root.Fork(i);
    const faults::FaultPlan plan =
        spec.storms[c / (spec.workloads.size() * spec.policies.size() *
                         spec.modes.size())]
            .Plan();

    // One attempt simulates the whole instance into *scratch* state,
    // merged into the shard slot only on success. The merge is
    // bit-exactly equivalent to accumulating directly (the
    // accumulators' merge law), and a quarantined attempt leaves no
    // trace in the population stats — transactional accumulation.
    auto attempt_once = [&](CellStats& cell, adaptive::TierCounts& tiers,
                            bool& sampled_out, bool& oracle_out) {
      if (spec.poison_every != 0 && (i + 1) % spec.poison_every == 0) {
        throw PoisonError("injected campaign poison (instance " +
                          std::to_string(i) + ")");
      }
      const trace::BranchTrace trace =
          model->MakeTrace(spec.trace_instances, rng.Fork(0));
      const bool sampled = rng.Fork(1).Bernoulli(spec.oracle_rate);
      // Forced first-instance check: every shard re-verifies at least
      // one of its instances against the oracle. Execution data — the
      // sampled draw alone feeds the population section.
      const bool oracle = sampled || i == begin;
      sampled_out = sampled;
      oracle_out = oracle;

      adaptive::AdaptiveOptions aopts;
      aopts.window_length = spec.window;
      aopts.threshold = spec.threshold;
      aopts.policy = key.policy;
      aopts.reschedule.mode = key.mode;
      // share_cache pools every instance into one shard-wide key space
      // so cross-instance exact hits do the heavy lifting — which
      // couples an instance's outcome to the shard-mates that filled
      // the cache. The control arm gives each instance a private cache
      // instead: its own keys AND its own LRU budget, so hit/miss
      // patterns (and therefore the result) stay a pure function of
      // (spec, i).
      std::optional<runtime::ScheduleCache> private_cache;
      if (!spec.share_cache) {
        private_cache.emplace(ScheduleCacheOptionsFor(spec),
                              out.metrics.get());
      }
      aopts.cache = runtime::CacheBinding{
          spec.share_cache ? &shared_cache : &*private_cache,
          spec.share_cache ? 0 : static_cast<std::uint64_t>(i) + 1};
      aopts.metrics = out.metrics.get();
      aopts.degrade.enabled = spec.degrade;
      // In-controller schedule validation keys off the instance's own
      // substream draw, never the shard-relative position. Arming it
      // is side-effect-free: the rescheduler's debug oracle runs its
      // reference recompute on a private scratch engine, so produced
      // schedules are bit-identical with validation on or off (the
      // regression test test_adaptive pins this).
      aopts.validate_schedules = oracle;
      adaptive::AdaptiveController controller(
          model->graph(), model->analysis(), model->platform(),
          apps::UniformProbabilities(model->graph()), aopts);

      std::optional<faults::Injector> injector;
      if (!plan.Empty()) {
        injector.emplace(plan, model->graph(), model->platform(),
                         FaultSeed(rng));
      }

      double app_energy = 0.0;
      for (std::size_t t = 0; t < trace.size(); ++t) {
        ctg::BranchAssignment assignment = trace.At(t);
        faults::InstanceFaults instance_faults;
        const faults::InstanceFaults* f = nullptr;
        if (injector.has_value()) {
          instance_faults = injector->ForInstance(t);
          injector->ApplyDrift(t, assignment);
          f = &instance_faults;
        }
        // ProcessInstance executes against the *current* schedule, then
        // adapts — so the oracle must capture the schedule before the
        // call to re-verify what actually executed.
        std::optional<sched::Schedule> executed;
        if (oracle) executed = controller.current_schedule();
        const sim::InstanceResult result =
            controller.ProcessInstance(assignment, f);
        if (oracle) {
          try {
            check::ValidateInstance(*executed, assignment, result, f);
          } catch (const Error& e) {
            throw OracleError(e.what());
          }
        }
        // Watchdog-style compute budget: a controller that reschedules
        // past the configured budget is wedged by definition and gets
        // quarantined at the next instance boundary.
        if (spec.reschedule_budget != 0 &&
            controller.reschedule_count() > spec.reschedule_budget) {
          throw BudgetError(
              "reschedule budget exceeded (" +
              std::to_string(controller.reschedule_count()) + " > " +
              std::to_string(spec.reschedule_budget) + ")");
        }
        ++cell.executions;
        if (!result.deadline_met) ++cell.deadline_misses;
        if (result.overrun_ms > 0.0) ++cell.overrun_instances;
        if (result.faults_injected) ++cell.faulted_instances;
        cell.failed_pe_hits += result.failed_pe_hits;
        if (result.makespan_ms > cell.max_makespan_ms) {
          cell.max_makespan_ms = result.makespan_ms;
        }
        cell.makespan.Observe(result.makespan_ms);
        cell.makespan_hist.Observe(result.makespan_ms);
        app_energy += result.energy_mj;
      }

      ++cell.app_instances;
      cell.energy.Observe(app_energy);
      cell.energy_hist.Observe(app_energy);
      cell.reschedules += controller.reschedule_count();
      cell.resched_per_app.Observe(
          static_cast<double>(controller.reschedule_count()));
      cell.escalations += controller.escalation_count();
      cell.oob_reschedules += controller.oob_reschedule_count();
      cell.recoveries += controller.recovery_count();
      if (sampled) ++cell.oracle_sampled;
      MergeTiers(tiers, controller.rescheduler().tier_counts());
    };

    // The quarantine ladder: transient classes (injected poison,
    // allocation pressure) get quarantine_retries bounded-backoff
    // retries; permanent classes (oracle failure, budget overrun, any
    // other pipeline exception) quarantine immediately. With the cap
    // at 0 every failure rethrows — legacy abort-the-campaign
    // semantics, and byte-identical legacy reports.
    std::size_t attempts = 0;
    for (;;) {
      ++attempts;
      CellStats scratch(spec);
      adaptive::TierCounts tiers;
      bool sampled = false;
      bool oracle = false;
      std::string reason;
      std::string detail;
      bool transient = false;
      try {
        attempt_once(scratch, tiers, sampled, oracle);
        out.cells[c].Merge(scratch);
        if (oracle) ++out.exec.oracle_validations;
        MergeTiers(out.exec.tiers, tiers);
        break;
      } catch (const PoisonError& e) {
        if (spec.quarantine_cap == 0) throw;
        reason = "poison";
        detail = SingleLine(e.what());
        transient = true;
      } catch (const OracleError& e) {
        if (spec.quarantine_cap == 0) throw;
        reason = "oracle";
        detail = SingleLine(e.what());
      } catch (const BudgetError& e) {
        if (spec.quarantine_cap == 0) throw;
        reason = "overbudget";
        detail = SingleLine(e.what());
      } catch (const std::bad_alloc& e) {
        if (spec.quarantine_cap == 0) throw;
        reason = "thrown";
        detail = SingleLine(e.what());
        transient = true;
      } catch (const std::exception& e) {
        if (spec.quarantine_cap == 0) throw;
        reason = "thrown";
        detail = SingleLine(e.what());
      }
      if (transient && attempts <= spec.quarantine_retries) {
        // Bounded backoff before retrying a transient class. Wall
        // clock only; a retry re-derives everything from the same
        // substreams, so it changes no deterministic state.
        std::this_thread::sleep_for(std::chrono::milliseconds(attempts));
        continue;
      }
      QuarantineRecord rec;
      rec.index = i;
      rec.cell = c;
      rec.reason = reason;
      rec.attempts = attempts;
      rec.detail = detail;
      EmitRepro(spec, options, i, key, *model, plan, rng, rec);
      out.exec.quarantine.push_back(std::move(rec));
      // Hard cap: even the shard-local count exceeding it means the
      // fleet total will — fail loudly instead of quietly skipping an
      // unbounded share of the population.
      if (out.exec.quarantine.size() > spec.quarantine_cap) {
        throw InvalidArgument(
            "campaign: quarantine cap exceeded (cap " +
            std::to_string(spec.quarantine_cap) + ")");
      }
      break;
    }
  }
}

}  // namespace

std::string CellKey::Label() const {
  std::string label(apps::TenantWorkloadName(workload));
  label += '/';
  label += policy;
  label += '/';
  label += adaptive::RescheduleModeName(mode);
  label += '/';
  label += storm;
  return label;
}

CellStats::CellStats(const CampaignSpec& spec)
    : energy_hist(0.0, spec.energy_max_mj, spec.bins),
      makespan_hist(0.0, spec.makespan_max_ms, spec.bins) {}

void CellStats::Merge(const CellStats& other) {
  app_instances += other.app_instances;
  executions += other.executions;
  deadline_misses += other.deadline_misses;
  reschedules += other.reschedules;
  escalations += other.escalations;
  oob_reschedules += other.oob_reschedules;
  recoveries += other.recoveries;
  overrun_instances += other.overrun_instances;
  faulted_instances += other.faulted_instances;
  failed_pe_hits += other.failed_pe_hits;
  oracle_sampled += other.oracle_sampled;
  if (other.max_makespan_ms > max_makespan_ms) {
    max_makespan_ms = other.max_makespan_ms;
  }
  energy.Merge(other.energy);
  energy_hist.Merge(other.energy_hist);
  makespan.Merge(other.makespan);
  makespan_hist.Merge(other.makespan_hist);
  resched_per_app.Merge(other.resched_per_app);
}

report::FleetStats CellStats::ToFleetStats() const {
  report::FleetStats stats;
  stats.instances = executions;
  stats.deadline_misses = deadline_misses;
  stats.total_energy_mj = energy.sum();
  stats.max_makespan_ms = max_makespan_ms;
  stats.reschedules = reschedules;
  return stats;
}

bool CellStats::operator==(const CellStats& other) const {
  return app_instances == other.app_instances &&
         executions == other.executions &&
         deadline_misses == other.deadline_misses &&
         reschedules == other.reschedules &&
         escalations == other.escalations &&
         oob_reschedules == other.oob_reschedules &&
         recoveries == other.recoveries &&
         overrun_instances == other.overrun_instances &&
         faulted_instances == other.faulted_instances &&
         failed_pe_hits == other.failed_pe_hits &&
         oracle_sampled == other.oracle_sampled &&
         max_makespan_ms == other.max_makespan_ms &&
         energy == other.energy && energy_hist == other.energy_hist &&
         makespan == other.makespan &&
         makespan_hist == other.makespan_hist &&
         resched_per_app == other.resched_per_app;
}

void CampaignResult::WritePopulation(std::ostream& os) const {
  os << std::fixed << std::setprecision(6);
  os << "population cells " << cells.size() << "\n";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellStats& cell = cells[c];
    os << "cell " << keys[c].Label() << " apps " << cell.app_instances
       << " exec " << cell.executions << " miss " << cell.deadline_misses
       << " resched " << cell.reschedules << " oob "
       << cell.oob_reschedules << " esc " << cell.escalations << " rec "
       << cell.recoveries << " overrun " << cell.overrun_instances
       << " faulted " << cell.faulted_instances << " pe_hits "
       << cell.failed_pe_hits << " oracle " << cell.oracle_sampled
       << "\n";
    os << "  energy_mj mean " << cell.energy.mean() << " p50 "
       << cell.energy_hist.Quantile(0.5) << " p99 "
       << cell.energy_hist.Quantile(0.99) << "\n";
    os << "  makespan_ms mean " << cell.makespan.mean() << " p50 "
       << cell.makespan_hist.Quantile(0.5) << " p99 "
       << cell.makespan_hist.Quantile(0.99) << " max "
       << cell.max_makespan_ms << "\n";
    os << "  resched_per_app mean " << cell.resched_per_app.mean()
       << " var " << cell.resched_per_app.variance() << "\n";
  }
  os << "fleet instances " << fleet.instances << " miss_rate "
     << fleet.MissRate() << " energy_mj " << fleet.total_energy_mj
     << " avg_energy_mj " << fleet.AverageEnergy() << " max_makespan_ms "
     << fleet.max_makespan_ms << " reschedules " << fleet.reschedules
     << "\n";
  os << "oracle_sampled " << oracle_sampled << "\n";
}

void CampaignResult::Write(std::ostream& os) const {
  os << "campaign report v1\n";
  os << "instances " << spec.instances << " shards " << spec.shards
     << " trace_instances " << spec.trace_instances << " seed "
     << spec.seed << "\n";
  WritePopulation(os);
  os << "execution\n";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardExecution& shard = shards[s];
    os << "shard " << s << " range " << shard.begin << " " << shard.end
       << " oracle " << shard.oracle_validations << " tiers exact "
       << shard.tiers.exact << " warm_cache " << shard.tiers.warm_cache
       << " warm_prior " << shard.tiers.warm_prior << " table "
       << shard.tiers.table << " full " << shard.tiers.full
       << " fallbacks " << shard.tiers.incremental_fallbacks << "\n";
  }
  os << "tiers exact " << tiers.exact << " warm_cache "
     << tiers.warm_cache << " warm_prior " << tiers.warm_prior
     << " table " << tiers.table << " full " << tiers.full
     << " fallbacks " << tiers.incremental_fallbacks << "\n";
  // Only campaigns that opted into quarantine carry the section, so
  // legacy reports stay byte-identical.
  if (spec.quarantine_cap > 0) {
    os << "quarantine cap " << spec.quarantine_cap << " records "
       << quarantined << "\n";
    for (const ShardExecution& shard : shards) {
      for (const QuarantineRecord& rec : shard.quarantine) {
        os << "quarantined " << rec.index << " cell "
           << keys[rec.cell].Label() << " reason " << rec.reason
           << " attempts " << rec.attempts << " detail " << rec.detail
           << "\n";
      }
    }
  }
  os << "end\n";
}

Campaign::Campaign(CampaignSpec spec, CampaignOptions options)
    : spec_(std::move(spec)), options_(options) {
  spec_.Validate().ThrowIfError();
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    own_metrics_ = std::make_unique<runtime::Metrics>();
    metrics_ = own_metrics_.get();
  }
}

std::pair<std::size_t, std::size_t> Campaign::ShardRange(
    std::size_t instances, std::size_t shards, std::size_t shard) {
  return {shard * instances / shards, (shard + 1) * instances / shards};
}

std::string Campaign::CheckpointPath() const {
  return options_.checkpoint_dir + "/campaign.ckpt";
}

std::size_t Campaign::Resume() {
  ACTG_CHECK(!ran_, "Campaign::Resume must precede Run");
  if (options_.checkpoint_dir.empty()) return 0;
  std::ifstream is(CheckpointPath(), std::ios::binary);
  if (!is) return 0;  // no checkpoint yet: a fresh start
  util::Expected<CheckpointState> state = LoadCheckpoint(is, spec_);
  if (!state.ok()) throw InvalidArgument(state.error().message());
  done_ = std::move(state.value().done);
  outputs_ = std::move(state.value().outputs);
  std::size_t restored = 0;
  for (const char d : done_) restored += d != 0 ? 1 : 0;
  return restored;
}

void Campaign::Checkpoint() {
  if (options_.checkpoint_dir.empty() || outputs_.empty()) return;
  util::AtomicFile file(CheckpointPath());
  if (!file.ok()) {
    throw InvalidArgument("campaign: cannot write checkpoint to " +
                          file.path());
  }
  WriteCheckpoint(file.os(), spec_, done_, outputs_);
  file.Commit().ThrowIfError();
}

const CampaignResult& Campaign::Run() {
  ACTG_CHECK(!ran_, "Campaign::Run is valid once");
  ran_ = true;

  if (outputs_.empty()) {
    outputs_.resize(spec_.shards);
    done_.assign(spec_.shards, 0);
  }
  std::vector<std::size_t> pending;
  for (std::size_t s = 0; s < spec_.shards; ++s) {
    if (done_[s] == 0) pending.push_back(s);
  }

  const bool checkpointing = !options_.checkpoint_dir.empty();
  const std::size_t every =
      options_.checkpoint_every == 0 ? 1 : options_.checkpoint_every;
  std::mutex mu;
  std::size_t completed_this_run = 0;
  runtime::Pool pool(options_.jobs);
  // One shard = one pool job: the body depends only on (spec, shard)
  // and writes only its own slot, so any --jobs count produces
  // bit-identical outputs. Completion bookkeeping (done_ flags,
  // checkpoint writes) happens under the mutex; which shards a given
  // checkpoint contains depends on completion order, but any completed
  // subset is a valid checkpoint, so that timing never leaks into the
  // final report.
  pool.ParallelFor(pending.size(), [&](std::size_t p) {
    const std::size_t s = pending[p];
    RunShard(spec_, options_, s, outputs_[s]);
    std::lock_guard<std::mutex> lock(mu);
    done_[s] = 1;
    ++completed_this_run;
    const bool stop = options_.stop_after_shards != 0 &&
                      completed_this_run >= options_.stop_after_shards;
    if (checkpointing && (stop || completed_this_run % every == 0)) {
      Checkpoint();
    }
    if (stop) {
      throw Error("campaign: stopped after " +
                  std::to_string(completed_this_run) +
                  " shard completions (stop_after_shards test hook)");
    }
  });
  // The in-loop cadence may leave a remainder; the post-run state is
  // always durable, so resuming a *finished* campaign re-runs nothing.
  if (checkpointing) Checkpoint();

  const std::size_t cells = spec_.CellCount();
  result_.spec = spec_;
  result_.keys.clear();
  result_.keys.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    result_.keys.push_back(KeyOf(spec_, c));
  }
  result_.cells.assign(cells, CellStats(spec_));
  for (ShardOutput& out : outputs_) {
    for (std::size_t c = 0; c < cells; ++c) {
      result_.cells[c].Merge(out.cells[c]);
    }
    result_.shards.push_back(out.exec);
    MergeTiers(result_.tiers, out.exec.tiers);
    result_.quarantined += out.exec.quarantine.size();
    // Restored shards carry no metrics registry (wall-clock data is
    // not checkpointed).
    if (out.metrics != nullptr) metrics_->MergeFrom(*out.metrics);
  }
  // The per-shard check bounds each shard; the fleet-wide total can
  // still exceed the cap when the damage is spread across shards.
  if (spec_.quarantine_cap > 0 &&
      result_.quarantined > spec_.quarantine_cap) {
    throw InvalidArgument("campaign: quarantine cap exceeded (cap " +
                          std::to_string(spec_.quarantine_cap) + ")");
  }
  for (const CellStats& cell : result_.cells) {
    result_.fleet.Merge(cell.ToFleetStats());
    result_.oracle_sampled += cell.oracle_sampled;
  }
  return result_;
}

report::LatencyStats Campaign::RescheduleLatency() const {
  report::LatencyStats stats;
  const std::string name = "reschedule.latency_us";
  stats.samples = metrics_->samples(name);
  stats.p50_ms = metrics_->quantile(name, 0.5) / 1000.0;
  stats.p99_ms = metrics_->quantile(name, 0.99) / 1000.0;
  stats.max_ms = metrics_->quantile(name, 1.0) / 1000.0;
  return stats;
}

util::Expected<std::unique_ptr<Campaign>> RunCampaignFile(
    std::istream& is, std::size_t jobs, std::ostream& report_os) {
  util::Expected<CampaignSpec> spec = ParseCampaignFile(is);
  if (!spec.ok()) return spec.error();
  try {
    CampaignOptions options;
    options.jobs = jobs;
    auto campaign =
        std::make_unique<Campaign>(std::move(spec).value(), options);
    campaign->Run().Write(report_os);
    return campaign;
  } catch (const Error& e) {
    return util::Error::Invalid(e.what());
  }
}

}  // namespace actg::campaign
