#include "campaign/accumulator.h"

#include <cmath>
#include <utility>

namespace actg::campaign {

namespace {

/// Quantizes x to kScaleBits fractional bits, clamped to +/- 2^40 so
/// the squared sum can never overflow 128 bits over any realistic
/// population (2^40 quantized -> 2^80 squared -> 2^110 after 2^30
/// observations).
std::int64_t Quantize(double x) {
  constexpr double kScale =
      static_cast<double>(std::int64_t{1} << Moments::kScaleBits);
  constexpr double kLimit = 1099511627776.0;  // 2^40
  if (x > kLimit) x = kLimit;
  if (x < -kLimit) x = -kLimit;
  return std::llround(x * kScale);
}

constexpr double kInvScale =
    1.0 / static_cast<double>(std::int64_t{1} << Moments::kScaleBits);

}  // namespace

void Moments::Observe(double x) {
  const std::int64_t q = Quantize(x);
  ++count_;
  sum_q_ += q;
  sum_sq_q_ += static_cast<__int128>(q) * q;
}

void Moments::Merge(const Moments& other) {
  count_ += other.count_;
  sum_q_ += other.sum_q_;
  sum_sq_q_ += other.sum_sq_q_;
}

double Moments::sum() const {
  return static_cast<double>(sum_q_) * kInvScale;
}

double Moments::mean() const {
  if (count_ == 0) return 0.0;
  return sum() / static_cast<double>(count_);
}

double Moments::m2() const {
  if (count_ < 2) return 0.0;
  // M2 = sum(x^2) - sum(x)^2 / n, on the exact integer sums. The
  // subtraction happens in doubles, but both operands are pure
  // functions of the exact state, so the result is split-invariant.
  const double sq = static_cast<double>(sum_sq_q_) * kInvScale * kInvScale;
  const double s = sum();
  const double m2 = sq - s * s / static_cast<double>(count_);
  return m2 > 0.0 ? m2 : 0.0;
}

double Moments::variance() const {
  if (count_ < 2) return 0.0;
  return m2() / static_cast<double>(count_);
}

bool Moments::operator==(const Moments& other) const {
  return count_ == other.count_ && sum_q_ == other.sum_q_ &&
         sum_sq_q_ == other.sum_sq_q_;
}

Moments Moments::FromRaw(std::size_t count, __int128 sum_q,
                         __int128 sum_sq_q) {
  Moments m;
  m.count_ = count;
  m.sum_q_ = sum_q;
  m.sum_sq_q_ = sum_sq_q;
  return m;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  ACTG_CHECK(lo < hi, "Histogram: lo must be < hi");
  ACTG_CHECK(bins > 0, "Histogram: bins must be > 0");
  counts_.assign(bins, 0);
}

void Histogram::Observe(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  // Guard the hi-edge rounding case (x just below hi_ can land on
  // bins() after the division).
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

void Histogram::Merge(const Histogram& other) {
  ACTG_CHECK(lo_ == other.lo_ && hi_ == other.hi_ &&
                 counts_.size() == other.counts_.size(),
             "Histogram::Merge: bin layouts differ");
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank: the k-th smallest observation with
  // k = max(1, ceil(q * count)).
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = underflow_;
  if (rank <= seen) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (rank <= seen) {
      return lo_ + (static_cast<double>(i) + 0.5) * width_;
    }
  }
  return hi_;
}

Histogram Histogram::FromRaw(double lo, double hi, std::uint64_t underflow,
                             std::uint64_t overflow,
                             std::vector<std::uint64_t> counts) {
  if (counts.empty()) {
    throw InvalidArgument("Histogram::FromRaw: counts must be non-empty");
  }
  Histogram h(lo, hi, counts.size());
  h.underflow_ = underflow;
  h.overflow_ = overflow;
  h.counts_ = std::move(counts);
  h.count_ = static_cast<std::size_t>(underflow + overflow);
  for (const std::uint64_t c : h.counts_) {
    h.count_ += static_cast<std::size_t>(c);
  }
  return h;
}

bool Histogram::operator==(const Histogram& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_ && count_ == other.count_ &&
         underflow_ == other.underflow_ && overflow_ == other.overflow_ &&
         counts_ == other.counts_;
}

}  // namespace actg::campaign
