#include "campaign/spec.h"

#include <sstream>
#include <utility>

#include "dvfs/policy.h"

namespace actg::campaign {

namespace {

faults::FaultPlan PresetPlan(const std::string& preset) {
  faults::FaultPlan plan;
  const bool overrun = preset == "overrun" || preset == "mixed";
  const bool dropout = preset == "dropout" || preset == "mixed";
  const bool link = preset == "link" || preset == "mixed";
  const bool drift = preset == "drift" || preset == "mixed";
  if (overrun) {
    plan.overrun.probability = 0.3;
    plan.overrun.min_factor = 1.2;
    plan.overrun.max_factor = 2.0;
  }
  if (dropout) {
    plan.dropout.probability = 0.05;
    plan.dropout.duration = 2;
    plan.dropout.rerun_penalty = 2.0;
  }
  if (link) {
    plan.link.probability = 0.1;
    plan.link.bandwidth_factor = 0.5;
    plan.link.duration = 2;
  }
  if (drift) {
    plan.drift.max_flip_probability = 0.3;
    plan.drift.ramp_instances = 4;
  }
  return plan;
}

}  // namespace

const std::vector<std::string>& StormPresets() {
  static const std::vector<std::string> kPresets = {
      "none", "overrun", "dropout", "link", "drift", "mixed"};
  return kPresets;
}

faults::FaultPlan StormSpec::Plan() const {
  faults::FaultPlan plan = PresetPlan(preset);
  plan.intensity = intensity;
  return plan;
}

util::Error StormSpec::Validate() const {
  if (name.empty()) {
    return util::Error::Invalid("StormSpec: name must be non-empty");
  }
  bool known = false;
  for (const std::string& p : StormPresets()) known |= p == preset;
  if (!known) {
    return util::Error::Invalid("StormSpec '" + name +
                                "': unknown preset '" + preset + "'");
  }
  if (!(intensity >= 0.0)) {
    return util::Error::Invalid("StormSpec '" + name +
                                "': intensity must be >= 0");
  }
  return Plan().Validate();
}

void CampaignSpec::ApplyDefaults() {
  if (workloads.empty()) {
    workloads = {apps::TenantWorkload::kMpeg, apps::TenantWorkload::kCruise,
                 apps::TenantWorkload::kRandomForkJoin,
                 apps::TenantWorkload::kRandomFlat};
  }
  if (policies.empty()) policies = {"online"};
  if (modes.empty()) modes = {adaptive::RescheduleMode::kFull};
  if (storms.empty()) storms = {StormSpec{"calm", "none", 1.0}};
}

util::Error CampaignSpec::Validate() const {
  if (instances == 0) {
    return util::Error::Invalid("CampaignSpec: instances must be > 0");
  }
  if (shards == 0) {
    return util::Error::Invalid("CampaignSpec: shards must be > 0");
  }
  if (trace_instances == 0) {
    return util::Error::Invalid(
        "CampaignSpec: trace_instances must be > 0");
  }
  if (model_seeds == 0) {
    return util::Error::Invalid("CampaignSpec: model_seeds must be > 0");
  }
  if (!(oracle_rate >= 0.0) || oracle_rate > 1.0) {
    return util::Error::Invalid(
        "CampaignSpec: oracle_rate must lie in [0, 1]");
  }
  if (bins == 0) {
    return util::Error::Invalid("CampaignSpec: bins must be > 0");
  }
  if (!(energy_max_mj > 0.0) || !(makespan_max_ms > 0.0)) {
    return util::Error::Invalid(
        "CampaignSpec: histogram edges must be > 0");
  }
  if (cache_capacity == 0) {
    return util::Error::Invalid(
        "CampaignSpec: cache_capacity must be > 0");
  }
  if (!(threshold > 0.0) || threshold > 1.0) {
    return util::Error::Invalid(
        "CampaignSpec: threshold must lie in (0, 1]");
  }
  if (window == 0) {
    return util::Error::Invalid("CampaignSpec: window must be > 0");
  }
  if (workloads.empty() || policies.empty() || modes.empty() ||
      storms.empty()) {
    return util::Error::Invalid(
        "CampaignSpec: every population axis must be non-empty "
        "(ApplyDefaults fills unlisted ones)");
  }
  for (const adaptive::RescheduleMode mode : modes) {
    if (mode == adaptive::RescheduleMode::kTable) {
      return util::Error::Invalid(
          "CampaignSpec: mode table needs a precomputed schedule "
          "table; campaigns support full and incremental");
    }
  }
  for (const std::string& policy : policies) {
    if (dvfs::FindPolicy(policy) == nullptr) {
      return util::Error::Invalid("CampaignSpec: unknown policy '" +
                                  policy + "'");
    }
  }
  for (std::size_t i = 0; i < storms.size(); ++i) {
    if (util::Error err = storms[i].Validate(); !err.ok()) return err;
    for (std::size_t j = 0; j < i; ++j) {
      if (storms[j].name == storms[i].name) {
        return util::Error::Invalid("CampaignSpec: duplicate storm '" +
                                    storms[i].name + "'");
      }
    }
  }
  return {};
}

namespace {

/// Line-oriented reader mirroring serve/request.cpp: '#' starts a
/// comment, blank lines are skipped, failures carry the line number.
struct CampaignReader {
  std::istream& is;
  int line_number = 0;

  [[noreturn]] void Fail(const std::string& message) const {
    throw InvalidArgument("campaign line " +
                          std::to_string(line_number) + ": " + message);
  }

  bool NextTokens(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(is, line)) {
      ++line_number;
      if (const auto hash = line.find('#'); hash != std::string::npos) {
        line.erase(hash);
      }
      std::istringstream split(line);
      tokens.clear();
      for (std::string tok; split >> tok;) tokens.push_back(tok);
      if (!tokens.empty()) return true;
    }
    return false;
  }

  double Number(const std::string& token) const {
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &used);
    } catch (const std::exception&) {
      Fail("expected a number, got '" + token + "'");
    }
    if (used != token.size()) Fail("trailing garbage in '" + token + "'");
    return value;
  }

  std::size_t Count(const std::string& token) const {
    const double value = Number(token);
    if (value < 0.0 || value != static_cast<double>(
                                    static_cast<std::size_t>(value))) {
      Fail("expected a non-negative integer, got '" + token + "'");
    }
    return static_cast<std::size_t>(value);
  }

  bool Flag(const std::string& token) const {
    const std::size_t value = Count(token);
    if (value > 1) Fail("expected 0 or 1, got '" + token + "'");
    return value == 1;
  }
};

CampaignSpec ParseCampaignFileImpl(std::istream& is) {
  CampaignReader reader{is};
  std::vector<std::string> tokens;
  if (!reader.NextTokens(tokens) || tokens.size() != 2 ||
      tokens[0] != "campaign" || tokens[1] != "v1") {
    reader.Fail("expected header 'campaign v1'");
  }
  CampaignSpec spec;
  auto one = [&](const char* what) -> const std::string& {
    if (tokens.size() != 2) {
      reader.Fail(std::string(tokens[0]) + " needs " + what);
    }
    return tokens[1];
  };
  while (reader.NextTokens(tokens)) {
    const std::string& directive = tokens[0];
    if (directive == "end") {
      spec.ApplyDefaults();
      spec.Validate().ThrowIfError();
      return spec;
    }
    if (directive == "seed") {
      spec.seed = static_cast<std::uint64_t>(reader.Count(one("<uint64>")));
    } else if (directive == "instances") {
      spec.instances = reader.Count(one("<count>"));
    } else if (directive == "shards") {
      spec.shards = reader.Count(one("<count>"));
    } else if (directive == "trace_instances") {
      spec.trace_instances = reader.Count(one("<count>"));
    } else if (directive == "model_seeds") {
      spec.model_seeds = reader.Count(one("<count>"));
    } else if (directive == "oracle_rate") {
      spec.oracle_rate = reader.Number(one("<fraction>"));
    } else if (directive == "bins") {
      spec.bins = reader.Count(one("<count>"));
    } else if (directive == "energy_max") {
      spec.energy_max_mj = reader.Number(one("<mJ>"));
    } else if (directive == "makespan_max") {
      spec.makespan_max_ms = reader.Number(one("<ms>"));
    } else if (directive == "share_cache") {
      spec.share_cache = reader.Flag(one("<0|1>"));
    } else if (directive == "cache_capacity") {
      spec.cache_capacity = reader.Count(one("<count>"));
    } else if (directive == "threshold") {
      spec.threshold = reader.Number(one("<t>"));
    } else if (directive == "window") {
      spec.window = reader.Count(one("<count>"));
    } else if (directive == "degrade") {
      spec.degrade = reader.Flag(one("<0|1>"));
    } else if (directive == "quarantine_cap") {
      spec.quarantine_cap = reader.Count(one("<count>"));
    } else if (directive == "quarantine_retries") {
      spec.quarantine_retries = reader.Count(one("<count>"));
    } else if (directive == "reschedule_budget") {
      spec.reschedule_budget = reader.Count(one("<count>"));
    } else if (directive == "poison_every") {
      spec.poison_every = reader.Count(one("<count>"));
    } else if (directive == "workload") {
      const auto workload = apps::ParseTenantWorkload(one("<name>"));
      if (!workload) {
        reader.Fail("unknown workload '" + tokens[1] + "'");
      }
      spec.workloads.push_back(*workload);
    } else if (directive == "policy") {
      spec.policies.push_back(one("<name>"));
    } else if (directive == "mode") {
      const auto mode = adaptive::ParseRescheduleMode(one("<name>"));
      if (!mode) {
        reader.Fail("unknown reschedule mode '" + tokens[1] + "'");
      }
      spec.modes.push_back(*mode);
    } else if (directive == "storm") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        reader.Fail("storm needs <name> <preset> [intensity]");
      }
      StormSpec storm;
      storm.name = tokens[1];
      storm.preset = tokens[2];
      if (tokens.size() == 4) storm.intensity = reader.Number(tokens[3]);
      if (util::Error err = storm.Validate(); !err.ok()) {
        reader.Fail(err.message());
      }
      spec.storms.push_back(std::move(storm));
    } else {
      reader.Fail("unknown directive '" + directive + "'");
    }
  }
  reader.Fail("missing 'end'");
}

}  // namespace

util::Expected<CampaignSpec> ParseCampaignFile(std::istream& is) {
  try {
    return ParseCampaignFileImpl(is);
  } catch (const InvalidArgument& e) {
    return util::Error::Invalid(e.what());
  }
}

void WriteCampaignFile(std::ostream& os, const CampaignSpec& spec) {
  os << "campaign v1\n";
  os << "seed " << spec.seed << "\n";
  os << "instances " << spec.instances << "\n";
  os << "shards " << spec.shards << "\n";
  os << "trace_instances " << spec.trace_instances << "\n";
  os << "model_seeds " << spec.model_seeds << "\n";
  os << "oracle_rate " << spec.oracle_rate << "\n";
  os << "bins " << spec.bins << "\n";
  os << "energy_max " << spec.energy_max_mj << "\n";
  os << "makespan_max " << spec.makespan_max_ms << "\n";
  os << "share_cache " << (spec.share_cache ? 1 : 0) << "\n";
  os << "cache_capacity " << spec.cache_capacity << "\n";
  os << "threshold " << spec.threshold << "\n";
  os << "window " << spec.window << "\n";
  os << "degrade " << (spec.degrade ? 1 : 0) << "\n";
  os << "quarantine_cap " << spec.quarantine_cap << "\n";
  os << "quarantine_retries " << spec.quarantine_retries << "\n";
  os << "reschedule_budget " << spec.reschedule_budget << "\n";
  os << "poison_every " << spec.poison_every << "\n";
  for (const apps::TenantWorkload workload : spec.workloads) {
    os << "workload " << apps::TenantWorkloadName(workload) << "\n";
  }
  for (const std::string& policy : spec.policies) {
    os << "policy " << policy << "\n";
  }
  for (const adaptive::RescheduleMode mode : spec.modes) {
    os << "mode " << adaptive::RescheduleModeName(mode) << "\n";
  }
  for (const StormSpec& storm : spec.storms) {
    os << "storm " << storm.name << " " << storm.preset << " "
       << storm.intensity << "\n";
  }
  os << "end\n";
}

CampaignSpec SyntheticCampaign(std::size_t instances,
                               std::uint64_t seed) {
  CampaignSpec spec;
  spec.seed = seed;
  spec.instances = instances;
  spec.degrade = true;
  // Short window + enough repeats per app that the threshold actually
  // trips — the synthetic population must exercise the adaptive path,
  // not just the initial schedule.
  spec.window = 4;
  spec.trace_instances = 6;
  spec.modes = {adaptive::RescheduleMode::kFull,
                adaptive::RescheduleMode::kIncremental};
  spec.storms = {StormSpec{"calm", "none", 1.0},
                 StormSpec{"squall", "mixed", 0.5}};
  spec.ApplyDefaults();
  return spec;
}

}  // namespace actg::campaign
