/// \file runner.h
/// The sharded Monte-Carlo campaign runner (the sim::Campaign of
/// DESIGN.md §14).
///
/// A Campaign replays one CampaignSpec: the population is partitioned
/// into `shards` contiguous balanced ranges, each shard simulates its
/// instances serially through per-instance adaptive controllers (its
/// own schedule cache and metrics registry, so shards never contend),
/// and the shards run concurrently on a runtime::Pool. Results stream
/// into mergeable accumulators (campaign/accumulator.h) — memory is
/// O(shards x cells x bins), independent of the population size.
///
/// Determinism contract, in two strengths:
///  * The whole report is byte-identical for any --jobs count: a shard
///    is one pool job, its body depends only on the shard index and the
///    spec, and shard results land in index-addressed slots merged in
///    shard order.
///  * With per-instance cache keys (share_cache 0) the *population*
///    section is additionally invariant to the shard count itself:
///    every per-instance observation is then a pure function of
///    (spec, i) — the model from the instance's cell and model-seed
///    group, the trace from Random(seed).Fork(i).Fork(0), the oracle
///    draw from Fork(i).Fork(1), the fault stream from Fork(i).Fork(2)
///    — and the accumulators merge bit-exactly under any grouping.
///    share_cache 1 trades that away: an instance may be served a
///    schedule another instance of its shard computed (that sharing is
///    the throughput feature being measured), so which instances pay a
///    full compute depends on the shard grouping. The *execution*
///    section (cache tier hits, forced per-shard oracle checks) is a
///    function of the sharding in every mode and is reported
///    separately.
///
/// Wall-clock data (reschedule latency percentiles) goes through the
/// metrics registry / bench JSON only, never the deterministic report —
/// the same split the serve daemon uses.

#ifndef ACTG_CAMPAIGN_RUNNER_H
#define ACTG_CAMPAIGN_RUNNER_H

#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "adaptive/rescheduler.h"
#include "campaign/accumulator.h"
#include "campaign/spec.h"
#include "report/fleet_stats.h"
#include "runtime/metrics.h"
#include "util/error.h"

namespace actg::campaign {

/// Identity of one population cell (one point of the axis cross
/// product).
struct CellKey {
  apps::TenantWorkload workload = apps::TenantWorkload::kMpeg;
  std::string policy;
  adaptive::RescheduleMode mode = adaptive::RescheduleMode::kFull;
  std::string storm;

  /// "workload/policy/mode/storm", the report row label.
  std::string Label() const;
};

/// Streaming aggregate of one population cell. Every field is either an
/// exact integer/max or an exact-merge accumulator, so Merge() is
/// bit-exactly associative and commutative (the shard-split law
/// test_campaign fuzzes).
struct CellStats {
  /// Histograms sized from the spec's bins/edges knobs.
  explicit CellStats(const CampaignSpec& spec);

  /// Application instances simulated in this cell.
  std::size_t app_instances = 0;
  /// CTG instances executed (app_instances x trace_instances).
  std::size_t executions = 0;
  std::size_t deadline_misses = 0;
  /// Threshold-triggered reschedules summed over controllers.
  std::size_t reschedules = 0;
  /// Degradation-ladder traffic summed over controllers.
  std::size_t escalations = 0;
  std::size_t oob_reschedules = 0;
  std::size_t recoveries = 0;
  /// Fault-detection aggregates (zero in storm-free cells).
  std::size_t overrun_instances = 0;
  std::size_t faulted_instances = 0;
  std::size_t failed_pe_hits = 0;
  /// Oracle validations drawn from the instance substream (the
  /// split-invariant sample; forced per-shard checks are execution
  /// data, not population data).
  std::size_t oracle_sampled = 0;
  double max_makespan_ms = 0.0;

  /// Per-app-instance total energy, mJ.
  Moments energy;
  Histogram energy_hist;
  /// Per-execution makespan, ms.
  Moments makespan;
  Histogram makespan_hist;
  /// Per-app-instance threshold reschedule count.
  Moments resched_per_app;

  void Merge(const CellStats& other);

  /// Projection into the shared fleet vocabulary (instances =
  /// executions, as in sim::RunSummary).
  report::FleetStats ToFleetStats() const;

  bool operator==(const CellStats& other) const;
};

/// One quarantined poison instance: enough to count it, label it and
/// reproduce it. (spec.seed, index) are the repro coordinates — the
/// instance's whole substream tree forks from Random(seed).Fork(index),
/// so the pair pins the exact trace, oracle draw and fault stream; the
/// emitted .fuzzcase repro (CampaignOptions::quarantine_dir) carries
/// them as comment headers and replays through `actg_fuzz --replay`.
struct QuarantineRecord {
  std::size_t index = 0;    ///< population index
  std::size_t cell = 0;     ///< population cell index
  /// Failure class: "poison" (injected test poison), "thrown" (pipeline
  /// exception), "oracle" (check:: validation failed), "overbudget"
  /// (reschedule_budget exceeded).
  std::string reason;
  std::size_t attempts = 1;  ///< executions before giving up
  std::string detail;        ///< single-line sanitized exception text
  bool operator==(const QuarantineRecord&) const = default;
};

/// Execution-section record of one shard: data that is deterministic
/// for a fixed spec at any --jobs, but a function of the sharding.
struct ShardExecution {
  std::size_t begin = 0;  ///< first population index (inclusive)
  std::size_t end = 0;    ///< last population index (exclusive)
  /// Oracle validations run in this shard (sampled + the forced first
  /// instance; always >= 1 on a non-empty shard).
  std::size_t oracle_validations = 0;
  /// Reschedule-tier outcomes summed over the shard's controllers
  /// (exact hits measure cross-instance schedule sharing).
  adaptive::TierCounts tiers;
  /// Quarantined instances of this shard, population-index order (empty
  /// unless spec.quarantine_cap > 0).
  std::vector<QuarantineRecord> quarantine;
};

/// Per-shard accumulation slot. Shards accumulate independently and the
/// runner merges the slots in shard order. A checkpoint serializes
/// exactly this state (minus the metrics registry — wall-clock data is
/// not part of the deterministic contract and is not restored; a
/// restored shard's metrics stays null).
struct ShardOutput {
  std::vector<CellStats> cells;
  ShardExecution exec;
  std::unique_ptr<runtime::Metrics> metrics;
};

/// The outcome of one campaign run.
struct CampaignResult {
  CampaignSpec spec;
  /// Cell keys in index order. Instance i belongs to cell i % cells;
  /// the cell index decomposes workload-fastest: c = workload +
  /// workloads * (policy + policies * (mode + modes * storm)).
  std::vector<CellKey> keys;
  std::vector<CellStats> cells;
  /// Fleet-wide aggregate over every cell.
  report::FleetStats fleet;
  /// Population-sampled oracle validations fleet-wide.
  std::size_t oracle_sampled = 0;
  /// Per-shard execution records, shard order.
  std::vector<ShardExecution> shards;
  /// Tier totals over every shard.
  adaptive::TierCounts tiers;

  /// Writes the population section only — invariant to the worker
  /// count always, and to the shard count too when share_cache is off
  /// (the artifact the shard-split tests byte-compare).
  void WritePopulation(std::ostream& os) const;

  /// Quarantined instances over every shard, shard order.
  std::size_t quarantined = 0;

  /// Writes the full deterministic report: header, population section,
  /// execution section, and — only when spec.quarantine_cap > 0 — the
  /// quarantine section (legacy reports stay byte-identical).
  /// Byte-identical for any --jobs at a fixed spec.
  void Write(std::ostream& os) const;
};

struct CampaignOptions {
  /// Pool concurrency (--jobs); 1 = serial. Shards above jobs queue.
  std::size_t jobs = 1;
  /// Metrics registry the merged per-shard registries fold into; null =
  /// a campaign-private registry.
  runtime::Metrics* metrics = nullptr;
  /// Durable checkpointing: when non-empty, completed shards are
  /// checkpointed to <checkpoint_dir>/campaign.ckpt (atomic
  /// write-to-temp + rename) and Resume() restores them, so a killed
  /// campaign re-runs only its unfinished shards. The resumed report is
  /// byte-identical to an uninterrupted run at any --jobs: a shard is
  /// the atomic unit and every shard output is a pure function of
  /// (spec, shard).
  std::string checkpoint_dir;
  /// Checkpoint after every N shard completions (>= 1; the final state
  /// after Run() is always written).
  std::size_t checkpoint_every = 1;
  /// When non-empty, every quarantined instance emits a replayable
  /// repro to <quarantine_dir>/quarantine-<seed>-<index>.fuzzcase
  /// (actg_fuzz --replay compatible).
  std::string quarantine_dir;
  /// Test hook: throw (after checkpointing) once this many shards have
  /// completed in this run — a deterministic stand-in for SIGKILL at a
  /// shard boundary (0 = never). The interrupted Campaign is spent;
  /// resume with a fresh one.
  std::size_t stop_after_shards = 0;
};

/// The runner. Mirrors serve::Server: validate up front, Run() once,
/// read the result.
class Campaign {
 public:
  /// Validates \p spec up front (throws InvalidArgument when broken).
  Campaign(CampaignSpec spec, CampaignOptions options = {});

  /// Restores completed shards from the checkpoint at
  /// <checkpoint_dir>/campaign.ckpt; Run() then re-runs only the rest.
  /// Returns the number of restored shards — 0 when no checkpointing is
  /// configured or the file does not exist (a fresh start, not an
  /// error). A malformed or mismatched checkpoint (wrong spec
  /// fingerprint, truncation, version skew) throws InvalidArgument with
  /// the parser's diagnostic. Must precede Run().
  std::size_t Resume();

  /// Simulates the whole population and returns the result. Valid once.
  const CampaignResult& Run();

  /// Writes the current completed-shard state to the configured
  /// checkpoint file (no-op without a checkpoint_dir). Run() calls this
  /// as shards complete; it is public so a driver can force a final
  /// checkpoint after an exception.
  void Checkpoint();

  const CampaignResult& result() const { return result_; }
  runtime::Metrics& metrics() { return *metrics_; }

  /// Wall-clock reschedule-latency percentiles over the completed run
  /// (from the merged "reschedule.latency_us" distribution; not
  /// deterministic, never part of the report text).
  report::LatencyStats RescheduleLatency() const;

  /// Population index range of shard \p shard (contiguous, balanced).
  static std::pair<std::size_t, std::size_t> ShardRange(
      std::size_t instances, std::size_t shards, std::size_t shard);

 private:
  std::string CheckpointPath() const;

  CampaignSpec spec_;
  CampaignOptions options_;
  std::unique_ptr<runtime::Metrics> own_metrics_;
  runtime::Metrics* metrics_;
  CampaignResult result_;
  /// Per-shard slots; restored by Resume(), filled by Run(). Slot s is
  /// final once done_[s] is set.
  std::vector<ShardOutput> outputs_;
  std::vector<char> done_;
  bool ran_ = false;
};

/// Convenience: parse + run \p is with \p jobs workers, writing the
/// deterministic report to \p report_os. Returns the campaign (result,
/// latency, metrics) for callers that want more than the text.
util::Expected<std::unique_ptr<Campaign>> RunCampaignFile(
    std::istream& is, std::size_t jobs, std::ostream& report_os);

}  // namespace actg::campaign

#endif  // ACTG_CAMPAIGN_RUNNER_H
