/// \file checkpoint.h
/// The durable checkpoint-v1 format for crash-safe campaigns.
///
/// A campaign's unit of recovery is the shard: every shard output is a
/// pure function of (spec, shard), so a checkpoint is simply the set of
/// completed shard outputs plus the identity of the spec they were
/// computed for. Resuming loads the completed shards verbatim and
/// re-runs only the rest — byte-identity of the resumed report with an
/// uninterrupted run follows directly, at any --jobs count and any kill
/// point, because the merge consumes the same per-shard states in the
/// same shard order either way.
///
/// The format is line-oriented text like campaign-v1 (lines starting
/// with '#' and blank lines are skipped; diagnostics carry "checkpoint
/// line N: ..."), but it is a machine format: every accumulator is
/// serialized as its exact integer state (__int128 sums as hi/lo 64-bit
/// words, doubles as IEEE-754 bit patterns in hex), so a load followed
/// by a store round-trips bit-identically.
///
///   checkpoint v1
///   fingerprint <hex16>        # FNV-1a 64 of WriteCampaignFile(spec)
///   shards <S> instances <N> cells <C> bins <B>
///   shard <s> begin <b> end <e> oracle <n>
///   tiers <exact> <warm_cache> <warm_prior> <table> <full> <fallbacks>
///   qrec <index> <cell> <reason> <attempts> <detail to end of line>
///   cell <c> <apps> <exec> <miss> <resched> <esc> <oob> <rec>
///        <overrun> <faulted> <pe_hits> <oracle> <max_makespan_bits>
///   m <count> <sum_hi> <sum_lo> <sum_sq_hi> <sum_sq_lo>
///   h <underflow> <overflow> <bin0> ... <binB-1>
///   ...                        # m/h x5 per cell: energy m+h,
///                              # makespan m+h, resched_per_app m
///   end
///
/// Shard blocks appear in completion order (any subset of [0, S) is a
/// valid checkpoint; which shards are present depends on timing, the
/// *content* of each present shard does not). The writer never writes
/// the file directly — Campaign routes it through util::AtomicFile, so
/// a reader observes either the previous complete checkpoint or the new
/// one, never a torn prefix.
///
/// Wall-clock metrics registries are NOT checkpointed (latency
/// percentiles are diagnostics, never part of the deterministic
/// report); a restored shard's ShardOutput::metrics stays null.

#ifndef ACTG_CAMPAIGN_CHECKPOINT_H
#define ACTG_CAMPAIGN_CHECKPOINT_H

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "campaign/runner.h"
#include "campaign/spec.h"
#include "util/error.h"

namespace actg::campaign {

/// Identity a checkpoint binds to: FNV-1a 64 over the
/// WriteCampaignFile serialization of \p spec. Any knob that changes
/// the serialization (axes, seeds, quarantine knobs, ...) changes the
/// fingerprint, so a checkpoint can never be resumed against a spec it
/// was not computed for.
std::uint64_t FingerprintSpec(const CampaignSpec& spec);

/// Completed-shard state restored from (or headed into) a checkpoint.
struct CheckpointState {
  /// Size spec.shards; done[s] != 0 marks outputs[s] as complete.
  std::vector<char> done;
  std::vector<ShardOutput> outputs;
};

/// Serializes the completed shards of \p outputs (those with
/// done[s] != 0) in the checkpoint-v1 format.
void WriteCheckpoint(std::ostream& os, const CampaignSpec& spec,
                     const std::vector<char>& done,
                     const std::vector<ShardOutput>& outputs);

/// Parses a checkpoint-v1 stream against \p spec. Malformed input,
/// version skew, a fingerprint mismatch or a shape mismatch (shard
/// count, instance count, cell count, bins, shard ranges) is reported
/// as a util::Error with a "checkpoint line N: ..." diagnostic.
util::Expected<CheckpointState> LoadCheckpoint(std::istream& is,
                                               const CampaignSpec& spec);

}  // namespace actg::campaign

#endif  // ACTG_CAMPAIGN_CHECKPOINT_H
