#include "campaign/checkpoint.h"

#include <bit>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace actg::campaign {

namespace {

void SplitWords(__int128 value, std::uint64_t& hi, std::uint64_t& lo) {
  const auto u = static_cast<unsigned __int128>(value);
  hi = static_cast<std::uint64_t>(u >> 64);
  lo = static_cast<std::uint64_t>(u);
}

__int128 JoinWords(std::uint64_t hi, std::uint64_t lo) {
  return static_cast<__int128>(
      (static_cast<unsigned __int128>(hi) << 64) | lo);
}

std::string HexBits(double value) {
  std::ostringstream os;
  os << std::hex << std::bit_cast<std::uint64_t>(value);
  return os.str();
}

void WriteMoments(std::ostream& os, const Moments& m) {
  std::uint64_t sum_hi = 0, sum_lo = 0, sq_hi = 0, sq_lo = 0;
  SplitWords(m.raw_sum(), sum_hi, sum_lo);
  SplitWords(m.raw_sum_sq(), sq_hi, sq_lo);
  os << "m " << m.count() << " " << sum_hi << " " << sum_lo << " "
     << sq_hi << " " << sq_lo << "\n";
}

void WriteHistogram(std::ostream& os, const Histogram& h) {
  os << "h " << h.underflow() << " " << h.overflow();
  for (std::size_t b = 0; b < h.bins(); ++b) os << " " << h.bin_count(b);
  os << "\n";
}

/// Line-oriented reader mirroring the campaign-v1 one, with
/// "checkpoint line N: ..." diagnostics. Unlike the spec reader it only
/// skips lines *starting* with '#' (qrec details may contain one).
struct CheckpointReader {
  std::istream& is;
  int line_number = 0;

  [[noreturn]] void Fail(const std::string& message) const {
    throw InvalidArgument("checkpoint line " +
                          std::to_string(line_number) + ": " + message);
  }

  bool NextTokens(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(is, line)) {
      ++line_number;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      std::istringstream split(line);
      tokens.clear();
      for (std::string tok; split >> tok;) tokens.push_back(tok);
      if (tokens.empty()) continue;
      return true;
    }
    return false;
  }

  std::uint64_t U64(const std::string& token, int base = 10) const {
    if (token.empty()) Fail("expected an integer, got an empty token");
    const char* begin = token.c_str();
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(begin, &end, base);
    if (end != begin + token.size() || errno != 0 || token[0] == '-') {
      Fail("expected an integer, got '" + token + "'");
    }
    return static_cast<std::uint64_t>(value);
  }

  std::size_t Count(const std::string& token) const {
    return static_cast<std::size_t>(U64(token));
  }

  double Bits(const std::string& token) const {
    return std::bit_cast<double>(U64(token, 16));
  }
};

}  // namespace

std::uint64_t FingerprintSpec(const CampaignSpec& spec) {
  std::ostringstream text;
  WriteCampaignFile(text, spec);
  // FNV-1a 64 over the canonical serialization.
  std::uint64_t fp = 0xCBF29CE484222325ULL;
  for (const char c : text.str()) {
    fp ^= static_cast<unsigned char>(c);
    fp *= 0x100000001B3ULL;
  }
  return fp;
}

void WriteCheckpoint(std::ostream& os, const CampaignSpec& spec,
                     const std::vector<char>& done,
                     const std::vector<ShardOutput>& outputs) {
  os << "checkpoint v1\n";
  os << "fingerprint " << std::hex << FingerprintSpec(spec) << std::dec
     << "\n";
  os << "shards " << spec.shards << " instances " << spec.instances
     << " cells " << spec.CellCount() << " bins " << spec.bins << "\n";
  for (std::size_t s = 0; s < outputs.size(); ++s) {
    if (s >= done.size() || done[s] == 0) continue;
    const ShardOutput& out = outputs[s];
    os << "shard " << s << " begin " << out.exec.begin << " end "
       << out.exec.end << " oracle " << out.exec.oracle_validations
       << "\n";
    const adaptive::TierCounts& t = out.exec.tiers;
    os << "tiers " << t.exact << " " << t.warm_cache << " "
       << t.warm_prior << " " << t.table << " " << t.full << " "
       << t.incremental_fallbacks << "\n";
    for (const QuarantineRecord& rec : out.exec.quarantine) {
      os << "qrec " << rec.index << " " << rec.cell << " " << rec.reason
         << " " << rec.attempts << " " << rec.detail << "\n";
    }
    for (std::size_t c = 0; c < out.cells.size(); ++c) {
      const CellStats& cell = out.cells[c];
      os << "cell " << c << " " << cell.app_instances << " "
         << cell.executions << " " << cell.deadline_misses << " "
         << cell.reschedules << " " << cell.escalations << " "
         << cell.oob_reschedules << " " << cell.recoveries << " "
         << cell.overrun_instances << " " << cell.faulted_instances
         << " " << cell.failed_pe_hits << " " << cell.oracle_sampled
         << " " << HexBits(cell.max_makespan_ms) << "\n";
      WriteMoments(os, cell.energy);
      WriteHistogram(os, cell.energy_hist);
      WriteMoments(os, cell.makespan);
      WriteHistogram(os, cell.makespan_hist);
      WriteMoments(os, cell.resched_per_app);
    }
  }
  os << "end\n";
}

namespace {

CheckpointState LoadCheckpointImpl(std::istream& is,
                                   const CampaignSpec& spec) {
  CheckpointReader reader{is};
  std::vector<std::string> tokens;
  if (!reader.NextTokens(tokens) || tokens.size() != 2 ||
      tokens[0] != "checkpoint" || tokens[1] != "v1") {
    reader.Fail("expected header 'checkpoint v1' (version skew?)");
  }
  if (!reader.NextTokens(tokens) || tokens.size() != 2 ||
      tokens[0] != "fingerprint") {
    reader.Fail("expected 'fingerprint <hex>'");
  }
  {
    std::ostringstream got, want;
    got << std::hex << reader.U64(tokens[1], 16);
    want << std::hex << FingerprintSpec(spec);
    if (got.str() != want.str()) {
      reader.Fail("spec fingerprint mismatch (checkpoint " + got.str() +
                  ", spec " + want.str() +
                  "): this checkpoint belongs to a different campaign");
    }
  }
  if (!reader.NextTokens(tokens) || tokens.size() != 8 ||
      tokens[0] != "shards" || tokens[2] != "instances" ||
      tokens[4] != "cells" || tokens[6] != "bins") {
    reader.Fail("expected 'shards <S> instances <N> cells <C> bins <B>'");
  }
  if (reader.Count(tokens[1]) != spec.shards ||
      reader.Count(tokens[3]) != spec.instances ||
      reader.Count(tokens[5]) != spec.CellCount() ||
      reader.Count(tokens[7]) != spec.bins) {
    reader.Fail("population shape mismatch against the spec");
  }

  CheckpointState state;
  state.done.assign(spec.shards, 0);
  state.outputs.resize(spec.shards);
  const std::size_t cells = spec.CellCount();

  bool saw_end = false;
  while (reader.NextTokens(tokens)) {
    if (tokens[0] == "end") {
      saw_end = true;
      break;
    }
    if (tokens[0] != "shard" || tokens.size() != 8 ||
        tokens[2] != "begin" || tokens[4] != "end" ||
        tokens[6] != "oracle") {
      reader.Fail("expected 'shard <s> begin <b> end <e> oracle <n>' "
                  "or 'end', got '" + tokens[0] + "'");
    }
    const std::size_t s = reader.Count(tokens[1]);
    if (s >= spec.shards) reader.Fail("shard index out of range");
    if (state.done[s] != 0) {
      reader.Fail("duplicate shard " + std::to_string(s));
    }
    ShardOutput& out = state.outputs[s];
    out.exec.begin = reader.Count(tokens[3]);
    out.exec.end = reader.Count(tokens[5]);
    const auto [begin, end] =
        Campaign::ShardRange(spec.instances, spec.shards, s);
    if (out.exec.begin != begin || out.exec.end != end) {
      reader.Fail("shard " + std::to_string(s) +
                  " range disagrees with the spec's partition");
    }
    out.exec.oracle_validations = reader.Count(tokens[7]);

    if (!reader.NextTokens(tokens) || tokens.size() != 7 ||
        tokens[0] != "tiers") {
      reader.Fail("expected 'tiers <6 counters>'");
    }
    out.exec.tiers.exact = reader.U64(tokens[1]);
    out.exec.tiers.warm_cache = reader.U64(tokens[2]);
    out.exec.tiers.warm_prior = reader.U64(tokens[3]);
    out.exec.tiers.table = reader.U64(tokens[4]);
    out.exec.tiers.full = reader.U64(tokens[5]);
    out.exec.tiers.incremental_fallbacks = reader.U64(tokens[6]);

    // qrec lines (0+), then exactly `cells` cell blocks.
    out.cells.assign(cells, CellStats(spec));
    std::size_t next_cell = 0;
    while (true) {
      if (!reader.NextTokens(tokens)) {
        reader.Fail("truncated checkpoint: shard " + std::to_string(s) +
                    " is incomplete");
      }
      if (tokens[0] == "qrec") {
        if (next_cell != 0) {
          reader.Fail("qrec lines must precede the cell blocks");
        }
        if (tokens.size() < 5) {
          reader.Fail("expected 'qrec <index> <cell> <reason> "
                      "<attempts> <detail>'");
        }
        QuarantineRecord rec;
        rec.index = reader.Count(tokens[1]);
        rec.cell = reader.Count(tokens[2]);
        if (rec.cell >= cells) reader.Fail("qrec cell out of range");
        rec.reason = tokens[3];
        rec.attempts = reader.Count(tokens[4]);
        // Detail = the raw remainder after the 5th token's position;
        // reconstruct from the tokenization (inner runs of whitespace
        // collapse, which the single-line sanitizer already did).
        for (std::size_t t = 5; t < tokens.size(); ++t) {
          if (t > 5) rec.detail += ' ';
          rec.detail += tokens[t];
        }
        out.exec.quarantine.push_back(std::move(rec));
        continue;
      }
      if (tokens[0] != "cell" || tokens.size() != 14) {
        reader.Fail("expected a 'cell' block (13 fields)");
      }
      if (reader.Count(tokens[1]) != next_cell) {
        reader.Fail("cell blocks must appear in index order");
      }
      CellStats& cell = out.cells[next_cell];
      cell.app_instances = reader.Count(tokens[2]);
      cell.executions = reader.Count(tokens[3]);
      cell.deadline_misses = reader.Count(tokens[4]);
      cell.reschedules = reader.Count(tokens[5]);
      cell.escalations = reader.Count(tokens[6]);
      cell.oob_reschedules = reader.Count(tokens[7]);
      cell.recoveries = reader.Count(tokens[8]);
      cell.overrun_instances = reader.Count(tokens[9]);
      cell.faulted_instances = reader.Count(tokens[10]);
      cell.failed_pe_hits = reader.Count(tokens[11]);
      cell.oracle_sampled = reader.Count(tokens[12]);
      cell.max_makespan_ms = reader.Bits(tokens[13]);

      auto read_moments = [&](Moments& m) {
        if (!reader.NextTokens(tokens) || tokens.size() != 6 ||
            tokens[0] != "m") {
          reader.Fail("expected 'm <count> <sum hi lo> <sum_sq hi lo>'");
        }
        m = Moments::FromRaw(
            reader.Count(tokens[1]),
            JoinWords(reader.U64(tokens[2]), reader.U64(tokens[3])),
            JoinWords(reader.U64(tokens[4]), reader.U64(tokens[5])));
      };
      auto read_histogram = [&](Histogram& h, double hi_edge) {
        if (!reader.NextTokens(tokens) ||
            tokens.size() != 3 + spec.bins || tokens[0] != "h") {
          reader.Fail("expected 'h <underflow> <overflow> <" +
                      std::to_string(spec.bins) + " bins>'");
        }
        std::vector<std::uint64_t> counts(spec.bins);
        for (std::size_t b = 0; b < spec.bins; ++b) {
          counts[b] = reader.U64(tokens[3 + b]);
        }
        h = Histogram::FromRaw(0.0, hi_edge, reader.U64(tokens[1]),
                               reader.U64(tokens[2]), std::move(counts));
      };
      read_moments(cell.energy);
      read_histogram(cell.energy_hist, spec.energy_max_mj);
      read_moments(cell.makespan);
      read_histogram(cell.makespan_hist, spec.makespan_max_ms);
      read_moments(cell.resched_per_app);
      if (++next_cell == cells) break;
    }
    state.done[s] = 1;
  }
  if (!saw_end) {
    reader.Fail("truncated checkpoint: missing 'end'");
  }
  return state;
}

}  // namespace

util::Expected<CheckpointState> LoadCheckpoint(std::istream& is,
                                               const CampaignSpec& spec) {
  try {
    return LoadCheckpointImpl(is, spec);
  } catch (const InvalidArgument& e) {
    return util::Error::Invalid(e.what());
  }
}

}  // namespace actg::campaign
