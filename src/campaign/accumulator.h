/// \file accumulator.h
/// Mergeable streaming statistics for sharded Monte-Carlo campaigns.
///
/// A campaign simulates hundreds of thousands of application instances;
/// keeping per-instance result vectors (the pre-campaign benches' habit)
/// would make memory grow linearly with the population. These
/// accumulators keep it O(bins): a Moments tracks count/mean/M2, a
/// Histogram tracks fixed-bin counts with nearest-rank quantiles, and
/// both fold one observation at a time.
///
/// The merge law is the load-bearing design point. Shards accumulate
/// independently and the runner merges them at the end, and the fleet
/// report must be byte-identical for any --jobs count AND any shard
/// split of the same population. Floating-point summation cannot
/// deliver that (addition is neither associative nor commutative at the
/// bit level), so observations are quantized to a fixed point
/// (kScaleBits fractional bits) and accumulated in 128-bit integers:
/// integer addition is an abelian monoid, so merge(a, b) == merge(b, a)
/// and any shard split of the same observation multiset produces
/// bit-identical state. The double-valued views (mean/variance/
/// quantiles) are derived from that exact state at read time and are
/// therefore equally split-invariant. test_campaign fuzzes exactly
/// these laws.
///
/// Quantization bounds the usable range: |x| must stay below 2^40
/// (about 1e12) for the squared sums to fit 128 bits across a
/// billion-observation population; campaign observables (mJ, ms,
/// reschedule counts) sit many orders of magnitude below that.

#ifndef ACTG_CAMPAIGN_ACCUMULATOR_H
#define ACTG_CAMPAIGN_ACCUMULATOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace actg::campaign {

/// Exact streaming count / mean / M2 accumulator. Internally integer
/// (fixed point), so Merge is bit-exactly associative and commutative.
class Moments {
 public:
  /// Fractional bits of the fixed-point quantization (~1e-6 absolute
  /// resolution).
  static constexpr int kScaleBits = 20;

  /// Folds one observation in. Values are clamped to the representable
  /// range (|x| < 2^40); campaign observables never approach it.
  void Observe(double x);

  /// Folds \p other in. Bit-exactly associative and commutative: any
  /// grouping of the same observation multiset yields identical state.
  void Merge(const Moments& other);

  std::size_t count() const { return count_; }
  /// Mean of the quantized observations; 0 on an empty accumulator.
  double mean() const;
  /// Sum of squared deviations from the mean (the "M2" of Welford's
  /// algorithm), derived from the exact sums; 0 when count < 2.
  double m2() const;
  /// Population variance M2 / count; 0 when count < 2.
  double variance() const;
  /// Sum of the quantized observations.
  double sum() const;

  /// Bit-exact state equality (count and both integer sums).
  bool operator==(const Moments& other) const;

  /// Checkpoint codec access: the exact integer state. Serializing
  /// (count, raw_sum, raw_sum_sq) and rebuilding via FromRaw round-trips
  /// bit-identically — the property the campaign resume path needs.
  __int128 raw_sum() const { return sum_q_; }
  __int128 raw_sum_sq() const { return sum_sq_q_; }
  static Moments FromRaw(std::size_t count, __int128 sum_q,
                         __int128 sum_sq_q);

 private:
  std::size_t count_ = 0;
  __int128 sum_q_ = 0;     ///< sum of quantized observations
  __int128 sum_sq_q_ = 0;  ///< sum of squared quantized observations
};

/// Fixed-bin histogram over [lo, hi) with underflow/overflow bins and
/// nearest-rank quantiles at bin-center resolution. Integer counts, so
/// Merge is bit-exactly associative and commutative.
class Histogram {
 public:
  /// Uniform bins over [lo, hi). Requires lo < hi and bins > 0 (throws
  /// InvalidArgument otherwise; campaign specs validate these knobs up
  /// front).
  Histogram(double lo, double hi, std::size_t bins);

  void Observe(double x);

  /// Folds \p other in; the bin layouts must match exactly (throws
  /// InvalidArgument otherwise).
  void Merge(const Histogram& other);

  std::size_t count() const { return count_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// Nearest-rank quantile (q in [0, 1]) at bin resolution: the center
  /// of the bin holding the ceil(q * count)-th observation (lo for
  /// underflow, hi for overflow). 0 on an empty histogram.
  double Quantile(double q) const;

  bool operator==(const Histogram& other) const;

  /// Checkpoint codec access: rebuilds a histogram from its exact
  /// counter state (count is derived — it always equals underflow +
  /// overflow + sum(counts)). Throws InvalidArgument on a layout that
  /// Histogram's own constructor would reject.
  static Histogram FromRaw(double lo, double hi, std::uint64_t underflow,
                           std::uint64_t overflow,
                           std::vector<std::uint64_t> counts);

 private:
  double lo_;
  double hi_;
  double width_;
  std::size_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace actg::campaign

#endif  // ACTG_CAMPAIGN_ACCUMULATOR_H
