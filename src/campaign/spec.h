/// \file spec.h
/// The campaign-v1 file format: a declarative description of one
/// Monte-Carlo fleet campaign.
///
/// A campaign simulates a large population of independent application
/// instances. The population is the cross product of four axes —
/// workload families x stretch policies x reschedule modes x fault
/// storms — cycled over `instances` application instances; instance i
/// belongs to cell (i mod cells) and draws everything else (model
/// structure, trace, fault seeds, oracle sampling) from the
/// util::Random::Fork substream of the root seed with stream id i, so
/// every per-instance result is a pure function of (spec, i),
/// independent of shard boundaries and worker count.
///
/// Like serve-v1 and faults-v1, the format is line-oriented ('#'
/// comments, blank lines ignored), parses into util::Expected with
/// "campaign line N: ..." diagnostics, and every parsed object
/// Validates() up front.

#ifndef ACTG_CAMPAIGN_SPEC_H
#define ACTG_CAMPAIGN_SPEC_H

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "adaptive/rescheduler.h"
#include "apps/tenants.h"
#include "faults/plan.h"
#include "util/error.h"

namespace actg::campaign {

/// One fleet-wide failure storm: a named fault-plan preset scaled by an
/// intensity. Presets keep the campaign file one line per storm while
/// still exercising every injector channel:
///   none     nothing ever fires (the control cell)
///   overrun  30% per-task WCET overruns of 1.2-2.0x
///   dropout  5% per-instance transient PE dropouts (2 instances,
///            2x re-run penalty)
///   link     10% link-degradation windows (bandwidth halved,
///            2 instances)
///   drift    branch-profile drift ramping to 30% flips
///   mixed    all of the above at once
/// `intensity` scales every event probability (FaultPlan::intensity).
struct StormSpec {
  std::string name;
  std::string preset = "none";
  double intensity = 1.0;

  /// The preset's FaultPlan at this intensity (plan.seed stays 0: the
  /// runner seeds injectors per instance substream).
  faults::FaultPlan Plan() const;

  /// Ok when the name is non-empty, the preset is known and the
  /// resulting plan validates.
  util::Error Validate() const;
};

/// Known storm preset names, in file order ("none overrun dropout link
/// drift mixed").
const std::vector<std::string>& StormPresets();

/// A parsed campaign-v1 file.
struct CampaignSpec {
  /// Root of every per-instance Random::Fork substream.
  std::uint64_t seed = 1;
  /// Application instances in the population. Required > 0.
  std::size_t instances = 0;
  /// Independent controller shards the population is partitioned into
  /// (contiguous balanced ranges). Memory stays O(shards x cells x
  /// bins); the report is invariant to the shard count except for the
  /// execution section (cache locality and the per-shard forced oracle
  /// check are functions of the sharding).
  std::size_t shards = 8;
  /// CTG instances each application instance executes through its
  /// adaptive controller.
  std::size_t trace_instances = 4;
  /// Distinct model-structure seeds per workload family. Instances
  /// cycle through them, so model construction memoizes and — with
  /// share_cache — schedule-cache entries are shared across instances.
  std::size_t model_seeds = 4;
  /// Fraction of instances whose schedules and executed results are
  /// re-verified by the check:: oracle, in [0, 1]. Independent of
  /// sharding (drawn from the instance substream); the runner
  /// additionally forces the first instance of every shard.
  double oracle_rate = 0.01;
  /// Histogram bins per distribution (memory knob).
  std::size_t bins = 64;
  /// Upper histogram edges (lower edge 0); observations at or above
  /// land in the overflow bin.
  double energy_max_mj = 1000.0;
  double makespan_max_ms = 100.0;
  /// Cross-instance schedule-cache sharing within a shard: when true
  /// (default) all instances key the shard cache with tenant 0, so
  /// instances with identical model/config fingerprints hit each
  /// other's entries; when false the key space is partitioned per
  /// instance (the measured-sharing control).
  bool share_cache = true;
  /// Per-shard schedule-cache capacity.
  std::size_t cache_capacity = 64;
  /// Adaptive-controller knobs shared by every cell.
  double threshold = 0.1;
  std::size_t window = 20;
  /// Engage the graceful-degradation ladder (storm cells usually want
  /// this on).
  bool degrade = false;
  /// Poison-instance quarantine. 0 (default) disables it entirely: any
  /// instance failure aborts the campaign, and the report carries no
  /// quarantine section — legacy campaigns stay byte-identical. A
  /// positive cap tolerates up to that many quarantined instances
  /// fleet-wide; exceeding it fails the campaign loudly.
  std::size_t quarantine_cap = 0;
  /// Retries (beyond the first attempt) for transiently-classified
  /// failures (allocation pressure, injected poison) before the
  /// instance is quarantined.
  std::size_t quarantine_retries = 2;
  /// Compute budget: an instance whose controller exceeds this many
  /// reschedules is classified overbudget and quarantined (0 = no
  /// budget, never fires).
  std::size_t reschedule_budget = 0;
  /// Test hook: every poison_every-th population instance (1-based by
  /// population index: i+1 divisible by poison_every) throws at
  /// instance start, exercising the quarantine ladder deterministically
  /// (0 = never).
  std::size_t poison_every = 0;
  /// The population axes. Empty axes are filled by ApplyDefaults()
  /// (all four workloads, the online policy, the full reschedule mode,
  /// one "calm" none-storm); Validate() requires them non-empty.
  std::vector<apps::TenantWorkload> workloads;
  std::vector<std::string> policies;
  std::vector<adaptive::RescheduleMode> modes;
  std::vector<StormSpec> storms;

  /// Population cells (the axis cross product).
  std::size_t CellCount() const {
    return workloads.size() * policies.size() * modes.size() *
           storms.size();
  }

  /// Fills every empty axis with its default.
  void ApplyDefaults();

  /// Ok when the campaign is runnable: instances, shards, bins,
  /// trace_instances, model_seeds, cache_capacity and window positive,
  /// oracle_rate in [0, 1], threshold in (0, 1], histogram edges
  /// positive, every axis non-empty, policies registered, storm names
  /// unique and every storm valid.
  util::Error Validate() const;
};

/// Parses the line-oriented campaign-v1 format:
///
///   campaign v1
///   seed <uint64>              # optional, default 1
///   instances <n>              # required
///   shards <n>                 # optional, default 8
///   trace_instances <n>        # optional, default 4
///   model_seeds <n>            # optional, default 4
///   oracle_rate <p>            # optional, default 0.01
///   bins <n>                   # optional, default 64
///   energy_max <mJ>            # optional, default 1000
///   makespan_max <ms>          # optional, default 100
///   share_cache <0|1>          # optional, default 1
///   cache_capacity <n>         # optional, default 64
///   threshold <t>              # optional, default 0.1
///   window <n>                 # optional, default 20
///   degrade <0|1>              # optional, default 0
///   quarantine_cap <n>         # optional, default 0 (disabled)
///   quarantine_retries <n>     # optional, default 2
///   reschedule_budget <n>      # optional, default 0 (unlimited)
///   poison_every <n>           # optional, default 0 (test hook)
///   workload <mpeg|cruise|random1|random2>   # repeated axis
///   policy <name>                            # repeated axis
///   mode <full|incremental>                  # repeated axis
///   storm <name> <preset> [intensity]        # repeated axis
///   end
///
/// Unlisted axes default as in ApplyDefaults(). Malformed input is
/// reported as a util::Error with a "campaign line N: ..." diagnostic.
util::Expected<CampaignSpec> ParseCampaignFile(std::istream& is);

/// Serializes \p spec in the ParseCampaignFile format (round-trips).
void WriteCampaignFile(std::ostream& os, const CampaignSpec& spec);

/// Deterministic synthetic campaign used by bench_campaign and the
/// determinism tests: all four workloads, online policy, full +
/// incremental reschedule modes, a calm and a mixed storm, degrade on.
CampaignSpec SyntheticCampaign(std::size_t instances, std::uint64_t seed);

}  // namespace actg::campaign

#endif  // ACTG_CAMPAIGN_SPEC_H
