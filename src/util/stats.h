/// \file stats.h
/// Streaming statistics accumulators used by the simulator and benches.

#ifndef ACTG_UTIL_STATS_H
#define ACTG_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace actg::util {

/// Numerically stable streaming accumulator (Welford's algorithm) for
/// mean / variance / extrema of a sequence of observations.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added so far.
  std::size_t count() const { return count_; }

  /// Mean of the observations; 0 when empty.
  double mean() const { return mean_; }

  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_;
  double max_;
};

/// Exact quantile of a sample (linear interpolation between order
/// statistics). \p q must lie in [0, 1]; \p values must be non-empty.
double Quantile(std::vector<double> values, double q);

/// Arithmetic mean of a non-empty vector.
double Mean(const std::vector<double>& values);

}  // namespace actg::util

#endif  // ACTG_UTIL_STATS_H
