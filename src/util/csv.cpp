#include "util/csv.h"

#include <filesystem>
#include <iomanip>
#include <sstream>

namespace actg::util {

std::string OutputPath(const std::string& filename,
                       const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return (std::filesystem::path(dir) / filename).string();
}

std::string CsvWriter::Escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<double>& cells, int decimals) {
  std::ostringstream row;
  row << std::fixed << std::setprecision(decimals);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) row << ',';
    row << cells[i];
  }
  os_ << row.str() << '\n';
}

}  // namespace actg::util
