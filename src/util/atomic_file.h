/// \file atomic_file.h
/// Crash-safe file writing: write to a temp, then rename into place.
///
/// Every artifact this library emits — campaign checkpoints and
/// reports, BENCH_*.json, metrics CSVs, fuzz repro files — used to go
/// through a bare std::ofstream, so a crash (or SIGKILL) mid-write
/// could leave a truncated file that a later run would happily parse.
/// An AtomicFile writes to `<path>.tmp.<pid>` in the same directory and
/// renames over the target only in Commit(); POSIX rename(2) within one
/// filesystem is atomic, so readers observe either the old complete
/// file or the new complete file, never a prefix. A destructed,
/// uncommitted AtomicFile removes its temp — an abandoned write leaves
/// nothing behind.
///
/// The temp name carries the pid so concurrent writers of the same
/// target (two campaign processes checkpointing into one directory)
/// never clobber each other's in-progress temp; last Commit() wins the
/// rename, which is exactly the "latest checkpoint" semantics the
/// campaign resume path wants.

#ifndef ACTG_UTIL_ATOMIC_FILE_H
#define ACTG_UTIL_ATOMIC_FILE_H

#include <fstream>
#include <ostream>
#include <string>
#include <string_view>

#include "util/error.h"

namespace actg::util {

/// One atomic write: stream into os(), then Commit().
class AtomicFile {
 public:
  /// Opens the temp file for writing. ok() is false when it cannot be
  /// opened (missing directory, permissions).
  explicit AtomicFile(std::string path);

  /// Removes the temp when Commit() was never (successfully) called.
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// True while the stream is healthy (open succeeded, no write error).
  bool ok() const { return os_.good(); }

  /// The stream being written; contents land at path() on Commit().
  std::ostream& os() { return os_; }

  /// The final destination.
  const std::string& path() const { return path_; }

  /// Flushes, closes and renames the temp over path(). Ok on success;
  /// a failure (write error, failed rename) removes the temp and
  /// reports why — the target is left untouched either way. Valid once.
  util::Error Commit();

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream os_;
  bool committed_ = false;
};

/// Convenience wrapper: atomically replaces \p path with \p contents.
util::Error WriteFileAtomic(const std::string& path,
                            std::string_view contents);

}  // namespace actg::util

#endif  // ACTG_UTIL_ATOMIC_FILE_H
