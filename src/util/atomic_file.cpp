#include "util/atomic_file.h"

#include <cstdio>
#include <utility>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace actg::util {

namespace {

long ProcessId() {
#if defined(_WIN32)
  return static_cast<long>(_getpid());
#else
  return static_cast<long>(getpid());
#endif
}

}  // namespace

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp." + std::to_string(ProcessId())),
      os_(temp_path_, std::ios::binary | std::ios::trunc) {}

AtomicFile::~AtomicFile() {
  if (committed_) return;
  os_.close();
  std::remove(temp_path_.c_str());
}

util::Error AtomicFile::Commit() {
  if (committed_) {
    return util::Error::Invalid("AtomicFile: Commit is valid once (" +
                                path_ + ")");
  }
  os_.flush();
  const bool healthy = os_.good();
  os_.close();
  if (!healthy) {
    std::remove(temp_path_.c_str());
    return util::Error::Invalid("AtomicFile: write failed for " + path_);
  }
  // POSIX rename(2) atomically replaces the target within a filesystem.
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path_.c_str());
    return util::Error::Invalid("AtomicFile: cannot rename " +
                                temp_path_ + " to " + path_);
  }
  committed_ = true;
  return {};
}

util::Error WriteFileAtomic(const std::string& path,
                            std::string_view contents) {
  AtomicFile file(path);
  if (!file.ok()) {
    return util::Error::Invalid("AtomicFile: cannot open " + path +
                                " for writing");
  }
  file.os().write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
  return file.Commit();
}

}  // namespace actg::util
