/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// Experiments in this library must be exactly reproducible across
/// platforms and standard-library implementations, so we implement the
/// xoshiro256** generator and all distributions ourselves instead of
/// relying on std::mt19937 + std:: distributions (whose outputs are not
/// specified portably for the distribution layer).

#ifndef ACTG_UTIL_RNG_H
#define ACTG_UTIL_RNG_H

#include <cstdint>
#include <vector>

namespace actg::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed in C++). 256 bits of state, period 2^256-1.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit value via SplitMix64, which is
  /// the seeding procedure recommended by the xoshiro authors.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t Next();

  /// UniformRandomBitGenerator interface so the engine composes with
  /// standard algorithms such as std::shuffle.
  std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Jump function: advances the state by 2^128 steps, for partitioning a
  /// single stream into non-overlapping substreams.
  void Jump();

  /// Splittable substream: derives an independent child engine from the
  /// current state and \p stream without advancing this engine. The same
  /// (state, stream) pair always yields the same child, so parallel jobs
  /// seeded with Fork(job_index) are reproducible regardless of worker
  /// count or scheduling order. Distinct streams re-seed through
  /// SplitMix64 into distant regions of the 2^256 state space.
  Xoshiro256 Fork(std::uint64_t stream) const;

 private:
  std::uint64_t state_[4];
};

/// Convenience distribution layer on top of Xoshiro256. All methods are
/// deterministic functions of the engine state.
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : engine_(seed) {}

  /// Wraps an existing engine (used by Fork).
  explicit Random(Xoshiro256 engine) : engine_(engine) {}

  /// Splittable substream with a fresh distribution state; see
  /// Xoshiro256::Fork. Does not advance this generator.
  Random Fork(std::uint64_t stream) const {
    return Random(engine_.Fork(stream));
  }

  /// Uniform double in [0, 1).
  double UniformUnit();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Bernoulli draw: true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via the Marsaglia polar method.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Draws an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one strictly positive weight.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> Permutation(std::size_t n);

  Xoshiro256& engine() { return engine_; }

 private:
  Xoshiro256 engine_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace actg::util

#endif  // ACTG_UTIL_RNG_H
