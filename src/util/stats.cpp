#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace actg::util {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = kInf;
    max_ = -kInf;
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) *
                          static_cast<double>(other.count_) / total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Quantile(std::vector<double> values, double q) {
  ACTG_CHECK(!values.empty(), "Quantile of an empty sample");
  ACTG_CHECK(q >= 0.0 && q <= 1.0, "Quantile order must be in [0, 1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  ACTG_CHECK(!values.empty(), "Mean of an empty sample");
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

}  // namespace actg::util
