#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace actg::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ACTG_CHECK(!headers_.empty(), "A table needs at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  ACTG_CHECK(cells.size() == headers_.size(),
             "Row width must match the header width");
  rows_.push_back(std::move(cells));
}

TablePrinter& TablePrinter::BeginRow() {
  FlushRow();
  row_open_ = true;
  pending_.clear();
  return *this;
}

TablePrinter& TablePrinter::Cell(const std::string& value) {
  ACTG_CHECK(row_open_, "Cell() before BeginRow()");
  pending_.push_back(value);
  return *this;
}

TablePrinter& TablePrinter::Cell(const char* value) {
  return Cell(std::string(value));
}

TablePrinter& TablePrinter::Cell(double value, int decimals) {
  return Cell(Format(value, decimals));
}

TablePrinter& TablePrinter::Cell(int value) {
  return Cell(std::to_string(value));
}

TablePrinter& TablePrinter::Cell(std::size_t value) {
  return Cell(std::to_string(value));
}

void TablePrinter::FlushRow() {
  if (row_open_) {
    AddRow(pending_);
    pending_.clear();
    row_open_ = false;
  }
}

std::string TablePrinter::Format(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) {
  FlushRow();
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  const std::string rule(std::max<std::size_t>(title.size() + 4, 60), '=');
  os << '\n' << rule << '\n' << "  " << title << '\n' << rule << '\n';
}

}  // namespace actg::util
