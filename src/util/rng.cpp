#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace actg::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

std::uint64_t Xoshiro256::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

void Xoshiro256::Jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      Next();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

Xoshiro256 Xoshiro256::Fork(std::uint64_t stream) const {
  // Digest the current state and the stream index into one 64-bit seed;
  // the child constructor expands it through SplitMix64. A state/stream
  // collision would require a 64-bit digest collision, which is
  // negligible for the stream counts of a parallel sweep.
  std::uint64_t digest = state_[0];
  digest = Rotl(digest, 13) ^ state_[1];
  digest = Rotl(digest, 29) ^ state_[2];
  digest = Rotl(digest, 41) ^ state_[3];
  std::uint64_t mix = digest + (stream + 1) * 0x9E3779B97F4A7C15ULL;
  return Xoshiro256(SplitMix64(mix));
}

double Random::UniformUnit() {
  // 53 high bits -> double in [0, 1) with full mantissa resolution.
  return static_cast<double>(engine_.Next() >> 11) * 0x1.0p-53;
}

double Random::Uniform(double lo, double hi) {
  ACTG_CHECK(lo <= hi, "Uniform requires lo <= hi");
  return lo + (hi - lo) * UniformUnit();
}

int Random::UniformInt(int lo, int hi) {
  ACTG_CHECK(lo <= hi, "UniformInt requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL / span) * span;
  std::uint64_t draw;
  do {
    draw = engine_.Next();
  } while (draw >= limit);
  return lo + static_cast<int>(draw % span);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformUnit() < p;
}

double Random::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

std::size_t Random::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    ACTG_CHECK(w >= 0.0, "Categorical weights must be non-negative");
    total += w;
  }
  ACTG_CHECK(total > 0.0, "Categorical requires a positive total weight");
  double target = UniformUnit() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Guard against accumulated rounding.
}

std::vector<std::size_t> Random::Permutation(std::size_t n) {
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        UniformInt(0, static_cast<int>(i) - 1));
    std::swap(indices[i - 1], indices[j]);
  }
  return indices;
}

}  // namespace actg::util
