/// \file error.h
/// Error handling for the actg library.
///
/// Following the C++ Core Guidelines (E.2), errors that a caller cannot
/// reasonably be expected to recover from locally are reported with
/// exceptions. All exceptions thrown by this library derive from
/// actg::Error so that callers can establish a single catch boundary.

#ifndef ACTG_UTIL_ERROR_H
#define ACTG_UTIL_ERROR_H

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace actg {

/// Base class of every exception thrown by the actg library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when input data (a graph, a platform, a trace, ...) violates a
/// documented precondition of the API that received it.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant of the library is violated. Seeing
/// this exception indicates a bug in actg itself, not in caller code.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void ThrowInvalidArgument(const char* file, int line,
                                       const char* expr,
                                       const std::string& message);
[[noreturn]] void ThrowInternalError(const char* file, int line,
                                     const char* expr,
                                     const std::string& message);
}  // namespace detail

namespace util {

/// Value-semantic error status for validation-style APIs (the Validate()
/// methods of the options structs). Unlike the exception hierarchy
/// above, an Error is an expected, inspectable outcome: Ok() means the
/// validated object is usable; otherwise message() explains the first
/// problem found. Contextually convertible to bool (true == failure) so
/// call sites read `if (auto err = opts.Validate()) ...`.
class [[nodiscard]] Error {
 public:
  /// The success value.
  Error() = default;

  /// A failure carrying \p message.
  static Error Invalid(std::string message) {
    Error e;
    e.message_ = std::move(message);
    return e;
  }

  bool ok() const { return message_.empty(); }
  explicit operator bool() const { return !ok(); }

  /// Explanation of the failure; empty on success.
  const std::string& message() const { return message_; }

  /// Throws actg::InvalidArgument when this is a failure; no-op on
  /// success. Lets constructors enforce validation without duplicating
  /// the message.
  void ThrowIfError() const {
    if (!ok()) throw InvalidArgument(message_);
  }

 private:
  std::string message_;
};

/// Value-or-error result for factory-style APIs, the value-producing
/// counterpart of Error (parsers, generators — anything that builds an
/// object from data that may be malformed). Unlike an out-parameter
/// convention it works for types without default constructors (Ctg and
/// Platform are builder-only), and unlike exceptions the failure is an
/// inspectable value consistent with Validate() -> util::Error.
template <typename T>
class [[nodiscard]] Expected {
 public:
  /// Success.
  Expected(T value) : value_(std::move(value)) {}

  /// Failure; \p error must not be the success value.
  Expected(Error error) : error_(std::move(error)) {
    if (error_.ok()) {
      throw InternalError(
          "util::Expected: constructed from a success Error");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The failure status; the success value when ok().
  const Error& error() const { return error_; }

  /// The contained value; throws actg::InvalidArgument with the error's
  /// message when this holds a failure.
  T& value() & {
    error_.ThrowIfError();
    return *value_;
  }
  const T& value() const& {
    error_.ThrowIfError();
    return *value_;
  }
  T&& value() && {
    error_.ThrowIfError();
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Error error_;
};

}  // namespace util

}  // namespace actg

/// Validates a documented precondition; throws actg::InvalidArgument with
/// location information when the condition does not hold.
#define ACTG_CHECK(cond, message)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::actg::detail::ThrowInvalidArgument(__FILE__, __LINE__, #cond,   \
                                           (message));                 \
    }                                                                   \
  } while (false)

/// Validates an internal invariant; throws actg::InternalError when the
/// condition does not hold. Used where a failure indicates a library bug.
#define ACTG_ASSERT(cond, message)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::actg::detail::ThrowInternalError(__FILE__, __LINE__, #cond,    \
                                         (message));                  \
    }                                                                  \
  } while (false)

#endif  // ACTG_UTIL_ERROR_H
