/// \file error.h
/// Error handling for the actg library.
///
/// Following the C++ Core Guidelines (E.2), errors that a caller cannot
/// reasonably be expected to recover from locally are reported with
/// exceptions. All exceptions thrown by this library derive from
/// actg::Error so that callers can establish a single catch boundary.

#ifndef ACTG_UTIL_ERROR_H
#define ACTG_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace actg {

/// Base class of every exception thrown by the actg library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when input data (a graph, a platform, a trace, ...) violates a
/// documented precondition of the API that received it.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant of the library is violated. Seeing
/// this exception indicates a bug in actg itself, not in caller code.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void ThrowInvalidArgument(const char* file, int line,
                                       const char* expr,
                                       const std::string& message);
[[noreturn]] void ThrowInternalError(const char* file, int line,
                                     const char* expr,
                                     const std::string& message);
}  // namespace detail

namespace util {

/// Value-semantic error status for validation-style APIs (the Validate()
/// methods of the options structs). Unlike the exception hierarchy
/// above, an Error is an expected, inspectable outcome: Ok() means the
/// validated object is usable; otherwise message() explains the first
/// problem found. Contextually convertible to bool (true == failure) so
/// call sites read `if (auto err = opts.Validate()) ...`.
class [[nodiscard]] Error {
 public:
  /// The success value.
  Error() = default;

  /// A failure carrying \p message.
  static Error Invalid(std::string message) {
    Error e;
    e.message_ = std::move(message);
    return e;
  }

  bool ok() const { return message_.empty(); }
  explicit operator bool() const { return !ok(); }

  /// Explanation of the failure; empty on success.
  const std::string& message() const { return message_; }

  /// Throws actg::InvalidArgument when this is a failure; no-op on
  /// success. Lets constructors enforce validation without duplicating
  /// the message.
  void ThrowIfError() const {
    if (!ok()) throw InvalidArgument(message_);
  }

 private:
  std::string message_;
};

}  // namespace util

}  // namespace actg

/// Validates a documented precondition; throws actg::InvalidArgument with
/// location information when the condition does not hold.
#define ACTG_CHECK(cond, message)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::actg::detail::ThrowInvalidArgument(__FILE__, __LINE__, #cond,   \
                                           (message));                 \
    }                                                                   \
  } while (false)

/// Validates an internal invariant; throws actg::InternalError when the
/// condition does not hold. Used where a failure indicates a library bug.
#define ACTG_ASSERT(cond, message)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::actg::detail::ThrowInternalError(__FILE__, __LINE__, #cond,    \
                                         (message));                  \
    }                                                                  \
  } while (false)

#endif  // ACTG_UTIL_ERROR_H
