/// \file csv.h
/// Minimal CSV writer used to dump figure series (e.g. the Fig. 4 branch
/// probability traces) for external plotting.

#ifndef ACTG_UTIL_CSV_H
#define ACTG_UTIL_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace actg::util {

/// Returns "<dir>/<filename>" after creating \p dir (default "out",
/// which .gitignore excludes). All generated CSV series go through this
/// so experiment outputs never land in the source tree.
std::string OutputPath(const std::string& filename,
                       const std::string& dir = "out");

/// Writes rows of cells as RFC-4180-ish CSV (quotes cells containing
/// commas, quotes or newlines; doubles embedded quotes).
class CsvWriter {
 public:
  /// Binds the writer to an output stream; the stream must outlive it.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row of raw string cells.
  void WriteRow(const std::vector<std::string>& cells);

  /// Writes one row of numeric cells with the given decimal precision.
  void WriteRow(const std::vector<double>& cells, int decimals = 6);

 private:
  static std::string Escape(const std::string& cell);
  std::ostream& os_;
};

}  // namespace actg::util

#endif  // ACTG_UTIL_CSV_H
