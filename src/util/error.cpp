#include "util/error.h"

#include <sstream>

namespace actg::detail {

namespace {
std::string Format(const char* file, int line, const char* expr,
                   const std::string& message) {
  std::ostringstream os;
  os << message << " [failed: " << expr << " at " << file << ":" << line
     << "]";
  return os.str();
}
}  // namespace

void ThrowInvalidArgument(const char* file, int line, const char* expr,
                          const std::string& message) {
  throw InvalidArgument(Format(file, line, expr, message));
}

void ThrowInternalError(const char* file, int line, const char* expr,
                        const std::string& message) {
  throw InternalError(Format(file, line, expr, message));
}

}  // namespace actg::detail
