/// \file table.h
/// Console table rendering used by the benchmark harnesses to print the
/// paper's tables in a readable aligned format.

#ifndef ACTG_UTIL_TABLE_H
#define ACTG_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace actg::util {

/// Builds a text table row by row and renders it with per-column
/// alignment. Cells are strings; numeric helpers format with a fixed
/// number of decimals.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a fully formed row. Must have exactly one cell per column.
  void AddRow(std::vector<std::string> cells);

  /// Begins a new row to be filled with the Cell() helpers.
  TablePrinter& BeginRow();
  TablePrinter& Cell(const std::string& value);
  TablePrinter& Cell(const char* value);
  TablePrinter& Cell(double value, int decimals = 2);
  TablePrinter& Cell(int value);
  TablePrinter& Cell(std::size_t value);

  /// Renders the table (header, separator, rows) to the stream. A row
  /// under construction is flushed first.
  void Print(std::ostream& os);

  /// Formats a double with fixed decimals (shared helper).
  static std::string Format(double value, int decimals);

 private:
  void FlushRow();

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool row_open_ = false;
};

/// Prints a section banner (title between rules) used to separate the
/// reproduced tables/figures in bench output.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace actg::util

#endif  // ACTG_UTIL_TABLE_H
