#include "faults/injector.h"

#include <algorithm>

#include "util/error.h"

namespace actg::faults {

namespace {

// Substream tags. Each fault kind draws from its own Fork of the
// per-instance stream so adding draws to one kind never perturbs the
// others (the same discipline keeps --jobs counts equivalent).
constexpr std::uint64_t kOverrunStream = 1;
constexpr std::uint64_t kDropoutStream = 2;
constexpr std::uint64_t kLinkStream = 3;
constexpr std::uint64_t kDriftStream = 4;

}  // namespace

Injector::Injector(const FaultPlan& plan, const ctg::Ctg& graph,
                   const arch::Platform& platform, std::uint64_t seed)
    : plan_(plan),
      graph_(&graph),
      platform_(&platform),
      root_(plan.seed != 0 ? plan.seed : seed) {
  plan_.Validate().ThrowIfError();
  ACTG_CHECK(platform.pe_count() <= 64,
             "faults::Injector: the PE dropout mask supports at most 64 "
             "PEs");
}

double Injector::Effective(double probability) const {
  return std::min(1.0, probability * plan_.intensity);
}

std::uint64_t Injector::DropoutStarts(std::size_t instance) const {
  const double p = Effective(plan_.dropout.probability);
  if (p <= 0.0) return 0;
  util::Random rng = root_.Fork(instance).Fork(kDropoutStream);
  std::uint64_t mask = 0;
  for (std::size_t pe = 0; pe < platform_->pe_count(); ++pe) {
    if (rng.Bernoulli(p)) mask |= 1ULL << pe;
  }
  return mask;
}

bool Injector::LinkStart(std::size_t instance) const {
  const double p = Effective(plan_.link.probability);
  if (p <= 0.0) return false;
  util::Random rng = root_.Fork(instance).Fork(kLinkStream);
  return rng.Bernoulli(p);
}

InstanceFaults Injector::ForInstance(std::size_t instance) const {
  InstanceFaults faults;
  if (plan_.Empty()) return faults;

  // Execution-time overruns: one independent draw per task. Tasks that
  // end up inactive under the instance's assignment simply waste their
  // draw — drawing unconditionally keeps the realization independent of
  // the (drift-perturbed) branch decisions.
  const double overrun_p = Effective(plan_.overrun.probability);
  if (overrun_p > 0.0) {
    util::Random rng = root_.Fork(instance).Fork(kOverrunStream);
    for (std::size_t t = 0; t < graph_->task_count(); ++t) {
      double factor = 1.0;
      if (rng.Bernoulli(overrun_p)) {
        factor = rng.Uniform(plan_.overrun.min_factor,
                             plan_.overrun.max_factor);
      }
      if (factor > 1.0 && faults.task_time_factor.empty()) {
        faults.task_time_factor.assign(graph_->task_count(), 1.0);
      }
      if (!faults.task_time_factor.empty()) {
        faults.task_time_factor[t] = factor;
      }
    }
    faults.any |= !faults.task_time_factor.empty();
  }

  // Transient windows: a fault covers instance i when it *started* at
  // any j in (i - duration, i]. Start events are drawn from instance
  // j's own substream, so coverage needs no carried state.
  if (plan_.dropout.probability > 0.0) {
    const std::size_t span = std::min(plan_.dropout.duration, instance + 1);
    for (std::size_t back = 0; back < span; ++back) {
      faults.failed_pes |= DropoutStarts(instance - back);
    }
    // Never drop the whole platform: a fully failed mask would leave no
    // PE to execute or migrate to, which is outside the model (that is
    // an outage, not a degradation).
    const std::uint64_t all =
        platform_->pe_count() >= 64
            ? ~0ULL
            : ((1ULL << platform_->pe_count()) - 1);
    if (faults.failed_pes == all) {
      faults.failed_pes &= all >> 1;  // highest-index PE survives
    }
    if (faults.failed_pes != 0) {
      faults.rerun_penalty = plan_.dropout.rerun_penalty;
      faults.any = true;
    }
  }
  if (plan_.link.probability > 0.0) {
    const std::size_t span = std::min(plan_.link.duration, instance + 1);
    for (std::size_t back = 0; back < span; ++back) {
      if (LinkStart(instance - back)) {
        faults.comm_time_factor = 1.0 / plan_.link.bandwidth_factor;
        faults.any |= faults.comm_time_factor > 1.0;
        break;
      }
    }
  }
  return faults;
}

void Injector::ApplyDrift(std::size_t instance,
                          ctg::BranchAssignment& assignment) const {
  const double max_flip = Effective(plan_.drift.max_flip_probability);
  if (max_flip <= 0.0) return;
  const double ramp =
      std::min(1.0, static_cast<double>(instance + 1) /
                        static_cast<double>(plan_.drift.ramp_instances));
  const double flip_p = max_flip * ramp;
  util::Random rng = root_.Fork(instance).Fork(kDriftStream);
  for (TaskId fork : graph_->ForkIds()) {
    const int outcome = assignment.Get(fork);
    const int arity = graph_->OutcomeCount(fork);
    // Fixed two draws per fork whether or not it flips, so the
    // realization at later forks never depends on earlier outcomes.
    const bool flip = rng.Bernoulli(flip_p);
    const int other = arity >= 2 ? rng.UniformInt(0, arity - 2) : 0;
    if (outcome < 0 || !flip || arity < 2) continue;
    assignment.Set(fork, other >= outcome ? other + 1 : other);
  }
}

}  // namespace actg::faults
