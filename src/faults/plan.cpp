#include "faults/plan.h"

#include <sstream>
#include <string>
#include <vector>

namespace actg::faults {

namespace {

bool ProbabilityOk(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

util::Error FaultPlan::Validate() const {
  if (!(intensity >= 0.0)) {
    return util::Error::Invalid("FaultPlan: intensity must be >= 0");
  }
  if (!ProbabilityOk(overrun.probability)) {
    return util::Error::Invalid(
        "FaultPlan: overrun.probability must lie in [0, 1]");
  }
  if (!(overrun.min_factor >= 1.0) ||
      !(overrun.max_factor >= overrun.min_factor)) {
    return util::Error::Invalid(
        "FaultPlan: overrun factors need 1 <= min_factor <= max_factor");
  }
  if (!ProbabilityOk(dropout.probability)) {
    return util::Error::Invalid(
        "FaultPlan: dropout.probability must lie in [0, 1]");
  }
  if (dropout.duration == 0) {
    return util::Error::Invalid("FaultPlan: dropout.duration must be > 0");
  }
  if (!(dropout.rerun_penalty >= 1.0)) {
    return util::Error::Invalid(
        "FaultPlan: dropout.rerun_penalty must be >= 1");
  }
  if (!ProbabilityOk(link.probability)) {
    return util::Error::Invalid(
        "FaultPlan: link.probability must lie in [0, 1]");
  }
  if (!(link.bandwidth_factor > 0.0) || link.bandwidth_factor > 1.0) {
    return util::Error::Invalid(
        "FaultPlan: link.bandwidth_factor must lie in (0, 1]");
  }
  if (link.duration == 0) {
    return util::Error::Invalid("FaultPlan: link.duration must be > 0");
  }
  if (!ProbabilityOk(drift.max_flip_probability)) {
    return util::Error::Invalid(
        "FaultPlan: drift.max_flip_probability must lie in [0, 1]");
  }
  if (drift.ramp_instances == 0) {
    return util::Error::Invalid(
        "FaultPlan: drift.ramp_instances must be > 0");
  }
  return {};
}

bool FaultPlan::Empty() const {
  if (intensity <= 0.0) return true;
  return overrun.probability <= 0.0 && dropout.probability <= 0.0 &&
         link.probability <= 0.0 && drift.max_flip_probability <= 0.0;
}

namespace {

/// Line-oriented reader mirroring io/text_format: '#' starts a comment,
/// blank lines are skipped, failures carry the line number.
struct PlanReader {
  std::istream& is;
  int line_number = 0;

  [[noreturn]] void Fail(const std::string& message) const {
    throw InvalidArgument("fault_plan line " +
                          std::to_string(line_number) + ": " + message);
  }

  bool NextTokens(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(is, line)) {
      ++line_number;
      if (const auto hash = line.find('#'); hash != std::string::npos) {
        line.erase(hash);
      }
      std::istringstream split(line);
      tokens.clear();
      for (std::string tok; split >> tok;) tokens.push_back(tok);
      if (!tokens.empty()) return true;
    }
    return false;
  }

  double Number(const std::string& token) const {
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &used);
    } catch (const std::exception&) {
      Fail("expected a number, got '" + token + "'");
    }
    if (used != token.size()) Fail("trailing garbage in '" + token + "'");
    return value;
  }

  std::size_t Count(const std::string& token) const {
    const double value = Number(token);
    if (value < 0.0 || value != static_cast<std::size_t>(value)) {
      Fail("expected a non-negative integer, got '" + token + "'");
    }
    return static_cast<std::size_t>(value);
  }
};

FaultPlan ParseFaultPlanImpl(std::istream& is) {
  PlanReader reader{is};
  std::vector<std::string> tokens;
  if (!reader.NextTokens(tokens) || tokens.size() != 2 ||
      tokens[0] != "faults" || tokens[1] != "v1") {
    reader.Fail("expected header 'faults v1'");
  }
  FaultPlan plan;
  while (reader.NextTokens(tokens)) {
    const std::string& directive = tokens[0];
    if (directive == "end") {
      plan.Validate().ThrowIfError();
      return plan;
    }
    if (directive == "intensity") {
      if (tokens.size() != 2) reader.Fail("intensity needs <scale>");
      plan.intensity = reader.Number(tokens[1]);
    } else if (directive == "seed") {
      if (tokens.size() != 2) reader.Fail("seed needs <uint64>");
      plan.seed = static_cast<std::uint64_t>(reader.Count(tokens[1]));
    } else if (directive == "overrun") {
      if (tokens.size() != 4) {
        reader.Fail("overrun needs <prob> <min_factor> <max_factor>");
      }
      plan.overrun.probability = reader.Number(tokens[1]);
      plan.overrun.min_factor = reader.Number(tokens[2]);
      plan.overrun.max_factor = reader.Number(tokens[3]);
    } else if (directive == "dropout") {
      if (tokens.size() != 4) {
        reader.Fail("dropout needs <prob> <duration> <rerun_penalty>");
      }
      plan.dropout.probability = reader.Number(tokens[1]);
      plan.dropout.duration = reader.Count(tokens[2]);
      plan.dropout.rerun_penalty = reader.Number(tokens[3]);
    } else if (directive == "link") {
      if (tokens.size() != 4) {
        reader.Fail("link needs <prob> <bandwidth_factor> <duration>");
      }
      plan.link.probability = reader.Number(tokens[1]);
      plan.link.bandwidth_factor = reader.Number(tokens[2]);
      plan.link.duration = reader.Count(tokens[3]);
    } else if (directive == "drift") {
      if (tokens.size() != 3) {
        reader.Fail("drift needs <max_flip_prob> <ramp_instances>");
      }
      plan.drift.max_flip_probability = reader.Number(tokens[1]);
      plan.drift.ramp_instances = reader.Count(tokens[2]);
    } else {
      reader.Fail("unknown directive '" + directive + "'");
    }
  }
  reader.Fail("missing 'end'");
}

}  // namespace

util::Expected<FaultPlan> ParseFaultPlan(std::istream& is) {
  try {
    return ParseFaultPlanImpl(is);
  } catch (const InvalidArgument& e) {
    return util::Error::Invalid(e.what());
  }
}

void WriteFaultPlan(std::ostream& os, const FaultPlan& plan) {
  os << "faults v1\n";
  os << "intensity " << plan.intensity << "\n";
  if (plan.seed != 0) os << "seed " << plan.seed << "\n";
  os << "overrun " << plan.overrun.probability << " "
     << plan.overrun.min_factor << " " << plan.overrun.max_factor << "\n";
  os << "dropout " << plan.dropout.probability << " "
     << plan.dropout.duration << " " << plan.dropout.rerun_penalty << "\n";
  os << "link " << plan.link.probability << " "
     << plan.link.bandwidth_factor << " " << plan.link.duration << "\n";
  os << "drift " << plan.drift.max_flip_probability << " "
     << plan.drift.ramp_instances << "\n";
  os << "end\n";
}

}  // namespace actg::faults
