/// \file injector.h
/// Deterministic realization of a FaultPlan.
///
/// An Injector turns a validated plan into per-instance perturbations.
/// Determinism contract (mirrors util::Random::Fork and the pool): the
/// faults of instance i are a pure function of (plan, seed, i) — the
/// injector keeps no mutable state, so runs split across any number of
/// workers, executed in any order, or re-executed for one instance in
/// isolation, all see bit-identical perturbations. Transient windows
/// (PE dropouts, link degradation lasting several instances) are
/// resolved by re-drawing the *start* events of the covering instances
/// from their own substreams instead of carrying state forward.

#ifndef ACTG_FAULTS_INJECTOR_H
#define ACTG_FAULTS_INJECTOR_H

#include <cstdint>
#include <vector>

#include "arch/platform.h"
#include "ctg/condition.h"
#include "ctg/graph.h"
#include "faults/plan.h"
#include "util/rng.h"

namespace actg::faults {

/// The perturbations one CTG instance executes under. Consumed by
/// sim::ExecuteInstance; an all-defaults (or !any) value is bit-identical
/// to executing without faults.
struct InstanceFaults {
  /// Per-task execution-time multiplier (>= 1); empty means all 1.
  std::vector<double> task_time_factor;
  /// Bitmask of PEs that are down for this instance (bit = PeId index).
  std::uint64_t failed_pes = 0;
  /// Re-run multiplier applied to tasks placed on a failed PE.
  double rerun_penalty = 1.0;
  /// Multiplier on every cross-PE communication time (>= 1).
  double comm_time_factor = 1.0;
  /// True when any field deviates from the identity perturbation.
  bool any = false;

  bool PeFailed(PeId pe) const {
    return (failed_pes >> pe.index()) & 1ULL;
  }
};

/// Stateless fault source bound to one graph/platform pair. The
/// referenced graph and platform must outlive the injector.
class Injector {
 public:
  /// Validates \p plan (throws actg::InvalidArgument on a bad one; the
  /// platform must have at most 64 PEs for the dropout mask). The
  /// effective seed is plan.seed when non-zero, else \p seed.
  Injector(const FaultPlan& plan, const ctg::Ctg& graph,
           const arch::Platform& platform, std::uint64_t seed);

  /// Perturbations of instance \p instance. Pure function of
  /// (plan, seed, instance).
  InstanceFaults ForInstance(std::size_t instance) const;

  /// Applies the plan's branch-profile drift ramp to \p assignment in
  /// place (flips resolved fork decisions with the ramped probability).
  /// Pure function of (plan, seed, instance, assignment).
  void ApplyDrift(std::size_t instance,
                  ctg::BranchAssignment& assignment) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  /// Probability scaled by the plan intensity, clamped to [0, 1].
  double Effective(double probability) const;
  /// Mask of PEs whose dropout *starts* at instance \p instance.
  std::uint64_t DropoutStarts(std::size_t instance) const;
  /// True when a link-degradation window starts at instance \p instance.
  bool LinkStart(std::size_t instance) const;

  FaultPlan plan_;
  const ctg::Ctg* graph_;
  const arch::Platform* platform_;
  util::Random root_;
};

}  // namespace actg::faults

#endif  // ACTG_FAULTS_INJECTOR_H
