/// \file plan.h
/// Fault-injection scenario configuration (the FaultPlan).
///
/// The paper's premise is workloads that deviate from the profile a
/// schedule was built with, but the rest of the library only models
/// *benign* non-determinism (branch outcomes). A FaultPlan describes the
/// malign deviations a production deployment must survive:
///
///   * execution-time overruns past WCET (bounded uniform factor),
///   * transient PE dropouts (tasks stranded on a failed PE re-run at a
///     penalty until the controller migrates them away),
///   * link degradation (bandwidth cut, so communication inflates),
///   * branch-profile drift ramps (decisions flip with a probability
///     that ramps up over the run, pulling the real distribution away
///     from anything the profiler has seen).
///
/// Like every other options struct, a plan Validates() up front; the
/// Injector (injector.h) turns a validated plan into deterministic
/// per-instance perturbations. `intensity` is the sweep knob: it scales
/// every event probability, so bench_faults can dial one plan from
/// "nothing ever fires" (0) to "full configured rate" (1).

#ifndef ACTG_FAULTS_PLAN_H
#define ACTG_FAULTS_PLAN_H

#include <cstdint>
#include <istream>
#include <ostream>

#include "util/error.h"

namespace actg::faults {

/// Per-task execution-time overrun beyond WCET. Each active task of each
/// instance independently overruns with `probability`, multiplying its
/// execution time (and, at fixed voltage, its energy) by a uniform draw
/// from [min_factor, max_factor].
struct OverrunFault {
  double probability = 0.0;
  double min_factor = 1.0;
  double max_factor = 1.0;
};

/// Transient PE dropout. Each instance, each PE independently starts a
/// dropout with `probability`; a dropout lasts `duration` instances.
/// Tasks scheduled on a failed PE re-run at `rerun_penalty` times their
/// execution time and energy (checkpoint-restart on the dead PE) until
/// the degradation ladder reschedules them onto live PEs.
struct PeDropoutFault {
  double probability = 0.0;
  std::size_t duration = 1;
  double rerun_penalty = 2.0;
};

/// Link degradation: with `probability` per instance a degradation
/// window of `duration` instances opens during which every link's
/// bandwidth is cut to `bandwidth_factor` of nominal, inflating all
/// cross-PE communication times by 1/bandwidth_factor (transfer energy
/// is unchanged — the same bytes move, just slower).
struct LinkDegradationFault {
  double probability = 0.0;
  double bandwidth_factor = 1.0;
  std::size_t duration = 1;
};

/// Branch-profile drift ramp: each resolved fork decision of instance i
/// flips to a uniformly random other outcome with probability
/// max_flip_probability * min(1, (i+1)/ramp_instances). Unlike the
/// sinusoid test vectors this drift is invisible to the trace profile
/// the schedules were built from.
struct DriftRamp {
  double max_flip_probability = 0.0;
  std::size_t ramp_instances = 1;
};

/// A complete injection scenario. Default-constructed plans are empty
/// (nothing can ever fire), and an empty plan through the injector is
/// bit-identical to not injecting at all.
struct FaultPlan {
  /// Global scale on every event probability, the sweep knob. 0 turns
  /// the plan off without touching the per-fault configuration.
  double intensity = 1.0;
  /// Injector seed; 0 means "use the seed the caller supplies".
  std::uint64_t seed = 0;
  OverrunFault overrun;
  PeDropoutFault dropout;
  LinkDegradationFault link;
  DriftRamp drift;

  /// Ok when every knob is usable: probabilities in [0, 1], intensity
  /// >= 0, factor bounds ordered with min_factor >= 1, rerun_penalty
  /// >= 1, bandwidth_factor in (0, 1], durations and the ramp length
  /// positive.
  util::Error Validate() const;

  /// True when no fault can ever fire (zero intensity or every event
  /// probability zero).
  bool Empty() const;
};

/// Parses a plan from the library's line-oriented text format:
///
///   faults v1
///   intensity <scale>               # optional, default 1
///   seed <uint64>                   # optional, default 0
///   overrun <prob> <min_factor> <max_factor>
///   dropout <prob> <duration> <rerun_penalty>
///   link <prob> <bandwidth_factor> <duration>
///   drift <max_flip_prob> <ramp_instances>
///   end
///
/// Every directive is optional; malformed input is reported as a
/// util::Error with a "fault_plan line N: ..." diagnostic.
util::Expected<FaultPlan> ParseFaultPlan(std::istream& is);

/// Serializes \p plan in the ParseFaultPlan format.
void WriteFaultPlan(std::ostream& os, const FaultPlan& plan);

}  // namespace actg::faults

#endif  // ACTG_FAULTS_PLAN_H
