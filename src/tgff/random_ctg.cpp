#include "tgff/random_ctg.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/error.h"

namespace actg::tgff {

namespace {

/// Minimum number of tasks a conditional block with \p forks forks
/// (itself plus nested ones) requires: fork + or-join + two arms.
int MinBlockTasks(int forks) { return 4 * forks; }

/// Splits \p total into \p minima.size() parts, each at least its
/// minimum, distributing the surplus randomly with the given relative
/// weights (uniform when \p weights is empty).
std::vector<int> SplitBudget(int total, const std::vector<int>& minima,
                             util::Random& rng,
                             const std::vector<double>& weights = {}) {
  int base = 0;
  for (int m : minima) base += m;
  ACTG_ASSERT(total >= base, "budget smaller than the sum of minima");
  std::vector<int> parts = minima;
  const std::vector<double> w =
      weights.empty() ? std::vector<double>(minima.size(), 1.0) : weights;
  ACTG_ASSERT(w.size() == minima.size(), "weight/minima size mismatch");
  for (int surplus = total - base; surplus > 0; --surplus) {
    parts[rng.Categorical(w)] += 1;
  }
  return parts;
}

/// Graph construction state shared by the recursive builders.
struct Gen {
  ctg::CtgBuilder builder;
  util::Random rng;
  const RandomCtgParams* params;
  int next_name = 0;

  explicit Gen(const RandomCtgParams& p) : rng(p.seed), params(&p) {}

  TaskId NewTask() {
    return builder.AddTask("t" + std::to_string(next_name++));
  }
  TaskId NewOrTask() {
    return builder.AddOrTask("t" + std::to_string(next_name++));
  }
  double Comm() {
    return rng.Uniform(params->comm_min_kb, params->comm_max_kb);
  }
};

/// A sub-graph with a unique entry and a unique exit task.
struct Segment {
  TaskId entry;
  TaskId exit;
};

/// Builds a chain of \p tasks tasks (>= 1). With spare budget it may
/// widen into 2-wide parallel stages (fork-join parallelism; only used
/// for Category 1). First and last stages stay single so the segment has
/// a unique entry and exit.
Segment BuildChain(Gen& gen, int tasks, bool allow_parallel) {
  ACTG_ASSERT(tasks >= 1, "chain needs at least one task");
  std::vector<std::vector<TaskId>> stages;
  int remaining = tasks;
  while (remaining > 0) {
    // Widen interior stages (TGFF-style graphs have parallel width;
    // width above the PE count is what makes the mapping decisions and
    // the mutual-exclusion-aware PE sharing matter). First and last
    // stages stay single so the segment has a unique entry and exit.
    int width = 1;
    if (allow_parallel && !stages.empty() && remaining > 2) {
      const double draw = gen.rng.UniformUnit();
      if (remaining > 3 && draw < 0.25) {
        width = 3;
      } else if (draw < 0.60) {
        width = 2;
      }
    }
    std::vector<TaskId> stage;
    for (int i = 0; i < width; ++i) stage.push_back(gen.NewTask());
    remaining -= width;
    stages.push_back(std::move(stage));
  }
  for (std::size_t s = 0; s + 1 < stages.size(); ++s) {
    for (TaskId src : stages[s]) {
      for (TaskId dst : stages[s + 1]) {
        gen.builder.AddEdge(src, dst, gen.Comm());
      }
    }
  }
  return Segment{stages.front().front(), stages.back().front()};
}

Segment BuildCondBlock(Gen& gen, int tasks, int forks);

/// Builds an arm: a chain with up to \p forks nested conditional blocks
/// spliced in (Category 1 nesting).
Segment BuildArm(Gen& gen, int tasks, int forks) {
  if (forks == 0) return BuildChain(gen, tasks, /*allow_parallel=*/true);
  // Reserve a chain task before and (optionally) after the nested block
  // when budget allows, then recurse.
  const int block_min = MinBlockTasks(forks);
  int pre = 0;
  int post = 0;
  int spare = tasks - block_min;
  ACTG_ASSERT(spare >= 0, "arm budget below nested block minimum");
  if (spare > 0) {
    pre = gen.rng.UniformInt(0, spare);
    spare -= pre;
    post = gen.rng.UniformInt(0, spare);
  }
  const int block_tasks = tasks - pre - post;
  Segment block = BuildCondBlock(gen, block_tasks, forks);
  Segment result = block;
  if (pre > 0) {
    Segment chain = BuildChain(gen, pre, true);
    gen.builder.AddEdge(chain.exit, block.entry, gen.Comm());
    result.entry = chain.entry;
  }
  if (post > 0) {
    Segment chain = BuildChain(gen, post, true);
    gen.builder.AddEdge(block.exit, chain.entry, gen.Comm());
    result.exit = chain.exit;
  }
  return result;
}

/// Builds a conditional block: fork task, two mutually exclusive arms,
/// or-node join. Consumes exactly \p tasks tasks and \p forks forks
/// (the block's own fork plus nested ones distributed into the arms).
Segment BuildCondBlock(Gen& gen, int tasks, int forks) {
  ACTG_ASSERT(forks >= 1, "conditional block needs a fork");
  ACTG_ASSERT(tasks >= MinBlockTasks(forks),
              "conditional block budget too small");
  const TaskId fork = gen.NewTask();
  const TaskId join = gen.NewOrTask();

  const int nested = forks - 1;
  const int arm_forks_a = nested > 0 ? gen.rng.UniformInt(0, nested) : 0;
  const int arm_forks_b = nested - arm_forks_a;
  const std::vector<int> arm_tasks = SplitBudget(
      tasks - 2,
      {std::max(1, MinBlockTasks(arm_forks_a)),
       std::max(1, MinBlockTasks(arm_forks_b))},
      gen.rng);

  const Segment arm_a = BuildArm(gen, arm_tasks[0], arm_forks_a);
  const Segment arm_b = BuildArm(gen, arm_tasks[1], arm_forks_b);
  gen.builder.AddConditionalEdge(fork, arm_a.entry, 0, gen.Comm());
  gen.builder.AddConditionalEdge(fork, arm_b.entry, 1, gen.Comm());
  gen.builder.AddEdge(arm_a.exit, join, gen.Comm());
  gen.builder.AddEdge(arm_b.exit, join, gen.Comm());
  return Segment{fork, join};
}

/// Category 1: pre-chain, a sequence of (possibly nested) conditional
/// blocks separated by chains, post-chain.
void BuildForkJoin(Gen& gen, int tasks, int forks) {
  if (forks == 0) {
    BuildChain(gen, tasks, true);
    return;
  }
  // Choose how many top-level blocks carry the forks.
  const int top_blocks = gen.rng.UniformInt(1, forks);
  std::vector<int> block_forks(static_cast<std::size_t>(top_blocks), 1);
  for (int extra = forks - top_blocks; extra > 0; --extra) {
    block_forks[static_cast<std::size_t>(
        gen.rng.UniformInt(0, top_blocks - 1))] += 1;
  }
  // Budget: one entry task, one exit task, blocks in between. Surplus
  // tasks go predominantly into the conditional blocks — the paper's
  // CTGs are dominated by their conditional branches ("branches which
  // may activate or deactivate a large set of operations", Section I),
  // which is what makes mutual-exclusion-aware scheduling matter.
  std::vector<int> minima{1};  // entry chain
  std::vector<double> weights{1.0};
  for (int f : block_forks) {
    minima.push_back(MinBlockTasks(f));
    weights.push_back(6.0);
  }
  minima.push_back(1);  // exit chain
  weights.push_back(1.0);
  const std::vector<int> budget =
      SplitBudget(tasks, minima, gen.rng, weights);

  Segment head = BuildChain(gen, budget.front(), true);
  TaskId tail = head.exit;
  for (int b = 0; b < top_blocks; ++b) {
    const Segment block = BuildCondBlock(
        gen, budget[static_cast<std::size_t>(b) + 1],
        block_forks[static_cast<std::size_t>(b)]);
    gen.builder.AddEdge(tail, block.entry, gen.Comm());
    tail = block.exit;
  }
  Segment foot = BuildChain(gen, budget.back(), true);
  gen.builder.AddEdge(tail, foot.entry, gen.Comm());
}

/// Category 2: a root task spawns one plain chain plus one sub-chain per
/// fork; each fork's arms run to their own sinks (no joins, no nesting,
/// no parallel stages).
void BuildFlat(Gen& gen, int tasks, int forks) {
  if (forks == 0) {
    BuildChain(gen, tasks, false);
    return;
  }
  // Minimum per fork chain: fork task + one task per arm = 3. The root
  // task is created outside the budget split. Unlike Category 1, the
  // unconditional main chain carries most of the surplus work: without
  // fork-join nesting the conditional side chains stay comparatively
  // small, which is part of why the paper finds the adaptive algorithm
  // "favors the application in the first category".
  std::vector<int> minima{1};  // main chain
  std::vector<double> weights{4.0};
  for (int f = 0; f < forks; ++f) {
    minima.push_back(3);
    weights.push_back(1.0);
  }
  const std::vector<int> budget =
      SplitBudget(tasks - 1, minima, gen.rng, weights);

  const TaskId root = gen.NewTask();
  const Segment main_chain = BuildChain(gen, budget[0], false);
  gen.builder.AddEdge(root, main_chain.entry, gen.Comm());

  for (int f = 0; f < forks; ++f) {
    int chain_tasks = budget[static_cast<std::size_t>(f) + 1];
    // Optional unconditional prefix before the fork.
    TaskId attach = root;
    while (chain_tasks > 3 && gen.rng.Bernoulli(0.5)) {
      const TaskId pre = gen.NewTask();
      gen.builder.AddEdge(attach, pre, gen.Comm());
      attach = pre;
      --chain_tasks;
    }
    const TaskId fork = gen.NewTask();
    gen.builder.AddEdge(attach, fork, gen.Comm());
    --chain_tasks;
    const std::vector<int> arms =
        SplitBudget(chain_tasks, {1, 1}, gen.rng);
    const Segment arm_a = BuildChain(gen, arms[0], false);
    const Segment arm_b = BuildChain(gen, arms[1], false);
    gen.builder.AddConditionalEdge(fork, arm_a.entry, 0, gen.Comm());
    gen.builder.AddConditionalEdge(fork, arm_b.entry, 1, gen.Comm());
  }
}

arch::Platform BuildPlatform(const ctg::Ctg& graph,
                             const RandomCtgParams& params,
                             util::Random& rng) {
  arch::PlatformBuilder builder(
      graph.task_count(), static_cast<std::size_t>(params.pe_count),
      params.bandwidth_kb_per_ms, params.tx_energy_mj_per_kb);
  std::vector<double> pe_power(static_cast<std::size_t>(params.pe_count));
  for (auto& power : pe_power) {
    power = rng.Uniform(params.power_min, params.power_max);
  }
  for (int pe = 0; pe < params.pe_count; ++pe) {
    builder.SetMinSpeedRatio(PeId{pe}, params.min_speed_ratio);
  }
  for (TaskId task : graph.TaskIds()) {
    const double base = rng.Uniform(params.wcet_min_ms, params.wcet_max_ms);
    for (int pe = 0; pe < params.pe_count; ++pe) {
      const double wcet =
          base * rng.Uniform(params.hetero_min, params.hetero_max);
      const double energy = wcet * pe_power[static_cast<std::size_t>(pe)] *
                            rng.Uniform(0.9, 1.1);
      builder.SetTaskCost(task, PeId{pe}, wcet, energy);
    }
  }
  return std::move(builder).Build();
}

}  // namespace

util::Error RandomCtgParams::Validate() const {
  if (task_count < 1) {
    return util::Error::Invalid(
        "RandomCtgParams: task_count must be >= 1");
  }
  if (fork_count < 0) {
    return util::Error::Invalid(
        "RandomCtgParams: fork_count must be >= 0");
  }
  if (pe_count < 1) {
    return util::Error::Invalid("RandomCtgParams: pe_count must be >= 1");
  }
  const int min_tasks = category == Category::kForkJoin
                            ? MinBlockTasks(fork_count) + 2
                            : 2 + 3 * fork_count;
  if (task_count < min_tasks) {
    return util::Error::Invalid(
        "RandomCtgParams: task_count too small for the requested "
        "fork_count (need >= " +
        std::to_string(min_tasks) + ")");
  }
  if (!(wcet_min_ms > 0.0) || wcet_max_ms < wcet_min_ms) {
    return util::Error::Invalid(
        "RandomCtgParams: WCET range must be positive and ordered");
  }
  if (!(hetero_min > 0.0) || hetero_max < hetero_min) {
    return util::Error::Invalid(
        "RandomCtgParams: heterogeneity range must be positive and "
        "ordered");
  }
  if (!(power_min > 0.0) || power_max < power_min) {
    return util::Error::Invalid(
        "RandomCtgParams: power range must be positive and ordered");
  }
  if (comm_min_kb < 0.0 || comm_max_kb < comm_min_kb) {
    return util::Error::Invalid(
        "RandomCtgParams: comm range must be non-negative and ordered");
  }
  if (!(bandwidth_kb_per_ms > 0.0)) {
    return util::Error::Invalid(
        "RandomCtgParams: bandwidth must be positive");
  }
  if (!(min_speed_ratio > 0.0) || min_speed_ratio > 1.0) {
    return util::Error::Invalid(
        "RandomCtgParams: min_speed_ratio must lie in (0, 1]");
  }
  return {};
}

util::Expected<RandomCase> MakeRandomCtg(const RandomCtgParams& params) {
  if (util::Error err = params.Validate()) return err;

  Gen gen(params);
  if (params.category == Category::kForkJoin) {
    BuildForkJoin(gen, params.task_count, params.fork_count);
  } else {
    BuildFlat(gen, params.task_count, params.fork_count);
  }
  ctg::Ctg graph = std::move(gen.builder).Build();
  ACTG_ASSERT(static_cast<int>(graph.task_count()) == params.task_count,
              "generator produced the wrong task count");
  ACTG_ASSERT(static_cast<int>(graph.ForkIds().size()) ==
                  params.fork_count,
              "generator produced the wrong fork count");
  arch::Platform platform = BuildPlatform(graph, params, gen.rng);
  return RandomCase{std::move(graph), std::move(platform)};
}

}  // namespace actg::tgff
