/// \file path_engine.h
/// Reusable path-enumeration workspace for the reschedule hot path.
///
/// The adaptive controller re-runs DLS + path enumeration + stretching
/// on every threshold crossing; PathSet (paths.h) rebuilds all of its
/// scaffolding — adjacency, per-path task/edge/guard vectors, spanning
/// lists — from scratch on every call, and carries a DNF guard per path
/// whose conjunctions allocate at every DFS step. A PathEngine is
/// constructed once per (graph, analysis, platform) and owns all of
/// that storage: flat task/edge/guard pools, the scheduled-DAG
/// adjacency, the DFS guard stack, per-task spanning lists, and a
/// sched::DlsWorkspace for the scheduler's scratch buffers. Repeated
/// Enumerate() calls reuse every buffer's capacity, and path guards are
/// kept in the compiled bitset form of condition_bitset.h, so the
/// realizability test at each DFS step and the guard-vs-minterm
/// compatibility tests during stretching are word ops.
///
/// The engine falls back to the DNF algebra (with the
/// "guard.dnf_fallbacks" metrics counter) when the graph does not fit
/// the fixed bit width; PathEngineOptions::force_dnf selects the same
/// DNF mode explicitly so benchmarks can compare the two
/// representations in one binary. Both modes enumerate the same paths
/// in the same order and answer the same predicates — the bitset is a
/// representation change, not a semantics change.
///
/// Lifetime and ownership rules: the engine borrows graph/analysis/
/// platform (they must outlive it) and is bound to them for life; every
/// Enumerate() call must pass a Schedule over those same objects. One
/// engine serves one thread at a time; concurrent controllers each own
/// their own engine (see adaptive::AdaptiveController).

#ifndef ACTG_DVFS_PATH_ENGINE_H
#define ACTG_DVFS_PATH_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "ctg/condition_bitset.h"
#include "sched/dls.h"
#include "sched/schedule.h"

namespace actg::dvfs {

/// Construction-time knobs of a PathEngine.
struct PathEngineOptions {
  /// Guard against pathological path explosion (same contract as
  /// PathSet: enumeration throws actg::InvalidArgument past the limit).
  std::size_t max_paths = 1 << 20;
  /// Forces the DNF guard representation even when the graph fits the
  /// bitset width. Exists so bench_micro can measure bitset vs DNF in
  /// one binary; production callers leave it false.
  bool force_dnf = false;
};

/// Reusable path-enumeration + stretch workspace. See the file comment
/// for the lifetime rules.
class PathEngine {
 public:
  PathEngine(const ctg::Ctg& graph, const ctg::ActivationAnalysis& analysis,
             const arch::Platform& platform, PathEngineOptions options = {});

  const ctg::Ctg& graph() const { return *graph_; }
  const ctg::ActivationAnalysis& analysis() const { return *analysis_; }
  const PathEngineOptions& options() const { return options_; }

  /// True when path guards are kept in bitset form; false in DNF mode
  /// (fallback or force_dnf).
  bool using_bitset() const { return use_bitset_; }

  /// Enumerates all source-to-sink paths of \p schedule's scheduled DAG
  /// into the engine's storage, replacing any previous enumeration.
  /// The schedule must be over the engine's graph/analysis/platform.
  /// Semantics match PathSet: with \p drop_unrealizable, paths whose
  /// guard is false are skipped during the DFS; without it they are
  /// kept (mutex-blind Reference Algorithm 1 analysis).
  void Enumerate(const sched::Schedule& schedule,
                 bool drop_unrealizable = true);

  /// Number of paths of the current enumeration.
  std::size_t size() const { return paths_.size(); }

  /// Tasks of path \p i in path order.
  std::span<const TaskId> TasksOf(std::size_t i) const;

  /// Edges of path \p i (between consecutive tasks; nullopt for
  /// pseudo/control edges).
  std::span<const std::optional<EdgeId>> EdgesOf(std::size_t i) const;

  double comm_ms(std::size_t i) const { return paths_.at(i).comm_ms; }
  double delay_ms(std::size_t i) const { return paths_.at(i).delay_ms; }
  double unlocked_ms(std::size_t i) const {
    return paths_.at(i).unlocked_ms;
  }

  /// Remaining slack of path \p i against \p deadline_ms.
  double Slack(std::size_t i, double deadline_ms) const {
    return deadline_ms - delay_ms(i);
  }

  /// Distributable slack per unit of unlocked execution time (see
  /// Path::SlackRatio).
  double SlackRatio(std::size_t i, double deadline_ms) const;

  /// Indices of the paths that span \p task.
  const std::vector<std::size_t>& Spanning(TaskId task) const {
    return by_task_.at(task.index());
  }

  /// True when path \p i's guard and \p m can hold simultaneously
  /// (satisfiability of the conjunction — the predicate the stretching
  /// heuristic needs per Γ(τ) minterm).
  bool GuardCompatibleWith(std::size_t i, const ctg::Minterm& m) const;

  /// prob(p, τ): joint probability of the conditional branches on path
  /// \p i lying at or after \p task.
  double ProbAfter(std::size_t i, TaskId task,
                   const ctg::BranchProbabilities& probs) const;

  /// Commits a stretched-and-locked task (see PathSet::CommitTask).
  void CommitTask(TaskId task, double extra_ms, double nominal_ms);

  /// Restores every path's delay/unlocked state to its value right
  /// after the last Enumerate(), undoing all CommitTask() calls since.
  /// This is the delta re-enumeration primitive of the warm-start
  /// reschedule path: when the scheduled DAG's shape is unchanged from
  /// the last enumeration (same per-PE task sequences), a stretcher can
  /// rewind instead of re-running the DFS. No-op before the first
  /// enumeration.
  void RewindCommits();

  /// Monotonic count of Enumerate() calls, so callers can detect that
  /// the enumeration they captured is still the engine's current one
  /// (RewindCommits() would otherwise rewind to a different shape).
  std::uint64_t enumeration_id() const { return enumeration_id_; }

  /// Largest delay over all paths of the current enumeration.
  double MaxDelay() const;

  /// Path \p i's guard in DNF form; only available in DNF mode
  /// (!using_bitset()), for tests and the mutex-blind baseline.
  const ctg::Guard& DnfGuard(std::size_t i) const;

  /// Scratch buffers for sched::RunDls, so a controller-owned engine
  /// also amortizes the scheduler's per-call allocations.
  sched::DlsWorkspace& dls_workspace() { return dls_workspace_; }

 private:
  struct PathRecord {
    std::size_t task_begin = 0;
    std::size_t task_count = 0;
    std::size_t edge_begin = 0;  // task_count - 1 entries
    std::size_t guard_begin = 0;  // bitset mode: into guard_pool_
    std::size_t guard_count = 0;
    double comm_ms = 0.0;
    double delay_ms = 0.0;
    double unlocked_ms = 0.0;
  };

  void VisitBit(const sched::Schedule& schedule, TaskId task,
                std::size_t depth, bool drop_unrealizable);
  void VisitDnf(const sched::Schedule& schedule, TaskId task,
                std::size_t depth, bool drop_unrealizable);
  void Emit(const sched::Schedule& schedule, std::size_t depth);
  std::size_t PositionOf(std::size_t i, TaskId task) const;

  const ctg::Ctg* graph_;
  const ctg::ActivationAnalysis* analysis_;
  const arch::Platform* platform_;
  PathEngineOptions options_;
  bool use_bitset_ = false;

  // Compiled once at construction (bitset mode).
  std::vector<ctg::BitMinterm> edge_cond_bits_;  // dense by edge index
  std::vector<bool> edge_has_cond_;

  // Reused across Enumerate() calls.
  sched::Schedule::DagAdjacency adj_;
  std::vector<bool> has_pred_;
  std::vector<ctg::BitGuard> bit_stack_;   // DFS guard per depth
  std::vector<ctg::Guard> dnf_stack_;      // DNF mode
  ctg::BitGuard and_scratch_;
  std::vector<TaskId> task_stack_;
  std::vector<std::optional<EdgeId>> edge_stack_;

  // Current enumeration (flat pools; cleared keeping capacity).
  std::vector<PathRecord> paths_;
  /// Post-enumeration (delay_ms, unlocked_ms) per path, the rewind
  /// target of RewindCommits().
  std::vector<std::pair<double, double>> nominal_state_;
  std::uint64_t enumeration_id_ = 0;
  std::vector<TaskId> task_pool_;
  std::vector<std::optional<EdgeId>> edge_pool_;
  std::vector<ctg::BitMinterm> guard_pool_;
  std::vector<ctg::Guard> dnf_guards_;
  std::vector<std::vector<std::size_t>> by_task_;

  sched::DlsWorkspace dls_workspace_;
};

}  // namespace actg::dvfs

#endif  // ACTG_DVFS_PATH_ENGINE_H
