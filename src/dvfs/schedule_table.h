/// \file schedule_table.h
/// Precomputed schedules over a probability lattice (table mode).
///
/// Simon et al. (PAPERS.md) precompute schedules for a lattice of
/// operating points offline and merely *select* at run time. This
/// module does the same for CTG branch probabilities: every fork's
/// outcome simplex is discretized into points_per_fork points per axis
/// (all compositions of points_per_fork - 1 over the outcomes), the
/// cartesian product over forks forms the lattice, and each lattice
/// point gets a full DLS + stretch pass at construction time. At run
/// time Select() finds the nearest lattice point (max-abs distance over
/// the flattened probability vector, the same metric the adaptive
/// controller thresholds on) and Materialize() returns its schedule —
/// optionally *interpolating the speed vector* with the second-nearest
/// entry when both entries agree on mapping, ordering and pseudo
/// edges.
///
/// Exactness contract: a materialized schedule is one of the
/// precomputed lattice schedules (bit-identical to recomputing at the
/// lattice point), except when interpolation blends speeds. Blending is
/// feasibility-safe: for equal mappings the scheduled DAG and comm
/// times coincide, scaled time w/σ is convex in σ, so every path delay
/// under the blended speed vector is bounded by the larger of the two
/// entries' path delays — a blend of two deadline-feasible schedules
/// stays deadline-feasible. Platform::QuantizeSpeed then rounds each
/// blended speed *up* to the PE's discrete level, which only shortens
/// paths.
///
/// Cost model: the lattice is exponential in the number of forks
/// (count = Π_f C(points_per_fork - 1 + k_f - 1, k_f - 1));
/// construction throws when it would exceed max_entries. Table mode is
/// for small fork counts — exactly the CTGs of the paper.

#ifndef ACTG_DVFS_SCHEDULE_TABLE_H
#define ACTG_DVFS_SCHEDULE_TABLE_H

#include <cstddef>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "ctg/graph.h"
#include "dvfs/stretch.h"
#include "sched/dls.h"
#include "sched/schedule.h"
#include "util/error.h"

namespace actg::dvfs {

/// Construction knobs of a ScheduleTable.
struct ScheduleTableOptions {
  /// Lattice resolution: points per simplex axis (a 2-outcome fork gets
  /// probabilities {0, 1/(R-1), ..., 1}). Must be >= 2.
  std::size_t points_per_fork = 5;
  /// Hard cap on lattice size; construction throws when the fork
  /// structure would enumerate more entries.
  std::size_t max_entries = 4096;
  /// Scheduler configuration used for every lattice point.
  sched::DlsOptions dls;
  /// Stretcher configuration used for every lattice point.
  StretchOptions stretch;
  /// Stretch policy, resolved through the dvfs::Policy registry.
  std::string policy = "online";
  /// When true (default), Materialize blends the speed vector with the
  /// second-nearest entry when it shares mapping/ordering/pseudo edges.
  bool interpolate = true;

  /// Ok when the knobs are usable.
  util::Error Validate() const;
};

/// One lattice point and its precomputed result.
struct ScheduleTableEntry {
  /// The lattice probabilities (covering every fork).
  ctg::BranchProbabilities probs;
  /// The same, flattened in topological fork order (distance queries).
  std::vector<double> flat;
  sched::Schedule schedule;
  StretchStats stretch;
};

/// A materialized run-time selection.
struct MaterializedSchedule {
  sched::Schedule schedule;
  StretchStats stretch;
  /// Index of the nearest lattice entry the schedule derives from.
  std::size_t entry_index = 0;
  /// True when the speed vector was blended with a second entry.
  bool interpolated = false;
};

/// Immutable precomputed table bound to one (graph, analysis,
/// platform); those must outlive the table and every schedule it
/// returns. Construction runs one full DLS + stretch per lattice point;
/// all later queries are lookups. Thread-safe after construction
/// (const methods only read).
class ScheduleTable {
 public:
  ScheduleTable(const ctg::Ctg& graph,
                const ctg::ActivationAnalysis& analysis,
                const arch::Platform& platform,
                ScheduleTableOptions options = {});

  std::size_t size() const { return entries_.size(); }
  const ScheduleTableEntry& entry(std::size_t i) const {
    return entries_.at(i);
  }
  const ScheduleTableOptions& options() const { return options_; }

  /// Index of the lattice entry nearest to \p probs (max-abs distance
  /// over the flattened vector; ties resolve to the lowest index, so
  /// selection is deterministic).
  std::size_t Select(const ctg::BranchProbabilities& probs) const;

  /// The schedule for \p probs: the nearest entry's, with the speed
  /// vector optionally interpolated toward the second-nearest
  /// compatible entry (see file comment for the feasibility argument).
  MaterializedSchedule Materialize(
      const ctg::BranchProbabilities& probs) const;

 private:
  double Distance(const ctg::BranchProbabilities& probs,
                  const ScheduleTableEntry& entry) const;

  const ctg::Ctg* graph_;
  const arch::Platform* platform_;
  ScheduleTableOptions options_;
  std::vector<ScheduleTableEntry> entries_;
};

}  // namespace actg::dvfs

#endif  // ACTG_DVFS_SCHEDULE_TABLE_H
