/// \file stretch.h
/// Task stretching (DVFS speed selection) for scheduled CTGs.
///
/// Three stretchers share one interface: they consume a Schedule whose
/// speed ratios are nominal (1.0) and assign per-task speed ratios such
/// that every realizable execution path still meets the common deadline.
///
/// * StretchOnline     — the paper's low-complexity heuristic (Fig. 2):
///   per-minterm critical paths, prob(p,τ)-weighted slack, weighting by
///   the activation probability prob(τ), deadline clamping.
/// * StretchProportional — probability-blind slack distribution standing
///   in for Reference Algorithm 1 [10]/[9]: identical machinery with all
///   probability weights removed ("does not differentiate tasks with
///   high activation probability from tasks with low activation
///   probability during slack distribution").
/// * StretchNlp        — convex optimizer standing in for Reference
///   Algorithm 2's NLP stage [17]: minimizes expected energy
///   Σ P(τ)·E(τ)·(w/t)² subject to per-path deadline constraints by
///   projected gradient descent plus a coordinate-fill polish. Orders of
///   magnitude slower than the heuristic, slightly better energy — the
///   paper's Table 1 trade-off.
///
/// Every stretcher runs its path analysis on a dvfs::PathEngine. The
/// optional trailing parameter lets a caller that reschedules
/// repeatedly (the adaptive controller) pass its own engine so the
/// enumeration buffers are reused across calls; when omitted, a
/// transient engine is built for the call — results are identical
/// either way.

#ifndef ACTG_DVFS_STRETCH_H
#define ACTG_DVFS_STRETCH_H

#include <cstddef>
#include <vector>

#include "ctg/condition.h"
#include "sched/schedule.h"
#include "util/error.h"

namespace actg::dvfs {

class PathEngine;

/// Warm-start seed for the stretchers (the incremental reschedule
/// path). A seed replays a previously committed speed assignment for
/// every *clean* task — the extension the seed speed implies is granted
/// directly, clamped so no spanning path can cross the deadline — and
/// runs the full slack computation only for *dirty* tasks. The result
/// is always deadline-feasible (every grant is individually clamped)
/// and degenerates to the bit-identical full computation when the seed
/// was produced for the same probabilities and shape (the clamp never
/// binds on an unchanged trajectory). Probability-aware optimality of
/// clean-task speeds is that of the seed's operating point; the drift
/// is bounded by whatever produced the seed (tier-2 quantization bucket
/// or the controller's threshold). StretchNlp ignores warm starts.
struct StretchWarmStart {
  /// Per task.index(): the seed schedule's committed speed ratio.
  const std::vector<double>* seed_speed = nullptr;
  /// Per task.index(): nonzero forces the full slack computation (the
  /// dirty region of the probability delta, plus any task whose
  /// placement differs from the seed's).
  const std::vector<char>* dirty = nullptr;
  /// When true, the caller guarantees the engine's current enumeration
  /// was built for a schedule with this exact scheduled-DAG shape (same
  /// per-PE task sequences at nominal speeds): the stretcher rewinds
  /// the engine's committed delays instead of re-enumerating. Only
  /// meaningful with a caller-owned engine.
  bool reuse_enumeration = false;
};

/// Diagnostics returned by every stretcher.
struct StretchStats {
  /// Number of paths enumerated over the scheduled DAG.
  std::size_t path_count = 0;
  /// Total execution-time extension distributed across tasks, ms.
  double total_extension_ms = 0.0;
  /// Worst path delay after stretching, ms (<= deadline when the nominal
  /// schedule was feasible).
  double max_path_delay_ms = 0.0;
};

/// Common knobs.
struct StretchOptions {
  /// Guard against pathological path explosion.
  std::size_t max_paths = 1 << 20;

  /// Ok when the options are usable: max_paths must be positive.
  util::Error Validate() const;
};

/// The paper's online task stretching heuristic (Fig. 2). Requires a
/// positive deadline on the schedule's graph. \p probs must cover every
/// fork. Updates speed ratios in place and recomputes the schedule
/// times. \p warm optionally replays a seed assignment for clean tasks
/// (see StretchWarmStart).
StretchStats StretchOnline(sched::Schedule& schedule,
                           const ctg::BranchProbabilities& probs,
                           const StretchOptions& options = {},
                           PathEngine* engine = nullptr,
                           const StretchWarmStart* warm = nullptr);

/// Probability-blind slack distribution (Reference Algorithm 1 stage 2).
StretchStats StretchProportional(sched::Schedule& schedule,
                                 const StretchOptions& options = {},
                                 PathEngine* engine = nullptr,
                                 const StretchWarmStart* warm = nullptr);

/// Configuration of the convex-solver stretcher.
struct NlpOptions {
  /// Path-analysis knobs shared with the other stretchers.
  StretchOptions stretch;
  /// Projected-gradient iterations.
  int iterations = 4000;
  /// Initial relative step size.
  double initial_step = 0.05;
  /// Feasibility sweeps per projection.
  int projection_sweeps = 64;

  /// Ok when the options are usable: stretch must validate, iteration
  /// and sweep counts must be positive, the initial step must lie in
  /// (0, 1].
  util::Error Validate() const;
};

/// Convex-solver stretching (Reference Algorithm 2 stage 2).
StretchStats StretchNlp(sched::Schedule& schedule,
                        const ctg::BranchProbabilities& probs,
                        const NlpOptions& options = {},
                        PathEngine* engine = nullptr);

}  // namespace actg::dvfs

#endif  // ACTG_DVFS_STRETCH_H
