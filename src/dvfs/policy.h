/// \file policy.h
/// The unified stretcher interface.
///
/// PR 2 left three parallel free-function entry points (StretchOnline /
/// StretchProportional / StretchNlp) with slightly different positional
/// signatures; every consumer that wanted to select a stretcher at
/// runtime (the ablation bench, the CLI, the experiment builder) had to
/// branch over them by hand. A Policy packages one stretcher behind
/// Name() + Apply(PathEngine&, PolicyContext&), and a string-keyed
/// registry makes the selection data-driven: bench::ExperimentSpec,
/// actg_cli --policy and the adaptive controller all resolve policies
/// by name. The legacy free functions remain the implementation (and
/// stay callable for tests) but are no longer referenced outside
/// src/dvfs.
///
/// Every Apply() records a "dvfs.stretch" span on the current trace
/// session (obs/trace.h) with the policy name and resulting path count.

#ifndef ACTG_DVFS_POLICY_H
#define ACTG_DVFS_POLICY_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ctg/condition.h"
#include "dvfs/path_engine.h"
#include "dvfs/stretch.h"
#include "sched/schedule.h"

namespace actg::dvfs {

/// Everything a stretch policy may consume or produce. The schedule is
/// required; probs is required by the probability-aware policies
/// ("online", "nlp") and ignored by "proportional". The nested nlp
/// options apply to the NLP policy only; its path-analysis knobs are
/// overridden by \p stretch so all policies honor one max_paths.
struct PolicyContext {
  sched::Schedule* schedule = nullptr;
  const ctg::BranchProbabilities* probs = nullptr;
  StretchOptions stretch;
  NlpOptions nlp;
  /// Speed-floor clamp applied by Policy::Apply *after* the concrete
  /// stretcher: every task's speed ratio is raised to at least this
  /// value (then quantized by the PE) and the schedule times are
  /// recomputed. 0 disables the clamp. The degradation ladder sets 1.0
  /// ("panic to nominal") so a reschedule during an overrun burst never
  /// voltage-scales into the deadline it is trying to save; raising
  /// speeds only shortens paths, so a feasible stretch stays feasible.
  double speed_floor = 0.0;
  /// Optional warm-start seed (see dvfs::StretchWarmStart). Honored by
  /// "online" and "proportional"; "nlp" ignores it and recomputes from
  /// scratch. Ignoring a warm start is always correct — it only trades
  /// speed for recomputation.
  const StretchWarmStart* warm = nullptr;
};

/// One named stretcher. Implementations are stateless and immutable, so
/// a registered Policy may be applied concurrently from pool workers.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Registry key, e.g. "online".
  virtual std::string_view Name() const = 0;

  /// Stretches ctx.schedule in place on \p engine, recording the
  /// "dvfs.stretch" trace span around the concrete stretcher.
  StretchStats Apply(PathEngine& engine, PolicyContext& ctx) const;

 protected:
  virtual StretchStats DoApply(PathEngine& engine,
                               PolicyContext& ctx) const = 0;
};

/// Looks up a registered policy; nullptr when unknown.
const Policy* FindPolicy(std::string_view name);

/// Looks up a registered policy; throws actg::InvalidArgument listing
/// the registered names when unknown.
const Policy& GetPolicy(std::string_view name);

/// Names of all registered policies, sorted (built-ins: "nlp",
/// "online", "proportional").
std::vector<std::string> PolicyNames();

/// Registers a custom policy; throws actg::InvalidArgument on a
/// duplicate or empty name. The registry owns the policy for the rest
/// of the process lifetime.
void RegisterPolicy(std::unique_ptr<Policy> policy);

/// Convenience entry point: applies the named policy to \p schedule,
/// building a transient PathEngine when \p engine is null (identical
/// results either way — the engine only pools storage).
StretchStats ApplyPolicy(std::string_view name, sched::Schedule& schedule,
                         const ctg::BranchProbabilities& probs,
                         const StretchOptions& options = {},
                         PathEngine* engine = nullptr);

}  // namespace actg::dvfs

#endif  // ACTG_DVFS_POLICY_H
