/// \file algorithms.h
/// The three end-to-end scheduling + DVFS pipelines compared in the
/// paper's Table 1, packaged behind one call each.
///
/// * Online algorithm (this paper): modified DLS — probability-weighted
///   static levels, mutual-exclusion-aware PE sharing, communication-
///   aware mapping — followed by the online stretching heuristic.
/// * Reference Algorithm 1 ([10], Shin & Kim): ordering and stretching
///   on a *given* naive mapping (round-robin over the PEs), worst-case
///   static levels, no mutual-exclusion awareness (exclusive tasks
///   serialize and the slack analysis budgets for impossible
///   both-branches chains), probability-blind slack distribution.
/// * Reference Algorithm 2 ([17]): the same modified DLS mapping, with
///   convex (NLP) task stretching instead of the heuristic — slightly
///   lower energy at orders-of-magnitude higher runtime.

#ifndef ACTG_DVFS_ALGORITHMS_H
#define ACTG_DVFS_ALGORITHMS_H

#include <string_view>

#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "dvfs/policy.h"
#include "dvfs/stretch.h"
#include "sched/dls.h"

namespace actg::dvfs {

/// Knobs of RunWithPolicy: the scheduler configuration plus the policy
/// context options forwarded to the selected stretcher.
struct PolicyRunOptions {
  sched::DlsOptions dls;
  StretchOptions stretch;
  /// Consumed by the "nlp" policy only (its path-analysis knobs are
  /// overridden by \p stretch).
  NlpOptions nlp;
};

/// Generic pipeline: modified DLS followed by the named stretch policy
/// from the registry (see policy.h). The three Run* wrappers below are
/// thin aliases over this.
sched::Schedule RunWithPolicy(std::string_view policy,
                              const ctg::Ctg& graph,
                              const ctg::ActivationAnalysis& analysis,
                              const arch::Platform& platform,
                              const ctg::BranchProbabilities& probs,
                              const PolicyRunOptions& options = {});

/// The paper's online algorithm: modified DLS + stretching heuristic.
sched::Schedule RunOnlineAlgorithm(const ctg::Ctg& graph,
                                   const ctg::ActivationAnalysis& analysis,
                                   const arch::Platform& platform,
                                   const ctg::BranchProbabilities& probs);

/// Reference Algorithm 1 [10]: ordering-only on a round-robin mapping,
/// probability- and mutual-exclusion-blind throughout.
sched::Schedule RunReference1(const ctg::Ctg& graph,
                              const ctg::ActivationAnalysis& analysis,
                              const arch::Platform& platform,
                              const ctg::BranchProbabilities& probs);

/// Reference Algorithm 2 [17]: modified DLS + convex (NLP) stretching.
sched::Schedule RunReference2(const ctg::Ctg& graph,
                              const ctg::ActivationAnalysis& analysis,
                              const arch::Platform& platform,
                              const ctg::BranchProbabilities& probs,
                              const NlpOptions& options = {});

}  // namespace actg::dvfs

#endif  // ACTG_DVFS_ALGORITHMS_H
