/// \file paths.h
/// Path analysis over a scheduled CTG (paper Section III.A).
///
/// After DLS ordering, "all possible paths in the CTG are calculated"
/// over the scheduled DAG (CTG edges + implied control dependencies +
/// pseudo order edges). Each path carries the tasks it spans, its
/// realizability guard, its fixed communication delay and its current
/// total delay; slack is measured against the common deadline.
/// prob(p, τ) — the probability of path p given that task τ is activated
/// — is the joint probability of the conditional branches lying on the
/// path at or after τ (paper's example: prob(τ1-τ3-τ5-τ6, τ5) = prob(b1)).

#ifndef ACTG_DVFS_PATHS_H
#define ACTG_DVFS_PATHS_H

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "ctg/activation.h"
#include "sched/schedule.h"

namespace actg::dvfs {

/// One source-to-sink path of the scheduled DAG.
struct Path {
  /// Tasks in path order.
  std::vector<TaskId> tasks;
  /// Edge between tasks[k] and tasks[k+1]; nullopt for pseudo/control
  /// edges (which carry no data and no condition).
  std::vector<std::optional<EdgeId>> edges;
  /// Conjunction of the activation guards of all tasks on the path and
  /// the conditions of all its edges. Paths whose guard is false are
  /// unrealizable and are not enumerated.
  ctg::Guard guard;
  /// Total communication delay along the path (speed-independent), ms.
  double comm_ms = 0.0;
  /// Current total delay: comm_ms + Σ scaled execution times, ms.
  double delay_ms = 0.0;
  /// Execution time of the tasks on this path that have not been
  /// stretched-and-locked yet ("the delay ... of these paths [is]
  /// reduced, ... releasing the tasks that are being stretched from
  /// consideration", paper Section III.A). The distributable slack
  /// ratio is Slack()/unlocked_ms.
  double unlocked_ms = 0.0;

  /// Remaining slack against \p deadline_ms.
  double Slack(double deadline_ms) const { return deadline_ms - delay_ms; }

  /// Distributable slack per unit of unlocked execution time; 0 once
  /// every task on the path is locked.
  double SlackRatio(double deadline_ms) const {
    if (unlocked_ms <= 0.0) return 0.0;
    return std::max(Slack(deadline_ms), 0.0) / unlocked_ms;
  }
};

/// The enumerated paths of one schedule plus per-task spanning lists.
class PathSet {
 public:
  /// Enumerates all realizable source-to-sink paths of the scheduled DAG
  /// and computes their delays at the schedule's current speed ratios.
  /// Throws actg::InvalidArgument when more than \p max_paths paths
  /// exist (guard against pathological graphs; the paper's CTGs are
  /// small and structured).
  ///
  /// With \p drop_unrealizable = false, paths whose guard is false are
  /// kept (their guard is the constant-false guard). This models a
  /// mutual-exclusion-blind analysis (Reference Algorithm 1), which
  /// cannot tell that a chain through two exclusive branches can never
  /// execute and therefore budgets deadline slack for it.
  explicit PathSet(const sched::Schedule& schedule,
                   std::size_t max_paths = 1 << 20,
                   bool drop_unrealizable = true);

  std::size_t size() const { return paths_.size(); }
  const Path& path(std::size_t i) const { return paths_.at(i); }

  /// Indices of the paths that span \p task.
  const std::vector<std::size_t>& Spanning(TaskId task) const {
    return by_task_.at(task.index());
  }

  /// Position of \p task on path \p i; requires the path to span it.
  std::size_t PositionOf(std::size_t i, TaskId task) const;

  /// prob(p, τ): joint probability of the conditional branches on path
  /// \p i lying at or after \p task (conditions on edges whose source
  /// position >= the task's position).
  double ProbAfter(std::size_t i, TaskId task,
                   const ctg::BranchProbabilities& probs) const;

  /// Step 6 of the online stretching heuristic: the task has been
  /// stretched by \p extra_ms and locked. Every spanning path's total
  /// delay grows by the extension while the task's nominal execution
  /// time \p nominal_ms leaves the distributable (unlocked) delay.
  void CommitTask(TaskId task, double extra_ms, double nominal_ms);

  /// Largest delay over all paths (the worst-case makespan implied by
  /// the path model).
  double MaxDelay() const;

 private:
  const ctg::Ctg* graph_;
  std::vector<Path> paths_;
  std::vector<std::vector<std::size_t>> by_task_;
};

}  // namespace actg::dvfs

#endif  // ACTG_DVFS_PATHS_H
