#include "dvfs/schedule_table.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dvfs/path_engine.h"
#include "dvfs/policy.h"
#include "util/error.h"

namespace actg::dvfs {

namespace {

/// All compositions of \p total into \p parts non-negative integers,
/// lexicographically (deterministic lattice order).
void EnumerateCompositions(int total, int parts, std::vector<int>& current,
                           std::vector<std::vector<int>>& out) {
  if (parts == 1) {
    current.push_back(total);
    out.push_back(current);
    current.pop_back();
    return;
  }
  for (int v = 0; v <= total; ++v) {
    current.push_back(v);
    EnumerateCompositions(total - v, parts - 1, current, out);
    current.pop_back();
  }
}

/// Number of compositions of \p total into \p parts: C(total+parts-1,
/// parts-1), saturating at \p cap to avoid overflow.
std::size_t CompositionCount(std::size_t total, std::size_t parts,
                             std::size_t cap) {
  std::size_t count = 1;
  for (std::size_t i = 1; i < parts; ++i) {
    count = count * (total + i) / i;
    if (count > cap) return cap + 1;
  }
  return count;
}

/// True when the two schedules agree on mapping, commit order and
/// pseudo edges — the precondition for speed-vector blending.
bool SameShape(const sched::Schedule& a, const sched::Schedule& b) {
  for (TaskId task : a.graph().TaskIds()) {
    const sched::TaskPlacement& pa = a.placement(task);
    const sched::TaskPlacement& pb = b.placement(task);
    if (pa.pe != pb.pe || pa.order_index != pb.order_index) return false;
  }
  const auto& ea = a.pseudo_edges();
  const auto& eb = b.pseudo_edges();
  if (ea.size() != eb.size()) return false;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].src != eb[i].src || ea[i].dst != eb[i].dst) return false;
  }
  return true;
}

}  // namespace

util::Error ScheduleTableOptions::Validate() const {
  if (points_per_fork < 2) {
    return util::Error::Invalid(
        "ScheduleTableOptions: points_per_fork must be >= 2");
  }
  if (max_entries == 0) {
    return util::Error::Invalid(
        "ScheduleTableOptions: max_entries must be > 0");
  }
  if (FindPolicy(policy) == nullptr) {
    return util::Error::Invalid(
        "ScheduleTableOptions: unknown stretch policy '" + policy + "'");
  }
  if (util::Error err = dls.Validate()) return err;
  if (util::Error err = stretch.Validate()) return err;
  return {};
}

ScheduleTable::ScheduleTable(const ctg::Ctg& graph,
                             const ctg::ActivationAnalysis& analysis,
                             const arch::Platform& platform,
                             ScheduleTableOptions options)
    : graph_(&graph), platform_(&platform), options_(std::move(options)) {
  options_.Validate().ThrowIfError();
  const std::vector<TaskId> forks = graph.ForkIds();
  const std::size_t steps = options_.points_per_fork - 1;

  // Guard the lattice size before enumerating anything.
  std::size_t total = 1;
  for (TaskId fork : forks) {
    const std::size_t per_fork = CompositionCount(
        steps, static_cast<std::size_t>(graph.OutcomeCount(fork)),
        options_.max_entries);
    total = total * per_fork;
    ACTG_CHECK(total <= options_.max_entries,
               "ScheduleTable: lattice would exceed max_entries; raise "
               "max_entries or lower points_per_fork");
  }

  // Per-fork lattice distributions.
  std::vector<std::vector<std::vector<double>>> axes;
  axes.reserve(forks.size());
  for (TaskId fork : forks) {
    std::vector<std::vector<int>> compositions;
    std::vector<int> scratch;
    EnumerateCompositions(static_cast<int>(steps),
                          graph.OutcomeCount(fork), scratch, compositions);
    std::vector<std::vector<double>> dists;
    dists.reserve(compositions.size());
    for (const std::vector<int>& parts : compositions) {
      std::vector<double> dist(parts.size());
      for (std::size_t i = 0; i < parts.size(); ++i) {
        dist[i] = static_cast<double>(parts[i]) /
                  static_cast<double>(steps);
      }
      dists.push_back(std::move(dist));
    }
    axes.push_back(std::move(dists));
  }

  // Cartesian product, one DLS + stretch per point. A shared engine
  // pools the path-enumeration and DLS scratch across points.
  PathEngine engine(graph, analysis, platform,
                    PathEngineOptions{.max_paths = options_.stretch.max_paths});
  std::vector<std::size_t> cursor(forks.size(), 0);
  entries_.reserve(total);
  while (true) {
    ctg::BranchProbabilities probs(graph.task_count());
    std::vector<double> flat;
    for (std::size_t f = 0; f < forks.size(); ++f) {
      const std::vector<double>& dist = axes[f][cursor[f]];
      probs.Set(forks[f], dist);
      flat.insert(flat.end(), dist.begin(), dist.end());
    }
    sched::Schedule schedule =
        sched::RunDls(graph, analysis, platform, probs, options_.dls,
                      &engine.dls_workspace());
    PolicyContext ctx;
    ctx.schedule = &schedule;
    ctx.probs = &probs;
    ctx.stretch = options_.stretch;
    const StretchStats stats =
        GetPolicy(options_.policy).Apply(engine, ctx);
    entries_.push_back(ScheduleTableEntry{std::move(probs),
                                          std::move(flat),
                                          std::move(schedule), stats});

    // Odometer increment over the per-fork axes.
    std::size_t f = forks.size();
    while (f > 0) {
      --f;
      if (++cursor[f] < axes[f].size()) break;
      cursor[f] = 0;
      if (f == 0) return;
    }
    if (forks.empty()) return;
  }
}

double ScheduleTable::Distance(const ctg::BranchProbabilities& probs,
                               const ScheduleTableEntry& entry) const {
  double dist = 0.0;
  std::size_t i = 0;
  for (TaskId fork : graph_->ForkIds()) {
    for (int o = 0; o < graph_->OutcomeCount(fork); ++o) {
      dist = std::max(dist,
                      std::abs(probs.Outcome(fork, o) - entry.flat[i]));
      ++i;
    }
  }
  return dist;
}

std::size_t ScheduleTable::Select(
    const ctg::BranchProbabilities& probs) const {
  ACTG_CHECK(!entries_.empty(), "ScheduleTable: empty table");
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const double dist = Distance(probs, entries_[i]);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

MaterializedSchedule ScheduleTable::Materialize(
    const ctg::BranchProbabilities& probs) const {
  const std::size_t nearest = Select(probs);
  const ScheduleTableEntry& e1 = entries_[nearest];
  MaterializedSchedule out{e1.schedule, e1.stretch, nearest, false};
  const double d1 = Distance(probs, e1);
  if (!options_.interpolate || d1 == 0.0) return out;

  // Second-nearest entry sharing the schedule shape; only then is the
  // speed blend meaningful (and feasibility-safe, see file comment).
  std::size_t second = entries_.size();
  double d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i == nearest) continue;
    const double dist = Distance(probs, entries_[i]);
    if (dist < d2 && SameShape(e1.schedule, entries_[i].schedule)) {
      d2 = dist;
      second = i;
    }
  }
  if (second == entries_.size() || !(d1 + d2 > 0.0)) return out;

  const sched::Schedule& s2 = entries_[second].schedule;
  const double w1 = d2 / (d1 + d2);  // closer entry weighs more
  for (TaskId task : graph_->TaskIds()) {
    const double blended =
        w1 * e1.schedule.placement(task).speed_ratio +
        (1.0 - w1) * s2.placement(task).speed_ratio;
    sched::TaskPlacement& p = out.schedule.placement(task);
    p.speed_ratio = platform_->QuantizeSpeed(p.pe, blended);
  }
  out.schedule.RecomputeTimes();
  out.interpolated = true;
  return out;
}

}  // namespace actg::dvfs
