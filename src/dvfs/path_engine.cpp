#include "dvfs/path_engine.h"

#include <algorithm>

#include "obs/trace.h"
#include "runtime/metrics.h"
#include "util/error.h"

namespace actg::dvfs {

PathEngine::PathEngine(const ctg::Ctg& graph,
                       const ctg::ActivationAnalysis& analysis,
                       const arch::Platform& platform,
                       PathEngineOptions options)
    : graph_(&graph),
      analysis_(&analysis),
      platform_(&platform),
      options_(options) {
  ACTG_CHECK(&analysis.graph() == &graph,
             "PathEngine analysis must be over the engine's graph");
  use_bitset_ = !options_.force_dnf && analysis.space().valid();
  if (!options_.force_dnf && !use_bitset_) ctg::CountDnfFallback();

  if (use_bitset_) {
    const ctg::ConditionSpace& space = analysis.space();
    edge_cond_bits_.resize(graph.edge_count());
    edge_has_cond_.assign(graph.edge_count(), false);
    for (EdgeId eid : graph.EdgeIds()) {
      const auto& cond = graph.edge(eid).condition;
      if (!cond.has_value()) continue;
      ctg::BitMinterm bm;
      if (!space.Encode(*cond, bm)) {
        // An edge condition the space cannot express: retire the
        // compiled layer entirely so all guards use one representation.
        use_bitset_ = false;
        edge_cond_bits_.clear();
        edge_has_cond_.clear();
        ctg::CountDnfFallback();
        break;
      }
      edge_cond_bits_[eid.index()] = bm;
      edge_has_cond_[eid.index()] = true;
    }
  }

  const std::size_t n = graph.task_count();
  by_task_.resize(n);
  if (use_bitset_) {
    bit_stack_.resize(n + 1);
  } else {
    dnf_stack_.resize(n + 1);
  }
}

void PathEngine::Enumerate(const sched::Schedule& schedule,
                           bool drop_unrealizable) {
  ACTG_CHECK(&schedule.graph() == graph_,
             "Enumerate requires a schedule over the engine's graph");
  const runtime::ScopedTimer timer(runtime::Metrics::Global(),
                                   "stage.path_enum");
  runtime::Metrics::Global().Increment("engine.enumerations");
  obs::ScopedSpan span(obs::TraceSession::Current(), "dvfs.enumerate",
                       "dvfs");

  paths_.clear();
  task_pool_.clear();
  edge_pool_.clear();
  guard_pool_.clear();
  dnf_guards_.clear();
  for (auto& spanning : by_task_) spanning.clear();
  task_stack_.clear();
  edge_stack_.clear();

  schedule.BuildDagAdjacency(adj_);
  const std::size_t n = graph_->task_count();
  has_pred_.assign(n, false);
  for (const auto& out : adj_) {
    for (const auto& [dst, eid] : out) has_pred_[dst.index()] = true;
  }

  for (std::size_t s = 0; s < n; ++s) {
    if (has_pred_[s]) continue;
    const TaskId source{static_cast<int>(s)};
    if (use_bitset_) {
      bit_stack_[0] = analysis_->BitActivationGuard(source);
      if (drop_unrealizable && bit_stack_[0].IsFalse()) continue;
      VisitBit(schedule, source, 0, drop_unrealizable);
    } else {
      dnf_stack_[0] = analysis_->ActivationGuard(source);
      if (drop_unrealizable && dnf_stack_[0].IsFalse()) continue;
      VisitDnf(schedule, source, 0, drop_unrealizable);
    }
  }
  nominal_state_.resize(paths_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    nominal_state_[i] = {paths_[i].delay_ms, paths_[i].unlocked_ms};
  }
  ++enumeration_id_;
  runtime::Metrics::Global().Increment("engine.paths", paths_.size());
  if (span.enabled()) {
    span.AddArg(obs::IntArg("paths",
                            static_cast<std::int64_t>(paths_.size())));
    span.AddArg(obs::IntArg("bitset", use_bitset_ ? 1 : 0));
  }
}

void PathEngine::VisitBit(const sched::Schedule& schedule, TaskId task,
                          std::size_t depth, bool drop_unrealizable) {
  task_stack_.push_back(task);
  bool extended = false;
  for (const auto& [dst, eid] : adj_[task.index()]) {
    ctg::BitGuard& next = bit_stack_[depth + 1];
    next = bit_stack_[depth];
    next.AndWith(analysis_->BitActivationGuard(dst), and_scratch_);
    if (eid.has_value() && edge_has_cond_[eid->index()]) {
      next.AndWithMinterm(edge_cond_bits_[eid->index()]);
    }
    if (drop_unrealizable && next.IsFalse()) continue;
    extended = true;
    edge_stack_.push_back(eid);
    VisitBit(schedule, dst, depth + 1, drop_unrealizable);
    edge_stack_.pop_back();
  }
  if (!extended) Emit(schedule, depth);
  task_stack_.pop_back();
}

void PathEngine::VisitDnf(const sched::Schedule& schedule, TaskId task,
                          std::size_t depth, bool drop_unrealizable) {
  const auto arity = graph_->ArityFn();
  task_stack_.push_back(task);
  bool extended = false;
  for (const auto& [dst, eid] : adj_[task.index()]) {
    ctg::Guard next =
        dnf_stack_[depth].And(analysis_->ActivationGuard(dst), arity);
    if (eid.has_value()) {
      const auto& cond = graph_->edge(*eid).condition;
      if (cond.has_value()) next = next.AndCondition(*cond, arity);
    }
    if (drop_unrealizable && next.IsFalse()) continue;
    extended = true;
    dnf_stack_[depth + 1] = std::move(next);
    edge_stack_.push_back(eid);
    VisitDnf(schedule, dst, depth + 1, drop_unrealizable);
    edge_stack_.pop_back();
  }
  if (!extended) Emit(schedule, depth);
  task_stack_.pop_back();
}

void PathEngine::Emit(const sched::Schedule& schedule, std::size_t depth) {
  ACTG_CHECK(paths_.size() < options_.max_paths,
             "Path enumeration exceeded max_paths");
  PathRecord p;
  p.task_begin = task_pool_.size();
  p.task_count = task_stack_.size();
  p.edge_begin = edge_pool_.size();
  task_pool_.insert(task_pool_.end(), task_stack_.begin(),
                    task_stack_.end());
  edge_pool_.insert(edge_pool_.end(), edge_stack_.begin(),
                    edge_stack_.end());
  if (use_bitset_) {
    const ctg::BitGuard& guard = bit_stack_[depth];
    p.guard_begin = guard_pool_.size();
    p.guard_count = guard.minterms().size();
    guard_pool_.insert(guard_pool_.end(), guard.minterms().begin(),
                       guard.minterms().end());
  } else {
    dnf_guards_.push_back(dnf_stack_[depth]);
  }
  // Delay accumulation order matches PathSet::PathSet exactly (edges in
  // path order, then tasks in path order) so results stay bit-identical.
  p.comm_ms = 0.0;
  for (std::size_t k = 0; k < p.task_count - 1; ++k) {
    const auto& eid = edge_pool_[p.edge_begin + k];
    if (eid.has_value()) p.comm_ms += schedule.EdgeCommTime(*eid);
  }
  p.delay_ms = p.comm_ms;
  p.unlocked_ms = 0.0;
  for (std::size_t k = 0; k < p.task_count; ++k) {
    const double exec = schedule.ScaledWcet(task_pool_[p.task_begin + k]);
    p.delay_ms += exec;
    p.unlocked_ms += exec;
  }
  const std::size_t index = paths_.size();
  for (std::size_t k = 0; k < p.task_count; ++k) {
    by_task_[task_pool_[p.task_begin + k].index()].push_back(index);
  }
  paths_.push_back(p);
}

std::span<const TaskId> PathEngine::TasksOf(std::size_t i) const {
  const PathRecord& p = paths_.at(i);
  return {task_pool_.data() + p.task_begin, p.task_count};
}

std::span<const std::optional<EdgeId>> PathEngine::EdgesOf(
    std::size_t i) const {
  const PathRecord& p = paths_.at(i);
  return {edge_pool_.data() + p.edge_begin,
          p.task_count > 0 ? p.task_count - 1 : 0};
}

double PathEngine::SlackRatio(std::size_t i, double deadline_ms) const {
  const PathRecord& p = paths_.at(i);
  if (p.unlocked_ms <= 0.0) return 0.0;
  return std::max(deadline_ms - p.delay_ms, 0.0) / p.unlocked_ms;
}

bool PathEngine::GuardCompatibleWith(std::size_t i,
                                     const ctg::Minterm& m) const {
  const PathRecord& p = paths_.at(i);
  if (use_bitset_) {
    ctg::BitMinterm bm;
    const bool ok = analysis_->space().Encode(m, bm);
    ACTG_ASSERT(ok, "minterm outside the engine's condition space");
    for (std::size_t k = 0; k < p.guard_count; ++k) {
      if (guard_pool_[p.guard_begin + k].CompatibleWith(bm)) return true;
    }
    return false;
  }
  return dnf_guards_.at(i).CompatibleWith(m);
}

std::size_t PathEngine::PositionOf(std::size_t i, TaskId task) const {
  const std::span<const TaskId> tasks = TasksOf(i);
  const auto it = std::find(tasks.begin(), tasks.end(), task);
  ACTG_CHECK(it != tasks.end(), "Path does not span the task");
  return static_cast<std::size_t>(it - tasks.begin());
}

double PathEngine::ProbAfter(std::size_t i, TaskId task,
                             const ctg::BranchProbabilities& probs) const {
  const std::size_t pos = PositionOf(i, task);
  const std::span<const std::optional<EdgeId>> edges = EdgesOf(i);
  double joint = 1.0;
  // The edge between tasks[k] and tasks[k+1] has source position k; it
  // lies after the task when k >= pos.
  for (std::size_t k = pos; k < edges.size(); ++k) {
    if (!edges[k].has_value()) continue;  // pseudo/control: no condition
    const auto& cond = graph_->edge(*edges[k]).condition;
    if (cond.has_value()) joint *= probs.Of(*cond);
  }
  return joint;
}

void PathEngine::CommitTask(TaskId task, double extra_ms,
                            double nominal_ms) {
  for (std::size_t i : Spanning(task)) {
    paths_[i].delay_ms += extra_ms;
    paths_[i].unlocked_ms =
        std::max(paths_[i].unlocked_ms - nominal_ms, 0.0);
  }
}

void PathEngine::RewindCommits() {
  runtime::Metrics::Global().Increment("engine.rewinds");
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    paths_[i].delay_ms = nominal_state_[i].first;
    paths_[i].unlocked_ms = nominal_state_[i].second;
  }
}

double PathEngine::MaxDelay() const {
  double best = 0.0;
  for (const PathRecord& p : paths_) best = std::max(best, p.delay_ms);
  return best;
}

const ctg::Guard& PathEngine::DnfGuard(std::size_t i) const {
  ACTG_CHECK(!use_bitset_, "DnfGuard is only available in DNF mode");
  return dnf_guards_.at(i);
}

}  // namespace actg::dvfs
