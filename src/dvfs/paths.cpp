#include "dvfs/paths.h"

#include <algorithm>
#include <functional>

#include "util/error.h"

namespace actg::dvfs {

PathSet::PathSet(const sched::Schedule& schedule, std::size_t max_paths,
                 bool drop_unrealizable)
    : graph_(&schedule.graph()) {
  const ctg::Ctg& graph = *graph_;
  const ctg::ActivationAnalysis& analysis = schedule.analysis();
  const auto arity = graph.ArityFn();
  const std::size_t n = graph.task_count();
  by_task_.assign(n, {});

  const sched::Schedule::DagAdjacency adj = schedule.BuildDagAdjacency();
  std::vector<bool> has_pred(n, false);
  for (const auto& out : adj) {
    for (const auto& [dst, eid] : out) has_pred[dst.index()] = true;
  }

  std::vector<TaskId> tasks;
  std::vector<std::optional<EdgeId>> edges;

  const auto emit = [&](const ctg::Guard& guard) {
    ACTG_CHECK(paths_.size() < max_paths,
               "Path enumeration exceeded max_paths");
    Path p;
    p.tasks = tasks;
    p.edges = edges;
    p.guard = guard;
    p.comm_ms = 0.0;
    for (const auto& eid : p.edges) {
      if (eid.has_value()) p.comm_ms += schedule.EdgeCommTime(*eid);
    }
    p.delay_ms = p.comm_ms;
    p.unlocked_ms = 0.0;
    for (TaskId t : p.tasks) {
      const double exec = schedule.ScaledWcet(t);
      p.delay_ms += exec;
      p.unlocked_ms += exec;
    }
    const std::size_t index = paths_.size();
    for (TaskId t : p.tasks) by_task_[t.index()].push_back(index);
    paths_.push_back(std::move(p));
  };

  // Depth-first enumeration. A path ends where no realizable extension
  // exists (for validated structured graphs that is exactly the sinks,
  // but a prefix whose every extension contradicts its guard is still a
  // real execution chain and participates in the slack analysis).
  const std::function<void(TaskId, const ctg::Guard&)> visit =
      [&](TaskId task, const ctg::Guard& guard) {
        tasks.push_back(task);
        bool extended = false;
        for (const auto& [dst, eid] : adj[task.index()]) {
          ctg::Guard next_guard =
              guard.And(analysis.ActivationGuard(dst), arity);
          if (eid.has_value()) {
            const auto& cond = graph.edge(*eid).condition;
            if (cond.has_value()) {
              next_guard = next_guard.AndCondition(*cond, arity);
            }
          }
          if (drop_unrealizable && next_guard.IsFalse()) continue;
          extended = true;
          edges.push_back(eid);
          visit(dst, next_guard);
          edges.pop_back();
        }
        if (!extended) emit(guard);
        tasks.pop_back();
      };

  for (std::size_t s = 0; s < n; ++s) {
    if (has_pred[s]) continue;
    const TaskId source{static_cast<int>(s)};
    const ctg::Guard& guard = analysis.ActivationGuard(source);
    if (!drop_unrealizable || !guard.IsFalse()) visit(source, guard);
  }
}

std::size_t PathSet::PositionOf(std::size_t i, TaskId task) const {
  const Path& p = path(i);
  const auto it = std::find(p.tasks.begin(), p.tasks.end(), task);
  ACTG_CHECK(it != p.tasks.end(), "Path does not span the task");
  return static_cast<std::size_t>(it - p.tasks.begin());
}

double PathSet::ProbAfter(std::size_t i, TaskId task,
                          const ctg::BranchProbabilities& probs) const {
  const Path& p = path(i);
  const std::size_t pos = PositionOf(i, task);
  double joint = 1.0;
  // The edge between tasks[k] and tasks[k+1] has source position k; it
  // lies after the task when k >= pos.
  for (std::size_t k = pos; k < p.edges.size(); ++k) {
    const auto& eid = p.edges[k];
    if (!eid.has_value()) continue;  // pseudo/control edges: no condition
    const auto& cond = graph_->edge(*eid).condition;
    if (cond.has_value()) joint *= probs.Of(*cond);
  }
  return joint;
}

void PathSet::CommitTask(TaskId task, double extra_ms,
                         double nominal_ms) {
  for (std::size_t i : Spanning(task)) {
    paths_[i].delay_ms += extra_ms;
    paths_[i].unlocked_ms =
        std::max(paths_[i].unlocked_ms - nominal_ms, 0.0);
  }
}

double PathSet::MaxDelay() const {
  double best = 0.0;
  for (const Path& p : paths_) best = std::max(best, p.delay_ms);
  return best;
}

}  // namespace actg::dvfs
