#include "dvfs/policy.h"

#include <map>
#include <mutex>
#include <utility>

#include "obs/trace.h"
#include "util/error.h"

namespace actg::dvfs {

namespace {

class OnlinePolicy final : public Policy {
 public:
  std::string_view Name() const override { return "online"; }

 protected:
  StretchStats DoApply(PathEngine& engine,
                       PolicyContext& ctx) const override {
    ACTG_CHECK(ctx.probs != nullptr,
               "policy 'online' requires branch probabilities");
    return StretchOnline(*ctx.schedule, *ctx.probs, ctx.stretch, &engine,
                         ctx.warm);
  }
};

class ProportionalPolicy final : public Policy {
 public:
  std::string_view Name() const override { return "proportional"; }

 protected:
  StretchStats DoApply(PathEngine& engine,
                       PolicyContext& ctx) const override {
    return StretchProportional(*ctx.schedule, ctx.stretch, &engine,
                               ctx.warm);
  }
};

class NlpPolicy final : public Policy {
 public:
  std::string_view Name() const override { return "nlp"; }

 protected:
  StretchStats DoApply(PathEngine& engine,
                       PolicyContext& ctx) const override {
    ACTG_CHECK(ctx.probs != nullptr,
               "policy 'nlp' requires branch probabilities");
    NlpOptions options = ctx.nlp;
    options.stretch = ctx.stretch;
    return StretchNlp(*ctx.schedule, *ctx.probs, options, &engine);
  }
};

/// The process-wide registry. Guarded by a mutex so tests registering
/// custom policies and pool workers resolving built-ins never race.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Policy>, std::less<>> policies;

  Registry() {
    policies.emplace("online", std::make_unique<OnlinePolicy>());
    policies.emplace("proportional",
                     std::make_unique<ProportionalPolicy>());
    policies.emplace("nlp", std::make_unique<NlpPolicy>());
  }

  static Registry& Instance() {
    static Registry registry;
    return registry;
  }
};

}  // namespace

StretchStats Policy::Apply(PathEngine& engine, PolicyContext& ctx) const {
  ACTG_CHECK(ctx.schedule != nullptr,
             "PolicyContext: schedule must be set");
  obs::ScopedSpan span(obs::TraceSession::Current(), "dvfs.stretch",
                       "dvfs");
  if (span.enabled()) {
    span.AddArg(obs::StrArg("policy", std::string(Name())));
  }
  const StretchStats stats = DoApply(engine, ctx);
  if (ctx.speed_floor > 0.0) {
    // Clamp hook: raise every ratio to the floor. Faster-only, so the
    // deadline guarantee of the stretcher is preserved by construction.
    sched::Schedule& schedule = *ctx.schedule;
    bool changed = false;
    for (TaskId task : schedule.graph().TaskIds()) {
      sched::TaskPlacement& placement = schedule.placement(task);
      const double clamped = schedule.platform().QuantizeSpeed(
          placement.pe, std::max(placement.speed_ratio, ctx.speed_floor));
      if (clamped != placement.speed_ratio) {
        placement.speed_ratio = clamped;
        changed = true;
      }
    }
    if (changed) schedule.RecomputeTimes();
  }
  if (span.enabled()) {
    if (ctx.speed_floor > 0.0) {
      span.AddArg(obs::NumArg("speed_floor", ctx.speed_floor));
    }
    span.AddArg(obs::IntArg(
        "paths", static_cast<std::int64_t>(stats.path_count)));
  }
  return stats;
}

const Policy* FindPolicy(std::string_view name) {
  Registry& registry = Registry::Instance();
  const std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.policies.find(name);
  return it == registry.policies.end() ? nullptr : it->second.get();
}

const Policy& GetPolicy(std::string_view name) {
  const Policy* policy = FindPolicy(name);
  if (policy == nullptr) {
    std::string known;
    for (const std::string& n : PolicyNames()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw InvalidArgument("unknown stretch policy '" + std::string(name) +
                          "'; registered: " + known);
  }
  return *policy;
}

std::vector<std::string> PolicyNames() {
  Registry& registry = Registry::Instance();
  const std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.policies.size());
  for (const auto& [name, policy] : registry.policies) {
    names.push_back(name);
  }
  return names;  // std::map iterates sorted
}

void RegisterPolicy(std::unique_ptr<Policy> policy) {
  ACTG_CHECK(policy != nullptr && !policy->Name().empty(),
             "RegisterPolicy: policy must be non-null and named");
  Registry& registry = Registry::Instance();
  const std::lock_guard<std::mutex> lock(registry.mu);
  const std::string name(policy->Name());
  const auto [it, inserted] =
      registry.policies.emplace(name, std::move(policy));
  (void)it;
  ACTG_CHECK(inserted, "RegisterPolicy: duplicate policy '" + name + "'");
}

StretchStats ApplyPolicy(std::string_view name, sched::Schedule& schedule,
                         const ctg::BranchProbabilities& probs,
                         const StretchOptions& options,
                         PathEngine* engine) {
  const Policy& policy = GetPolicy(name);
  PolicyContext ctx;
  ctx.schedule = &schedule;
  ctx.probs = &probs;
  ctx.stretch = options;
  if (engine != nullptr) return policy.Apply(*engine, ctx);
  PathEngine transient(schedule.graph(), schedule.analysis(),
                       schedule.platform(),
                       PathEngineOptions{.max_paths = options.max_paths});
  return policy.Apply(transient, ctx);
}

}  // namespace actg::dvfs
