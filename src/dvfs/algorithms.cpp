#include "dvfs/algorithms.h"

namespace actg::dvfs {

sched::Schedule RunOnlineAlgorithm(const ctg::Ctg& graph,
                                   const ctg::ActivationAnalysis& analysis,
                                   const arch::Platform& platform,
                                   const ctg::BranchProbabilities& probs) {
  sched::Schedule schedule =
      sched::RunDls(graph, analysis, platform, probs);
  StretchOnline(schedule, probs);
  return schedule;
}

sched::Schedule RunReference1(const ctg::Ctg& graph,
                              const ctg::ActivationAnalysis& analysis,
                              const arch::Platform& platform,
                              const ctg::BranchProbabilities& probs) {
  const std::vector<PeId> mapping = sched::RoundRobinMapping(graph, platform);
  sched::DlsOptions options;
  options.level_policy = sched::LevelPolicy::kWorstCase;
  options.mutex_aware = false;
  options.fixed_mapping = &mapping;
  sched::Schedule schedule =
      sched::RunDls(graph, analysis, platform, probs, options);
  StretchProportional(schedule);
  return schedule;
}

sched::Schedule RunReference2(const ctg::Ctg& graph,
                              const ctg::ActivationAnalysis& analysis,
                              const arch::Platform& platform,
                              const ctg::BranchProbabilities& probs,
                              const NlpOptions& options) {
  sched::Schedule schedule =
      sched::RunDls(graph, analysis, platform, probs);
  StretchNlp(schedule, probs, options);
  return schedule;
}

}  // namespace actg::dvfs
