#include "dvfs/algorithms.h"

namespace actg::dvfs {

namespace {

sched::Schedule SchedulePipeline(const Policy& policy,
                                 const ctg::Ctg& graph,
                                 const ctg::ActivationAnalysis& analysis,
                                 const arch::Platform& platform,
                                 const ctg::BranchProbabilities& probs,
                                 const PolicyRunOptions& options) {
  sched::Schedule schedule =
      sched::RunDls(graph, analysis, platform, probs, options.dls);
  PathEngine engine(
      graph, analysis, platform,
      PathEngineOptions{.max_paths = options.stretch.max_paths});
  PolicyContext ctx;
  ctx.schedule = &schedule;
  ctx.probs = &probs;
  ctx.stretch = options.stretch;
  ctx.nlp = options.nlp;
  policy.Apply(engine, ctx);
  return schedule;
}

}  // namespace

sched::Schedule RunWithPolicy(std::string_view policy,
                              const ctg::Ctg& graph,
                              const ctg::ActivationAnalysis& analysis,
                              const arch::Platform& platform,
                              const ctg::BranchProbabilities& probs,
                              const PolicyRunOptions& options) {
  return SchedulePipeline(GetPolicy(policy), graph, analysis, platform,
                          probs, options);
}

sched::Schedule RunOnlineAlgorithm(const ctg::Ctg& graph,
                                   const ctg::ActivationAnalysis& analysis,
                                   const arch::Platform& platform,
                                   const ctg::BranchProbabilities& probs) {
  return RunWithPolicy("online", graph, analysis, platform, probs);
}

sched::Schedule RunReference1(const ctg::Ctg& graph,
                              const ctg::ActivationAnalysis& analysis,
                              const arch::Platform& platform,
                              const ctg::BranchProbabilities& probs) {
  const std::vector<PeId> mapping = sched::RoundRobinMapping(graph, platform);
  PolicyRunOptions options;
  options.dls.level_policy = sched::LevelPolicy::kWorstCase;
  options.dls.mutex_aware = false;
  options.dls.fixed_mapping = &mapping;
  return RunWithPolicy("proportional", graph, analysis, platform, probs,
                       options);
}

sched::Schedule RunReference2(const ctg::Ctg& graph,
                              const ctg::ActivationAnalysis& analysis,
                              const arch::Platform& platform,
                              const ctg::BranchProbabilities& probs,
                              const NlpOptions& options) {
  PolicyRunOptions run_options;
  run_options.stretch = options.stretch;
  run_options.nlp = options;
  return RunWithPolicy("nlp", graph, analysis, platform, probs,
                       run_options);
}

}  // namespace actg::dvfs
