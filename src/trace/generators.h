/// \file generators.h
/// Synthetic branch-decision processes (DESIGN.md substitution #1).
///
/// The paper drives its experiments with branch decisions extracted from
/// real MPEG movie clips and from simulated vehicle runs. Those artifacts
/// are not available, so we synthesize decision processes with the
/// statistics the paper reports: slowly drifting probabilities with local
/// fluctuation (average per-branch fluctuation 0.4-0.5), occasional scene
/// changes, and piecewise road-condition regimes.
///
/// Every process produces, per CTG instance, the instantaneous outcome
/// distribution of one fork; the trace generator samples an outcome from
/// it. The instantaneous distributions are recorded so figures (e.g.
/// Fig. 4) can plot ground truth against windowed estimates.

#ifndef ACTG_TRACE_GENERATORS_H
#define ACTG_TRACE_GENERATORS_H

#include <memory>
#include <vector>

#include "ctg/graph.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace actg::trace {

/// A time-varying outcome distribution for one branch fork.
class ProbabilityProcess {
 public:
  virtual ~ProbabilityProcess() = default;

  /// Advances the process one CTG instance and returns the current
  /// outcome distribution (non-negative, sums to 1).
  virtual std::vector<double> Step(util::Random& rng) = 0;

  /// Number of outcomes of the fork this process drives.
  virtual int outcome_count() const = 0;
};

/// Fixed distribution (stationary branch).
class ConstantProcess final : public ProbabilityProcess {
 public:
  explicit ConstantProcess(std::vector<double> dist);
  std::vector<double> Step(util::Random& rng) override;
  int outcome_count() const override {
    return static_cast<int>(dist_.size());
  }

 private:
  std::vector<double> dist_;
};

/// Bounded-random-walk weights with occasional jumps ("scene changes").
/// Each outcome carries a weight that takes Gaussian steps and reflects
/// at [floor, 1]; the distribution is the normalized weight vector. With
/// probability jump_probability per step all weights are redrawn
/// uniformly — modelling a visual scene change in an MPEG stream.
class RandomWalkProcess final : public ProbabilityProcess {
 public:
  struct Params {
    std::vector<double> initial_weights;  ///< one per outcome, in [floor,1]
    double step_sigma = 0.03;             ///< per-step Gaussian step size
    double jump_probability = 0.0;        ///< scene-change rate
    double floor = 0.05;                  ///< smallest weight
  };

  explicit RandomWalkProcess(Params params);
  std::vector<double> Step(util::Random& rng) override;
  int outcome_count() const override {
    return static_cast<int>(weights_.size());
  }

 private:
  Params params_;
  std::vector<double> weights_;
};

/// Piecewise-constant regimes (e.g. road conditions for the cruise
/// controller: uphill / downhill / straight / bumpy). Each regime holds a
/// fixed distribution for a fixed number of instances; regimes repeat
/// cyclically.
class PiecewiseProcess final : public ProbabilityProcess {
 public:
  struct Regime {
    std::vector<double> dist;
    std::size_t length = 1;
  };

  explicit PiecewiseProcess(std::vector<Regime> regimes);
  std::vector<double> Step(util::Random& rng) override;
  int outcome_count() const override;

 private:
  std::vector<Regime> regimes_;
  std::size_t regime_ = 0;
  std::size_t step_in_regime_ = 0;
};

/// Sinusoidal oscillation of a two-outcome distribution around a center
/// value: p0(t) = center + amplitude * sin(2*pi*t/period + phase). The
/// long-run average equals the center — this is the "average
/// probabilities equal but with considerable fluctuation" process used
/// for Tables 4 and 5.
class SinusoidProcess final : public ProbabilityProcess {
 public:
  struct Params {
    int outcomes = 2;
    double center = 0.5;      ///< long-run average of outcome 0
    double amplitude = 0.22;  ///< paper: fluctuation 0.4-0.5 peak-to-peak
    double period = 200.0;    ///< instances per full oscillation
    double phase = 0.0;
  };

  explicit SinusoidProcess(Params params);
  std::vector<double> Step(util::Random& rng) override;
  int outcome_count() const override { return params_.outcomes; }

 private:
  Params params_;
  std::size_t t_ = 0;
};

/// Markov-modulated process: a hidden state chain (e.g. "static scene" /
/// "panning" / "scene cut" in a video) where each state carries its own
/// outcome distribution and the state itself evolves by a transition
/// matrix each instance. Unlike PiecewiseProcess the regime durations
/// are random (geometric), and unlike RandomWalkProcess the distribution
/// jumps between a small set of modes — the combination found in real
/// encoded video.
class MarkovProcess final : public ProbabilityProcess {
 public:
  struct Params {
    /// Per-state outcome distributions (all the same arity).
    std::vector<std::vector<double>> state_dists;
    /// Row-stochastic transition matrix, state_dists.size() square.
    std::vector<std::vector<double>> transitions;
    /// Initial hidden state.
    std::size_t initial_state = 0;
  };

  explicit MarkovProcess(Params params);
  std::vector<double> Step(util::Random& rng) override;
  int outcome_count() const override;

  /// Current hidden state (after the last Step).
  std::size_t state() const { return state_; }

 private:
  Params params_;
  std::size_t state_;
};

/// Samples a BranchTrace of a CTG by stepping one ProbabilityProcess per
/// fork and drawing each fork's outcome independently per instance.
/// Records the instantaneous distributions for inspection.
class TraceGenerator {
 public:
  /// Binds the generator to \p graph (must outlive the generator).
  explicit TraceGenerator(const ctg::Ctg& graph);

  /// Installs the process driving \p fork. Every fork must have exactly
  /// one process before Generate is called.
  void SetProcess(TaskId fork, std::unique_ptr<ProbabilityProcess> process);

  /// True when every fork of the graph has a process installed.
  bool Complete() const;

  /// Generates \p instances decision vectors.
  BranchTrace Generate(std::size_t instances, util::Random& rng);

  /// Instantaneous probability of outcome 0 for \p fork at every step of
  /// the most recent Generate call.
  const std::vector<double>& TrueProbabilityHistory(TaskId fork) const;

 private:
  const ctg::Ctg* graph_;
  std::vector<std::unique_ptr<ProbabilityProcess>> processes_;  // by task
  std::vector<std::vector<double>> prob_history_;               // by task
};

}  // namespace actg::trace

#endif  // ACTG_TRACE_GENERATORS_H
