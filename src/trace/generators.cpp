#include "trace/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.h"

namespace actg::trace {

namespace {

void CheckDistribution(const std::vector<double>& dist) {
  ACTG_CHECK(dist.size() >= 2, "A fork distribution needs >= 2 outcomes");
  double total = 0.0;
  for (double p : dist) {
    ACTG_CHECK(p >= 0.0, "Probabilities must be non-negative");
    total += p;
  }
  ACTG_CHECK(std::abs(total - 1.0) < 1e-6, "Probabilities must sum to 1");
}

std::vector<double> Normalized(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  ACTG_ASSERT(total > 0.0, "weight vector must have positive mass");
  std::vector<double> dist(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    dist[i] = weights[i] / total;
  }
  return dist;
}

/// Reflects \p x into [lo, hi].
double Reflect(double x, double lo, double hi) {
  ACTG_ASSERT(hi > lo, "reflection interval must be non-degenerate");
  const double span = hi - lo;
  double offset = std::fmod(x - lo, 2.0 * span);
  if (offset < 0.0) offset += 2.0 * span;
  return lo + (offset <= span ? offset : 2.0 * span - offset);
}

}  // namespace

// ---------------------------------------------------------------------------
// ConstantProcess

ConstantProcess::ConstantProcess(std::vector<double> dist)
    : dist_(std::move(dist)) {
  CheckDistribution(dist_);
}

std::vector<double> ConstantProcess::Step(util::Random&) { return dist_; }

// ---------------------------------------------------------------------------
// RandomWalkProcess

RandomWalkProcess::RandomWalkProcess(Params params)
    : params_(std::move(params)), weights_(params_.initial_weights) {
  ACTG_CHECK(weights_.size() >= 2,
             "RandomWalkProcess needs >= 2 outcome weights");
  ACTG_CHECK(params_.floor > 0.0 && params_.floor < 1.0,
             "Weight floor must lie in (0, 1)");
  for (double w : weights_) {
    ACTG_CHECK(w >= params_.floor && w <= 1.0,
               "Initial weights must lie in [floor, 1]");
  }
  ACTG_CHECK(params_.step_sigma >= 0.0, "Step sigma must be >= 0");
  ACTG_CHECK(params_.jump_probability >= 0.0 &&
                 params_.jump_probability <= 1.0,
             "Jump probability must lie in [0, 1]");
}

std::vector<double> RandomWalkProcess::Step(util::Random& rng) {
  if (rng.Bernoulli(params_.jump_probability)) {
    for (double& w : weights_) w = rng.Uniform(params_.floor, 1.0);
  } else {
    for (double& w : weights_) {
      w = Reflect(w + rng.Normal(0.0, params_.step_sigma), params_.floor,
                  1.0);
    }
  }
  return Normalized(weights_);
}

// ---------------------------------------------------------------------------
// PiecewiseProcess

PiecewiseProcess::PiecewiseProcess(std::vector<Regime> regimes)
    : regimes_(std::move(regimes)) {
  ACTG_CHECK(!regimes_.empty(), "PiecewiseProcess needs >= 1 regime");
  const std::size_t outcomes = regimes_.front().dist.size();
  for (const Regime& r : regimes_) {
    CheckDistribution(r.dist);
    ACTG_CHECK(r.dist.size() == outcomes,
               "All regimes must have the same number of outcomes");
    ACTG_CHECK(r.length >= 1, "Regime length must be >= 1");
  }
}

std::vector<double> PiecewiseProcess::Step(util::Random&) {
  const Regime& r = regimes_[regime_];
  std::vector<double> dist = r.dist;
  if (++step_in_regime_ >= r.length) {
    step_in_regime_ = 0;
    regime_ = (regime_ + 1) % regimes_.size();
  }
  return dist;
}

int PiecewiseProcess::outcome_count() const {
  return static_cast<int>(regimes_.front().dist.size());
}

// ---------------------------------------------------------------------------
// SinusoidProcess

SinusoidProcess::SinusoidProcess(Params params) : params_(params) {
  ACTG_CHECK(params_.outcomes >= 2, "SinusoidProcess needs >= 2 outcomes");
  ACTG_CHECK(params_.period > 0.0, "Period must be positive");
  ACTG_CHECK(params_.center > 0.0 && params_.center < 1.0,
             "Center must lie in (0, 1)");
  ACTG_CHECK(params_.center - params_.amplitude >= 0.0 &&
                 params_.center + params_.amplitude <= 1.0,
             "Oscillation must stay within [0, 1]");
}

std::vector<double> SinusoidProcess::Step(util::Random&) {
  const double p0 =
      params_.center +
      params_.amplitude *
          std::sin(2.0 * std::numbers::pi *
                       static_cast<double>(t_) / params_.period +
                   params_.phase);
  ++t_;
  std::vector<double> dist(static_cast<std::size_t>(params_.outcomes));
  dist[0] = p0;
  // Remaining outcomes split the residual mass evenly.
  const double rest =
      (1.0 - p0) / static_cast<double>(params_.outcomes - 1);
  for (std::size_t i = 1; i < dist.size(); ++i) dist[i] = rest;
  return dist;
}

// ---------------------------------------------------------------------------
// MarkovProcess

MarkovProcess::MarkovProcess(Params params)
    : params_(std::move(params)), state_(params_.initial_state) {
  ACTG_CHECK(!params_.state_dists.empty(),
             "MarkovProcess needs at least one state");
  const std::size_t states = params_.state_dists.size();
  const std::size_t outcomes = params_.state_dists.front().size();
  for (const auto& dist : params_.state_dists) {
    CheckDistribution(dist);
    ACTG_CHECK(dist.size() == outcomes,
               "All states must have the same number of outcomes");
  }
  ACTG_CHECK(params_.transitions.size() == states,
             "Transition matrix must be square in the state count");
  for (const auto& row : params_.transitions) {
    ACTG_CHECK(row.size() == states,
               "Transition matrix must be square in the state count");
    double total = 0.0;
    for (double p : row) {
      ACTG_CHECK(p >= 0.0, "Transition probabilities must be >= 0");
      total += p;
    }
    ACTG_CHECK(std::abs(total - 1.0) < 1e-6,
               "Transition rows must sum to 1");
  }
  ACTG_CHECK(params_.initial_state < states,
             "Initial state out of range");
}

std::vector<double> MarkovProcess::Step(util::Random& rng) {
  state_ = rng.Categorical(params_.transitions[state_]);
  return params_.state_dists[state_];
}

int MarkovProcess::outcome_count() const {
  return static_cast<int>(params_.state_dists.front().size());
}

// ---------------------------------------------------------------------------
// TraceGenerator

TraceGenerator::TraceGenerator(const ctg::Ctg& graph)
    : graph_(&graph),
      processes_(graph.task_count()),
      prob_history_(graph.task_count()) {}

void TraceGenerator::SetProcess(TaskId fork,
                                std::unique_ptr<ProbabilityProcess> process) {
  ACTG_CHECK(graph_->IsFork(fork),
             "SetProcess: task is not a branch fork node");
  ACTG_CHECK(process != nullptr, "SetProcess: null process");
  ACTG_CHECK(process->outcome_count() == graph_->OutcomeCount(fork),
             "Process outcome count does not match the fork arity");
  processes_[fork.index()] = std::move(process);
}

bool TraceGenerator::Complete() const {
  for (TaskId fork : graph_->ForkIds()) {
    if (processes_[fork.index()] == nullptr) return false;
  }
  return true;
}

BranchTrace TraceGenerator::Generate(std::size_t instances,
                                     util::Random& rng) {
  ACTG_CHECK(Complete(), "Every fork needs a probability process");
  for (auto& history : prob_history_) history.clear();
  BranchTrace trace(graph_->task_count());
  for (std::size_t i = 0; i < instances; ++i) {
    ctg::BranchAssignment assignment(graph_->task_count());
    for (TaskId fork : graph_->ForkIds()) {
      auto& process = *processes_[fork.index()];
      const std::vector<double> dist = process.Step(rng);
      prob_history_[fork.index()].push_back(dist[0]);
      assignment.Set(fork,
                     static_cast<int>(rng.Categorical(dist)));
    }
    trace.Append(assignment);
  }
  return trace;
}

const std::vector<double>& TraceGenerator::TrueProbabilityHistory(
    TaskId fork) const {
  ACTG_CHECK(graph_->IsFork(fork), "Task is not a branch fork node");
  return prob_history_[fork.index()];
}

}  // namespace actg::trace
