#include "trace/trace.h"

#include "util/error.h"

namespace actg::trace {

void BranchTrace::Append(ctg::BranchAssignment assignment) {
  ACTG_CHECK(assignment.size() == task_count_,
             "Assignment size does not match the trace's task count");
  instances_.push_back(std::move(assignment));
}

const ctg::BranchAssignment& BranchTrace::At(std::size_t i) const {
  ACTG_CHECK(i < instances_.size(), "Trace instance index out of range");
  return instances_[i];
}

double BranchTrace::EmpiricalProbability(TaskId fork, int outcome,
                                         std::size_t begin,
                                         std::size_t end) const {
  ACTG_CHECK(begin <= end && end <= instances_.size(),
             "Invalid trace range");
  std::size_t resolved = 0;
  std::size_t hits = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const int selected = instances_[i].Get(fork);
    if (selected < 0) continue;
    ++resolved;
    if (selected == outcome) ++hits;
  }
  if (resolved == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(resolved);
}

BranchTrace BranchTrace::Slice(std::size_t begin, std::size_t end) const {
  ACTG_CHECK(begin <= end && end <= instances_.size(),
             "Invalid trace range");
  BranchTrace out(task_count_);
  for (std::size_t i = begin; i < end; ++i) out.Append(instances_[i]);
  return out;
}

ctg::BranchProbabilities BranchTrace::ProfiledProbabilities(
    const ctg::Ctg& graph) const {
  ACTG_CHECK(graph.task_count() == task_count_,
             "Graph does not match the trace's task count");
  ctg::BranchProbabilities probs(task_count_);
  for (TaskId fork : graph.ForkIds()) {
    const int arity = graph.OutcomeCount(fork);
    std::vector<double> dist(static_cast<std::size_t>(arity), 0.0);
    std::size_t resolved = 0;
    for (const auto& instance : instances_) {
      const int selected = instance.Get(fork);
      if (selected < 0) continue;
      ACTG_CHECK(selected < arity, "Trace outcome exceeds fork arity");
      ++resolved;
      dist[static_cast<std::size_t>(selected)] += 1.0;
    }
    if (resolved == 0) {
      // Never observed: fall back to a uniform prior.
      for (double& p : dist) p = 1.0 / static_cast<double>(arity);
    } else {
      for (double& p : dist) p /= static_cast<double>(resolved);
    }
    probs.Set(fork, std::move(dist));
  }
  return probs;
}

}  // namespace actg::trace
