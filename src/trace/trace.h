/// \file trace.h
/// Branch decision traces (paper Section IV).
///
/// The paper's experiments drive every algorithm with sequences of branch
/// decision vectors: "The decisions of branches a~h are encoded as a
/// vector <x1, x2, ..., xn>. The ith position of such vector indicates
/// the branch decision for the ith branching node in the graph."
/// A BranchTrace stores one BranchAssignment per CTG instance.

#ifndef ACTG_TRACE_TRACE_H
#define ACTG_TRACE_TRACE_H

#include <cstddef>
#include <vector>

#include "ctg/condition.h"
#include "ctg/graph.h"

namespace actg::trace {

/// A sequence of branch decision vectors, one per CTG instance.
class BranchTrace {
 public:
  BranchTrace() = default;

  /// Creates an empty trace whose assignments cover \p task_count tasks.
  explicit BranchTrace(std::size_t task_count) : task_count_(task_count) {}

  /// Appends the decision vector of one CTG instance.
  void Append(ctg::BranchAssignment assignment);

  /// Decision vector of instance \p i.
  const ctg::BranchAssignment& At(std::size_t i) const;

  std::size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }
  std::size_t task_count() const { return task_count_; }

  /// Empirical probability that \p fork selected \p outcome over the
  /// instance range [begin, end). Instances where the fork is unresolved
  /// (outcome -1) are excluded from the denominator; returns 0 when no
  /// instance resolves the fork.
  double EmpiricalProbability(TaskId fork, int outcome, std::size_t begin,
                              std::size_t end) const;

  /// Empirical probability over the whole trace.
  double EmpiricalProbability(TaskId fork, int outcome) const {
    return EmpiricalProbability(fork, outcome, 0, size());
  }

  /// Sub-trace [begin, end).
  BranchTrace Slice(std::size_t begin, std::size_t end) const;

  /// Branch probabilities profiled from the whole trace for every fork
  /// of \p graph (the paper's "profiled average branch probability").
  /// Forks never resolved in the trace get a uniform distribution.
  ctg::BranchProbabilities ProfiledProbabilities(
      const ctg::Ctg& graph) const;

 private:
  std::size_t task_count_ = 0;
  std::vector<ctg::BranchAssignment> instances_;
};

}  // namespace actg::trace

#endif  // ACTG_TRACE_TRACE_H
