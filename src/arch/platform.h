/// \file platform.h
/// MPSoC platform model (paper Section II).
///
/// A platform is a set of processing elements (PEs) with per-task
/// worst-case execution time WCET(τ, p) and energy E(τ, p) at the nominal
/// supply voltage, plus a point-to-point interconnect with per-pair
/// bandwidth B(pi, pj) and transmission energy per KByte. Each PE has a
/// dedicated communication resource; voltage scaling never applies to
/// communication (both per the paper).

#ifndef ACTG_ARCH_PLATFORM_H
#define ACTG_ARCH_PLATFORM_H

#include <cstdint>
#include <string>
#include <vector>

#include "ctg/ids.h"

namespace actg::arch {

/// Static description of one processing element.
struct PeInfo {
  std::string name;
  /// Lowest speed (frequency) the PE supports, as a fraction of nominal.
  /// Stretching can never slow a task below this ratio.
  double min_speed_ratio = 0.1;
  /// Discrete speed levels (fractions of nominal, ascending, the last
  /// being 1.0). Empty means continuously scalable (the paper's model);
  /// when set, stretchers round each selected speed *up* to the nearest
  /// available level, so deadlines remain guaranteed.
  std::vector<double> speed_levels;
};

class PlatformBuilder;

/// Availability mask over a platform's PEs (at most 64). The default-
/// constructed mask imposes no restriction; RemovedPe masks one PE out,
/// e.g. after a detected dropout, so the scheduler can migrate work to
/// the surviving PEs. A mask never makes an unavailable platform
/// available — it only restricts.
class PeMask {
 public:
  /// No restriction: every PE of any platform is available.
  constexpr PeMask() = default;

  /// Mask with exactly the PEs of \p bits *unavailable* (bit index =
  /// PeId index).
  static constexpr PeMask WithoutBits(std::uint64_t bits) {
    PeMask mask;
    mask.removed_ = bits;
    return mask;
  }

  /// This mask with \p pe additionally removed. PEs beyond the mask's
  /// 64-bit width cannot be removed and always stay available.
  PeMask Without(PeId pe) const {
    if (pe.index() >= 64) return *this;
    return WithoutBits(removed_ | (1ULL << pe.index()));
  }

  constexpr bool Contains(PeId pe) const {
    if (pe.index() >= 64) return true;
    return ((removed_ >> pe.index()) & 1ULL) == 0;
  }

  /// True when no PE is masked out.
  constexpr bool IsAll() const { return removed_ == 0; }

  /// Number of available PEs on a platform with \p pe_count PEs.
  std::size_t CountAvailable(std::size_t pe_count) const;

  /// Bitmask of removed PEs.
  constexpr std::uint64_t removed_bits() const { return removed_; }

  friend constexpr bool operator==(const PeMask&, const PeMask&) = default;

 private:
  std::uint64_t removed_ = 0;
};

/// Immutable platform bound to a fixed number of tasks. Tables are dense:
/// WCET/energy for every (task, PE) pair, bandwidth/energy for every
/// (PE, PE) pair.
class Platform {
 public:
  std::size_t pe_count() const { return pes_.size(); }
  std::size_t task_count() const { return task_count_; }

  const PeInfo& pe(PeId id) const { return pes_.at(id.index()); }

  /// All PE ids.
  std::vector<PeId> PeIds() const;

  /// Worst-case execution time of \p task on \p pe at nominal speed, ms.
  double Wcet(TaskId task, PeId pe) const;

  /// Energy of \p task on \p pe at nominal voltage, mJ (the paper assumes
  /// unit load capacitance; our tables carry explicit values).
  double Energy(TaskId task, PeId pe) const;

  /// PE-average WCET of \p task at nominal speed (the *WCET of Eq. 1).
  double AverageWcet(TaskId task) const;

  /// Link bandwidth between two PEs, KBytes per ms. Infinite (no delay)
  /// within a single PE.
  double Bandwidth(PeId a, PeId b) const;

  /// Transmission energy per KByte between two PEs, mJ. Zero within a
  /// single PE.
  double TxEnergyPerKb(PeId a, PeId b) const;

  /// Communication delay of \p kbytes from \p src to \p dst in ms.
  double CommTime(double kbytes, PeId src, PeId dst) const;

  /// Communication energy of \p kbytes from \p src to \p dst in mJ.
  double CommEnergy(double kbytes, PeId src, PeId dst) const;

  /// Maps a desired speed ratio onto \p pe's DVFS capability: clamps to
  /// [min_speed_ratio, 1] and, when the PE has discrete levels, rounds
  /// *up* to the nearest level (never slower than requested, so a
  /// deadline met at \p sigma is met at the returned speed).
  double QuantizeSpeed(PeId pe, double sigma) const;

 private:
  friend class PlatformBuilder;
  Platform() = default;

  std::size_t task_count_ = 0;
  std::vector<PeInfo> pes_;
  std::vector<double> wcet_;    // task-major [task][pe]
  std::vector<double> energy_;  // task-major [task][pe]
  std::vector<double> bandwidth_;  // [pe][pe], KB/ms
  std::vector<double> tx_energy_;  // [pe][pe], mJ/KB

  std::size_t TaskPe(TaskId t, PeId p) const {
    return t.index() * pes_.size() + p.index();
  }
  std::size_t PePe(PeId a, PeId b) const {
    return a.index() * pes_.size() + b.index();
  }
};

/// Incremental builder for Platform.
class PlatformBuilder {
 public:
  /// Creates a builder for \p task_count tasks and \p pe_count PEs.
  /// All WCETs default to 0 (must be set), bandwidths to
  /// \p default_bandwidth, transmission energies to \p default_tx_energy.
  PlatformBuilder(std::size_t task_count, std::size_t pe_count,
                  double default_bandwidth = 100.0,
                  double default_tx_energy = 0.05);

  /// Names one PE (defaults to "PE<i>").
  PlatformBuilder& SetPeName(PeId pe, std::string name);

  /// Sets the minimum speed ratio of one PE.
  PlatformBuilder& SetMinSpeedRatio(PeId pe, double ratio);

  /// Sets WCET and energy of \p task on \p pe at nominal speed.
  PlatformBuilder& SetTaskCost(TaskId task, PeId pe, double wcet_ms,
                               double energy_mj);

  /// Sets the link parameters between two PEs (symmetric).
  PlatformBuilder& SetLink(PeId a, PeId b, double bandwidth_kb_per_ms,
                           double tx_energy_mj_per_kb);

  /// Restricts \p pe to discrete speed levels (fractions of nominal,
  /// in (0, 1], unsorted accepted; must include 1.0 after sorting).
  /// Also sets the PE's minimum speed ratio to the lowest level.
  PlatformBuilder& SetSpeedLevels(PeId pe, std::vector<double> levels);

  /// Validates (every (task, PE) cost set and positive) and produces the
  /// immutable platform.
  Platform Build() &&;

 private:
  Platform p_;
};

/// DVFS energy/delay model (paper Section IV: unit load capacitance, the
/// only variable is speed/frequency; V scales with f, E = C·V²·cycles).
/// Stretching a task to run at speed ratio σ ∈ (0, 1] multiplies its
/// execution time by 1/σ and its energy by σ².
namespace dvfs_model {

/// Execution time at speed ratio \p sigma given nominal \p wcet_ms.
double ScaledTime(double wcet_ms, double sigma);

/// Energy at speed ratio \p sigma given nominal \p energy_mj.
double ScaledEnergy(double energy_mj, double sigma);

/// Speed ratio required to run \p wcet_ms within \p allotted_ms, clamped
/// to [min_ratio, 1].
double SpeedForAllotted(double wcet_ms, double allotted_ms,
                        double min_ratio);

}  // namespace dvfs_model

}  // namespace actg::arch

#endif  // ACTG_ARCH_PLATFORM_H
