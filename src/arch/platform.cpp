#include "arch/platform.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace actg::arch {

// ---------------------------------------------------------------------------
// PeMask

std::size_t PeMask::CountAvailable(std::size_t pe_count) const {
  std::size_t available = 0;
  for (std::size_t i = 0; i < pe_count && i < 64; ++i) {
    if (((removed_ >> i) & 1ULL) == 0) ++available;
  }
  return available;
}

// ---------------------------------------------------------------------------
// Platform

std::vector<PeId> Platform::PeIds() const {
  std::vector<PeId> ids;
  ids.reserve(pes_.size());
  for (std::size_t i = 0; i < pes_.size(); ++i) {
    ids.push_back(PeId{static_cast<int>(i)});
  }
  return ids;
}

double Platform::Wcet(TaskId task, PeId pe) const {
  ACTG_CHECK(task.valid() && task.index() < task_count_,
             "Wcet: task id out of range");
  ACTG_CHECK(pe.valid() && pe.index() < pes_.size(),
             "Wcet: PE id out of range");
  return wcet_[TaskPe(task, pe)];
}

double Platform::Energy(TaskId task, PeId pe) const {
  ACTG_CHECK(task.valid() && task.index() < task_count_,
             "Energy: task id out of range");
  ACTG_CHECK(pe.valid() && pe.index() < pes_.size(),
             "Energy: PE id out of range");
  return energy_[TaskPe(task, pe)];
}

double Platform::AverageWcet(TaskId task) const {
  double total = 0.0;
  for (std::size_t p = 0; p < pes_.size(); ++p) {
    total += Wcet(task, PeId{static_cast<int>(p)});
  }
  return total / static_cast<double>(pes_.size());
}

double Platform::Bandwidth(PeId a, PeId b) const {
  if (a == b) return std::numeric_limits<double>::infinity();
  return bandwidth_[PePe(a, b)];
}

double Platform::TxEnergyPerKb(PeId a, PeId b) const {
  if (a == b) return 0.0;
  return tx_energy_[PePe(a, b)];
}

double Platform::CommTime(double kbytes, PeId src, PeId dst) const {
  if (src == dst || kbytes <= 0.0) return 0.0;
  return kbytes / Bandwidth(src, dst);
}

double Platform::CommEnergy(double kbytes, PeId src, PeId dst) const {
  if (src == dst || kbytes <= 0.0) return 0.0;
  return kbytes * TxEnergyPerKb(src, dst);
}

double Platform::QuantizeSpeed(PeId pe, double sigma) const {
  const PeInfo& info = this->pe(pe);
  sigma = std::clamp(sigma, info.min_speed_ratio, 1.0);
  if (info.speed_levels.empty()) return sigma;
  // Levels are sorted ascending and end at 1.0: the first level at or
  // above the request is the slowest speed that still meets timing.
  for (double level : info.speed_levels) {
    if (level >= sigma - 1e-12) return level;
  }
  return 1.0;
}

// ---------------------------------------------------------------------------
// PlatformBuilder

PlatformBuilder::PlatformBuilder(std::size_t task_count,
                                 std::size_t pe_count,
                                 double default_bandwidth,
                                 double default_tx_energy) {
  ACTG_CHECK(task_count > 0, "A platform needs at least one task");
  ACTG_CHECK(pe_count > 0, "A platform needs at least one PE");
  ACTG_CHECK(default_bandwidth > 0.0, "Bandwidth must be positive");
  ACTG_CHECK(default_tx_energy >= 0.0,
             "Transmission energy must be non-negative");
  p_.task_count_ = task_count;
  p_.pes_.resize(pe_count);
  for (std::size_t i = 0; i < pe_count; ++i) {
    p_.pes_[i].name = "PE" + std::to_string(i);
  }
  p_.wcet_.assign(task_count * pe_count, 0.0);
  p_.energy_.assign(task_count * pe_count, 0.0);
  p_.bandwidth_.assign(pe_count * pe_count, default_bandwidth);
  p_.tx_energy_.assign(pe_count * pe_count, default_tx_energy);
}

PlatformBuilder& PlatformBuilder::SetPeName(PeId pe, std::string name) {
  ACTG_CHECK(pe.valid() && pe.index() < p_.pes_.size(),
             "SetPeName: PE id out of range");
  p_.pes_[pe.index()].name = std::move(name);
  return *this;
}

PlatformBuilder& PlatformBuilder::SetMinSpeedRatio(PeId pe, double ratio) {
  ACTG_CHECK(pe.valid() && pe.index() < p_.pes_.size(),
             "SetMinSpeedRatio: PE id out of range");
  ACTG_CHECK(ratio > 0.0 && ratio <= 1.0,
             "Minimum speed ratio must lie in (0, 1]");
  p_.pes_[pe.index()].min_speed_ratio = ratio;
  return *this;
}

PlatformBuilder& PlatformBuilder::SetTaskCost(TaskId task, PeId pe,
                                              double wcet_ms,
                                              double energy_mj) {
  ACTG_CHECK(task.valid() && task.index() < p_.task_count_,
             "SetTaskCost: task id out of range");
  ACTG_CHECK(pe.valid() && pe.index() < p_.pes_.size(),
             "SetTaskCost: PE id out of range");
  ACTG_CHECK(wcet_ms > 0.0, "WCET must be positive");
  ACTG_CHECK(energy_mj >= 0.0, "Energy must be non-negative");
  p_.wcet_[p_.TaskPe(task, pe)] = wcet_ms;
  p_.energy_[p_.TaskPe(task, pe)] = energy_mj;
  return *this;
}

PlatformBuilder& PlatformBuilder::SetLink(PeId a, PeId b,
                                          double bandwidth_kb_per_ms,
                                          double tx_energy_mj_per_kb) {
  ACTG_CHECK(a.valid() && a.index() < p_.pes_.size() && b.valid() &&
                 b.index() < p_.pes_.size(),
             "SetLink: PE id out of range");
  ACTG_CHECK(a != b, "SetLink: no link from a PE to itself");
  ACTG_CHECK(bandwidth_kb_per_ms > 0.0, "Bandwidth must be positive");
  ACTG_CHECK(tx_energy_mj_per_kb >= 0.0,
             "Transmission energy must be non-negative");
  p_.bandwidth_[p_.PePe(a, b)] = bandwidth_kb_per_ms;
  p_.bandwidth_[p_.PePe(b, a)] = bandwidth_kb_per_ms;
  p_.tx_energy_[p_.PePe(a, b)] = tx_energy_mj_per_kb;
  p_.tx_energy_[p_.PePe(b, a)] = tx_energy_mj_per_kb;
  return *this;
}

PlatformBuilder& PlatformBuilder::SetSpeedLevels(
    PeId pe, std::vector<double> levels) {
  ACTG_CHECK(pe.valid() && pe.index() < p_.pes_.size(),
             "SetSpeedLevels: PE id out of range");
  ACTG_CHECK(!levels.empty(), "SetSpeedLevels: empty level set");
  std::sort(levels.begin(), levels.end());
  for (double level : levels) {
    ACTG_CHECK(level > 0.0 && level <= 1.0,
               "Speed levels must lie in (0, 1]");
  }
  ACTG_CHECK(std::abs(levels.back() - 1.0) < 1e-12,
             "The highest speed level must be the nominal speed 1.0");
  p_.pes_[pe.index()].min_speed_ratio = levels.front();
  p_.pes_[pe.index()].speed_levels = std::move(levels);
  return *this;
}

Platform PlatformBuilder::Build() && {
  for (std::size_t t = 0; t < p_.task_count_; ++t) {
    for (std::size_t pe = 0; pe < p_.pes_.size(); ++pe) {
      ACTG_CHECK(
          p_.wcet_[t * p_.pes_.size() + pe] > 0.0,
          "Task " + std::to_string(t) + " has no WCET on PE " +
              std::to_string(pe));
    }
  }
  return std::move(p_);
}

// ---------------------------------------------------------------------------
// DVFS model

namespace dvfs_model {

double ScaledTime(double wcet_ms, double sigma) {
  ACTG_CHECK(sigma > 0.0 && sigma <= 1.0 + 1e-12,
             "Speed ratio must lie in (0, 1]");
  return wcet_ms / sigma;
}

double ScaledEnergy(double energy_mj, double sigma) {
  ACTG_CHECK(sigma > 0.0 && sigma <= 1.0 + 1e-12,
             "Speed ratio must lie in (0, 1]");
  return energy_mj * sigma * sigma;
}

double SpeedForAllotted(double wcet_ms, double allotted_ms,
                        double min_ratio) {
  ACTG_CHECK(wcet_ms > 0.0, "WCET must be positive");
  ACTG_CHECK(min_ratio > 0.0 && min_ratio <= 1.0,
             "Minimum ratio must lie in (0, 1]");
  if (allotted_ms <= wcet_ms) return 1.0;
  return std::clamp(wcet_ms / allotted_ms, min_ratio, 1.0);
}

}  // namespace dvfs_model

}  // namespace actg::arch
