#include "ctg/condition.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace actg::ctg {

// ---------------------------------------------------------------------------
// BranchAssignment

void BranchAssignment::Set(TaskId fork, int outcome) {
  ACTG_CHECK(fork.valid() && fork.index() < outcomes_.size(),
             "BranchAssignment::Set: fork id out of range");
  ACTG_CHECK(outcome >= 0, "BranchAssignment::Set: outcome must be >= 0");
  outcomes_[fork.index()] = outcome;
}

int BranchAssignment::Get(TaskId fork) const {
  ACTG_CHECK(fork.valid() && fork.index() < outcomes_.size(),
             "BranchAssignment::Get: fork id out of range");
  return outcomes_[fork.index()];
}

// ---------------------------------------------------------------------------
// BranchProbabilities

void BranchProbabilities::Set(TaskId fork,
                              std::vector<double> outcome_probs) {
  ACTG_CHECK(fork.valid() && fork.index() < dists_.size(),
             "BranchProbabilities::Set: fork id out of range");
  ACTG_CHECK(outcome_probs.size() >= 2,
             "A branch fork needs at least two outcomes");
  double total = 0.0;
  for (double p : outcome_probs) {
    ACTG_CHECK(p >= 0.0 && p <= 1.0,
               "Outcome probabilities must lie in [0, 1]");
    total += p;
  }
  ACTG_CHECK(std::abs(total - 1.0) < 1e-6,
             "Outcome probabilities must sum to 1");
  dists_[fork.index()] = std::move(outcome_probs);
}

bool BranchProbabilities::Has(TaskId fork) const {
  return fork.valid() && fork.index() < dists_.size() &&
         !dists_[fork.index()].empty();
}

double BranchProbabilities::Outcome(TaskId fork, int outcome) const {
  ACTG_CHECK(Has(fork), "No distribution set for this fork");
  const auto& dist = dists_[fork.index()];
  ACTG_CHECK(outcome >= 0 && static_cast<std::size_t>(outcome) < dist.size(),
             "Outcome index out of range");
  return dist[static_cast<std::size_t>(outcome)];
}

int BranchProbabilities::OutcomeCount(TaskId fork) const {
  ACTG_CHECK(Has(fork), "No distribution set for this fork");
  return static_cast<int>(dists_[fork.index()].size());
}

// ---------------------------------------------------------------------------
// Minterm

std::optional<Minterm> Minterm::FromConditions(
    std::vector<Condition> conditions) {
  std::sort(conditions.begin(), conditions.end());
  Minterm m;
  for (const Condition& c : conditions) {
    if (!m.conditions_.empty() && m.conditions_.back().fork == c.fork) {
      if (m.conditions_.back().outcome != c.outcome) return std::nullopt;
      continue;  // duplicate
    }
    m.conditions_.push_back(c);
  }
  return m;
}

std::optional<int> Minterm::OutcomeOf(TaskId fork) const {
  for (const Condition& c : conditions_) {
    if (c.fork == fork) return c.outcome;
    if (c.fork > fork) break;
  }
  return std::nullopt;
}

bool Minterm::CompatibleWith(const Minterm& other) const {
  // Merge-walk over the two sorted condition lists.
  std::size_t i = 0, j = 0;
  while (i < conditions_.size() && j < other.conditions_.size()) {
    if (conditions_[i].fork == other.conditions_[j].fork) {
      if (conditions_[i].outcome != other.conditions_[j].outcome)
        return false;
      ++i;
      ++j;
    } else if (conditions_[i].fork < other.conditions_[j].fork) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

std::optional<Minterm> Minterm::Conjoin(const Minterm& other) const {
  if (!CompatibleWith(other)) return std::nullopt;
  Minterm out;
  out.conditions_.reserve(conditions_.size() + other.conditions_.size());
  std::size_t i = 0, j = 0;
  while (i < conditions_.size() || j < other.conditions_.size()) {
    if (j == other.conditions_.size() ||
        (i < conditions_.size() &&
         conditions_[i].fork <= other.conditions_[j].fork)) {
      if (j < other.conditions_.size() &&
          conditions_[i].fork == other.conditions_[j].fork) {
        ++j;  // identical condition present in both
      }
      out.conditions_.push_back(conditions_[i++]);
    } else {
      out.conditions_.push_back(other.conditions_[j++]);
    }
  }
  return out;
}

bool Minterm::Implies(const Minterm& other) const {
  // this implies other <=> other's conditions are a subset of this's.
  return std::includes(conditions_.begin(), conditions_.end(),
                       other.conditions_.begin(), other.conditions_.end());
}

bool Minterm::Evaluate(const BranchAssignment& assignment) const {
  for (const Condition& c : conditions_) {
    if (assignment.Get(c.fork) != c.outcome) return false;
  }
  return true;
}

double Minterm::Probability(const BranchProbabilities& probs) const {
  double p = 1.0;
  for (const Condition& c : conditions_) p *= probs.Of(c);
  return p;
}

Minterm Minterm::Without(TaskId fork) const {
  Minterm out;
  out.conditions_.reserve(conditions_.size());
  for (const Condition& c : conditions_) {
    if (c.fork != fork) out.conditions_.push_back(c);
  }
  return out;
}

std::string Minterm::ToString(
    const std::function<std::string(TaskId)>& fork_name) const {
  if (IsTrue()) return "1";
  std::ostringstream os;
  for (std::size_t i = 0; i < conditions_.size(); ++i) {
    if (i != 0) os << '&';
    os << fork_name(conditions_[i].fork) << '=' << conditions_[i].outcome;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Guard

Guard Guard::True() { return Of(Minterm()); }

Guard Guard::Of(Minterm m) {
  Guard g;
  g.minterms_.push_back(std::move(m));
  return g;
}

bool Guard::IsTrue() const {
  for (const Minterm& m : minterms_) {
    if (m.IsTrue()) return true;
  }
  return false;
}

Guard Guard::Or(const Guard& other, const ForkArity& arity) const {
  Guard out;
  out.minterms_ = minterms_;
  out.minterms_.insert(out.minterms_.end(), other.minterms_.begin(),
                       other.minterms_.end());
  out.Simplify(arity);
  return out;
}

Guard Guard::And(const Guard& other, const ForkArity& arity) const {
  Guard out;
  for (const Minterm& a : minterms_) {
    for (const Minterm& b : other.minterms_) {
      if (auto m = a.Conjoin(b)) out.minterms_.push_back(std::move(*m));
    }
  }
  out.Simplify(arity);
  return out;
}

Guard Guard::AndCondition(Condition c, const ForkArity& arity) const {
  return And(Of(Minterm(c)), arity);
}

bool Guard::CompatibleWith(const Guard& other) const {
  for (const Minterm& a : minterms_) {
    for (const Minterm& b : other.minterms_) {
      if (a.CompatibleWith(b)) return true;
    }
  }
  return false;
}

bool Guard::CompatibleWith(const Minterm& m) const {
  for (const Minterm& a : minterms_) {
    if (a.CompatibleWith(m)) return true;
  }
  return false;
}

bool Guard::Implies(const Guard& other) const {
  for (const Minterm& a : minterms_) {
    bool covered = false;
    for (const Minterm& b : other.minterms_) {
      if (a.Implies(b)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool Guard::Evaluate(const BranchAssignment& assignment) const {
  for (const Minterm& m : minterms_) {
    if (m.Evaluate(assignment)) return true;
  }
  return false;
}

std::vector<TaskId> Guard::Support() const {
  std::vector<TaskId> support;
  for (const Minterm& m : minterms_) {
    for (const Condition& c : m.conditions()) support.push_back(c.fork);
  }
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  return support;
}

Guard Guard::RestrictedTo(Condition c) const {
  // Cofactor of the DNF with respect to fork=outcome.
  Guard out;
  for (const Minterm& m : minterms_) {
    const auto assigned = m.OutcomeOf(c.fork);
    if (assigned.has_value() && *assigned != c.outcome) continue;
    out.minterms_.push_back(m.Without(c.fork));
  }
  return out;
}

double Guard::ProbabilityRec(const BranchProbabilities& probs,
                             const std::vector<TaskId>& support,
                             std::size_t var_index) const {
  if (minterms_.empty()) return 0.0;
  if (IsTrue()) return 1.0;
  ACTG_ASSERT(var_index < support.size(),
              "Guard probability expansion exhausted its support");
  const TaskId fork = support[var_index];
  const int arity = probs.OutcomeCount(fork);
  double total = 0.0;
  for (int outcome = 0; outcome < arity; ++outcome) {
    const double p = probs.Outcome(fork, outcome);
    if (p == 0.0) continue;
    const Guard cofactor = RestrictedTo(Condition{fork, outcome});
    total += p * cofactor.ProbabilityRec(probs, support, var_index + 1);
  }
  return total;
}

double Guard::Probability(const BranchProbabilities& probs) const {
  if (minterms_.empty()) return 0.0;
  if (IsTrue()) return 1.0;
  const std::vector<TaskId> support = Support();
  return ProbabilityRec(probs, support, 0);
}

void Guard::Simplify(const ForkArity& arity) {
  bool changed = true;
  while (changed) {
    changed = false;

    // Deduplicate and apply absorption: drop any minterm implied by a
    // strictly weaker one (a&b is absorbed by a).
    std::sort(minterms_.begin(), minterms_.end(),
              [](const Minterm& a, const Minterm& b) {
                if (a.size() != b.size()) return a.size() < b.size();
                return a.conditions() < b.conditions();
              });
    std::vector<Minterm> kept;
    for (const Minterm& m : minterms_) {
      bool absorbed = false;
      for (const Minterm& k : kept) {
        if (m.Implies(k)) {
          absorbed = true;
          break;
        }
      }
      if (!absorbed) kept.push_back(m);
    }
    if (kept.size() != minterms_.size()) changed = true;
    minterms_ = std::move(kept);

    // Complementary merge: if for some base minterm m and fork f the set
    // contains m&{f=o} for every outcome o of f, replace them by m.
    for (std::size_t i = 0; i < minterms_.size() && !changed; ++i) {
      for (const Condition& c : minterms_[i].conditions()) {
        const int fork_arity = arity ? arity(c.fork) : 0;
        if (fork_arity < 2) continue;
        const Minterm base = minterms_[i].Without(c.fork);
        int present = 0;
        for (int outcome = 0; outcome < fork_arity; ++outcome) {
          const auto want = base.With(Condition{c.fork, outcome});
          ACTG_ASSERT(want.has_value(), "base minterm excludes its own fork");
          for (const Minterm& m : minterms_) {
            if (m == *want) {
              ++present;
              break;
            }
          }
        }
        if (present == fork_arity) {
          std::vector<Minterm> next;
          next.reserve(minterms_.size());
          for (const Minterm& m : minterms_) {
            bool is_merged_child = false;
            for (int outcome = 0; outcome < fork_arity; ++outcome) {
              const auto want = base.With(Condition{c.fork, outcome});
              if (want.has_value() && m == *want) {
                is_merged_child = true;
                break;
              }
            }
            if (!is_merged_child) next.push_back(m);
          }
          next.push_back(base);
          minterms_ = std::move(next);
          changed = true;
          break;
        }
      }
    }
  }
}

std::string Guard::ToString(
    const std::function<std::string(TaskId)>& fork_name) const {
  if (minterms_.empty()) return "0";
  std::ostringstream os;
  for (std::size_t i = 0; i < minterms_.size(); ++i) {
    if (i != 0) os << " | ";
    os << minterms_[i].ToString(fork_name);
  }
  return os.str();
}

}  // namespace actg::ctg
