/// \file dot.h
/// Graphviz export of a CTG for documentation and debugging.

#ifndef ACTG_CTG_DOT_H
#define ACTG_CTG_DOT_H

#include <ostream>

#include "ctg/graph.h"

namespace actg::ctg {

/// Writes \p graph as a Graphviz digraph. Branch fork nodes are drawn as
/// diamonds, or-nodes as double circles; conditional edges are dashed and
/// labelled with their outcome label.
void WriteDot(std::ostream& os, const Ctg& graph);

}  // namespace actg::ctg

#endif  // ACTG_CTG_DOT_H
