/// \file activation.h
/// Activation analysis of a CTG (paper Section II).
///
/// Computes, for every task τ, the activation condition X(τ) as a guard
/// (DNF of minterms), the associated minterm set Γ(τ), the pairwise
/// mutual-exclusion relation, the implied dependencies between or-nodes
/// and the branch fork nodes that decide their activating alternative
/// (paper Example 1), and the set of execution *scenarios* (maximal
/// consistent fork-outcome assignments, e.g. {a1, a2b1, a2b2} for the
/// paper's Figure 1).

#ifndef ACTG_CTG_ACTIVATION_H
#define ACTG_CTG_ACTIVATION_H

#include <vector>

#include "ctg/condition.h"
#include "ctg/condition_bitset.h"
#include "ctg/graph.h"

namespace actg::ctg {

/// A maximal consistent assignment of outcomes to the forks that are
/// active under that assignment, with its probability under a given
/// branch distribution.
struct Scenario {
  Minterm assignment;
  double probability = 0.0;
};

/// Immutable analysis result bound to one Ctg. The Ctg must outlive the
/// analysis.
class ActivationAnalysis {
 public:
  /// Runs the analysis (single topological pass plus pairwise mutex
  /// computation).
  explicit ActivationAnalysis(const Ctg& graph);

  const Ctg& graph() const { return *graph_; }

  /// Activation condition X(τ).
  const Guard& ActivationGuard(TaskId task) const {
    return guards_.at(task.index());
  }

  /// Γ(τ): the minterms of X(τ).
  const std::vector<Minterm>& Gamma(TaskId task) const {
    return ActivationGuard(task).minterms();
  }

  /// Bit layout over the graph's forks. Invalid (valid() == false) when
  /// the graph does not fit the fixed width; callers must then stay on
  /// the DNF algebra.
  const ConditionSpace& space() const { return space_; }

  /// Compiled form of X(τ). Meaningful only when space().valid(); the
  /// compiled guards answer exactly the form-independent predicates
  /// (satisfiability, emptiness, evaluation) of the DNF guard.
  const BitGuard& BitActivationGuard(TaskId task) const {
    return bit_guards_.at(task.index());
  }

  /// True when the two tasks can never be active in the same instance
  /// (X(τi) ∧ X(τj) = 0).
  bool MutuallyExclusive(TaskId a, TaskId b) const;

  /// Probability that \p task is activated, P(X(τ)), under \p probs.
  double ActivationProbability(TaskId task,
                               const BranchProbabilities& probs) const;

  /// True when \p task is activated by the given full branch assignment.
  bool IsActive(TaskId task, const BranchAssignment& assignment) const;

  /// True when \p task is active under a scenario minterm: some minterm
  /// of Γ(τ) is implied by the scenario assignment.
  bool IsActive(TaskId task, const Minterm& scenario) const;

  /// Implied control dependencies: pairs (fork, or_node) meaning the
  /// or-node cannot start before the fork resolves, even along
  /// alternatives that do not pass through the fork (paper Example 1:
  /// τ8 must wait for τ3 in every case). Direct unconditional edges
  /// fork -> or_node are omitted (the dependency already exists).
  const std::vector<std::pair<TaskId, TaskId>>& ImpliedForkDependencies()
      const {
    return implied_deps_;
  }

  /// Enumerates all execution scenarios with their probabilities under
  /// \p probs. Probabilities sum to 1.
  std::vector<Scenario> EnumerateScenarios(
      const BranchProbabilities& probs) const;

  /// Enumerates scenario assignments only (no probabilities).
  std::vector<Minterm> EnumerateScenarioAssignments() const;

  /// The set M of all distinct minterms appearing in any Γ(τ),
  /// including the constant-true minterm when some task is unconditional.
  std::vector<Minterm> AllMinterms() const;

 private:
  void ComputeGuards();
  void CompileBitGuards();
  void ComputeMutex();
  void ComputeImpliedDeps();
  void EnumerateScenariosRec(const Minterm& current, double prob,
                             std::size_t fork_pos,
                             const BranchProbabilities* probs,
                             std::vector<Scenario>& out) const;

  const Ctg* graph_;
  std::vector<Guard> guards_;
  ConditionSpace space_;
  std::vector<BitGuard> bit_guards_;  // empty when !space_.valid()
  std::vector<std::vector<bool>> mutex_;
  std::vector<std::pair<TaskId, TaskId>> implied_deps_;
};

}  // namespace actg::ctg

#endif  // ACTG_CTG_ACTIVATION_H
