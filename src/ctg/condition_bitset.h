/// \file condition_bitset.h
/// Fixed-width bitset representation of the condition algebra.
///
/// The DNF algebra in condition.h is the authoritative, arbitrarily
/// sized representation; its conjunction/implication/compatibility
/// checks walk sorted std::vector<Condition> lists and allocate on
/// every operation. On the reschedule hot path (mutual-exclusion
/// computation, path realizability during enumeration, guard-vs-minterm
/// compatibility during stretching) only *boolean predicates* of guards
/// are needed, and those are form-independent — so they can be answered
/// on a compiled representation.
///
/// A ConditionSpace assigns every fork outcome one bit: fork f with k
/// outcomes owns a contiguous k-bit field, fields are packed into
/// ConditionSpace::kWords 64-bit words. A minterm compiles to
///   bits — the chosen outcome bit of every constrained fork;
///   mask — the full field mask of every constrained fork;
/// and the algebra collapses to word ops:
///   compatible(a, b)  <=>  (a.bits & b.mask) == (b.bits & a.mask)
///   a implies b       <=>  b.bits subset-of a.bits
///   conjoin(a, b)      =   {a.bits | b.bits, a.mask | b.mask}
/// A guard compiles to a set of bit minterms; satisfiability tests are
/// loops of the minterm ops with no allocation.
///
/// Graphs whose packed width exceeds kMaxBits — or degenerate inputs
/// (outcome index outside the fork's arity, unknown fork) — do not fit
/// the fixed width; every compile entry point then reports failure so
/// callers fall back to the DNF algebra, counting the event under the
/// "guard.dnf_fallbacks" metrics counter. Overflow is a supported slow
/// path, never undefined behavior.

#ifndef ACTG_CTG_CONDITION_BITSET_H
#define ACTG_CTG_CONDITION_BITSET_H

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "ctg/condition.h"
#include "ctg/ids.h"

namespace actg::ctg {

class ConditionSpace;

/// One compiled minterm: conjunction of "fork = outcome" conditions as
/// packed words. Value-semantic, fixed size, no heap.
struct BitMinterm {
  static constexpr std::size_t kWords = 4;

  std::array<std::uint64_t, kWords> bits{};  ///< chosen outcome bits
  std::array<std::uint64_t, kWords> mask{};  ///< full fields of constrained forks

  /// The constant-true minterm (no fork constrained).
  bool IsTrue() const {
    for (std::uint64_t w : bits) {
      if (w != 0) return false;
    }
    return true;
  }

  /// True when the two minterms can hold simultaneously: every fork
  /// constrained by both is constrained to the same outcome.
  bool CompatibleWith(const BitMinterm& other) const {
    for (std::size_t w = 0; w < kWords; ++w) {
      if ((bits[w] & other.mask[w]) != (other.bits[w] & mask[w])) {
        return false;
      }
    }
    return true;
  }

  /// True when this minterm implies \p other: other's conditions are a
  /// subset of this minterm's conditions.
  bool Implies(const BitMinterm& other) const {
    for (std::size_t w = 0; w < kWords; ++w) {
      if ((other.bits[w] & ~bits[w]) != 0) return false;
    }
    return true;
  }

  /// In-place conjunction. Requires CompatibleWith(other).
  void ConjoinWith(const BitMinterm& other) {
    for (std::size_t w = 0; w < kWords; ++w) {
      bits[w] |= other.bits[w];
      mask[w] |= other.mask[w];
    }
  }

  friend bool operator==(const BitMinterm&, const BitMinterm&) = default;
};

/// Disjunction of bit minterms (the compiled form of a Guard). The
/// empty set is the constant-false guard. Minterm storage is reusable:
/// Clear() keeps capacity, so a guard living in a workspace performs no
/// steady-state allocation.
///
/// The set is kept free of duplicates and absorbed minterms (a & b is
/// dropped when a alone is present), which keeps conjunction products
/// small; it is NOT the canonical form of Guard::Simplify (no
/// complementary merge). Only form-independent predicates — emptiness
/// and satisfiability of conjunctions — are exposed, so the weaker
/// normalization never changes an answer.
class BitGuard {
 public:
  BitGuard() = default;

  bool IsFalse() const { return minterms_.empty(); }
  bool IsTrue() const {
    for (const BitMinterm& m : minterms_) {
      if (m.IsTrue()) return true;
    }
    return false;
  }

  const std::vector<BitMinterm>& minterms() const { return minterms_; }

  /// Resets to the constant-false guard, keeping capacity.
  void Clear() { minterms_.clear(); }

  /// Resets to the constant-true guard.
  void SetTrue() {
    minterms_.clear();
    minterms_.push_back(BitMinterm{});
  }

  /// Adds one disjunct, applying dedup and absorption.
  void AddMinterm(const BitMinterm& m);

  /// Disjunction with another guard.
  void OrWith(const BitGuard& other) {
    for (const BitMinterm& m : other.minterms_) AddMinterm(m);
  }

  /// Conjunction with a single minterm: every incompatible disjunct is
  /// dropped, the rest are extended in place.
  void AndWithMinterm(const BitMinterm& m);

  /// Conjunction with another guard (DNF product). \p scratch provides
  /// reusable storage for the product; its previous content is lost.
  void AndWith(const BitGuard& other, BitGuard& scratch);

  /// True when this guard and \p m can hold simultaneously
  /// (satisfiability of the conjunction; form-independent).
  bool CompatibleWith(const BitMinterm& m) const {
    for (const BitMinterm& a : minterms_) {
      if (a.CompatibleWith(m)) return true;
    }
    return false;
  }

  /// True when the two guards can hold simultaneously.
  bool CompatibleWith(const BitGuard& other) const {
    for (const BitMinterm& a : minterms_) {
      for (const BitMinterm& b : other.minterms_) {
        if (a.CompatibleWith(b)) return true;
      }
    }
    return false;
  }

  /// Syntactic implication check mirroring Guard::Implies: every
  /// disjunct of this guard implies some disjunct of \p other.
  bool Implies(const BitGuard& other) const {
    for (const BitMinterm& a : minterms_) {
      bool covered = false;
      for (const BitMinterm& b : other.minterms_) {
        if (a.Implies(b)) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
    return true;
  }

  friend bool operator==(const BitGuard&, const BitGuard&) = default;

 private:
  std::vector<BitMinterm> minterms_;
};

/// Bit layout of a set of forks: fork f's outcomes 0..k-1 occupy a
/// contiguous k-bit field. Construction fails (valid() == false) when
/// the packed width exceeds kMaxBits; every compile call then returns
/// false and the caller is expected to fall back to the DNF algebra.
class ConditionSpace {
 public:
  static constexpr std::size_t kWords = BitMinterm::kWords;
  static constexpr std::size_t kMaxBits = kWords * 64;

  /// An invalid (always-fallback) space.
  ConditionSpace() = default;

  /// Layout over \p forks with the given outcome arities (parallel
  /// vectors). Arities < 2 and widths past kMaxBits invalidate the
  /// space instead of producing a partial layout.
  ConditionSpace(const std::vector<TaskId>& forks,
                 const std::vector<int>& arities);

  /// True when every fork fits the fixed width and the bit algebra is
  /// usable; false means callers must use the DNF algebra.
  bool valid() const { return valid_; }

  /// Total packed width in bits (0 when invalid).
  std::size_t bit_count() const { return bit_count_; }

  /// Compiles a single condition. Returns false (and leaves \p out
  /// untouched) for unknown forks or out-of-range outcomes.
  bool Encode(const Condition& c, BitMinterm& out) const;

  /// Compiles a minterm; false on any garbage condition.
  bool Encode(const Minterm& m, BitMinterm& out) const;

  /// Compiles a guard; false when any minterm fails to compile.
  bool Encode(const Guard& g, BitGuard& out) const;

  /// Compiles a full branch assignment into a minterm constraining
  /// every fork of the space to its selected outcome. Forks left
  /// unassigned (outcome < 0) stay unconstrained. Returns false on
  /// out-of-range outcomes.
  bool EncodeAssignment(const BranchAssignment& assignment,
                        BitMinterm& out) const;

 private:
  struct Field {
    int offset = -1;  ///< first bit; -1 when the task is not a fork
    int width = 0;
  };

  const Field* FieldOf(TaskId fork) const;

  std::vector<Field> fields_;  // dense by task index
  std::size_t bit_count_ = 0;
  bool valid_ = false;
};

/// Increments the process-wide "guard.dnf_fallbacks" metrics counter.
/// Called by the users of ConditionSpace whenever they take the DNF
/// slow path because a space is invalid or an encode failed.
void CountDnfFallback();

}  // namespace actg::ctg

#endif  // ACTG_CTG_CONDITION_BITSET_H
