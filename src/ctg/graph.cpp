#include "ctg/graph.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/error.h"

namespace actg::ctg {

// ---------------------------------------------------------------------------
// Ctg

std::vector<TaskId> Ctg::TaskIds() const {
  std::vector<TaskId> ids;
  ids.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    ids.push_back(TaskId{static_cast<int>(i)});
  }
  return ids;
}

std::vector<EdgeId> Ctg::EdgeIds() const {
  std::vector<EdgeId> ids;
  ids.reserve(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    ids.push_back(EdgeId{static_cast<int>(i)});
  }
  return ids;
}

bool Ctg::IsFork(TaskId id) const {
  return id.valid() && id.index() < forks_.size() &&
         forks_[id.index()].has_value();
}

const ForkInfo& Ctg::Fork(TaskId id) const {
  ACTG_CHECK(IsFork(id), "Task is not a branch fork node");
  return *forks_[id.index()];
}

std::string Ctg::OutcomeLabel(TaskId fork, int outcome) const {
  const ForkInfo& info = Fork(fork);
  ACTG_CHECK(outcome >= 0 && outcome < info.outcome_count,
             "Outcome index out of range");
  if (static_cast<std::size_t>(outcome) < info.outcome_labels.size()) {
    return info.outcome_labels[static_cast<std::size_t>(outcome)];
  }
  std::ostringstream os;
  os << task(fork).name << ':' << outcome;
  return os.str();
}

Guard::ForkArity Ctg::ArityFn() const {
  return [this](TaskId fork) -> int {
    return IsFork(fork) ? Fork(fork).outcome_count : 0;
  };
}

void Ctg::SetDeadline(double deadline_ms) {
  ACTG_CHECK(deadline_ms > 0.0, "Deadline must be positive");
  deadline_ms_ = deadline_ms;
}

// ---------------------------------------------------------------------------
// CtgBuilder

TaskId CtgBuilder::AddTask(std::string name) {
  tasks_.push_back(Task{std::move(name), JoinType::kAnd});
  labels_.emplace_back();
  return TaskId{static_cast<int>(tasks_.size()) - 1};
}

TaskId CtgBuilder::AddOrTask(std::string name) {
  tasks_.push_back(Task{std::move(name), JoinType::kOr});
  labels_.emplace_back();
  return TaskId{static_cast<int>(tasks_.size()) - 1};
}

EdgeId CtgBuilder::AddEdge(TaskId src, TaskId dst, double comm_kbytes) {
  ACTG_CHECK(src.valid() && src.index() < tasks_.size(),
             "AddEdge: unknown source task");
  ACTG_CHECK(dst.valid() && dst.index() < tasks_.size(),
             "AddEdge: unknown destination task");
  ACTG_CHECK(src != dst, "AddEdge: self-loops are not allowed");
  ACTG_CHECK(comm_kbytes >= 0.0, "AddEdge: negative communication volume");
  edges_.push_back(Edge{src, dst, comm_kbytes, std::nullopt});
  return EdgeId{static_cast<int>(edges_.size()) - 1};
}

EdgeId CtgBuilder::AddConditionalEdge(TaskId src, TaskId dst, int outcome,
                                      double comm_kbytes) {
  EdgeId id = AddEdge(src, dst, comm_kbytes);
  ACTG_CHECK(outcome >= 0, "Conditional edge outcome must be >= 0");
  edges_.back().condition = Condition{src, outcome};
  return id;
}

void CtgBuilder::SetOutcomeLabels(TaskId fork,
                                  std::vector<std::string> labels) {
  ACTG_CHECK(fork.valid() && fork.index() < tasks_.size(),
             "SetOutcomeLabels: unknown task");
  ACTG_CHECK(labels.size() >= 2, "A fork needs at least two outcomes");
  labels_[fork.index()] = std::move(labels);
}

void CtgBuilder::SetDeadline(double deadline_ms) {
  ACTG_CHECK(deadline_ms > 0.0, "Deadline must be positive");
  deadline_ms_ = deadline_ms;
}

Ctg CtgBuilder::Build() && {
  ACTG_CHECK(!tasks_.empty(), "A CTG needs at least one task");

  Ctg g;
  g.tasks_ = std::move(tasks_);
  g.edges_ = std::move(edges_);
  g.deadline_ms_ = deadline_ms_;
  const std::size_t n = g.tasks_.size();

  g.out_edges_.assign(n, {});
  g.in_edges_.assign(n, {});
  for (std::size_t e = 0; e < g.edges_.size(); ++e) {
    const EdgeId id{static_cast<int>(e)};
    g.out_edges_[g.edges_[e].src.index()].push_back(id);
    g.in_edges_[g.edges_[e].dst.index()].push_back(id);
  }

  // Fork table: a task is a fork iff it has >= 1 conditional out-edge.
  g.forks_.assign(n, std::nullopt);
  for (const Edge& edge : g.edges_) {
    if (!edge.condition.has_value()) continue;
    ACTG_CHECK(edge.condition->fork == edge.src,
               "A conditional edge's condition must name its own source");
    auto& info = g.forks_[edge.src.index()];
    if (!info.has_value()) info = ForkInfo{edge.src, 0, {}};
    info->outcome_count =
        std::max(info->outcome_count, edge.condition->outcome + 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId id{static_cast<int>(i)};
    if (labels_[i].has_value()) {
      ACTG_CHECK(g.forks_[i].has_value(),
                 "Outcome labels set on a task with no conditional edges");
      ACTG_CHECK(static_cast<int>(labels_[i]->size()) >=
                     g.forks_[i]->outcome_count,
                 "Fewer outcome labels than outcomes used by edges");
      g.forks_[i]->outcome_count = static_cast<int>(labels_[i]->size());
      g.forks_[i]->outcome_labels = std::move(*labels_[i]);
    }
    if (g.forks_[i].has_value()) {
      ACTG_CHECK(g.forks_[i]->outcome_count >= 2,
                 "Fork '" + g.tasks_[i].name +
                     "' must have at least two outcomes");
      // Every outcome must be used by at least one edge, otherwise the
      // branch could select an outcome that activates nothing that the
      // condition algebra knows about.
      std::vector<bool> used(
          static_cast<std::size_t>(g.forks_[i]->outcome_count), false);
      for (EdgeId eid : g.out_edges_[i]) {
        const auto& cond = g.edges_[eid.index()].condition;
        if (cond.has_value()) {
          used[static_cast<std::size_t>(cond->outcome)] = true;
        }
      }
      for (std::size_t o = 0; o < used.size(); ++o) {
        ACTG_CHECK(used[o], "Fork '" + g.tasks_[i].name + "' outcome " +
                                std::to_string(o) +
                                " is not used by any edge");
      }
      g.fork_ids_.push_back(id);
    }
  }

  // Kahn topological sort; also detects cycles.
  std::vector<int> in_degree(n, 0);
  for (const Edge& edge : g.edges_) ++in_degree[edge.dst.index()];
  std::queue<TaskId> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) frontier.push(TaskId{static_cast<int>(i)});
  }
  g.topo_.reserve(n);
  while (!frontier.empty()) {
    const TaskId id = frontier.front();
    frontier.pop();
    g.topo_.push_back(id);
    for (EdgeId eid : g.out_edges_[id.index()]) {
      const TaskId dst = g.edges_[eid.index()].dst;
      if (--in_degree[dst.index()] == 0) frontier.push(dst);
    }
  }
  ACTG_CHECK(g.topo_.size() == n, "The CTG contains a cycle");

  // Keep fork ids in topological order (used by assignment encodings).
  std::vector<std::size_t> topo_pos(n);
  for (std::size_t i = 0; i < n; ++i) topo_pos[g.topo_[i].index()] = i;
  std::sort(g.fork_ids_.begin(), g.fork_ids_.end(),
            [&](TaskId a, TaskId b) {
              return topo_pos[a.index()] < topo_pos[b.index()];
            });

  for (std::size_t i = 0; i < n; ++i) {
    const TaskId id{static_cast<int>(i)};
    if (g.in_edges_[i].empty()) g.sources_.push_back(id);
    if (g.out_edges_[i].empty()) g.sinks_.push_back(id);
  }
  ACTG_CHECK(!g.sources_.empty(), "The CTG has no source task");

  for (std::size_t i = 0; i < n; ++i) {
    if (g.tasks_[i].join == JoinType::kOr) {
      ACTG_CHECK(!g.in_edges_[i].empty(),
                 "Or-node '" + g.tasks_[i].name +
                     "' has no incoming alternatives");
    }
  }

  return g;
}

}  // namespace actg::ctg
