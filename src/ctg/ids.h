/// \file ids.h
/// Strongly typed identifiers for tasks, edges, and processing elements.
///
/// Using distinct wrapper types (rather than bare ints) makes it a
/// compile-time error to pass a PE index where a task index is expected
/// (C++ Core Guidelines I.4: make interfaces precisely and strongly
/// typed).

#ifndef ACTG_CTG_IDS_H
#define ACTG_CTG_IDS_H

#include <compare>
#include <cstddef>
#include <functional>

namespace actg {

/// Generic integer identifier distinguished by a tag type.
template <typename Tag>
struct StrongId {
  int value = -1;

  constexpr StrongId() = default;
  constexpr explicit StrongId(int v) : value(v) {}

  /// True when the id refers to an element (ids are created valid by the
  /// builders; default-constructed ids are sentinels).
  constexpr bool valid() const { return value >= 0; }

  /// Index into dense per-element arrays.
  constexpr std::size_t index() const { return static_cast<std::size_t>(value); }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

struct TaskTag {};
struct EdgeTag {};
struct PeTag {};

/// Identifies a task (vertex) of a CTG.
using TaskId = StrongId<TaskTag>;
/// Identifies an edge of a CTG.
using EdgeId = StrongId<EdgeTag>;
/// Identifies a processing element of a platform.
using PeId = StrongId<PeTag>;

/// Hash functor usable with unordered containers for any StrongId.
struct StrongIdHash {
  template <typename Tag>
  std::size_t operator()(StrongId<Tag> id) const {
    return std::hash<int>{}(id.value);
  }
};

}  // namespace actg

#endif  // ACTG_CTG_IDS_H
