#include "ctg/condition_bitset.h"

#include <algorithm>

#include "runtime/metrics.h"

namespace actg::ctg {

void BitGuard::AddMinterm(const BitMinterm& m) {
  // Absorption: a | (a & b) == a. Keep the weaker (implied-by) minterm.
  for (const BitMinterm& existing : minterms_) {
    if (m.Implies(existing)) return;  // covers duplicates too
  }
  std::erase_if(minterms_,
                [&](const BitMinterm& existing) { return existing.Implies(m); });
  minterms_.push_back(m);
}

void BitGuard::AndWithMinterm(const BitMinterm& m) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < minterms_.size(); ++i) {
    if (!minterms_[i].CompatibleWith(m)) continue;
    minterms_[kept] = minterms_[i];
    minterms_[kept].ConjoinWith(m);
    ++kept;
  }
  minterms_.resize(kept);
  // Conjoining can create newly absorbed pairs; re-normalize in place.
  for (std::size_t i = 0; i < minterms_.size();) {
    bool absorbed = false;
    for (std::size_t j = 0; j < minterms_.size(); ++j) {
      if (i != j && minterms_[i].Implies(minterms_[j])) {
        absorbed = true;
        break;
      }
    }
    if (absorbed) {
      minterms_.erase(minterms_.begin() +
                      static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void BitGuard::AndWith(const BitGuard& other, BitGuard& scratch) {
  scratch.Clear();
  for (const BitMinterm& a : minterms_) {
    for (const BitMinterm& b : other.minterms_) {
      if (!a.CompatibleWith(b)) continue;
      BitMinterm product = a;
      product.ConjoinWith(b);
      scratch.AddMinterm(product);
    }
  }
  minterms_.swap(scratch.minterms_);
}

ConditionSpace::ConditionSpace(const std::vector<TaskId>& forks,
                               const std::vector<int>& arities) {
  if (forks.size() != arities.size()) return;
  std::size_t max_index = 0;
  for (TaskId fork : forks) {
    if (!fork.valid()) return;
    max_index = std::max(max_index, fork.index());
  }
  fields_.assign(forks.empty() ? 0 : max_index + 1, Field{});
  std::size_t offset = 0;
  for (std::size_t i = 0; i < forks.size(); ++i) {
    const int width = arities[i];
    if (width < 2 || offset + static_cast<std::size_t>(width) > kMaxBits) {
      fields_.clear();
      return;
    }
    Field& f = fields_[forks[i].index()];
    if (f.offset >= 0) {  // duplicate fork
      fields_.clear();
      return;
    }
    f.offset = static_cast<int>(offset);
    f.width = width;
    offset += static_cast<std::size_t>(width);
  }
  bit_count_ = offset;
  valid_ = true;
}

const ConditionSpace::Field* ConditionSpace::FieldOf(TaskId fork) const {
  if (!fork.valid() || fork.index() >= fields_.size()) return nullptr;
  const Field& f = fields_[fork.index()];
  return f.offset >= 0 ? &f : nullptr;
}

bool ConditionSpace::Encode(const Condition& c, BitMinterm& out) const {
  if (!valid_) return false;
  const Field* f = FieldOf(c.fork);
  if (f == nullptr || c.outcome < 0 || c.outcome >= f->width) return false;
  const std::size_t bit = static_cast<std::size_t>(f->offset + c.outcome);
  out.bits[bit / 64] |= std::uint64_t{1} << (bit % 64);
  for (int o = 0; o < f->width; ++o) {
    const std::size_t b = static_cast<std::size_t>(f->offset + o);
    out.mask[b / 64] |= std::uint64_t{1} << (b % 64);
  }
  return true;
}

bool ConditionSpace::Encode(const Minterm& m, BitMinterm& out) const {
  if (!valid_) return false;
  BitMinterm acc;
  for (const Condition& c : m.conditions()) {
    if (!Encode(c, acc)) return false;
  }
  out = acc;
  return true;
}

bool ConditionSpace::Encode(const Guard& g, BitGuard& out) const {
  if (!valid_) return false;
  out.Clear();
  for (const Minterm& m : g.minterms()) {
    BitMinterm bm;
    if (!Encode(m, bm)) return false;
    out.AddMinterm(bm);
  }
  return true;
}

bool ConditionSpace::EncodeAssignment(const BranchAssignment& assignment,
                                      BitMinterm& out) const {
  if (!valid_) return false;
  BitMinterm acc;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const Field& f = fields_[i];
    if (f.offset < 0) continue;
    const TaskId fork{static_cast<int>(i)};
    const int outcome =
        fork.index() < assignment.size() ? assignment.Get(fork) : -1;
    if (outcome < 0) continue;  // fork left unconstrained
    if (!Encode(Condition{fork, outcome}, acc)) return false;
  }
  out = acc;
  return true;
}

void CountDnfFallback() {
  runtime::Metrics::Global().Increment("guard.dnf_fallbacks");
}

}  // namespace actg::ctg
