#include "ctg/activation.h"

#include <algorithm>

#include "util/error.h"

namespace actg::ctg {

ActivationAnalysis::ActivationAnalysis(const Ctg& graph) : graph_(&graph) {
  ComputeGuards();
  CompileBitGuards();
  ComputeMutex();
  ComputeImpliedDeps();
}

void ActivationAnalysis::ComputeGuards() {
  const Ctg& g = *graph_;
  const auto arity = g.ArityFn();
  guards_.assign(g.task_count(), Guard::False());

  for (TaskId id : g.TopologicalOrder()) {
    const auto& in_edges = g.InEdges(id);
    if (in_edges.empty()) {
      // Entry tasks are activated in every instance.
      guards_[id.index()] = Guard::True();
      continue;
    }
    Guard acc;
    bool first = true;
    for (EdgeId eid : in_edges) {
      const Edge& e = g.edge(eid);
      Guard alternative = guards_[e.src.index()];
      if (e.condition.has_value()) {
        alternative = alternative.AndCondition(*e.condition, arity);
      }
      if (first) {
        acc = std::move(alternative);
        first = false;
      } else if (g.task(id).join == JoinType::kAnd) {
        acc = acc.And(alternative, arity);
      } else {
        acc = acc.Or(alternative, arity);
      }
    }
    guards_[id.index()] = std::move(acc);
  }
}

void ActivationAnalysis::CompileBitGuards() {
  const Ctg& g = *graph_;
  std::vector<int> arities;
  arities.reserve(g.ForkIds().size());
  for (TaskId fork : g.ForkIds()) arities.push_back(g.OutcomeCount(fork));
  space_ = ConditionSpace(g.ForkIds(), arities);
  if (!space_.valid()) {
    CountDnfFallback();
    return;
  }
  bit_guards_.resize(guards_.size());
  for (std::size_t i = 0; i < guards_.size(); ++i) {
    if (!space_.Encode(guards_[i], bit_guards_[i])) {
      // A guard the space cannot express; retire the whole compiled
      // layer so every caller consistently uses the DNF algebra.
      space_ = ConditionSpace();
      bit_guards_.clear();
      CountDnfFallback();
      return;
    }
  }
}

void ActivationAnalysis::ComputeMutex() {
  const std::size_t n = graph_->task_count();
  mutex_.assign(n, std::vector<bool>(n, false));
  const bool use_bits = space_.valid();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Mutual exclusion is unsatisfiability of X(τi) ∧ X(τj) — a
      // form-independent predicate, so the compiled guards give the
      // same answer as the DNF walk.
      const bool exclusive =
          use_bits ? !bit_guards_[i].CompatibleWith(bit_guards_[j])
                   : !guards_[i].CompatibleWith(guards_[j]);
      mutex_[i][j] = exclusive;
      mutex_[j][i] = exclusive;
    }
  }
}

void ActivationAnalysis::ComputeImpliedDeps() {
  const Ctg& g = *graph_;
  const auto arity = g.ArityFn();
  for (TaskId id : g.TopologicalOrder()) {
    if (g.task(id).join != JoinType::kOr) continue;
    // The or-node cannot start before it knows which alternative
    // activates it: every fork mentioned by any incoming alternative's
    // guard must have resolved.
    std::vector<TaskId> forks;
    for (EdgeId eid : g.InEdges(id)) {
      const Edge& e = g.edge(eid);
      Guard alternative = guards_[e.src.index()];
      if (e.condition.has_value()) {
        alternative = alternative.AndCondition(*e.condition, arity);
      }
      for (TaskId fork : alternative.Support()) forks.push_back(fork);
    }
    std::sort(forks.begin(), forks.end());
    forks.erase(std::unique(forks.begin(), forks.end()), forks.end());
    for (TaskId fork : forks) {
      if (fork == id) continue;
      bool direct_unconditional = false;
      for (EdgeId eid : g.InEdges(id)) {
        const Edge& e = g.edge(eid);
        if (e.src == fork && !e.condition.has_value()) {
          direct_unconditional = true;
          break;
        }
      }
      if (!direct_unconditional) implied_deps_.emplace_back(fork, id);
    }
  }
}

bool ActivationAnalysis::MutuallyExclusive(TaskId a, TaskId b) const {
  return mutex_.at(a.index()).at(b.index());
}

double ActivationAnalysis::ActivationProbability(
    TaskId task, const BranchProbabilities& probs) const {
  return ActivationGuard(task).Probability(probs);
}

bool ActivationAnalysis::IsActive(TaskId task,
                                  const BranchAssignment& assignment) const {
  return ActivationGuard(task).Evaluate(assignment);
}

bool ActivationAnalysis::IsActive(TaskId task,
                                  const Minterm& scenario) const {
  for (const Minterm& m : Gamma(task)) {
    if (scenario.Implies(m)) return true;
  }
  return false;
}

void ActivationAnalysis::EnumerateScenariosRec(
    const Minterm& current, double prob, std::size_t fork_pos,
    const BranchProbabilities* probs, std::vector<Scenario>& out) const {
  const Ctg& g = *graph_;
  const auto& forks = g.ForkIds();
  // Find the next fork (in topological order) that is active under the
  // partial assignment built so far. Guards of a fork only mention
  // strictly earlier forks, so activity is fully determined.
  for (std::size_t pos = fork_pos; pos < forks.size(); ++pos) {
    const TaskId fork = forks[pos];
    if (!IsActive(fork, current)) continue;
    for (int outcome = 0; outcome < g.OutcomeCount(fork); ++outcome) {
      const double p =
          probs != nullptr ? probs->Outcome(fork, outcome) : 1.0;
      if (probs != nullptr && p == 0.0) continue;
      auto extended = current.With(Condition{fork, outcome});
      ACTG_ASSERT(extended.has_value(),
                  "scenario enumeration produced a contradiction");
      EnumerateScenariosRec(*extended, prob * p, pos + 1, probs, out);
    }
    return;
  }
  out.push_back(Scenario{current, prob});
}

std::vector<Scenario> ActivationAnalysis::EnumerateScenarios(
    const BranchProbabilities& probs) const {
  std::vector<Scenario> out;
  EnumerateScenariosRec(Minterm(), 1.0, 0, &probs, out);
  return out;
}

std::vector<Minterm> ActivationAnalysis::EnumerateScenarioAssignments()
    const {
  std::vector<Scenario> scenarios;
  EnumerateScenariosRec(Minterm(), 1.0, 0, nullptr, scenarios);
  std::vector<Minterm> out;
  out.reserve(scenarios.size());
  for (auto& s : scenarios) out.push_back(std::move(s.assignment));
  return out;
}

std::vector<Minterm> ActivationAnalysis::AllMinterms() const {
  std::vector<Minterm> all;
  for (const Guard& guard : guards_) {
    for (const Minterm& m : guard.minterms()) {
      if (std::find(all.begin(), all.end(), m) == all.end()) {
        all.push_back(m);
      }
    }
  }
  return all;
}

}  // namespace actg::ctg
