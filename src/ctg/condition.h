/// \file condition.h
/// Condition algebra for conditional task graphs (paper Section II).
///
/// A *condition* is one outcome of a branch fork task (e.g. "a1" = fork A
/// took outcome 0). A *minterm* is a conjunction of conditions, at most
/// one per fork; the empty minterm is the constant true ("1" in the
/// paper). A *guard* is a disjunction of minterms (DNF) and represents an
/// activation condition X(τ).

#ifndef ACTG_CTG_CONDITION_H
#define ACTG_CTG_CONDITION_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ctg/ids.h"

namespace actg::ctg {

/// One outcome of a branch fork task. Outcomes of a fork with k
/// conditional alternatives are indexed 0..k-1.
struct Condition {
  TaskId fork;
  int outcome = -1;

  friend constexpr auto operator<=>(const Condition&,
                                    const Condition&) = default;
};

/// Per-instance resolution of every branch fork: fork task -> the
/// outcome it selected. Dense by task index; -1 for non-fork tasks.
class BranchAssignment {
 public:
  BranchAssignment() = default;

  /// Creates an assignment able to hold outcomes for \p task_count tasks.
  explicit BranchAssignment(std::size_t task_count)
      : outcomes_(task_count, -1) {}

  /// Records the outcome selected by \p fork.
  void Set(TaskId fork, int outcome);

  /// Outcome selected by \p fork, or -1 when unset.
  int Get(TaskId fork) const;

  std::size_t size() const { return outcomes_.size(); }

 private:
  std::vector<int> outcomes_;
};

/// Probability distribution over the outcomes of every branch fork.
/// Outcomes of a fork are assumed independent of other forks (paper
/// Section I: branch selections are random variables characterized by
/// their probability distribution).
class BranchProbabilities {
 public:
  BranchProbabilities() = default;

  /// Creates a table able to hold distributions for \p task_count tasks.
  explicit BranchProbabilities(std::size_t task_count)
      : dists_(task_count) {}

  /// Sets the outcome distribution of \p fork. Probabilities must be
  /// non-negative and sum to 1 within tolerance.
  void Set(TaskId fork, std::vector<double> outcome_probs);

  /// True when a distribution has been set for \p fork.
  bool Has(TaskId fork) const;

  /// Probability that \p fork selects \p outcome. Requires Has(fork).
  double Outcome(TaskId fork, int outcome) const;

  /// Probability of a single condition.
  double Of(const Condition& c) const { return Outcome(c.fork, c.outcome); }

  /// Number of outcomes of \p fork. Requires Has(fork).
  int OutcomeCount(TaskId fork) const;

  std::size_t size() const { return dists_.size(); }

 private:
  std::vector<std::vector<double>> dists_;
};

/// Conjunction of conditions, at most one outcome per fork. Kept sorted
/// by fork id; the empty minterm is the constant true.
class Minterm {
 public:
  /// The constant-true minterm ("1" in the paper).
  Minterm() = default;

  /// Minterm of a single condition.
  explicit Minterm(Condition c) : conditions_{c} {}

  /// Builds a minterm from arbitrary conditions. Returns nullopt when two
  /// conditions assign different outcomes to the same fork (contradiction).
  static std::optional<Minterm> FromConditions(
      std::vector<Condition> conditions);

  /// True for the constant-true minterm.
  bool IsTrue() const { return conditions_.empty(); }

  /// Number of conditions in the conjunction.
  std::size_t size() const { return conditions_.size(); }

  const std::vector<Condition>& conditions() const { return conditions_; }

  /// Outcome this minterm requires of \p fork, or nullopt when the fork
  /// is unconstrained.
  std::optional<int> OutcomeOf(TaskId fork) const;

  /// True when the two minterms can hold simultaneously (no fork is
  /// assigned two different outcomes).
  bool CompatibleWith(const Minterm& other) const;

  /// Conjunction; nullopt when contradictory.
  std::optional<Minterm> Conjoin(const Minterm& other) const;

  /// True when this minterm implies \p other (this conjunction contains
  /// every condition of \p other).
  bool Implies(const Minterm& other) const;

  /// Evaluates the minterm under a full branch assignment.
  bool Evaluate(const BranchAssignment& assignment) const;

  /// Probability of the minterm under independent fork distributions.
  double Probability(const BranchProbabilities& probs) const;

  /// Minterm with \p fork's condition removed (used by simplification).
  Minterm Without(TaskId fork) const;

  /// Minterm extended by one condition; nullopt when contradictory.
  std::optional<Minterm> With(Condition c) const { return Conjoin(Minterm(c)); }

  /// Human-readable form, e.g. "a=1&b=0"; "1" for the true minterm.
  /// \p fork_name maps a fork task to a printable label.
  std::string ToString(
      const std::function<std::string(TaskId)>& fork_name) const;

  friend bool operator==(const Minterm&, const Minterm&) = default;

 private:
  std::vector<Condition> conditions_;  // sorted by fork id
};

/// Disjunction of minterms (DNF). Canonical form: no duplicate or
/// absorbed minterms; complementary minterms merged when the fork's
/// outcome arity is known.
class Guard {
 public:
  /// Maps a fork task to its number of outcomes; required by the
  /// complementary-merge simplification and by exact probability
  /// computation. Returning 0 means "arity unknown" and disables merging
  /// for that fork.
  using ForkArity = std::function<int(TaskId)>;

  /// The constant-false guard (empty disjunction).
  Guard() = default;

  /// The constant-true guard.
  static Guard True();

  /// The constant-false guard.
  static Guard False() { return Guard(); }

  /// Guard of a single minterm.
  static Guard Of(Minterm m);

  bool IsFalse() const { return minterms_.empty(); }
  bool IsTrue() const;

  const std::vector<Minterm>& minterms() const { return minterms_; }

  /// Disjunction (simplified with the given arity information).
  Guard Or(const Guard& other, const ForkArity& arity) const;

  /// Conjunction (distributes, drops contradictions, simplifies).
  Guard And(const Guard& other, const ForkArity& arity) const;

  /// Conjunction with one condition.
  Guard AndCondition(Condition c, const ForkArity& arity) const;

  /// True when the guards can hold simultaneously.
  bool CompatibleWith(const Guard& other) const;

  /// True when \p m is compatible with at least one minterm of this guard.
  bool CompatibleWith(const Minterm& m) const;

  /// True when this guard implies \p other (every minterm of this guard
  /// implies some minterm of \p other).
  bool Implies(const Guard& other) const;

  /// Evaluates under a full branch assignment.
  bool Evaluate(const BranchAssignment& assignment) const;

  /// Exact probability under independent fork distributions (Shannon
  /// expansion over the guard's support variables — exponential only in
  /// the number of *distinct forks mentioned by this guard*, which is
  /// small for the structured CTGs of the paper).
  double Probability(const BranchProbabilities& probs) const;

  /// All fork tasks mentioned by the guard, sorted, deduplicated.
  std::vector<TaskId> Support() const;

  /// Human-readable DNF, e.g. "a=0 | a=1&b=0"; "0" when false.
  std::string ToString(
      const std::function<std::string(TaskId)>& fork_name) const;

  friend bool operator==(const Guard&, const Guard&) = default;

 private:
  void Simplify(const ForkArity& arity);
  double ProbabilityRec(const BranchProbabilities& probs,
                        const std::vector<TaskId>& support,
                        std::size_t var_index) const;
  Guard RestrictedTo(Condition c) const;

  std::vector<Minterm> minterms_;
};

}  // namespace actg::ctg

#endif  // ACTG_CTG_CONDITION_H
