/// \file graph.h
/// The conditional task graph (CTG) model of paper Section II.
///
/// A CTG is an acyclic graph whose vertices are tasks and whose edges are
/// precedence/data-flow constraints annotated with communication volume.
/// An edge may carry a condition (one outcome of its *source* task, which
/// is then a branch fork node). Vertices are and-nodes (wait for all
/// active predecessors) or or-nodes (wait for any active predecessor).
/// The graph is periodic with a single common deadline.

#ifndef ACTG_CTG_GRAPH_H
#define ACTG_CTG_GRAPH_H

#include <optional>
#include <string>
#include <vector>

#include "ctg/condition.h"
#include "ctg/ids.h"

namespace actg::ctg {

/// How a node combines its incoming alternatives (paper Section II).
enum class JoinType {
  kAnd,  ///< activated when all predecessors completed with conditions met
  kOr,   ///< activated when any predecessor completed with conditions met
};

/// A task (vertex) of the CTG.
struct Task {
  std::string name;
  JoinType join = JoinType::kAnd;
};

/// A precedence/data-flow edge of the CTG.
struct Edge {
  TaskId src;
  TaskId dst;
  /// Data volume transferred from src to dst, in KBytes (paper: Comm).
  double comm_kbytes = 0.0;
  /// Present iff the edge is conditional; condition.fork == src.
  std::optional<Condition> condition;
};

/// Metadata of a branch fork node: how many outcomes it has and their
/// printable labels (e.g. "a1"/"a2" in the paper's Figure 1).
struct ForkInfo {
  TaskId task;
  int outcome_count = 0;
  std::vector<std::string> outcome_labels;
};

class CtgBuilder;

/// Immutable validated conditional task graph.
///
/// Construction goes through CtgBuilder, which validates acyclicity,
/// condition well-formedness (each conditional edge's condition names its
/// own source; each fork's outcomes 0..k-1 are all used) and computes the
/// derived structure (adjacency, topological order, fork table).
class Ctg {
 public:
  std::size_t task_count() const { return tasks_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const Task& task(TaskId id) const { return tasks_.at(id.index()); }
  const Edge& edge(EdgeId id) const { return edges_.at(id.index()); }

  /// All task ids, in insertion order.
  std::vector<TaskId> TaskIds() const;
  /// All edge ids, in insertion order.
  std::vector<EdgeId> EdgeIds() const;

  /// Outgoing edges of \p id.
  const std::vector<EdgeId>& OutEdges(TaskId id) const {
    return out_edges_.at(id.index());
  }
  /// Incoming edges of \p id.
  const std::vector<EdgeId>& InEdges(TaskId id) const {
    return in_edges_.at(id.index());
  }

  /// Tasks with no incoming edges.
  const std::vector<TaskId>& Sources() const { return sources_; }
  /// Tasks with no outgoing edges.
  const std::vector<TaskId>& Sinks() const { return sinks_; }

  /// One fixed topological order of the tasks.
  const std::vector<TaskId>& TopologicalOrder() const { return topo_; }

  /// True when \p id has at least one conditional outgoing edge.
  bool IsFork(TaskId id) const;

  /// Fork metadata; requires IsFork(id).
  const ForkInfo& Fork(TaskId id) const;

  /// All branch fork nodes, in topological order.
  const std::vector<TaskId>& ForkIds() const { return fork_ids_; }

  /// Number of outcomes of \p fork; requires IsFork(fork).
  int OutcomeCount(TaskId fork) const { return Fork(fork).outcome_count; }

  /// Printable label of one fork outcome (falls back to "<fork>:<i>").
  std::string OutcomeLabel(TaskId fork, int outcome) const;

  /// Arity callback for Guard simplification over this graph.
  Guard::ForkArity ArityFn() const;

  /// Common deadline of the periodic graph, in milliseconds.
  double deadline_ms() const { return deadline_ms_; }

  /// Replaces the deadline (used by experiments that derive the deadline
  /// from the schedule length, e.g. deadline = 2x optimal, Table 3).
  void SetDeadline(double deadline_ms);

  /// Task name lookup usable as the fork_name argument of
  /// Guard::ToString.
  std::string TaskName(TaskId id) const { return task(id).name; }

 private:
  friend class CtgBuilder;
  Ctg() = default;

  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::vector<TaskId> sources_;
  std::vector<TaskId> sinks_;
  std::vector<TaskId> topo_;
  std::vector<TaskId> fork_ids_;
  std::vector<std::optional<ForkInfo>> forks_;  // dense by task index
  double deadline_ms_ = 0.0;
};

/// Incremental builder for Ctg. All structural errors are reported by
/// Build() (or eagerly where cheap) as actg::InvalidArgument.
class CtgBuilder {
 public:
  CtgBuilder() = default;

  /// Adds an and-node and returns its id.
  TaskId AddTask(std::string name);

  /// Adds an or-node and returns its id.
  TaskId AddOrTask(std::string name);

  /// Adds an unconditional edge carrying \p comm_kbytes of data.
  EdgeId AddEdge(TaskId src, TaskId dst, double comm_kbytes = 0.0);

  /// Adds a conditional edge activated when \p src selects \p outcome.
  EdgeId AddConditionalEdge(TaskId src, TaskId dst, int outcome,
                            double comm_kbytes = 0.0);

  /// Names the outcomes of a fork (e.g. {"a1","a2"}); also fixes the
  /// outcome count. Optional: the count is otherwise inferred from the
  /// largest outcome used by an edge.
  void SetOutcomeLabels(TaskId fork, std::vector<std::string> labels);

  /// Sets the common deadline of the graph in milliseconds.
  void SetDeadline(double deadline_ms);

  /// Number of tasks added so far.
  std::size_t task_count() const { return tasks_.size(); }

  /// Validates and produces the immutable graph. The builder is left in a
  /// valid but unspecified state.
  Ctg Build() &&;

 private:
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::optional<std::vector<std::string>>> labels_;
  double deadline_ms_ = 0.0;
};

}  // namespace actg::ctg

#endif  // ACTG_CTG_GRAPH_H
