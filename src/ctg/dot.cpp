#include "ctg/dot.h"

namespace actg::ctg {

namespace {
std::string EscapeLabel(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}
}  // namespace

void WriteDot(std::ostream& os, const Ctg& graph) {
  os << "digraph ctg {\n  rankdir=TB;\n  node [fontsize=10];\n";
  for (TaskId id : graph.TaskIds()) {
    os << "  t" << id.value << " [label=\""
       << EscapeLabel(graph.task(id).name) << "\"";
    if (graph.IsFork(id)) {
      os << ", shape=diamond";
    } else if (graph.task(id).join == JoinType::kOr) {
      os << ", shape=doublecircle";
    } else {
      os << ", shape=ellipse";
    }
    os << "];\n";
  }
  for (EdgeId eid : graph.EdgeIds()) {
    const Edge& e = graph.edge(eid);
    os << "  t" << e.src.value << " -> t" << e.dst.value;
    if (e.condition.has_value()) {
      os << " [style=dashed, label=\""
         << EscapeLabel(
                graph.OutcomeLabel(e.condition->fork, e.condition->outcome))
         << "\"]";
    } else if (e.comm_kbytes > 0.0) {
      os << " [label=\"" << e.comm_kbytes << "KB\"]";
    }
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace actg::ctg
