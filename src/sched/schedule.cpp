#include "sched/schedule.h"

#include <algorithm>

#include "util/error.h"

namespace actg::sched {

namespace {
constexpr double kTimeEps = 1e-7;
}

Schedule::Schedule(const ctg::Ctg& graph,
                   const ctg::ActivationAnalysis& analysis,
                   const arch::Platform& platform)
    : graph_(&graph), analysis_(&analysis), platform_(&platform) {
  ACTG_CHECK(platform.task_count() == graph.task_count(),
             "Platform and graph disagree on the task count");
  placements_.resize(graph.task_count());
  comms_.resize(graph.edge_count());
  for (const auto& [fork, or_node] : analysis.ImpliedForkDependencies()) {
    control_edges_.push_back(ExtraEdge{fork, or_node});
  }
}

void Schedule::AddPseudoEdge(TaskId src, TaskId dst) {
  ACTG_CHECK(src.valid() && dst.valid() && src != dst,
             "Pseudo edge endpoints must be distinct valid tasks");
  pseudo_edges_.push_back(ExtraEdge{src, dst});
}

double Schedule::NominalWcet(TaskId task) const {
  return platform_->Wcet(task, placement(task).pe);
}

double Schedule::ScaledWcet(TaskId task) const {
  return arch::dvfs_model::ScaledTime(NominalWcet(task),
                                      placement(task).speed_ratio);
}

double Schedule::ScaledEnergy(TaskId task) const {
  return arch::dvfs_model::ScaledEnergy(
      platform_->Energy(task, placement(task).pe),
      placement(task).speed_ratio);
}

double Schedule::EdgeCommTime(EdgeId edge) const {
  const ctg::Edge& e = graph_->edge(edge);
  return platform_->CommTime(e.comm_kbytes, placement(e.src).pe,
                             placement(e.dst).pe);
}

double Schedule::EdgeCommEnergy(EdgeId edge) const {
  const ctg::Edge& e = graph_->edge(edge);
  return platform_->CommEnergy(e.comm_kbytes, placement(e.src).pe,
                               placement(e.dst).pe);
}

double Schedule::Makespan() const {
  double makespan = 0.0;
  for (const TaskPlacement& p : placements_) {
    makespan = std::max(makespan, p.finish_ms);
  }
  return makespan;
}

Schedule::DagAdjacency Schedule::BuildDagAdjacency() const {
  DagAdjacency adj;
  BuildDagAdjacency(adj);
  return adj;
}

void Schedule::BuildDagAdjacency(DagAdjacency& out) const {
  out.resize(graph_->task_count());
  for (auto& successors : out) successors.clear();
  for (EdgeId eid : graph_->EdgeIds()) {
    const ctg::Edge& e = graph_->edge(eid);
    out[e.src.index()].emplace_back(e.dst, eid);
  }
  for (const ExtraEdge& e : control_edges_) {
    out[e.src.index()].emplace_back(e.dst, std::nullopt);
  }
  for (const ExtraEdge& e : pseudo_edges_) {
    out[e.src.index()].emplace_back(e.dst, std::nullopt);
  }
}

void Schedule::RecomputeTimes() {
  const std::size_t n = graph_->task_count();
  const DagAdjacency adj = BuildDagAdjacency();

  // Kahn order over the scheduled DAG (it may have more edges than the
  // CTG, so the CTG's topological order is not sufficient).
  std::vector<int> in_degree(n, 0);
  for (const auto& out : adj) {
    for (const auto& [dst, eid] : out) ++in_degree[dst.index()];
  }
  std::vector<TaskId> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) order.push_back(TaskId{static_cast<int>(i)});
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    const TaskId u = order[head];
    for (const auto& [dst, eid] : adj[u.index()]) {
      if (--in_degree[dst.index()] == 0) order.push_back(dst);
    }
  }
  ACTG_ASSERT(order.size() == n, "scheduled DAG contains a cycle");

  std::vector<double> ready(n, 0.0);
  for (const TaskId u : order) {
    TaskPlacement& p = placements_[u.index()];
    p.start_ms = ready[u.index()];
    p.finish_ms = p.start_ms + ScaledWcet(u);
    for (const auto& [dst, eid] : adj[u.index()]) {
      double arrival = p.finish_ms;
      if (eid.has_value()) {
        const double comm_time = EdgeCommTime(*eid);
        comms_[eid->index()].start_ms = p.finish_ms;
        comms_[eid->index()].finish_ms = p.finish_ms + comm_time;
        arrival += comm_time;
      }
      ready[dst.index()] = std::max(ready[dst.index()], arrival);
    }
  }
}

void Schedule::Validate() const {
  const std::size_t n = graph_->task_count();
  for (std::size_t i = 0; i < n; ++i) {
    const TaskPlacement& p = placements_[i];
    ACTG_ASSERT(p.pe.valid() && p.pe.index() < platform_->pe_count(),
                "task placed on an invalid PE");
    ACTG_ASSERT(p.start_ms >= -kTimeEps, "task starts before time zero");
    const TaskId id{static_cast<int>(i)};
    const double expected = p.start_ms + ScaledWcet(id);
    ACTG_ASSERT(std::abs(p.finish_ms - expected) < 1e-5,
                "task finish is inconsistent with start + scaled WCET");
    ACTG_ASSERT(p.speed_ratio > 0.0 && p.speed_ratio <= 1.0 + kTimeEps,
                "speed ratio out of (0, 1]");
    ACTG_ASSERT(p.speed_ratio >=
                    platform_->pe(p.pe).min_speed_ratio - kTimeEps,
                "speed ratio below the PE minimum");
    const auto& levels = platform_->pe(p.pe).speed_levels;
    if (!levels.empty()) {
      bool on_level = false;
      for (double level : levels) {
        if (std::abs(level - p.speed_ratio) < 1e-9) {
          on_level = true;
          break;
        }
      }
      ACTG_ASSERT(on_level,
                  "speed ratio is not an available discrete level");
    }
  }

  // Every precedence constraint of the scheduled DAG must be respected.
  for (EdgeId eid : graph_->EdgeIds()) {
    const ctg::Edge& e = graph_->edge(eid);
    const double arrival =
        placements_[e.src.index()].finish_ms + EdgeCommTime(eid);
    ACTG_ASSERT(placements_[e.dst.index()].start_ms >= arrival - 1e-5,
                "data dependency violated by the schedule");
  }
  for (const auto* extra : {&control_edges_, &pseudo_edges_}) {
    for (const ExtraEdge& e : *extra) {
      ACTG_ASSERT(placements_[e.dst.index()].start_ms >=
                      placements_[e.src.index()].finish_ms - 1e-5,
                  "order dependency violated by the schedule");
    }
  }

  // Non-mutex tasks sharing a PE must not overlap in time.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (placements_[i].pe != placements_[j].pe) continue;
      const TaskId a{static_cast<int>(i)};
      const TaskId b{static_cast<int>(j)};
      if (analysis_->MutuallyExclusive(a, b)) continue;
      const bool disjoint =
          placements_[i].finish_ms <= placements_[j].start_ms + 1e-5 ||
          placements_[j].finish_ms <= placements_[i].start_ms + 1e-5;
      ACTG_ASSERT(disjoint,
                  "non-mutually-exclusive tasks overlap on one PE");
    }
  }
}

}  // namespace actg::sched
