/// \file incremental.h
/// Warm-start incremental rescheduling (dirty-region DLS).
///
/// The adaptive controller's hot path recomputes a full DLS + stretch
/// on every threshold crossing, even when only one fork's probability
/// estimate moved. But a changed fork probability can only change what
/// the scheduler *should* do for tasks that are controlled by — or
/// downstream of — that fork: the activation analysis tells us exactly
/// which tasks those are. The incremental path therefore
///
///   1. diffs the new probability vector against the basis vector the
///      prior schedule was built with (ComputeDirtyRegion),
///   2. marks the changed forks and everything reachable from them over
///      data edges and implied fork->or-node control dependencies (plus
///      any task whose activation guard mentions a changed fork) as
///      *dirty*,
///   3. re-runs DLS with every *clean* task pinned to its prior PE
///      (DlsOptions::pinned_mapping) — the candidate loop collapses
///      from |PEs| evaluations to one for clean tasks — while dirty
///      tasks re-level and re-map freely.
///
/// Ordering and start times are recomputed globally, so the result is a
/// complete schedule satisfying every invariant the oracle checks. It
/// is *feasibly equivalent* to a full recompute, not bit-identical: the
/// clean region keeps the prior mapping by construction, which a full
/// DLS might have moved. When the dirty region exceeds max_dirty_ratio
/// of the graph (or the basis is unusable under the current PE mask)
/// the incremental path falls back to a full DLS and reports it.
///
/// An empty dirty region degenerates to a fully pinned run, which
/// reproduces the basis mapping exactly.

#ifndef ACTG_SCHED_INCREMENTAL_H
#define ACTG_SCHED_INCREMENTAL_H

#include <cstddef>
#include <vector>

#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "ctg/graph.h"
#include "sched/dls.h"
#include "sched/schedule.h"

namespace actg::sched {

/// The dirty region induced by a probability update.
struct IncrementalDelta {
  /// Forks whose outcome distribution changed (exact comparison),
  /// in topological fork order.
  std::vector<TaskId> changed_forks;
  /// Dense by task index: nonzero when the task must re-map.
  std::vector<char> dirty;
  /// Number of dirty tasks.
  std::size_t dirty_count = 0;
};

/// Computes the dirty region of moving from \p before to \p after:
/// the changed forks themselves plus every task downstream of one over
/// data edges and implied fork->or-node dependencies, plus every task
/// whose activation guard mentions a changed fork. Both distributions
/// must cover every fork of \p graph.
IncrementalDelta ComputeDirtyRegion(const ctg::Ctg& graph,
                                    const ctg::ActivationAnalysis& analysis,
                                    const ctg::BranchProbabilities& before,
                                    const ctg::BranchProbabilities& after);

/// The prior mapping to warm-start from: placement(τ).pe per task.
std::vector<PeId> MappingOf(const Schedule& schedule);

/// Outcome of one incremental scheduling call.
struct IncrementalResult {
  Schedule schedule;
  /// True when a full DLS ran instead of the warm-started one (dirty
  /// region too large, or the basis mapping was unusable).
  bool fell_back = false;
  /// Dirty tasks of the delta (0 when the probabilities were equal).
  std::size_t dirty_count = 0;
};

/// Reschedules \p graph at \p probs, warm-starting from
/// \p basis_mapping: tasks outside \p delta's dirty region are pinned
/// to their basis PE, dirty tasks re-map freely. Falls back to a full
/// RunDls — bit-identical to calling it directly — when
/// delta.dirty_count > max_dirty_ratio * task_count, when the basis
/// does not cover the graph, when some clean task's basis PE is not in
/// options.available_pes, or when options carries a fixed_mapping
/// (nothing to warm-start). \p options.pinned_mapping must be null; it
/// is owned by this call.
IncrementalResult RunIncrementalDls(const ctg::Ctg& graph,
                                    const ctg::ActivationAnalysis& analysis,
                                    const arch::Platform& platform,
                                    const ctg::BranchProbabilities& probs,
                                    const std::vector<PeId>& basis_mapping,
                                    const IncrementalDelta& delta,
                                    const DlsOptions& options,
                                    double max_dirty_ratio,
                                    DlsWorkspace* workspace = nullptr);

}  // namespace actg::sched

#endif  // ACTG_SCHED_INCREMENTAL_H
