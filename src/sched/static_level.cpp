#include "sched/static_level.h"

#include <algorithm>

#include "util/error.h"

namespace actg::sched {

std::vector<double> ComputeStaticLevels(
    const ctg::Ctg& graph, const arch::Platform& platform,
    const ctg::BranchProbabilities& probs, LevelPolicy policy) {
  ACTG_CHECK(platform.task_count() == graph.task_count(),
             "Platform and graph disagree on the task count");
  std::vector<double> levels(graph.task_count(), 0.0);

  const auto& topo = graph.TopologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId id = *it;
    const double avg_wcet = platform.AverageWcet(id);
    const auto& out = graph.OutEdges(id);
    if (out.empty()) {
      levels[id.index()] = avg_wcet;
      continue;
    }

    const bool weighted = policy == LevelPolicy::kProbabilityWeighted &&
                          graph.IsFork(id);
    if (!weighted) {
      double best = 0.0;
      for (EdgeId eid : out) {
        best = std::max(best, levels[graph.edge(eid).dst.index()]);
      }
      levels[id.index()] = avg_wcet + best;
      continue;
    }

    // Branch fork with probability weighting: per-outcome max, weighted
    // sum, floored by the best unconditional successor (which executes
    // under every outcome).
    const int arity = graph.OutcomeCount(id);
    std::vector<double> per_outcome(static_cast<std::size_t>(arity), 0.0);
    double unconditional = 0.0;
    for (EdgeId eid : out) {
      const ctg::Edge& e = graph.edge(eid);
      const double successor_level = levels[e.dst.index()];
      if (e.condition.has_value()) {
        auto& slot =
            per_outcome[static_cast<std::size_t>(e.condition->outcome)];
        slot = std::max(slot, successor_level);
      } else {
        unconditional = std::max(unconditional, successor_level);
      }
    }
    double expected = 0.0;
    for (int o = 0; o < arity; ++o) {
      expected += probs.Outcome(id, o) *
                  per_outcome[static_cast<std::size_t>(o)];
    }
    levels[id.index()] = avg_wcet + std::max(expected, unconditional);
  }
  return levels;
}

}  // namespace actg::sched
