#include "sched/dls.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"
#include "runtime/metrics.h"
#include "util/error.h"

namespace actg::sched {

namespace {

constexpr double kTimeEps = 1e-9;

/// Earliest start >= ready such that [start, start + duration) avoids
/// every blocking interval. \p busy must be sorted by start.
double EarliestGap(const std::vector<std::pair<double, double>>& busy,
                   double ready, double duration) {
  double t = ready;
  for (const auto& [begin, end] : busy) {
    if (end <= t + kTimeEps) continue;
    if (begin >= t + duration - kTimeEps) break;
    t = std::max(t, end);
  }
  return t;
}

/// Incremental transitive-reduction helper: true when \p dst is reachable
/// from \p src over \p adj. \p stack and \p seen are caller-owned scratch.
bool Reachable(const std::vector<std::vector<int>>& adj, int src, int dst,
               std::vector<int>& stack, std::vector<bool>& seen) {
  if (src == dst) return true;
  stack.assign(1, src);
  seen.assign(adj.size(), false);
  seen[static_cast<std::size_t>(src)] = true;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int v : adj[static_cast<std::size_t>(u)]) {
      if (v == dst) return true;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

}  // namespace

util::Error DlsOptions::Validate() const {
  if (fixed_mapping != nullptr) {
    if (fixed_mapping->empty()) {
      return util::Error::Invalid(
          "DlsOptions: fixed_mapping, when set, must not be empty");
    }
    for (PeId pe : *fixed_mapping) {
      if (!pe.valid()) {
        return util::Error::Invalid(
            "DlsOptions: fixed_mapping contains an invalid PE id");
      }
    }
  }
  if (pinned_mapping != nullptr && pinned_mapping->empty()) {
    return util::Error::Invalid(
        "DlsOptions: pinned_mapping, when set, must not be empty");
  }
  if (available_pes.removed_bits() == ~0ULL) {
    return util::Error::Invalid(
        "DlsOptions: available_pes must leave at least one PE");
  }
  return {};
}

std::vector<PeId> RoundRobinMapping(const ctg::Ctg& graph,
                                    const arch::Platform& platform) {
  std::vector<PeId> mapping(graph.task_count());
  int next = 0;
  for (TaskId task : graph.TopologicalOrder()) {
    mapping[task.index()] =
        PeId{next++ % static_cast<int>(platform.pe_count())};
  }
  return mapping;
}

Schedule RunDls(const ctg::Ctg& graph,
                const ctg::ActivationAnalysis& analysis,
                const arch::Platform& platform,
                const ctg::BranchProbabilities& probs,
                const DlsOptions& options, DlsWorkspace* workspace) {
  const runtime::ScopedTimer stage_timer(runtime::Metrics::Global(),
                                         "stage.dls");
  options.Validate().ThrowIfError();
  const std::size_t n = graph.task_count();
  obs::ScopedSpan span(obs::TraceSession::Current(), "sched.dls", "sched");
  if (span.enabled()) {
    span.AddArg(obs::IntArg("tasks", static_cast<std::int64_t>(n)));
  }
  Schedule schedule(graph, analysis, platform);
  if (options.fixed_mapping != nullptr) {
    ACTG_CHECK(options.fixed_mapping->size() == n,
               "fixed_mapping must assign a PE to every task");
  }
  if (options.pinned_mapping != nullptr) {
    ACTG_CHECK(options.pinned_mapping->size() == n,
               "pinned_mapping must carry an entry for every task");
    for (PeId pe : *options.pinned_mapping) {
      ACTG_CHECK(!pe.valid() || options.available_pes.Contains(pe),
                 "pinned_mapping pins a task to an unavailable PE");
    }
  }
  ACTG_CHECK(options.available_pes.CountAvailable(platform.pe_count()) > 0,
             "available_pes masks out every PE of the platform");

  DlsWorkspace local_workspace;
  DlsWorkspace& ws = workspace != nullptr ? *workspace : local_workspace;

  ws.levels.clear();
  ComputeStaticLevels(graph, platform, probs, options.level_policy)
      .swap(ws.levels);
  const std::vector<double>& levels = ws.levels;

  // Predecessor bookkeeping over the base scheduled DAG (CTG edges plus
  // implied fork -> or-node control dependencies).
  ws.pending_preds.assign(n, 0);
  std::vector<int>& pending_preds = ws.pending_preds;
  for (EdgeId eid : graph.EdgeIds()) {
    ++pending_preds[graph.edge(eid).dst.index()];
  }
  ws.control_preds.resize(n);
  for (auto& preds : ws.control_preds) preds.clear();
  std::vector<std::vector<TaskId>>& control_preds = ws.control_preds;
  for (const ExtraEdge& e : schedule.control_edges()) {
    control_preds[e.dst.index()].push_back(e.src);
    ++pending_preds[e.dst.index()];
  }

  ws.ready_list.clear();
  std::vector<TaskId>& ready_list = ws.ready_list;
  for (std::size_t i = 0; i < n; ++i) {
    if (pending_preds[i] == 0) {
      ready_list.push_back(TaskId{static_cast<int>(i)});
    }
  }

  // Per-PE committed intervals: (start, finish, task).
  using Interval = DlsWorkspace::Interval;
  ws.timelines.resize(platform.pe_count());
  for (auto& timeline : ws.timelines) timeline.clear();
  std::vector<std::vector<Interval>>& timelines = ws.timelines;

  const auto data_ready_on = [&](TaskId task, PeId pe) {
    double ready = 0.0;
    for (EdgeId eid : graph.InEdges(task)) {
      const ctg::Edge& e = graph.edge(eid);
      const TaskPlacement& src = schedule.placement(e.src);
      ready = std::max(ready, src.finish_ms + platform.CommTime(
                                                  e.comm_kbytes, src.pe, pe));
    }
    for (TaskId fork : control_preds[task.index()]) {
      ready = std::max(ready, schedule.placement(fork).finish_ms);
    }
    return ready;
  };

  const auto earliest_start = [&](TaskId task, PeId pe) {
    const double ready = data_ready_on(task, pe);
    std::vector<std::pair<double, double>>& busy = ws.busy;
    busy.clear();
    busy.reserve(timelines[pe.index()].size());
    for (const Interval& iv : timelines[pe.index()]) {
      if (options.mutex_aware &&
          analysis.MutuallyExclusive(task, iv.task)) {
        continue;
      }
      busy.emplace_back(iv.start, iv.finish);
    }
    std::sort(busy.begin(), busy.end());
    return EarliestGap(busy, ready, platform.Wcet(task, pe));
  };

  int order = 0;
  while (!ready_list.empty()) {
    // Select the (task, PE) pair with the maximum dynamic level.
    double best_dl = -std::numeric_limits<double>::infinity();
    double best_at = 0.0;
    TaskId best_task;
    PeId best_pe;
    for (TaskId task : ready_list) {
      const double avg_wcet = platform.AverageWcet(task);
      for (PeId pe : platform.PeIds()) {
        if (options.fixed_mapping != nullptr) {
          if ((*options.fixed_mapping)[task.index()] != pe) continue;
        } else {
          if (options.pinned_mapping != nullptr) {
            const PeId pin = (*options.pinned_mapping)[task.index()];
            if (pin.valid() && pin != pe) continue;
          }
          if (!options.available_pes.Contains(pe)) continue;
        }
        const double at = earliest_start(task, pe);
        const double delta = avg_wcet - platform.Wcet(task, pe);
        const double dl = levels[task.index()] - at + delta;
        const bool better =
            dl > best_dl + kTimeEps ||
            (dl > best_dl - kTimeEps &&
             (at < best_at - kTimeEps ||
              (at < best_at + kTimeEps &&
               (!best_task.valid() || task < best_task ||
                (task == best_task && pe < best_pe)))));
        if (better) {
          best_dl = dl;
          best_at = at;
          best_task = task;
          best_pe = pe;
        }
      }
    }
    ACTG_ASSERT(best_task.valid(), "DLS selected no candidate");

    // Commit the placement and its incoming communications.
    TaskPlacement& p = schedule.placement(best_task);
    p.pe = best_pe;
    p.start_ms = best_at;
    p.finish_ms = best_at + platform.Wcet(best_task, best_pe);
    p.speed_ratio = 1.0;
    p.order_index = order++;
    timelines[best_pe.index()].push_back(
        Interval{p.start_ms, p.finish_ms, best_task});
    for (EdgeId eid : graph.InEdges(best_task)) {
      const ctg::Edge& e = graph.edge(eid);
      const TaskPlacement& src = schedule.placement(e.src);
      CommPlacement& comm = schedule.comm(eid);
      comm.start_ms = src.finish_ms;
      comm.finish_ms =
          src.finish_ms +
          platform.CommTime(e.comm_kbytes, src.pe, best_pe);
    }

    ready_list.erase(
        std::find(ready_list.begin(), ready_list.end(), best_task));
    for (EdgeId eid : graph.OutEdges(best_task)) {
      const TaskId dst = graph.edge(eid).dst;
      if (--pending_preds[dst.index()] == 0) ready_list.push_back(dst);
    }
    for (const ExtraEdge& e : schedule.control_edges()) {
      if (e.src == best_task &&
          --pending_preds[e.dst.index()] == 0) {
        ready_list.push_back(e.dst);
      }
    }
  }

  // Derive pseudo order edges: every ordered non-mutex pair sharing a PE,
  // transitively reduced against the existing DAG.
  ws.adj.resize(n);
  for (auto& out : ws.adj) out.clear();
  std::vector<std::vector<int>>& adj = ws.adj;
  for (EdgeId eid : graph.EdgeIds()) {
    adj[graph.edge(eid).src.index()].push_back(graph.edge(eid).dst.value);
  }
  for (const ExtraEdge& e : schedule.control_edges()) {
    adj[e.src.index()].push_back(e.dst.value);
  }
  for (auto& timeline : timelines) {
    std::sort(timeline.begin(), timeline.end(),
              [](const Interval& a, const Interval& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.task < b.task;
              });
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      for (std::size_t j = i + 1; j < timeline.size(); ++j) {
        const TaskId a = timeline[i].task;
        const TaskId b = timeline[j].task;
        // A mutual-exclusion-aware scheduler knows that exclusive tasks
        // never execute together, so it neither serializes them nor
        // derives order constraints between them. A mutex-blind tool
        // (Reference Algorithm 1) serializes them on the PE *and* its
        // downstream slack analysis sees the resulting impossible
        // both-branches chains, wasting deadline margin on them.
        if (options.mutex_aware && analysis.MutuallyExclusive(a, b))
          continue;
        ACTG_ASSERT(timeline[i].finish <= timeline[j].start + 1e-6,
                    "non-mutex tasks overlap on one PE after DLS");
        if (!Reachable(adj, a.value, b.value, ws.reach_stack,
                       ws.reach_seen)) {
          schedule.AddPseudoEdge(a, b);
          adj[a.index()].push_back(b.value);
        }
      }
    }
  }

  // Canonicalize times as ASAP over the final scheduled DAG.
  schedule.RecomputeTimes();
  return schedule;
}

}  // namespace actg::sched
