/// \file gantt.h
/// Text Gantt rendering of a schedule, for examples and debugging.

#ifndef ACTG_SCHED_GANTT_H
#define ACTG_SCHED_GANTT_H

#include <ostream>

#include "sched/schedule.h"

namespace actg::sched {

/// Options for the text Gantt chart.
struct GanttOptions {
  /// Total character width of the time axis.
  int width = 72;
  /// Show the mutually exclusive tasks that overlap on a PE on separate
  /// sub-rows (they share the PE window; see paper Section III.A).
  bool expand_overlaps = true;
};

/// Renders the schedule as one row (or more, when mutually exclusive
/// tasks overlap) per PE, with task names placed proportionally to
/// their start/finish times. Deterministic output, suitable for golden
/// tests.
void WriteGantt(std::ostream& os, const Schedule& schedule,
                const GanttOptions& options = {});

}  // namespace actg::sched

#endif  // ACTG_SCHED_GANTT_H
