/// \file static_level.h
/// Static levels SL(τ) for dynamic-level scheduling (paper Eq. 1).
///
/// SL is computed bottom-up over the CTG using the PE-average WCET at
/// nominal speed (*WCET). At a non-branching node SL = *WCET + max over
/// successor SLs. At a branch fork node the successor levels are combined
/// per outcome and weighted by the outcome probabilities:
/// SL = *WCET + Σ_o prob(o) · max over successors reachable under o.
/// Unconditional successors of a fork participate in every outcome.
///
/// The probability-blind variant (used by Reference Algorithm 1) replaces
/// the weighted sum by a plain max over all successors — the worst case.

#ifndef ACTG_SCHED_STATIC_LEVEL_H
#define ACTG_SCHED_STATIC_LEVEL_H

#include <vector>

#include "arch/platform.h"
#include "ctg/condition.h"
#include "ctg/graph.h"

namespace actg::sched {

/// How fork successors are combined into SL.
enum class LevelPolicy {
  kProbabilityWeighted,  ///< paper Eq. 1 (modified DLS)
  kWorstCase,            ///< plain DLS, Reference Algorithm 1
};

/// Computes SL(τ) for every task. \p probs is only read under
/// kProbabilityWeighted and must then cover every fork of the graph.
std::vector<double> ComputeStaticLevels(const ctg::Ctg& graph,
                                        const arch::Platform& platform,
                                        const ctg::BranchProbabilities& probs,
                                        LevelPolicy policy);

}  // namespace actg::sched

#endif  // ACTG_SCHED_STATIC_LEVEL_H
