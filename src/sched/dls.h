/// \file dls.h
/// Dynamic-level scheduling of CTGs (paper Section III.A, Eq. 1).
///
/// List scheduler after Sih & Lee [13], modified per the paper (and its
/// companion [17]) to be conditional-task-graph aware:
///   DL(τi, pj) = SL(τi) − AT(τi, pj) + δ(τi, pj)
/// where SL is the (probability-weighted) static level, AT is the first
/// time τi can start on pj given data arrival and the PE timeline, and
/// δ is the difference between τi's PE-average WCET and its WCET on pj.
/// Mutually exclusive tasks are allowed to occupy a PE at the same time
/// ("mutual exclusive task may be able to start on the same processor
/// during the same time").
///
/// The probability-blind, mutual-exclusion-blind configuration of the
/// same machinery is the mapping/ordering stage of Reference Algorithm 1.

#ifndef ACTG_SCHED_DLS_H
#define ACTG_SCHED_DLS_H

#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "ctg/graph.h"
#include "sched/schedule.h"
#include "sched/static_level.h"
#include "util/error.h"

namespace actg::sched {

/// Configuration of the DLS machinery.
struct DlsOptions {
  /// SL combination policy at branch forks (probability-weighted for the
  /// modified DLS, worst-case for Reference Algorithm 1).
  LevelPolicy level_policy = LevelPolicy::kProbabilityWeighted;
  /// When true, mutually exclusive tasks may overlap on one PE.
  bool mutex_aware = true;
  /// When set (one PE per task), the mapping is fixed and DLS only
  /// performs the ordering. This models Reference Algorithm 1 [10],
  /// which orders and stretches tasks on a *given* mapping ("tasks that
  /// are mapped to the same processor are ordered for a maximum slack").
  const std::vector<PeId>* fixed_mapping = nullptr;
  /// When set (one entry per task, invalid PeId = unconstrained), tasks
  /// with a valid entry are pinned to that PE while the rest map
  /// freely. This is the warm-start mode of the incremental
  /// rescheduler: clean tasks keep the prior mapping (their candidate
  /// loop collapses from |PEs| evaluations to one), dirty tasks re-map.
  /// Ordering and start times are still computed globally, so the
  /// result is a complete, feasible schedule either way. Ignored when a
  /// fixed_mapping pins every placement; pinned PEs must be available.
  const std::vector<PeId>* pinned_mapping = nullptr;
  /// PE availability: masked-out PEs (e.g. dropped-out ones the
  /// degradation ladder excludes) receive no task. Ignored when a
  /// fixed_mapping pins the placement. Default: every PE available.
  arch::PeMask available_pes;

  /// Ok when the options are usable: a fixed mapping, when given, must
  /// be non-empty and assign only valid PE ids (RunDls additionally
  /// checks it covers every task of the graph it is handed; a pinned
  /// mapping may leave entries invalid but must not be empty), and the
  /// availability mask must not remove every PE RunDls could use.
  util::Error Validate() const;
};

/// A naive mapping for ordering-only baselines: tasks are assigned
/// round-robin over the PEs in topological order (no communication or
/// probability awareness).
std::vector<PeId> RoundRobinMapping(const ctg::Ctg& graph,
                                    const arch::Platform& platform);

/// Reusable scratch buffers for RunDls. A workspace kept alive across
/// reschedules (e.g. inside a dvfs::PathEngine) lets repeated DLS runs
/// on the same graph skip all per-call vector growth; the produced
/// schedules are identical with or without one. Contents are
/// meaningless between calls.
struct DlsWorkspace {
  /// One committed busy interval of a PE timeline.
  struct Interval {
    double start;
    double finish;
    TaskId task;
  };

  std::vector<double> levels;
  std::vector<int> pending_preds;
  std::vector<std::vector<TaskId>> control_preds;
  std::vector<TaskId> ready_list;
  std::vector<std::vector<Interval>> timelines;
  std::vector<std::pair<double, double>> busy;
  std::vector<std::vector<int>> adj;
  std::vector<int> reach_stack;
  std::vector<bool> reach_seen;
};

/// Runs DLS and returns the complete schedule (placements, commit order,
/// communication windows, pseudo order edges; all speed ratios 1).
///
/// \p probs must cover every fork of the graph. The referenced objects
/// must outlive the returned schedule. \p workspace, when given,
/// provides reusable scratch storage (see DlsWorkspace).
Schedule RunDls(const ctg::Ctg& graph,
                const ctg::ActivationAnalysis& analysis,
                const arch::Platform& platform,
                const ctg::BranchProbabilities& probs,
                const DlsOptions& options = {},
                DlsWorkspace* workspace = nullptr);

}  // namespace actg::sched

#endif  // ACTG_SCHED_DLS_H
