/// \file dls.h
/// Dynamic-level scheduling of CTGs (paper Section III.A, Eq. 1).
///
/// List scheduler after Sih & Lee [13], modified per the paper (and its
/// companion [17]) to be conditional-task-graph aware:
///   DL(τi, pj) = SL(τi) − AT(τi, pj) + δ(τi, pj)
/// where SL is the (probability-weighted) static level, AT is the first
/// time τi can start on pj given data arrival and the PE timeline, and
/// δ is the difference between τi's PE-average WCET and its WCET on pj.
/// Mutually exclusive tasks are allowed to occupy a PE at the same time
/// ("mutual exclusive task may be able to start on the same processor
/// during the same time").
///
/// The probability-blind, mutual-exclusion-blind configuration of the
/// same machinery is the mapping/ordering stage of Reference Algorithm 1.

#ifndef ACTG_SCHED_DLS_H
#define ACTG_SCHED_DLS_H

#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "ctg/graph.h"
#include "sched/schedule.h"
#include "sched/static_level.h"

namespace actg::sched {

/// Configuration of the DLS machinery.
struct DlsOptions {
  /// SL combination policy at branch forks (probability-weighted for the
  /// modified DLS, worst-case for Reference Algorithm 1).
  LevelPolicy level_policy = LevelPolicy::kProbabilityWeighted;
  /// When true, mutually exclusive tasks may overlap on one PE.
  bool mutex_aware = true;
  /// When set (one PE per task), the mapping is fixed and DLS only
  /// performs the ordering. This models Reference Algorithm 1 [10],
  /// which orders and stretches tasks on a *given* mapping ("tasks that
  /// are mapped to the same processor are ordered for a maximum slack").
  const std::vector<PeId>* fixed_mapping = nullptr;
};

/// A naive mapping for ordering-only baselines: tasks are assigned
/// round-robin over the PEs in topological order (no communication or
/// probability awareness).
std::vector<PeId> RoundRobinMapping(const ctg::Ctg& graph,
                                    const arch::Platform& platform);

/// Runs DLS and returns the complete schedule (placements, commit order,
/// communication windows, pseudo order edges; all speed ratios 1).
///
/// \p probs must cover every fork of the graph. The referenced objects
/// must outlive the returned schedule.
Schedule RunDls(const ctg::Ctg& graph,
                const ctg::ActivationAnalysis& analysis,
                const arch::Platform& platform,
                const ctg::BranchProbabilities& probs,
                const DlsOptions& options = {});

}  // namespace actg::sched

#endif  // ACTG_SCHED_DLS_H
