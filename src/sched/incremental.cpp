#include "sched/incremental.h"

#include <algorithm>

#include "util/error.h"

namespace actg::sched {

IncrementalDelta ComputeDirtyRegion(const ctg::Ctg& graph,
                                    const ctg::ActivationAnalysis& analysis,
                                    const ctg::BranchProbabilities& before,
                                    const ctg::BranchProbabilities& after) {
  const std::size_t n = graph.task_count();
  IncrementalDelta delta;
  delta.dirty.assign(n, 0);

  for (TaskId fork : graph.ForkIds()) {
    bool changed = false;
    for (int o = 0; o < graph.OutcomeCount(fork); ++o) {
      if (before.Outcome(fork, o) != after.Outcome(fork, o)) {
        changed = true;
        break;
      }
    }
    if (changed) delta.changed_forks.push_back(fork);
  }
  if (delta.changed_forks.empty()) return delta;

  // Downstream closure over data edges plus implied fork -> or-node
  // control dependencies, seeded with the changed forks themselves
  // (their own probability-weighted level changed too).
  std::vector<TaskId> stack;
  const auto mark = [&](TaskId task) {
    if (delta.dirty[task.index()]) return;
    delta.dirty[task.index()] = 1;
    ++delta.dirty_count;
    stack.push_back(task);
  };
  for (TaskId fork : delta.changed_forks) mark(fork);
  while (!stack.empty()) {
    const TaskId u = stack.back();
    stack.pop_back();
    for (EdgeId eid : graph.OutEdges(u)) {
      mark(graph.edge(eid).dst);
    }
    for (const auto& [fork, or_node] : analysis.ImpliedForkDependencies()) {
      if (fork == u) mark(or_node);
    }
  }

  // Belt and braces: a task whose activation guard mentions a changed
  // fork is controlled by it even if some graph rewiring hid the path
  // (the closure above already covers well-formed CTGs).
  for (TaskId task : graph.TaskIds()) {
    if (delta.dirty[task.index()]) continue;
    const std::vector<TaskId> support =
        analysis.ActivationGuard(task).Support();
    for (TaskId fork : delta.changed_forks) {
      if (std::find(support.begin(), support.end(), fork) !=
          support.end()) {
        delta.dirty[task.index()] = 1;
        ++delta.dirty_count;
        break;
      }
    }
  }
  return delta;
}

std::vector<PeId> MappingOf(const Schedule& schedule) {
  const std::size_t n = schedule.graph().task_count();
  std::vector<PeId> mapping(n);
  for (TaskId task : schedule.graph().TaskIds()) {
    mapping[task.index()] = schedule.placement(task).pe;
  }
  return mapping;
}

IncrementalResult RunIncrementalDls(const ctg::Ctg& graph,
                                    const ctg::ActivationAnalysis& analysis,
                                    const arch::Platform& platform,
                                    const ctg::BranchProbabilities& probs,
                                    const std::vector<PeId>& basis_mapping,
                                    const IncrementalDelta& delta,
                                    const DlsOptions& options,
                                    double max_dirty_ratio,
                                    DlsWorkspace* workspace) {
  ACTG_CHECK(options.pinned_mapping == nullptr,
             "RunIncrementalDls: options.pinned_mapping is owned by the "
             "incremental scheduler");
  const std::size_t n = graph.task_count();

  bool usable = basis_mapping.size() == n &&
                options.fixed_mapping == nullptr &&
                delta.dirty_count <=
                    static_cast<std::size_t>(max_dirty_ratio *
                                             static_cast<double>(n));
  std::vector<PeId> pins;
  if (usable) {
    pins.assign(n, PeId{});
    for (std::size_t i = 0; i < n; ++i) {
      if (delta.dirty[i]) continue;
      const PeId pe = basis_mapping[i];
      if (!pe.valid() || !options.available_pes.Contains(pe)) {
        // The basis predates a mask change; warm-starting from it would
        // pin onto a PE DLS may not use.
        usable = false;
        break;
      }
      pins[i] = pe;
    }
  }

  if (!usable) {
    return IncrementalResult{
        RunDls(graph, analysis, platform, probs, options, workspace),
        /*fell_back=*/true, delta.dirty_count};
  }
  DlsOptions warm = options;
  warm.pinned_mapping = &pins;
  return IncrementalResult{
      RunDls(graph, analysis, platform, probs, warm, workspace),
      /*fell_back=*/false, delta.dirty_count};
}

}  // namespace actg::sched
