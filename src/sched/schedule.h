/// \file schedule.h
/// Static schedule of a CTG on a platform.
///
/// A Schedule records, for every task, its processing element, its
/// (worst-case) start/finish times and its DVFS speed ratio; for every
/// cross-PE edge, the time window of the data transfer on the link; and
/// the *scheduled DAG*: the original CTG edges plus the implied
/// fork -> or-node control dependencies (paper Example 1) plus the
/// pseudo order edges the scheduler introduces between non-mutually-
/// exclusive tasks that share a PE ("we also update the CTG to reflect
/// this change", paper Section III.A).

#ifndef ACTG_SCHED_SCHEDULE_H
#define ACTG_SCHED_SCHEDULE_H

#include <optional>
#include <vector>

#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/graph.h"

namespace actg::sched {

/// Placement of one task.
struct TaskPlacement {
  PeId pe;
  /// Worst-case start time at the current speed assignment, ms.
  double start_ms = 0.0;
  /// Worst-case finish time at the current speed assignment, ms.
  double finish_ms = 0.0;
  /// DVFS speed ratio in (0, 1]; 1 = nominal. Execution time scales by
  /// 1/ratio, energy by ratio² (paper Section IV energy model).
  double speed_ratio = 1.0;
  /// Commit order assigned by the scheduler (the "task order generated
  /// by the ordering algorithm" that the stretching heuristic follows).
  int order_index = -1;
};

/// Placement of one edge's data transfer.
struct CommPlacement {
  /// Transfer window on the point-to-point link between the endpoint
  /// PEs; zero-length (start == finish) for same-PE edges.
  double start_ms = 0.0;
  double finish_ms = 0.0;
};

/// An extra precedence constraint of the scheduled DAG that is not a CTG
/// edge: either a pseudo order edge (same-PE serialization) or an implied
/// fork -> or-node control dependency. Carries no data.
struct ExtraEdge {
  TaskId src;
  TaskId dst;
};

/// A complete static schedule. Produced by the schedulers in dls.h,
/// consumed by the DVFS stretchers and the simulator. The referenced
/// graph, analysis and platform must outlive the schedule.
class Schedule {
 public:
  Schedule(const ctg::Ctg& graph, const ctg::ActivationAnalysis& analysis,
           const arch::Platform& platform);

  const ctg::Ctg& graph() const { return *graph_; }
  const ctg::ActivationAnalysis& analysis() const { return *analysis_; }
  const arch::Platform& platform() const { return *platform_; }

  const TaskPlacement& placement(TaskId task) const {
    return placements_.at(task.index());
  }
  TaskPlacement& placement(TaskId task) {
    return placements_.at(task.index());
  }

  const CommPlacement& comm(EdgeId edge) const {
    return comms_.at(edge.index());
  }
  CommPlacement& comm(EdgeId edge) { return comms_.at(edge.index()); }

  /// Pseudo order edges between non-mutex tasks sharing a PE.
  const std::vector<ExtraEdge>& pseudo_edges() const {
    return pseudo_edges_;
  }
  void AddPseudoEdge(TaskId src, TaskId dst);

  /// Implied fork -> or-node control dependencies (from the analysis).
  const std::vector<ExtraEdge>& control_edges() const {
    return control_edges_;
  }

  /// WCET of \p task on its assigned PE at nominal speed.
  double NominalWcet(TaskId task) const;

  /// Execution time of \p task at its current speed ratio.
  double ScaledWcet(TaskId task) const;

  /// Energy of \p task at its current speed ratio.
  double ScaledEnergy(TaskId task) const;

  /// Communication delay of \p edge given the task placements.
  double EdgeCommTime(EdgeId edge) const;

  /// Communication energy of \p edge given the task placements.
  double EdgeCommEnergy(EdgeId edge) const;

  /// Worst-case makespan (max finish over tasks).
  double Makespan() const;

  /// Recomputes all worst-case start/finish times (and comm windows)
  /// from the scheduled DAG under the current speed ratios, preserving
  /// the DAG structure. Start(τ) = max over scheduled-DAG predecessors
  /// of finish + comm delay. Used after stretching.
  void RecomputeTimes();

  /// Successor lists of the scheduled DAG: for each task, pairs of
  /// (successor, edge id or nullopt for extra edges).
  using DagAdjacency =
      std::vector<std::vector<std::pair<TaskId, std::optional<EdgeId>>>>;

  /// Builds the forward adjacency of the scheduled DAG.
  DagAdjacency BuildDagAdjacency() const;

  /// Builds the adjacency into \p out, reusing its storage (the
  /// per-task inner vectors keep their capacity across reschedules).
  void BuildDagAdjacency(DagAdjacency& out) const;

  /// Validates internal consistency: every precedence constraint of the
  /// scheduled DAG is respected by the recorded times; no two non-mutex
  /// tasks overlap on one PE; speed ratios respect the PE minimum.
  /// Throws actg::InternalError on violation.
  void Validate() const;

 private:
  const ctg::Ctg* graph_;
  const ctg::ActivationAnalysis* analysis_;
  const arch::Platform* platform_;
  std::vector<TaskPlacement> placements_;
  std::vector<CommPlacement> comms_;
  std::vector<ExtraEdge> pseudo_edges_;
  std::vector<ExtraEdge> control_edges_;
};

}  // namespace actg::sched

#endif  // ACTG_SCHED_SCHEDULE_H
