#include "sched/gantt.h"

#include <algorithm>
#include <iomanip>
#include <string>
#include <vector>

#include "util/error.h"

namespace actg::sched {

namespace {

struct Row {
  std::string cells;
  double busy_until = -1.0;
};

}  // namespace

void WriteGantt(std::ostream& os, const Schedule& schedule,
                const GanttOptions& options) {
  ACTG_CHECK(options.width >= 16, "Gantt width too small");
  const ctg::Ctg& graph = schedule.graph();
  const arch::Platform& platform = schedule.platform();
  const double makespan = std::max(schedule.Makespan(), 1e-9);
  const double scale = static_cast<double>(options.width) / makespan;

  os << "Gantt (makespan " << std::fixed << std::setprecision(2)
     << makespan << " ms, '" << '=' << "' = busy, scale " << options.width
     << " cols):\n";

  for (PeId pe : platform.PeIds()) {
    // Collect this PE's tasks in start order.
    std::vector<TaskId> tasks;
    for (TaskId t : graph.TaskIds()) {
      if (schedule.placement(t).pe == pe) tasks.push_back(t);
    }
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      return schedule.placement(a).start_ms <
             schedule.placement(b).start_ms;
    });

    // Greedily pack tasks into sub-rows; overlapping (mutually
    // exclusive) tasks spill into additional sub-rows.
    std::vector<Row> rows;
    std::vector<std::vector<std::pair<TaskId, Row*>>> placed;
    for (TaskId t : tasks) {
      const TaskPlacement& p = schedule.placement(t);
      Row* row = nullptr;
      if (options.expand_overlaps) {
        for (Row& candidate : rows) {
          if (candidate.busy_until <= p.start_ms + 1e-9) {
            row = &candidate;
            break;
          }
        }
      } else if (!rows.empty()) {
        row = &rows.front();
      }
      if (row == nullptr) {
        rows.push_back(Row{std::string(
                               static_cast<std::size_t>(options.width),
                               ' '),
                           -1.0});
        row = &rows.back();
      }
      row->busy_until = std::max(row->busy_until, p.finish_ms);

      const int begin = std::clamp(
          static_cast<int>(p.start_ms * scale), 0, options.width - 1);
      const int end = std::clamp(static_cast<int>(p.finish_ms * scale),
                                 begin + 1, options.width);
      for (int c = begin; c < end; ++c) {
        row->cells[static_cast<std::size_t>(c)] = '=';
      }
      // Overlay the task name where it fits.
      const std::string& name = graph.task(t).name;
      for (std::size_t k = 0;
           k < name.size() && begin + static_cast<int>(k) < end; ++k) {
        row->cells[static_cast<std::size_t>(begin) + k] = name[k];
      }
    }

    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r == 0) {
        os << std::setw(6) << platform.pe(pe).name << " |";
      } else {
        os << "       |";  // overlap sub-row (mutually exclusive tasks)
      }
      os << rows[r].cells << "|\n";
    }
    if (rows.empty()) {
      os << std::setw(6) << platform.pe(pe).name << " |"
         << std::string(static_cast<std::size_t>(options.width), ' ')
         << "|\n";
    }
  }
}

}  // namespace actg::sched
