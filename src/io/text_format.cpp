#include "io/text_format.h"

#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/error.h"

namespace actg::io {

namespace {

bool HasWhitespace(const std::string& s) {
  return s.find_first_of(" \t\r\n") != std::string::npos;
}

/// Tokenized view of one input stream with line tracking for messages.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next non-empty, non-comment line split into tokens; false at EOF.
  bool Next(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_number_;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream split(line);
      tokens.clear();
      std::string token;
      while (split >> token) tokens.push_back(token);
      if (!tokens.empty()) return true;
    }
    return false;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw InvalidArgument("text_format line " +
                          std::to_string(line_number_) + ": " + message);
  }

  double Number(const std::string& token) const {
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      if (used != token.size()) Fail("malformed number '" + token + "'");
      return value;
    } catch (const std::logic_error&) {
      Fail("malformed number '" + token + "'");
    }
  }

  int Integer(const std::string& token) const {
    const double value = Number(token);
    const int result = static_cast<int>(value);
    if (static_cast<double>(result) != value) {
      Fail("expected an integer, got '" + token + "'");
    }
    return result;
  }

 private:
  std::istream& is_;
  int line_number_ = 0;
};

}  // namespace

void WriteCtg(std::ostream& os, const ctg::Ctg& graph) {
  // Full round-trip precision for every numeric field.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "ctg v1\n";
  if (graph.deadline_ms() > 0.0) {
    os << "deadline " << graph.deadline_ms() << "\n";
  }
  for (TaskId t : graph.TaskIds()) {
    const ctg::Task& task = graph.task(t);
    ACTG_CHECK(!task.name.empty() && !HasWhitespace(task.name),
               "Task names must be non-empty and whitespace-free");
    os << "task " << task.name << ' '
       << (task.join == ctg::JoinType::kOr ? "or" : "and") << "\n";
  }
  for (EdgeId eid : graph.EdgeIds()) {
    const ctg::Edge& e = graph.edge(eid);
    os << "edge " << e.src.value << ' ' << e.dst.value << ' '
       << e.comm_kbytes << ' ';
    if (e.condition.has_value()) {
      os << e.condition->outcome;
    } else {
      os << '-';
    }
    os << "\n";
  }
  for (TaskId fork : graph.ForkIds()) {
    const ctg::ForkInfo& info = graph.Fork(fork);
    if (info.outcome_labels.empty()) continue;
    os << "labels " << fork.value;
    for (const std::string& label : info.outcome_labels) {
      ACTG_CHECK(!label.empty() && !HasWhitespace(label),
                 "Outcome labels must be non-empty and whitespace-free");
      os << ' ' << label;
    }
    os << "\n";
  }
  os << "end\n";
}

namespace {

/// Parser bodies; they report malformed input by throwing
/// InvalidArgument, which the Parse* boundaries below convert to the
/// value-semantic util::Error.
ctg::Ctg ParseCtgImpl(std::istream& is) {
  LineReader reader(is);
  std::vector<std::string> tokens;
  if (!reader.Next(tokens) || tokens.size() != 2 || tokens[0] != "ctg" ||
      tokens[1] != "v1") {
    reader.Fail("expected header 'ctg v1'");
  }

  ctg::CtgBuilder builder;
  int task_count = 0;
  double deadline = 0.0;
  std::unordered_set<std::string> task_names;
  const auto task_id = [&](const std::string& token) {
    const int index = reader.Integer(token);
    if (index < 0 || index >= task_count) {
      reader.Fail("task index out of range: " + token);
    }
    return TaskId{index};
  };

  while (reader.Next(tokens)) {
    const std::string& directive = tokens[0];
    if (directive == "end") {
      ctg::Ctg graph = std::move(builder).Build();
      if (deadline > 0.0) graph.SetDeadline(deadline);
      return graph;
    }
    if (directive == "deadline") {
      if (tokens.size() != 2) reader.Fail("deadline needs one value");
      deadline = reader.Number(tokens[1]);
      if (deadline <= 0.0) reader.Fail("deadline must be positive");
    } else if (directive == "task") {
      if (tokens.size() != 3) reader.Fail("task needs <name> <and|or>");
      if (!task_names.insert(tokens[1]).second) {
        reader.Fail("duplicate task name '" + tokens[1] + "'");
      }
      if (tokens[2] == "or") {
        builder.AddOrTask(tokens[1]);
      } else if (tokens[2] == "and") {
        builder.AddTask(tokens[1]);
      } else {
        reader.Fail("task kind must be 'and' or 'or'");
      }
      ++task_count;
    } else if (directive == "edge") {
      if (tokens.size() != 5) {
        reader.Fail("edge needs <src> <dst> <comm_kb> <outcome|->");
      }
      const TaskId src = task_id(tokens[1]);
      const TaskId dst = task_id(tokens[2]);
      const double comm = reader.Number(tokens[3]);
      if (tokens[4] == "-") {
        builder.AddEdge(src, dst, comm);
      } else {
        builder.AddConditionalEdge(src, dst, reader.Integer(tokens[4]),
                                   comm);
      }
    } else if (directive == "labels") {
      if (tokens.size() < 4) {
        reader.Fail("labels needs <fork> and >= 2 labels");
      }
      builder.SetOutcomeLabels(
          task_id(tokens[1]),
          std::vector<std::string>(tokens.begin() + 2, tokens.end()));
    } else {
      reader.Fail("unknown directive '" + directive + "'");
    }
  }
  reader.Fail("missing 'end'");
}

}  // namespace

util::Expected<ctg::Ctg> ParseCtg(std::istream& is) {
  try {
    return ParseCtgImpl(is);
  } catch (const InvalidArgument& e) {
    return util::Error::Invalid(e.what());
  }
}

void WritePlatform(std::ostream& os, const arch::Platform& platform) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "platform v1\n";
  os << "dims " << platform.task_count() << ' ' << platform.pe_count()
     << "\n";
  for (PeId pe : platform.PeIds()) {
    const arch::PeInfo& info = platform.pe(pe);
    ACTG_CHECK(!info.name.empty() && !HasWhitespace(info.name),
               "PE names must be non-empty and whitespace-free");
    os << "pe " << pe.value << ' ' << info.name << ' '
       << info.min_speed_ratio << "\n";
    if (!info.speed_levels.empty()) {
      os << "levels " << pe.value;
      for (double level : info.speed_levels) os << ' ' << level;
      os << "\n";
    }
  }
  for (std::size_t t = 0; t < platform.task_count(); ++t) {
    for (PeId pe : platform.PeIds()) {
      const TaskId task{static_cast<int>(t)};
      os << "cost " << t << ' ' << pe.value << ' '
         << platform.Wcet(task, pe) << ' ' << platform.Energy(task, pe)
         << "\n";
    }
  }
  for (PeId a : platform.PeIds()) {
    for (PeId b : platform.PeIds()) {
      if (a.value >= b.value) continue;
      os << "link " << a.value << ' ' << b.value << ' '
         << platform.Bandwidth(a, b) << ' ' << platform.TxEnergyPerKb(a, b)
         << "\n";
    }
  }
  os << "end\n";
}

namespace {

arch::Platform ParsePlatformImpl(std::istream& is) {
  LineReader reader(is);
  std::vector<std::string> tokens;
  if (!reader.Next(tokens) || tokens.size() != 2 ||
      tokens[0] != "platform" || tokens[1] != "v1") {
    reader.Fail("expected header 'platform v1'");
  }
  if (!reader.Next(tokens) || tokens.size() != 3 || tokens[0] != "dims") {
    reader.Fail("expected 'dims <tasks> <pes>'");
  }
  const int task_count = reader.Integer(tokens[1]);
  const int pe_count = reader.Integer(tokens[2]);
  if (task_count <= 0 || pe_count <= 0) {
    reader.Fail("dims must be positive");
  }
  arch::PlatformBuilder builder(static_cast<std::size_t>(task_count),
                                static_cast<std::size_t>(pe_count));
  const auto pe_id = [&](const std::string& token) {
    const int index = reader.Integer(token);
    if (index < 0 || index >= pe_count) {
      reader.Fail("PE index out of range: " + token);
    }
    return PeId{index};
  };
  const auto task_id = [&](const std::string& token) {
    const int index = reader.Integer(token);
    if (index < 0 || index >= task_count) {
      reader.Fail("task index out of range: " + token);
    }
    return TaskId{index};
  };

  while (reader.Next(tokens)) {
    const std::string& directive = tokens[0];
    if (directive == "end") {
      return std::move(builder).Build();
    }
    if (directive == "pe") {
      if (tokens.size() != 4) {
        reader.Fail("pe needs <index> <name> <min_speed_ratio>");
      }
      const PeId pe = pe_id(tokens[1]);
      builder.SetPeName(pe, tokens[2]);
      builder.SetMinSpeedRatio(pe, reader.Number(tokens[3]));
    } else if (directive == "levels") {
      if (tokens.size() < 3) reader.Fail("levels needs <pe> <ratios...>");
      std::vector<double> levels;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        levels.push_back(reader.Number(tokens[i]));
      }
      builder.SetSpeedLevels(pe_id(tokens[1]), std::move(levels));
    } else if (directive == "cost") {
      if (tokens.size() != 5) {
        reader.Fail("cost needs <task> <pe> <wcet> <energy>");
      }
      builder.SetTaskCost(task_id(tokens[1]), pe_id(tokens[2]),
                          reader.Number(tokens[3]),
                          reader.Number(tokens[4]));
    } else if (directive == "link") {
      if (tokens.size() != 5) {
        reader.Fail("link needs <a> <b> <bandwidth> <tx_energy>");
      }
      builder.SetLink(pe_id(tokens[1]), pe_id(tokens[2]),
                      reader.Number(tokens[3]), reader.Number(tokens[4]));
    } else {
      reader.Fail("unknown directive '" + directive + "'");
    }
  }
  reader.Fail("missing 'end'");
}

}  // namespace

util::Expected<arch::Platform> ParsePlatform(std::istream& is) {
  try {
    return ParsePlatformImpl(is);
  } catch (const InvalidArgument& e) {
    return util::Error::Invalid(e.what());
  }
}

}  // namespace actg::io
