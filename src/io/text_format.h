/// \file text_format.h
/// Line-oriented text serialization of CTGs and platforms.
///
/// Lets users keep task graphs and platform tables in version-controlled
/// files instead of C++ builders, and lets experiments be re-run on
/// externally produced graphs (e.g. converted from real TGFF output).
///
/// Format (one directive per line, '#' starts a comment):
///
///   ctg v1
///   deadline <ms>
///   task <name> <and|or>                      # index = order of appearance
///   edge <src> <dst> <comm_kb> <outcome|->    # '-' = unconditional
///   labels <fork> <label0> <label1> ...
///   end
///
///   platform v1
///   dims <tasks> <pes>
///   pe <index> <name> <min_speed_ratio>
///   levels <pe> <ratio> ...                   # optional discrete DVFS
///   cost <task> <pe> <wcet_ms> <energy_mj>
///   link <a> <b> <bandwidth_kb_per_ms> <tx_energy_mj_per_kb>
///   end
///
/// Task and PE names must not contain whitespace, and task names must
/// be unique within one graph.

#ifndef ACTG_IO_TEXT_FORMAT_H
#define ACTG_IO_TEXT_FORMAT_H

#include <istream>
#include <ostream>

#include "arch/platform.h"
#include "ctg/graph.h"
#include "util/error.h"

namespace actg::io {

/// Serializes \p graph. Throws actg::InvalidArgument if a task name
/// contains whitespace.
void WriteCtg(std::ostream& os, const ctg::Ctg& graph);

/// Parses a CTG. Malformed input is reported as a util::Error carrying
/// the "text_format line N: ..." diagnostic (the Validate() ->
/// util::Error convention); the graph is re-validated through
/// CtgBuilder.
util::Expected<ctg::Ctg> ParseCtg(std::istream& is);

/// Serializes \p platform.
void WritePlatform(std::ostream& os, const arch::Platform& platform);

/// Parses a platform; malformed input is reported as a util::Error
/// with a "text_format line N: ..." diagnostic.
util::Expected<arch::Platform> ParsePlatform(std::istream& is);

}  // namespace actg::io

#endif  // ACTG_IO_TEXT_FORMAT_H
