#include "runtime/schedule_cache.h"

#include <cmath>

#include "runtime/fingerprint.h"
#include "util/error.h"

namespace actg::runtime {

util::Error CacheKeyOptions::Validate() const {
  if (quantization == 0) {
    return util::Error::Invalid(
        "CacheKeyOptions: quantization must be > 0");
  }
  if (near_quantization == 0) {
    return util::Error::Invalid(
        "CacheKeyOptions: near_quantization must be > 0");
  }
  if (near_quantization > quantization) {
    return util::Error::Invalid(
        "CacheKeyOptions: near_quantization must not exceed quantization "
        "(the tier-2 buckets must be at least as coarse as the exact-tier "
        "hash)");
  }
  return {};
}

ScheduleCacheKey MakeCacheKey(const ctg::Ctg& graph,
                              const ctg::BranchProbabilities& probs,
                              std::uint64_t graph_fingerprint,
                              std::uint64_t platform_fingerprint,
                              std::uint64_t config_fingerprint,
                              std::uint64_t tenant, std::string policy) {
  ScheduleCacheKey key;
  key.graph_fingerprint = graph_fingerprint;
  key.platform_fingerprint = platform_fingerprint;
  key.config_fingerprint = config_fingerprint;
  key.tenant = tenant;
  key.policy = std::move(policy);
  for (TaskId fork : graph.ForkIds()) {
    for (int o = 0; o < graph.OutcomeCount(fork); ++o) {
      key.probs.push_back(probs.Outcome(fork, o));
    }
  }
  return key;
}

std::size_t ScheduleCache::KeyHash::operator()(
    const ScheduleCacheKey& key) const {
  std::uint64_t hash = key.graph_fingerprint;
  hash = HashCombine(hash, key.platform_fingerprint);
  hash = HashCombine(hash, key.config_fingerprint);
  hash = HashCombine(hash, key.tenant);
  for (const char c : key.policy) {
    hash = HashCombine(hash, static_cast<std::uint64_t>(c));
  }
  for (double p : key.probs) {
    // Bucket by quantized probability; exact equality is checked by
    // operator== on the stored key, so collisions only cost a probe.
    hash = HashCombine(
        hash, static_cast<std::uint64_t>(std::llround(
                  p * static_cast<double>(quantization))));
  }
  return static_cast<std::size_t>(hash);
}

std::size_t ScheduleCache::NearKeyHash::operator()(
    const NearKey& key) const {
  std::uint64_t hash = key.graph_fingerprint;
  hash = HashCombine(hash, key.platform_fingerprint);
  hash = HashCombine(hash, key.config_fingerprint);
  hash = HashCombine(hash, key.tenant);
  for (const char c : key.policy) {
    hash = HashCombine(hash, static_cast<std::uint64_t>(c));
  }
  for (std::int64_t b : key.buckets) {
    hash = HashCombine(hash, static_cast<std::uint64_t>(b));
  }
  return static_cast<std::size_t>(hash);
}

ScheduleCache::NearKey ScheduleCache::NearBucket(
    const ScheduleCacheKey& key) const {
  NearKey near;
  near.graph_fingerprint = key.graph_fingerprint;
  near.platform_fingerprint = key.platform_fingerprint;
  near.config_fingerprint = key.config_fingerprint;
  near.tenant = key.tenant;
  near.policy = key.policy;
  near.buckets.reserve(key.probs.size());
  for (double p : key.probs) {
    near.buckets.push_back(std::llround(
        p * static_cast<double>(options_.keys.near_quantization)));
  }
  return near;
}

void ScheduleCache::ForgetNear(std::list<Slot>::iterator it) {
  const auto near_it = near_index_.find(NearBucket(it->key));
  if (near_it != near_index_.end() && near_it->second == it) {
    near_index_.erase(near_it);
  }
}

ScheduleCache::ScheduleCache(ScheduleCacheOptions options, Metrics* metrics)
    : options_(options),
      metrics_(metrics),
      index_(/*bucket_count=*/16, KeyHash(options.keys.quantization)) {
  options.keys.Validate().ThrowIfError();
}

std::optional<ScheduleCacheEntry> ScheduleCache::Lookup(
    const ScheduleCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (metrics_) metrics_->Increment("schedule_cache.misses");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  if (metrics_) metrics_->Increment("schedule_cache.hits");
  return it->second->entry;
}

std::optional<ScheduleCacheNearHit> ScheduleCache::LookupNear(
    const ScheduleCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = near_index_.find(NearBucket(key));
  if (it == near_index_.end()) {
    ++near_misses_;
    if (metrics_) metrics_->Increment("schedule_cache.near_misses");
    return std::nullopt;
  }
  ++near_hits_;
  if (metrics_) metrics_->Increment("schedule_cache.near_hits");
  return ScheduleCacheNearHit{it->second->entry, it->second->key.probs};
}

void ScheduleCache::Insert(const ScheduleCacheKey& key,
                           ScheduleCacheEntry entry) {
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    near_index_[NearBucket(key)] = it->second;
    return;
  }
  lru_.push_front(Slot{key, std::move(entry)});
  index_.emplace(key, lru_.begin());
  near_index_[NearBucket(key)] = lru_.begin();
  if (lru_.size() > options_.capacity) {
    const auto victim = std::prev(lru_.end());
    ForgetNear(victim);
    index_.erase(victim->key);
    lru_.pop_back();
    ++evictions_;
    if (metrics_) metrics_->Increment("schedule_cache.evictions");
  }
}

std::size_t ScheduleCache::Purge(std::uint64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.tenant == tenant) {
      ForgetNear(it);
      index_.erase(it->key);
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

double ScheduleCache::HitRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) /
                          static_cast<double>(total);
}

namespace {

/// SplitMix64 finalizer: spreads consecutive tenant ids over the shard
/// array instead of mapping id % shards (which would pile the common
/// "tenants numbered 0..n" case onto a modulo pattern).
std::uint64_t MixTenant(std::uint64_t t) {
  t += 0x9E3779B97F4A7C15ULL;
  t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ULL;
  t = (t ^ (t >> 27)) * 0x94D049BB133111EBULL;
  return t ^ (t >> 31);
}

}  // namespace

ShardedScheduleCache::ShardedScheduleCache(
    ShardedScheduleCacheOptions options, Metrics* metrics) {
  ACTG_CHECK(options.shards > 0,
             "ShardedScheduleCache: shards must be > 0");
  options.keys.Validate().ThrowIfError();
  shards_.reserve(options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    // Every shard receives the one validated CacheKeyOptions verbatim:
    // resolutions cannot drift between shards of one cache.
    shards_.push_back(std::make_unique<ScheduleCache>(
        ScheduleCacheOptions{.capacity = options.shard_capacity,
                             .keys = options.keys},
        metrics));
  }
}

std::size_t ShardedScheduleCache::ShardIndex(std::uint64_t tenant) const {
  return static_cast<std::size_t>(MixTenant(tenant) % shards_.size());
}

ScheduleCache& ShardedScheduleCache::ShardFor(std::uint64_t tenant) {
  return *shards_[ShardIndex(tenant)];
}

std::size_t ShardedScheduleCache::Purge(std::uint64_t tenant) {
  return ShardFor(tenant).Purge(tenant);
}

std::vector<ShardStats> ShardedScheduleCache::Stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.push_back(ShardStats{shard->size(), shard->hits(),
                               shard->misses(), shard->evictions()});
  }
  return stats;
}

std::size_t ShardedScheduleCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::uint64_t ShardedScheduleCache::hits() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->hits();
  return total;
}

std::uint64_t ShardedScheduleCache::misses() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->misses();
  return total;
}

std::uint64_t ShardedScheduleCache::evictions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->evictions();
  return total;
}

}  // namespace actg::runtime
