#include "runtime/schedule_cache.h"

#include <cmath>

#include "runtime/fingerprint.h"

namespace actg::runtime {

std::size_t ScheduleCache::KeyHash::operator()(
    const ScheduleCacheKey& key) const {
  std::uint64_t hash = key.graph_fingerprint;
  hash = HashCombine(hash, key.platform_fingerprint);
  hash = HashCombine(hash, key.config_fingerprint);
  for (double p : key.probs) {
    // Bucket by quantized probability; exact equality is checked by
    // operator== on the stored key, so collisions only cost a probe.
    hash = HashCombine(
        hash, static_cast<std::uint64_t>(std::llround(
                  p * static_cast<double>(quantization))));
  }
  return static_cast<std::size_t>(hash);
}

ScheduleCache::ScheduleCache(ScheduleCacheOptions options, Metrics* metrics)
    : options_(options),
      metrics_(metrics),
      index_(/*bucket_count=*/16, KeyHash(options.quantization)) {}

std::optional<ScheduleCacheEntry> ScheduleCache::Lookup(
    const ScheduleCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (metrics_) metrics_->Increment("schedule_cache.misses");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  if (metrics_) metrics_->Increment("schedule_cache.hits");
  return it->second->entry;
}

void ScheduleCache::Insert(const ScheduleCacheKey& key,
                           ScheduleCacheEntry entry) {
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{key, std::move(entry)});
  index_.emplace(key, lru_.begin());
  if (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    if (metrics_) metrics_->Increment("schedule_cache.evictions");
  }
}

std::size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

double ScheduleCache::HitRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) /
                          static_cast<double>(total);
}

}  // namespace actg::runtime
