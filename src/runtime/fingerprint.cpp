#include "runtime/fingerprint.h"

#include <bit>

namespace actg::runtime {

namespace {

constexpr std::uint64_t kOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kPrime = 0x100000001B3ULL;

}  // namespace

std::uint64_t HashCombine(std::uint64_t hash, std::uint64_t value) {
  // Mix all eight bytes of the value through the FNV-1a round.
  for (int shift = 0; shift < 64; shift += 8) {
    hash = (hash ^ ((value >> shift) & 0xFF)) * kPrime;
  }
  return hash;
}

std::uint64_t HashDouble(std::uint64_t hash, double value) {
  return HashCombine(hash, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t FingerprintCtg(const ctg::Ctg& graph) {
  std::uint64_t hash = kOffset;
  hash = HashCombine(hash, graph.task_count());
  hash = HashCombine(hash, graph.edge_count());
  for (TaskId task : graph.TaskIds()) {
    hash = HashCombine(
        hash, static_cast<std::uint64_t>(graph.task(task).join));
    if (graph.IsFork(task)) {
      hash = HashCombine(
          hash, static_cast<std::uint64_t>(graph.OutcomeCount(task)));
    }
  }
  for (EdgeId id : graph.EdgeIds()) {
    const ctg::Edge& edge = graph.edge(id);
    hash = HashCombine(hash, static_cast<std::uint64_t>(edge.src.value));
    hash = HashCombine(hash, static_cast<std::uint64_t>(edge.dst.value));
    hash = HashDouble(hash, edge.comm_kbytes);
    hash = HashCombine(
        hash, edge.condition.has_value()
                  ? static_cast<std::uint64_t>(edge.condition->outcome) + 2
                  : 1);
  }
  hash = HashDouble(hash, graph.deadline_ms());
  return hash;
}

std::uint64_t FingerprintPlatform(const arch::Platform& platform) {
  std::uint64_t hash = kOffset;
  hash = HashCombine(hash, platform.task_count());
  hash = HashCombine(hash, platform.pe_count());
  for (PeId pe : platform.PeIds()) {
    const arch::PeInfo& info = platform.pe(pe);
    hash = HashDouble(hash, info.min_speed_ratio);
    hash = HashCombine(hash, info.speed_levels.size());
    for (double level : info.speed_levels) hash = HashDouble(hash, level);
  }
  for (std::size_t t = 0; t < platform.task_count(); ++t) {
    const TaskId task{static_cast<int>(t)};
    for (PeId pe : platform.PeIds()) {
      hash = HashDouble(hash, platform.Wcet(task, pe));
      hash = HashDouble(hash, platform.Energy(task, pe));
    }
  }
  for (PeId a : platform.PeIds()) {
    for (PeId b : platform.PeIds()) {
      hash = HashDouble(hash, platform.Bandwidth(a, b));
      hash = HashDouble(hash, platform.TxEnergyPerKb(a, b));
    }
  }
  return hash;
}

}  // namespace actg::runtime
