/// \file watchdog.h
/// Cooperative per-job watchdog deadlines for the fleet runners.
///
/// A wedged instance — a pathological reschedule, a runaway
/// degradation ladder — must not stall a whole dispatch round.
/// Preempting a worker thread is not an option (the schedulers hold no
/// cancellation points and determinism forbids tearing a computation
/// mid-flight), so the watchdog is *cooperative*: a DeadlineScope arms
/// a thread-local wall-clock deadline token, and long-running bodies
/// call CheckDeadline() at their natural instance boundaries (the serve
/// Session checks before building a model and before every executed
/// instance). An expired token throws DeadlineExceeded there — at a
/// boundary, never mid-computation — and the dispatcher catches it,
/// quarantines the wedged session and keeps the round moving.
///
/// Determinism: the token is wall-clock, so WHERE a deadline fires is
/// not reproducible run to run. Deadlines are therefore off by default
/// everywhere; the deterministic report contracts (serve golden tests,
/// campaign byte-identity) hold for unarmed runs, and an armed run
/// documents that its report depends on timing. The two deterministic
/// end states — a deadline so generous it never fires, and one so tight
/// it fires at the first boundary — are what the tests pin.
///
/// runtime::Pool arms the scope around each job body when a batch
/// carries a deadline (Pool::ParallelFor's deadline_ms parameter), so
/// pool clients get per-job tokens without touching thread plumbing.

#ifndef ACTG_RUNTIME_WATCHDOG_H
#define ACTG_RUNTIME_WATCHDOG_H

#include "util/error.h"

namespace actg::runtime {

/// Thrown by CheckDeadline when the calling thread's armed watchdog
/// deadline has passed. Derives from actg::Error so the usual catch
/// boundaries see it; dispatchers catch it specifically to quarantine.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// RAII deadline token for the calling thread. Arms a wall-clock
/// deadline \p ms milliseconds from construction; destruction restores
/// the previously armed deadline (scopes nest — the tighter of the
/// nested deadlines effectively wins, because CheckDeadline fires on
/// the innermost armed one). ms <= 0 arms nothing (the scope is inert).
class DeadlineScope {
 public:
  explicit DeadlineScope(double ms);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  bool armed_ = false;
  double previous_deadline_ = 0.0;  ///< steady-clock ms; 0 = none
};

/// True when the calling thread has an armed deadline and it has
/// passed. Never true on a thread with no armed scope.
bool DeadlineExpired();

/// Cooperative check point: throws DeadlineExceeded("watchdog: <what>
/// exceeded its deadline") when the calling thread's armed deadline has
/// passed; no-op otherwise. Call at instance boundaries, never inside
/// a computation that must complete atomically.
void CheckDeadline(const char* what);

}  // namespace actg::runtime

#endif  // ACTG_RUNTIME_WATCHDOG_H
