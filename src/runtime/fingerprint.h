/// \file fingerprint.h
/// Structural 64-bit fingerprints for schedule-cache keys.
///
/// Two graphs (or platforms) with equal fingerprints are treated as
/// interchangeable by the schedule cache, so the hashes cover exactly
/// the inputs the scheduler and stretcher read: graph topology, join
/// types, conditions, communication volumes and the deadline; platform
/// WCET/energy tables, link parameters and DVFS capabilities. Task and
/// PE names are deliberately excluded — they never influence a
/// schedule.

#ifndef ACTG_RUNTIME_FINGERPRINT_H
#define ACTG_RUNTIME_FINGERPRINT_H

#include <cstdint>

#include "arch/platform.h"
#include "ctg/graph.h"

namespace actg::runtime {

/// FNV-1a style single-step combine (not cryptographic; cache bucketing
/// only).
std::uint64_t HashCombine(std::uint64_t hash, std::uint64_t value);

/// Hashes a double by its bit pattern (exact, no tolerance).
std::uint64_t HashDouble(std::uint64_t hash, double value);

/// Structural fingerprint of a CTG.
std::uint64_t FingerprintCtg(const ctg::Ctg& graph);

/// Structural fingerprint of a platform.
std::uint64_t FingerprintPlatform(const arch::Platform& platform);

}  // namespace actg::runtime

#endif  // ACTG_RUNTIME_FINGERPRINT_H
