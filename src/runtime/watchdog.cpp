#include "runtime/watchdog.h"

#include <chrono>
#include <string>

namespace actg::runtime {

namespace {

/// The calling thread's armed deadline as steady-clock milliseconds
/// since epoch; 0 = no deadline armed.
thread_local double g_deadline_ms = 0.0;

double NowMs() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DeadlineScope::DeadlineScope(double ms) {
  if (ms <= 0.0) return;
  armed_ = true;
  previous_deadline_ = g_deadline_ms;
  g_deadline_ms = NowMs() + ms;
}

DeadlineScope::~DeadlineScope() {
  if (armed_) g_deadline_ms = previous_deadline_;
}

bool DeadlineExpired() {
  return g_deadline_ms != 0.0 && NowMs() >= g_deadline_ms;
}

void CheckDeadline(const char* what) {
  if (!DeadlineExpired()) return;
  throw DeadlineExceeded(std::string("watchdog: ") + what +
                         " exceeded its deadline");
}

}  // namespace actg::runtime
