/// \file pool.h
/// Deterministic parallel job engine.
///
/// A Pool owns a fixed set of worker threads and executes index-based
/// job batches (ParallelFor / ParallelMap). Determinism contract: the
/// pool never decides *what* a job computes, only *where* it runs — a
/// body invoked as body(i) must depend only on i (seed per-job RNGs via
/// util::Random::Fork(i)) and write only state owned by index i. Under
/// that contract results are bit-identical for any worker count and any
/// scheduling order, because the output slot assignment is by index,
/// not by completion order.
///
/// The calling thread participates in its own batch (it claims indices
/// like a worker), so ParallelFor completes even with zero workers, and
/// a nested ParallelFor issued from inside a job runs inline on the
/// worker — nesting can never deadlock the fixed-size pool.

#ifndef ACTG_RUNTIME_POOL_H
#define ACTG_RUNTIME_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace actg::runtime {

/// Fixed-size thread pool executing index batches.
class Pool {
 public:
  /// Creates a pool with a total concurrency of \p jobs (the calling
  /// thread plus jobs-1 workers). jobs <= 1 means fully serial.
  explicit Pool(std::size_t jobs = 1);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Total concurrency (including the calling thread).
  std::size_t jobs() const { return jobs_; }

  /// Runs body(0) .. body(n-1), distributing indices over the workers
  /// and the calling thread; returns when all n calls completed. The
  /// first exception thrown by a body cancels the remaining unclaimed
  /// indices and is rethrown here.
  ///
  /// deadline_ms > 0 arms a watchdog DeadlineScope around every body
  /// call, so a body that cooperates (calls CheckDeadline at its
  /// instance boundaries) is bounded per job. 0 (the default) arms
  /// nothing; see watchdog.h for the determinism caveats.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body,
                   double deadline_ms = 0.0);

 private:
  struct Batch;

  void WorkerLoop();
  /// Claims and runs indices of \p batch until none are left.
  void DrainBatch(const std::shared_ptr<Batch>& batch);

  std::size_t jobs_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<Batch>> open_batches_;
  bool stopping_ = false;
};

/// Maps fn over [0, n) in parallel and returns the results in index
/// order. The element type must be default-constructible and
/// move-assignable. Same determinism contract as Pool::ParallelFor.
template <typename Fn>
auto ParallelMap(Pool& pool, std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  std::vector<std::invoke_result_t<Fn&, std::size_t>> results(n);
  pool.ParallelFor(n, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

/// max(1, std::thread::hardware_concurrency()).
std::size_t HardwareJobs();

/// Job count from the ACTG_JOBS environment variable; 1 (serial) when
/// unset or unparsable, HardwareJobs() for the value 0 ("auto").
std::size_t DefaultJobs();

/// Parses a --jobs N / --jobs=N command-line flag (first occurrence
/// wins); falls back to DefaultJobs(). 0 means HardwareJobs().
std::size_t ParseJobs(int argc, char** argv);

}  // namespace actg::runtime

#endif  // ACTG_RUNTIME_POOL_H
