#include "runtime/pool.h"

#include <cstdlib>
#include <exception>
#include <string>

#include "obs/trace.h"
#include "runtime/watchdog.h"

namespace actg::runtime {

namespace {

/// Span around one job body. Emitted by both the serial inline path and
/// DrainBatch so trace *content* is identical for any --jobs count
/// (only thread ids and timestamps differ). A positive deadline arms a
/// per-job watchdog token for the body's duration.
void RunJobTraced(const std::function<void(std::size_t)>& body,
                  std::size_t index, double deadline_ms) {
  obs::ScopedSpan span(obs::TraceSession::Current(), "pool.job",
                       "runtime");
  if (span.enabled()) {
    span.AddArg(obs::IntArg("index", static_cast<std::int64_t>(index)));
  }
  DeadlineScope deadline(deadline_ms);
  body(index);
}

/// Set while a thread executes a job body, so a nested ParallelFor runs
/// inline instead of re-entering the queue (the caller-participation
/// scheme would still finish, but inline nesting keeps worker stacks
/// shallow and the schedule easy to reason about).
thread_local bool t_inside_job = false;

}  // namespace

/// One index batch. All fields are guarded by the owning pool's mutex.
struct Pool::Batch {
  std::function<void(std::size_t)> body;
  double deadline_ms = 0.0;  ///< per-job watchdog; 0 = unarmed
  std::size_t n = 0;
  std::size_t next = 0;       ///< first unclaimed index
  std::size_t claimed = 0;    ///< indices handed to a thread
  std::size_t completed = 0;  ///< indices whose body returned or threw
  std::exception_ptr error;
  std::condition_variable done;

  bool Exhausted() const { return next >= n; }
  bool Finished() const { return Exhausted() && completed == claimed; }
};

Pool::Pool(std::size_t jobs) : jobs_(jobs == 0 ? 1 : jobs) {
  workers_.reserve(jobs_ - 1);
  for (std::size_t i = 0; i + 1 < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Pool::ParallelFor(std::size_t n,
                       const std::function<void(std::size_t)>& body,
                       double deadline_ms) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_inside_job) {
    // Serial pool, trivial batch, or nested call from inside a job:
    // run inline. Identical results by the determinism contract.
    for (std::size_t i = 0; i < n; ++i) RunJobTraced(body, i, deadline_ms);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->body = body;
  batch->deadline_ms = deadline_ms;
  batch->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_batches_.push_back(batch);
  }
  work_available_.notify_all();

  DrainBatch(batch);

  std::unique_lock<std::mutex> lock(mu_);
  batch->done.wait(lock, [&] { return batch->Finished(); });
  if (batch->error) std::rethrow_exception(batch->error);
}

void Pool::DrainBatch(const std::shared_ptr<Batch>& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!batch->Exhausted()) {
    const std::size_t index = batch->next++;
    ++batch->claimed;
    if (batch->Exhausted()) {
      // Last index claimed: retire the batch from the open queue.
      for (auto it = open_batches_.begin(); it != open_batches_.end();
           ++it) {
        if (*it == batch) {
          open_batches_.erase(it);
          break;
        }
      }
    }
    lock.unlock();
    t_inside_job = true;
    std::exception_ptr error;
    try {
      RunJobTraced(batch->body, index, batch->deadline_ms);
    } catch (...) {
      error = std::current_exception();
    }
    t_inside_job = false;
    lock.lock();
    ++batch->completed;
    if (error) {
      if (!batch->error) batch->error = error;
      // Cancel the unclaimed remainder; in-flight indices finish.
      if (!batch->Exhausted()) {
        batch->next = batch->n;
        for (auto it = open_batches_.begin(); it != open_batches_.end();
             ++it) {
          if (*it == batch) {
            open_batches_.erase(it);
            break;
          }
        }
      }
    }
    if (batch->Finished()) batch->done.notify_all();
  }
}

void Pool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_available_.wait(
        lock, [&] { return stopping_ || !open_batches_.empty(); });
    if (stopping_) return;
    const std::shared_ptr<Batch> batch = open_batches_.front();
    lock.unlock();
    DrainBatch(batch);
    lock.lock();
  }
}

std::size_t HardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace {

std::size_t ParseJobsValue(const std::string& text, std::size_t fallback) {
  // Digits only: stoul would accept "-4" by wrapping it to a huge
  // unsigned value, and the pool would then try to spawn that many
  // threads. Anything non-numeric falls back untouched.
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return fallback;
  }
  try {
    const unsigned long value = std::stoul(text);
    // More workers than a machine could have is a typo, not a request.
    constexpr unsigned long kMaxJobs = 1024;
    if (value > kMaxJobs) return kMaxJobs;
    return value == 0 ? HardwareJobs() : static_cast<std::size_t>(value);
  } catch (...) {
    return fallback;
  }
}

}  // namespace

std::size_t DefaultJobs() {
  const char* env = std::getenv("ACTG_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  return ParseJobsValue(env, 1);
}

std::size_t ParseJobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      return ParseJobsValue(argv[i + 1], DefaultJobs());
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      return ParseJobsValue(arg.substr(7), DefaultJobs());
    }
  }
  return DefaultJobs();
}

}  // namespace actg::runtime
