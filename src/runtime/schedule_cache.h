/// \file schedule_cache.h
/// LRU memoization of (schedule, stretch) results for the adaptive
/// controller.
///
/// The adaptive framework recomputes DLS + stretching every time a
/// threshold crossing occurs — even when the windowed branch-probability
/// estimate returns to an operating point it has already scheduled for
/// (cyclic road scenarios, scene-change oscillations). The cache keys a
/// completed (schedule, stretch stats) pair by the structural
/// fingerprints of the graph and platform, a fingerprint of the
/// scheduler/stretcher configuration, and the flattened branch
/// probability vector.
///
/// Exactness contract: probabilities are *quantized only for hashing*
/// (bucket selection); a lookup hits only when the stored probability
/// vector matches the query bit-for-bit. A hit therefore returns
/// exactly what recomputation would have produced (DLS and the
/// stretcher are deterministic), so enabling the cache never changes
/// any result — it only skips work. Windowed estimates are ratios of
/// small integer counts over a fixed window length, so recurring
/// operating points reproduce identical doubles and do hit.
///
/// Cached Schedule objects reference the graph/analysis/platform they
/// were built from; those must outlive the cache.
///
/// All operations are thread-safe (single mutex; entries are copied out
/// under the lock). For many-tenant deployments a ShardedScheduleCache
/// partitions the key space over independent ScheduleCache shards so
/// tenants on different shards never contend on one mutex, with
/// per-shard statistics and a per-tenant Purge.

#ifndef ACTG_RUNTIME_SCHEDULE_CACHE_H
#define ACTG_RUNTIME_SCHEDULE_CACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dvfs/stretch.h"
#include "runtime/metrics.h"
#include "sched/schedule.h"

namespace actg::runtime {

/// Cache key. probs is the flattened outcome-probability vector over the
/// graph's forks in topological fork order; equality is exact.
///
/// The policy name is an exact-match field of its own: the config
/// fingerprint folds the policy in, but a 64-bit hash collision between
/// two configs that differ only in policy would otherwise alias their
/// entries — with the string in the key, two tenants scheduling the
/// same graph under different --policy can never serve each other's
/// schedules. The tenant id partitions the key space per tenant (0 =
/// the unpartitioned default every single-tenant caller uses); a
/// multi-tenant server that wants explicit cross-tenant sharing keys
/// every controller with tenant 0 instead.
struct ScheduleCacheKey {
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t platform_fingerprint = 0;
  std::uint64_t config_fingerprint = 0;
  std::uint64_t tenant = 0;
  std::string policy;
  std::vector<double> probs;

  friend bool operator==(const ScheduleCacheKey&,
                         const ScheduleCacheKey&) = default;
};

/// A memoized scheduling + stretching result.
struct ScheduleCacheEntry {
  sched::Schedule schedule;
  dvfs::StretchStats stretch;
};

/// Configuration of the cache.
struct ScheduleCacheOptions {
  /// Maximum number of entries; the least recently used is evicted.
  std::size_t capacity = 128;
  /// Hash resolution for the probability vector: probabilities are
  /// bucketed as round(p * quantization) when hashing. Smaller values
  /// group near-identical operating points into one bucket; the
  /// exact-match check keeps results unchanged either way.
  std::uint64_t quantization = 1u << 16;
};

/// Thread-safe LRU table of (key -> schedule, stretch stats).
class ScheduleCache {
 public:
  /// \p metrics, when set, mirrors the hit/miss/eviction counters into
  /// a Metrics registry under "schedule_cache.{hits,misses,evictions}".
  explicit ScheduleCache(ScheduleCacheOptions options = {},
                         Metrics* metrics = nullptr);

  /// Returns a copy of the entry for \p key and marks it most recently
  /// used; nullopt (and a miss) when absent.
  std::optional<ScheduleCacheEntry> Lookup(const ScheduleCacheKey& key);

  /// Inserts (or replaces) the entry for \p key as most recently used,
  /// evicting the least recently used entry beyond capacity.
  void Insert(const ScheduleCacheKey& key, ScheduleCacheEntry entry);

  /// Drops every entry whose key carries \p tenant (session shutdown in
  /// the serve daemon). Returns the number of entries removed; purged
  /// entries do not count as evictions.
  std::size_t Purge(std::uint64_t tenant);

  std::size_t size() const;
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Hits / (hits + misses); 0 when never queried.
  double HitRate() const;

 private:
  struct Slot {
    ScheduleCacheKey key;
    ScheduleCacheEntry entry;
  };
  struct KeyHash {
    explicit KeyHash(std::uint64_t quantization = 1)
        : quantization(quantization) {}
    std::size_t operator()(const ScheduleCacheKey& key) const;
    std::uint64_t quantization;
  };

  ScheduleCacheOptions options_;
  Metrics* metrics_;
  mutable std::mutex mu_;
  std::list<Slot> lru_;  // front = most recently used
  std::unordered_map<ScheduleCacheKey, std::list<Slot>::iterator, KeyHash>
      index_;
  std::atomic<std::uint64_t> hits_ = 0;
  std::atomic<std::uint64_t> misses_ = 0;
  std::atomic<std::uint64_t> evictions_ = 0;
};

/// Configuration of a sharded cache.
struct ShardedScheduleCacheOptions {
  /// Number of independent shards; tenant t lives on shard
  /// SplitMix-mixed(t) % shards, so consecutive tenant ids spread
  /// evenly. Must be > 0.
  std::size_t shards = 8;
  /// Per-shard LRU capacity and hash quantization (see
  /// ScheduleCacheOptions).
  std::size_t shard_capacity = 64;
  std::uint64_t quantization = 1u << 16;
};

/// Point-in-time counters of one shard.
struct ShardStats {
  std::size_t entries = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// Tenant-partitioned schedule cache: a fixed array of ScheduleCache
/// shards, routed by the key's tenant id. Thousands of controllers in
/// one process contend only within their own shard's mutex, and a
/// tenant's entries can be purged on session shutdown without touching
/// the other shards' LRU order. Thread-safe like the shards it owns.
class ShardedScheduleCache {
 public:
  /// \p metrics mirrors each shard's counters under
  /// "schedule_cache.{hits,misses,evictions}" (shared across shards,
  /// like a single cache would report).
  explicit ShardedScheduleCache(ShardedScheduleCacheOptions options = {},
                                Metrics* metrics = nullptr);

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard hosting \p tenant. The returned reference is valid for
  /// the cache's lifetime; hand it to AdaptiveOptions::schedule_cache
  /// together with the tenant id in AdaptiveOptions::cache_tenant.
  ScheduleCache& ShardFor(std::uint64_t tenant);

  /// Shard index hosting \p tenant (stable for the cache's lifetime).
  std::size_t ShardIndex(std::uint64_t tenant) const;

  /// Drops every entry of \p tenant from its shard; returns the count.
  std::size_t Purge(std::uint64_t tenant);

  /// Per-shard counters, indexed by shard.
  std::vector<ShardStats> Stats() const;

  /// Aggregates over all shards.
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  std::vector<std::unique_ptr<ScheduleCache>> shards_;
};

}  // namespace actg::runtime

#endif  // ACTG_RUNTIME_SCHEDULE_CACHE_H
