/// \file schedule_cache.h
/// LRU memoization of (schedule, stretch) results for the adaptive
/// controller, with a tiered lookup.
///
/// The adaptive framework recomputes DLS + stretching every time a
/// threshold crossing occurs — even when the windowed branch-probability
/// estimate returns to an operating point it has already scheduled for
/// (cyclic road scenarios, scene-change oscillations). The cache keys a
/// completed (schedule, stretch stats) pair by the structural
/// fingerprints of the graph and platform, a fingerprint of the
/// scheduler/stretcher configuration, and the flattened branch
/// probability vector.
///
/// Two lookup tiers:
///
/// * Tier 1 — Lookup(): exact. Probabilities are *quantized only for
///   hashing* (bucket selection); a lookup hits only when the stored
///   probability vector matches the query bit-for-bit. A hit therefore
///   returns exactly what recomputation would have produced (DLS and
///   the stretcher are deterministic), so enabling the cache never
///   changes any result — it only skips work. Windowed estimates are
///   ratios of small integer counts over a fixed window length, so
///   recurring operating points reproduce identical doubles and do hit.
/// * Tier 2 — LookupNear(): quantized near-hit. A coarser quantization
///   (CacheKeyOptions::near_quantization) buckets nearby operating
///   points together; the most recently inserted entry of the query's
///   bucket is returned as a *warm-start seed* together with the
///   probability vector it was computed for. A near-hit is never a
///   final answer: the caller (adaptive::Rescheduler) re-levels and
///   re-maps the dirty region against the seed's mapping, so tier 2
///   trades exactness for reschedule latency explicitly.
///
/// Cached Schedule objects reference the graph/analysis/platform they
/// were built from; those must outlive the cache.
///
/// All operations are thread-safe (single mutex; entries are copied out
/// under the lock). For many-tenant deployments a ShardedScheduleCache
/// partitions the key space over independent ScheduleCache shards so
/// tenants on different shards never contend on one mutex, with
/// per-shard statistics and a per-tenant Purge.

#ifndef ACTG_RUNTIME_SCHEDULE_CACHE_H
#define ACTG_RUNTIME_SCHEDULE_CACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ctg/condition.h"
#include "ctg/graph.h"
#include "dvfs/stretch.h"
#include "runtime/metrics.h"
#include "sched/schedule.h"
#include "util/error.h"

namespace actg::runtime {

class ScheduleCache;

/// Cache key. probs is the flattened outcome-probability vector over the
/// graph's forks in topological fork order; equality is exact.
///
/// The policy name is an exact-match field of its own: the config
/// fingerprint folds the policy in, but a 64-bit hash collision between
/// two configs that differ only in policy would otherwise alias their
/// entries — with the string in the key, two tenants scheduling the
/// same graph under different --policy can never serve each other's
/// schedules. The tenant id partitions the key space per tenant (0 =
/// the unpartitioned default every single-tenant caller uses); a
/// multi-tenant server that wants explicit cross-tenant sharing keys
/// every controller with tenant 0 instead.
struct ScheduleCacheKey {
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t platform_fingerprint = 0;
  std::uint64_t config_fingerprint = 0;
  std::uint64_t tenant = 0;
  std::string policy;
  std::vector<double> probs;

  friend bool operator==(const ScheduleCacheKey&,
                         const ScheduleCacheKey&) = default;
};

/// Builds the canonical cache key for scheduling \p graph at \p probs:
/// the flattened outcome-probability vector over the graph's forks in
/// topological fork order, plus the identity fields. This is the single
/// key-construction point — the adaptive::Rescheduler, tests and tools
/// all key the same way, so an entry inserted by one is findable by the
/// others.
ScheduleCacheKey MakeCacheKey(const ctg::Ctg& graph,
                              const ctg::BranchProbabilities& probs,
                              std::uint64_t graph_fingerprint,
                              std::uint64_t platform_fingerprint,
                              std::uint64_t config_fingerprint,
                              std::uint64_t tenant, std::string policy);

/// A memoized scheduling + stretching result.
struct ScheduleCacheEntry {
  sched::Schedule schedule;
  dvfs::StretchStats stretch;
};

/// A tier-2 result: a prior entry from the query's coarse-quantization
/// bucket, plus the probability vector it was computed for (the seed's
/// operating point, needed to compute the dirty region against the
/// query's probabilities).
struct ScheduleCacheNearHit {
  ScheduleCacheEntry entry;
  std::vector<double> probs;
};

/// Quantization of the probability vector, shared by every construction
/// path (plain and sharded caches route through this one struct, so the
/// exact-tier hash resolution and the tier-2 bucket resolution can
/// never drift between a cache and its shards).
struct CacheKeyOptions {
  /// Exact-tier hash resolution: probabilities are bucketed as
  /// round(p * quantization) when hashing. Smaller values group
  /// near-identical operating points into one hash bucket; the
  /// exact-match check keeps tier-1 results unchanged either way.
  std::uint64_t quantization = 1u << 16;
  /// Tier-2 bucket resolution: two probability vectors are near-equal
  /// when they agree after rounding to round(p * near_quantization).
  /// 1/near_quantization is therefore (up to rounding) the per-outcome
  /// tolerance of a warm-start seed. Must not exceed quantization — a
  /// coarser exact tier than the near tier would be nonsense.
  std::uint64_t near_quantization = 1u << 4;

  /// Ok when both resolutions are positive and the near tier is not
  /// finer than the exact tier.
  util::Error Validate() const;
};

/// Configuration of the cache.
struct ScheduleCacheOptions {
  /// Maximum number of entries; the least recently used is evicted.
  std::size_t capacity = 128;
  /// Probability quantization (exact-tier hashing + tier-2 buckets).
  CacheKeyOptions keys;
};

/// Pairs the cache a controller should consult with the tenant id its
/// keys carry. Passed by value (it is two words): the binding is either
/// empty (no memoization, the default) or names both halves at once, so
/// a caller can no longer wire a cache while forgetting the tenant or
/// vice versa.
struct CacheBinding {
  /// The cache to consult; nullptr disables memoization. Shared caches
  /// must outlive every controller bound to them. Multi-tenant servers
  /// typically bind a runtime::ShardedScheduleCache shard
  /// (ShardFor(tenant)) with the matching tenant.
  ScheduleCache* cache = nullptr;
  /// Tenant id folded into every key built through this binding.
  /// Bindings with different tenants never share entries (and a
  /// tenant's entries can be dropped with ScheduleCache::Purge); 0 —
  /// the default every single-tenant caller keeps — leaves the key
  /// space shared, which is the explicit cross-controller sharing mode.
  std::uint64_t tenant = 0;

  /// True when a cache is bound.
  explicit operator bool() const { return cache != nullptr; }
};

/// Thread-safe LRU table of (key -> schedule, stretch stats).
class ScheduleCache {
 public:
  /// \p metrics, when set, mirrors the hit/miss/eviction counters into
  /// a Metrics registry under "schedule_cache.{hits,misses,evictions,
  /// near_hits,near_misses}". Throws when options.keys is invalid.
  explicit ScheduleCache(ScheduleCacheOptions options = {},
                         Metrics* metrics = nullptr);

  /// Tier 1: returns a copy of the entry for \p key and marks it most
  /// recently used; nullopt (and a miss) when absent.
  std::optional<ScheduleCacheEntry> Lookup(const ScheduleCacheKey& key);

  /// Tier 2: returns the most recently inserted entry whose key matches
  /// \p key on every identity field and whose probability vector lands
  /// in the same near_quantization bucket, together with that entry's
  /// probability vector; nullopt (and a near-miss) when the bucket is
  /// empty. The returned entry is a warm-start seed, not a final
  /// answer. Does not disturb the LRU order (seeding is speculative —
  /// an entry should not outlive its usefulness just because it kept
  /// being consulted as a seed).
  std::optional<ScheduleCacheNearHit> LookupNear(
      const ScheduleCacheKey& key);

  /// Inserts (or replaces) the entry for \p key as most recently used,
  /// evicting the least recently used entry beyond capacity. The entry
  /// also becomes its near-bucket's seed.
  void Insert(const ScheduleCacheKey& key, ScheduleCacheEntry entry);

  /// Drops every entry whose key carries \p tenant (session shutdown in
  /// the serve daemon). Returns the number of entries removed; purged
  /// entries do not count as evictions.
  std::size_t Purge(std::uint64_t tenant);

  std::size_t size() const;
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t near_hits() const { return near_hits_; }
  std::uint64_t near_misses() const { return near_misses_; }

  /// Hits / (hits + misses); 0 when never queried.
  double HitRate() const;

 private:
  struct Slot {
    ScheduleCacheKey key;
    ScheduleCacheEntry entry;
  };
  struct KeyHash {
    explicit KeyHash(std::uint64_t quantization = 1)
        : quantization(quantization) {}
    std::size_t operator()(const ScheduleCacheKey& key) const;
    std::uint64_t quantization;
  };
  /// Identity fields exactly, probabilities coarsely quantized.
  struct NearKey {
    std::uint64_t graph_fingerprint = 0;
    std::uint64_t platform_fingerprint = 0;
    std::uint64_t config_fingerprint = 0;
    std::uint64_t tenant = 0;
    std::string policy;
    std::vector<std::int64_t> buckets;

    friend bool operator==(const NearKey&, const NearKey&) = default;
  };
  struct NearKeyHash {
    std::size_t operator()(const NearKey& key) const;
  };

  NearKey NearBucket(const ScheduleCacheKey& key) const;
  /// Drops \p it's near-index entry when it is the bucket seed.
  void ForgetNear(std::list<Slot>::iterator it);

  ScheduleCacheOptions options_;
  Metrics* metrics_;
  mutable std::mutex mu_;
  std::list<Slot> lru_;  // front = most recently used
  std::unordered_map<ScheduleCacheKey, std::list<Slot>::iterator, KeyHash>
      index_;
  /// Coarse bucket -> most recently inserted slot of that bucket.
  std::unordered_map<NearKey, std::list<Slot>::iterator, NearKeyHash>
      near_index_;
  std::atomic<std::uint64_t> hits_ = 0;
  std::atomic<std::uint64_t> misses_ = 0;
  std::atomic<std::uint64_t> evictions_ = 0;
  std::atomic<std::uint64_t> near_hits_ = 0;
  std::atomic<std::uint64_t> near_misses_ = 0;
};

/// Configuration of a sharded cache.
struct ShardedScheduleCacheOptions {
  /// Number of independent shards; tenant t lives on shard
  /// SplitMix-mixed(t) % shards, so consecutive tenant ids spread
  /// evenly. Must be > 0.
  std::size_t shards = 8;
  /// Per-shard LRU capacity (see ScheduleCacheOptions).
  std::size_t shard_capacity = 64;
  /// Probability quantization, handed to every shard as-is — one struct
  /// for the whole cache, so shards cannot be constructed with
  /// drifting resolutions.
  CacheKeyOptions keys;
};

/// Point-in-time counters of one shard.
struct ShardStats {
  std::size_t entries = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// Tenant-partitioned schedule cache: a fixed array of ScheduleCache
/// shards, routed by the key's tenant id. Thousands of controllers in
/// one process contend only within their own shard's mutex, and a
/// tenant's entries can be purged on session shutdown without touching
/// the other shards' LRU order. Thread-safe like the shards it owns.
class ShardedScheduleCache {
 public:
  /// \p metrics mirrors each shard's counters under
  /// "schedule_cache.{hits,misses,evictions}" (shared across shards,
  /// like a single cache would report).
  explicit ShardedScheduleCache(ShardedScheduleCacheOptions options = {},
                                Metrics* metrics = nullptr);

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard hosting \p tenant. The returned reference is valid for
  /// the cache's lifetime; bind it to a controller as
  /// runtime::CacheBinding{&ShardFor(tenant), tenant}.
  ScheduleCache& ShardFor(std::uint64_t tenant);

  /// Shard index hosting \p tenant (stable for the cache's lifetime).
  std::size_t ShardIndex(std::uint64_t tenant) const;

  /// Drops every entry of \p tenant from its shard; returns the count.
  std::size_t Purge(std::uint64_t tenant);

  /// Per-shard counters, indexed by shard.
  std::vector<ShardStats> Stats() const;

  /// Aggregates over all shards.
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  std::vector<std::unique_ptr<ScheduleCache>> shards_;
};

}  // namespace actg::runtime

#endif  // ACTG_RUNTIME_SCHEDULE_CACHE_H
