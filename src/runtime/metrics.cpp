#include "runtime/metrics.h"

namespace actg::runtime {

Metrics& Metrics::Global() {
  static Metrics metrics;
  return metrics;
}

void Metrics::Increment(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::uint64_t Metrics::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::RecordTime(const std::string& name, std::int64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  timer_ns_[name] += ns;
}

double Metrics::timer_ms(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = timer_ns_.find(name);
  return it == timer_ns_.end() ? 0.0
                               : static_cast<double>(it->second) * 1e-6;
}

std::map<std::string, std::uint64_t> Metrics::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> Metrics::TimersMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, ns] : timer_ns_) {
    out[name] = static_cast<double>(ns) * 1e-6;
  }
  return out;
}

void Metrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  timer_ns_.clear();
}

void Metrics::WriteText(std::ostream& os) const {
  for (const auto& [name, value] : Counters()) {
    os << name << " " << value << "\n";
  }
  for (const auto& [name, ms] : TimersMs()) {
    os << name << "_ms " << ms << "\n";
  }
}

void Metrics::WriteCsv(std::ostream& os) const {
  os << "metric,kind,value\n";
  for (const auto& [name, value] : Counters()) {
    os << name << ",counter," << value << "\n";
  }
  for (const auto& [name, ms] : TimersMs()) {
    os << name << ",timer_ms," << ms << "\n";
  }
}

}  // namespace actg::runtime
