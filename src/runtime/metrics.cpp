#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace actg::runtime {

Metrics& Metrics::Global() {
  static Metrics metrics;
  return metrics;
}

void Metrics::Increment(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::uint64_t Metrics::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::RecordTime(const std::string& name, std::int64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  timer_ns_[name] += ns;
}

double Metrics::timer_ms(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = timer_ns_.find(name);
  return it == timer_ns_.end() ? 0.0
                               : static_cast<double>(it->second) * 1e-6;
}

void Metrics::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  observations_[name].push_back(value);
}

std::size_t Metrics::samples(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = observations_.find(name);
  return it == observations_.end() ? 0 : it->second.size();
}

double Metrics::QuantileOf(const std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the smallest sample with at least q of the mass at or
  // below it.
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t index =
      rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

double Metrics::quantile(const std::string& name, double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = observations_.find(name);
  return it == observations_.end() ? 0.0 : QuantileOf(it->second, q);
}

std::map<std::string, std::uint64_t> Metrics::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> Metrics::TimersMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, ns] : timer_ns_) {
    out[name] = static_cast<double>(ns) * 1e-6;
  }
  return out;
}

void Metrics::MergeFrom(const Metrics& other) {
  ACTG_CHECK(this != &other, "Metrics::MergeFrom: cannot merge a registry "
                             "into itself");
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, ns] : other.timer_ns_) {
    timer_ns_[name] += ns;
  }
  for (const auto& [name, samples] : other.observations_) {
    auto& mine = observations_[name];
    mine.insert(mine.end(), samples.begin(), samples.end());
  }
}

void Metrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  timer_ns_.clear();
  observations_.clear();
}

void Metrics::WriteText(std::ostream& os) const {
  for (const auto& [name, value] : Counters()) {
    os << name << " " << value << "\n";
  }
  for (const auto& [name, ms] : TimersMs()) {
    os << name << "_ms " << ms << "\n";
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, samples] : observations_) {
    os << name << "_count " << samples.size() << "\n";
    os << name << "_p50 " << QuantileOf(samples, 0.5) << "\n";
    os << name << "_p99 " << QuantileOf(samples, 0.99) << "\n";
  }
}

void Metrics::WriteCsv(std::ostream& os) const {
  os << "metric,kind,value\n";
  for (const auto& [name, value] : Counters()) {
    os << name << ",counter," << value << "\n";
  }
  for (const auto& [name, ms] : TimersMs()) {
    os << name << ",timer_ms," << ms << "\n";
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, samples] : observations_) {
    os << name << ",dist_count," << samples.size() << "\n";
    os << name << ",dist_p50," << QuantileOf(samples, 0.5) << "\n";
    os << name << ",dist_p99," << QuantileOf(samples, 0.99) << "\n";
  }
}

}  // namespace actg::runtime
