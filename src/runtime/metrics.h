/// \file metrics.h
/// Lightweight run-metrics registry for the runtime layer.
///
/// A Metrics instance holds named monotonic counters (cache hits,
/// re-schedule calls, simulated instances, ...) and named wall-clock
/// timers that accumulate time per pipeline stage (DLS, path
/// enumeration, stretching, simulation). All operations are thread-safe
/// so pool workers can report without coordination; the registry is
/// intentionally mutex-based rather than sharded — it sits outside the
/// hot inner loops (stage granularity, not per-task granularity).
///
/// Counter values are deterministic for a fixed workload regardless of
/// worker count; timer values are wall-clock and therefore not. Reports
/// that must be bit-identical across runs (the bench stdout tables)
/// print counters only; timers go to stderr or CSV dumps.

#ifndef ACTG_RUNTIME_METRICS_H
#define ACTG_RUNTIME_METRICS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace actg::runtime {

/// Thread-safe registry of named counters and stage timers.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// Process-wide registry used by default by the instrumented stages.
  static Metrics& Global();

  /// Adds \p delta to the named counter (creating it at zero).
  void Increment(const std::string& name, std::uint64_t delta = 1);

  /// Current value of a counter; zero when never incremented.
  std::uint64_t counter(const std::string& name) const;

  /// Adds \p ns nanoseconds to the named stage timer.
  void RecordTime(const std::string& name, std::int64_t ns);

  /// Accumulated time of a stage timer in milliseconds.
  double timer_ms(const std::string& name) const;

  /// Records one sample into the named distribution (creating it
  /// empty). Distributions power the per-SLA latency percentiles of the
  /// serve daemon; like timers they hold wall-clock data, so they never
  /// feed deterministic reports.
  void Observe(const std::string& name, double value);

  /// Number of samples observed for a distribution; zero when absent.
  std::size_t samples(const std::string& name) const;

  /// Nearest-rank quantile (q in [0, 1]) of a distribution; 0 when the
  /// distribution is empty or absent.
  double quantile(const std::string& name, double q) const;

  /// Snapshot of all counters (name -> value).
  std::map<std::string, std::uint64_t> Counters() const;

  /// Snapshot of all timers (name -> accumulated ms, with call counts
  /// available as Counters() entry "<name>.calls").
  std::map<std::string, double> TimersMs() const;

  /// Folds \p other into this registry: counters and timers add,
  /// distribution samples concatenate. The campaign runner gives every
  /// shard a private registry and merges them in shard order, so shard
  /// workers never contend on one mutex. Merging a registry into itself
  /// throws; \p other is left untouched.
  void MergeFrom(const Metrics& other);

  /// Clears every counter and timer (tests and per-phase reporting).
  void Reset();

  /// Plain-text dump: one "name value" line per counter, one
  /// "name_ms value" line per timer, and "name_p50 / name_p99 /
  /// name_count" lines per distribution.
  void WriteText(std::ostream& os) const;

  /// CSV dump with header "metric,kind,value".
  void WriteCsv(std::ostream& os) const;

 private:
  /// Unlocked quantile over a sample vector (helper for quantile()).
  static double QuantileOf(const std::vector<double>& samples, double q);

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::int64_t> timer_ns_;
  std::map<std::string, std::vector<double>> observations_;
};

/// RAII wall-clock timer: accumulates the scope's duration into a
/// Metrics stage timer and bumps the "<name>.calls" counter.
class ScopedTimer {
 public:
  ScopedTimer(Metrics& metrics, std::string name)
      : metrics_(metrics),
        name_(std::move(name)),
        begin_(std::chrono::steady_clock::now()) {}

  ~ScopedTimer() {
    const auto end = std::chrono::steady_clock::now();
    metrics_.RecordTime(
        name_,
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin_)
            .count());
    metrics_.Increment(name_ + ".calls");
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metrics& metrics_;
  std::string name_;
  std::chrono::steady_clock::time_point begin_;
};

}  // namespace actg::runtime

#endif  // ACTG_RUNTIME_METRICS_H
