#include "apps/mpeg.h"

#include <memory>

#include "apps/common.h"
#include "util/error.h"

namespace actg::apps {

namespace {

/// Builds the 3-PE platform with MPEG-flavoured task costs. PE0 is a
/// control-oriented core (fast on parsing/VLD), PE1 and PE2 are DSP-like
/// cores (fast on IDCT / motion compensation).
arch::Platform BuildMpegPlatform(const ctg::Ctg& graph,
                                 const std::vector<double>& base_wcet,
                                 const std::vector<double>& base_power) {
  ACTG_CHECK(base_wcet.size() == graph.task_count(),
             "WCET table size mismatch");
  arch::PlatformBuilder pb(graph.task_count(), 3, /*bandwidth=*/200.0,
                           /*tx_energy=*/0.02);
  pb.SetPeName(PeId{0}, "RISC");
  pb.SetPeName(PeId{1}, "DSP0");
  pb.SetPeName(PeId{2}, "DSP1");
  // Per-PE affinity multipliers by coarse task class, derived from the
  // task name prefix.
  for (TaskId task : graph.TaskIds()) {
    const std::string& name = graph.task(task).name;
    double mult[3] = {1.0, 1.0, 1.0};
    if (name.rfind("vld", 0) == 0 || name.rfind("mb", 0) == 0 ||
        name.rfind("skip", 0) == 0 || name.rfind("cbp", 0) == 0 ||
        name.rfind("mv", 0) == 0) {
      mult[0] = 0.8;  // parsing / control: RISC-friendly
      mult[1] = 1.2;
      mult[2] = 1.2;
    } else if (name.rfind("idct", 0) == 0 || name.rfind("iq", 0) == 0 ||
               name.rfind("mc", 0) == 0 || name.rfind("add", 0) == 0) {
      mult[0] = 1.4;  // signal processing: DSP-friendly
      mult[1] = 0.85;
      mult[2] = 0.9;
    }
    for (int pe = 0; pe < 3; ++pe) {
      const double wcet = base_wcet[task.index()] * mult[pe];
      const double energy = wcet * base_power[static_cast<std::size_t>(pe)];
      pb.SetTaskCost(task, PeId{pe}, wcet, energy);
      pb.SetMinSpeedRatio(PeId{pe}, 0.2);
    }
  }
  return std::move(pb).Build();
}

}  // namespace

MpegModel MakeMpegModel(double deadline_factor) {
  ctg::CtgBuilder b;
  std::vector<double> wcet;  // filled parallel to task creation, ms
  const auto add = [&](const std::string& name, double w) {
    wcet.push_back(w);
    return b.AddTask(name);
  };
  const auto add_or = [&](const std::string& name, double w) {
    wcet.push_back(w);
    return b.AddOrTask(name);
  };

  // --- common front end -------------------------------------------------
  const TaskId mb_header = add("mb_header", 0.6);
  const TaskId skipped = add("skipped", 0.3);  // fork a
  b.AddEdge(mb_header, skipped, 2.0);

  // --- skipped path (a2) --------------------------------------------------
  const TaskId mc_skip = add("mc_skip", 1.2);
  b.AddConditionalEdge(skipped, mc_skip, /*a2=*/1, 1.0);

  // --- decoded path (a1) --------------------------------------------------
  const TaskId mb_type = add("mb_type", 0.4);  // fork b
  b.AddConditionalEdge(skipped, mb_type, /*a1=*/0, 2.0);

  // Intra path (b1): full-block VLD + IQ + DC prediction + 6 IDCTs.
  const TaskId vld_intra = add("vld_intra", 2.2);
  b.AddConditionalEdge(mb_type, vld_intra, /*b1=*/0, 4.0);
  const TaskId iq_intra = add("iq_intra", 1.4);
  b.AddEdge(vld_intra, iq_intra, 6.0);
  const TaskId dc_pred = add("dc_pred", 0.8);
  b.AddEdge(iq_intra, dc_pred, 2.0);
  std::vector<TaskId> idct_intra;
  for (int blk = 0; blk < 6; ++blk) {
    const TaskId idct =
        add("idct_i" + std::to_string(blk), 2.6);
    b.AddEdge(dc_pred, idct, 4.0);
    idct_intra.push_back(idct);
  }

  // Inter path (b2): VLD, the motion-vector fork, motion compensation,
  // and six per-block conditional IDCTs.
  const TaskId vld_inter = add("vld_inter", 1.8);
  b.AddConditionalEdge(mb_type, vld_inter, /*b2=*/1, 4.0);
  const TaskId mv_fork = add("mv_mode", 0.3);  // the ninth fork
  b.AddEdge(vld_inter, mv_fork, 1.0);
  const TaskId mv_decode = add("mv_decode", 1.1);
  b.AddConditionalEdge(mv_fork, mv_decode, /*new mv=*/0, 1.0);
  const TaskId mv_predict = add("mv_predict", 0.7);
  b.AddConditionalEdge(mv_fork, mv_predict, /*predicted=*/1, 1.0);
  const TaskId mc = add_or("mc", 2.4);  // motion compensation
  b.AddEdge(mv_decode, mc, 2.0);
  b.AddEdge(mv_predict, mc, 2.0);

  std::vector<TaskId> block_forks;
  std::vector<TaskId> block_adds;
  for (int blk = 0; blk < 6; ++blk) {
    const std::string tag = std::to_string(blk);
    const TaskId cbp = add("cbp_" + tag, 0.2);  // forks c..h
    b.AddEdge(vld_inter, cbp, 1.0);
    const TaskId idct = add("idct_b" + tag, 2.6);
    b.AddConditionalEdge(cbp, idct, /*coded=*/0, 3.0);
    const TaskId blend = add_or("add_" + tag, 0.9);
    b.AddEdge(mc, blend, 2.0);
    b.AddEdge(idct, blend, 3.0);
    // The not-coded outcome (1) feeds the blend directly: prediction
    // only, no residual.
    b.AddConditionalEdge(cbp, blend, /*not coded=*/1, 0.5);
    block_forks.push_back(cbp);
    block_adds.push_back(blend);
  }

  // --- back end -----------------------------------------------------------
  const TaskId recon = add_or("recon", 1.0);
  b.AddEdge(mc_skip, recon, 4.0);
  for (TaskId idct : idct_intra) b.AddEdge(idct, recon, 3.0);
  for (TaskId blend : block_adds) b.AddEdge(blend, recon, 3.0);
  const TaskId clip = add("clip", 0.7);
  b.AddEdge(recon, clip, 6.0);
  const TaskId store = add("store", 0.9);
  b.AddEdge(clip, store, 6.0);
  const TaskId display = add("display_update", 0.5);
  b.AddEdge(store, display, 2.0);

  b.SetOutcomeLabels(skipped, {"a1", "a2"});
  b.SetOutcomeLabels(mb_type, {"b1", "b2"});
  b.SetOutcomeLabels(mv_fork, {"mv_new", "mv_pred"});
  for (std::size_t blk = 0; blk < block_forks.size(); ++blk) {
    const char label = static_cast<char>('c' + blk);
    b.SetOutcomeLabels(block_forks[blk],
                       {std::string(1, label) + "1",
                        std::string(1, label) + "2"});
  }

  ctg::Ctg graph = std::move(b).Build();
  ACTG_ASSERT(graph.task_count() == 40,
              "MPEG CTG must have 40 tasks (paper Section III.B)");
  ACTG_ASSERT(graph.ForkIds().size() == 9,
              "MPEG CTG must have 9 branch fork nodes");

  const std::vector<double> pe_power{1.3, 1.0, 1.05};  // mJ per ms
  arch::Platform platform = BuildMpegPlatform(graph, wcet, pe_power);
  AssignDeadline(graph, platform, deadline_factor);
  return MpegModel{std::move(graph), std::move(platform),
                   skipped,          mb_type,
                   mv_fork,          block_forks};
}

std::vector<MovieProfile> MpegMovieProfiles() {
  return {
      {"Airwolf", 0.050, 0.006, 101},
      {"Bike", 0.055, 0.006, 202},
      {"Bus", 0.080, 0.012, 303},
      {"Coaster", 0.050, 0.008, 404},
      {"Flower", 0.070, 0.009, 505},
      {"Shuttle", 0.120, 0.022, 606},  // QCIF, ~10 frames: most volatile
      {"Tennis", 0.070, 0.009, 707},
      {"Train", 0.045, 0.005, 808},
  };
}

trace::BranchTrace GenerateMovieTrace(const MpegModel& model,
                                      const MovieProfile& movie,
                                      std::size_t instances) {
  util::Random rng(movie.seed);
  trace::TraceGenerator gen(model.graph);
  for (TaskId fork : model.graph.ForkIds()) {
    trace::RandomWalkProcess::Params params;
    // Start each fork's weights at a random point so movies differ in
    // their long-run mix (I/P/B frame content).
    params.initial_weights = {rng.Uniform(0.2, 1.0),
                              rng.Uniform(0.2, 1.0)};
    params.step_sigma = movie.drift_sigma;
    params.jump_probability = movie.jump_probability;
    params.floor = 0.05;
    gen.SetProcess(
        fork, std::make_unique<trace::RandomWalkProcess>(params));
  }
  return gen.Generate(instances, rng);
}

}  // namespace actg::apps
