/// \file mpeg.h
/// MPEG macroblock-decoder CTG (paper Fig. 3 and Section IV).
///
/// The paper models the macroblock decoding loop of the Berkeley
/// software MPEG player as a CTG of 40 tasks including 9 branch fork
/// nodes, run on 3 PEs. Fork 'a' tests whether the macroblock is
/// skipped; on the non-skipped branch fork 'b' tests whether it is an
/// Intra (type I) block — intra blocks always run IDCT; inter blocks
/// carry 6 per-block forks 'c'..'h' that individually enable or disable
/// the IDCT of each 8x8 block. Our reconstruction adds the motion-vector
/// fork (new vs. predicted vector) as the paper's ninth branching node
/// and fills in the standard decoder stages (VLD, IQ, DC prediction,
/// motion compensation, add/reconstruct, clip, store).
///
/// The real movie-clip decision traces are substituted by synthetic
/// drifting processes (see trace/generators.h and DESIGN.md); the eight
/// movie profiles below mirror the paper's clips, with Shuttle
/// configured more volatile (it shows the largest call counts in
/// Table 2).

#ifndef ACTG_APPS_MPEG_H
#define ACTG_APPS_MPEG_H

#include <string>
#include <vector>

#include "arch/platform.h"
#include "ctg/condition.h"
#include "ctg/graph.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace actg::apps {

/// The MPEG decoder model.
struct MpegModel {
  ctg::Ctg graph;
  arch::Platform platform;

  // Fork handles (in the paper's labelling).
  TaskId fork_skipped;                ///< branch a: a1 = decode, a2 = skip
  TaskId fork_type;                   ///< branch b: b1 = intra, b2 = inter
  TaskId fork_mv;                     ///< the ninth branching node
  std::vector<TaskId> fork_blocks;    ///< branches c..h (6 block forks)
};

/// Builds the 40-task / 9-fork / 3-PE MPEG model. The deadline is set to
/// \p deadline_factor times the nominal DLS makespan under uniform
/// probabilities.
MpegModel MakeMpegModel(double deadline_factor = 1.8);

/// One synthetic movie profile.
struct MovieProfile {
  std::string name;
  /// Random-walk step size of the per-fork probability processes.
  double drift_sigma;
  /// Scene-change (jump) rate.
  double jump_probability;
  /// RNG seed.
  std::uint64_t seed;
};

/// The eight movie profiles of Fig. 5 / Table 2. *Shuttle* is the most
/// volatile (lower resolution, more frames per 1000 macroblocks).
std::vector<MovieProfile> MpegMovieProfiles();

/// Generates a decision trace of \p instances macroblocks for \p movie.
trace::BranchTrace GenerateMovieTrace(const MpegModel& model,
                                      const MovieProfile& movie,
                                      std::size_t instances);

}  // namespace actg::apps

#endif  // ACTG_APPS_MPEG_H
