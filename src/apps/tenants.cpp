#include "apps/tenants.h"

#include <vector>

#include "apps/common.h"
#include "trace/generators.h"
#include "util/error.h"

namespace actg::apps {

std::string_view TenantWorkloadName(TenantWorkload workload) {
  switch (workload) {
    case TenantWorkload::kMpeg:
      return "mpeg";
    case TenantWorkload::kCruise:
      return "cruise";
    case TenantWorkload::kRandomForkJoin:
      return "random1";
    case TenantWorkload::kRandomFlat:
      return "random2";
  }
  return "?";
}

std::optional<TenantWorkload> ParseTenantWorkload(std::string_view name) {
  if (name == "mpeg") return TenantWorkload::kMpeg;
  if (name == "cruise") return TenantWorkload::kCruise;
  if (name == "random1") return TenantWorkload::kRandomForkJoin;
  if (name == "random2") return TenantWorkload::kRandomFlat;
  return std::nullopt;
}

namespace {

/// Deadline tightness of the random tenant graphs (the bundled apps
/// carry their own paper-calibrated factors).
constexpr double kRandomDeadlineFactor = 1.3;

tgff::RandomCase MakeRandomTenantCase(tgff::Category category,
                                      std::uint64_t seed) {
  // Structural diversity per tenant: the seed picks the (tasks, forks,
  // PEs) triplet from the band the paper's Tables 4/5 cases span.
  util::Random rng(seed ^ 0x7E4A47F5D1ULL);
  tgff::RandomCtgParams params;
  params.task_count = rng.UniformInt(15, 28);
  params.fork_count = rng.UniformInt(1, 3);
  params.pe_count = rng.UniformInt(2, 4);
  params.category = category;
  params.seed = seed;
  tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
  AssignDeadline(rc.graph, rc.platform, kRandomDeadlineFactor);
  return rc;
}

}  // namespace

TenantModel::TenantModel(TenantWorkload workload, std::uint64_t seed)
    : workload_(workload), seed_(seed) {
  switch (workload) {
    case TenantWorkload::kMpeg:
      mpeg_ = std::make_unique<MpegModel>(MakeMpegModel());
      break;
    case TenantWorkload::kCruise:
      cruise_ = std::make_unique<CruiseModel>(MakeCruiseModel());
      break;
    case TenantWorkload::kRandomForkJoin:
      random_ = std::make_unique<tgff::RandomCase>(
          MakeRandomTenantCase(tgff::Category::kForkJoin, seed));
      break;
    case TenantWorkload::kRandomFlat:
      random_ = std::make_unique<tgff::RandomCase>(
          MakeRandomTenantCase(tgff::Category::kFlat, seed));
      break;
  }
  analysis_ = std::make_unique<ctg::ActivationAnalysis>(graph());
}

const ctg::Ctg& TenantModel::graph() const {
  if (mpeg_) return mpeg_->graph;
  if (cruise_) return cruise_->graph;
  return random_->graph;
}

const arch::Platform& TenantModel::platform() const {
  if (mpeg_) return mpeg_->platform;
  if (cruise_) return cruise_->platform;
  return random_->platform;
}

trace::BranchTrace TenantModel::MakeTrace(std::size_t instances,
                                          util::Random rng) const {
  switch (workload_) {
    case TenantWorkload::kMpeg: {
      // The seed selects the movie profile; the substream reseeds it so
      // two mpeg tenants with the same profile still watch different
      // clips.
      std::vector<MovieProfile> profiles = MpegMovieProfiles();
      MovieProfile profile =
          profiles[static_cast<std::size_t>(seed_ % profiles.size())];
      profile.seed = rng.engine().Next();
      return GenerateMovieTrace(*mpeg_, profile, instances);
    }
    case TenantWorkload::kCruise: {
      const int sequence = 1 + static_cast<int>(seed_ % 3);
      return GenerateRoadTrace(*cruise_, sequence, instances,
                               rng.engine().Next());
    }
    case TenantWorkload::kRandomForkJoin:
    case TenantWorkload::kRandomFlat: {
      // Drifting random-walk processes with occasional scene changes,
      // the MPEG-like statistics every adaptive experiment assumes.
      trace::TraceGenerator gen(graph());
      for (TaskId fork : graph().ForkIds()) {
        trace::RandomWalkProcess::Params params;
        const int arity = graph().OutcomeCount(fork);
        params.initial_weights.resize(static_cast<std::size_t>(arity));
        for (double& w : params.initial_weights) {
          w = rng.Uniform(0.2, 1.0);
        }
        params.step_sigma = 0.05;
        params.jump_probability = 0.01;
        gen.SetProcess(
            fork, std::make_unique<trace::RandomWalkProcess>(params));
      }
      return gen.Generate(instances, rng);
    }
  }
  throw InternalError("TenantModel::MakeTrace: unreachable workload");
}

}  // namespace actg::apps
