/// \file common.h
/// Helpers shared by the bundled application models and the benches.

#ifndef ACTG_APPS_COMMON_H
#define ACTG_APPS_COMMON_H

#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "ctg/graph.h"

namespace actg::apps {

/// Uniform outcome distribution for every fork of \p graph.
ctg::BranchProbabilities UniformProbabilities(const ctg::Ctg& graph);

/// Sets the graph deadline to \p factor times the makespan of the
/// nominal-speed modified-DLS schedule under uniform branch
/// probabilities (the paper's cruise-controller experiment uses
/// "double of the optimum schedule length"). Returns the deadline.
double AssignDeadline(ctg::Ctg& graph, const arch::Platform& platform,
                      double factor);

}  // namespace actg::apps

#endif  // ACTG_APPS_COMMON_H
