/// \file fig1_example.h
/// The paper's Figure 1 example CTG.
///
/// Eight tasks; τ8 is an or-node, every other node an and-node. τ3 is a
/// branch fork with outcomes a1/a2, τ5 with b1/b2. The minterm set is
/// M = {1, a1, a2b1, a2b2}; Γ(τ8) = {1, a1}, and τ8 carries an implied
/// dependency on the fork τ3 (paper Example 1). Execution profile and
/// communication volumes are not legible in the paper, so representative
/// values are used.

#ifndef ACTG_APPS_FIG1_EXAMPLE_H
#define ACTG_APPS_FIG1_EXAMPLE_H

#include "arch/platform.h"
#include "ctg/condition.h"
#include "ctg/graph.h"

namespace actg::apps {

/// The Figure 1 model: graph, a 2-PE platform, and the branch
/// probabilities used in the paper's discussion (prob(b1) = 0.5).
struct Fig1Example {
  ctg::Ctg graph;
  arch::Platform platform;
  ctg::BranchProbabilities probs;

  /// Task ids in paper order: tau(1) .. tau(8).
  TaskId tau(int i) const { return TaskId{i - 1}; }
};

/// Builds the Figure 1 example. The deadline is set to \p deadline_factor
/// times the nominal DLS makespan.
Fig1Example MakeFig1Example(double deadline_factor = 1.8);

}  // namespace actg::apps

#endif  // ACTG_APPS_FIG1_EXAMPLE_H
