/// \file tenants.h
/// Tenant workload factories for the multi-tenant serve daemon.
///
/// A serve tenant is one independent application: a CTG + platform, its
/// activation analysis, and a branch-decision trace driving it. The
/// factory wraps the bundled application models (MPEG decoder, cruise
/// controller) and the two random-CTG categories behind one handle so
/// the daemon can instantiate thousands of heterogeneous tenants from a
/// (workload, seed) pair. Inner storage is heap-allocated: a TenantModel
/// stays movable while the graph/platform/analysis references handed to
/// schedules and controllers remain stable.

#ifndef ACTG_APPS_TENANTS_H
#define ACTG_APPS_TENANTS_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "apps/cruise.h"
#include "apps/mpeg.h"
#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/graph.h"
#include "tgff/random_ctg.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace actg::apps {

/// The workload families a tenant can request.
enum class TenantWorkload {
  kMpeg,           ///< 40-task / 9-fork MPEG macroblock decoder
  kCruise,         ///< 32-task / 2-fork vehicle cruise controller
  kRandomForkJoin, ///< random Category-1 CTG (fork-join, nested)
  kRandomFlat,     ///< random Category-2 CTG (no fork-join, no nesting)
};

/// serve-v1 token of a workload: "mpeg", "cruise", "random1", "random2".
std::string_view TenantWorkloadName(TenantWorkload workload);

/// Inverse of TenantWorkloadName; nullopt for unknown tokens.
std::optional<TenantWorkload> ParseTenantWorkload(std::string_view name);

/// One tenant's application model. Construction is the expensive part
/// of a NewApp event (graph generation + analysis); traces are drawn
/// afterwards, deterministically per (model, rng substream).
class TenantModel {
 public:
  /// Builds the model for \p workload. \p seed selects the structure of
  /// the random categories (task/fork/PE counts and tables) and the
  /// profile variant of the bundled apps; equal pairs build equal
  /// models.
  TenantModel(TenantWorkload workload, std::uint64_t seed);

  TenantWorkload workload() const { return workload_; }
  std::uint64_t seed() const { return seed_; }

  const ctg::Ctg& graph() const;
  const arch::Platform& platform() const;
  const ctg::ActivationAnalysis& analysis() const { return *analysis_; }

  /// Generates \p instances branch-decision vectors with the workload's
  /// native trace process (movie drift, road regimes, random walks).
  /// Deterministic in (model, \p rng) — pass a Fork substream so fleet
  /// results are independent of scheduling order.
  trace::BranchTrace MakeTrace(std::size_t instances,
                               util::Random rng) const;

 private:
  TenantWorkload workload_;
  std::uint64_t seed_;
  std::unique_ptr<MpegModel> mpeg_;
  std::unique_ptr<CruiseModel> cruise_;
  std::unique_ptr<tgff::RandomCase> random_;
  std::unique_ptr<ctg::ActivationAnalysis> analysis_;
};

}  // namespace actg::apps

#endif  // ACTG_APPS_TENANTS_H
