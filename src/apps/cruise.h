/// \file cruise.h
/// Vehicle cruise-controller CTG (paper Section IV, after Pop [15]).
///
/// The paper's second real-life application: 32 tasks including two
/// branch fork nodes, mapped onto 5 PEs, with exactly three minterms and
/// a deadline of double the optimum schedule length. The two minterms
/// that stem from the same (inner) branching node are almost equal in
/// energy — the property the paper cites to explain the modest (~5 %)
/// adaptive savings. The Linköping thesis graph itself is not available;
/// this reconstruction satisfies every property the paper states.
///
/// Structure: an 8-task sensor/fusion front end; fork F1 selects manual
/// override (4 tasks) vs. cruise regulation; the regulation path computes
/// the speed error (4 tasks) and fork F2 selects the accelerate or the
/// decelerate law (5 nearly identical tasks each); both rejoin into a
/// 4-task actuation back end. Minterms: {f1=override}, {f1=cruise,
/// f2=accel}, {f1=cruise, f2=decel}.

#ifndef ACTG_APPS_CRUISE_H
#define ACTG_APPS_CRUISE_H

#include <cstdint>

#include "arch/platform.h"
#include "ctg/condition.h"
#include "ctg/graph.h"
#include "trace/trace.h"

namespace actg::apps {

/// The cruise-controller model.
struct CruiseModel {
  ctg::Ctg graph;
  arch::Platform platform;
  TaskId fork_mode;  ///< F1: 0 = cruise regulation, 1 = manual override
  TaskId fork_law;   ///< F2: 0 = accelerate, 1 = decelerate
};

/// Builds the 32-task / 2-fork / 5-PE model; deadline = \p deadline_factor
/// x the nominal DLS makespan (paper: 2x).
CruiseModel MakeCruiseModel(double deadline_factor = 2.0);

/// Generates one of the paper's three road-scenario decision sequences
/// (uphill / downhill / straight / bumpy regimes). \p sequence selects
/// the regime mix (1, 2 or 3, as in Table 3).
trace::BranchTrace GenerateRoadTrace(const CruiseModel& model,
                                     int sequence, std::size_t instances,
                                     std::uint64_t seed);

}  // namespace actg::apps

#endif  // ACTG_APPS_CRUISE_H
