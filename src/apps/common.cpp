#include "apps/common.h"

#include <vector>

#include "sched/dls.h"
#include "util/error.h"

namespace actg::apps {

ctg::BranchProbabilities UniformProbabilities(const ctg::Ctg& graph) {
  ctg::BranchProbabilities probs(graph.task_count());
  for (TaskId fork : graph.ForkIds()) {
    const int arity = graph.OutcomeCount(fork);
    probs.Set(fork,
              std::vector<double>(static_cast<std::size_t>(arity),
                                  1.0 / static_cast<double>(arity)));
  }
  return probs;
}

double AssignDeadline(ctg::Ctg& graph, const arch::Platform& platform,
                      double factor) {
  ACTG_CHECK(factor >= 1.0, "Deadline factor must be >= 1");
  const ctg::ActivationAnalysis analysis(graph);
  const ctg::BranchProbabilities probs = UniformProbabilities(graph);
  const sched::Schedule schedule =
      sched::RunDls(graph, analysis, platform, probs);
  const double deadline = schedule.Makespan() * factor;
  graph.SetDeadline(deadline);
  return deadline;
}

}  // namespace actg::apps
