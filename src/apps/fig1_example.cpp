#include "apps/fig1_example.h"

#include "apps/common.h"

namespace actg::apps {

Fig1Example MakeFig1Example(double deadline_factor) {
  ctg::CtgBuilder b;
  const TaskId t1 = b.AddTask("tau1");
  const TaskId t2 = b.AddTask("tau2");
  const TaskId t3 = b.AddTask("tau3");
  const TaskId t4 = b.AddTask("tau4");
  const TaskId t5 = b.AddTask("tau5");
  const TaskId t6 = b.AddTask("tau6");
  const TaskId t7 = b.AddTask("tau7");
  const TaskId t8 = b.AddOrTask("tau8");

  b.AddEdge(t1, t2, 8.0);
  b.AddEdge(t1, t3, 4.0);
  b.AddConditionalEdge(t3, t4, /*outcome=*/0, 6.0);   // a1
  b.AddConditionalEdge(t3, t5, /*outcome=*/1, 6.0);   // a2
  b.AddConditionalEdge(t5, t6, /*outcome=*/0, 10.0);  // b1
  b.AddConditionalEdge(t5, t7, /*outcome=*/1, 10.0);  // b2
  b.AddEdge(t2, t8, 12.0);
  b.AddEdge(t4, t8, 5.0);
  b.SetOutcomeLabels(t3, {"a1", "a2"});
  b.SetOutcomeLabels(t5, {"b1", "b2"});

  Fig1Example example{
      std::move(b).Build(),
      // Placeholder platform; replaced below once the graph exists.
      [] {
        arch::PlatformBuilder pb(8, 2, /*bandwidth=*/50.0,
                                 /*tx_energy=*/0.05);
        // Representative heterogeneous execution profile (ms / mJ).
        const double wcet[8][2] = {{10, 12}, {18, 14}, {8, 9},  {20, 16},
                                   {9, 11},  {16, 20}, {14, 12}, {12, 10}};
        const double energy[8][2] = {{10, 14}, {20, 15}, {8, 10}, {24, 18},
                                     {9, 13},  {18, 24}, {15, 13}, {13, 11}};
        for (int t = 0; t < 8; ++t) {
          for (int p = 0; p < 2; ++p) {
            pb.SetTaskCost(TaskId{t}, PeId{p}, wcet[t][p], energy[t][p]);
          }
        }
        pb.SetMinSpeedRatio(PeId{0}, 0.2);
        pb.SetMinSpeedRatio(PeId{1}, 0.2);
        return std::move(pb).Build();
      }(),
      ctg::BranchProbabilities(8)};

  example.probs.Set(t3, {0.4, 0.6});  // prob(a1), prob(a2)
  example.probs.Set(t5, {0.5, 0.5});  // paper: prob(b1) = 0.5

  AssignDeadline(example.graph, example.platform, deadline_factor);
  return example;
}

}  // namespace actg::apps
