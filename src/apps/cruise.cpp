#include "apps/cruise.h"

#include <memory>
#include <string>
#include <vector>

#include "apps/common.h"
#include "trace/generators.h"
#include "util/error.h"

namespace actg::apps {

CruiseModel MakeCruiseModel(double deadline_factor) {
  ctg::CtgBuilder b;
  std::vector<double> wcet;
  const auto add = [&](const std::string& name, double w) {
    wcet.push_back(w);
    return b.AddTask(name);
  };
  const auto add_or = [&](const std::string& name, double w) {
    wcet.push_back(w);
    return b.AddOrTask(name);
  };

  // Sensor / fusion front end (8 tasks).
  const TaskId speed_sensor = add("speed_sensor", 1.0);
  const TaskId wheel_sensor = add("wheel_sensor", 1.1);
  const TaskId throttle_sensor = add("throttle_sensor", 0.9);
  const TaskId brake_sensor = add("brake_sensor", 0.8);
  const TaskId filter_speed = add("filter_speed", 1.6);
  const TaskId filter_pedals = add("filter_pedals", 1.4);
  const TaskId fusion = add("fusion", 2.2);
  const TaskId diagnostics = add("diagnostics", 1.2);
  b.AddEdge(speed_sensor, filter_speed, 4.0);
  b.AddEdge(wheel_sensor, filter_speed, 4.0);
  b.AddEdge(throttle_sensor, filter_pedals, 3.0);
  b.AddEdge(brake_sensor, filter_pedals, 3.0);
  b.AddEdge(filter_speed, fusion, 6.0);
  b.AddEdge(filter_pedals, fusion, 6.0);
  b.AddEdge(fusion, diagnostics, 2.0);

  // F1: regulation mode (9th task).
  const TaskId mode = add("mode_select", 0.5);
  b.AddEdge(fusion, mode, 2.0);

  // Manual override path (4 tasks).
  const TaskId manual_map = add("manual_map", 1.2);
  b.AddConditionalEdge(mode, manual_map, /*override=*/1, 3.0);
  const TaskId manual_smooth = add("manual_smooth", 1.0);
  b.AddEdge(manual_map, manual_smooth, 2.0);
  const TaskId manual_limit = add("manual_limit", 0.8);
  b.AddEdge(manual_smooth, manual_limit, 2.0);
  const TaskId manual_log = add("manual_log", 0.6);
  b.AddEdge(manual_limit, manual_log, 1.0);

  // Cruise regulation path: error computation (4 tasks) then F2.
  const TaskId ref_speed = add("ref_speed", 0.8);
  b.AddConditionalEdge(mode, ref_speed, /*cruise=*/0, 3.0);
  const TaskId error_calc = add("error_calc", 1.0);
  b.AddEdge(ref_speed, error_calc, 2.0);
  const TaskId pid_state = add("pid_state", 1.4);
  b.AddEdge(error_calc, pid_state, 2.0);
  const TaskId gain_sched = add("gain_sched", 1.1);
  b.AddEdge(pid_state, gain_sched, 2.0);

  // F2: control law (1 task). The two laws are nearly identical in
  // structure and cost, making their minterms almost equal in energy
  // (the paper's stated property of this CTG).
  const TaskId law = add("law_select", 0.4);
  b.AddEdge(gain_sched, law, 1.0);
  std::vector<TaskId> accel, decel;
  const char* stage_names[5] = {"gain", "ramp", "comp", "limit", "cmd"};
  const double stage_wcet[5] = {1.2, 1.0, 1.3, 0.9, 1.1};
  for (int s = 0; s < 5; ++s) {
    accel.push_back(
        add(std::string("accel_") + stage_names[s], stage_wcet[s]));
    decel.push_back(add(std::string("decel_") + stage_names[s],
                        stage_wcet[s] * 1.02));
    if (s > 0) {
      b.AddEdge(accel[s - 1], accel[s], 2.0);
      b.AddEdge(decel[s - 1], decel[s], 2.0);
    }
  }
  b.AddConditionalEdge(law, accel.front(), /*accel=*/0, 2.0);
  b.AddConditionalEdge(law, decel.front(), /*decel=*/1, 2.0);

  // Actuation back end (4 tasks), rejoining all three paths.
  const TaskId actuator = add_or("actuator_cmd", 1.2);
  b.AddEdge(manual_log, actuator, 3.0);
  b.AddEdge(accel.back(), actuator, 3.0);
  b.AddEdge(decel.back(), actuator, 3.0);
  const TaskId safety = add("safety_check", 0.9);
  b.AddEdge(actuator, safety, 2.0);
  b.AddEdge(diagnostics, safety, 2.0);
  const TaskId bus_write = add("bus_write", 0.8);
  b.AddEdge(safety, bus_write, 2.0);
  const TaskId ui_update = add("ui_update", 0.7);
  b.AddEdge(bus_write, ui_update, 1.0);

  b.SetOutcomeLabels(mode, {"cruise", "override"});
  b.SetOutcomeLabels(law, {"accel", "decel"});

  ctg::Ctg graph = std::move(b).Build();
  ACTG_ASSERT(graph.task_count() == 32,
              "Cruise CTG must have 32 tasks (paper Section IV)");
  ACTG_ASSERT(graph.ForkIds().size() == 2,
              "Cruise CTG must have 2 branch fork nodes");

  // 5 heterogeneous ECUs.
  arch::PlatformBuilder pb(graph.task_count(), 5, /*bandwidth=*/50.0,
                           /*tx_energy=*/0.04);
  const double pe_speed[5] = {1.0, 0.9, 1.15, 1.05, 0.95};
  const double pe_power[5] = {1.0, 0.85, 1.3, 1.1, 0.9};
  for (TaskId task : graph.TaskIds()) {
    for (int pe = 0; pe < 5; ++pe) {
      const double w = wcet[task.index()] * pe_speed[pe];
      pb.SetTaskCost(task, PeId{pe}, w, w * pe_power[pe]);
      pb.SetMinSpeedRatio(PeId{pe}, 0.2);
    }
  }
  arch::Platform platform = std::move(pb).Build();
  AssignDeadline(graph, platform, deadline_factor);
  return CruiseModel{std::move(graph), std::move(platform), mode, law};
}

trace::BranchTrace GenerateRoadTrace(const CruiseModel& model,
                                     int sequence, std::size_t instances,
                                     std::uint64_t seed) {
  ACTG_CHECK(sequence >= 1 && sequence <= 3,
             "Road sequences are numbered 1..3 (paper Table 3)");
  util::Random rng(seed + static_cast<std::uint64_t>(sequence) * 7919);

  // Road regimes alter both how often the driver overrides and whether
  // the controller accelerates or decelerates. Each sequence mixes the
  // regimes differently.
  using Regime = trace::PiecewiseProcess::Regime;
  std::vector<Regime> mode_regimes, law_regimes;
  const auto push = [&](double p_cruise, double p_accel,
                        std::size_t length) {
    mode_regimes.push_back(Regime{{p_cruise, 1.0 - p_cruise}, length});
    law_regimes.push_back(Regime{{p_accel, 1.0 - p_accel}, length});
  };
  switch (sequence) {
    case 1:  // long straight with an uphill and a downhill stretch
      push(0.92, 0.55, 300);  // straight
      push(0.90, 0.85, 250);  // uphill: mostly accelerate
      push(0.90, 0.15, 250);  // downhill: mostly decelerate
      push(0.92, 0.50, 200);  // straight
      break;
    case 2:  // bumpy road: frequent overrides, alternating laws
      push(0.70, 0.60, 150);
      push(0.55, 0.40, 200);
      push(0.75, 0.65, 150);
      push(0.60, 0.35, 250);
      push(0.70, 0.55, 250);
      break;
    default:  // rolling hills with steep grades
      push(0.88, 0.90, 200);
      push(0.88, 0.10, 200);
      push(0.88, 0.88, 200);
      push(0.88, 0.12, 200);
      push(0.88, 0.90, 200);
      break;
  }

  trace::TraceGenerator gen(model.graph);
  gen.SetProcess(model.fork_mode,
                 std::make_unique<trace::PiecewiseProcess>(mode_regimes));
  gen.SetProcess(model.fork_law,
                 std::make_unique<trace::PiecewiseProcess>(law_regimes));
  return gen.Generate(instances, rng);
}

}  // namespace actg::apps
