/// \file sla.h
/// Service-level-agreement classes of the serve daemon.
///
/// Every tenant request carries one of three classes, mirroring the
/// SLA0-2 tiers of datacenter scheduling exercises: SLA0 requests are
/// latency-critical (dispatched first, never deferred), SLA1 requests
/// are throughput-oriented (always dispatched, after SLA0), and SLA2
/// requests are background work the admission controller may defer or
/// shed outright under load.

#ifndef ACTG_SERVE_SLA_H
#define ACTG_SERVE_SLA_H

#include <cstddef>
#include <optional>
#include <string_view>

namespace actg::serve {

/// Priority classes, ordered: lower value == higher priority.
enum class SlaClass {
  kLatencyCritical = 0,  ///< SLA0 — dispatched first, never shed
  kThroughput = 1,       ///< SLA1 — dispatched after SLA0, never shed
  kBackground = 2,       ///< SLA2 — deferred/shed under load
};

inline constexpr std::size_t kSlaClassCount = 3;

/// Canonical serve-v1 token: "SLA0", "SLA1", "SLA2".
std::string_view SlaName(SlaClass sla);

/// Human-readable label: "latency_critical", "throughput", "background".
std::string_view SlaLabel(SlaClass sla);

/// Parses either the canonical token or the label; nullopt otherwise.
std::optional<SlaClass> ParseSlaClass(std::string_view token);

/// The class with enum value \p index (0..2); nullopt out of range.
std::optional<SlaClass> SlaFromIndex(std::size_t index);

}  // namespace actg::serve

#endif  // ACTG_SERVE_SLA_H
