#include "serve/session.h"

#include <string>
#include <utility>

#include "apps/common.h"
#include "runtime/watchdog.h"
#include "util/error.h"

namespace actg::serve {

namespace {

const char* StateName(SessionState state) {
  switch (state) {
    case SessionState::kAdmitted:
      return "admitted";
    case SessionState::kActive:
      return "active";
    case SessionState::kDone:
      return "done";
    case SessionState::kShutdown:
      return "shutdown";
    case SessionState::kQuarantined:
      return "quarantined";
  }
  return "?";
}

}  // namespace

Session::Session(TenantRequest request, SessionOptions options,
                 util::Random rng)
    : request_(std::move(request)), options_(options), rng_(rng) {
  request_.Validate().ThrowIfError();
}

void Session::Reject(const char* event, const char* why) const {
  throw InvalidArgument("Session '" + request_.name + "' (" +
                        StateName(state_) + "): " + event + " " + why);
}

void Session::NewApp() {
  runtime::CheckDeadline("serve session NewApp");
  if (state_ != SessionState::kAdmitted) {
    Reject("NewApp", "is only valid before the app is built");
  }
  model_ = std::make_unique<apps::TenantModel>(request_.workload,
                                               request_.seed);
  // The trace consumes the session's substream; nothing else draws from
  // it, so trace content is a function of (fleet seed, tenant index,
  // request) alone — never of dispatch interleaving.
  trace_ = model_->MakeTrace(request_.instances, rng_);

  adaptive::AdaptiveOptions options;
  options.window_length = request_.window;
  options.threshold = request_.threshold;
  options.policy = request_.policy;
  options.cache = options_.cache;
  options.metrics = options_.metrics;
  options.validate_schedules = options_.validate;
  controller_ = std::make_unique<adaptive::AdaptiveController>(
      model_->graph(), model_->analysis(), model_->platform(),
      apps::UniformProbabilities(model_->graph()), options);
  state_ = SessionState::kActive;
}

const sim::InstanceResult& Session::NewInstance() {
  runtime::CheckDeadline("serve session NewInstance");
  if (state_ != SessionState::kActive) {
    Reject("NewInstance", "needs an active app (NewApp first)");
  }
  if (pending_.has_value()) {
    Reject("NewInstance", "has an unacknowledged result pending");
  }
  if (next_instance_ >= trace_.size()) {
    Reject("NewInstance", "has no instances left");
  }
  pending_ = controller_->ProcessInstance(trace_.At(next_instance_));
  ++next_instance_;
  return *pending_;
}

sim::InstanceResult Session::InstanceComplete() {
  if (state_ != SessionState::kActive || !pending_.has_value()) {
    Reject("InstanceComplete", "has no pending instance");
  }
  const sim::InstanceResult result = *pending_;
  pending_.reset();
  summary_.Add(result);
  if (summary_.instances == request_.instances) {
    state_ = SessionState::kDone;
  }
  return result;
}

SessionStatus Session::PeriodicCheck() const {
  if (state_ != SessionState::kActive && state_ != SessionState::kDone) {
    Reject("PeriodicCheck", "needs a live app");
  }
  SessionStatus status;
  status.completed = summary_.instances;
  status.remaining = remaining();
  status.reschedules = controller_->reschedule_count();
  status.degrade_level = controller_->degrade_level();
  return status;
}

void Session::Shutdown() {
  if (state_ == SessionState::kShutdown) {
    Reject("Shutdown", "was already shut down");
  }
  if (state_ == SessionState::kQuarantined) {
    Reject("Shutdown", "was quarantined by the watchdog");
  }
  if (pending_.has_value()) {
    Reject("Shutdown", "has an unacknowledged result pending");
  }
  state_ = SessionState::kShutdown;
}

void Session::Quarantine() {
  if (state_ == SessionState::kShutdown ||
      state_ == SessionState::kQuarantined) {
    Reject("Quarantine", "is already terminal");
  }
  // A deadline fires at an event entry boundary, never between
  // NewInstance and its InstanceComplete ack — but drop any pending
  // result defensively so the summary never half-counts an instance.
  pending_.reset();
  state_ = SessionState::kQuarantined;
}

const apps::TenantModel& Session::model() const {
  if (model_ == nullptr) Reject("model", "is only available after NewApp");
  return *model_;
}

const adaptive::AdaptiveController& Session::controller() const {
  if (controller_ == nullptr) {
    Reject("controller", "is only available after NewApp");
  }
  return *controller_;
}

const ctg::BranchAssignment& Session::assignment(std::size_t index) const {
  if (model_ == nullptr) {
    Reject("assignment", "is only available after NewApp");
  }
  return trace_.At(index);
}

}  // namespace actg::serve
