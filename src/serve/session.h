/// \file session.h
/// One tenant's lifetime inside the serve daemon.
///
/// A Session is a small state machine driven by the daemon's event API:
///
///   NewApp            builds the tenant's application model, draws its
///                     branch trace from the tenant's Random substream
///                     and constructs the adaptive controller (the
///                     expensive step — dispatched to the pool).
///   NewInstance       executes the next CTG instance through the
///                     controller and stashes the result.
///   InstanceComplete  consumes the stashed result into the running
///                     summary (ack of the previous NewInstance).
///   PeriodicCheck     health probe: snapshots progress, reschedule
///                     count and ladder rung without executing anything.
///   Shutdown          finalizes the session; afterwards every event is
///                     rejected.
///
/// Out-of-order events (NewInstance before NewApp, InstanceComplete
/// without a pending result, anything after Shutdown, a second NewApp)
/// throw actg::InvalidArgument — the daemon's dispatch loop is expected
/// to be well-formed and the tests pin these diagnostics.
///
/// NewApp and NewInstance are also the session's cooperative watchdog
/// check points (runtime::CheckDeadline): when the dispatching pool
/// armed a per-job deadline and it has passed, the event throws
/// runtime::DeadlineExceeded at that boundary and the server
/// quarantines the session instead of letting it stall the round.
///
/// A session owns all of its state (model, trace, controller) and is
/// driven by one thread at a time; distinct sessions may run on
/// distinct pool workers concurrently (see the AdaptiveController
/// reentrancy contract).

#ifndef ACTG_SERVE_SESSION_H
#define ACTG_SERVE_SESSION_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "adaptive/controller.h"
#include "apps/tenants.h"
#include "serve/request.h"
#include "serve/sla.h"
#include "sim/executor.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace actg::serve {

/// Lifecycle rungs of a session.
enum class SessionState {
  kAdmitted,     ///< admitted, model not built yet (before NewApp)
  kActive,       ///< model built, instances executing
  kDone,         ///< all requested instances completed
  kShutdown,     ///< finalized; rejects every further event
  kQuarantined,  ///< watchdog-deadlined; terminal like kShutdown
};

/// Snapshot returned by PeriodicCheck.
struct SessionStatus {
  std::size_t completed = 0;
  std::size_t remaining = 0;
  std::size_t reschedules = 0;
  adaptive::DegradeLevel degrade_level = adaptive::DegradeLevel::kNormal;
};

/// Shared wiring a session receives from its server.
struct SessionOptions {
  /// Schedule cache binding this tenant's controller consults: the
  /// shard and the tenant id its keys carry, in one value. Default
  /// (unbound) disables memoization.
  runtime::CacheBinding cache;
  /// Metrics registry the controller reports into; null = Global().
  runtime::Metrics* metrics = nullptr;
  /// Oracle: validate every freshly computed schedule.
  bool validate = false;
};

class Session {
 public:
  /// Admits \p request. \p rng must be the tenant's own Fork substream
  /// of the fleet seed — it fully determines the trace, so session
  /// results are independent of dispatch interleaving.
  Session(TenantRequest request, SessionOptions options, util::Random rng);

  // -- Event API ----------------------------------------------------

  /// Builds model + trace + controller. Valid once, in kAdmitted.
  void NewApp();

  /// Executes the next instance; the result stays pending until
  /// InstanceComplete. Valid in kActive with no pending result and
  /// remaining() > 0.
  const sim::InstanceResult& NewInstance();

  /// Acknowledges the pending instance into the summary and returns it.
  sim::InstanceResult InstanceComplete();

  /// Health probe; valid in kActive or kDone.
  SessionStatus PeriodicCheck() const;

  /// Finalizes the session (any state except kShutdown or kQuarantined;
  /// a pending unacknowledged instance is rejected).
  void Shutdown();

  /// Marks the session watchdog-quarantined: its dispatcher caught
  /// runtime::DeadlineExceeded from one of its events (NewApp and
  /// NewInstance are the cooperative check points). Terminal — every
  /// further event is rejected; the partial summary stays readable so
  /// the fleet report can account for what completed before the stall.
  void Quarantine();

  // -- Accessors ----------------------------------------------------

  const TenantRequest& request() const { return request_; }
  const std::string& name() const { return request_.name; }
  SlaClass sla() const { return request_.sla; }
  SessionState state() const { return state_; }
  /// True once NewApp built the model/controller (false for a session
  /// quarantined before its app came up).
  bool app_built() const { return controller_ != nullptr; }
  std::size_t completed() const { return summary_.instances; }
  std::size_t remaining() const {
    return request_.instances - summary_.instances;
  }
  const sim::RunSummary& summary() const { return summary_; }

  /// The tenant's model/controller; valid from NewApp on (throws
  /// InvalidArgument before that), including after Shutdown — the
  /// oracle tests re-validate sampled instances of a finished fleet
  /// against check::Validate.
  const apps::TenantModel& model() const;
  const adaptive::AdaptiveController& controller() const;
  /// Branch assignment of instance \p index of the tenant's trace.
  const ctg::BranchAssignment& assignment(std::size_t index) const;

 private:
  [[noreturn]] void Reject(const char* event, const char* why) const;

  TenantRequest request_;
  SessionOptions options_;
  util::Random rng_;
  SessionState state_ = SessionState::kAdmitted;
  std::unique_ptr<apps::TenantModel> model_;
  std::unique_ptr<adaptive::AdaptiveController> controller_;
  trace::BranchTrace trace_;
  std::size_t next_instance_ = 0;
  std::optional<sim::InstanceResult> pending_;
  sim::RunSummary summary_;
};

}  // namespace actg::serve

#endif  // ACTG_SERVE_SESSION_H
