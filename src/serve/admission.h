/// \file admission.h
/// Load-shedding admission control of the serve daemon.
///
/// A three-rung ladder in the graceful-degradation idiom of
/// adaptive::DegradeOptions, driven exclusively by the *deterministic*
/// queue depth — the total backlog of admitted-but-unfinished CTG
/// instances — so its decisions replay identically at any --jobs count
/// (wall-clock latency is observed and reported, never acted on):
///
///   open  --depth > defer_depth-->  defer   (SLA2 dispatch pauses)
///   any   --depth > shed_depth -->  shed    (arriving SLA2 tenants
///                                            are rejected outright)
///   any   --calm streak-->          one rung down (hysteresis:
///                                   recover_rounds consecutive rounds
///                                   at or below defer_depth)
///
/// SLA0 (latency-critical) and SLA1 (throughput) tenants are always
/// admitted and always dispatched — the ladder only sacrifices
/// background work, keeping the latency-critical miss rate at its
/// single-tenant baseline under overload.

#ifndef ACTG_SERVE_ADMISSION_H
#define ACTG_SERVE_ADMISSION_H

#include <cstddef>
#include <vector>

#include "serve/request.h"
#include "serve/sla.h"

namespace actg::serve {

/// Rung of the admission ladder.
enum class AdmissionLevel { kOpen = 0, kDefer = 1, kShed = 2 };

/// serve report token: "open", "defer", "shed".
const char* AdmissionLevelName(AdmissionLevel level);

/// One ladder transition, in firing order.
struct AdmissionEvent {
  std::size_t round = 0;
  std::size_t depth = 0;
  AdmissionLevel level = AdmissionLevel::kOpen;
};

class AdmissionController {
 public:
  /// Reads defer_depth / shed_depth / recover_rounds from \p config
  /// (which must Validate()).
  explicit AdmissionController(const ServeConfig& config);

  /// Applies round \p round's end-of-round queue depth. Called serially
  /// by the dispatch loop; the resulting level governs the *next*
  /// round.
  void Update(std::size_t round, std::size_t depth);

  /// Whether a tenant of class \p sla arriving now is admitted. SLA2 is
  /// rejected at kShed; counted in shed_count().
  bool Admit(SlaClass sla);

  /// Whether class \p sla may dispatch instances this round. SLA2 is
  /// paused at kDefer and above.
  bool DispatchAllowed(SlaClass sla) const;

  AdmissionLevel level() const { return level_; }
  /// Background tenants rejected at admission.
  std::size_t shed_count() const { return shed_count_; }
  /// Rounds in which background dispatch was paused.
  std::size_t deferred_rounds() const { return deferred_rounds_; }
  /// Every ladder transition so far.
  const std::vector<AdmissionEvent>& log() const { return log_; }

 private:
  void SetLevel(std::size_t round, std::size_t depth, AdmissionLevel level);

  std::size_t defer_depth_;
  std::size_t shed_depth_;
  std::size_t recover_rounds_;
  AdmissionLevel level_ = AdmissionLevel::kOpen;
  std::size_t calm_streak_ = 0;
  std::size_t shed_count_ = 0;
  std::size_t deferred_rounds_ = 0;
  std::vector<AdmissionEvent> log_;
};

}  // namespace actg::serve

#endif  // ACTG_SERVE_ADMISSION_H
