#include "serve/request.h"

#include <sstream>
#include <utility>

#include "dvfs/policy.h"

namespace actg::serve {

util::Error TenantRequest::Validate() const {
  if (name.empty()) {
    return util::Error::Invalid("TenantRequest: name must be non-empty");
  }
  if (instances == 0) {
    return util::Error::Invalid("TenantRequest '" + name +
                                "': instances must be > 0");
  }
  if (!(threshold > 0.0) || threshold > 1.0) {
    return util::Error::Invalid("TenantRequest '" + name +
                                "': threshold must lie in (0, 1]");
  }
  if (window == 0) {
    return util::Error::Invalid("TenantRequest '" + name +
                                "': window must be > 0");
  }
  if (dvfs::FindPolicy(policy) == nullptr) {
    return util::Error::Invalid("TenantRequest '" + name +
                                "': unknown policy '" + policy + "'");
  }
  return {};
}

util::Error ServeConfig::Validate() const {
  if (cache_shards == 0) {
    return util::Error::Invalid("ServeConfig: shards must be > 0");
  }
  if (batch == 0) {
    return util::Error::Invalid("ServeConfig: batch must be > 0");
  }
  if (defer_depth == 0 || shed_depth == 0) {
    return util::Error::Invalid(
        "ServeConfig: defer_depth and shed_depth must be > 0");
  }
  if (defer_depth > shed_depth) {
    return util::Error::Invalid(
        "ServeConfig: defer_depth must be <= shed_depth");
  }
  if (recover_rounds == 0) {
    return util::Error::Invalid("ServeConfig: recover_rounds must be > 0");
  }
  for (double budget : budget_ms) {
    if (!(budget >= 0.0)) {
      return util::Error::Invalid("ServeConfig: budgets must be >= 0");
    }
  }
  return {};
}

util::Error FleetRequest::Validate() const {
  if (util::Error err = config.Validate(); !err.ok()) return err;
  if (tenants.empty()) {
    return util::Error::Invalid("FleetRequest: at least one tenant");
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (util::Error err = tenants[i].Validate(); !err.ok()) return err;
    for (std::size_t j = 0; j < i; ++j) {
      if (tenants[j].name == tenants[i].name) {
        return util::Error::Invalid("FleetRequest: duplicate tenant '" +
                                    tenants[i].name + "'");
      }
    }
  }
  return {};
}

namespace {

/// Line-oriented reader mirroring faults/plan.cpp: '#' starts a
/// comment, blank lines are skipped, failures carry the line number.
struct ServeReader {
  std::istream& is;
  int line_number = 0;

  [[noreturn]] void Fail(const std::string& message) const {
    throw InvalidArgument("serve line " + std::to_string(line_number) +
                          ": " + message);
  }

  bool NextTokens(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(is, line)) {
      ++line_number;
      if (const auto hash = line.find('#'); hash != std::string::npos) {
        line.erase(hash);
      }
      std::istringstream split(line);
      tokens.clear();
      for (std::string tok; split >> tok;) tokens.push_back(tok);
      if (!tokens.empty()) return true;
    }
    return false;
  }

  double Number(const std::string& token) const {
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &used);
    } catch (const std::exception&) {
      Fail("expected a number, got '" + token + "'");
    }
    if (used != token.size()) Fail("trailing garbage in '" + token + "'");
    return value;
  }

  std::size_t Count(const std::string& token) const {
    const double value = Number(token);
    if (value < 0.0 || value != static_cast<double>(
                                    static_cast<std::size_t>(value))) {
      Fail("expected a non-negative integer, got '" + token + "'");
    }
    return static_cast<std::size_t>(value);
  }

  SlaClass Sla(const std::string& token) const {
    const std::optional<SlaClass> sla = ParseSlaClass(token);
    if (!sla) Fail("unknown SLA class '" + token + "'");
    return *sla;
  }
};

TenantRequest ParseTenantLine(const ServeReader& reader,
                              const std::vector<std::string>& tokens) {
  if (tokens.size() < 5) {
    reader.Fail(
        "tenant needs <name> <sla> <workload> <instances> [key=value...]");
  }
  TenantRequest tenant;
  tenant.name = tokens[1];
  tenant.sla = reader.Sla(tokens[2]);
  const auto workload = apps::ParseTenantWorkload(tokens[3]);
  if (!workload) reader.Fail("unknown workload '" + tokens[3] + "'");
  tenant.workload = *workload;
  tenant.instances = reader.Count(tokens[4]);
  for (std::size_t i = 5; i < tokens.size(); ++i) {
    const std::string& option = tokens[i];
    const auto eq = option.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == option.size()) {
      reader.Fail("tenant option '" + option + "' is not key=value");
    }
    const std::string key = option.substr(0, eq);
    const std::string value = option.substr(eq + 1);
    if (key == "seed") {
      tenant.seed = static_cast<std::uint64_t>(reader.Count(value));
    } else if (key == "arrival") {
      tenant.arrival = reader.Count(value);
    } else if (key == "threshold") {
      tenant.threshold = reader.Number(value);
    } else if (key == "window") {
      tenant.window = reader.Count(value);
    } else if (key == "policy") {
      tenant.policy = value;
    } else {
      reader.Fail("unknown tenant option '" + key + "'");
    }
  }
  return tenant;
}

FleetRequest ParseServeFileImpl(std::istream& is) {
  ServeReader reader{is};
  std::vector<std::string> tokens;
  if (!reader.NextTokens(tokens) || tokens.size() != 2 ||
      tokens[0] != "serve" || tokens[1] != "v1") {
    reader.Fail("expected header 'serve v1'");
  }
  FleetRequest fleet;
  while (reader.NextTokens(tokens)) {
    const std::string& directive = tokens[0];
    if (directive == "end") {
      fleet.Validate().ThrowIfError();
      return fleet;
    }
    if (directive == "seed") {
      if (tokens.size() != 2) reader.Fail("seed needs <uint64>");
      fleet.config.seed = static_cast<std::uint64_t>(reader.Count(tokens[1]));
    } else if (directive == "shards") {
      if (tokens.size() != 2) reader.Fail("shards needs <count>");
      fleet.config.cache_shards = reader.Count(tokens[1]);
    } else if (directive == "shard_capacity") {
      if (tokens.size() != 2) reader.Fail("shard_capacity needs <count>");
      fleet.config.shard_capacity = reader.Count(tokens[1]);
    } else if (directive == "share_cache") {
      if (tokens.size() != 2) reader.Fail("share_cache needs <0|1>");
      const std::size_t flag = reader.Count(tokens[1]);
      if (flag > 1) reader.Fail("share_cache needs <0|1>");
      fleet.config.share_cache = flag == 1;
    } else if (directive == "batch") {
      if (tokens.size() != 2) reader.Fail("batch needs <count>");
      fleet.config.batch = reader.Count(tokens[1]);
    } else if (directive == "defer_depth") {
      if (tokens.size() != 2) reader.Fail("defer_depth needs <count>");
      fleet.config.defer_depth = reader.Count(tokens[1]);
    } else if (directive == "shed_depth") {
      if (tokens.size() != 2) reader.Fail("shed_depth needs <count>");
      fleet.config.shed_depth = reader.Count(tokens[1]);
    } else if (directive == "recover_rounds") {
      if (tokens.size() != 2) reader.Fail("recover_rounds needs <count>");
      fleet.config.recover_rounds = reader.Count(tokens[1]);
    } else if (directive == "budget") {
      if (tokens.size() != 3) reader.Fail("budget needs <sla> <ms>");
      const SlaClass sla = reader.Sla(tokens[1]);
      fleet.config.budget_ms[static_cast<std::size_t>(sla)] =
          reader.Number(tokens[2]);
    } else if (directive == "validate") {
      if (tokens.size() != 2) reader.Fail("validate needs <0|1>");
      const std::size_t flag = reader.Count(tokens[1]);
      if (flag > 1) reader.Fail("validate needs <0|1>");
      fleet.config.validate = flag == 1;
    } else if (directive == "tenant") {
      fleet.tenants.push_back(ParseTenantLine(reader, tokens));
    } else {
      reader.Fail("unknown directive '" + directive + "'");
    }
  }
  reader.Fail("missing 'end'");
}

}  // namespace

util::Expected<FleetRequest> ParseServeFile(std::istream& is) {
  try {
    return ParseServeFileImpl(is);
  } catch (const InvalidArgument& e) {
    return util::Error::Invalid(e.what());
  }
}

void WriteServeFile(std::ostream& os, const FleetRequest& fleet) {
  const ServeConfig& c = fleet.config;
  os << "serve v1\n";
  os << "seed " << c.seed << "\n";
  os << "shards " << c.cache_shards << "\n";
  os << "shard_capacity " << c.shard_capacity << "\n";
  os << "share_cache " << (c.share_cache ? 1 : 0) << "\n";
  os << "batch " << c.batch << "\n";
  os << "defer_depth " << c.defer_depth << "\n";
  os << "shed_depth " << c.shed_depth << "\n";
  os << "recover_rounds " << c.recover_rounds << "\n";
  for (std::size_t i = 0; i < kSlaClassCount; ++i) {
    if (c.budget_ms[i] > 0.0) {
      os << "budget " << SlaName(static_cast<SlaClass>(i)) << " "
         << c.budget_ms[i] << "\n";
    }
  }
  if (c.validate) os << "validate 1\n";
  for (const TenantRequest& t : fleet.tenants) {
    os << "tenant " << t.name << " " << SlaName(t.sla) << " "
       << apps::TenantWorkloadName(t.workload) << " " << t.instances;
    if (t.seed != 0) os << " seed=" << t.seed;
    if (t.arrival != 0) os << " arrival=" << t.arrival;
    os << " threshold=" << t.threshold << " window=" << t.window
       << " policy=" << t.policy;
    os << "\n";
  }
  os << "end\n";
}

FleetRequest SyntheticFleet(std::size_t tenants, std::size_t instances,
                            std::uint64_t seed) {
  constexpr apps::TenantWorkload kWorkloads[] = {
      apps::TenantWorkload::kMpeg, apps::TenantWorkload::kCruise,
      apps::TenantWorkload::kRandomForkJoin,
      apps::TenantWorkload::kRandomFlat};
  FleetRequest fleet;
  fleet.config.seed = seed;
  for (std::size_t i = 0; i < tenants; ++i) {
    TenantRequest tenant;
    tenant.name = "t" + std::to_string(i);
    // Cycle SLA classes 0,1,2,1 so the fleet is half throughput, one
    // quarter latency-critical and one quarter sheddable background.
    constexpr SlaClass kSlas[] = {
        SlaClass::kLatencyCritical, SlaClass::kThroughput,
        SlaClass::kBackground, SlaClass::kThroughput};
    tenant.sla = kSlas[i % 4];
    tenant.workload = kWorkloads[(i / 4) % 4];
    tenant.instances = instances;
    tenant.seed = seed + i;
    tenant.arrival = i / 4;
    fleet.tenants.push_back(std::move(tenant));
  }
  return fleet;
}

}  // namespace actg::serve
