/// \file request.h
/// The serve-v1 request file format and its in-memory form.
///
/// A request file describes one fleet workload for the actg_serve
/// daemon: the daemon-wide configuration (RNG root seed, cache
/// sharding, dispatch batching, admission-control thresholds,
/// per-class wall-clock budgets) followed by one `tenant` line per
/// application to admit. Replaying the same file at any --jobs count
/// produces a bit-identical fleet report: every tenant's trace is drawn
/// from a util::Random::Fork substream of the root seed, and all
/// admission decisions depend only on deterministic queue depths.
///
/// Like faults-v1, the format is line-oriented ('#' comments, blank
/// lines ignored), parses into util::Expected with "serve line N: ..."
/// diagnostics, and every parsed object Validates() up front.

#ifndef ACTG_SERVE_REQUEST_H
#define ACTG_SERVE_REQUEST_H

#include <array>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "apps/tenants.h"
#include "serve/sla.h"
#include "util/error.h"

namespace actg::serve {

/// One tenant's admission request.
struct TenantRequest {
  /// Unique tenant name (report row key).
  std::string name;
  SlaClass sla = SlaClass::kThroughput;
  apps::TenantWorkload workload = apps::TenantWorkload::kRandomForkJoin;
  /// CTG instances the tenant wants executed. Must be > 0.
  std::size_t instances = 0;
  /// Model seed (structure of the random categories, profile variant of
  /// the bundled apps). 0 means "derive from the tenant index".
  std::uint64_t seed = 0;
  /// Daemon round at which the request arrives.
  std::size_t arrival = 0;
  /// Adaptive-controller knobs (see adaptive::AdaptiveOptions).
  double threshold = 0.1;
  std::size_t window = 20;
  std::string policy = "online";

  /// Ok when the request is runnable: non-empty name, instances > 0,
  /// threshold in (0, 1], window > 0, registered policy.
  util::Error Validate() const;
};

/// Daemon-wide configuration.
struct ServeConfig {
  /// Root of every per-tenant Random::Fork substream.
  std::uint64_t seed = 1;
  /// Schedule-cache sharding (see runtime::ShardedScheduleCache).
  std::size_t cache_shards = 8;
  std::size_t shard_capacity = 64;
  /// When true every tenant keys the cache with tenant 0: explicit
  /// cross-tenant sharing (identical graphs/configs hit each other's
  /// entries; results are unchanged by the cache's exactness contract).
  /// When false (default) the key space is tenant-partitioned and a
  /// session shutdown purges exactly its own entries.
  bool share_cache = false;
  /// CTG instances dispatched per active tenant per round.
  std::size_t batch = 4;
  /// Admission ladder thresholds on the deterministic queue depth (the
  /// total backlog of admitted-but-unfinished instances): above
  /// defer_depth background dispatch pauses; above shed_depth newly
  /// arriving background tenants are rejected outright.
  std::size_t defer_depth = 256;
  std::size_t shed_depth = 512;
  /// Consecutive rounds the depth must stay at or below defer_depth
  /// before a degraded admission level steps back toward open.
  std::size_t recover_rounds = 2;
  /// Wall-clock per-slice latency budgets per SLA class, ms; 0 = none.
  /// Budget overruns are *reported* (metrics counter
  /// "serve.<sla>.budget_overruns" and the bench gate) but never feed
  /// back into scheduling decisions — wall-clock must not influence the
  /// deterministic fleet report.
  std::array<double, kSlaClassCount> budget_ms = {0.0, 0.0, 0.0};
  /// Debug oracle: validate every freshly computed schedule of every
  /// tenant (adaptive::AdaptiveOptions::validate_schedules).
  bool validate = false;

  /// Ok when batch, cache_shards and recover_rounds are positive and
  /// defer_depth <= shed_depth (both positive).
  util::Error Validate() const;
};

/// A parsed serve-v1 file: configuration + tenants in file order.
struct FleetRequest {
  ServeConfig config;
  std::vector<TenantRequest> tenants;

  /// Ok when the config and every tenant validate, at least one tenant
  /// is present and tenant names are unique.
  util::Error Validate() const;
};

/// Parses the line-oriented serve-v1 format:
///
///   serve v1
///   seed <uint64>                 # optional, default 1
///   shards <n>                    # optional, default 8
///   shard_capacity <n>            # optional, default 64
///   share_cache <0|1>             # optional, default 0
///   batch <n>                     # optional, default 4
///   defer_depth <n>               # optional, default 256
///   shed_depth <n>                # optional, default 512
///   recover_rounds <n>            # optional, default 2
///   budget <sla> <ms>             # optional, per-class wall budget
///   tenant <name> <sla> <workload> <instances> [key=value ...]
///   end
///
/// Tenant keys: seed=<uint64> arrival=<round> threshold=<t>
/// window=<len> policy=<name>. Workloads: mpeg, cruise, random1
/// (fork-join), random2 (flat). SLA classes: SLA0/latency_critical,
/// SLA1/throughput, SLA2/background. Malformed input is reported as a
/// util::Error with a "serve line N: ..." diagnostic.
util::Expected<FleetRequest> ParseServeFile(std::istream& is);

/// Serializes \p fleet in the ParseServeFile format (round-trips).
void WriteServeFile(std::ostream& os, const FleetRequest& fleet);

/// Deterministic synthetic fleet used by bench_serve and the
/// determinism tests: \p tenants tenants cycling through the workload
/// families and SLA classes, arrivals staggered every 4 tenants,
/// \p instances CTG instances each.
FleetRequest SyntheticFleet(std::size_t tenants, std::size_t instances,
                            std::uint64_t seed);

}  // namespace actg::serve

#endif  // ACTG_SERVE_REQUEST_H
