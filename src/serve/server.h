/// \file server.h
/// The multi-tenant scheduling-as-a-service dispatch loop.
///
/// A Server replays one FleetRequest: it admits tenants at their
/// arrival rounds (through the AdmissionController), drives every
/// admitted Session through the event API in fixed-size batches on a
/// runtime::Pool, and aggregates a FleetReport.
///
/// Determinism contract (the property the golden tests pin): the
/// report is byte-identical for any --jobs count, because
///  * each session's trace comes from its own Random::Fork substream of
///    the fleet seed (tenant index as the stream id);
///  * the pool only decides *where* a session's round slice runs, never
///    what it computes — sessions own their state and the schedule
///    cache is exact-match (a hit returns precisely what the miss would
///    have computed);
///  * admission decisions depend only on the deterministic queue depth,
///    updated serially at round end;
///  * wall-clock latencies are recorded per round slice into
///    index-addressed slots and surfaced only through the metrics
///    registry / bench JSON, never the report.

#ifndef ACTG_SERVE_SERVER_H
#define ACTG_SERVE_SERVER_H

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "report/fleet_stats.h"
#include "runtime/metrics.h"
#include "runtime/pool.h"
#include "runtime/schedule_cache.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "serve/session.h"
#include "serve/sla.h"

namespace actg::serve {

/// Final state of one tenant in the fleet report.
struct TenantReport {
  std::string name;
  SlaClass sla = SlaClass::kThroughput;
  apps::TenantWorkload workload = apps::TenantWorkload::kRandomForkJoin;
  /// True when admission rejected the tenant (SLA2 under shed); every
  /// numeric field below stays zero.
  bool shed = false;
  /// True when the watchdog deadlined the tenant's session mid-fleet
  /// (ServerOptions::session_deadline_ms); the numeric fields hold the
  /// partial progress it made before quarantine.
  bool quarantined = false;
  std::size_t requested = 0;
  std::size_t completed = 0;
  std::size_t deadline_misses = 0;
  std::size_t reschedules = 0;
  double energy_mj = 0.0;
  double max_makespan_ms = 0.0;
  std::size_t arrival_round = 0;
  std::size_t finish_round = 0;
};

/// Per-SLA-class aggregate of the deterministic report. The shared
/// instance/miss/energy fields and MissRate() come from
/// report::FleetStats (the vocabulary the simulator and the campaign
/// runner also speak); this report adds the tenant counts only the
/// daemon tracks.
struct SlaReport : report::FleetStats {
  std::size_t tenants = 0;
  std::size_t shed_tenants = 0;
  std::size_t quarantined_tenants = 0;
};

/// The deterministic outcome of a fleet replay.
struct FleetReport {
  std::vector<TenantReport> tenants;  ///< file order
  std::array<SlaReport, kSlaClassCount> sla;
  std::size_t rounds = 0;
  std::size_t shed_tenants = 0;
  std::size_t deferred_rounds = 0;
  /// Sessions the watchdog deadlined (0 whenever deadlines are off).
  std::size_t quarantined_tenants = 0;
  std::vector<AdmissionEvent> admission_log;

  /// Renders the report as deterministic text (the golden artifact the
  /// --jobs 1 vs --jobs 8 tests byte-compare). Quarantine annotations
  /// appear only when quarantined_tenants > 0, so watchdog-off reports
  /// stay byte-identical to the pre-watchdog format.
  void Write(std::ostream& os) const;
};

/// Wall-clock percentile summary of one SLA class (not deterministic;
/// reported via metrics/JSON only). One sample = one dispatch-round
/// slice. The struct is the shared report::LatencyStats so serve slice
/// latencies and campaign reschedule latencies carry the same fields.
using LatencyStats = report::LatencyStats;

struct ServerOptions {
  /// Pool concurrency (--jobs); 1 = serial.
  std::size_t jobs = 1;
  /// Metrics registry for latency distributions, per-class counters and
  /// the controllers' stage timers; null = a server-private registry
  /// (the daemon never pollutes Global() by default).
  runtime::Metrics* metrics = nullptr;
  /// Cooperative watchdog deadline for one session's dispatch-round
  /// slice, wall-clock milliseconds; 0 = off (the default — armed
  /// deadlines make the report timing-dependent, see
  /// runtime/watchdog.h). A session whose slice outlives the deadline
  /// throws DeadlineExceeded at its next event boundary and is
  /// quarantined instead of stalling the round.
  double session_deadline_ms = 0.0;
};

class Server {
 public:
  /// Validates \p fleet up front (throws InvalidArgument when broken).
  Server(FleetRequest fleet, ServerOptions options = {});

  /// Replays the whole fleet to completion and returns the report.
  /// Valid once.
  const FleetReport& Run();

  const FleetReport& report() const { return report_; }
  const AdmissionController& admission() const { return admission_; }
  runtime::ShardedScheduleCache& cache() { return *cache_; }
  runtime::Metrics& metrics() { return *metrics_; }

  /// Wall-clock latency percentiles of \p sla over the completed run.
  LatencyStats Latency(SlaClass sla) const;

  /// The live sessions in tenant-file order; a shed tenant's slot is
  /// null. Sessions outlive Run() so oracle tests can re-validate
  /// sampled instances (Session::model()/controller()/assignment()).
  const std::vector<std::unique_ptr<Session>>& sessions() const {
    return sessions_;
  }

 private:
  /// Executes one dispatch round; returns the end-of-round queue depth.
  std::size_t RunRound(std::size_t round,
                       std::vector<Session*>& dispatch);
  void AdmitArrivals(std::size_t round);
  void FinishReport();

  FleetRequest fleet_;
  ServerOptions options_;
  std::unique_ptr<runtime::Metrics> own_metrics_;
  runtime::Metrics* metrics_;
  std::unique_ptr<runtime::ShardedScheduleCache> cache_;
  runtime::Pool pool_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<Session>> sessions_;  ///< null when shed
  std::vector<bool> arrived_;
  std::vector<bool> quarantined_;  ///< retired by the watchdog
  std::vector<std::size_t> finish_round_;
  std::array<std::vector<double>, kSlaClassCount> latency_ms_;
  std::array<std::size_t, kSlaClassCount> budget_overruns_ = {0, 0, 0};
  FleetReport report_;
  bool ran_ = false;
};

/// Convenience: parse + replay \p is with \p jobs workers, writing the
/// deterministic report to \p report_os. Returns the server (report,
/// latencies, cache stats) for callers that want more than the text.
util::Expected<std::unique_ptr<Server>> RunServeFile(std::istream& is,
                                                     std::size_t jobs,
                                                     std::ostream& report_os);

/// RunServeFile with full server options (the actg_serve front end's
/// entry point — --session-deadline arms the watchdog).
util::Expected<std::unique_ptr<Server>> RunServeFile(std::istream& is,
                                                     ServerOptions options,
                                                     std::ostream& report_os);

}  // namespace actg::serve

#endif  // ACTG_SERVE_SERVER_H
