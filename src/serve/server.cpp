#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "runtime/watchdog.h"
#include "util/error.h"

namespace actg::serve {

namespace {

/// Tenant id folded into cache keys: file index + 1, so id 0 keeps its
/// "shared key space" meaning for the share_cache mode.
std::uint64_t TenantId(std::size_t index) {
  return static_cast<std::uint64_t>(index) + 1;
}

double NearestRank(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(q * static_cast<double>(samples.size()));
  const std::size_t index =
      rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return samples[std::min(index, samples.size() - 1)];
}

}  // namespace

Server::Server(FleetRequest fleet, ServerOptions options)
    : fleet_(std::move(fleet)),
      options_(options),
      own_metrics_(options.metrics == nullptr
                       ? std::make_unique<runtime::Metrics>()
                       : nullptr),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : own_metrics_.get()),
      pool_(options.jobs == 0 ? 1 : options.jobs),
      admission_(fleet_.config) {
  fleet_.Validate().ThrowIfError();
  runtime::ShardedScheduleCacheOptions cache_options;
  cache_options.shards = fleet_.config.cache_shards;
  cache_options.shard_capacity = fleet_.config.shard_capacity;
  cache_ = std::make_unique<runtime::ShardedScheduleCache>(cache_options,
                                                           metrics_);
  sessions_.resize(fleet_.tenants.size());
  arrived_.resize(fleet_.tenants.size(), false);
  quarantined_.resize(fleet_.tenants.size(), false);
  finish_round_.resize(fleet_.tenants.size(), 0);
}

void Server::AdmitArrivals(std::size_t round) {
  const util::Random root(fleet_.config.seed);
  for (std::size_t i = 0; i < fleet_.tenants.size(); ++i) {
    if (arrived_[i] || fleet_.tenants[i].arrival > round) continue;
    arrived_[i] = true;
    TenantRequest request = fleet_.tenants[i];
    if (!admission_.Admit(request.sla)) continue;  // shed: slot stays null
    if (request.seed == 0) request.seed = TenantId(i);
    SessionOptions session_options;
    const std::uint64_t tenant =
        fleet_.config.share_cache ? 0 : TenantId(i);
    session_options.cache =
        runtime::CacheBinding{&cache_->ShardFor(tenant), tenant};
    session_options.metrics = metrics_;
    session_options.validate = fleet_.config.validate;
    sessions_[i] = std::make_unique<Session>(
        std::move(request), session_options,
        root.Fork(static_cast<std::uint64_t>(i)));
  }
}

std::size_t Server::RunRound(std::size_t round,
                             std::vector<Session*>& dispatch) {
  std::vector<double> slice_ms(dispatch.size(), 0.0);
  const std::size_t batch = fleet_.config.batch;
  pool_.ParallelFor(
      dispatch.size(),
      [&](std::size_t i) {
        const auto begin = std::chrono::steady_clock::now();
        Session& session = *dispatch[i];
        try {
          if (session.state() == SessionState::kAdmitted) session.NewApp();
          const std::size_t n = std::min(batch, session.remaining());
          for (std::size_t k = 0; k < n; ++k) {
            session.NewInstance();
            session.InstanceComplete();
          }
          session.PeriodicCheck();
        } catch (const runtime::DeadlineExceeded&) {
          // The slice outlived its watchdog deadline: quarantine the
          // session at this event boundary and keep the round moving.
          // Its partial summary stays readable for the fleet report.
          session.Quarantine();
        }
        const auto end = std::chrono::steady_clock::now();
        slice_ms[i] =
            std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                 begin)
                .count() *
            1e-6;
      },
      options_.session_deadline_ms);

  // Serial post-processing: wall-clock observations (index-addressed,
  // so recording order is dispatch order, not completion order).
  for (std::size_t i = 0; i < dispatch.size(); ++i) {
    const SlaClass sla = dispatch[i]->sla();
    const auto cls = static_cast<std::size_t>(sla);
    latency_ms_[cls].push_back(slice_ms[i]);
    metrics_->Observe(
        "serve." + std::string(SlaLabel(sla)) + ".slice_latency_ms",
        slice_ms[i]);
    const double budget = fleet_.config.budget_ms[cls];
    if (budget > 0.0 && slice_ms[i] > budget) {
      ++budget_overruns_[cls];
      metrics_->Increment("serve." + std::string(SlaLabel(sla)) +
                          ".budget_overruns");
    }
  }

  // Retire finished sessions and drop their cache partition.
  std::size_t depth = 0;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session* session = sessions_[i].get();
    if (session == nullptr) continue;
    if (session->state() == SessionState::kQuarantined) {
      // Watchdog-deadlined: retire it here so its unfinished backlog
      // never counts toward the queue depth (a quarantined tenant must
      // not hold the fleet open) and it is never dispatched again.
      if (!quarantined_[i]) {
        quarantined_[i] = true;
        finish_round_[i] = round;
        if (!fleet_.config.share_cache) cache_->Purge(TenantId(i));
      }
      continue;
    }
    if (session->state() == SessionState::kDone) {
      finish_round_[i] = round;
      session->Shutdown();
      if (!fleet_.config.share_cache) cache_->Purge(TenantId(i));
    }
    depth += session->remaining();
  }
  return depth;
}

const FleetReport& Server::Run() {
  ACTG_CHECK(!ran_, "Server::Run is valid once");
  ran_ = true;

  std::size_t max_arrival = 0;
  for (const TenantRequest& t : fleet_.tenants) {
    max_arrival = std::max(max_arrival, t.arrival);
  }

  std::size_t round = 0;
  for (;; ++round) {
    AdmitArrivals(round);

    // Priority dispatch: SLA0 first, then SLA1, then SLA2. Background
    // is paused while the ladder is degraded — unless nothing of
    // higher priority wants the round (work-conserving rule; without
    // it a fleet whose remaining backlog is purely background could
    // hold the depth above defer_depth forever and never drain).
    std::vector<Session*> dispatch;
    std::size_t foreground = 0;
    for (std::size_t cls = 0; cls < kSlaClassCount; ++cls) {
      const SlaClass sla = static_cast<SlaClass>(cls);
      for (const std::unique_ptr<Session>& session : sessions_) {
        if (session == nullptr || session->sla() != sla) continue;
        if (session->state() != SessionState::kAdmitted &&
            session->state() != SessionState::kActive) {
          continue;
        }
        if (sla == SlaClass::kBackground &&
            !admission_.DispatchAllowed(sla) && foreground > 0) {
          continue;
        }
        dispatch.push_back(session.get());
        if (sla != SlaClass::kBackground) ++foreground;
      }
    }

    const std::size_t depth = RunRound(round, dispatch);
    admission_.Update(round, depth);
    if (depth == 0 && round >= max_arrival) break;
  }

  report_.rounds = round + 1;
  FinishReport();
  return report_;
}

void Server::FinishReport() {
  for (std::size_t i = 0; i < fleet_.tenants.size(); ++i) {
    const TenantRequest& request = fleet_.tenants[i];
    TenantReport row;
    row.name = request.name;
    row.sla = request.sla;
    row.workload = request.workload;
    row.requested = request.instances;
    row.arrival_round = request.arrival;
    const Session* session = sessions_[i].get();
    if (session == nullptr) {
      row.shed = true;
    } else {
      const sim::RunSummary& summary = session->summary();
      row.quarantined = quarantined_[i];
      row.completed = summary.instances;
      row.deadline_misses = summary.deadline_misses;
      row.energy_mj = summary.total_energy_mj;
      row.max_makespan_ms = summary.max_makespan_ms;
      // A session deadlined before NewApp has no controller yet.
      row.reschedules = session->app_built()
                            ? session->controller().reschedule_count()
                            : 0;
      row.finish_round = finish_round_[i];
    }

    SlaReport& agg = report_.sla[static_cast<std::size_t>(row.sla)];
    ++agg.tenants;
    if (row.shed) ++agg.shed_tenants;
    if (row.quarantined) {
      ++agg.quarantined_tenants;
      ++report_.quarantined_tenants;
    }
    agg.instances += row.completed;
    agg.deadline_misses += row.deadline_misses;
    agg.total_energy_mj += row.energy_mj;
    if (row.max_makespan_ms > agg.max_makespan_ms) {
      agg.max_makespan_ms = row.max_makespan_ms;
    }
    agg.reschedules += row.reschedules;
    report_.tenants.push_back(std::move(row));
  }
  report_.shed_tenants = admission_.shed_count();
  report_.deferred_rounds = admission_.deferred_rounds();
  report_.admission_log = admission_.log();

  // Deterministic per-class counters (the latency distributions above
  // are wall-clock and deliberately stay out of the report).
  for (std::size_t cls = 0; cls < kSlaClassCount; ++cls) {
    const std::string label(SlaLabel(static_cast<SlaClass>(cls)));
    metrics_->Increment("serve." + label + ".instances",
                        report_.sla[cls].instances);
    metrics_->Increment("serve." + label + ".deadline_misses",
                        report_.sla[cls].deadline_misses);
    metrics_->Increment("serve." + label + ".shed_tenants",
                        report_.sla[cls].shed_tenants);
    if (report_.sla[cls].quarantined_tenants > 0) {
      metrics_->Increment("serve." + label + ".quarantined_tenants",
                          report_.sla[cls].quarantined_tenants);
    }
  }
}

LatencyStats Server::Latency(SlaClass sla) const {
  const auto& samples = latency_ms_[static_cast<std::size_t>(sla)];
  LatencyStats stats;
  stats.samples = samples.size();
  stats.p50_ms = NearestRank(samples, 0.5);
  stats.p99_ms = NearestRank(samples, 0.99);
  stats.max_ms = samples.empty()
                     ? 0.0
                     : *std::max_element(samples.begin(), samples.end());
  stats.budget_overruns =
      budget_overruns_[static_cast<std::size_t>(sla)];
  return stats;
}

void FleetReport::Write(std::ostream& os) const {
  os << "== serve fleet report ==\n";
  os << "tenants " << tenants.size() << " rounds " << rounds << " shed "
     << shed_tenants << " deferred_rounds " << deferred_rounds;
  // Quarantine annotations only when the watchdog actually fired, so a
  // watchdog-off report stays byte-identical to the legacy format.
  if (quarantined_tenants > 0) {
    os << " quarantined " << quarantined_tenants;
  }
  os << "\n";
  os << "-- sla --\n";
  for (std::size_t cls = 0; cls < kSlaClassCount; ++cls) {
    const SlaReport& agg = sla[cls];
    os << SlaName(static_cast<SlaClass>(cls)) << " tenants "
       << agg.tenants << " shed " << agg.shed_tenants << " instances "
       << agg.instances << " misses " << agg.deadline_misses
       << " energy_mj " << agg.total_energy_mj;
    if (agg.quarantined_tenants > 0) {
      os << " quarantined " << agg.quarantined_tenants;
    }
    os << "\n";
  }
  os << "-- admission --\n";
  for (const AdmissionEvent& event : admission_log) {
    os << "round " << event.round << " depth " << event.depth
       << " level " << AdmissionLevelName(event.level) << "\n";
  }
  os << "-- tenants --\n";
  for (const TenantReport& row : tenants) {
    os << row.name << " " << SlaName(row.sla) << " "
       << apps::TenantWorkloadName(row.workload);
    if (row.shed) {
      os << " shed\n";
      continue;
    }
    os << " completed " << row.completed << "/" << row.requested
       << " misses " << row.deadline_misses << " reschedules "
       << row.reschedules << " energy_mj " << row.energy_mj
       << " max_makespan_ms " << row.max_makespan_ms << " rounds "
       << row.arrival_round << ".." << row.finish_round;
    if (row.quarantined) os << " quarantined";
    os << "\n";
  }
  os << "== end ==\n";
}

util::Expected<std::unique_ptr<Server>> RunServeFile(
    std::istream& is, std::size_t jobs, std::ostream& report_os) {
  ServerOptions options;
  options.jobs = jobs;
  return RunServeFile(is, options, report_os);
}

util::Expected<std::unique_ptr<Server>> RunServeFile(
    std::istream& is, ServerOptions options, std::ostream& report_os) {
  util::Expected<FleetRequest> fleet = ParseServeFile(is);
  if (!fleet.ok()) return fleet.error();
  try {
    auto server = std::make_unique<Server>(std::move(fleet).value(),
                                           options);
    server->Run().Write(report_os);
    return server;
  } catch (const InvalidArgument& e) {
    return util::Error::Invalid(e.what());
  }
}

}  // namespace actg::serve
