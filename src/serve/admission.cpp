#include "serve/admission.h"

#include "util/error.h"

namespace actg::serve {

const char* AdmissionLevelName(AdmissionLevel level) {
  switch (level) {
    case AdmissionLevel::kOpen:
      return "open";
    case AdmissionLevel::kDefer:
      return "defer";
    case AdmissionLevel::kShed:
      return "shed";
  }
  return "?";
}

AdmissionController::AdmissionController(const ServeConfig& config)
    : defer_depth_(config.defer_depth),
      shed_depth_(config.shed_depth),
      recover_rounds_(config.recover_rounds) {
  config.Validate().ThrowIfError();
}

void AdmissionController::SetLevel(std::size_t round, std::size_t depth,
                                   AdmissionLevel level) {
  if (level == level_) return;
  level_ = level;
  log_.push_back({round, depth, level});
}

void AdmissionController::Update(std::size_t round, std::size_t depth) {
  if (depth > shed_depth_) {
    calm_streak_ = 0;
    SetLevel(round, depth, AdmissionLevel::kShed);
  } else if (depth > defer_depth_) {
    calm_streak_ = 0;
    // Escalate to defer; an active shed rung only steps down through
    // the calm-streak hysteresis below.
    if (level_ == AdmissionLevel::kOpen) {
      SetLevel(round, depth, AdmissionLevel::kDefer);
    }
  } else {
    ++calm_streak_;
    if (calm_streak_ >= recover_rounds_ &&
        level_ != AdmissionLevel::kOpen) {
      calm_streak_ = 0;
      SetLevel(round, depth,
               level_ == AdmissionLevel::kShed ? AdmissionLevel::kDefer
                                               : AdmissionLevel::kOpen);
    }
  }
  if (level_ != AdmissionLevel::kOpen) ++deferred_rounds_;
}

bool AdmissionController::Admit(SlaClass sla) {
  if (sla != SlaClass::kBackground) return true;
  if (level_ == AdmissionLevel::kShed) {
    ++shed_count_;
    return false;
  }
  return true;
}

bool AdmissionController::DispatchAllowed(SlaClass sla) const {
  if (sla != SlaClass::kBackground) return true;
  return level_ == AdmissionLevel::kOpen;
}

}  // namespace actg::serve
