#include "serve/sla.h"

namespace actg::serve {

std::string_view SlaName(SlaClass sla) {
  switch (sla) {
    case SlaClass::kLatencyCritical:
      return "SLA0";
    case SlaClass::kThroughput:
      return "SLA1";
    case SlaClass::kBackground:
      return "SLA2";
  }
  return "?";
}

std::string_view SlaLabel(SlaClass sla) {
  switch (sla) {
    case SlaClass::kLatencyCritical:
      return "latency_critical";
    case SlaClass::kThroughput:
      return "throughput";
    case SlaClass::kBackground:
      return "background";
  }
  return "?";
}

std::optional<SlaClass> ParseSlaClass(std::string_view token) {
  for (std::size_t i = 0; i < kSlaClassCount; ++i) {
    const SlaClass sla = static_cast<SlaClass>(i);
    if (token == SlaName(sla) || token == SlaLabel(sla)) return sla;
  }
  return std::nullopt;
}

std::optional<SlaClass> SlaFromIndex(std::size_t index) {
  if (index >= kSlaClassCount) return std::nullopt;
  return static_cast<SlaClass>(index);
}

}  // namespace actg::serve
