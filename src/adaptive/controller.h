/// \file controller.h
/// The adaptive scheduling and DVFS framework (paper Section III.B).
///
/// The controller executes CTG instances against the current schedule,
/// shifts every observed branch decision into a sliding window, and —
/// whenever any fork's windowed probability differs from the probability
/// the current schedule was built with by more than the threshold —
/// re-runs the online scheduling (modified DLS) and DVFS (online
/// stretching heuristic) with the new probabilities. "All the tasks will
/// be executed with their newly evaluated speed until the next threshold
/// crossing occurs."

#ifndef ACTG_ADAPTIVE_CONTROLLER_H
#define ACTG_ADAPTIVE_CONTROLLER_H

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/rescheduler.h"
#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "faults/injector.h"
#include "dvfs/stretch.h"
#include "obs/trace.h"
#include "profiling/window.h"
#include "runtime/schedule_cache.h"
#include "sched/dls.h"
#include "sim/executor.h"
#include "trace/trace.h"
#include "util/error.h"

namespace actg::adaptive {

/// Graceful-degradation ladder configuration. Disabled by default: a
/// controller without an explicit opt-in behaves exactly as before,
/// even on runs that happen to miss deadlines.
///
/// The ladder escalates deterministically on detected trouble:
///   normal --miss--> panic     (clamp the running schedule to nominal
///                               voltage; no reschedule yet)
///   panic --miss burst--> fallback (out-of-band reschedule excluding
///                               the PEs seen failing, still at nominal
///                               voltage; bounded retries, exponential
///                               backoff between them)
///   any --clean streak--> normal (restore the stretched schedule)
struct DegradeOptions {
  /// Master switch; when false every other knob is ignored.
  bool enabled = false;
  /// Number of deadline misses within burst_window instances that
  /// escalates panic to an out-of-band reschedule.
  std::size_t miss_burst = 2;
  /// Length of the sliding miss-burst window, instances.
  std::size_t burst_window = 8;
  /// Consecutive clean (deadline-met) instances required to de-escalate
  /// back to normal operation.
  std::size_t panic_instances = 16;
  /// Maximum out-of-band reschedules per degraded episode; 0 keeps the
  /// ladder at the panic rung.
  std::size_t max_reschedule_retries = 3;
  /// Instances to wait before the first out-of-band retry may repeat;
  /// doubles after every retry (exponential backoff).
  std::size_t backoff_initial = 8;

  /// Ok when the knobs are usable: with enabled set, miss_burst,
  /// burst_window, panic_instances and backoff_initial must be > 0.
  util::Error Validate() const;
};

/// Rung of the degradation ladder a controller currently operates on.
enum class DegradeLevel { kNormal = 0, kPanic = 1, kFallback = 2 };

/// One ladder transition, recorded in order (see
/// AdaptiveController::degrade_log()).
struct DegradeEvent {
  /// Instance index (instances processed before this one) at which the
  /// transition fired.
  std::uint64_t instance = 0;
  /// The rung entered.
  DegradeLevel level = DegradeLevel::kNormal;
  /// Why: "miss", "miss_burst" or "clean_streak".
  std::string reason;
};

/// Knobs of the adaptive framework.
struct AdaptiveOptions {
  /// Sliding window length L (paper: 20 for MPEG/cruise/random CTGs,
  /// 50 in the Fig. 4 illustration).
  std::size_t window_length = 20;
  /// Threshold on the windowed-vs-in-use probability difference that
  /// triggers re-scheduling (paper: 0.1 and 0.5). The distance is a
  /// maximum of absolute probability differences and therefore never
  /// exceeds 1.0, so threshold == 1.0 is a supported never-adapt
  /// sentinel: the controller degenerates to the static online
  /// algorithm (profiling still runs, reschedules never fire).
  double threshold = 0.1;
  /// Scheduler configuration (the modified DLS by default).
  sched::DlsOptions dls;
  /// Stretcher configuration.
  dvfs::StretchOptions stretch;
  /// Stretch policy applied after every (re)scheduling pass, resolved
  /// through the dvfs::Policy registry (paper: the online heuristic).
  std::string policy = "online";
  /// Explicit trace session for the controller's spans and timeline
  /// rows; when null, the process-wide obs::TraceSession::Current() is
  /// consulted per instance (so bench --trace reaches controllers built
  /// without explicit wiring).
  obs::TraceSession* trace = nullptr;
  /// Optional schedule memoization: the cache to consult and the tenant
  /// id its keys carry, in one value (see runtime::CacheBinding). When
  /// bound, every online scheduling + DVFS call first consults the
  /// exact tier (tier-1 probability match), so revisited operating
  /// points become O(1) lookups without changing any result; computed
  /// schedules are inserted back, and in incremental reschedule mode
  /// the tier-2 near-index additionally serves warm-start seeds. The
  /// cache may be shared between controllers (it is thread-safe and
  /// keyed by graph/platform/config fingerprints, the policy name and
  /// the binding's tenant) and must outlive the controller.
  /// Multi-tenant servers typically bind a ShardedScheduleCache shard:
  /// CacheBinding{&sharded.ShardFor(tenant), tenant}.
  runtime::CacheBinding cache;
  /// Reschedule ladder configuration: full recompute (default),
  /// warm-start incremental DLS, or precomputed-table selection (see
  /// adaptive::RescheduleOptions / the Rescheduler facade).
  RescheduleOptions reschedule;
  /// Metrics registry the controller reports its stage timers and
  /// counters into; nullptr (the default) means the process-wide
  /// runtime::Metrics::Global(). A multi-tenant host passes its own
  /// registry so thousands of coexisting controllers do not funnel
  /// through — or pollute — process-global state.
  runtime::Metrics* metrics = nullptr;
  /// Graceful-degradation ladder (off by default; see DegradeOptions).
  DegradeOptions degrade;
  /// Debug oracle: when set, every freshly computed schedule (initial,
  /// threshold-triggered and degraded reschedules alike) is passed
  /// through check::Validate with the reschedule's PE mask and speed
  /// floor as expectations, so an invariant break surfaces at the
  /// reschedule that introduced it instead of in a downstream result.
  /// Cached schedules are not re-validated (they were checked when
  /// computed). Costs one validator pass per reschedule; off by
  /// default.
  bool validate_schedules = false;

  /// Ok when every knob is usable: window_length must be positive,
  /// threshold must lie in (0, 1], the policy must be registered, and
  /// the nested dls/stretch/degrade options must validate. The
  /// controller rejects invalid options up front (constructor throws)
  /// instead of failing mid-run.
  util::Error Validate() const;
};

/// Runtime manager owning the current schedule, the profiler and the
/// in-use branch probabilities. The referenced graph/analysis/platform
/// must outlive the controller.
///
/// Reentrancy contract: a controller owns all of its mutable state (the
/// profiler, the reschedule engine, the ladder) — it holds no hidden
/// globals, so thousands of instances coexist in one process and
/// distinct instances may run on distinct threads concurrently. The
/// only process-wide services it touches are explicitly injectable:
/// the metrics registry (options.metrics, default Global()), the trace
/// session (options.trace, default Current()) and the schedule cache
/// (options.cache, default unbound); the dvfs::Policy registry is
/// resolved once at construction and policies themselves are stateless.
/// A single controller instance is NOT thread-safe — drive each one
/// from one thread at a time.
class AdaptiveController {
 public:
  AdaptiveController(const ctg::Ctg& graph,
                     const ctg::ActivationAnalysis& analysis,
                     const arch::Platform& platform,
                     ctg::BranchProbabilities initial_probs,
                     AdaptiveOptions options = {});

  /// Executes one instance with the current schedule, observes the
  /// branch decisions, and re-schedules if a threshold crossing
  /// occurred. Returns the instance's execution result.
  ///
  /// \p faults, when given, applies fault-injection effects to the
  /// execution (see sim::ExecuteInstance) and feeds the degradation
  /// ladder the instance's failed-PE set. With the ladder enabled
  /// (options.degrade.enabled) a deadline miss escalates per
  /// DegradeOptions; while degraded, the normal threshold adaptation
  /// is suspended until the ladder recovers.
  sim::InstanceResult ProcessInstance(
      const ctg::BranchAssignment& assignment,
      const faults::InstanceFaults* faults = nullptr);

  /// Number of online scheduling + DVFS invocations triggered so far
  /// (the "# of calls" columns of Tables 2, 4 and 5); the initial
  /// schedule construction is not counted. Out-of-band ladder
  /// reschedules are counted separately (oob_reschedule_count()) so the
  /// paper metric stays comparable under injection.
  std::size_t reschedule_count() const { return reschedule_count_; }

  /// Current rung of the degradation ladder (kNormal when disabled).
  DegradeLevel degrade_level() const { return level_; }

  /// Every ladder transition so far, in firing order.
  const std::vector<DegradeEvent>& degrade_log() const {
    return degrade_log_;
  }

  /// Ladder escalations (panic entries + out-of-band reschedules).
  std::size_t escalation_count() const { return escalation_count_; }

  /// Out-of-band reschedules the ladder performed.
  std::size_t oob_reschedule_count() const { return oob_reschedule_count_; }

  /// Recoveries back to normal operation.
  std::size_t recovery_count() const { return recovery_count_; }

  /// The schedule instances currently execute with.
  const sched::Schedule& current_schedule() const { return schedule_; }

  /// The branch probabilities the current schedule was built with.
  const ctg::BranchProbabilities& in_use_probabilities() const {
    return in_use_;
  }

  /// The profiler state (for figures like Fig. 4).
  const profiling::SlidingWindowProfiler& profiler() const {
    return profiler_;
  }

  /// The reschedule facade this controller drives: tier counts
  /// (exact / warm / table / full outcomes) and fingerprints.
  const Rescheduler& rescheduler() const { return *rescheduler_; }

 private:
  /// One reschedule through the facade (see adaptive::Rescheduler): the
  /// request carries the PE mask and speed floor, the facade owns the
  /// cache consultation and the tier ladder. Returns the schedule only;
  /// tier accounting lives in the facade.
  sched::Schedule Reschedule(const RescheduleRequest& request);
  /// The session this controller records into (explicit or current).
  obs::TraceSession* TraceTarget() const;
  /// The metrics registry this controller reports into (explicit or
  /// the process-wide Global()).
  runtime::Metrics& MetricsTarget() const;
  void RecordTimeline(obs::TraceSession& trace,
                      const ctg::BranchAssignment& assignment) const;
  /// Applies one instance's outcome to the degradation ladder. Returns
  /// true when the ladder changed the running schedule (the normal
  /// threshold adaptation then skips this instance).
  bool RunLadder(const sim::InstanceResult& result,
                 const faults::InstanceFaults* faults,
                 obs::TraceSession* trace);
  void LogDegrade(obs::TraceSession* trace, DegradeLevel level,
                  const char* reason);

  const ctg::Ctg* graph_;
  const ctg::ActivationAnalysis* analysis_;
  const arch::Platform* platform_;
  AdaptiveOptions options_;
  ctg::BranchProbabilities in_use_;
  profiling::SlidingWindowProfiler profiler_;
  // The reschedule facade: owns the cache keying, the tier ladder and
  // the reusable reschedule workspace — must precede unit_fingerprint_
  // (derived from its fingerprints) and schedule_ (whose initializer
  // runs Reschedule()). unique_ptr so the controller stays movable.
  std::unique_ptr<Rescheduler> rescheduler_;
  std::uint64_t unit_fingerprint_ = 0;
  std::uint64_t instances_processed_ = 0;
  sched::Schedule schedule_;
  std::size_t reschedule_count_ = 0;

  // Degradation-ladder state (inert while options_.degrade.enabled is
  // false).
  DegradeLevel level_ = DegradeLevel::kNormal;
  /// Speed floor the ladder currently imposes on reschedules (1.0 while
  /// degraded, 0 = unconstrained).
  double speed_floor_ = 0.0;
  /// PEs excluded from out-of-band reschedules (failed-PE sightings
  /// accumulate per degraded episode, reset on recovery).
  arch::PeMask excluded_pes_;
  /// Instance indices of recent deadline misses (pruned to the burst
  /// window).
  std::vector<std::uint64_t> recent_misses_;
  std::size_t clean_streak_ = 0;
  std::size_t retries_used_ = 0;
  std::uint64_t next_retry_instance_ = 0;
  std::vector<DegradeEvent> degrade_log_;
  std::size_t escalation_count_ = 0;
  std::size_t oob_reschedule_count_ = 0;
  std::size_t recovery_count_ = 0;
};

/// Runs a whole trace through an adaptive controller and aggregates the
/// results (the adaptive rows/series of Fig. 5 and Tables 2-5).
sim::RunSummary RunAdaptive(AdaptiveController& controller,
                            const trace::BranchTrace& trace);

/// RunAdaptive under fault injection: each instance runs with
/// \p injector's effects for its index, after branch-profile drift is
/// applied to a copy of the traced assignment. With an empty plan the
/// summary equals RunAdaptive's bit for bit.
sim::RunSummary RunAdaptiveWithFaults(AdaptiveController& controller,
                                      const trace::BranchTrace& trace,
                                      const faults::Injector& injector);

}  // namespace actg::adaptive

#endif  // ACTG_ADAPTIVE_CONTROLLER_H
