/// \file controller.h
/// The adaptive scheduling and DVFS framework (paper Section III.B).
///
/// The controller executes CTG instances against the current schedule,
/// shifts every observed branch decision into a sliding window, and —
/// whenever any fork's windowed probability differs from the probability
/// the current schedule was built with by more than the threshold —
/// re-runs the online scheduling (modified DLS) and DVFS (online
/// stretching heuristic) with the new probabilities. "All the tasks will
/// be executed with their newly evaluated speed until the next threshold
/// crossing occurs."

#ifndef ACTG_ADAPTIVE_CONTROLLER_H
#define ACTG_ADAPTIVE_CONTROLLER_H

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "dvfs/path_engine.h"
#include "dvfs/policy.h"
#include "dvfs/stretch.h"
#include "obs/trace.h"
#include "profiling/window.h"
#include "runtime/schedule_cache.h"
#include "sched/dls.h"
#include "sim/executor.h"
#include "trace/trace.h"
#include "util/error.h"

namespace actg::adaptive {

/// Knobs of the adaptive framework.
struct AdaptiveOptions {
  /// Sliding window length L (paper: 20 for MPEG/cruise/random CTGs,
  /// 50 in the Fig. 4 illustration).
  std::size_t window_length = 20;
  /// Threshold on the windowed-vs-in-use probability difference that
  /// triggers re-scheduling (paper: 0.1 and 0.5).
  double threshold = 0.1;
  /// Scheduler configuration (the modified DLS by default).
  sched::DlsOptions dls;
  /// Stretcher configuration.
  dvfs::StretchOptions stretch;
  /// Stretch policy applied after every (re)scheduling pass, resolved
  /// through the dvfs::Policy registry (paper: the online heuristic).
  std::string policy = "online";
  /// Explicit trace session for the controller's spans and timeline
  /// rows; when null, the process-wide obs::TraceSession::Current() is
  /// consulted per instance (so bench --trace reaches controllers built
  /// without explicit wiring).
  obs::TraceSession* trace = nullptr;
  /// Optional schedule memoization. When set, every online scheduling +
  /// DVFS call first consults the cache (exact probability match), so
  /// revisited operating points become O(1) lookups without changing
  /// any result; computed schedules are inserted back. The cache may be
  /// shared between controllers (it is thread-safe and keyed by graph/
  /// platform/config fingerprints), and must outlive the controller.
  runtime::ScheduleCache* schedule_cache = nullptr;

  /// Ok when every knob is usable: window_length must be positive,
  /// threshold must lie in (0, 1], the policy must be registered, and
  /// the nested dls/stretch options must validate. The controller
  /// rejects invalid options up front (constructor throws) instead of
  /// failing mid-run.
  util::Error Validate() const;
};

/// Runtime manager owning the current schedule, the profiler and the
/// in-use branch probabilities. The referenced graph/analysis/platform
/// must outlive the controller.
class AdaptiveController {
 public:
  AdaptiveController(const ctg::Ctg& graph,
                     const ctg::ActivationAnalysis& analysis,
                     const arch::Platform& platform,
                     ctg::BranchProbabilities initial_probs,
                     AdaptiveOptions options = {});

  /// Executes one instance with the current schedule, observes the
  /// branch decisions, and re-schedules if a threshold crossing
  /// occurred. Returns the instance's execution result.
  sim::InstanceResult ProcessInstance(
      const ctg::BranchAssignment& assignment);

  /// Number of online scheduling + DVFS invocations triggered so far
  /// (the "# of calls" columns of Tables 2, 4 and 5); the initial
  /// schedule construction is not counted.
  std::size_t reschedule_count() const { return reschedule_count_; }

  /// The schedule instances currently execute with.
  const sched::Schedule& current_schedule() const { return schedule_; }

  /// The branch probabilities the current schedule was built with.
  const ctg::BranchProbabilities& in_use_probabilities() const {
    return in_use_;
  }

  /// The profiler state (for figures like Fig. 4).
  const profiling::SlidingWindowProfiler& profiler() const {
    return profiler_;
  }

 private:
  sched::Schedule Reschedule() const;
  runtime::ScheduleCacheKey CacheKey() const;
  /// The session this controller records into (explicit or current).
  obs::TraceSession* TraceTarget() const;
  void RecordTimeline(obs::TraceSession& trace,
                      const ctg::BranchAssignment& assignment) const;

  const ctg::Ctg* graph_;
  const ctg::ActivationAnalysis* analysis_;
  const arch::Platform* platform_;
  AdaptiveOptions options_;
  const dvfs::Policy* policy_;
  ctg::BranchProbabilities in_use_;
  profiling::SlidingWindowProfiler profiler_;
  std::uint64_t graph_fingerprint_ = 0;
  std::uint64_t platform_fingerprint_ = 0;
  std::uint64_t config_fingerprint_ = 0;
  std::uint64_t unit_fingerprint_ = 0;
  std::uint64_t instances_processed_ = 0;
  // Reusable reschedule workspace (path enumeration + DLS scratch),
  // constructed once per controller and shared by every Reschedule()
  // call, including the initial one — must precede schedule_, whose
  // initializer runs Reschedule(). unique_ptr so the controller stays
  // movable and Reschedule() can use the engine from a const method.
  std::unique_ptr<dvfs::PathEngine> engine_;
  sched::Schedule schedule_;
  std::size_t reschedule_count_ = 0;
};

/// Runs a whole trace through an adaptive controller and aggregates the
/// results (the adaptive rows/series of Fig. 5 and Tables 2-5).
sim::RunSummary RunAdaptive(AdaptiveController& controller,
                            const trace::BranchTrace& trace);

}  // namespace actg::adaptive

#endif  // ACTG_ADAPTIVE_CONTROLLER_H
