#include "adaptive/rescheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "check/validator.h"
#include "runtime/fingerprint.h"
#include "sim/energy.h"
#include "util/error.h"

namespace actg::adaptive {

namespace {

/// Fingerprint of every configuration knob that influences the produced
/// schedule (the cache key must distinguish configs, not just inputs).
/// The full-mode fingerprint of a default config is unchanged from the
/// pre-facade controller, so timeline unit ids and cached entries of
/// existing setups stay stable; non-full modes fold themselves in — an
/// incremental or table result must never be served to a full-mode
/// lookup, whose contract is bit-exactness.
std::uint64_t FingerprintConfig(const ReschedulerConfig& config) {
  std::uint64_t fp = 0x9E3779B97F4A7C15ULL;
  fp = runtime::HashCombine(
      fp, static_cast<std::uint64_t>(config.dls.level_policy));
  fp = runtime::HashCombine(fp, config.dls.mutex_aware ? 1 : 2);
  if (config.dls.fixed_mapping != nullptr) {
    for (PeId pe : *config.dls.fixed_mapping) {
      fp = runtime::HashCombine(fp, static_cast<std::uint64_t>(pe.value));
    }
  }
  // Only folded in when restricting, so fingerprints (and the timeline
  // unit ids derived from them) of mask-free configs are unchanged.
  if (!config.dls.available_pes.IsAll()) {
    fp = runtime::HashCombine(fp, config.dls.available_pes.removed_bits());
  }
  fp = runtime::HashCombine(fp, config.stretch.max_paths);
  for (const char c : config.policy) {
    fp = runtime::HashCombine(fp, static_cast<std::uint64_t>(c));
  }
  if (config.reschedule.mode != RescheduleMode::kFull) {
    fp = runtime::HashCombine(
        fp, static_cast<std::uint64_t>(config.reschedule.mode) + 0xC0FFEE);
    fp = runtime::HashDouble(fp, config.reschedule.max_dirty_ratio);
  }
  return fp;
}

bool VerifyEnvSet() {
  const char* env = std::getenv("ACTG_VERIFY_INCREMENTAL");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

const char* RescheduleModeName(RescheduleMode mode) {
  switch (mode) {
    case RescheduleMode::kFull:
      return "full";
    case RescheduleMode::kIncremental:
      return "incremental";
    case RescheduleMode::kTable:
      return "table";
  }
  return "full";
}

std::optional<RescheduleMode> ParseRescheduleMode(std::string_view name) {
  if (name == "full") return RescheduleMode::kFull;
  if (name == "incremental") return RescheduleMode::kIncremental;
  if (name == "table") return RescheduleMode::kTable;
  return std::nullopt;
}

const char* RescheduleTierName(RescheduleTier tier) {
  switch (tier) {
    case RescheduleTier::kExact:
      return "exact";
    case RescheduleTier::kWarmCache:
      return "warm_cache";
    case RescheduleTier::kWarmPrior:
      return "warm_prior";
    case RescheduleTier::kTable:
      return "table";
    case RescheduleTier::kFull:
      return "full";
  }
  return "full";
}

util::Error RescheduleOptions::Validate() const {
  if (!(max_dirty_ratio > 0.0) || max_dirty_ratio > 1.0) {
    return util::Error::Invalid(
        "RescheduleOptions: max_dirty_ratio must lie in (0, 1]");
  }
  if (mode == RescheduleMode::kTable && table == nullptr) {
    return util::Error::Invalid(
        "RescheduleOptions: table mode requires a ScheduleTable");
  }
  return {};
}

util::Error ReschedulerConfig::Validate() const {
  if (dvfs::FindPolicy(policy) == nullptr) {
    return util::Error::Invalid(
        "ReschedulerConfig: unknown stretch policy '" + policy + "'");
  }
  if (util::Error err = dls.Validate()) return err;
  if (util::Error err = stretch.Validate()) return err;
  if (util::Error err = reschedule.Validate()) return err;
  return {};
}

Rescheduler::Rescheduler(const ctg::Ctg& graph,
                         const ctg::ActivationAnalysis& analysis,
                         const arch::Platform& platform,
                         ReschedulerConfig config)
    : graph_(&graph),
      analysis_(&analysis),
      platform_(&platform),
      config_(std::move(config)),
      policy_(nullptr),
      verify_incremental_(config_.reschedule.verify_incremental ||
                          VerifyEnvSet()),
      graph_fingerprint_(runtime::FingerprintCtg(graph)),
      platform_fingerprint_(runtime::FingerprintPlatform(platform)),
      config_fingerprint_(0),
      engine_(graph, analysis, platform,
              dvfs::PathEngineOptions{.max_paths = config_.stretch.max_paths}) {
  config_.Validate().ThrowIfError();
  policy_ = &dvfs::GetPolicy(config_.policy);
  config_fingerprint_ = FingerprintConfig(config_);
}

runtime::Metrics& Rescheduler::MetricsTarget() const {
  return config_.metrics != nullptr ? *config_.metrics
                                    : runtime::Metrics::Global();
}

runtime::ScheduleCacheKey Rescheduler::MakeKey(
    const ctg::BranchProbabilities& probs) const {
  return runtime::MakeCacheKey(*graph_, probs, graph_fingerprint_,
                               platform_fingerprint_, config_fingerprint_,
                               config_.cache.tenant, config_.policy);
}

ctg::BranchProbabilities Rescheduler::Unflatten(
    const std::vector<double>& flat) const {
  ctg::BranchProbabilities probs(graph_->task_count());
  std::size_t i = 0;
  for (TaskId fork : graph_->ForkIds()) {
    std::vector<double> dist(
        static_cast<std::size_t>(graph_->OutcomeCount(fork)));
    for (double& p : dist) p = flat.at(i++);
    probs.Set(fork, std::move(dist));
  }
  return probs;
}

std::vector<int> Rescheduler::ShapeSignature(
    const sched::Schedule& schedule) const {
  // ((pe, order_index), task) sorted gives the per-PE task sequences in
  // commit order — exactly what BuildDagAdjacency derives pseudo edges
  // from. Global order_index values are irrelevant, only the per-PE
  // sequences matter, so the signature records (pe, task) pairs.
  std::vector<std::pair<std::pair<int, int>, int>> keyed;
  keyed.reserve(graph_->task_count());
  for (TaskId task : graph_->TaskIds()) {
    const sched::TaskPlacement& p = schedule.placement(task);
    keyed.push_back(
        {{p.pe.value, p.order_index}, static_cast<int>(task.index())});
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<int> sig;
  sig.reserve(2 * keyed.size());
  for (const auto& [key, task] : keyed) {
    sig.push_back(key.first);
    sig.push_back(task);
  }
  return sig;
}

void Rescheduler::ApplyStretch(sched::Schedule& schedule,
                               const ctg::BranchProbabilities& probs,
                               double speed_floor,
                               dvfs::StretchStats& stats,
                               const dvfs::StretchWarmStart* warm) {
  dvfs::PolicyContext ctx;
  ctx.schedule = &schedule;
  ctx.probs = &probs;
  ctx.stretch = config_.stretch;
  ctx.speed_floor = speed_floor;
  ctx.warm = warm;
  stats = policy_->Apply(engine_, ctx);
  // The engine now holds an enumeration for this schedule's shape
  // (either freshly enumerated or rewound-and-recommitted); record the
  // pair that lets the next warm stretch rewind instead of re-running
  // the path DFS.
  engine_shape_ = ShapeSignature(schedule);
  engine_enum_id_ = engine_.enumeration_id();
}

void Rescheduler::MaybeValidate(const sched::Schedule& schedule,
                                const RescheduleRequest& req) const {
  if (!config_.validate_schedules) return;
  check::Expectations expect;
  expect.available_pes = req.mask;
  expect.speed_floor = req.speed_floor;
  check::Validate(schedule, expect);
}

RescheduleResult Rescheduler::ComputeFull(
    const ctg::BranchProbabilities& probs, const RescheduleRequest& req,
    bool cache_ok, const runtime::ScheduleCacheKey* key) {
  sched::DlsOptions dls = config_.dls;
  dls.available_pes = req.mask;
  RescheduleResult result{
      sched::RunDls(*graph_, *analysis_, *platform_, probs, dls,
                    &engine_.dls_workspace()),
      dvfs::StretchStats{}, RescheduleTier::kFull};
  ApplyStretch(result.schedule, probs, req.speed_floor, result.stretch);
  MaybeValidate(result.schedule, req);
  if (cache_ok && config_.cache && key != nullptr) {
    config_.cache.cache->Insert(
        *key,
        runtime::ScheduleCacheEntry{result.schedule, result.stretch});
  }
  return result;
}

std::optional<RescheduleResult> Rescheduler::ComputeIncremental(
    const ctg::BranchProbabilities& probs, const RescheduleRequest& req,
    const runtime::ScheduleCacheKey* key) {
  // Seed preference: a tier-2 near-hit was computed for an operating
  // point in the query's own quantization bucket; the facade's prior
  // basis may have drifted arbitrarily far. Fall back to the prior
  // basis when the near tier misses (or no cache is bound).
  ctg::BranchProbabilities seed_probs;
  const sched::Schedule* seed_schedule = nullptr;
  RescheduleTier tier;
  std::optional<runtime::ScheduleCacheNearHit> near;
  if (config_.cache && key != nullptr) {
    near = config_.cache.cache->LookupNear(*key);
  }
  if (near.has_value()) {
    seed_probs = Unflatten(near->probs);
    seed_schedule = &near->entry.schedule;
    tier = RescheduleTier::kWarmCache;
  } else if (basis_schedule_.has_value()) {
    seed_probs = basis_probs_;
    seed_schedule = &*basis_schedule_;
    tier = RescheduleTier::kWarmPrior;
  } else {
    return std::nullopt;
  }

  const sched::IncrementalDelta delta =
      sched::ComputeDirtyRegion(*graph_, *analysis_, seed_probs, probs);
  sched::DlsOptions dls = config_.dls;
  dls.available_pes = req.mask;
  sched::IncrementalResult inc = sched::RunIncrementalDls(
      *graph_, *analysis_, *platform_, probs,
      sched::MappingOf(*seed_schedule), delta, dls,
      config_.reschedule.max_dirty_ratio, &engine_.dls_workspace());
  if (inc.fell_back) {
    ++tiers_.incremental_fallbacks;
    MetricsTarget().Increment("resched.incremental_fallbacks");
    return std::nullopt;
  }
  RescheduleResult result{std::move(inc.schedule), dvfs::StretchStats{},
                          tier};
  // Warm stretch: replay the seed's committed speeds for clean tasks
  // (deadline-clamped — always feasible) and run the full slack
  // computation only for the dirty region plus any task the warm DLS
  // moved off its seed PE. When the warm schedule's shape matches the
  // engine's current enumeration, rewind the committed delays instead
  // of re-running the path DFS (delta re-enumeration).
  std::vector<double> seed_speed(graph_->task_count(), 0.0);
  std::vector<char> stretch_dirty = delta.dirty;
  for (TaskId task : graph_->TaskIds()) {
    const std::size_t i = static_cast<std::size_t>(task.index());
    const sched::TaskPlacement& seed_p = seed_schedule->placement(task);
    seed_speed[i] = seed_p.speed_ratio;
    if (result.schedule.placement(task).pe != seed_p.pe) {
      stretch_dirty[i] = 1;
    }
  }
  dvfs::StretchWarmStart warm;
  warm.seed_speed = &seed_speed;
  warm.dirty = &stretch_dirty;
  warm.reuse_enumeration =
      engine_enum_id_ != 0 &&
      engine_enum_id_ == engine_.enumeration_id() &&
      engine_shape_ == ShapeSignature(result.schedule);
  ApplyStretch(result.schedule, probs, req.speed_floor, result.stretch,
               &warm);
  MaybeValidate(result.schedule, req);
  if (verify_incremental_) VerifyIncremental(probs, req, result);
  // A warm-started result is a valid schedule for these exact
  // probabilities under this (mode-fingerprinted) config: memoize it,
  // which also seeds the tier-2 bucket for future neighbors.
  if (config_.cache && key != nullptr) {
    config_.cache.cache->Insert(
        *key,
        runtime::ScheduleCacheEntry{result.schedule, result.stretch});
  }
  return result;
}

RescheduleResult Rescheduler::ComputeTable(
    const ctg::BranchProbabilities& probs, const RescheduleRequest& req) {
  dvfs::MaterializedSchedule mat =
      config_.reschedule.table->Materialize(probs);
  RescheduleResult result{std::move(mat.schedule), mat.stretch,
                          RescheduleTier::kTable};
  MaybeValidate(result.schedule, req);
  return result;
}

void Rescheduler::VerifyIncremental(const ctg::BranchProbabilities& probs,
                                    const RescheduleRequest& req,
                                    const RescheduleResult& got) {
  // From-scratch reference under the same request, computed entirely on
  // a private scratch engine. Routing the reference through engine_
  // would advance its enumeration id and overwrite the committed path
  // delays the next warm stretch wants to rewind — i.e. the debug
  // oracle would perturb the production ladder it is checking. The
  // scratch engine also means ApplyStretch must not be used here (it
  // records engine_shape_/engine_enum_id_ against engine_); the policy
  // is applied directly instead.
  if (verify_engine_ == nullptr) {
    verify_engine_ = std::make_unique<dvfs::PathEngine>(
        *graph_, *analysis_, *platform_,
        dvfs::PathEngineOptions{.max_paths = config_.stretch.max_paths});
  }
  sched::DlsOptions dls = config_.dls;
  dls.available_pes = req.mask;
  sched::Schedule reference =
      sched::RunDls(*graph_, *analysis_, *platform_, probs, dls,
                    &verify_engine_->dls_workspace());
  dvfs::PolicyContext ctx;
  ctx.schedule = &reference;
  ctx.probs = &probs;
  ctx.stretch = config_.stretch;
  ctx.speed_floor = req.speed_floor;
  policy_->Apply(*verify_engine_, ctx);
  // Both must satisfy every structural invariant regardless of
  // validate_schedules — this is the debug oracle.
  check::Expectations expect;
  expect.available_pes = req.mask;
  expect.speed_floor = req.speed_floor;
  check::Validate(got.schedule, expect);
  check::Validate(reference, expect);
  runtime::Metrics& metrics = MetricsTarget();
  metrics.Increment("resched.verify.runs");
  const double e_ref = sim::ExpectedEnergy(reference, probs);
  if (e_ref > 0.0) {
    metrics.Observe("resched.verify.energy_ratio",
                    sim::ExpectedEnergy(got.schedule, probs) / e_ref);
  }
}

void Rescheduler::CountTier(RescheduleTier tier) {
  switch (tier) {
    case RescheduleTier::kExact:
      ++tiers_.exact;
      break;
    case RescheduleTier::kWarmCache:
      ++tiers_.warm_cache;
      break;
    case RescheduleTier::kWarmPrior:
      ++tiers_.warm_prior;
      break;
    case RescheduleTier::kTable:
      ++tiers_.table;
      break;
    case RescheduleTier::kFull:
      ++tiers_.full;
      break;
  }
  MetricsTarget().Increment(std::string("resched.tier.") +
                            RescheduleTierName(tier));
}

void Rescheduler::RememberBasis(const ctg::BranchProbabilities& probs,
                                const sched::Schedule& schedule) {
  basis_probs_ = probs;
  // Full copy (speeds included): the warm stretch replays the basis's
  // committed speed assignment, not just its mapping.
  basis_schedule_ = schedule;
}

RescheduleResult Rescheduler::Reschedule(
    const ctg::BranchProbabilities& probs, const RescheduleRequest& req,
    obs::TraceSession* trace) {
  const runtime::ScopedTimer stage_timer(MetricsTarget(),
                                         "stage.reschedule");
  obs::ScopedSpan span(trace, "adaptive.reschedule", "adaptive");
  const auto begin = std::chrono::steady_clock::now();
  // Degraded requests (restricted PEs and/or a speed floor) bypass the
  // cache: its key encodes neither constraint, and a degraded schedule
  // must never be served back to a healthy lookup. They also skip the
  // warm and table tiers — the basis and the lattice were computed for
  // the healthy platform.
  const bool degraded = !(req.mask == config_.dls.available_pes) ||
                        req.speed_floor != 0.0;

  std::optional<RescheduleResult> result;
  bool from_cache = false;
  runtime::ScheduleCacheKey key;
  const bool cache_ok = config_.cache && !degraded;
  if (cache_ok) {
    key = MakeKey(probs);
    if (std::optional<runtime::ScheduleCacheEntry> cached =
            config_.cache.cache->Lookup(key)) {
      result.emplace(RescheduleResult{std::move(cached->schedule),
                                      cached->stretch,
                                      RescheduleTier::kExact});
      from_cache = true;
    }
  }
  if (!from_cache) {
    // Arg order matches the pre-facade controller byte for byte
    // ("cached" first, "degraded" only when set) so golden traces of
    // full-mode runs are unchanged.
    if (span.enabled()) {
      span.AddArg(obs::IntArg("cached", 0));
      if (degraded) span.AddArg(obs::IntArg("degraded", 1));
    }
    if (!degraded &&
        config_.reschedule.mode == RescheduleMode::kIncremental) {
      std::optional<RescheduleResult> warm =
          ComputeIncremental(probs, req, cache_ok ? &key : nullptr);
      if (warm.has_value()) {
        result = std::move(*warm);
      } else {
        result = ComputeFull(probs, req, cache_ok, cache_ok ? &key : nullptr);
      }
    } else if (!degraded &&
               config_.reschedule.mode == RescheduleMode::kTable) {
      result = ComputeTable(probs, req);
    } else {
      result = ComputeFull(probs, req, cache_ok, cache_ok ? &key : nullptr);
    }
  }
  if (span.enabled()) {
    if (from_cache) span.AddArg(obs::IntArg("cached", 1));
    if (config_.reschedule.mode != RescheduleMode::kFull) {
      span.AddArg(obs::StrArg("tier", RescheduleTierName(result->tier)));
      span.AddArg(obs::StrArg("reason", req.reason));
    }
  }
  CountTier(result->tier);
  if (!degraded) RememberBasis(probs, result->schedule);
  const double us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin)
          .count() *
      1e-3;
  runtime::Metrics& metrics = MetricsTarget();
  metrics.Observe("reschedule.latency_us", us);
  if (result->tier != RescheduleTier::kExact) {
    metrics.Observe("reschedule.compute_latency_us", us);
  }
  return std::move(*result);
}

}  // namespace actg::adaptive
