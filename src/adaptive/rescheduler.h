/// \file rescheduler.h
/// The unified reschedule facade: one entry point owning cache-key
/// construction, the exact / warm-start / table / full decision ladder
/// and the per-tier accounting.
///
/// Before this facade, the reschedule/cache plumbing had accreted
/// across the adaptive controller: two Reschedule() overloads, inline
/// key construction, and a raw (cache pointer, tenant id) pairing every
/// caller had to keep consistent. The Rescheduler collapses all of it
/// behind Reschedule(probs, RescheduleRequest): callers say *what*
/// operating point to schedule for and under which constraints; the
/// facade decides *how* — consulting the tiers in order:
///
///   1. exact cache hit   — tier-1 Lookup; bit-identical to a from-
///                          scratch recompute (today's semantics).
///   2. warm start        — incremental mode only: dirty-region DLS
///                          seeded by a tier-2 near-hit entry
///                          (kWarmCache) or the facade's own last
///                          result (kWarmPrior), then a warm stretch
///                          that replays the seed's committed speeds
///                          for clean tasks (deadline-clamped) and
///                          re-enumerates paths only when the scheduled
///                          DAG's shape changed; feasibly equivalent,
///                          not bit-identical.
///   3. table selection   — table mode only: nearest lattice entry,
///                          speed vector interpolated (see
///                          dvfs::ScheduleTable).
///   4. full recompute    — always available; the only path degraded
///                          requests (restricted mask or speed floor)
///                          take, bypassing the cache entirely.
///
/// Every outcome is counted (tier_counts(), metrics counters
/// "resched.tier.*") and every call's latency lands in the
/// "reschedule.latency_us" metrics distribution ("…compute_latency_us"
/// excludes exact hits), which bench_reschedule reads back as p50/p99.
///
/// Exactness contract per tier: kExact returns the bytes a recompute
/// would produce (the cache key folds the reschedule mode into the
/// config fingerprint, so entries never cross modes). kWarm* and
/// kTable return oracle-valid, deadline-safe schedules that may differ
/// from a full recompute — the controller's energy-acceptance gate
/// decides adoption, exactly as it does for noisy windowed estimates.
/// kFull is the reference semantics. Debug: ACTG_VERIFY_INCREMENTAL=1
/// (or RescheduleOptions::verify_incremental) recomputes from scratch
/// after every warm-started result, oracle-validates both, and records
/// the energy ratio in "resched.verify.energy_ratio". The reference
/// recompute runs against a private scratch PathEngine (lazily built on
/// first use), so the debug oracle is side-effect-free by construction:
/// arming it perturbs no pooled workspace state — the production
/// engine's enumeration id, committed path delays and DLS scratch are
/// untouched — and produced schedules are bit-identical with the oracle
/// on or off.

#ifndef ACTG_ADAPTIVE_RESCHEDULER_H
#define ACTG_ADAPTIVE_RESCHEDULER_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "arch/platform.h"
#include "ctg/activation.h"
#include "ctg/condition.h"
#include "ctg/graph.h"
#include "dvfs/path_engine.h"
#include "dvfs/policy.h"
#include "dvfs/schedule_table.h"
#include "dvfs/stretch.h"
#include "obs/trace.h"
#include "runtime/metrics.h"
#include "runtime/schedule_cache.h"
#include "sched/dls.h"
#include "sched/incremental.h"
#include "sched/schedule.h"
#include "util/error.h"

namespace actg::adaptive {

/// How the facade recomputes when the exact tier misses.
enum class RescheduleMode {
  /// Full DLS + stretch every time (the reference semantics; default).
  kFull = 0,
  /// Warm-start dirty-region DLS from a tier-2 near-hit or the prior
  /// result; falls back to full when the dirty region is too large.
  kIncremental = 1,
  /// Select + interpolate from a precomputed dvfs::ScheduleTable.
  kTable = 2,
};

/// Stable lowercase name ("full", "incremental", "table").
const char* RescheduleModeName(RescheduleMode mode);

/// Inverse of RescheduleModeName; nullopt on an unknown name.
std::optional<RescheduleMode> ParseRescheduleMode(std::string_view name);

/// Knobs of the reschedule ladder.
struct RescheduleOptions {
  RescheduleMode mode = RescheduleMode::kFull;
  /// Incremental mode: when more than this fraction of tasks is dirty,
  /// warm-starting would pin too little to pay off — run full DLS.
  double max_dirty_ratio = 0.5;
  /// Table mode: the precomputed table to select from (required for
  /// kTable; must outlive every Rescheduler bound to it and be built
  /// for the same graph/analysis/platform).
  const dvfs::ScheduleTable* table = nullptr;
  /// Debug: recompute from scratch after every warm-started result and
  /// oracle-validate both (also enabled by ACTG_VERIFY_INCREMENTAL=1).
  bool verify_incremental = false;

  /// Ok when the knobs are usable: max_dirty_ratio in (0, 1], a table
  /// present in table mode.
  util::Error Validate() const;
};

/// One reschedule request: *what* the caller needs, not how to get it.
/// A request whose mask differs from the configured availability or
/// whose speed_floor is nonzero is *degraded*: it bypasses the cache
/// (the key encodes neither constraint, and a degraded schedule must
/// never be served back to a healthy lookup) and always recomputes in
/// full.
struct RescheduleRequest {
  /// PEs the scheduler may place on.
  arch::PeMask mask;
  /// Minimum speed ratio the stretcher must respect (0 = none).
  double speed_floor = 0.0;
  /// Why the caller reschedules ("initial", "threshold", "degraded",
  /// "recovery"); recorded on the trace span in non-full modes.
  const char* reason = "threshold";
};

/// Which rung of the ladder produced a result.
enum class RescheduleTier {
  kExact = 0,      ///< tier-1 cache hit (bit-identical)
  kWarmCache = 1,  ///< incremental DLS seeded by a tier-2 near-hit
  kWarmPrior = 2,  ///< incremental DLS seeded by the prior result
  kTable = 3,      ///< lattice selection (+ speed interpolation)
  kFull = 4,       ///< full recompute
};

/// Stable name ("exact", "warm_cache", "warm_prior", "table", "full").
const char* RescheduleTierName(RescheduleTier tier);

/// Per-tier outcome counters of one Rescheduler.
struct TierCounts {
  std::uint64_t exact = 0;
  std::uint64_t warm_cache = 0;
  std::uint64_t warm_prior = 0;
  std::uint64_t table = 0;
  std::uint64_t full = 0;
  /// Warm-start attempts that fell back to a full DLS (dirty region
  /// over the ratio, or unusable basis); these also count under full.
  std::uint64_t incremental_fallbacks = 0;

  std::uint64_t total() const {
    return exact + warm_cache + warm_prior + table + full;
  }
};

/// Everything the facade needs to know at construction.
struct ReschedulerConfig {
  /// Scheduler configuration (the configured availability mask in
  /// dls.available_pes defines which requests count as degraded).
  sched::DlsOptions dls;
  dvfs::StretchOptions stretch;
  /// Stretch policy, resolved through the dvfs::Policy registry.
  std::string policy = "online";
  /// Optional schedule memoization (cache + tenant in one value).
  runtime::CacheBinding cache;
  RescheduleOptions reschedule;
  /// Metrics registry; nullptr means runtime::Metrics::Global().
  runtime::Metrics* metrics = nullptr;
  /// Oracle-check every freshly computed schedule (see
  /// AdaptiveOptions::validate_schedules).
  bool validate_schedules = false;

  util::Error Validate() const;
};

/// A completed reschedule.
struct RescheduleResult {
  sched::Schedule schedule;
  dvfs::StretchStats stretch;
  RescheduleTier tier = RescheduleTier::kFull;
};

/// The facade. Owns the reusable reschedule workspace (path enumeration
/// + DLS scratch), the structural fingerprints, the cache keying and
/// the warm-start basis. The referenced graph/analysis/platform (and
/// table, when configured) must outlive it. Not thread-safe — one
/// Rescheduler belongs to one controller.
class Rescheduler {
 public:
  /// Throws when \p config does not validate. The config fingerprint
  /// folds the reschedule mode (when not kFull), so cache entries
  /// written by an incremental-mode facade are invisible to a full-mode
  /// one and vice versa.
  Rescheduler(const ctg::Ctg& graph,
              const ctg::ActivationAnalysis& analysis,
              const arch::Platform& platform, ReschedulerConfig config);

  /// Runs the decision ladder for \p probs under \p req and returns
  /// the schedule, its stretch stats and the tier that produced it.
  /// Non-degraded results become the next warm-start basis.
  RescheduleResult Reschedule(const ctg::BranchProbabilities& probs,
                              const RescheduleRequest& req,
                              obs::TraceSession* trace = nullptr);

  const ReschedulerConfig& config() const { return config_; }
  const TierCounts& tier_counts() const { return tiers_; }
  std::uint64_t graph_fingerprint() const { return graph_fingerprint_; }
  std::uint64_t platform_fingerprint() const {
    return platform_fingerprint_;
  }
  std::uint64_t config_fingerprint() const { return config_fingerprint_; }

 private:
  runtime::Metrics& MetricsTarget() const;
  runtime::ScheduleCacheKey MakeKey(
      const ctg::BranchProbabilities& probs) const;
  /// probs reconstructed from a cache key's flattened vector.
  ctg::BranchProbabilities Unflatten(const std::vector<double>& flat) const;
  /// Full DLS + stretch under \p req; validates and (when \p cache_ok)
  /// inserts into the cache.
  RescheduleResult ComputeFull(const ctg::BranchProbabilities& probs,
                               const RescheduleRequest& req, bool cache_ok,
                               const runtime::ScheduleCacheKey* key);
  /// The warm-start rung; returns nullopt when no basis is usable (the
  /// caller then falls through to full).
  std::optional<RescheduleResult> ComputeIncremental(
      const ctg::BranchProbabilities& probs, const RescheduleRequest& req,
      const runtime::ScheduleCacheKey* key);
  RescheduleResult ComputeTable(const ctg::BranchProbabilities& probs,
                                const RescheduleRequest& req);
  void ApplyStretch(sched::Schedule& schedule,
                    const ctg::BranchProbabilities& probs,
                    double speed_floor, dvfs::StretchStats& stats,
                    const dvfs::StretchWarmStart* warm = nullptr);
  /// Canonical shape of a schedule's scheduled DAG: the per-PE task
  /// sequences, flattened. Two schedules with equal signatures induce
  /// the same DAG, so a path enumeration of one is valid for the other.
  std::vector<int> ShapeSignature(const sched::Schedule& schedule) const;
  void MaybeValidate(const sched::Schedule& schedule,
                     const RescheduleRequest& req) const;
  /// Debug diff of a warm-started result against a from-scratch one.
  /// Runs entirely on verify_engine_ (never engine_), so arming the
  /// oracle cannot change what the production ladder computes.
  void VerifyIncremental(const ctg::BranchProbabilities& probs,
                         const RescheduleRequest& req,
                         const RescheduleResult& got);
  void CountTier(RescheduleTier tier);
  void RememberBasis(const ctg::BranchProbabilities& probs,
                     const sched::Schedule& schedule);

  const ctg::Ctg* graph_;
  const ctg::ActivationAnalysis* analysis_;
  const arch::Platform* platform_;
  ReschedulerConfig config_;
  const dvfs::Policy* policy_;
  bool verify_incremental_;
  std::uint64_t graph_fingerprint_ = 0;
  std::uint64_t platform_fingerprint_ = 0;
  std::uint64_t config_fingerprint_ = 0;
  /// Reusable reschedule workspace (path enumeration + DLS scratch),
  /// shared by every Reschedule() call.
  dvfs::PathEngine engine_;
  /// Scratch workspace for VerifyIncremental's reference recompute,
  /// built lazily on the first verified call. Keeping the debug oracle
  /// off the pooled engine_ is what makes it side-effect-free: the
  /// enumeration id / committed delays the warm-start tier relies on
  /// are never touched by a verify pass.
  std::unique_ptr<dvfs::PathEngine> verify_engine_;
  /// Warm-start basis: the last non-degraded result (full schedule, so
  /// the warm stretch can replay its committed speed assignment).
  std::optional<sched::Schedule> basis_schedule_;
  ctg::BranchProbabilities basis_probs_;
  /// Shape the engine's current enumeration was built for, plus the
  /// enumeration id it had right after the owning ApplyStretch — the
  /// pair that licenses StretchWarmStart::reuse_enumeration.
  std::vector<int> engine_shape_;
  std::uint64_t engine_enum_id_ = 0;
  TierCounts tiers_;
};

}  // namespace actg::adaptive

#endif  // ACTG_ADAPTIVE_RESCHEDULER_H
