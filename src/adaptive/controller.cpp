#include "adaptive/controller.h"

#include "runtime/fingerprint.h"
#include "runtime/metrics.h"
#include "sim/energy.h"
#include "util/error.h"

namespace actg::adaptive {

namespace {

/// Fingerprint of every configuration knob that influences the produced
/// schedule (the cache key must distinguish configs, not just inputs).
std::uint64_t FingerprintConfig(const AdaptiveOptions& options) {
  std::uint64_t fp = 0x9E3779B97F4A7C15ULL;
  fp = runtime::HashCombine(
      fp, static_cast<std::uint64_t>(options.dls.level_policy));
  fp = runtime::HashCombine(fp, options.dls.mutex_aware ? 1 : 2);
  if (options.dls.fixed_mapping != nullptr) {
    for (PeId pe : *options.dls.fixed_mapping) {
      fp = runtime::HashCombine(fp, static_cast<std::uint64_t>(pe.value));
    }
  }
  fp = runtime::HashCombine(fp, options.stretch.max_paths);
  return fp;
}

/// Validates up front so construction fails before the expensive
/// initial Reschedule() runs (the members below initialize in
/// declaration order, and schedule_'s initializer reschedules).
AdaptiveOptions Validated(AdaptiveOptions options) {
  options.Validate().ThrowIfError();
  return options;
}

}  // namespace

util::Error AdaptiveOptions::Validate() const {
  if (window_length == 0) {
    return util::Error::Invalid(
        "AdaptiveOptions: window_length must be > 0");
  }
  if (!(threshold > 0.0) || threshold > 1.0) {
    return util::Error::Invalid(
        "AdaptiveOptions: threshold must lie in (0, 1]");
  }
  if (util::Error err = dls.Validate()) return err;
  if (util::Error err = stretch.Validate()) return err;
  return {};
}

AdaptiveController::AdaptiveController(
    const ctg::Ctg& graph, const ctg::ActivationAnalysis& analysis,
    const arch::Platform& platform, ctg::BranchProbabilities initial_probs,
    AdaptiveOptions options)
    : graph_(&graph),
      analysis_(&analysis),
      platform_(&platform),
      options_(Validated(options)),
      in_use_(std::move(initial_probs)),
      profiler_(graph, options.window_length),
      graph_fingerprint_(runtime::FingerprintCtg(graph)),
      platform_fingerprint_(runtime::FingerprintPlatform(platform)),
      config_fingerprint_(FingerprintConfig(options)),
      engine_(std::make_unique<dvfs::PathEngine>(
          graph, analysis, platform,
          dvfs::PathEngineOptions{.max_paths = options.stretch.max_paths})),
      schedule_(Reschedule()) {}

runtime::ScheduleCacheKey AdaptiveController::CacheKey() const {
  runtime::ScheduleCacheKey key;
  key.graph_fingerprint = graph_fingerprint_;
  key.platform_fingerprint = platform_fingerprint_;
  key.config_fingerprint = config_fingerprint_;
  for (TaskId fork : graph_->ForkIds()) {
    for (int o = 0; o < graph_->OutcomeCount(fork); ++o) {
      key.probs.push_back(in_use_.Outcome(fork, o));
    }
  }
  return key;
}

sched::Schedule AdaptiveController::Reschedule() const {
  const runtime::ScopedTimer stage_timer(runtime::Metrics::Global(),
                                         "stage.reschedule");
  runtime::ScheduleCacheKey key;
  if (options_.schedule_cache != nullptr) {
    key = CacheKey();
    if (std::optional<runtime::ScheduleCacheEntry> cached =
            options_.schedule_cache->Lookup(key)) {
      return std::move(cached->schedule);
    }
  }
  // Both stages run on the controller's reusable workspace: RunDls
  // borrows the engine's DLS scratch buffers, StretchOnline the path
  // enumeration pools. Results are identical to workspace-free calls.
  sched::Schedule schedule =
      sched::RunDls(*graph_, *analysis_, *platform_, in_use_, options_.dls,
                    &engine_->dls_workspace());
  const dvfs::StretchStats stats =
      dvfs::StretchOnline(schedule, in_use_, options_.stretch,
                          engine_.get());
  if (options_.schedule_cache != nullptr) {
    options_.schedule_cache->Insert(
        key, runtime::ScheduleCacheEntry{schedule, stats});
  }
  return schedule;
}

sim::InstanceResult AdaptiveController::ProcessInstance(
    const ctg::BranchAssignment& assignment) {
  // Execute with the schedule in effect; decisions become observable
  // only as the instance runs, so adaptation applies from the next
  // instance on.
  const sim::InstanceResult result =
      sim::ExecuteInstance(schedule_, assignment);

  profiler_.ObserveInstance(*analysis_, assignment);

  // Threshold detector: any fork whose full window deviates from the
  // in-use probability by more than the threshold triggers one online
  // scheduling + DVFS call with the windowed distributions.
  bool crossed = false;
  for (TaskId fork : graph_->ForkIds()) {
    if (!profiler_.Full(fork)) continue;
    const double distance = profiling::DistributionDistance(
        profiler_.WindowedDistribution(fork),
        [&] {
          std::vector<double> dist(
              static_cast<std::size_t>(graph_->OutcomeCount(fork)));
          for (int o = 0; o < graph_->OutcomeCount(fork); ++o) {
            dist[static_cast<std::size_t>(o)] = in_use_.Outcome(fork, o);
          }
          return dist;
        }());
    if (distance > options_.threshold) {
      crossed = true;
      break;
    }
  }
  if (crossed) {
    for (TaskId fork : graph_->ForkIds()) {
      if (profiler_.Full(fork)) {
        in_use_.Set(fork, profiler_.WindowedDistribution(fork));
      }
    }
    // One online scheduling + DVFS call. The candidate replaces the
    // running schedule only when it improves the expected energy under
    // the new distribution estimate: the windowed estimate is noisy
    // (stddev ~ sqrt(p(1-p)/L)), and blindly adopting every candidate
    // would let sampling noise undo the adaptation gains.
    sched::Schedule candidate = Reschedule();
    ++reschedule_count_;
    runtime::Metrics::Global().Increment("adaptive.reschedule_calls");
    if (sim::ExpectedEnergy(candidate, in_use_) <
        sim::ExpectedEnergy(schedule_, in_use_)) {
      schedule_ = std::move(candidate);
    }
  }
  return result;
}

sim::RunSummary RunAdaptive(AdaptiveController& controller,
                            const trace::BranchTrace& trace) {
  sim::RunSummary summary;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    summary.Add(controller.ProcessInstance(trace.At(i)));
  }
  return summary;
}

}  // namespace actg::adaptive
