#include "adaptive/controller.h"

#include <algorithm>

#include "runtime/fingerprint.h"
#include "runtime/metrics.h"
#include "sim/energy.h"
#include "util/error.h"

namespace actg::adaptive {

namespace {

/// Timeline-unit fingerprint: distinguishes controllers traced into the
/// same session (e.g. the two thresholds of one comparison run).
std::uint64_t FingerprintUnit(std::uint64_t graph_fp,
                              std::uint64_t config_fp,
                              const AdaptiveOptions& options) {
  std::uint64_t fp = runtime::HashCombine(graph_fp, config_fp);
  fp = runtime::HashCombine(fp, options.window_length);
  fp = runtime::HashCombine(
      fp, static_cast<std::uint64_t>(options.threshold * 1e9));
  return fp;
}

/// Validates up front so construction fails before the expensive
/// initial Reschedule() runs (the members below initialize in
/// declaration order, and schedule_'s initializer reschedules).
AdaptiveOptions Validated(AdaptiveOptions options) {
  options.Validate().ThrowIfError();
  return options;
}

/// The facade sees exactly the controller's scheduling-relevant knobs;
/// everything else (window, threshold, ladder) stays controller-side.
ReschedulerConfig MakeReschedulerConfig(const AdaptiveOptions& options) {
  ReschedulerConfig config;
  config.dls = options.dls;
  config.stretch = options.stretch;
  config.policy = options.policy;
  config.cache = options.cache;
  config.reschedule = options.reschedule;
  config.metrics = options.metrics;
  config.validate_schedules = options.validate_schedules;
  return config;
}

}  // namespace

util::Error DegradeOptions::Validate() const {
  if (!enabled) return {};
  if (miss_burst == 0) {
    return util::Error::Invalid("DegradeOptions: miss_burst must be > 0");
  }
  if (burst_window == 0) {
    return util::Error::Invalid(
        "DegradeOptions: burst_window must be > 0");
  }
  if (panic_instances == 0) {
    return util::Error::Invalid(
        "DegradeOptions: panic_instances must be > 0");
  }
  if (backoff_initial == 0) {
    return util::Error::Invalid(
        "DegradeOptions: backoff_initial must be > 0");
  }
  return {};
}

util::Error AdaptiveOptions::Validate() const {
  if (window_length == 0) {
    return util::Error::Invalid(
        "AdaptiveOptions: window_length must be > 0");
  }
  if (!(threshold > 0.0) || threshold > 1.0) {
    return util::Error::Invalid(
        "AdaptiveOptions: threshold must lie in (0, 1]");
  }
  if (dvfs::FindPolicy(policy) == nullptr) {
    return util::Error::Invalid(
        "AdaptiveOptions: unknown stretch policy '" + policy + "'");
  }
  if (util::Error err = dls.Validate()) return err;
  if (util::Error err = stretch.Validate()) return err;
  if (util::Error err = degrade.Validate()) return err;
  if (util::Error err = reschedule.Validate()) return err;
  return {};
}

AdaptiveController::AdaptiveController(
    const ctg::Ctg& graph, const ctg::ActivationAnalysis& analysis,
    const arch::Platform& platform, ctg::BranchProbabilities initial_probs,
    AdaptiveOptions options)
    : graph_(&graph),
      analysis_(&analysis),
      platform_(&platform),
      options_(Validated(options)),
      in_use_(std::move(initial_probs)),
      profiler_(graph, options.window_length),
      rescheduler_(std::make_unique<Rescheduler>(
          graph, analysis, platform, MakeReschedulerConfig(options_))),
      unit_fingerprint_(FingerprintUnit(rescheduler_->graph_fingerprint(),
                                        rescheduler_->config_fingerprint(),
                                        options_)),
      schedule_(Reschedule(RescheduleRequest{options_.dls.available_pes,
                                             0.0, "initial"})) {}

obs::TraceSession* AdaptiveController::TraceTarget() const {
  return options_.trace != nullptr ? options_.trace
                                   : obs::TraceSession::Current();
}

runtime::Metrics& AdaptiveController::MetricsTarget() const {
  return options_.metrics != nullptr ? *options_.metrics
                                     : runtime::Metrics::Global();
}

sched::Schedule AdaptiveController::Reschedule(
    const RescheduleRequest& request) {
  return rescheduler_->Reschedule(in_use_, request, TraceTarget()).schedule;
}

void AdaptiveController::RecordTimeline(
    obs::TraceSession& trace,
    const ctg::BranchAssignment& assignment) const {
  // One row per PE: the Gantt occupancy (active tasks, scaled busy
  // time) merged with the mean DVFS stretch the instance ran with.
  const std::size_t pes = platform_->pe_count();
  std::vector<obs::TimelineRow> rows(pes);
  for (std::size_t p = 0; p < pes; ++p) {
    rows[p].unit = unit_fingerprint_;
    rows[p].iteration = instances_processed_;
    rows[p].pe = static_cast<int>(p);
    rows[p].reschedules = reschedule_count_;
  }
  std::vector<double> speed_sums(pes, 0.0);
  for (TaskId task : graph_->TaskIds()) {
    if (!analysis_->IsActive(task, assignment)) continue;
    const sched::TaskPlacement& placement = schedule_.placement(task);
    obs::TimelineRow& row = rows[placement.pe.index()];
    ++row.active_tasks;
    row.busy_ms += schedule_.ScaledWcet(task);
    speed_sums[placement.pe.index()] += placement.speed_ratio;
  }
  for (std::size_t p = 0; p < pes; ++p) {
    rows[p].mean_speed_ratio =
        rows[p].active_tasks > 0 ? speed_sums[p] / rows[p].active_tasks
                                 : 1.0;
    trace.AddTimelineRow(rows[p]);
  }
}

sim::InstanceResult AdaptiveController::ProcessInstance(
    const ctg::BranchAssignment& assignment,
    const faults::InstanceFaults* faults) {
  obs::TraceSession* trace = TraceTarget();
  obs::ScopedSpan span(trace, "adaptive.instance", "adaptive");
  if (span.enabled()) {
    span.AddArg(obs::IntArg(
        "iteration", static_cast<std::int64_t>(instances_processed_)));
  }

  // Execute with the schedule in effect; decisions become observable
  // only as the instance runs, so adaptation applies from the next
  // instance on.
  const sim::InstanceResult result =
      sim::ExecuteInstance(schedule_, assignment, faults);

  // Timeline rows describe the schedule the instance just executed
  // with, before any adaptation below replaces it.
  if (trace != nullptr) RecordTimeline(*trace, assignment);

  profiler_.ObserveInstance(*analysis_, assignment);

  // The degradation ladder reacts to the instance outcome first; while
  // degraded (and on the instance a ladder transition fires) the normal
  // threshold adaptation is suspended — the ladder owns the schedule
  // until it recovers.
  bool ladder_acted = false;
  if (options_.degrade.enabled) {
    ladder_acted = RunLadder(result, faults, trace);
  }
  const bool adapt_suspended =
      ladder_acted || level_ != DegradeLevel::kNormal;

  // Threshold detector: any fork whose full window deviates from the
  // in-use probability by more than the threshold triggers one online
  // scheduling + DVFS call with the windowed distributions.
  bool crossed = false;
  if (!adapt_suspended) {
    for (TaskId fork : graph_->ForkIds()) {
      if (!profiler_.Full(fork)) continue;
      const double distance = profiling::DistributionDistance(
          profiler_.WindowedDistribution(fork),
          [&] {
            std::vector<double> dist(
                static_cast<std::size_t>(graph_->OutcomeCount(fork)));
            for (int o = 0; o < graph_->OutcomeCount(fork); ++o) {
              dist[static_cast<std::size_t>(o)] = in_use_.Outcome(fork, o);
            }
            return dist;
          }());
      if (distance > options_.threshold) {
        crossed = true;
        break;
      }
    }
  }
  if (crossed) {
    for (TaskId fork : graph_->ForkIds()) {
      if (profiler_.Full(fork)) {
        in_use_.Set(fork, profiler_.WindowedDistribution(fork));
      }
    }
    // One online scheduling + DVFS call. The candidate replaces the
    // running schedule only when it improves the expected energy under
    // the new distribution estimate: the windowed estimate is noisy
    // (stddev ~ sqrt(p(1-p)/L)), and blindly adopting every candidate
    // would let sampling noise undo the adaptation gains.
    sched::Schedule candidate = Reschedule(
        RescheduleRequest{options_.dls.available_pes, 0.0, "threshold"});
    ++reschedule_count_;
    MetricsTarget().Increment("adaptive.reschedule_calls");
    if (sim::ExpectedEnergy(candidate, in_use_) <
        sim::ExpectedEnergy(schedule_, in_use_)) {
      schedule_ = std::move(candidate);
    }
  }
  // Sampled every instance so the counter track starts at zero and
  // plateaus are visible between reschedules.
  if (trace != nullptr) {
    trace->Counter("adaptive.reschedule_calls", "adaptive",
                   static_cast<double>(reschedule_count_));
  }
  ++instances_processed_;
  return result;
}

void AdaptiveController::LogDegrade(obs::TraceSession* trace,
                                    DegradeLevel level,
                                    const char* reason) {
  degrade_log_.push_back(
      DegradeEvent{instances_processed_, level, reason});
  if (trace != nullptr) {
    trace->Instant(
        "degrade.transition", "adaptive",
        {obs::IntArg("level", static_cast<std::int64_t>(level)),
         obs::StrArg("reason", reason),
         obs::IntArg("iteration",
                     static_cast<std::int64_t>(instances_processed_))});
  }
}

bool AdaptiveController::RunLadder(const sim::InstanceResult& result,
                                   const faults::InstanceFaults* faults,
                                   obs::TraceSession* trace) {
  runtime::Metrics& metrics = MetricsTarget();
  const DegradeOptions& opts = options_.degrade;

  // Failed-PE sightings accumulate over the degraded episode so an
  // out-of-band reschedule avoids every PE seen failing, not only the
  // ones failing on the triggering instance. Never accumulate past the
  // point of leaving DLS no PE to place on.
  if (faults != nullptr && faults->failed_pes != 0) {
    const std::uint64_t combined = excluded_pes_.removed_bits() |
                                   faults->failed_pes |
                                   options_.dls.available_pes.removed_bits();
    if (arch::PeMask::WithoutBits(combined).CountAvailable(
            platform_->pe_count()) > 0) {
      excluded_pes_ = arch::PeMask::WithoutBits(
          excluded_pes_.removed_bits() | faults->failed_pes);
    }
  }

  if (result.deadline_met) {
    if (level_ == DegradeLevel::kNormal) return false;
    ++clean_streak_;
    if (clean_streak_ < opts.panic_instances) return false;
    // Recover: restore the stretched schedule for the in-use
    // distribution (a cache hit when that operating point was seen
    // before) and reset the episode state.
    level_ = DegradeLevel::kNormal;
    speed_floor_ = 0.0;
    excluded_pes_ = arch::PeMask();
    recent_misses_.clear();
    clean_streak_ = 0;
    retries_used_ = 0;
    next_retry_instance_ = 0;
    schedule_ = Reschedule(
        RescheduleRequest{options_.dls.available_pes, 0.0, "recovery"});
    ++recovery_count_;
    metrics.Increment("degrade.recoveries");
    LogDegrade(trace, DegradeLevel::kNormal, "clean_streak");
    return true;
  }

  // Deadline miss: reset the clean streak, slide the burst window.
  clean_streak_ = 0;
  recent_misses_.push_back(instances_processed_);
  const std::uint64_t window_start =
      instances_processed_ >= opts.burst_window - 1
          ? instances_processed_ - (opts.burst_window - 1)
          : 0;
  while (!recent_misses_.empty() &&
         recent_misses_.front() < window_start) {
    recent_misses_.erase(recent_misses_.begin());
  }

  if (level_ == DegradeLevel::kNormal) {
    // First rung: panic to nominal voltage. The running schedule keeps
    // its mapping and ordering; every stretched task snaps back to
    // full speed, which only shortens paths.
    bool changed = false;
    for (TaskId task : graph_->TaskIds()) {
      sched::TaskPlacement& placement = schedule_.placement(task);
      if (placement.speed_ratio < 1.0) {
        placement.speed_ratio = 1.0;
        changed = true;
      }
    }
    if (changed) schedule_.RecomputeTimes();
    level_ = DegradeLevel::kPanic;
    speed_floor_ = 1.0;
    ++escalation_count_;
    metrics.Increment("degrade.escalations");
    metrics.Increment("degrade.panic_entries");
    LogDegrade(trace, DegradeLevel::kPanic, "miss");
    return true;
  }

  // Already degraded: a miss burst escalates to an out-of-band
  // reschedule, bounded by the retry budget with exponential backoff
  // between retries.
  if (recent_misses_.size() < opts.miss_burst) return false;
  if (retries_used_ >= opts.max_reschedule_retries) return false;
  if (instances_processed_ < next_retry_instance_) return false;

  ++retries_used_;
  const std::size_t shift = std::min<std::size_t>(retries_used_ - 1, 20);
  next_retry_instance_ =
      instances_processed_ + (opts.backoff_initial << shift);
  // Refresh the in-use distribution from the window first: the burst
  // may stem from drifted branch profiles, not only injected overruns.
  for (TaskId fork : graph_->ForkIds()) {
    if (profiler_.Full(fork)) {
      in_use_.Set(fork, profiler_.WindowedDistribution(fork));
    }
  }
  const arch::PeMask oob_mask = arch::PeMask::WithoutBits(
      options_.dls.available_pes.removed_bits() |
      excluded_pes_.removed_bits());
  schedule_ = Reschedule(
      RescheduleRequest{oob_mask, speed_floor_, "degraded"});
  recent_misses_.clear();
  level_ = DegradeLevel::kFallback;
  ++escalation_count_;
  ++oob_reschedule_count_;
  metrics.Increment("degrade.escalations");
  metrics.Increment("degrade.oob_reschedules");
  LogDegrade(trace, DegradeLevel::kFallback, "miss_burst");
  return true;
}

sim::RunSummary RunAdaptive(AdaptiveController& controller,
                            const trace::BranchTrace& trace) {
  sim::RunSummary summary;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    summary.Add(controller.ProcessInstance(trace.At(i)));
  }
  return summary;
}

sim::RunSummary RunAdaptiveWithFaults(AdaptiveController& controller,
                                      const trace::BranchTrace& trace,
                                      const faults::Injector& injector) {
  sim::RunSummary summary;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const faults::InstanceFaults f = injector.ForInstance(i);
    ctg::BranchAssignment assignment = trace.At(i);
    injector.ApplyDrift(i, assignment);
    summary.Add(controller.ProcessInstance(assignment, &f));
  }
  return summary;
}

}  // namespace actg::adaptive
