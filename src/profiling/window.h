/// \file window.h
/// Sliding-window branch probability profiling (paper Section III.B).
///
/// "For each branch fork task, a fixed length buffer/window is maintained
/// that stores the most recent L branch decisions pertaining to L
/// instances of the CTG. Each time after a branch fork task is executed,
/// a new branch decision is shifted into the buffer. The branch
/// probabilities are then recalculated."

#ifndef ACTG_PROFILING_WINDOW_H
#define ACTG_PROFILING_WINDOW_H

#include <deque>
#include <vector>

#include "ctg/activation.h"
#include "ctg/condition.h"
#include "ctg/graph.h"

namespace actg::profiling {

/// Per-fork circular buffers of the most recent branch decisions.
class SlidingWindowProfiler {
 public:
  /// Creates buffers of length \p window for every fork of \p graph.
  /// The graph must outlive the profiler.
  SlidingWindowProfiler(const ctg::Ctg& graph, std::size_t window);

  std::size_t window() const { return window_; }

  /// Shifts one decision of \p fork into its buffer.
  void Observe(TaskId fork, int outcome);

  /// Observes every fork that \p analysis reports active under
  /// \p assignment (inactive forks make no decision and record nothing).
  void ObserveInstance(const ctg::ActivationAnalysis& analysis,
                       const ctg::BranchAssignment& assignment);

  /// Number of decisions currently buffered for \p fork.
  std::size_t Count(TaskId fork) const;

  /// True once the buffer of \p fork holds a full window.
  bool Full(TaskId fork) const { return Count(fork) >= window_; }

  /// Windowed probability of one outcome of \p fork. Requires at least
  /// one buffered decision.
  double WindowedProbability(TaskId fork, int outcome) const;

  /// Windowed distribution over all outcomes of \p fork. Requires at
  /// least one buffered decision.
  std::vector<double> WindowedDistribution(TaskId fork) const;

  /// Drops all buffered decisions.
  void Reset();

 private:
  const ctg::Ctg* graph_;
  std::size_t window_;
  std::vector<std::deque<int>> buffers_;  // dense by task index
};

/// Largest per-outcome absolute difference between two distributions of
/// the same arity — "the difference between the new distribution and
/// the old distribution" that triggers re-scheduling when it exceeds
/// the threshold (paper Section III.B). For a two-way branch this is
/// |Δp|, matching the paper's Fig. 4 illustration where the filtered
/// probability updates when the windowed value moves by more than 0.1.
double DistributionDistance(const std::vector<double>& a,
                            const std::vector<double>& b);

}  // namespace actg::profiling

#endif  // ACTG_PROFILING_WINDOW_H
