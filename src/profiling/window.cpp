#include "profiling/window.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace actg::profiling {

SlidingWindowProfiler::SlidingWindowProfiler(const ctg::Ctg& graph,
                                             std::size_t window)
    : graph_(&graph), window_(window), buffers_(graph.task_count()) {
  ACTG_CHECK(window_ >= 1, "Window length must be >= 1");
}

void SlidingWindowProfiler::Observe(TaskId fork, int outcome) {
  ACTG_CHECK(graph_->IsFork(fork), "Observe: task is not a fork");
  ACTG_CHECK(outcome >= 0 && outcome < graph_->OutcomeCount(fork),
             "Observe: outcome out of range");
  auto& buffer = buffers_[fork.index()];
  buffer.push_back(outcome);
  if (buffer.size() > window_) buffer.pop_front();
}

void SlidingWindowProfiler::ObserveInstance(
    const ctg::ActivationAnalysis& analysis,
    const ctg::BranchAssignment& assignment) {
  for (TaskId fork : graph_->ForkIds()) {
    if (!analysis.IsActive(fork, assignment)) continue;
    const int outcome = assignment.Get(fork);
    if (outcome >= 0) Observe(fork, outcome);
  }
}

std::size_t SlidingWindowProfiler::Count(TaskId fork) const {
  ACTG_CHECK(graph_->IsFork(fork), "Count: task is not a fork");
  return buffers_[fork.index()].size();
}

double SlidingWindowProfiler::WindowedProbability(TaskId fork,
                                                  int outcome) const {
  const auto dist = WindowedDistribution(fork);
  ACTG_CHECK(outcome >= 0 &&
                 static_cast<std::size_t>(outcome) < dist.size(),
             "WindowedProbability: outcome out of range");
  return dist[static_cast<std::size_t>(outcome)];
}

std::vector<double> SlidingWindowProfiler::WindowedDistribution(
    TaskId fork) const {
  ACTG_CHECK(graph_->IsFork(fork),
             "WindowedDistribution: task is not a fork");
  const auto& buffer = buffers_[fork.index()];
  ACTG_CHECK(!buffer.empty(),
             "WindowedDistribution: no decisions buffered yet");
  std::vector<double> dist(
      static_cast<std::size_t>(graph_->OutcomeCount(fork)), 0.0);
  for (int outcome : buffer) {
    dist[static_cast<std::size_t>(outcome)] += 1.0;
  }
  for (double& p : dist) p /= static_cast<double>(buffer.size());
  return dist;
}

void SlidingWindowProfiler::Reset() {
  for (auto& buffer : buffers_) buffer.clear();
}

double DistributionDistance(const std::vector<double>& a,
                            const std::vector<double>& b) {
  ACTG_CHECK(a.size() == b.size(),
             "DistributionDistance: arity mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace actg::profiling
