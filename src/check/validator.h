/// \file validator.h
/// Schedule-invariant oracle (DESIGN.md §11).
///
/// Every layer of the pipeline promises invariants — DLS promises
/// precedence-respecting placements (paper Section III.A), the
/// mutual-exclusion relation decides when two tasks may share a PE slot
/// (Section II), the stretchers promise deadlines survive stretching
/// (Section III/Fig. 2), the simulator promises energy under the
/// E ∝ σ² model (Section IV). The validator re-derives each promise
/// *independently* from the primitive graph/analysis/platform data:
/// it never trusts Schedule::Validate, the precomputed mutex matrix
/// alone, or the executor's own accumulation. Violations come back as
/// data (a Report), so the fuzz harness can shrink failing cases; the
/// throwing Validate() wrappers give tests a one-line oracle call.
///
/// Intentional redundancy is the point: where the library computes a
/// quantity one way, the validator computes it another (DNF guard
/// algebra cross-checked against the BitGuard form, energy re-integrated
/// from platform tables, scenario makespans re-derived by a fresh ASAP
/// pass). Disagreement between the forms is itself a violation.

#ifndef ACTG_CHECK_VALIDATOR_H
#define ACTG_CHECK_VALIDATOR_H

#include <string>
#include <string_view>
#include <vector>

#include "arch/platform.h"
#include "ctg/condition.h"
#include "faults/injector.h"
#include "sched/schedule.h"
#include "sim/executor.h"

namespace actg::check {

/// One broken invariant. `rule` is a stable machine-readable identifier
/// (see the rule list in DESIGN.md §11); `detail` is the human-readable
/// evidence (which tasks, which times).
struct Violation {
  std::string rule;
  std::string detail;
};

/// Outcome of one validation pass. Empty == every checked invariant
/// holds.
class Report {
 public:
  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

  /// True when some violation carries exactly \p rule.
  bool Has(std::string_view rule) const;

  void Add(std::string rule, std::string detail);
  void Merge(const Report& other);

  /// Multi-line human-readable summary ("ok" when empty).
  std::string ToString() const;

 private:
  std::vector<Violation> violations_;
};

/// Context the caller asserts about a schedule, beyond what the
/// schedule itself records: which PEs the scheduler was allowed to use,
/// whether the stretcher claimed deadline feasibility, and any floor
/// the degradation ladder imposed on speed ratios.
struct Expectations {
  /// Masked-out PEs must host no task (DlsOptions::available_pes).
  arch::PeMask available_pes;
  /// When true, every execution scenario's independently re-derived
  /// completion time must stay within the deadline (the stretchers'
  /// guarantee whenever the nominal schedule was feasible).
  bool deadline_feasible = false;
  /// Deadline override in ms; <= 0 means "use the graph's deadline".
  double deadline_ms = 0.0;
  /// Every speed ratio must be at least this value (degradation-ladder
  /// clamp; 0 disables the check).
  double speed_floor = 0.0;
};

/// Re-verifies every static invariant of \p schedule:
///  * placements: valid PE, start >= 0, finish == start + WCET/σ,
///    σ ∈ (0,1], σ >= PE minimum, σ on a discrete level when the PE has
///    them, commit order a permutation;
///  * scheduled DAG acyclic; CTG edges, implied fork -> or-node control
///    dependencies (re-derived from the analysis, not the schedule's
///    edge list) and pseudo order edges all respected by the times;
///  * no PE executes two guard-compatible tasks overlapping; overlap of
///    mutually exclusive tasks is allowed only when their activation
///    guards are exclusive under BOTH the DNF algebra and the BitGuard
///    form (and the two forms must agree with the analysis matrix);
///  * link transfers fit the link bandwidth, never start before the
///    producer finishes, and land before the consumer starts; same-PE
///    transfers take zero time;
///  * masked PEs host no tasks; speed ratios respect the floor;
///  * when feasibility is claimed, every scenario's re-derived
///    completion time meets the deadline (paper Section III).
Report CheckSchedule(const sched::Schedule& schedule,
                     const Expectations& expect = {});

/// Re-verifies one executed instance against the schedule: the active
/// task set is re-derived from the activation guards, the completion
/// time by a fresh ASAP pass over the scheduled DAG (honoring fault
/// factors), and the energy by re-integrating task energy under E ∝ σ²
/// plus unscaled communication energy (voltage scaling never applies to
/// communication — paper Section II). Reported makespan, energy, active
/// count, overrun, failed-PE hits and the deadline flag must all match.
Report CheckInstance(const sched::Schedule& schedule,
                     const ctg::BranchAssignment& assignment,
                     const sim::InstanceResult& result,
                     const faults::InstanceFaults* faults = nullptr);

/// One-line oracle for tests: throws actg::InternalError carrying the
/// report text when CheckSchedule finds any violation.
void Validate(const sched::Schedule& schedule,
              const Expectations& expect = {});

/// Throwing wrapper of CheckInstance.
void ValidateInstance(const sched::Schedule& schedule,
                      const ctg::BranchAssignment& assignment,
                      const sim::InstanceResult& result,
                      const faults::InstanceFaults* faults = nullptr);

}  // namespace actg::check

#endif  // ACTG_CHECK_VALIDATOR_H
