#include "check/fuzz.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <vector>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "ctg/activation.h"
#include "dvfs/policy.h"
#include "faults/injector.h"
#include "io/text_format.h"
#include "sched/dls.h"
#include "sim/executor.h"
#include "trace/trace.h"
#include "util/error.h"

namespace actg::check {

namespace {

/// Substream tags so the probability, trace and injector draws never
/// alias even though they all derive from one case seed.
constexpr std::uint64_t kProbStream = 0x70726F6273ULL;   // "probs"
constexpr std::uint64_t kTraceStream = 0x7472616365ULL;  // "trace"
constexpr std::uint64_t kFaultStream = 0x66617565ULL;

trace::BranchTrace SampleTrace(const ctg::Ctg& graph,
                               const ctg::BranchProbabilities& probs,
                               std::size_t instances, std::uint64_t seed) {
  const util::Random root = util::Random(seed).Fork(kTraceStream);
  trace::BranchTrace trace(graph.task_count());
  std::vector<double> weights;
  for (std::size_t i = 0; i < instances; ++i) {
    util::Random rng = root.Fork(i);
    ctg::BranchAssignment assignment(graph.task_count());
    for (TaskId fork : graph.ForkIds()) {
      weights.clear();
      for (int o = 0; o < graph.OutcomeCount(fork); ++o) {
        weights.push_back(probs.Outcome(fork, o));
      }
      assignment.Set(fork, static_cast<int>(rng.Categorical(weights)));
    }
    trace.Append(assignment);
  }
  return trace;
}

/// Rebuilds the case's graph without one task and/or one edge. Returns
/// nullopt when the mutated graph no longer validates (e.g. a fork lost
/// an outcome), so the shrinker simply skips that mutation.
std::optional<ctg::Ctg> RebuildGraph(const ctg::Ctg& graph,
                                     int skip_task, int skip_edge) {
  try {
    ctg::CtgBuilder builder;
    std::vector<TaskId> remap(graph.task_count(), TaskId{});
    for (TaskId t : graph.TaskIds()) {
      if (t.index() == static_cast<std::size_t>(skip_task)) continue;
      const ctg::Task& task = graph.task(t);
      remap[t.index()] = task.join == ctg::JoinType::kOr
                             ? builder.AddOrTask(task.name)
                             : builder.AddTask(task.name);
    }
    for (EdgeId eid : graph.EdgeIds()) {
      if (eid.index() == static_cast<std::size_t>(skip_edge)) continue;
      const ctg::Edge& e = graph.edge(eid);
      if (e.src.index() == static_cast<std::size_t>(skip_task) ||
          e.dst.index() == static_cast<std::size_t>(skip_task)) {
        continue;
      }
      if (e.condition.has_value()) {
        builder.AddConditionalEdge(remap[e.src.index()],
                                   remap[e.dst.index()],
                                   e.condition->outcome, e.comm_kbytes);
      } else {
        builder.AddEdge(remap[e.src.index()], remap[e.dst.index()],
                        e.comm_kbytes);
      }
    }
    ctg::Ctg rebuilt = std::move(builder).Build();
    if (graph.deadline_ms() > 0.0) rebuilt.SetDeadline(graph.deadline_ms());
    return rebuilt;
  } catch (const Error&) {
    return std::nullopt;
  }
}

/// Rebuilds the platform keeping only the listed original task/PE
/// indices (both in ascending order).
std::optional<arch::Platform> RebuildPlatform(
    const arch::Platform& platform, const std::vector<int>& keep_tasks,
    const std::vector<int>& keep_pes) {
  try {
    arch::PlatformBuilder builder(keep_tasks.size(), keep_pes.size());
    for (std::size_t p = 0; p < keep_pes.size(); ++p) {
      const arch::PeInfo& info = platform.pe(PeId{keep_pes[p]});
      builder.SetPeName(PeId{static_cast<int>(p)}, info.name);
      if (!info.speed_levels.empty()) {
        builder.SetSpeedLevels(PeId{static_cast<int>(p)},
                               info.speed_levels);
      } else {
        builder.SetMinSpeedRatio(PeId{static_cast<int>(p)},
                                 info.min_speed_ratio);
      }
    }
    for (std::size_t t = 0; t < keep_tasks.size(); ++t) {
      for (std::size_t p = 0; p < keep_pes.size(); ++p) {
        builder.SetTaskCost(TaskId{static_cast<int>(t)},
                            PeId{static_cast<int>(p)},
                            platform.Wcet(TaskId{keep_tasks[t]},
                                          PeId{keep_pes[p]}),
                            platform.Energy(TaskId{keep_tasks[t]},
                                            PeId{keep_pes[p]}));
      }
    }
    for (std::size_t a = 0; a < keep_pes.size(); ++a) {
      for (std::size_t b = a + 1; b < keep_pes.size(); ++b) {
        builder.SetLink(PeId{static_cast<int>(a)},
                        PeId{static_cast<int>(b)},
                        platform.Bandwidth(PeId{keep_pes[a]},
                                           PeId{keep_pes[b]}),
                        platform.TxEnergyPerKb(PeId{keep_pes[a]},
                                               PeId{keep_pes[b]}));
      }
    }
    return std::move(builder).Build();
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::vector<int> AllIndices(std::size_t n, int skip = -1) {
  std::vector<int> indices;
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) != skip) indices.push_back(static_cast<int>(i));
  }
  return indices;
}

std::optional<FuzzCase> WithoutTask(const FuzzCase& c, int task) {
  std::optional<ctg::Ctg> graph = RebuildGraph(c.graph, task, -1);
  if (!graph.has_value()) return std::nullopt;
  std::optional<arch::Platform> platform = RebuildPlatform(
      c.platform, AllIndices(c.graph.task_count(), task),
      AllIndices(c.platform.pe_count()));
  if (!platform.has_value()) return std::nullopt;
  FuzzCase out = c;
  out.graph = std::move(*graph);
  out.platform = std::move(*platform);
  return out;
}

std::optional<FuzzCase> WithoutEdge(const FuzzCase& c, int edge) {
  std::optional<ctg::Ctg> graph = RebuildGraph(c.graph, -1, edge);
  if (!graph.has_value()) return std::nullopt;
  FuzzCase out = c;
  out.graph = std::move(*graph);
  return out;
}

std::optional<FuzzCase> WithoutPe(const FuzzCase& c, int pe) {
  if (c.platform.pe_count() <= 1 || c.masked_pes != 0) return std::nullopt;
  std::optional<arch::Platform> platform = RebuildPlatform(
      c.platform, AllIndices(c.graph.task_count()),
      AllIndices(c.platform.pe_count(), pe));
  if (!platform.has_value()) return std::nullopt;
  FuzzCase out = c;
  out.platform = std::move(*platform);
  return out;
}

/// Single-knob simplifications, cheapest semantics first.
std::vector<FuzzCase> KnobCandidates(const FuzzCase& c) {
  std::vector<FuzzCase> candidates;
  const auto with = [&](auto mutate) {
    FuzzCase cand = c;
    mutate(cand);
    candidates.push_back(std::move(cand));
  };
  if (c.reschedule_mode != adaptive::RescheduleMode::kFull) {
    with([](FuzzCase& x) {
      x.reschedule_mode = adaptive::RescheduleMode::kFull;
    });
  }
  if (c.adaptive) with([](FuzzCase& x) { x.adaptive = false; });
  if (c.with_faults) {
    with([](FuzzCase& x) {
      x.with_faults = false;
      x.faults = faults::FaultPlan{};
    });
  }
  if (c.masked_pes != 0) with([](FuzzCase& x) { x.masked_pes = 0; });
  if (c.policy != "proportional") {
    with([](FuzzCase& x) { x.policy = "proportional"; });
  }
  if (c.mutex_aware) with([](FuzzCase& x) { x.mutex_aware = false; });
  if (c.prob_weighted) with([](FuzzCase& x) { x.prob_weighted = false; });
  return candidates;
}

}  // namespace

FuzzCaseSpec RandomSpec(const util::Random& root, std::uint64_t index) {
  util::Random rng = root.Fork(index);
  FuzzCaseSpec spec;
  spec.params.seed = rng.engine().Next();
  spec.params.category = rng.Bernoulli(0.5) ? tgff::Category::kForkJoin
                                            : tgff::Category::kFlat;
  spec.params.fork_count = rng.UniformInt(0, 4);
  // Minimum counts mirror RandomCtgParams::Validate: a fork-join block
  // needs 4 tasks per fork plus source/sink, a flat arm 3 per fork.
  const int min_tasks =
      spec.params.category == tgff::Category::kForkJoin
          ? 4 * spec.params.fork_count + 2
          : 2 + 3 * spec.params.fork_count;
  spec.params.task_count = min_tasks + rng.UniformInt(0, 12);
  spec.params.pe_count = rng.UniformInt(1, 4);
  spec.deadline_factor = rng.Uniform(1.2, 3.0);
  const double policy_pick = rng.UniformUnit();
  spec.policy = policy_pick < 0.5 ? "online"
                : policy_pick < 0.85 ? "proportional"
                                     : "nlp";
  spec.mutex_aware = rng.Bernoulli(0.85);
  spec.prob_weighted = rng.Bernoulli(0.85);
  if (spec.params.pe_count >= 2 && rng.Bernoulli(0.3)) {
    spec.masked_pes = 1ULL << rng.UniformInt(0, spec.params.pe_count - 1);
  }
  spec.prob_seed = rng.engine().Next();
  spec.trace_instances =
      static_cast<std::size_t>(rng.UniformInt(12, 40));
  spec.adaptive = rng.Bernoulli(0.3);
  // A slice of the adaptive cases drives the warm-start path with the
  // built-in differential check armed (see FuzzCase::reschedule_mode).
  if (spec.adaptive && rng.Bernoulli(0.35)) {
    spec.reschedule_mode = adaptive::RescheduleMode::kIncremental;
  }
  if (rng.Bernoulli(0.4)) {
    spec.with_faults = true;
    spec.faults.intensity = rng.Uniform(0.3, 1.0);
    spec.faults.overrun = {rng.Uniform(0.0, 0.3), 1.0,
                           rng.Uniform(1.0, 2.5)};
    spec.faults.dropout = {rng.Uniform(0.0, 0.1),
                           static_cast<std::size_t>(rng.UniformInt(1, 3)),
                           rng.Uniform(1.0, 3.0)};
    spec.faults.link = {rng.Uniform(0.0, 0.2), rng.Uniform(0.25, 1.0),
                        static_cast<std::size_t>(rng.UniformInt(1, 3))};
    spec.faults.drift = {rng.Uniform(0.0, 0.4),
                         static_cast<std::size_t>(rng.UniformInt(8, 32))};
  }
  return spec;
}

FuzzCase Materialize(const FuzzCaseSpec& spec) {
  tgff::RandomCase rc = tgff::MakeRandomCtg(spec.params).value();
  apps::AssignDeadline(rc.graph, rc.platform, spec.deadline_factor);
  return FuzzCase{std::move(rc.graph),   std::move(rc.platform),
                  spec.policy,           spec.mutex_aware,
                  spec.prob_weighted,    spec.masked_pes,
                  spec.prob_seed,        spec.trace_instances,
                  spec.adaptive,         spec.reschedule_mode,
                  spec.with_faults,      spec.faults};
}

ctg::BranchProbabilities CaseProbabilities(const ctg::Ctg& graph,
                                           std::uint64_t seed) {
  const util::Random root = util::Random(seed).Fork(kProbStream);
  ctg::BranchProbabilities probs(graph.task_count());
  for (TaskId fork : graph.ForkIds()) {
    util::Random rng = root.Fork(fork.index());
    std::vector<double> dist(graph.OutcomeCount(fork));
    double sum = 0.0;
    for (double& p : dist) {
      p = rng.Uniform(0.05, 1.0);  // floor keeps every outcome reachable
      sum += p;
    }
    for (double& p : dist) p /= sum;
    probs.Set(fork, std::move(dist));
  }
  return probs;
}

Report RunCase(const FuzzCase& c) {
  Report report;
  try {
    const ctg::ActivationAnalysis analysis(c.graph);
    const ctg::BranchProbabilities probs =
        CaseProbabilities(c.graph, c.prob_seed);
    sched::DlsOptions dls;
    dls.mutex_aware = c.mutex_aware;
    dls.level_policy = c.prob_weighted
                           ? sched::LevelPolicy::kProbabilityWeighted
                           : sched::LevelPolicy::kWorstCase;
    dls.available_pes = arch::PeMask::WithoutBits(c.masked_pes);

    sched::Schedule schedule =
        sched::RunDls(c.graph, analysis, c.platform, probs, dls);
    Expectations expect;
    expect.available_pes = dls.available_pes;
    report.Merge(CheckSchedule(schedule, expect));

    // The stretchers guarantee the deadline only when the nominal
    // schedule was feasible; establish the claim before stretching.
    const double deadline = c.graph.deadline_ms();
    if (deadline > 0.0) {
      expect.deadline_feasible =
          sim::MaxScenarioMakespan(schedule) <= deadline + 1e-9;
      dvfs::ApplyPolicy(c.policy, schedule, probs);
      report.Merge(CheckSchedule(schedule, expect));
    }

    // Every execution scenario through the executor, re-verified.
    for (const ctg::Minterm& scenario :
         analysis.EnumerateScenarioAssignments()) {
      const ctg::BranchAssignment assignment =
          sim::AssignmentFromScenario(c.graph, scenario);
      report.Merge(CheckInstance(
          schedule, assignment, sim::ExecuteInstance(schedule, assignment)));
    }

    // A random trace, optionally fault-injected.
    const trace::BranchTrace trace =
        SampleTrace(c.graph, probs, c.trace_instances, c.prob_seed);
    std::optional<faults::Injector> injector;
    if (c.with_faults) {
      injector.emplace(c.faults, c.graph, c.platform,
                       util::Random(c.prob_seed)
                           .Fork(kFaultStream)
                           .engine()
                           .Next());
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ctg::BranchAssignment assignment = trace.At(i);
      if (injector.has_value()) {
        injector->ApplyDrift(i, assignment);
        const faults::InstanceFaults f = injector->ForInstance(i);
        report.Merge(CheckInstance(
            schedule, assignment,
            sim::ExecuteInstance(schedule, assignment, &f), &f));
      } else {
        report.Merge(CheckInstance(
            schedule, assignment,
            sim::ExecuteInstance(schedule, assignment)));
      }
    }

    // The adaptive controller with its validator hooks armed: every
    // reschedule it performs is oracle-checked from the inside.
    if (c.adaptive) {
      adaptive::AdaptiveOptions options;
      options.window_length = 8;
      options.threshold = 0.2;
      options.dls = dls;
      options.policy = c.policy;
      options.validate_schedules = true;
      options.reschedule.mode = c.reschedule_mode;
      std::optional<dvfs::ScheduleTable> table;
      if (c.reschedule_mode == adaptive::RescheduleMode::kIncremental) {
        // Every warm-started result is differentially checked against a
        // from-scratch recompute inside the facade.
        options.reschedule.verify_incremental = true;
      } else if (c.reschedule_mode == adaptive::RescheduleMode::kTable) {
        // Corner-point lattice (points_per_fork = 2) keeps the table
        // small for arbitrary fuzzed fork/outcome counts.
        dvfs::ScheduleTableOptions table_options;
        table_options.points_per_fork = 2;
        table_options.dls = dls;
        table_options.policy = c.policy;
        table.emplace(c.graph, analysis, c.platform, table_options);
        options.reschedule.table = &*table;
      }
      adaptive::AdaptiveController controller(c.graph, analysis,
                                              c.platform, probs, options);
      if (injector.has_value()) {
        adaptive::RunAdaptiveWithFaults(controller, trace, *injector);
      } else {
        adaptive::RunAdaptive(controller, trace);
      }
      report.Merge(CheckSchedule(controller.current_schedule(), expect));
    }
  } catch (const std::exception& e) {
    report.Add("pipeline.exception", e.what());
  }
  return report;
}

FuzzCase Shrink(const FuzzCase& c,
                const std::function<bool(const FuzzCase&)>& still_fails) {
  FuzzCase current = c;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const FuzzCase& cand : KnobCandidates(current)) {
      if (still_fails(cand)) {
        current = cand;
        progress = true;
      }
    }
    for (int t = static_cast<int>(current.graph.task_count()) - 1; t >= 0;
         --t) {
      if (t >= static_cast<int>(current.graph.task_count())) continue;
      if (std::optional<FuzzCase> cand = WithoutTask(current, t);
          cand.has_value() && still_fails(*cand)) {
        current = std::move(*cand);
        progress = true;
      }
    }
    for (int e = static_cast<int>(current.graph.edge_count()) - 1; e >= 0;
         --e) {
      if (e >= static_cast<int>(current.graph.edge_count())) continue;
      if (std::optional<FuzzCase> cand = WithoutEdge(current, e);
          cand.has_value() && still_fails(*cand)) {
        current = std::move(*cand);
        progress = true;
      }
    }
    for (int p = static_cast<int>(current.platform.pe_count()) - 1; p >= 0;
         --p) {
      if (p >= static_cast<int>(current.platform.pe_count())) continue;
      if (std::optional<FuzzCase> cand = WithoutPe(current, p);
          cand.has_value() && still_fails(*cand)) {
        current = std::move(*cand);
        progress = true;
      }
    }
    while (current.trace_instances > 1) {
      FuzzCase cand = current;
      cand.trace_instances /= 2;
      if (!still_fails(cand)) break;
      current = std::move(cand);
      progress = true;
    }
  }
  return current;
}

void WriteRepro(std::ostream& os, const FuzzCase& c) {
  os << "fuzzcase v1\n";
  os << "policy " << c.policy << "\n";
  os << "mutex_aware " << (c.mutex_aware ? 1 : 0) << "\n";
  os << "prob_weighted " << (c.prob_weighted ? 1 : 0) << "\n";
  os << "mask " << c.masked_pes << "\n";
  os << "prob_seed " << c.prob_seed << "\n";
  os << "trace_instances " << c.trace_instances << "\n";
  os << "adaptive " << (c.adaptive ? 1 : 0) << "\n";
  os << "reschedule " << adaptive::RescheduleModeName(c.reschedule_mode)
     << "\n";
  if (c.with_faults) {
    os << "faults\n";
    faults::WriteFaultPlan(os, c.faults);
  }
  os << "graph\n";
  io::WriteCtg(os, c.graph);
  os << "platform\n";
  io::WritePlatform(os, c.platform);
  os << "end\n";
}

util::Expected<FuzzCase> ParseRepro(std::istream& is) {
  const auto fail = [](const std::string& message) {
    return util::Error::Invalid("fuzzcase: " + message);
  };
  std::string line;
  if (!std::getline(is, line) || line != "fuzzcase v1") {
    return fail("expected header 'fuzzcase v1'");
  }
  std::string policy = "online";
  bool mutex_aware = true;
  bool prob_weighted = true;
  std::uint64_t masked_pes = 0;
  std::uint64_t prob_seed = 1;
  std::size_t trace_instances = 24;
  bool adaptive = false;
  adaptive::RescheduleMode reschedule_mode = adaptive::RescheduleMode::kFull;
  bool with_faults = false;
  faults::FaultPlan fault_plan;
  std::optional<ctg::Ctg> graph;
  std::optional<arch::Platform> platform;
  bool ended = false;
  while (!ended && std::getline(is, line)) {
    std::istringstream split(line);
    std::string directive;
    if (!(split >> directive) || directive[0] == '#') continue;
    if (directive == "end") {
      ended = true;
    } else if (directive == "policy") {
      if (!(split >> policy)) return fail("policy needs a name");
    } else if (directive == "mutex_aware") {
      int value = 0;
      if (!(split >> value)) return fail("mutex_aware needs 0|1");
      mutex_aware = value != 0;
    } else if (directive == "prob_weighted") {
      int value = 0;
      if (!(split >> value)) return fail("prob_weighted needs 0|1");
      prob_weighted = value != 0;
    } else if (directive == "mask") {
      if (!(split >> masked_pes)) return fail("mask needs a bitmask");
    } else if (directive == "prob_seed") {
      if (!(split >> prob_seed)) return fail("prob_seed needs a seed");
    } else if (directive == "trace_instances") {
      if (!(split >> trace_instances)) {
        return fail("trace_instances needs a count");
      }
    } else if (directive == "adaptive") {
      int value = 0;
      if (!(split >> value)) return fail("adaptive needs 0|1");
      adaptive = value != 0;
    } else if (directive == "reschedule") {
      std::string name;
      if (!(split >> name)) return fail("reschedule needs a mode name");
      const auto mode = adaptive::ParseRescheduleMode(name);
      if (!mode.has_value()) {
        return fail("unknown reschedule mode '" + name + "'");
      }
      reschedule_mode = *mode;
    } else if (directive == "faults") {
      util::Expected<faults::FaultPlan> plan = faults::ParseFaultPlan(is);
      if (!plan.ok()) return plan.error();
      fault_plan = std::move(plan).value();
      with_faults = true;
    } else if (directive == "graph") {
      util::Expected<ctg::Ctg> parsed = io::ParseCtg(is);
      if (!parsed.ok()) return parsed.error();
      graph.emplace(std::move(parsed).value());
    } else if (directive == "platform") {
      util::Expected<arch::Platform> parsed = io::ParsePlatform(is);
      if (!parsed.ok()) return parsed.error();
      platform.emplace(std::move(parsed).value());
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }
  if (!ended) return fail("missing 'end'");
  if (!graph.has_value()) return fail("missing embedded graph");
  if (!platform.has_value()) return fail("missing embedded platform");
  if (platform->task_count() != graph->task_count()) {
    return fail("platform and graph disagree on the task count");
  }
  if (platform->pe_count() <= 64 &&
      arch::PeMask::WithoutBits(masked_pes)
              .CountAvailable(platform->pe_count()) == 0) {
    return fail("mask removes every PE");
  }
  return FuzzCase{std::move(*graph), std::move(*platform),
                  std::move(policy), mutex_aware,
                  prob_weighted,     masked_pes,
                  prob_seed,         trace_instances,
                  adaptive,          reschedule_mode,
                  with_faults,       std::move(fault_plan)};
}

}  // namespace actg::check
